#!/bin/sh
# CI gate: full build + test suite, plus repo hygiene.
# Run from anywhere inside the repository.
set -eu

cd "$(git -C "$(dirname "$0")" rev-parse --show-toplevel)"

if git ls-files -- _build | grep -q .; then
  echo "error: _build/ is tracked in the git index; run 'git rm -r --cached _build'" >&2
  exit 1
fi

dune build @all
dune runtest

# Fuzz smoke (also part of runtest): fixed-seed differential runs of
# nexsort and the baselines against the in-memory oracle, plus
# fault-schedule sweeps.  Run explicitly so a failure prints the
# reproducer even when runtest output is captured.
dune exec bin/nexfuzz.exe -- --smoke

# Bench smoke: a quick run must produce a metrics report that parses and
# carries the paper's per-phase I/O breakdown (§4.2).  The validated
# report is kept in-repo as BENCH_smoke.json so schema drift shows up in
# review, and any I/O counter regression against the committed baseline
# fails the gate before the baseline is refreshed.
dune exec bench/main.exe -- --quick --metrics /tmp/m.json > /dev/null
dune exec bench/main.exe -- validate-metrics /tmp/m.json
dune exec bench/main.exe -- compare-metrics BENCH_smoke.json /tmp/m.json
cp /tmp/m.json BENCH_smoke.json

# Replacement-policy sweep: every frame-arena policy must produce
# byte-identical sorted/merged output (the experiment exits non-zero on a
# digest mismatch); only the paging counters may differ.
dune exec bench/main.exe -- --quick policy-sweep > /dev/null

echo "check: OK"
