#!/bin/sh
# CI gate: full build + test suite, plus repo hygiene.
# Run from anywhere inside the repository.
set -eu

cd "$(git -C "$(dirname "$0")" rev-parse --show-toplevel)"

if git ls-files -- _build | grep -q .; then
  echo "error: _build/ is tracked in the git index; run 'git rm -r --cached _build'" >&2
  exit 1
fi

dune build @all
dune runtest

echo "check: OK"
