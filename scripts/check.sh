#!/bin/sh
# CI gate: full build + test suite, plus repo hygiene.
# Run from anywhere inside the repository.
set -eu

cd "$(git -C "$(dirname "$0")" rev-parse --show-toplevel)"

if git ls-files -- _build | grep -q .; then
  echo "error: _build/ is tracked in the git index; run 'git rm -r --cached _build'" >&2
  exit 1
fi

dune build @all
dune runtest

# Fuzz smoke (also part of runtest): fixed-seed differential runs of
# nexsort and the baselines against the in-memory oracle, plus
# fault-schedule sweeps.  Run explicitly so a failure prints the
# reproducer even when runtest output is captured.
dune exec bin/nexfuzz.exe -- --smoke

# Bench smoke: a quick run must produce a metrics report that parses and
# carries the paper's per-phase I/O breakdown (§4.2).  The validated
# report is kept in-repo as BENCH_smoke.json so schema drift shows up in
# review, and any I/O counter regression against the committed baseline
# fails the gate before the baseline is refreshed.
dune exec bench/main.exe -- --quick --metrics /tmp/m.json > /dev/null
dune exec bench/main.exe -- validate-metrics /tmp/m.json
dune exec bench/main.exe -- compare-metrics BENCH_smoke.json /tmp/m.json
cp /tmp/m.json BENCH_smoke.json

# Replacement-policy sweep: every frame-arena policy must produce
# byte-identical sorted/merged output (the experiment exits non-zero on a
# digest mismatch); only the paging counters may differ.
dune exec bench/main.exe -- --quick policy-sweep > /dev/null

# Incremental-maintenance gate (E-ingest): a k-subtree update batch
# buffered in the external priority queue and flushed through
# Xmerge.Ingest must cost strictly fewer block I/Os than re-sorting the
# updated document from scratch, and the incremental output must be
# digest-identical to the oracle's sequential batch application (the
# experiment exits non-zero on either failure).
dune exec bench/main.exe -- --quick ingest > /dev/null

# Parallel smoke: the worker pool must be invisible in the output and in
# the I/O bill.  Sort the same document with --jobs 1 and --jobs 4 and
# require byte-identical results plus identical metrics counters (the
# compare in both directions pins them equal, not merely non-regressing).
dune exec bin/xmlgen_cli.exe -- --seed 7 --fanouts 8,8,8,5 --avg-bytes 120 -o /tmp/par.xml \
  > /dev/null
dune exec bin/nexsort_cli.exe -- -B 1024 -M 16 --jobs 1 --metrics /tmp/par1.json \
  -o /tmp/par1.out.xml /tmp/par.xml > /dev/null
dune exec bin/nexsort_cli.exe -- -B 1024 -M 16 --jobs 4 --metrics /tmp/par4.json \
  -o /tmp/par4.out.xml /tmp/par.xml > /dev/null
cmp /tmp/par1.out.xml /tmp/par4.out.xml
dune exec bench/main.exe -- compare-metrics /tmp/par1.json /tmp/par4.json
dune exec bench/main.exe -- compare-metrics /tmp/par4.json /tmp/par1.json

# Engine smoke: the multi-tenant daemon must serve interleaved jobs from
# two tenants under a queue-forcing budget and stay invisible in the
# result — every output byte-identical to a standalone single-job CLI
# run, every per-job I/O counter pinned equal (both compare directions),
# and zero leaked blocks in the shutdown summary.  A short multi-tenant
# fuzz run drives the same admission path through the config matrix.
rm -f /tmp/eng_jobs.txt
for i in 1 2 3 4 5 6 7 8; do
  t=acme; [ $((i % 2)) -eq 0 ] && t=bravo
  echo "sort -B 1024 -M 16 /tmp/par.xml -o /tmp/eng$i.xml --metrics /tmp/eng$i.json --tenant $t" \
    >> /tmp/eng_jobs.txt
done
dune exec bin/nexsortd.exe -- --memory 40 --block-size 1024 /tmp/eng_jobs.txt > /tmp/engd.out
grep -q 'leaked blocks: 0' /tmp/engd.out || {
  echo "engine smoke: daemon summary reports leaked blocks" >&2; cat /tmp/engd.out >&2; exit 1; }
grep -q '8 jobs: 8 done, 0 cancelled, 0 failed' /tmp/engd.out || {
  echo "engine smoke: not all daemon jobs completed" >&2; cat /tmp/engd.out >&2; exit 1; }
for i in 1 2 3 4 5 6 7 8; do
  cmp /tmp/eng$i.xml /tmp/par1.out.xml
  dune exec bench/main.exe -- compare-metrics /tmp/par1.json /tmp/eng$i.json
  dune exec bench/main.exe -- compare-metrics /tmp/eng$i.json /tmp/par1.json
done
dune exec bin/nexfuzz.exe -- --tenants 4 --cases 24 --fault-cases 0 > /dev/null

# Trace smoke: a --jobs 4 traced sort must produce a trace that nextrace
# validates, carrying the sorter's phase spans and one track per worker.
dune exec bin/nexsort_cli.exe -- -B 1024 -M 16 --jobs 4 --trace /tmp/trace4.json \
  -o /tmp/trace4.out.xml /tmp/par.xml > /dev/null
dune exec bin/nextrace.exe -- --check /tmp/trace4.json
dune exec bin/nextrace.exe -- --top 100 /tmp/trace4.json > /tmp/trace4.txt
for needle in input_scan subtree_sorts output 'worker 0' 'worker 1' 'worker 2' 'worker 3'; do
  grep -q "$needle" /tmp/trace4.txt || {
    echo "trace smoke: missing \"$needle\" in nextrace output" >&2; exit 1; }
done

# Wall-clock gate (bechamel): deliberately loose — fail only on a > 3x
# slowdown against the committed baseline.  Absolute times are noisy;
# the I/O-counter gates above are the precise regression signal.
dune exec bench/main.exe -- --quick --wall /tmp/wall.json wall > /dev/null
dune exec bench/main.exe -- compare-wall BENCH_wall.json /tmp/wall.json
cp /tmp/wall.json BENCH_wall.json

echo "check: OK"
