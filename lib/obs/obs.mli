(** Observability: metrics, phase spans and machine-readable run reports.

    The paper's whole argument is quantitative — block I/Os per phase
    (§4.2) and access-pattern shape (§1) — so every run of the system
    should be able to explain where its I/Os went without ad-hoc printf
    plumbing.  This library provides the three pieces:

    - a {e metrics registry} ({!Registry}) of named counters, gauges and
      log2-bucketed histograms, populated by pull (gauges read component
      state on demand) so that registering a metric never perturbs the
      measured system;
    - hierarchical {e spans} ({!Spans}) that capture wall time, simulated
      I/O time and an {!Extmem.Io_stats} delta per named phase, merging
      repeated phases of the same name (a sort performs thousands of
      subtree sorts but the report wants one aggregated row);
    - a dependency-free JSON encoder/decoder ({!Json}) and a report
      builder ({!Report}) that renders either one JSON document or
      newline-delimited JSON, with a schema version field for diffing
      across commits.

    Everything here only {e observes}: no function in this library
    performs device I/O, so default-path I/O counts are byte-identical
    with and without instrumentation. *)

(** Minimal JSON values: encoder and decoder, no external dependencies. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float  (** non-finite floats encode as [null] *)
    | Str of string
    | List of t list
    | Obj of (string * t) list  (** key order is preserved *)

  val to_string : ?minify:bool -> t -> string
  (** Render; pretty-printed with two-space indent by default (top-level
      keys of an object land at column 2, which the cram tests grep), or
      on one line with [~minify:true]. *)

  val of_string : string -> t
  (** Parse a JSON document.  Numbers without ['.'], ['e'] or ['E'] become
      {!Int}, everything else {!Float}.
      @raise Failure on malformed input. *)

  val member : string -> t -> t option
  (** [member k (Obj ...)] is the value under key [k]; [None] on a
      missing key or a non-object. *)

  val io_stats : Extmem.Io_stats.t -> t
  (** [{"reads": r, "writes": w, "total": r+w}]. *)
end

(** A monotonically increasing named count (events, bytes, retries). *)
module Counter : sig
  type t

  val name : t -> string
  val unit_ : t -> string
  val value : t -> int
  val incr : t -> unit
  val add : t -> int -> unit
end

(** Value distributions over fixed log2 buckets.

    Bucket [0] holds observations [<= 0]; bucket [i >= 1] holds values
    [v] with [2^(i-1) <= v < 2^i].  The bucket array is sized so that
    [max_int] lands in the last bucket — no observation is ever dropped
    or clamped. *)
module Histogram : sig
  type t

  val name : t -> string
  val unit_ : t -> string
  val observe : t -> int -> unit
  val count : t -> int
  val sum : t -> int
  val min_value : t -> int
  (** Smallest observation; [0] when empty. *)

  val max_value : t -> int
  val bucket_index : int -> int
  (** The bucket an observation falls into (exposed for tests). *)

  val buckets : t -> (int * int) list
  (** Non-empty buckets as [(upper_bound_exclusive, count)] pairs in
      ascending order; the last bucket reports [max_int] as its bound. *)
end

(** A registry: the named metrics of one run, in registration order.

    Counters and histograms are push-updated by their owners; gauges are
    callbacks sampled at snapshot time, so registering one costs the
    measured system nothing. *)
module Registry : sig
  type t

  val create : unit -> t

  val counter : t -> ?unit_:string -> string -> Counter.t
  (** Find-or-create: registering the same name twice returns the
      existing counter (units must then agree).
      @raise Invalid_argument if the name is already a gauge/histogram. *)

  val gauge : t -> ?unit_:string -> string -> (unit -> float) -> unit
  (** Register a sampled value.  Re-registering a name replaces the
      callback (a component restarted within one session wins). *)

  val histogram : t -> ?unit_:string -> string -> Histogram.t

  type snapshot = (string * float) list
  (** Metric values by name, in registration order.  Histograms
      contribute [name.count] and [name.sum] entries. *)

  val snapshot : t -> snapshot

  val diff : snapshot -> snapshot -> snapshot
  (** [diff now before]: componentwise difference; names missing from
      [before] count from zero, names missing from [now] are dropped. *)

  val snapshot_to_json : snapshot -> Json.t
  val snapshot_of_json : Json.t -> snapshot
  (** Inverse of {!snapshot_to_json} (for report round-trips).
      @raise Failure on a value that is not a number. *)

  val to_json : t -> Json.t
  (** Full structured dump: [{"counters": ..., "gauges": ...,
      "histograms": ...}], each keyed by metric name with its unit. *)
end

(** Session-wide low-overhead event tracer.

    Each registered domain owns a private bounded ring of fixed-size
    records (parallel int arrays): emitting is a monotonic-clock read
    plus a few array stores — no allocation, no locking, and when the
    ring is full records are dropped and counted rather than blocking.
    The disabled tracer ({!Tracer.null}) reduces every emit to one
    boolean test.  After worker domains have joined, {!Tracer.to_json}
    renders Chrome [trace_event] JSON (loadable in Perfetto /
    [chrome://tracing]; analyse offline with [nextrace]). *)
module Tracer : sig
  type t

  (** Record kinds: [Begin]/[End] bracket a span on the emitting track,
      [Instant] is a point event, [Count] carries a value, [Complete] is
      a closed span with explicit start and duration (used for per-I/O
      latencies). *)
  type kind = Begin | End | Instant | Count | Complete

  type record = {
    r_kind : kind;
    r_name : string;
    r_ts_ns : int;  (** ns since the tracer epoch (Complete: span start) *)
    r_value : int;  (** Count: value; Complete: duration in ns *)
  }

  val null : t
  (** The disabled tracer: every operation is a no-op. *)

  val create : ?capacity:int -> unit -> t
  (** Enabled tracer whose rings hold [capacity] records per track
      (default 65536).  The calling domain is registered as track
      ["main"]. *)

  val enabled : t -> bool

  val register_track : t -> string -> unit
  (** Bind the calling domain to a fresh named track.  Events emitted by
      an unregistered domain are discarded. *)

  val intern : t -> string -> int
  (** Intern an event name, returning the id to pass to the emitters.
      Takes a lock — hot call sites intern once at setup. *)

  val now_ns : t -> int
  (** Monotonic ns since the tracer epoch. *)

  val begin_span : t -> int -> unit
  val end_span : t -> int -> unit
  val instant : t -> int -> unit
  val counter : t -> int -> int -> unit

  val complete : t -> int -> start_ns:int -> dur_ns:int -> unit
  (** Emit a closed span with an explicit start and duration (both ns,
      start relative to the epoch). *)

  val begin_s : t -> string -> unit
  (** [begin_span] with per-call interning, for coarse call sites. *)

  val end_s : t -> string -> unit
  val instant_s : t -> string -> unit

  val register_latency : t -> device:string -> Extmem.Io_stats.Latency.t -> unit
  (** Attach a per-device I/O latency histogram to the flushed trace
      (same-named devices are merged at flush). *)

  val dropped : t -> int
  (** Total records dropped to full rings, across all tracks. *)

  val reset : t -> unit
  (** Zero every ring and forget registered latency meters, keeping the
      epoch, interned names and domain bindings.  Only call while no
      worker domain is emitting. *)

  val record_to_json : tid:int -> record -> Json.t
  (** One record as a Chrome [trace_event] object ([ph] B/E/i/C/X;
      timestamps in fractional microseconds). *)

  val record_of_json : Json.t -> record * int
  (** Inverse of {!record_to_json}; returns the record and its track id.
      Raises [Failure] on metadata or malformed events. *)

  val to_json : t -> Json.t
  (** Full trace: [{"traceEvents": [...], "displayTimeUnit", "otherData",
      "ioLatency"}].  Each track contributes a [thread_name] metadata
      event, its records in emission order, and a final ["trace.dropped"]
      counter.  Call only after worker domains have joined. *)

  val write_file : t -> string -> unit
  (** Minified {!to_json} to [path].  Raises [Sys_error] on I/O
      failure. *)
end

(** One aggregated phase of a run: a node of the span tree. *)
module Span : sig
  type t = {
    name : string;
    mutable count : int;        (** times the phase was entered *)
    mutable wall_s : float;     (** total wall time inside, seconds *)
    io : Extmem.Io_stats.t;     (** I/O delta accumulated inside *)
    mutable sim_ms : float;     (** simulated-cost delta accumulated inside *)
    mutable children : t list;  (** sub-phases, in first-entry order *)
  }

  val find : t -> string -> t option
  (** Direct child by name. *)

  val to_json : t -> Json.t
  (** [{"name", "count", "wall_s", "io", "sim_ms", "children"}],
      recursively. *)
end

(** Span recorder: scoped phase measurement over caller-supplied meters.

    A recorder owns a root span and a stack of open spans.  Entering a
    named phase under the same parent a second time merges into the
    existing child: counts and deltas accumulate, so hot phases stay one
    row in the report.  Parents include their children's costs (the
    meters are cumulative). *)
module Spans : sig
  type t

  val create :
    ?clock:(unit -> float) ->
    ?io:(unit -> Extmem.Io_stats.t) ->
    ?sim_ms:(unit -> float) ->
    ?tracer:Tracer.t ->
    string ->
    t
  (** [create name] starts a recorder whose root span is [name].
      [clock] defaults to [Unix.gettimeofday]; [io] and [sim_ms] are the
      cumulative meters sampled at phase boundaries and default to
      constant zero (spans then measure wall time only).  When [tracer]
      (default {!Tracer.null}) is enabled, every span entry/exit also
      emits a Begin/End event onto the calling domain's track, so the
      aggregate phase tree and the timeline come from one set of call
      sites. *)

  val with_span : t -> string -> (unit -> 'a) -> 'a
  (** Run the scope inside the named phase.  Exception-safe: the span is
      closed (and its deltas recorded) even when the scope raises. *)

  val depth : t -> int
  (** Number of currently open spans, root included (for tests). *)

  val close : t -> Span.t
  (** Close every still-open span, finalize the root's deltas, and return
      the span tree.  Further {!with_span} calls are an error. *)
end

(** Registration helpers wiring [extmem] components into a registry.

    These register pull gauges reading the component's live counters;
    they are the catalogue of standard metric names (see DESIGN.md
    "Observability" for the full table of names, units and emitters). *)
module Probe : sig
  val device : Registry.t -> prefix:string -> Extmem.Device.t -> unit
  (** [dev.<prefix>.reads|writes] (blocks), [dev.<prefix>.blocks]
      (allocated size), [dev.<prefix>.sim_ms] (when a cost layer is
      attached). *)

  val pager : Registry.t -> prefix:string -> Extmem.Pager.t -> unit
  (** [pager.<prefix>.hits|misses|evictions|writebacks] (block
      accesses). *)

  val ext_stack : Registry.t -> prefix:string -> Extmem.Ext_stack.t -> unit
  (** [stack.<prefix>.pushes|pops] (entries),
      [stack.<prefix>.page_ins|writebacks] (blocks),
      [stack.<prefix>.high_water] (bytes). *)

  val run_store : Registry.t -> prefix:string -> Extmem.Run_store.t -> unit
  (** [runs.<prefix>.count] (runs), [runs.<prefix>.blocks],
      [runs.<prefix>.bytes]. *)

  val frame_arena : Registry.t -> prefix:string -> Extmem.Frame_arena.t -> unit
  (** [<prefix>.held|hits|misses|evictions|writebacks]: totals over all
      arena owners, sampled at render time.  The per-owner breakdown is
      emitted separately in the metrics report's "arena" section. *)
end

(** Machine-readable run reports: an ordered list of named JSON sections
    under a schema version. *)
module Report : sig
  val schema_version : int
  (** Bumped whenever the meaning or layout of a section changes. *)

  type t

  val create : tool:string -> t
  val add : t -> string -> Json.t -> unit
  (** Append a top-level section; re-adding a name replaces it in
      place. *)

  val to_json : t -> Json.t
  (** [{"schema_version": ..., "tool": ..., <sections in order>}]. *)

  val to_string : ?minify:bool -> t -> string

  val to_ndjson : t -> string
  (** One line per section:
      [{"schema_version":..,"tool":..,"section":NAME,"data":..}]. *)

  val write_file : ?ndjson:bool -> t -> string -> unit
  (** Write to a path, or to stdout when the path is ["-"].  [".ndjson"]
      paths and [~ndjson:true] select the newline-delimited format. *)
end
