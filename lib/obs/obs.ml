(* Observability: metrics registry, phase spans, JSON run reports.
   Everything here observes only — no device I/O ever happens in this
   library, so instrumented and uninstrumented runs count identically. *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  let escape buf s =
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s

  let float_repr f =
    if not (Float.is_finite f) then "null"
    else
      let s = Printf.sprintf "%.12g" f in
      (* "%g" may print an integral float without a decimal point; that is
         still a valid JSON number, so leave it alone *)
      s

  let to_string ?(minify = false) t =
    let buf = Buffer.create 256 in
    let indent n = Buffer.add_string buf (String.make (2 * n) ' ') in
    let nl () = if not minify then Buffer.add_char buf '\n' in
    let rec go depth t =
      match t with
      | Null -> Buffer.add_string buf "null"
      | Bool b -> Buffer.add_string buf (if b then "true" else "false")
      | Int i -> Buffer.add_string buf (string_of_int i)
      | Float f -> Buffer.add_string buf (float_repr f)
      | Str s ->
          Buffer.add_char buf '"';
          escape buf s;
          Buffer.add_char buf '"'
      | List [] -> Buffer.add_string buf "[]"
      | List items ->
          Buffer.add_char buf '[';
          nl ();
          List.iteri
            (fun i item ->
              if i > 0 then begin
                Buffer.add_char buf ',';
                nl ()
              end;
              if not minify then indent (depth + 1);
              go (depth + 1) item)
            items;
          nl ();
          if not minify then indent depth;
          Buffer.add_char buf ']'
      | Obj [] -> Buffer.add_string buf "{}"
      | Obj fields ->
          Buffer.add_char buf '{';
          nl ();
          List.iteri
            (fun i (k, v) ->
              if i > 0 then begin
                Buffer.add_char buf ',';
                nl ()
              end;
              if not minify then indent (depth + 1);
              Buffer.add_char buf '"';
              escape buf k;
              Buffer.add_string buf (if minify then "\":" else "\": ");
              go (depth + 1) v)
            fields;
          nl ();
          if not minify then indent depth;
          Buffer.add_char buf '}'
    in
    go 0 t;
    Buffer.contents buf

  (* ---- parsing ---- *)

  exception Bad of string

  let of_string s =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
          advance ();
          skip_ws ()
      | _ -> ()
    in
    let expect c =
      if !pos < n && s.[!pos] = c then advance ()
      else fail (Printf.sprintf "expected %C" c)
    in
    let literal lit v =
      let l = String.length lit in
      if !pos + l <= n && String.sub s !pos l = lit then begin
        pos := !pos + l;
        v
      end
      else fail ("expected " ^ lit)
    in
    let add_utf8 buf cp =
      if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
      else if cp < 0x800 then begin
        Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
        Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
      end
      else if cp < 0x10000 then begin
        Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
        Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
        Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
      end
      else begin
        Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
        Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
        Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
        Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
      end
    in
    let hex4 () =
      if !pos + 4 > n then fail "truncated \\u escape";
      let v = int_of_string ("0x" ^ String.sub s !pos 4) in
      pos := !pos + 4;
      v
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string";
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            if !pos >= n then fail "truncated escape";
            let c = s.[!pos] in
            advance ();
            (match c with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'u' ->
                let cp = hex4 () in
                let cp =
                  (* combine a surrogate pair when one follows *)
                  if cp >= 0xD800 && cp <= 0xDBFF && !pos + 6 <= n
                     && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
                  then begin
                    pos := !pos + 2;
                    let lo = hex4 () in
                    0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
                  end
                  else cp
                in
                add_utf8 buf cp
            | c -> fail (Printf.sprintf "bad escape \\%c" c));
            go ()
        | c ->
            Buffer.add_char buf c;
            advance ();
            go ()
      in
      go ();
      Buffer.contents buf
    in
    let parse_number () =
      let start = !pos in
      let is_num_char c =
        match c with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while !pos < n && is_num_char s.[!pos] do
        advance ()
      done;
      let lit = String.sub s start (!pos - start) in
      if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') lit then
        match float_of_string_opt lit with
        | Some f -> Float f
        | None -> fail ("bad number " ^ lit)
      else
        match int_of_string_opt lit with
        | Some i -> Int i
        | None -> (
            match float_of_string_opt lit with
            | Some f -> Float f
            | None -> fail ("bad number " ^ lit))
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '"' -> Str (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some '[' ->
          advance ();
          skip_ws ();
          if peek () = Some ']' then begin
            advance ();
            List []
          end
          else begin
            let rec items acc =
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  items (v :: acc)
              | Some ']' ->
                  advance ();
                  List.rev (v :: acc)
              | _ -> fail "expected ',' or ']'"
            in
            List (items [])
          end
      | Some '{' ->
          advance ();
          skip_ws ();
          if peek () = Some '}' then begin
            advance ();
            Obj []
          end
          else begin
            let rec fields acc =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  fields ((k, v) :: acc)
              | Some '}' ->
                  advance ();
                  List.rev ((k, v) :: acc)
              | _ -> fail "expected ',' or '}'"
            in
            Obj (fields [])
          end
      | Some ('-' | '0' .. '9') -> parse_number ()
      | Some c -> fail (Printf.sprintf "unexpected %C" c)
    in
    match parse_value () with
    | v ->
        skip_ws ();
        if !pos <> n then failwith (Printf.sprintf "Obs.Json: trailing garbage at offset %d" !pos);
        v
    | exception Bad msg -> failwith ("Obs.Json: " ^ msg)

  let member k = function
    | Obj fields -> List.assoc_opt k fields
    | Null | Bool _ | Int _ | Float _ | Str _ | List _ -> None

  let io_stats (s : Extmem.Io_stats.t) =
    Obj
      [
        ("reads", Int s.Extmem.Io_stats.reads);
        ("writes", Int s.Extmem.Io_stats.writes);
        ("total", Int (Extmem.Io_stats.total s));
      ]
end

(* Counters are the one observability primitive bumped from worker
   domains, so they are atomic.  Histograms, spans and the registry stay
   main-thread only. *)
module Counter = struct
  type t = {
    name : string;
    unit_ : string;
    value : int Atomic.t;
  }

  let make ~name ~unit_ = { name; unit_; value = Atomic.make 0 }
  let name c = c.name
  let unit_ c = c.unit_
  let value c = Atomic.get c.value
  let incr c = Atomic.incr c.value
  let add c n = ignore (Atomic.fetch_and_add c.value n)
end

module Histogram = struct
  (* log2 buckets: index 0 holds v <= 0, index i >= 1 holds
     2^(i-1) <= v < 2^i.  max_int has 62 significant bits, so index 62 is
     the last bucket and the array never overflows. *)
  let n_buckets = 63

  type t = {
    name : string;
    unit_ : string;
    mutable count : int;
    mutable sum : int;
    mutable min_v : int;
    mutable max_v : int;
    counts : int array;
  }

  let make ~name ~unit_ =
    { name; unit_; count = 0; sum = 0; min_v = 0; max_v = 0; counts = Array.make n_buckets 0 }

  let name h = h.name
  let unit_ h = h.unit_

  let bucket_index v =
    if v <= 0 then 0
    else begin
      let bits = ref 0 in
      let v = ref v in
      while !v > 0 do
        incr bits;
        v := !v lsr 1
      done;
      !bits
    end

  let observe h v =
    if h.count = 0 then begin
      h.min_v <- v;
      h.max_v <- v
    end
    else begin
      if v < h.min_v then h.min_v <- v;
      if v > h.max_v then h.max_v <- v
    end;
    h.count <- h.count + 1;
    h.sum <- h.sum + v;
    let i = bucket_index v in
    h.counts.(i) <- h.counts.(i) + 1

  let count h = h.count
  let sum h = h.sum
  let min_value h = h.min_v
  let max_value h = h.max_v

  let bucket_bound i =
    (* exclusive upper bound of bucket i; 1 lsl 62 would wrap, so the last
       bucket reports max_int *)
    if i = 0 then 1 else if i >= 62 then max_int else 1 lsl i

  let buckets h =
    let acc = ref [] in
    for i = n_buckets - 1 downto 0 do
      if h.counts.(i) > 0 then acc := (bucket_bound i, h.counts.(i)) :: !acc
    done;
    !acc
end

module Registry = struct
  type kind =
    | C of Counter.t
    | G of (unit -> float) ref
    | H of Histogram.t

  type entry = {
    e_name : string;
    e_unit : string;
    kind : kind;
  }

  type t = { mutable entries : entry list (* reversed *) }

  let create () = { entries = [] }

  let find t name = List.find_opt (fun e -> e.e_name = name) t.entries

  let counter t ?(unit_ = "") name =
    match find t name with
    | Some { kind = C c; _ } -> c
    | Some _ -> invalid_arg (Printf.sprintf "Obs.Registry: %S is not a counter" name)
    | None ->
        let c = Counter.make ~name ~unit_ in
        t.entries <- { e_name = name; e_unit = unit_; kind = C c } :: t.entries;
        c

  let gauge t ?(unit_ = "") name read =
    match find t name with
    | Some { kind = G cell; _ } -> cell := read
    | Some _ -> invalid_arg (Printf.sprintf "Obs.Registry: %S is not a gauge" name)
    | None -> t.entries <- { e_name = name; e_unit = unit_; kind = G (ref read) } :: t.entries

  let histogram t ?(unit_ = "") name =
    match find t name with
    | Some { kind = H h; _ } -> h
    | Some _ -> invalid_arg (Printf.sprintf "Obs.Registry: %S is not a histogram" name)
    | None ->
        let h = Histogram.make ~name ~unit_ in
        t.entries <- { e_name = name; e_unit = unit_; kind = H h } :: t.entries;
        h

  type snapshot = (string * float) list

  let snapshot t =
    List.rev_map
      (fun e ->
        match e.kind with
        | C c -> [ (e.e_name, float_of_int (Counter.value c)) ]
        | G read -> [ (e.e_name, !read ()) ]
        | H h ->
            [
              (e.e_name ^ ".count", float_of_int (Histogram.count h));
              (e.e_name ^ ".sum", float_of_int (Histogram.sum h));
            ])
      t.entries
    |> List.concat

  let diff now before =
    List.map
      (fun (name, v) ->
        let b = Option.value (List.assoc_opt name before) ~default:0. in
        (name, v -. b))
      now

  let num v =
    (* counters and most gauges are integral: render them as JSON ints *)
    if Float.is_integer v && Float.abs v < 1e15 then Json.Int (int_of_float v) else Json.Float v

  let snapshot_to_json snap = Json.Obj (List.map (fun (k, v) -> (k, num v)) snap)

  let snapshot_of_json = function
    | Json.Obj fields ->
        List.map
          (fun (k, v) ->
            match v with
            | Json.Int i -> (k, float_of_int i)
            | Json.Float f -> (k, f)
            | _ -> failwith "Obs.Registry.snapshot_of_json: non-numeric value")
          fields
    | _ -> failwith "Obs.Registry.snapshot_of_json: expected an object"

  let to_json t =
    let entries = List.rev t.entries in
    let section pick render =
      List.filter_map
        (fun e -> match pick e.kind with Some x -> Some (e.e_name, render e x) | None -> None)
        entries
    in
    let with_unit e v = if e.e_unit = "" then v else Json.Obj [ ("value", v); ("unit", Json.Str e.e_unit) ] in
    Json.Obj
      [
        ( "counters",
          Json.Obj
            (section
               (function C c -> Some c | _ -> None)
               (fun e c -> with_unit e (Json.Int (Counter.value c)))) );
        ( "gauges",
          Json.Obj
            (section
               (function G r -> Some r | _ -> None)
               (fun e r -> with_unit e (num (!r ())))) );
        ( "histograms",
          Json.Obj
            (section
               (function H h -> Some h | _ -> None)
               (fun e h ->
                 Json.Obj
                   ([
                      ("count", Json.Int (Histogram.count h));
                      ("sum", Json.Int (Histogram.sum h));
                      ("min", Json.Int (Histogram.min_value h));
                      ("max", Json.Int (Histogram.max_value h));
                      ( "buckets",
                        Json.List
                          (List.map
                             (fun (bound, c) ->
                               Json.Obj [ ("lt", Json.Int bound); ("count", Json.Int c) ])
                             (Histogram.buckets h)) );
                    ]
                   @ if e.e_unit = "" then [] else [ ("unit", Json.Str e.e_unit) ]))) );
      ]
end

module Tracer = struct
  (* Session-wide event tracer.  Each domain that registers gets a private
     bounded ring of fixed-size records (four parallel int arrays); emitting
     is a handful of array stores plus one monotonic-clock read, no
     allocation, no locking.  When a ring fills, further records are dropped
     and counted — emitting never blocks.  Flushing (after workers have
     joined) renders Chrome trace_event JSON loadable in Perfetto. *)

  type kind = Begin | End | Instant | Count | Complete

  type record = { r_kind : kind; r_name : string; r_ts_ns : int; r_value : int }

  type track = {
    tid : int;
    track_name : string;
    t_kind : int array;
    t_name : int array; (* interned name ids *)
    t_ts : int array; (* ns since tracer epoch; Complete: span start *)
    t_value : int array; (* Count: value; Complete: duration ns *)
    mutable t_pos : int;
    mutable t_dropped : int;
  }

  type t = {
    enabled : bool;
    capacity : int;
    epoch : int64;
    lock : Mutex.t; (* guards interning and track creation, never emits *)
    names : (string, int) Hashtbl.t;
    mutable rev_names : string list; (* id order is list order reversed *)
    mutable n_names : int;
    mutable tracks : track list; (* reversed creation order *)
    by_domain : (int * track) list Atomic.t;
    mutable next_tid : int;
    mutable latencies : (string * Extmem.Io_stats.Latency.t) list;
  }

  let null =
    {
      enabled = false;
      capacity = 0;
      epoch = 0L;
      lock = Mutex.create ();
      names = Hashtbl.create 1;
      rev_names = [];
      n_names = 0;
      tracks = [];
      by_domain = Atomic.make [];
      next_tid = 0;
      latencies = [];
    }

  let enabled t = t.enabled

  let intern t name =
    if not t.enabled then 0
    else begin
      Mutex.lock t.lock;
      let id =
        match Hashtbl.find_opt t.names name with
        | Some id -> id
        | None ->
            let id = t.n_names in
            Hashtbl.add t.names name id;
            t.rev_names <- name :: t.rev_names;
            t.n_names <- id + 1;
            id
      in
      Mutex.unlock t.lock;
      id
    end

  (* A domain id is never reused (OCaml guarantees fresh ids), so binding
     the current domain to a track via compare-and-set on an immutable
     assoc list is race-free and emitters read it without any lock. *)
  let register_track t name =
    if t.enabled then begin
      Mutex.lock t.lock;
      let tr =
        {
          tid = t.next_tid;
          track_name = name;
          t_kind = Array.make t.capacity 0;
          t_name = Array.make t.capacity 0;
          t_ts = Array.make t.capacity 0;
          t_value = Array.make t.capacity 0;
          t_pos = 0;
          t_dropped = 0;
        }
      in
      t.next_tid <- t.next_tid + 1;
      t.tracks <- tr :: t.tracks;
      Mutex.unlock t.lock;
      let d = (Domain.self () :> int) in
      let rec bind () =
        let cur = Atomic.get t.by_domain in
        let next = (d, tr) :: List.remove_assoc d cur in
        if not (Atomic.compare_and_set t.by_domain cur next) then bind ()
      in
      bind ()
    end

  let create ?(capacity = 1 lsl 16) () =
    if capacity < 1 then invalid_arg "Obs.Tracer.create: capacity must be positive";
    let t =
      {
        enabled = true;
        capacity;
        epoch = Monotonic_clock.now ();
        lock = Mutex.create ();
        names = Hashtbl.create 64;
        rev_names = [];
        n_names = 0;
        tracks = [];
        by_domain = Atomic.make [];
        next_tid = 0;
        latencies = [];
      }
    in
    register_track t "main";
    t

  let now_ns t = Int64.to_int (Int64.sub (Monotonic_clock.now ()) t.epoch)

  let kind_tag = function Begin -> 0 | End -> 1 | Instant -> 2 | Count -> 3 | Complete -> 4
  let kind_of_tag = function
    | 0 -> Begin
    | 1 -> End
    | 2 -> Instant
    | 3 -> Count
    | _ -> Complete

  let track_for t =
    let d = (Domain.self () :> int) in
    let rec find = function
      | [] -> None
      | (k, tr) :: tl -> if k = d then Some tr else find tl
    in
    find (Atomic.get t.by_domain)

  let emit t kind name_id ts value =
    match track_for t with
    | None -> ()
    | Some tr ->
        let p = tr.t_pos in
        if p >= t.capacity then tr.t_dropped <- tr.t_dropped + 1
        else begin
          tr.t_kind.(p) <- kind_tag kind;
          tr.t_name.(p) <- name_id;
          tr.t_ts.(p) <- ts;
          tr.t_value.(p) <- value;
          tr.t_pos <- p + 1
        end

  let begin_span t id = if t.enabled then emit t Begin id (now_ns t) 0
  let end_span t id = if t.enabled then emit t End id (now_ns t) 0
  let instant t id = if t.enabled then emit t Instant id (now_ns t) 0
  let counter t id v = if t.enabled then emit t Count id (now_ns t) v
  let complete t id ~start_ns ~dur_ns = if t.enabled then emit t Complete id start_ns dur_ns

  (* string-keyed conveniences for coarse call sites (one mutex-protected
     hash lookup per event; hot sites pre-intern instead) *)
  let begin_s t name = if t.enabled then emit t Begin (intern t name) (now_ns t) 0
  let end_s t name = if t.enabled then emit t End (intern t name) (now_ns t) 0
  let instant_s t name = if t.enabled then emit t Instant (intern t name) (now_ns t) 0

  let register_latency t ~device lat =
    if t.enabled then begin
      Mutex.lock t.lock;
      t.latencies <- (device, lat) :: t.latencies;
      Mutex.unlock t.lock
    end

  let dropped t = List.fold_left (fun acc tr -> acc + tr.t_dropped) 0 t.tracks

  (* Re-arm the tracer for another measured run: zero every ring and forget
     registered latency meters, but keep the epoch, interned names and
     domain bindings.  Only call while no worker domains are emitting. *)
  let reset t =
    if t.enabled then begin
      Mutex.lock t.lock;
      List.iter
        (fun tr ->
          tr.t_pos <- 0;
          tr.t_dropped <- 0)
        t.tracks;
      t.latencies <- [];
      Mutex.unlock t.lock
    end

  (* --- Chrome trace_event rendering --- *)

  let us ns = Json.Float (float_of_int ns /. 1000.)

  let record_to_json ~tid r =
    let base ph =
      [
        ("name", Json.Str r.r_name);
        ("ph", Json.Str ph);
        ("ts", us r.r_ts_ns);
        ("pid", Json.Int 0);
        ("tid", Json.Int tid);
      ]
    in
    match r.r_kind with
    | Begin -> Json.Obj (base "B")
    | End -> Json.Obj (base "E")
    | Instant -> Json.Obj (base "i" @ [ ("s", Json.Str "t") ])
    | Count -> Json.Obj (base "C" @ [ ("args", Json.Obj [ ("value", Json.Int r.r_value) ]) ])
    | Complete -> Json.Obj (base "X" @ [ ("dur", us r.r_value) ])

  let record_of_json j =
    let obj =
      match j with
      | Json.Obj o -> o
      | _ -> failwith "Obs.Tracer: trace event is not an object"
    in
    let field k =
      match List.assoc_opt k obj with
      | Some v -> v
      | None -> failwith (Printf.sprintf "Obs.Tracer: trace event missing %S" k)
    in
    let str k =
      match field k with
      | Json.Str s -> s
      | _ -> failwith (Printf.sprintf "Obs.Tracer: field %S is not a string" k)
    in
    let int_field k =
      match field k with
      | Json.Int i -> i
      | _ -> failwith (Printf.sprintf "Obs.Tracer: field %S is not an integer" k)
    in
    (* timestamps travel as fractional microseconds; exact for any span
       a real run can produce (ns below 2^50) *)
    let ns_field k =
      match field k with
      | Json.Float f -> int_of_float (Float.round (f *. 1000.))
      | Json.Int i -> i * 1000
      | _ -> failwith (Printf.sprintf "Obs.Tracer: field %S is not a number" k)
    in
    let tid = int_field "tid" in
    let name = str "name" in
    let ts = ns_field "ts" in
    let kind, value =
      match str "ph" with
      | "B" -> (Begin, 0)
      | "E" -> (End, 0)
      | "i" | "I" -> (Instant, 0)
      | "X" -> (Complete, ns_field "dur")
      | "C" -> (
          ( Count,
            match field "args" with
            | Json.Obj a -> (
                match List.assoc_opt "value" a with
                | Some (Json.Int i) -> i
                | _ -> failwith "Obs.Tracer: counter event without integer args.value")
            | _ -> failwith "Obs.Tracer: counter event without args" ))
      | ph -> failwith (Printf.sprintf "Obs.Tracer: unsupported event phase %S" ph)
    in
    ({ r_kind = kind; r_name = name; r_ts_ns = ts; r_value = value }, tid)

  let latency_to_json lat =
    let histo h =
      Json.Obj
        [
          ("count", Json.Int (Extmem.Io_stats.Latency.count h));
          ("sum_ns", Json.Int (Extmem.Io_stats.Latency.sum_ns h));
          ("max_ns", Json.Int (Extmem.Io_stats.Latency.max_ns h));
          ( "buckets",
            Json.List
              (List.map
                 (fun (bound, c) -> Json.Obj [ ("lt", Json.Int bound); ("count", Json.Int c) ])
                 (Extmem.Io_stats.Latency.buckets h)) );
        ]
    in
    Json.Obj
      [
        ("read", histo lat.Extmem.Io_stats.Latency.read);
        ("write", histo lat.Extmem.Io_stats.Latency.write);
      ]

  (* Merge same-named devices (sessions recreate scratch devices under a
     stable name) so the flushed section has unique keys. *)
  let merged_latencies t =
    let order = ref [] in
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun (dev, lat) ->
        match Hashtbl.find_opt tbl dev with
        | Some acc -> Extmem.Io_stats.Latency.accumulate ~into:acc lat
        | None ->
            let acc = Extmem.Io_stats.Latency.create () in
            Extmem.Io_stats.Latency.accumulate ~into:acc lat;
            Hashtbl.add tbl dev acc;
            order := dev :: !order)
      (List.rev t.latencies);
    List.rev_map (fun dev -> (dev, Hashtbl.find tbl dev)) !order

  let to_json t =
    let names = Array.of_list (List.rev t.rev_names) in
    let tracks = List.rev t.tracks in
    let meta =
      List.map
        (fun tr ->
          Json.Obj
            [
              ("name", Json.Str "thread_name");
              ("ph", Json.Str "M");
              ("pid", Json.Int 0);
              ("tid", Json.Int tr.tid);
              ("args", Json.Obj [ ("name", Json.Str tr.track_name) ]);
            ])
        tracks
    in
    let events =
      List.concat_map
        (fun tr ->
          let evs = ref [] in
          for i = tr.t_pos - 1 downto 0 do
            let r =
              {
                r_kind = kind_of_tag tr.t_kind.(i);
                r_name = names.(tr.t_name.(i));
                r_ts_ns = tr.t_ts.(i);
                r_value = tr.t_value.(i);
              }
            in
            evs := record_to_json ~tid:tr.tid r :: !evs
          done;
          (* account ring overflow in-band so analyzers see it *)
          let last_ts = if tr.t_pos > 0 then tr.t_ts.(tr.t_pos - 1) else 0 in
          let drop =
            { r_kind = Count; r_name = "trace.dropped"; r_ts_ns = last_ts; r_value = tr.t_dropped }
          in
          !evs @ [ record_to_json ~tid:tr.tid drop ])
        tracks
    in
    Json.Obj
      [
        ("traceEvents", Json.List (meta @ events));
        ("displayTimeUnit", Json.Str "ms");
        ( "otherData",
          Json.Obj
            [
              ("tool", Json.Str "nexsort-trace");
              ("schema_version", Json.Int 1);
              ("capacity", Json.Int t.capacity);
              ("dropped", Json.Int (dropped t));
            ] );
        ("ioLatency", Json.Obj (List.map (fun (dev, lat) -> (dev, latency_to_json lat)) (merged_latencies t)));
      ]

  let write_file t path =
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        output_string oc (Json.to_string ~minify:true (to_json t));
        output_char oc '\n')
end

module Span = struct
  type t = {
    name : string;
    mutable count : int;
    mutable wall_s : float;
    io : Extmem.Io_stats.t;
    mutable sim_ms : float;
    mutable children : t list; (* reversed while recording *)
  }

  let make name =
    { name; count = 0; wall_s = 0.; io = Extmem.Io_stats.create (); sim_ms = 0.; children = [] }

  let find t name = List.find_opt (fun c -> c.name = name) t.children

  let rec to_json t =
    Json.Obj
      [
        ("name", Json.Str t.name);
        ("count", Json.Int t.count);
        ("wall_s", Json.Float t.wall_s);
        ("io", Json.io_stats t.io);
        ("sim_ms", Json.Float t.sim_ms);
        ("children", Json.List (List.map to_json t.children));
      ]
end

module Spans = struct
  type open_span = {
    span : Span.t;
    wall0 : float;
    io0 : Extmem.Io_stats.t;
    sim0 : float;
  }

  type t = {
    clock : unit -> float;
    io : unit -> Extmem.Io_stats.t;
    sim_ms : unit -> float;
    tracer : Tracer.t;
    mutable stack : open_span list; (* innermost first; last is the root *)
    mutable closed : bool;
  }

  let zero_io () = Extmem.Io_stats.create ()

  let enter_span t span =
    Tracer.begin_s t.tracer span.Span.name;
    { span; wall0 = t.clock (); io0 = Extmem.Io_stats.snapshot (t.io ()); sim0 = t.sim_ms () }

  let create ?(clock = Unix.gettimeofday) ?(io = zero_io) ?(sim_ms = fun () -> 0.)
      ?(tracer = Tracer.null) name =
    let t = { clock; io; sim_ms; tracer; stack = []; closed = false } in
    t.stack <- [ enter_span t (Span.make name) ];
    t

  let finalize t o =
    let sp = o.span in
    Tracer.end_s t.tracer sp.Span.name;
    sp.Span.count <- sp.Span.count + 1;
    sp.Span.wall_s <- sp.Span.wall_s +. (t.clock () -. o.wall0);
    Extmem.Io_stats.accumulate ~into:sp.Span.io
      (Extmem.Io_stats.diff (Extmem.Io_stats.snapshot (t.io ())) o.io0);
    sp.Span.sim_ms <- sp.Span.sim_ms +. (t.sim_ms () -. o.sim0);
    (* recording order reversed children; keep them in first-entry order *)
    sp.Span.children <- List.rev sp.Span.children

  let with_span t name f =
    if t.closed then invalid_arg "Obs.Spans: recorder already closed";
    let parent =
      match t.stack with
      | o :: _ -> o.span
      | [] -> assert false
    in
    let span =
      match Span.find parent name with
      | Some sp ->
          (* re-entered phase: children were re-reversed at the previous
             exit; flip back so new sub-phases append correctly *)
          sp.Span.children <- List.rev sp.Span.children;
          sp
      | None ->
          let sp = Span.make name in
          parent.Span.children <- sp :: parent.Span.children;
          sp
    in
    let o = enter_span t span in
    t.stack <- o :: t.stack;
    Fun.protect
      ~finally:(fun () ->
        (match t.stack with
        | top :: rest when top == o ->
            t.stack <- rest;
            finalize t top
        | _ ->
            (* scopes escaped out of order (an exception unwound through
               several spans): close everything down to this span *)
            let rec unwind () =
              match t.stack with
              | [] -> ()
              | top :: rest ->
                  t.stack <- rest;
                  finalize t top;
                  if not (top == o) then unwind ()
            in
            unwind ()))
      f

  let depth t = List.length t.stack

  let close t =
    if t.closed then invalid_arg "Obs.Spans: recorder already closed";
    let rec unwind root =
      match t.stack with
      | [] -> root
      | top :: rest ->
          t.stack <- rest;
          finalize t top;
          unwind (Some top.span)
    in
    let root = unwind None in
    t.closed <- true;
    match root with
    | Some r -> r
    | None -> assert false
end

module Probe = struct
  let device reg ~prefix dev =
    let p name = Printf.sprintf "dev.%s.%s" prefix name in
    let stats = Extmem.Device.stats dev in
    Registry.gauge reg ~unit_:"blocks" (p "reads") (fun () ->
        float_of_int stats.Extmem.Io_stats.reads);
    Registry.gauge reg ~unit_:"blocks" (p "writes") (fun () ->
        float_of_int stats.Extmem.Io_stats.writes);
    Registry.gauge reg ~unit_:"blocks" (p "blocks") (fun () ->
        float_of_int (Extmem.Device.block_count dev));
    Registry.gauge reg ~unit_:"ms" (p "sim_ms") (fun () -> Extmem.Device.simulated_ms dev)

  let pager reg ~prefix pg =
    let p name = Printf.sprintf "pager.%s.%s" prefix name in
    Registry.gauge reg ~unit_:"accesses" (p "hits") (fun () ->
        float_of_int (Extmem.Pager.hits pg));
    Registry.gauge reg ~unit_:"accesses" (p "misses") (fun () ->
        float_of_int (Extmem.Pager.misses pg));
    Registry.gauge reg ~unit_:"frames" (p "evictions") (fun () ->
        float_of_int (Extmem.Pager.evictions pg));
    Registry.gauge reg ~unit_:"blocks" (p "writebacks") (fun () ->
        float_of_int (Extmem.Pager.writebacks pg))

  let ext_stack reg ~prefix st =
    let p name = Printf.sprintf "stack.%s.%s" prefix name in
    Registry.gauge reg ~unit_:"entries" (p "pushes") (fun () ->
        float_of_int (Extmem.Ext_stack.pushes st));
    Registry.gauge reg ~unit_:"entries" (p "pops") (fun () ->
        float_of_int (Extmem.Ext_stack.pops st));
    Registry.gauge reg ~unit_:"blocks" (p "page_ins") (fun () ->
        float_of_int (Extmem.Ext_stack.page_ins st));
    Registry.gauge reg ~unit_:"blocks" (p "writebacks") (fun () ->
        float_of_int (Extmem.Ext_stack.writebacks st));
    Registry.gauge reg ~unit_:"bytes" (p "high_water") (fun () ->
        float_of_int (Extmem.Ext_stack.high_water st))

  let run_store reg ~prefix rs =
    let p name = Printf.sprintf "runs.%s.%s" prefix name in
    Registry.gauge reg ~unit_:"runs" (p "count") (fun () ->
        float_of_int (Extmem.Run_store.run_count rs));
    Registry.gauge reg ~unit_:"blocks" (p "blocks") (fun () ->
        float_of_int (Extmem.Run_store.total_run_blocks rs));
    Registry.gauge reg ~unit_:"bytes" (p "bytes") (fun () ->
        float_of_int (Extmem.Run_store.total_run_bytes rs))

  let frame_arena reg ~prefix fa =
    (* Aggregate pull gauges over all owners (sampled at render time, so
       owners that appear after registration are still counted); the
       per-owner breakdown goes into the report's "arena" section. *)
    let p name = Printf.sprintf "%s.%s" prefix name in
    let total f = float_of_int (f (Extmem.Frame_arena.totals fa)) in
    Registry.gauge reg ~unit_:"blocks" (p "held") (fun () ->
        total (fun (s : Extmem.Frame_arena.owner_stats) -> s.held));
    Registry.gauge reg ~unit_:"accesses" (p "hits") (fun () ->
        total (fun (s : Extmem.Frame_arena.owner_stats) -> s.hits));
    Registry.gauge reg ~unit_:"accesses" (p "misses") (fun () ->
        total (fun (s : Extmem.Frame_arena.owner_stats) -> s.misses));
    Registry.gauge reg ~unit_:"frames" (p "evictions") (fun () ->
        total (fun (s : Extmem.Frame_arena.owner_stats) -> s.evictions));
    Registry.gauge reg ~unit_:"blocks" (p "writebacks") (fun () ->
        total (fun (s : Extmem.Frame_arena.owner_stats) -> s.writebacks))
end

module Report = struct
  (* v2: run reports gained the "gc" section (allocation words and
     collection counts over the run).
     v3: ingest tools emit an "ingest" section — a list of per-flush
     objects (batch sizes, queue counters, merge + I/O deltas). *)
  let schema_version = 3

  type t = {
    tool : string;
    mutable sections : (string * Json.t) list; (* reversed *)
  }

  let create ~tool = { tool; sections = [] }

  let add t name json =
    if List.mem_assoc name t.sections then
      t.sections <- List.map (fun (n, v) -> if n = name then (n, json) else (n, v)) t.sections
    else t.sections <- (name, json) :: t.sections

  let to_json t =
    Json.Obj
      ([ ("schema_version", Json.Int schema_version); ("tool", Json.Str t.tool) ]
      @ List.rev t.sections)

  let to_string ?minify t = Json.to_string ?minify (to_json t)

  let to_ndjson t =
    let line (name, data) =
      Json.to_string ~minify:true
        (Json.Obj
           [
             ("schema_version", Json.Int schema_version);
             ("tool", Json.Str t.tool);
             ("section", Json.Str name);
             ("data", data);
           ])
    in
    String.concat "\n" (List.map line (List.rev t.sections)) ^ "\n"

  let write_file ?(ndjson = false) t path =
    let ndjson = ndjson || Filename.check_suffix path ".ndjson" in
    let contents = if ndjson then to_ndjson t else to_string t ^ "\n" in
    if path = "-" then (
      print_string contents;
      flush stdout)
    else begin
      let oc = open_out_bin path in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)
    end
end
