(** The multi-tenant sort engine: process-wide resources — one memory
    budget, one shared {!Nexsort.Sort_pool}, a metrics registry and a
    tracer — plus admission control, serving many concurrent sort jobs.

    A {!Nexsort.Session} used to own all of this for its one sort; under
    the engine it is a per-job view instead: {!acquire} carves the job's
    budgets out of the engine's (queuing the job when they do not fit,
    rather than raising [Exhausted]), {!session} builds the session over
    the carves, and {!release} returns them — force-reclaiming and
    counting whatever a faulted job leaked, so one tenant's abort can
    never shrink the engine.  The single-job CLIs run through
    {!for_config}: one-job engine, same machinery.

    {b Admission} is FIFO with per-tenant fairness: among queued jobs,
    the tenant with the fewest running jobs goes first (arrival order
    breaks ties), and nobody skips ahead of a queued job the budget
    cannot yet fit — a stream of small jobs cannot starve a large one.

    {b Cancellation} is cooperative: {!cancel_job} flips the job's flag;
    its session polls the flag at scan and output checkpoints and raises
    {!Cancelled}, after which the normal teardown path (session destroy,
    pool-view close, {!release}) returns every block. *)

exception Cancelled
(** Raised by a cancelled job's poll hook at its next checkpoint, and by
    {!acquire} if the job is cancelled while still queued. *)

type t

type job
(** An admitted job: its carved budgets, cancellation flag and queue-wait
    time.  Obtained from {!acquire}; must be {!release}d. *)

val create :
  ?tracer:Obs.Tracer.t ->
  ?workers:int ->
  memory_blocks:int ->
  block_size:int ->
  unit ->
  t
(** An engine with [memory_blocks] blocks of [block_size] bytes to carve
    jobs from, and a shared pool of [workers] worker domains (0, the
    default, spawns no pool — parallel jobs then spawn private pools).
    Job budgets of other block sizes are carved cross-granularity
    (charged in engine blocks, rounded up). *)

val for_config : ?tracer:Obs.Tracer.t -> ?slots:int -> Nexsort.Config.t -> t
(** An engine sized for exactly [slots] (default 1) concurrent jobs of
    [config]: the single-job CLI path, running one sort through the same
    admission/carve/release machinery with zero queue wait.  Use
    [slots = 2] for the fused two-stream merge, which holds both its
    sessions at once. *)

val acquire :
  ?name:string ->
  ?cancel:bool Atomic.t ->
  t ->
  tenant:string ->
  Nexsort.Config.t ->
  job
(** Admit one job for [tenant], blocking while the engine budget cannot
    cover it (the admission queue).  [name] labels the job in reports
    (default ["tenant#seq"]).  [cancel] supplies the job's cancellation
    flag — pass your own to be able to {!cancel} the job while it is
    still queued (before any [job] handle exists).
    @raise Cancelled if the flag is set while the job queues.
    @raise Invalid_argument on a destroyed engine. *)

val session : t -> job -> Nexsort.Session.t
(** The job's session: its carved budget, a view of the engine pool (for
    parallel configs), its external-sort headroom and its cancellation
    poll.  Destroyed by the sorter on every exit path, like any
    session. *)

val release : t -> job -> unit
(** Return the job's carves to the engine and re-run admission.  Call
    after the session was destroyed; blocks still held by the carves at
    that point are a leak — added to [engine.leaked_blocks], then
    force-reclaimed so the engine budget is whole regardless.
    Idempotent. *)

val run :
  ?name:string ->
  ?cancel:bool Atomic.t ->
  t ->
  tenant:string ->
  Nexsort.Config.t ->
  (job -> Nexsort.Session.t -> 'a) ->
  'a
(** [run t ~tenant config f]: {!acquire}, build the {!session}, apply
    [f], and — on every exit path — destroy the session (idempotent if
    [f] already consumed it via [Sorter.sort_device ~session]) and
    {!release}.  The engine-path equivalent of one CLI invocation. *)

val cancel : t -> bool Atomic.t -> unit
(** Flip a job's cancellation flag (the one passed to {!acquire} as
    [cancel], or read off a handle via {!cancel_flag}) and wake the
    admission queue.  A queued job leaves the queue raising {!Cancelled};
    a running one raises at its next poll checkpoint.  Safe from any
    thread. *)

val cancel_job : t -> job -> unit
(** {!cancel} via the job handle. *)

val cancel_flag : job -> bool Atomic.t
(** The job's cancellation flag. *)

val poll_of : job -> unit -> unit
(** The job's poll hook ({!session} installs it automatically; exposed
    for callers building their own sessions). *)

val queue_wait_s : job -> float
(** Seconds the job spent in the admission queue (0 when admitted
    immediately). *)

val job_name : job -> string

val job_tenant : job -> string

val destroy : t -> unit
(** Shut the engine down: joins the shared pool's workers.
    @raise Invalid_argument while jobs are still queued or running.
    Idempotent. *)

val budget : t -> Extmem.Memory_budget.t

val pool : t -> Nexsort.Sort_pool.t option

val tracer : t -> Obs.Tracer.t

val registry : t -> Obs.Registry.t
(** Engine metrics: [engine.jobs_admitted] / [jobs_completed] /
    [jobs_queued] / [jobs_cancelled] counters, [engine.queue_wait_ms],
    [engine.leaked_blocks], and used/waiting/running gauges. *)

val leaked_blocks : t -> int
(** Total blocks force-reclaimed from faulted jobs so far (the value of
    the [engine.leaked_blocks] counter). *)

val metrics_json : t -> Obs.Json.t
(** The registry snapshot as one flat JSON object (integral values
    render as ints). *)

val job_json : t -> job -> Obs.Json.t
(** The per-job ["job"] report section: job name, tenant, queue wait and
    the {!metrics_json} snapshot at report time. *)
