(* The multi-tenant sort engine: one process-wide memory budget, one
   shared worker pool and one admission queue serving many concurrent
   sort jobs.

   A job's whole footprint is two carves out of the engine budget — its
   session budget ([Session.job_blocks]) and, for parallel jobs, its
   external-sort headroom ([Session.ext_blocks]) — both under a
   "tenant#seq" ledger label, so the per-owner ledger doubles as the
   per-tenant accounting the admission policy reads.  Admission is FIFO
   with per-tenant fairness: waiters are served in arrival order among
   tenants with equally many running jobs, tenants with fewer running
   jobs first, and nobody skips ahead of a waiter the budget cannot yet
   fit (small jobs cannot starve a large one).

   Release is where the leak ledger lives: whatever a job's carves still
   hold after its session was destroyed — a phase that failed to release
   on an abort path — is counted into [engine.leaked_blocks] and then
   force-reclaimed, so one tenant's fault can never shrink the engine.
   The destroy-probe machinery ([Session.add_destroy_probe]) still fires
   per job, unchanged. *)

exception Cancelled
(* raised by a job's poll hook (and out of a pending acquire) after
   [cancel] *)

type job = {
  j_tenant : string;
  j_name : string;
  j_seq : int;
  j_config : Nexsort.Config.t;
  j_budget : Extmem.Memory_budget.t;
  j_ext : Extmem.Memory_budget.t option;
  j_cancel : bool Atomic.t;
  j_queue_wait_s : float;
  mutable j_released : bool;
}

type waiter = {
  w_tenant : string;
  w_seq : int;
  w_config : Nexsort.Config.t;
  w_cancel : bool Atomic.t;
  mutable w_granted : (Extmem.Memory_budget.t * Extmem.Memory_budget.t option) option;
}

type t = {
  budget : Extmem.Memory_budget.t;
  pool : Nexsort.Sort_pool.t option;
  tracer : Obs.Tracer.t;
  registry : Obs.Registry.t;
  lock : Mutex.t;
  admitted : Condition.t;  (* a waiter was granted, cancelled, or the engine died *)
  mutable seq : int;
  mutable waiting : waiter list;  (* arrival order *)
  running : (string, int) Hashtbl.t;  (* tenant -> running job count *)
  c_admitted : Obs.Counter.t;
  c_completed : Obs.Counter.t;
  c_queued : Obs.Counter.t;  (* admissions that had to wait *)
  c_queue_wait_ms : Obs.Counter.t;
  c_leaked : Obs.Counter.t;
  c_cancelled : Obs.Counter.t;
  mutable destroyed : bool;
}

let create ?(tracer = Obs.Tracer.null) ?(workers = 0) ~memory_blocks ~block_size () =
  if memory_blocks < 1 then invalid_arg "Engine.create: need at least one block";
  let registry = Obs.Registry.create () in
  let t =
    {
      budget = Extmem.Memory_budget.create ~blocks:memory_blocks ~block_size;
      pool = (if workers > 0 then Some (Nexsort.Sort_pool.create ~tracer ~workers ()) else None);
      tracer;
      registry;
      lock = Mutex.create ();
      admitted = Condition.create ();
      seq = 0;
      waiting = [];
      running = Hashtbl.create 8;
      c_admitted = Obs.Registry.counter registry "engine.jobs_admitted";
      c_completed = Obs.Registry.counter registry "engine.jobs_completed";
      c_queued = Obs.Registry.counter registry "engine.jobs_queued";
      c_queue_wait_ms = Obs.Registry.counter registry ~unit_:"ms" "engine.queue_wait_ms";
      c_leaked = Obs.Registry.counter registry ~unit_:"blocks" "engine.leaked_blocks";
      c_cancelled = Obs.Registry.counter registry "engine.jobs_cancelled";
      destroyed = false;
    }
  in
  Obs.Registry.gauge registry ~unit_:"blocks" "engine.used_blocks" (fun () ->
      float_of_int (Extmem.Memory_budget.used_blocks t.budget));
  Obs.Registry.gauge registry "engine.waiting_jobs" (fun () ->
      float_of_int (List.length t.waiting));
  Obs.Registry.gauge registry "engine.running_jobs" (fun () ->
      float_of_int (Hashtbl.fold (fun _ n acc -> acc + n) t.running 0));
  t

let registry t = t.registry

let tracer t = t.tracer

let pool t = t.pool

let budget t = t.budget

let leaked_blocks t = Obs.Counter.value t.c_leaked

let running_count t tenant = Option.value (Hashtbl.find_opt t.running tenant) ~default:0

let who ~tenant ~seq = Printf.sprintf "%s#%d" tenant seq

(* Try to carve one waiter's budgets.  [Exhausted] means "not now" —
   the waiter stays queued. *)
let try_grant t (w : waiter) =
  let config = w.w_config in
  let label = who ~tenant:w.w_tenant ~seq:w.w_seq in
  let main_blocks = Nexsort.Session.job_blocks ?pool:t.pool config in
  let ext = Nexsort.Session.ext_blocks ?pool:t.pool config in
  let bs = config.Nexsort.Config.block_size in
  match
    Extmem.Memory_budget.carve t.budget ~block_size:bs ~who:label ~blocks:main_blocks ()
  with
  | exception Extmem.Memory_budget.Exhausted _ -> false
  | main -> (
      if ext = 0 then begin
        w.w_granted <- Some (main, None);
        true
      end
      else
        match
          Extmem.Memory_budget.carve t.budget ~block_size:bs ~who:(label ^ " ext")
            ~blocks:ext ()
        with
        | exception Extmem.Memory_budget.Exhausted _ ->
            Extmem.Memory_budget.uncarve main;
            false
        | eb ->
            w.w_granted <- Some (main, Some eb);
            true)

(* Admission, under the engine lock.  Order waiters by (tenant's running
   jobs, arrival): a tenant with fewer jobs in flight goes first, FIFO
   among equals.  No skip-ahead: the first waiter the budget cannot fit
   blocks everyone behind it, so a stream of small jobs cannot starve a
   large one. *)
let admit_locked t =
  let granted = ref false in
  let continue_ = ref true in
  while !continue_ do
      let pending =
      List.filter
        (fun w -> w.w_granted = None && not (Atomic.get w.w_cancel))
        t.waiting
    in
    match
      List.stable_sort
        (fun a b ->
          let c = compare (running_count t a.w_tenant) (running_count t b.w_tenant) in
          if c <> 0 then c else compare a.w_seq b.w_seq)
        pending
    with
    | [] -> continue_ := false
    | best :: _ ->
        if try_grant t best then begin
          Hashtbl.replace t.running best.w_tenant (running_count t best.w_tenant + 1);
          granted := true
        end
        else continue_ := false
  done;
  if !granted then Condition.broadcast t.admitted

let remove_waiter t w = t.waiting <- List.filter (fun w' -> w' != w) t.waiting

(* Block until the engine grants this job its budgets (admission), then
   return the job handle.  Raises [Cancelled] if the job is cancelled
   while queued. *)
let acquire ?(name = "") ?cancel t ~tenant (config : Nexsort.Config.t) =
  let t0 = Unix.gettimeofday () in
  Mutex.lock t.lock;
  if t.destroyed then begin
    Mutex.unlock t.lock;
    invalid_arg "Engine.acquire: engine is destroyed"
  end;
  let w =
    {
      w_tenant = tenant;
      w_seq =
        (t.seq <- t.seq + 1;
         t.seq);
      w_config = config;
      w_cancel = (match cancel with Some c -> c | None -> Atomic.make false);
      w_granted = None;
    }
  in
  t.waiting <- t.waiting @ [ w ];
  admit_locked t;
  if w.w_granted = None then begin
    Obs.Counter.incr t.c_queued;
    Obs.Tracer.begin_s t.tracer "engine.queue_wait"
  end;
  let was_queued = w.w_granted = None in
  while w.w_granted = None && not (Atomic.get w.w_cancel) && not t.destroyed do
    Condition.wait t.admitted t.lock
  done;
  let result = w.w_granted in
  remove_waiter t w;
  (match result with
  | None ->
      (* cancelled or engine death: we may have been granted in a race —
         no: result was None — just leave *)
      Mutex.unlock t.lock;
      if was_queued then Obs.Tracer.end_s t.tracer "engine.queue_wait";
      if Atomic.get w.w_cancel then begin
        Obs.Counter.incr t.c_cancelled;
        raise Cancelled
      end
      else invalid_arg "Engine.acquire: engine destroyed while queued"
  | Some _ -> Mutex.unlock t.lock);
  if was_queued then Obs.Tracer.end_s t.tracer "engine.queue_wait";
  let main, ext = Option.get result in
  let wait_s = Unix.gettimeofday () -. t0 in
  Obs.Counter.incr t.c_admitted;
  Obs.Counter.add t.c_queue_wait_ms (int_of_float (wait_s *. 1000.));
  {
    j_tenant = tenant;
    j_name = (if name = "" then who ~tenant ~seq:w.w_seq else name);
    j_seq = w.w_seq;
    j_config = config;
    j_budget = main;
    j_ext = ext;
    j_cancel = w.w_cancel;
    j_queue_wait_s = wait_s;
    j_released = false;
  }

(* Cancellation takes the raw flag, not the job handle: a queued job is
   still blocked inside [acquire] and has no handle yet, so callers that
   need to cancel from outside pass their own flag in ([?cancel]).  The
   broadcast wakes queued waiters so they notice the flag and leave. *)
let cancel t (flag : bool Atomic.t) =
  Atomic.set flag true;
  Mutex.lock t.lock;
  Condition.broadcast t.admitted;
  Mutex.unlock t.lock

let cancel_flag (j : job) = j.j_cancel

let cancel_job t (j : job) = cancel t j.j_cancel

let poll_of (j : job) () = if Atomic.get j.j_cancel then raise Cancelled

let session t (j : job) =
  Nexsort.Session.create ~budget:j.j_budget ?pool:t.pool
    ?ext_budget:j.j_ext ~poll:(poll_of j) j.j_config

(* Return a job's carves to the engine.  The session must already be
   destroyed (Sorter does this on every exit path); anything its carves
   still hold is a leak — counted, then force-reclaimed so the engine
   budget is whole again no matter what the job did. *)
let release t (j : job) =
  if not j.j_released then begin
    j.j_released <- true;
    let leak = Extmem.Memory_budget.used_blocks j.j_budget in
    let leak =
      leak
      + (match j.j_ext with Some eb -> Extmem.Memory_budget.used_blocks eb | None -> 0)
    in
    if leak > 0 then Obs.Counter.add t.c_leaked leak;
    Mutex.lock t.lock;
    Extmem.Memory_budget.uncarve ~force:true j.j_budget;
    (match j.j_ext with
    | Some eb -> Extmem.Memory_budget.uncarve ~force:true eb
    | None -> ());
    (match running_count t j.j_tenant - 1 with
    | 0 -> Hashtbl.remove t.running j.j_tenant
    | n -> Hashtbl.replace t.running j.j_tenant n);
    Obs.Counter.incr t.c_completed;
    admit_locked t;
    Condition.broadcast t.admitted;
    Mutex.unlock t.lock
  end

(* Run one job end to end: admission, session, [f], teardown, release.
   [f] normally consumes the session via [Sorter.sort_device ~session]
   (which destroys it); the redundant destroy here is idempotent and
   covers [f] raising before it got that far.  Always releases — a
   faulted or cancelled job provably returns every block (minus what
   the leak counter records). *)
let run ?name ?cancel t ~tenant (config : Nexsort.Config.t) f =
  let j = acquire ?name ?cancel t ~tenant config in
  let session =
    match session t j with
    | s -> s
    | exception e ->
        release t j;
        raise e
  in
  Fun.protect
    ~finally:(fun () ->
      Nexsort.Session.destroy session;
      release t j)
    (fun () -> f j session)

(* An engine sized for exactly [slots] jobs of this config — the
   single-job CLI path ([slots = 1]) and the two-stream merge
   ([slots = 2], which must hold both its sessions at once): the same
   admission, carve and release machinery, with a budget sized so those
   admissions succeed immediately.  Without a pool, [Session.job_blocks]
   sizes the job for [config.jobs] workers — exactly the worker count
   the engine pool is created with, so the carve matches. *)
let for_config ?tracer ?(slots = 1) (config : Nexsort.Config.t) =
  let workers = if config.Nexsort.Config.jobs > 1 then config.Nexsort.Config.jobs else 0 in
  let per_job = Nexsort.Session.job_blocks config + Nexsort.Session.ext_blocks config in
  create ?tracer ~workers ~memory_blocks:(slots * per_job)
    ~block_size:config.Nexsort.Config.block_size ()

let destroy t =
  Mutex.lock t.lock;
  if t.destroyed then Mutex.unlock t.lock
  else begin
    if t.waiting <> [] || Hashtbl.length t.running > 0 then begin
      Mutex.unlock t.lock;
      invalid_arg "Engine.destroy: jobs still queued or running"
    end;
    t.destroyed <- true;
    Condition.broadcast t.admitted;
    Mutex.unlock t.lock;
    match t.pool with Some p -> Nexsort.Sort_pool.shutdown p | None -> ()
  end

let queue_wait_s (j : job) = j.j_queue_wait_s

let job_name (j : job) = j.j_name

let job_tenant (j : job) = j.j_tenant

let metrics_json t =
  let snap = Obs.Registry.snapshot t.registry in
  Obs.Json.Obj
    (List.map
       (fun (name, v) ->
         let v =
           if Float.is_integer v then Obs.Json.Int (int_of_float v) else Obs.Json.Float v
         in
         (name, v))
       snap)

(* the per-job "job" report section: who ran, how long it queued, and
   the engine counters at report time *)
let job_json t (j : job) =
  Obs.Json.Obj
    [
      ("name", Obs.Json.Str j.j_name);
      ("tenant", Obs.Json.Str j.j_tenant);
      ("queue_wait_ms", Obs.Json.Float (j.j_queue_wait_s *. 1000.));
      ("engine", metrics_json t);
    ]
