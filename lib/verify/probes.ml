let recorded : string list ref = ref []
let installed = ref false

let check_session (s : Nexsort.Session.t) =
  let out = ref [] in
  let used = Extmem.Memory_budget.used_blocks s.budget in
  if used <> 0 then begin
    let holders =
      Extmem.Memory_budget.holders s.budget
      |> List.map (fun (who, n) -> Printf.sprintf "%s=%d" who n)
      |> String.concat ", "
    in
    out := Printf.sprintf "budget leak: %d blocks still reserved (%s)" used holders :: !out
  end;
  Extmem.Frame_arena.owners s.arena
  |> List.iter (fun (who, st) ->
         if st.Extmem.Frame_arena.held <> 0 then
           out :=
             Printf.sprintf "arena leak: owner %S still holds %d frames" who
               st.Extmem.Frame_arena.held
             :: !out);
  List.rev !out

let install () =
  if not !installed then begin
    installed := true;
    Nexsort.Session.add_destroy_probe (fun s ->
        recorded := !recorded @ check_session s)
  end

let violations () = !recorded
let clear () = recorded := []
