(** Streaming output validator: recursive sortedness + permutation digest.

    Checks NEXSORT's correctness claim on an {!Xmlio.Event} stream in a
    single pass with O(height) memory:

    {ul
    {- {b recursive sortedness}: for every non-leaf element, the keys of
       its children (under the given {!Nexsort.Ordering} criterion, text
       nodes keyed [Null]) appear in non-decreasing {!Nexsort.Key} order —
       the local-orderedness invariant of a fully sorted document;}
    {- {b permutation preservation}: a 64-bit structural digest that is
       {e invariant under sibling reordering} (child elements combine
       commutatively; each parent's text children combine as one ordered
       concatenation, because a stable sort moves Null-keyed text to the
       front where adjacent nodes coalesce on re-parse without changing
       their relative order) but sensitive to everything else — names,
       attributes, text content, and which parent a subtree hangs from.
       Equal input/output digests mean the output is, with overwhelming
       probability, a re-serialization of the input obtained only by a
       text-order-preserving permutation of sibling lists.}}

    Together the two checks reject mis-sorts, drops, duplications and
    cross-parent moves, without materializing either document. *)

type finding = {
  path : string;    (** element path from the root, e.g. ["r/branch"] *)
  detail : string;  (** what was out of order *)
}

type report = {
  elements : int;
  text_nodes : int;
  digest : int64;           (** sibling-permutation-invariant structural digest *)
  findings : finding list;  (** sortedness violations, capped at 16 *)
}

val run :
  ?depth_limit:int -> ordering:Nexsort.Ordering.t -> (unit -> Xmlio.Event.t option) -> report
(** Drain an event stream.  With [depth_limit], sibling order is only
    checked for parents at level <= d (root = 1), matching
    {!Nexsort.Config.depth_limit}; the digest always covers the whole
    document.  @raise Invalid_argument on an unbalanced stream. *)

val of_string :
  ?depth_limit:int -> ?keep_whitespace:bool -> ordering:Nexsort.Ordering.t -> string -> report
(** {!run} over a parsed document.  @raise Xmlio.Parser.Error on
    malformed XML. *)

val digest_of_string : ?keep_whitespace:bool -> string -> int64
(** The structural digest alone (computed under [Document_order], which
    can produce no findings) — the input-side half of {!check}. *)

val check :
  ?depth_limit:int ->
  ?keep_whitespace:bool ->
  ordering:Nexsort.Ordering.t ->
  input:string ->
  string ->
  (unit, string) result
(** [check ~ordering ~input output] validates [output] as a correct full
    sort of [input]: well-formed,
    recursively sorted, and digest-equal to the input.  The error string
    names the first failure. *)

val self_test : unit -> (unit, string) result
(** Prove the validator can reject: a correctly sorted document must
    pass, and deliberately mis-sorted / node-dropping / subtree-moving
    documents must each be rejected.  Run by the fuzz driver before it
    trusts any [Ok] verdict. *)
