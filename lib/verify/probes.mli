(** Resource-invariant probes.

    After any sort — successful or aborted by a device fault — the
    session's memory accounting must return to zero: no component may
    still hold budget blocks and no arena owner may still hold frames.
    A leak here is invisible to output validation (the document can be
    perfectly sorted while a window lease was never released), so the
    fuzz driver checks it separately after every case.

    [install] hooks {!Nexsort.Session.add_destroy_probe}, so the checks
    run inside [Session.destroy] on every exit path the sorter takes.
    Violations are recorded, not raised: destroy runs inside
    [Fun.protect] finalizers, where raising would mask the original
    fault. *)

val install : unit -> unit
(** Register the teardown probe (idempotent). *)

val check_session : Nexsort.Session.t -> string list
(** The invariant violations visible on a session right now: budget
    blocks still reserved (with holder names), arena owners with
    [held <> 0].  Empty on a clean teardown. *)

val violations : unit -> string list
(** Violations recorded by the installed probe since the last {!clear},
    oldest first. *)

val clear : unit -> unit
