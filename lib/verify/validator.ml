module Key = Nexsort.Key
module Ordering = Nexsort.Ordering

type finding = { path : string; detail : string }

type report = {
  elements : int;
  text_nodes : int;
  digest : int64;
  findings : finding list;
}

let max_findings = 16

(* splitmix64 finalizer: the cheap 64-bit mixer used throughout the fault
   layer; good enough avalanche that a commutative sum of mixed child
   digests still distinguishes any realistic pair of documents. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Plain fold, no length finalizer: folding "ab" then "c" equals folding
   "abc", which is what makes the text digest below coalescing-proof. *)
let fold_string h s =
  let h = ref h in
  String.iter (fun c -> h := mix64 (Int64.add !h (Int64.of_int (Char.code c)))) s;
  !h

let hash_string h s = mix64 (Int64.add (fold_string h s) (Int64.of_int (String.length s)))

let header_hash name attrs =
  List.fold_left
    (fun h (k, v) -> hash_string (hash_string h k) v)
    (hash_string 0x9e3779b97f4a7c15L name)
    attrs

(* One frame per open element.  [acc] is the commutative (wrapping) sum of
   completed-child element digests, so the digest is invariant under
   sibling permutation but nothing else; [text_h] folds the parent's text
   children as one ordered concatenation — a sort moves all Null-keyed
   text to the front where adjacent nodes coalesce on re-parse, but their
   relative order (and hence the concatenation) is preserved by the
   position tiebreak; [prev] is the key of the last completed child, for
   the non-decreasing check. *)
type frame = {
  name : string;
  level : int;
  header : int64;
  mutable acc : int64;
  mutable text_h : int64;
  mutable prev : Key.t option;
  mutable start_key : Key.t option;
}

let run ?depth_limit ~ordering next =
  let eval = Ordering.Evaluator.create ordering in
  let elements = ref 0 in
  let text_nodes = ref 0 in
  let findings = ref [] in
  let n_findings = ref 0 in
  (* level-0 sentinel collecting top-level digests; never key-checked *)
  let root =
    { name = ""; level = 0; header = 0L; acc = 0L; text_h = 0L; prev = None; start_key = None }
  in
  let stack = ref [ root ] in
  let parent () = List.hd !stack in
  let path_of fs =
    String.concat "/" (List.rev_map (fun f -> f.name) (List.filter (fun f -> f.level > 0) fs))
  in
  let checked parent_frame =
    parent_frame.level >= 1
    && match depth_limit with None -> true | Some d -> parent_frame.level <= d
  in
  let note_key ~key parent_frame ~path =
    if checked parent_frame then begin
      (match parent_frame.prev with
      | Some p when Key.compare p key > 0 ->
          if !n_findings < max_findings then begin
            incr n_findings;
            findings :=
              {
                path;
                detail =
                  Format.asprintf "key %a after %a under <%s>" Key.pp key Key.pp p
                    parent_frame.name;
              }
              :: !findings
          end
      | _ -> ());
      parent_frame.prev <- Some key
    end
  in
  let rec loop () =
    match next () with
    | None -> ()
    | Some ev ->
        (match ev with
        | Xmlio.Event.Start (name, attrs) ->
            incr elements;
            let start_key = Ordering.Evaluator.on_start eval name attrs in
            let f =
              {
                name;
                level = (parent ()).level + 1;
                header = header_hash name attrs;
                acc = 0L;
                text_h = 0x2545f4914f6cdd1dL;
                prev = None;
                start_key;
              }
            in
            stack := f :: !stack
        | Xmlio.Event.Text s ->
            incr text_nodes;
            (match !stack with
            | { level = 0; _ } :: _ -> ()
            | _ -> Ordering.Evaluator.on_text eval s);
            let p = parent () in
            p.text_h <- fold_string p.text_h s;
            note_key ~key:Key.Null p ~path:(path_of !stack)
        | Xmlio.Event.End name -> (
            match !stack with
            | ({ level = 0; _ } :: _ | []) ->
                invalid_arg (Printf.sprintf "Validator.run: stray end tag </%s>" name)
            | f :: rest ->
                if f.name <> name then
                  invalid_arg
                    (Printf.sprintf "Validator.run: </%s> closes <%s>" name f.name);
                let end_key = Ordering.Evaluator.on_end eval in
                let key =
                  match (end_key, f.start_key) with
                  | Some k, _ -> k
                  | None, Some k -> k
                  | None, None -> Key.Null
                in
                let digest = mix64 (Int64.add f.header (Int64.add f.acc (mix64 f.text_h))) in
                stack := rest;
                let p = parent () in
                p.acc <- Int64.add p.acc digest;
                note_key ~key p ~path:(path_of !stack)));
        loop ()
  in
  loop ();
  (match !stack with
  | [ { level = 0; _ } ] -> ()
  | f :: _ -> invalid_arg (Printf.sprintf "Validator.run: <%s> never closed" f.name)
  | [] -> assert false);
  {
    elements = !elements;
    text_nodes = !text_nodes;
    digest = mix64 (Int64.add 0x6a09e667f3bcc909L root.acc);
    findings = List.rev !findings;
  }

let of_string ?depth_limit ?(keep_whitespace = false) ~ordering s =
  let p = Xmlio.Parser.of_string ~keep_whitespace s in
  run ?depth_limit ~ordering (fun () -> Xmlio.Parser.next p)

let digest_of_string ?keep_whitespace s =
  (of_string ?keep_whitespace ~ordering:Ordering.document_order s).digest

let check ?depth_limit ?keep_whitespace ~ordering ~input output =
  match of_string ?depth_limit ?keep_whitespace ~ordering output with
  | exception Xmlio.Parser.Error { line; col; msg } ->
      Error (Printf.sprintf "output is malformed XML: %d:%d %s" line col msg)
  | exception Invalid_argument msg -> Error (Printf.sprintf "output is unbalanced: %s" msg)
  | rep -> (
      match rep.findings with
      | { path; detail } :: _ ->
          Error
            (Printf.sprintf "output not recursively sorted at %s: %s (%d violations)" path
               detail (List.length rep.findings))
      | [] ->
          let in_digest = digest_of_string ?keep_whitespace input in
          if Int64.equal rep.digest in_digest then Ok ()
          else
            Error
              (Printf.sprintf
                 "output is not a sibling permutation of input (digest %Lx vs %Lx)" rep.digest
                 in_digest))

(* The validator must be able to say no.  Each case is a minimal document
   with a specific defect; a validator that accepts any of them is
   untrustworthy and the fuzz driver refuses to run. *)
let self_test () =
  let ordering = Ordering.by_attr "id" in
  (* text nodes carry the Null key, so a sorted sibling list puts them
     first *)
  let sorted = {|<r id="0">t<a id="1"/><b id="2">u<c id="1"/><d id="2"/></b></r>|} in
  let missorted = {|<r id="0"><a id="2"/><b id="1"/></r>|} in
  let deep_missorted = {|<r id="0"><a id="1"/><b id="2"><d id="2"/><c id="1"/></b></r>|} in
  let dropped = {|<r id="0">t<a id="1"/><b id="2">u<c id="1"/></b></r>|} in
  let text_dropped = {|<r id="0">t<a id="1"/><b id="2"><c id="1"/><d id="2"/></b></r>|} in
  let duplicated = {|<r id="0">t<a id="1"/><a id="1"/><b id="2">u<c id="1"/><d id="2"/></b></r>|} in
  (* c hops from under b to under r; sibling keys stay non-decreasing, so
     only the digest can catch it *)
  let moved = {|<r id="0">t<a id="1"/><c id="1"/><b id="2">u<d id="2"/></b></r>|} in
  let expect_ok name input output =
    match check ~ordering ~input output with
    | Ok () -> Ok ()
    | Error e -> Error (Printf.sprintf "self-test %s: expected Ok, got %s" name e)
  in
  let expect_reject name input output =
    match check ~ordering ~input output with
    | Error _ -> Ok ()
    | Ok () -> Error (Printf.sprintf "self-test %s: defective document accepted" name)
  in
  let ( >>= ) r f = Result.bind r f in
  expect_ok "sorted" sorted sorted >>= fun () ->
  expect_reject "mis-sorted" sorted missorted >>= fun () ->
  expect_reject "deep mis-sorted" sorted deep_missorted >>= fun () ->
  expect_reject "dropped node" sorted dropped >>= fun () ->
  expect_reject "dropped text" sorted text_dropped >>= fun () ->
  expect_reject "duplicated node" sorted duplicated >>= fun () ->
  expect_reject "cross-level move" sorted moved >>= fun () ->
  (match of_string ~depth_limit:1 ~ordering deep_missorted with
  | { findings = []; _ } -> Ok ()
  | _ -> Error "self-test depth-limit: level-2 disorder flagged despite depth_limit=1")
  >>= fun () ->
  match of_string ~ordering missorted with
  | { findings = [ _ ]; elements = 3; _ } -> Ok ()
  | rep ->
      Error
        (Printf.sprintf "self-test report: expected 1 finding/3 elements, got %d/%d"
           (List.length rep.findings) rep.elements)
