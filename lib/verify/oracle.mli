(** The in-memory reference oracle.

    A trivially-correct recursive sorter over {!Xmlio.Tree}, written
    independently of both the external algorithms and the
    [Baselines.Tree_sort] strawman so differential runs compare three
    genuinely separate implementations.  Only usable on documents that
    fit in memory — which is exactly the regime fuzz documents live in.

    The contract it encodes is NEXSORT's §1 definition of a fully sorted
    document: the children of {e every} element are ordered by
    [(key, document position)] under the given {!Nexsort.Ordering}
    criterion, where positions are assigned by a pre-order scan of the
    {e input}, and nothing else about the document changes. *)

val sort_tree : ?depth_limit:int -> Nexsort.Ordering.t -> Xmlio.Tree.t -> Xmlio.Tree.t
(** Recursively order every element's child list.  With [depth_limit],
    only child lists of elements at level <= d are sorted (root = 1),
    mirroring {!Nexsort.Config.depth_limit}. *)

val sort_string :
  ?depth_limit:int -> ?keep_whitespace:bool -> Nexsort.Ordering.t -> string -> string
(** Parse, sort, serialize.  Serialization goes through {!Xmlio.Writer}
    with the same settings as the external sorters' output phase, so the
    result is byte-comparable to [Nexsort.sort_string]. *)
