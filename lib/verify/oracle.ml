(* The reference oracle: sort child arrays by (key, input position) with
   an explicit position tiebreak rather than relying on sort stability,
   so a stability bug in the stdlib or in a future refactor cannot make
   the oracle silently agree with a buggy implementation. *)

module Key = Nexsort.Key
module Ordering = Nexsort.Ordering

let sort_tree ?depth_limit ordering tree =
  (* input positions in document (pre-order) order *)
  let pos = ref 0 in
  let sort_here level =
    match depth_limit with
    | None -> true
    | Some d -> level <= d
  in
  let rec decorate level node =
    incr pos;
    let here = !pos in
    match node with
    | Xmlio.Tree.Text _ -> (node, Key.Null, here)
    | Xmlio.Tree.Element e ->
        let key = Ordering.key_of_tree ordering e in
        let children = Array.of_list (List.map (decorate (level + 1)) e.Xmlio.Tree.children) in
        if sort_here level then
          Array.sort
            (fun (_, ka, pa) (_, kb, pb) ->
              match Key.compare ka kb with
              | 0 -> Int.compare pa pb
              | c -> c)
            children;
        ( Xmlio.Tree.Element
            { e with Xmlio.Tree.children = Array.to_list (Array.map (fun (n, _, _) -> n) children) },
          key,
          here )
  in
  let sorted, _, _ = decorate 1 tree in
  sorted

let sort_string ?depth_limit ?(keep_whitespace = false) ordering s =
  let tree = Xmlio.Tree.of_string ~keep_whitespace s in
  Xmlio.Writer.events_to_string (Xmlio.Tree.to_events (sort_tree ?depth_limit ordering tree))
