module Key = Nexsort.Key
module Ordering = Nexsort.Ordering

type report = {
  matched_elements : int;
  left_io : Extmem.Io_stats.t;
  right_io : Extmem.Io_stats.t;
  output_io : Extmem.Io_stats.t;
  total_io : Extmem.Io_stats.t;
  wall_seconds : float;
}

let merge_devices ~ordering ~left ~right ~output () =
  if not (Ordering.all_scan_evaluable ordering) then
    invalid_arg "Naive_merge: ordering must be scan-evaluable";
  let t0 = Unix.gettimeofday () in
  let out = Extmem.Block_writer.create output in
  let matched_count = ref 0 in
  let rec merge_elements loff roff =
    let lname, lattrs, lchildren, _ = Subdoc.parse_shallow left loff in
    let rname, rattrs, rchildren, _ = Subdoc.parse_shallow right roff in
    if lname <> rname then invalid_arg "Naive_merge: mismatched elements";
    incr matched_count;
    Subdoc.write_start_tag out lname (Subdoc.union_attrs lattrs rattrs);
    let rmatched = Array.make (List.length rchildren) false in
    (* left children in document order; matches searched by linear scan *)
    List.iter
      (fun lc ->
        match lc with
        | Subdoc.Text { off; len } -> Subdoc.copy_range left ~off ~until:(off + len) out
        | Subdoc.Elem { off; name; attrs } -> (
            let k = Subdoc.key_of ordering name attrs in
            (* the linear scan the paper complains about: on average half
               of the right element's children are examined *)
            let rec find i = function
              | [] -> None
              | Subdoc.Elem r :: _
                when (not rmatched.(i))
                     && r.name = name
                     && Key.compare (Subdoc.key_of ordering r.name r.attrs) k = 0 ->
                  Some (i, r.off)
              | _ :: rest -> find (i + 1) rest
            in
            match find 0 rchildren with
            | Some (i, roff') ->
                rmatched.(i) <- true;
                merge_elements off roff'
            | None ->
                (* no match: copy the left subtree verbatim (its extent is
                   re-discovered by re-scanning it) *)
                Subdoc.copy_range left ~off ~until:(Subdoc.subtree_end left off) out))
      lchildren;
    (* unmatched right children, in their document order *)
    List.iteri
      (fun i rc ->
        match rc with
        | Subdoc.Text { off; len } -> Subdoc.copy_range right ~off ~until:(off + len) out
        | Subdoc.Elem { off; _ } ->
            if not rmatched.(i) then
              Subdoc.copy_range right ~off ~until:(Subdoc.subtree_end right off) out)
      rchildren;
    Extmem.Block_writer.write_string out (Printf.sprintf "</%s>" lname)
  in
  merge_elements 0 0;
  let extent = Extmem.Block_writer.close out in
  Extmem.Device.set_byte_length output extent.Extmem.Extent.bytes;
  let left_io = Extmem.Io_stats.snapshot (Extmem.Device.stats left) in
  let right_io = Extmem.Io_stats.snapshot (Extmem.Device.stats right) in
  let output_io = Extmem.Io_stats.snapshot (Extmem.Device.stats output) in
  {
    matched_elements = !matched_count;
    left_io;
    right_io;
    output_io;
    total_io = Extmem.Io_stats.add left_io (Extmem.Io_stats.add right_io output_io);
    wall_seconds = Unix.gettimeofday () -. t0;
  }

let merge_strings ~ordering ?(block_size = 1024) ?(device = Extmem.Device_spec.default) l r =
  let left = Extmem.Device_spec.scratch device ~name:"left" ~block_size in
  Extmem.Device.load_string left l;
  let right = Extmem.Device_spec.scratch device ~name:"right" ~block_size in
  Extmem.Device.load_string right r;
  let output = Extmem.Device_spec.scratch device ~name:"output" ~block_size in
  let report = merge_devices ~ordering ~left ~right ~output () in
  (Extmem.Device.contents output, report)
