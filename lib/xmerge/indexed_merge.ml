module Key = Nexsort.Key
module Ordering = Nexsort.Ordering

type report = {
  matched_elements : int;
  index_entries : int;
  index_build_io : Extmem.Io_stats.t;
  left_io : Extmem.Io_stats.t;
  right_io : Extmem.Io_stats.t;
  index_io : Extmem.Io_stats.t;
  output_io : Extmem.Io_stats.t;
  total_io : Extmem.Io_stats.t;
  pager_hits : int;
  pager_misses : int;
  pager_evictions : int;
  pager_writebacks : int;
  wall_seconds : float;
  spans : Obs.Span.t;
}

(* index keys: (parent_off, child index), compared numerically so a range
   scan enumerates one element's children in document order *)
let encode_key parent_off index =
  let b = Buffer.create 8 in
  Extmem.Codec.put_varint b (parent_off + 1); (* root parent is -1 *)
  Extmem.Codec.put_varint b index;
  Buffer.contents b

let decode_key s =
  let c = Extmem.Codec.cursor s in
  let parent = Extmem.Codec.get_varint c - 1 in
  let index = Extmem.Codec.get_varint c in
  (parent, index)

let compare_keys a b =
  let pa, ia = decode_key a and pb, ib = decode_key b in
  let c = compare pa pb in
  if c <> 0 then c else compare ia ib

(* index values: an element child (tag, key, attrs, extent) or a text run *)
type entry =
  | Ielem of { name : string; key : Key.t; attrs : Xmlio.Event.attr list; off : int; until : int }
  | Itext of { off : int; len : int }

let encode_entry = function
  | Ielem { name; key; attrs; off; until } ->
      let b = Buffer.create 64 in
      Extmem.Codec.put_u8 b 0;
      Extmem.Codec.put_string b name;
      Key.encode b key;
      Extmem.Codec.put_varint b (List.length attrs);
      List.iter
        (fun (k, v) ->
          Extmem.Codec.put_string b k;
          Extmem.Codec.put_string b v)
        attrs;
      Extmem.Codec.put_varint b off;
      Extmem.Codec.put_varint b until;
      Buffer.contents b
  | Itext { off; len } ->
      let b = Buffer.create 8 in
      Extmem.Codec.put_u8 b 1;
      Extmem.Codec.put_varint b off;
      Extmem.Codec.put_varint b len;
      Buffer.contents b

let decode_entry s =
  let c = Extmem.Codec.cursor s in
  match Extmem.Codec.get_u8 c with
  | 0 ->
      let name = Extmem.Codec.get_string c in
      let key = Key.decode c in
      let n = Extmem.Codec.get_varint c in
      let rec attrs n acc =
        if n = 0 then List.rev acc
        else begin
          let k = Extmem.Codec.get_string c in
          let v = Extmem.Codec.get_string c in
          attrs (n - 1) ((k, v) :: acc)
        end
      in
      let attrs = attrs n [] in
      let off = Extmem.Codec.get_varint c in
      let until = Extmem.Codec.get_varint c in
      Ielem { name; key; attrs; off; until }
  | 1 ->
      let off = Extmem.Codec.get_varint c in
      let len = Extmem.Codec.get_varint c in
      Itext { off; len }
  | k -> raise (Extmem.Codec.Corrupt (Printf.sprintf "Indexed_merge: bad entry kind %d" k))

(* enumerate the indexed children of the element at [parent_off] *)
let children_of index parent_off =
  let acc = ref [] in
  Extmem.Btree.iter_from index (encode_key parent_off 0) (fun k v ->
      let p, _ = decode_key k in
      if p = parent_off then begin
        acc := decode_entry v :: !acc;
        true
      end
      else false);
  List.rev !acc

let merge_devices ?policy ~ordering ~left ~right ~output () =
  if not (Ordering.all_scan_evaluable ordering) then
    invalid_arg "Indexed_merge: ordering must be scan-evaluable";
  let t0 = Unix.gettimeofday () in
  (* larger blocks pack more index entries per page *)
  let index_dev = Extmem.Device_spec.(scratch default ~name:"index" ~block_size:4096) in
  let index = Extmem.Btree.create ?policy ~frames:8 ~cmp:compare_keys index_dev in
  let io_meter () =
    Extmem.Io_stats.add
      (Extmem.Io_stats.add
         (Extmem.Io_stats.snapshot (Extmem.Device.stats left))
         (Extmem.Io_stats.snapshot (Extmem.Device.stats right)))
      (Extmem.Io_stats.add
         (Extmem.Io_stats.snapshot (Extmem.Device.stats index_dev))
         (Extmem.Io_stats.snapshot (Extmem.Device.stats output)))
  in
  let spans = Obs.Spans.create ~io:io_meter "indexed_merge" in
  (* ---- build: one sequential pass over the right document ---- *)
  let entries = ref 0 in
  Obs.Spans.with_span spans "index_build" (fun () ->
      Subdoc.walk right
        ~on_element:(fun ~parent_off ~index:i ~name ~attrs ~off ~until ->
          incr entries;
          Extmem.Btree.insert index ~key:(encode_key parent_off i)
            ~value:(encode_entry
                      (Ielem { name; key = Subdoc.key_of ordering name attrs; attrs; off; until })))
        ~on_text:(fun ~parent_off ~index:i ~off ~len ->
          incr entries;
          Extmem.Btree.insert index ~key:(encode_key parent_off i)
            ~value:(encode_entry (Itext { off; len })));
      Extmem.Btree.flush index);
  let index_build_io = Extmem.Io_stats.snapshot (Extmem.Device.stats index_dev) in
  (* ---- merge: left streamed, right resolved through the index ---- *)
  let out = Extmem.Block_writer.create output in
  let matched_count = ref 0 in
  (* right element reference: (attrs, own offset) — children come from the
     index keyed by the offset *)
  let rec merge_elements loff (rattrs, roff) =
    let lname, lattrs, lchildren, _ = Subdoc.parse_shallow left loff in
    incr matched_count;
    Subdoc.write_start_tag out lname (Subdoc.union_attrs lattrs rattrs);
    let rchildren = children_of index roff in
    let rmatched = Array.make (List.length rchildren) false in
    List.iter
      (fun lc ->
        match lc with
        | Subdoc.Text { off; len } -> Subdoc.copy_range left ~off ~until:(off + len) out
        | Subdoc.Elem { off; name; attrs } -> (
            let k = Subdoc.key_of ordering name attrs in
            let rec find i = function
              | [] -> None
              | Ielem r :: _
                when (not rmatched.(i)) && r.name = name && Key.compare r.key k = 0 ->
                  Some (i, (r.attrs, r.off))
              | _ :: rest -> find (i + 1) rest
            in
            match find 0 rchildren with
            | Some (i, rref) ->
                rmatched.(i) <- true;
                merge_elements off rref
            | None -> Subdoc.copy_range left ~off ~until:(Subdoc.subtree_end left off) out))
      lchildren;
    List.iteri
      (fun i rc ->
        match rc with
        | Itext { off; len } -> Subdoc.copy_range right ~off ~until:(off + len) out
        | Ielem { off; until; _ } ->
            if not rmatched.(i) then Subdoc.copy_range right ~off ~until out)
      rchildren;
    Extmem.Block_writer.write_string out (Printf.sprintf "</%s>" lname)
  in
  (* the root's reference comes from the index's (-1, 0) entry *)
  Obs.Spans.with_span spans "probe_merge" (fun () ->
      match children_of index (-1) with
      | [ Ielem root ] -> merge_elements 0 (root.attrs, root.off)
      | _ -> invalid_arg "Indexed_merge: right document has no single root");
  let extent = Extmem.Block_writer.close out in
  Extmem.Device.set_byte_length output extent.Extmem.Extent.bytes;
  let left_io = Extmem.Io_stats.snapshot (Extmem.Device.stats left) in
  let right_io = Extmem.Io_stats.snapshot (Extmem.Device.stats right) in
  let index_io = Extmem.Io_stats.snapshot (Extmem.Device.stats index_dev) in
  let output_io = Extmem.Io_stats.snapshot (Extmem.Device.stats output) in
  {
    matched_elements = !matched_count;
    index_entries = !entries;
    index_build_io;
    left_io;
    right_io;
    index_io;
    output_io;
    total_io =
      Extmem.Io_stats.add left_io
        (Extmem.Io_stats.add right_io (Extmem.Io_stats.add index_io output_io));
    pager_hits = Extmem.Pager.hits (Extmem.Btree.pager index);
    pager_misses = Extmem.Pager.misses (Extmem.Btree.pager index);
    pager_evictions = Extmem.Pager.evictions (Extmem.Btree.pager index);
    pager_writebacks = Extmem.Pager.writebacks (Extmem.Btree.pager index);
    wall_seconds = Unix.gettimeofday () -. t0;
    spans = Obs.Spans.close spans;
  }

let merge_strings ?policy ~ordering ?(block_size = 1024) ?(device = Extmem.Device_spec.default) l r
    =
  let left = Extmem.Device_spec.scratch device ~name:"left" ~block_size in
  Extmem.Device.load_string left l;
  let right = Extmem.Device_spec.scratch device ~name:"right" ~block_size in
  Extmem.Device.load_string right r;
  let output = Extmem.Device_spec.scratch device ~name:"output" ~block_size in
  let report = merge_devices ?policy ~ordering ~left ~right ~output () in
  (Extmem.Device.contents output, report)
