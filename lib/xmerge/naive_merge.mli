(** The naive nested-loop merge of Example 1.1 — the strawman that
    motivates sorting.

    "For each employee element, we find the matching element in the other
    document by traversing through the matching region and branch
    elements.  [...] when dealing with large XML documents, this approach
    performs poorly because it generates element access patterns that do
    not at all correspond to the natural depth-first element ordering of
    disk-resident XML documents.  For example, looking for a particular
    branch in a region requires scanning half of the region subtree on
    average, unless there is an additional index."  (§1)

    This module implements exactly that strawman, deliberately: both
    documents stay {e unsorted} on their devices; for every left element
    the matching right sibling is found by linearly re-scanning the right
    parent's subtree, and subtree extents are re-discovered by re-parsing.
    Every such scan is real device I/O, so the measured block counts show
    the quadratic blow-up the paper argues against (benchmark
    [motivation]).

    The output is the same outer-join merge {!Struct_merge} produces
    (modulo child order: the naive merge keeps the left document's order
    with unmatched right children appended, since nothing is sorted).

    Restrictions (it is a strawman): scan-evaluable orderings,
    element/attribute/text content only (no comments, PIs or CDATA in the
    inputs), and matching assumes keys unique among siblings. *)

type report = {
  matched_elements : int;
  left_io : Extmem.Io_stats.t;
  right_io : Extmem.Io_stats.t;   (** where the pain shows *)
  output_io : Extmem.Io_stats.t;
  total_io : Extmem.Io_stats.t;
  wall_seconds : float;
}

val merge_devices :
  ordering:Nexsort.Ordering.t ->
  left:Extmem.Device.t ->
  right:Extmem.Device.t ->
  output:Extmem.Device.t ->
  unit ->
  report
(** Nested-loop outer-join merge of two (unsorted) documents.
    @raise Invalid_argument on non-scan-evaluable orderings or unsupported
    markup. *)

val merge_strings :
  ordering:Nexsort.Ordering.t ->
  ?block_size:int ->
  ?device:Extmem.Device_spec.t ->
  string ->
  string ->
  string * report
(** The three devices are built through the spec factory (default: plain
    in-memory). *)
