(** Incremental sorted maintenance: continuous update ingestion.

    A NEXSORTed document is only useful under heavy traffic if edits do
    not force a full re-sort.  This module keeps a sorted base document
    live under a stream of subtree updates: each update document
    ({!Batch_update} format — subtrees to upsert, [__op="delete"] /
    [__op="replace"] markers) is decomposed into per-subtree operation
    records and buffered in an external priority queue
    ({!Extsort.Ext_pq}) under the document ordering (key-path order,
    arrival order as the tiebreak).  A batch {!flush} drains the queue —
    already in document order — folds the operations into one combined
    batch-update document, and merges it into the base in a single
    streaming pass ({!Batch_update.apply_events} over devices), writing
    the new base to a fresh scratch device (devices are
    append-allocated and cannot be rewound; the old base is dropped and
    reclaimed with the in-memory backend).  Applying [k]
    buffered updates therefore costs one merge pass (read base + write
    base), not one full re-sort, and nothing at all between flushes.

    A {!Extmem.Btree} over the top-level subtree keys is maintained as
    the positional index of the base (§1's "additional index"): it maps
    each root child's key to its byte offset in the base document, and
    lets a flush drop delete operations whose top-level subtree does not
    exist — a batch of only such no-ops skips the merge pass entirely.

    Folding semantics: operations are replayed in arrival order per
    target, so [delete] then upsert becomes a replace, an upsert after a
    replace merges into the replacement, and a later delete wins over
    everything before it.  The fold is exactly associative with
    sequential application, which the test suite checks by comparing any
    partition of an edit script into flushes against one oracle re-sort
    (the known exception is the {!Struct_merge} text-coalescing rule:
    colliding upserts whose text children differ concatenate, so equal
    text merged in one flush can differ from two flushes).

    The ordering must be scan-evaluable (a {!Struct_merge}
    requirement). *)

type t

type flush_report = {
  batch_ops : int;  (** operation records drained from the queue *)
  batch_docs : int;  (** update documents the batch came from *)
  index_dropped : int;  (** deletes dropped by the positional index *)
  skipped : bool;  (** the whole batch was a no-op: no merge pass ran *)
  merge : Batch_update.report option;  (** [None] when [skipped] *)
  pq : Extsort.Ext_pq.stats;  (** cumulative queue counters at flush time *)
  pq_run_blocks : int;  (** blocks ever spilled to the queue's run store *)
  flush_io : Extmem.Io_stats.t;  (** base-device I/O delta of this flush *)
  base_bytes : int;  (** size of the (new) base document *)
  indexed_keys : int;  (** entries in the rebuilt positional index *)
}

val flush_report_json : flush_report -> Obs.Json.t
(** The report as one metrics object (the per-flush entries of the CLI
    and daemon "ingest" sections). *)

val create :
  ?config:Nexsort.Config.t ->
  ?session:Nexsort.Session.t ->
  ordering:Nexsort.Ordering.t ->
  base:string ->
  unit ->
  t
(** Sort [base] (via NEXSORT, under [config]) onto the ingest's own
    device pair and build the positional index.  [session] runs the
    initial sort over a pre-built session (the engine path; destroyed by
    the sort as usual).  The ingest holds its own memory budget of
    [config]'s geometry for the queue; flushes additionally use one
    parser/writer block per device, as {!Struct_merge.merge_devices}
    does.
    @raise Xmlio.Parser.Error on malformed input.
    @raise Invalid_argument when the ordering is not scan-evaluable. *)

val add_update : t -> string -> unit
(** Parse an update document and buffer its operations.  No base I/O:
    the operations go to the queue (spilling externally past its
    insert-tier budget).
    @raise Xmlio.Tree.Malformed / [Xmlio.Parser.Error] on a malformed
    document (the queue is left as before the call).
    @raise Invalid_argument on an [__op] marker on the root. *)

val pending : t -> int
(** Operations buffered and not yet flushed. *)

val flush : t -> flush_report
(** Merge every buffered operation into the base in one pass (or skip
    the pass when the index proves the batch a no-op).  Idempotent on an
    empty queue: returns a [skipped] report with zero I/O. *)

val contents : t -> string
(** The current sorted base document. *)

val base_device : t -> Extmem.Device.t
(** The device holding the current base (a fresh one after each
    non-skipped flush). *)

val index_keys : t -> int
(** Entries in the positional index (top-level subtrees of the base). *)

val find_offset : t -> Nexsort.Key.t -> int option
(** Position of the top-level subtree with the given key in the current
    base document, from the positional index: the reader's byte offset
    just after the subtree's start tag.  [None] when the key is absent
    (or the index is incomplete). *)

val destroy : t -> unit
(** Release the queue and every lease; the budget returns to zero.
    Idempotent. *)
