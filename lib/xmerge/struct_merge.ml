module Key = Nexsort.Key
module Ordering = Nexsort.Ordering

exception Not_sorted of string

type behaviour =
  | Merge
  | Take_right
  | Drop

type report = {
  left_events : int;
  right_events : int;
  output_events : int;
  matched_elements : int;
  spans : Obs.Span.t;
}

(* One-token-lookahead stream with sortedness checking. *)
type stream = {
  next_fn : unit -> Xmlio.Event.t option;
  mutable ahead : Xmlio.Event.t option option;
  mutable consumed : int;
}

let stream next_fn = { next_fn; ahead = None; consumed = 0 }

let peek s =
  match s.ahead with
  | Some e -> e
  | None ->
      let e = s.next_fn () in
      s.ahead <- Some e;
      e

let advance s =
  let e = peek s in
  s.ahead <- None;
  (match e with Some _ -> s.consumed <- s.consumed + 1 | None -> ());
  e

let key_of_start ordering name attrs =
  match Ordering.key_of_start ordering name attrs with
  | Some k -> k
  | None -> invalid_arg "Struct_merge: ordering must be scan-evaluable"

(* Sorted documents order equal-key siblings by document position, which
   is not comparable across documents.  The merge therefore decides by key
   alone: equal keys with equal tags match; equal keys with different tags
   take the left side first (full matching under duplicate keys would need
   buffering — the paper assumes keys unique among siblings). *)
let compare_child (ka, na) (kb, nb) =
  let c = Key.compare ka kb in
  if c <> 0 then c else if String.equal na nb then 0 else -1

(* sortedness is checked on keys only, matching the (key, position) order
   the sorter produces *)
let check_key_order prev cur = Key.compare (fst prev) (fst cur) <= 0

let copy_subtree s emit =
  (* s is positioned at a Start; copy events until its matching End *)
  let rec go depth =
    match advance s with
    | None -> raise (Not_sorted "unexpected end of stream while copying a subtree")
    | Some (Xmlio.Event.Start _ as e) ->
        emit e;
        go (depth + 1)
    | Some (Xmlio.Event.End _ as e) ->
        emit e;
        if depth > 1 then go (depth - 1)
    | Some (Xmlio.Event.Text _ as e) ->
        emit e;
        go depth
  in
  go 0

let skip_subtree s =
  let rec go depth =
    match advance s with
    | None -> raise (Not_sorted "unexpected end of stream while skipping a subtree")
    | Some (Xmlio.Event.Start _) -> go (depth + 1)
    | Some (Xmlio.Event.End _) -> if depth > 1 then go (depth - 1)
    | Some (Xmlio.Event.Text _) -> go depth
  in
  go 0

let union_attrs left right =
  left @ List.filter (fun (k, _) -> not (List.mem_assoc k left)) right

let merge_events ?(on_match = fun ~left_attrs:_ ~right_attrs:_ -> Merge)
    ?(rewrite_attrs = fun attrs -> attrs) ?io ?tracer ~ordering ~left ~right ~emit () =
  if not (Ordering.all_scan_evaluable ordering) then
    invalid_arg "Struct_merge: ordering must be scan-evaluable";
  let spans = Obs.Spans.create ?io ?tracer "struct_merge" in
  let l = stream left and r = stream right in
  let output_events = ref 0 in
  let matched = ref 0 in
  let emit e =
    incr output_events;
    emit e
  in
  (* gather the run of leading text children from a stream *)
  let rec texts s acc =
    match peek s with
    | Some (Xmlio.Event.Text t) ->
        ignore (advance s);
        texts s (t :: acc)
    | Some _ | None -> List.rev acc
  in
  let check_sorted side prev cur =
    if not (check_key_order prev cur) then
      raise
        (Not_sorted
           (Printf.sprintf "%s input: children out of order (%s after %s)" side (snd cur)
              (snd prev)))
  in
  (* both streams positioned at matching Start events *)
  let rec merge_matched () =
    match (advance l, advance r) with
    | Some (Xmlio.Event.Start (n1, a1)), Some (Xmlio.Event.Start (n2, a2)) ->
        if n1 <> n2 then
          invalid_arg (Printf.sprintf "Struct_merge: mismatched roots <%s> vs <%s>" n1 n2);
        incr matched;
        emit (Xmlio.Event.Start (n1, rewrite_attrs (union_attrs a1 a2)));
        (* text children sort first: resolve them up front *)
        let t1 = texts l [] and t2 = texts r [] in
        if t1 = t2 then List.iter (fun t -> emit (Xmlio.Event.Text t)) t1
        else begin
          List.iter (fun t -> emit (Xmlio.Event.Text t)) t1;
          List.iter (fun t -> emit (Xmlio.Event.Text t)) t2
        end;
        merge_children None None;
        emit (Xmlio.Event.End n1)
    | _ -> invalid_arg "Struct_merge: inputs must each contain a root element"
  (* merge the remaining element children of the currently open pair;
     [prev_l]/[prev_r] are the last seen (key, tag) for sortedness checks *)
  and merge_children prev_l prev_r =
    let head s =
      match peek s with
      | Some (Xmlio.Event.Start (n, a)) -> `Elem (key_of_start ordering n a, n, a)
      | Some (Xmlio.Event.End _) -> `Done
      | Some (Xmlio.Event.Text _) ->
          (* sorted inputs put all text first; trailing text would be
             unsorted *)
          raise (Not_sorted "text child after element children")
      | None -> raise (Not_sorted "unexpected end of stream inside an element")
    in
    match (head l, head r) with
    | `Done, `Done ->
        ignore (advance l);
        ignore (advance r)
    | `Elem (k, n, _), `Done ->
        Option.iter (fun p -> check_sorted "left" p (k, n)) prev_l;
        copy_rest "left" l prev_l;
        ignore (advance r)
    | `Done, `Elem (k, n, _) ->
        Option.iter (fun p -> check_sorted "right" p (k, n)) prev_r;
        copy_rest "right" r prev_r;
        ignore (advance l)
    | `Elem (k1, n1, _), `Elem (k2, n2, a2) ->
        Option.iter (fun p -> check_sorted "left" p (k1, n1)) prev_l;
        Option.iter (fun p -> check_sorted "right" p (k2, n2)) prev_r;
        let c = compare_child (k1, n1) (k2, n2) in
        if c < 0 then begin
          copy_subtree l emit;
          merge_children (Some (k1, n1)) prev_r
        end
        else if c > 0 then begin
          copy_subtree_rewritten r;
          merge_children prev_l (Some (k2, n2))
        end
        else begin
          (match on_match ~left_attrs:(match peek l with
             | Some (Xmlio.Event.Start (_, a)) -> a
             | _ -> assert false) ~right_attrs:a2 with
          | Merge -> merge_matched ()
          | Take_right ->
              skip_subtree l;
              copy_subtree_rewritten r
          | Drop ->
              skip_subtree l;
              skip_subtree r);
          merge_children (Some (k1, n1)) (Some (k2, n2))
        end
  (* copy all remaining children of the open element on one stream,
     consuming its End; keeps checking sibling order *)
  and copy_rest side s prev =
    let rec go prev =
      match peek s with
      | Some (Xmlio.Event.Start (n, a)) ->
          let mark = (key_of_start ordering n a, n) in
          Option.iter (fun p -> check_sorted side p mark) prev;
          if s == r then copy_subtree_rewritten s else copy_subtree s emit;
          go (Some mark)
      | Some (Xmlio.Event.End _) -> ignore (advance s)
      | Some (Xmlio.Event.Text _) -> raise (Not_sorted "text child after element children")
      | None -> raise (Not_sorted "unexpected end of stream inside an element")
    in
    go prev
  (* right-side subtrees go through rewrite_attrs on their start tags *)
  and copy_subtree_rewritten s =
    let rec go depth =
      match advance s with
      | None -> raise (Not_sorted "unexpected end of stream while copying a subtree")
      | Some (Xmlio.Event.Start (n, a)) ->
          emit (Xmlio.Event.Start (n, rewrite_attrs a));
          go (depth + 1)
      | Some (Xmlio.Event.End _ as e) ->
          emit e;
          if depth > 1 then go (depth - 1)
      | Some (Xmlio.Event.Text _ as e) ->
          emit e;
          go depth
    in
    go 0
  in
  Obs.Spans.with_span spans "merge" (fun () ->
      merge_matched ();
      match (peek l, peek r) with
      | None, None -> ()
      | _ -> raise (Not_sorted "trailing events after the root element"));
  {
    left_events = l.consumed;
    right_events = r.consumed;
    output_events = !output_events;
    matched_elements = !matched;
    spans = Obs.Spans.close spans;
  }

let merge_strings ~ordering left right =
  let pl = Xmlio.Parser.of_string left and pr = Xmlio.Parser.of_string right in
  let buf = Buffer.create (String.length left + String.length right) in
  let writer = Xmlio.Writer.to_buffer buf in
  let report =
    merge_events ~ordering
      ~left:(fun () -> Xmlio.Parser.next pl)
      ~right:(fun () -> Xmlio.Parser.next pr)
      ~emit:(Xmlio.Writer.event writer) ()
  in
  Xmlio.Writer.close writer;
  (Buffer.contents buf, report)

let merge_devices ~ordering ~left ~right ~output () =
  let pl = Xmlio.Parser.of_reader (Extmem.Block_reader.of_device left) in
  let pr = Xmlio.Parser.of_reader (Extmem.Block_reader.of_device right) in
  let bw = Extmem.Block_writer.create output in
  let writer = Xmlio.Writer.to_block_writer bw in
  let io () =
    Extmem.Io_stats.add
      (Extmem.Io_stats.add
         (Extmem.Io_stats.snapshot (Extmem.Device.stats left))
         (Extmem.Io_stats.snapshot (Extmem.Device.stats right)))
      (Extmem.Io_stats.snapshot (Extmem.Device.stats output))
  in
  let report =
    merge_events ~io ~ordering
      ~left:(fun () -> Xmlio.Parser.next pl)
      ~right:(fun () -> Xmlio.Parser.next pr)
      ~emit:(Xmlio.Writer.event writer) ()
  in
  Xmlio.Writer.close writer;
  let extent = Extmem.Block_writer.close bw in
  Extmem.Device.set_byte_length output extent.Extmem.Extent.bytes;
  report

(* Fused sort+merge: both inputs are opened as sorted event streams
   (each drives its own NEXSORT session — the root's final merge runs
   lazily as the merge pulls), so neither sorted document is ever
   materialised. *)
let merge_sorted_streams ?io ?sessions ~ordering ~config ~left ~right ~emit () =
  let sess_l, sess_r =
    match sessions with Some (a, b) -> (Some a, Some b) | None -> (None, None)
  in
  let sl = Nexsort.open_stream ~config ?session:sess_l ~ordering ~input:left () in
  let sr =
    try Nexsort.open_stream ~config ?session:sess_r ~ordering ~input:right ()
    with e ->
      ignore (Nexsort.stream_finish sl);
      raise e
  in
  Fun.protect
    ~finally:(fun () ->
      ignore (Nexsort.stream_finish sl);
      ignore (Nexsort.stream_finish sr))
    (fun () ->
      merge_events ?io ~tracer:config.Nexsort.Config.tracer ~ordering
        ~left:(fun () -> Nexsort.stream_events sl)
        ~right:(fun () -> Nexsort.stream_events sr)
        ~emit ())

let sort_and_merge_devices ?(config = Nexsort.Config.make ()) ?(fuse = true) ?sessions
    ~ordering ~left ~right ~output () =
  if fuse then begin
    let bw = Extmem.Block_writer.create output in
    let writer = Xmlio.Writer.to_block_writer bw in
    let io () =
      Extmem.Io_stats.add
        (Extmem.Io_stats.add
           (Extmem.Io_stats.snapshot (Extmem.Device.stats left))
           (Extmem.Io_stats.snapshot (Extmem.Device.stats right)))
        (Extmem.Io_stats.snapshot (Extmem.Device.stats output))
    in
    let report =
      merge_sorted_streams ~io ?sessions ~ordering ~config ~left ~right
        ~emit:(Xmlio.Writer.event writer) ()
    in
    Xmlio.Writer.close writer;
    let extent = Extmem.Block_writer.close bw in
    Extmem.Device.set_byte_length output extent.Extmem.Extent.bytes;
    report
  end
  else begin
    (* unfused: materialise both sorted documents on scratch devices,
       then run the single-pass device merge *)
    let sess_l, sess_r =
      match sessions with Some (a, b) -> (Some a, Some b) | None -> (None, None)
    in
    let sorted name session input =
      let d = Nexsort.Config.scratch_device config ~name in
      ignore (Nexsort.sort_device ~config ?session ~ordering ~input ~output:d ());
      d
    in
    let ldev = sorted "sorted-left" sess_l left in
    let rdev = sorted "sorted-right" sess_r right in
    merge_devices ~ordering ~left:ldev ~right:rdev ~output ()
  end

let sort_and_merge_strings ?config ?(fuse = true) ?sessions ~ordering left right =
  let config = Option.value config ~default:(Nexsort.Config.make ()) in
  if fuse then begin
    let load name s =
      let d = Nexsort.Config.scratch_device config ~name in
      Extmem.Device.load_string d s;
      d
    in
    let left = load "left" left and right = load "right" right in
    let buf = Buffer.create 1024 in
    let writer = Xmlio.Writer.to_buffer buf in
    let report =
      merge_sorted_streams ?sessions ~ordering ~config ~left ~right
        ~emit:(Xmlio.Writer.event writer) ()
    in
    Xmlio.Writer.close writer;
    (Buffer.contents buf, report)
  end
  else begin
    let sorted_l, _ = Nexsort.sort_string ~config ~ordering left in
    let sorted_r, _ = Nexsort.sort_string ~config ~ordering right in
    merge_strings ~ordering sorted_l sorted_r
  end
