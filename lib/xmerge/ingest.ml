(* Continuous ingestion: buffer subtree updates in an external priority
   queue under key-path order; a flush folds the drained batch into one
   combined update document and merges it into the sorted base in a
   single streaming pass. *)

module Key = Nexsort.Key
module Ordering = Nexsort.Ordering
module Keypath = Nexsort.Keypath
module Tree = Xmlio.Tree

let op_attr = Batch_update.op_attr

type marker = Delete | Replace | Upsert

let marker_of_attrs attrs =
  match List.assoc_opt op_attr attrs with
  | Some "delete" -> Delete
  | Some "replace" -> Replace
  | Some _ | None -> Upsert

let strip_op attrs = List.filter (fun (k, _) -> k <> op_attr) attrs

(* ------------------------------------------------------------------ *)
(* Operation records.

   One record per updated subtree: the key path of the target (keys
   only, positions zeroed — matching is by key, and positions are not
   comparable across documents), and a payload of
   [seq][spine][subtree].  The fixed-width decimal [seq] makes the
   payload's lexicographic order the arrival order, so the queue's
   comparator (key path, then payload) drains a flush batch in document
   order with arrival order as the tiebreak. *)

type op = {
  seq : int;
  spine : (string * Xmlio.Event.attr list) list; (* root .. parent *)
  node : Tree.element; (* the updated subtree, marker intact *)
  path : Keypath.component list; (* root .. node, pos = 0 *)
}

let buf_add_field buf s =
  Buffer.add_string buf (string_of_int (String.length s));
  Buffer.add_char buf ':';
  Buffer.add_string buf s

let read_field s pos =
  let colon = String.index_from s pos ':' in
  let len = int_of_string (String.sub s pos (colon - pos)) in
  (String.sub s (colon + 1) len, colon + 1 + len)

let shallow_element name attrs = Tree.Element { Tree.name; attrs; children = [] }

let element_to_string el = Tree.to_string ~decl:false (Tree.Element el)

let element_of_string s =
  match Tree.of_string s with
  | Tree.Element el -> el
  | Tree.Text _ -> invalid_arg "Ingest: expected an element"

let encode_op op =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "%012d" op.seq);
  Buffer.add_string buf (string_of_int (List.length op.spine));
  Buffer.add_char buf ';';
  List.iter
    (fun (name, attrs) ->
      buf_add_field buf (Tree.to_string ~decl:false (shallow_element name attrs)))
    op.spine;
  buf_add_field buf (element_to_string op.node);
  Keypath.encode_record op.path ~payload:(Buffer.contents buf)

let decode_op record =
  let path = Keypath.decode_path record in
  let payload = Keypath.decode_payload record in
  let seq = int_of_string (String.sub payload 0 12) in
  let semi = String.index_from payload 12 ';' in
  let spine_count = int_of_string (String.sub payload 12 (semi - 12)) in
  let pos = ref (semi + 1) in
  let spine =
    List.init spine_count (fun _ ->
        let s, next = read_field payload !pos in
        pos := next;
        let el = element_of_string s in
        (el.Tree.name, el.Tree.attrs))
  in
  let subtree, _ = read_field payload !pos in
  { seq; spine; node = element_of_string subtree; path }

(* ------------------------------------------------------------------ *)
(* Update-document decomposition.

   An update document is cut into per-subtree operations: any element
   carrying an [__op] marker is one operation, as is any markerless
   subtree with no markers below it (a whole-subtree upsert).  Elements
   above the cuts are spine: name and attributes only — their direct
   text children, if any, become a text-shell upsert of their own so no
   content is lost.  The root is always spine (a marker on the root has
   no meaning under the structural merge and is rejected). *)

let key_of_start ordering name attrs =
  match Ordering.key_of_start ordering name attrs with
  | Some k -> k
  | None -> invalid_arg "Ingest: ordering must be scan-evaluable"

let rec has_marker_below = function
  | Tree.Text _ -> false
  | Tree.Element el ->
      List.mem_assoc op_attr el.Tree.attrs || List.exists has_marker_below el.Tree.children

let decompose ~ordering (root : Tree.element) =
  let ops = ref [] in
  let comp name attrs = { Keypath.key = key_of_start ordering name attrs; pos = 0 } in
  let emit spine path node = ops := { seq = 0; spine; path; node } :: !ops in
  let rec go rev_spine rev_path (el : Tree.element) ~depth =
    let marked = List.mem_assoc op_attr el.Tree.attrs in
    if depth = 0 && marked then invalid_arg "Ingest: __op marker on the document root";
    let rev_path = comp el.Tree.name el.Tree.attrs :: rev_path in
    if depth > 0 && (marked || not (List.exists has_marker_below el.Tree.children)) then
      emit (List.rev rev_spine) (List.rev rev_path) el
    else begin
      let texts =
        List.filter (function Tree.Text _ -> true | Tree.Element _ -> false) el.Tree.children
      in
      if texts <> [] then
        emit (List.rev rev_spine) (List.rev rev_path) { el with Tree.children = texts };
      let rev_spine = (el.Tree.name, el.Tree.attrs) :: rev_spine in
      List.iter
        (function
          | Tree.Text _ -> ()
          | Tree.Element c -> go rev_spine rev_path c ~depth:(depth + 1))
        el.Tree.children
    end
  in
  go [] [] root ~depth:0;
  List.rev !ops

(* ------------------------------------------------------------------ *)
(* Folding a drained batch into one update document.

   The accumulator mirrors the batch document under construction; every
   node remembers the arrival number of the last operation that shaped
   it, so operations arriving out of arrival order (the queue drains in
   document order: an op on a parent path sorts before an older op on a
   child path) still fold to the sequential-application result. *)

type unode = {
  u_name : string;
  u_key : Key.t;
  mutable u_attrs : Xmlio.Event.attr list; (* marker stripped *)
  mutable u_marker : marker;
  mutable u_seq : int;
  mutable u_texts : string list;
  mutable u_elems : unode list;
}

let rec unode_of_tree ~ordering ~seq (el : Tree.element) =
  let texts, elems =
    List.partition_map
      (function
        | Tree.Text s -> Left s
        | Tree.Element c -> Right (unode_of_tree ~ordering ~seq c))
      el.Tree.children
  in
  {
    u_name = el.Tree.name;
    u_key = key_of_start ordering el.Tree.name el.Tree.attrs;
    u_attrs = strip_op el.Tree.attrs;
    u_marker = marker_of_attrs el.Tree.attrs;
    u_seq = seq;
    u_texts = texts;
    u_elems = elems;
  }

let union_attrs left right =
  left @ List.filter (fun (k, _) -> not (List.mem_assoc k left)) right

let same_child name key u = String.equal u.u_name name && Key.compare u.u_key key = 0

(* Combine an incoming node with the accumulated sibling list, replaying
   sequential semantics: the later operation's marker decides, and a
   delete composed with surviving newer content becomes a replace (the
   base element must die, the newer content must live). *)
let rec combine elems n =
  match List.partition (same_child n.u_name n.u_key) elems with
  | [], _ -> elems @ [ n ]
  | e :: _, rest ->
      let keep u = rest @ [ u ] in
      if n.u_seq >= e.u_seq then
        match n.u_marker with
        | Delete | Replace -> keep n
        | Upsert -> (
            match e.u_marker with
            | Delete -> keep { n with u_marker = Replace }
            | (Replace | Upsert) as m -> keep (merge_nodes e n ~marker:m ~seq:n.u_seq))
      else
        (* [n] is older than what already shaped this node *)
        match e.u_marker with
        | Delete -> keep e (* deleted later: the older op is moot *)
        | Replace -> keep e (* replaced wholesale later *)
        | Upsert -> (
            match n.u_marker with
            | Delete -> keep { e with u_marker = Replace }
            | Replace -> keep (merge_nodes n e ~marker:Replace ~seq:e.u_seq)
            | Upsert -> keep (merge_nodes n e ~marker:Upsert ~seq:e.u_seq))

(* Upsert-merge [r] (later) onto [l] (earlier): attribute union left
   first, Struct_merge's text rule, children combined recursively. *)
and merge_nodes l r ~marker ~seq =
  {
    u_name = l.u_name;
    u_key = l.u_key;
    u_attrs = union_attrs l.u_attrs r.u_attrs;
    u_marker = marker;
    u_seq = seq;
    u_texts = (if l.u_texts = r.u_texts then l.u_texts else l.u_texts @ r.u_texts);
    u_elems = List.fold_left combine l.u_elems r.u_elems;
  }

(* Graft one operation onto the accumulator root, walking its spine. *)
let graft ~ordering root op =
  if root.u_name <> (match op.spine with (n, _) :: _ -> n | [] -> op.node.Tree.name) then
    invalid_arg
      (Printf.sprintf "Ingest: update root <%s> does not match base root <%s>"
         (match op.spine with (n, _) :: _ -> n | [] -> op.node.Tree.name)
         root.u_name);
  match op.spine with
  | [] ->
      (* text-shell of the root itself *)
      let texts =
        List.filter_map
          (function Tree.Text s -> Some s | Tree.Element _ -> None)
          op.node.Tree.children
      in
      root.u_texts <- (if root.u_texts = texts then root.u_texts else root.u_texts @ texts);
      root.u_seq <- max root.u_seq op.seq
  | (_, root_attrs) :: spine_rest ->
      root.u_attrs <- union_attrs root.u_attrs (strip_op root_attrs);
      let rec descend cur = function
        | [] -> cur.u_elems <- combine cur.u_elems (unode_of_tree ~ordering ~seq:op.seq op.node)
        | (name, attrs) :: rest -> (
            let key = key_of_start ordering name attrs in
            match List.find_opt (same_child name key) cur.u_elems with
            | Some c -> (
                match c.u_marker with
                | Delete when op.seq < c.u_seq -> () (* ancestor deleted later: moot *)
                | Delete ->
                    (* deleted earlier, now written below: the ancestor is
                       reborn as a replacement shell *)
                    c.u_marker <- Replace;
                    c.u_attrs <- union_attrs c.u_attrs (strip_op attrs);
                    descend c rest
                | Replace when op.seq < c.u_seq -> () (* replaced wholesale later *)
                | Replace | Upsert ->
                    c.u_attrs <- union_attrs c.u_attrs (strip_op attrs);
                    descend c rest)
            | None ->
                let c =
                  {
                    u_name = name;
                    u_key = key;
                    u_attrs = strip_op attrs;
                    u_marker = Upsert;
                    u_seq = op.seq;
                    u_texts = [];
                    u_elems = [];
                  }
                in
                cur.u_elems <- cur.u_elems @ [ c ];
                descend c rest)
      in
      descend root spine_rest

(* Serialize the folded accumulator as a sorted event stream: texts
   first, element children by (key, tag) — the sibling order
   Struct_merge checks — markers re-attached for Batch_update. *)
let events_of_unode root =
  let acc = ref [] in
  let emit e = acc := e :: !acc in
  let rec go u =
    let attrs =
      match u.u_marker with
      | Delete -> (op_attr, "delete") :: u.u_attrs
      | Replace -> (op_attr, "replace") :: u.u_attrs
      | Upsert -> u.u_attrs
    in
    emit (Xmlio.Event.Start (u.u_name, attrs));
    List.iter (fun t -> emit (Xmlio.Event.Text t)) u.u_texts;
    let sorted =
      List.stable_sort
        (fun a b ->
          let c = Key.compare a.u_key b.u_key in
          if c <> 0 then c else String.compare a.u_name b.u_name)
        u.u_elems
    in
    List.iter go sorted;
    emit (Xmlio.Event.End u.u_name)
  in
  go root;
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* The ingest session *)

type flush_report = {
  batch_ops : int;
  batch_docs : int;
  index_dropped : int;
  skipped : bool;
  merge : Batch_update.report option;
  pq : Extsort.Ext_pq.stats;
  pq_run_blocks : int;
  flush_io : Extmem.Io_stats.t;
  base_bytes : int;
  indexed_keys : int;
}

type t = {
  config : Nexsort.Config.t;
  ordering : Ordering.t;
  budget : Extmem.Memory_budget.t;
  arena : Extmem.Frame_arena.t;
  pq : Extsort.Ext_pq.t;
  root_name : string;
  mutable base : Extmem.Device.t;
  mutable generation : int; (* flush count; names each new base device *)
  mutable index : Extmem.Btree.t;
  index_dev : Extmem.Device.t;
  mutable index_complete : bool;
  mutable indexed : int;
  mutable next_seq : int;
  mutable batch_docs : int;
  mutable destroyed : bool;
}

(* The index key is the display form of the sort key: deterministic per
   key, and a (theoretical) collision only disables the no-op shortcut,
   never changes a result. *)
let index_key k = Key.to_string k

let index_frames = 4

let rebuild_index t =
  Extmem.Device.set_byte_length t.index_dev 0;
  t.index <- Extmem.Btree.create ~frames:index_frames ~cmp:String.compare t.index_dev;
  t.index_complete <- true;
  t.indexed <- 0;
  let reader = Extmem.Block_reader.of_device t.base in
  let p = Xmlio.Parser.of_reader reader in
  let depth = ref 0 in
  let rec go () =
    match Xmlio.Parser.next p with
    | None -> ()
    | Some e ->
        (match e with
        | Xmlio.Event.Start (name, attrs) ->
            incr depth;
            if !depth = 2 then begin
              let key = key_of_start t.ordering name attrs in
              let offset = Extmem.Block_reader.position reader in
              try
                Extmem.Btree.insert t.index ~key:(index_key key)
                  ~value:(string_of_int offset);
                t.indexed <- t.indexed + 1
              with Invalid_argument _ -> t.index_complete <- false
            end
        | Xmlio.Event.End _ -> decr depth
        | Xmlio.Event.Text _ -> ());
        go ()
  in
  go ()

let pq_cmp a b =
  let c = Keypath.compare_encoded a b in
  if c <> 0 then c
  else compare (Keypath.decode_payload a) (Keypath.decode_payload b)

let create ?(config = Nexsort.Config.make ()) ?session ~ordering ~base () =
  let sorted =
    let bs = config.Nexsort.Config.block_size in
    let input = Extmem.Device.of_string ~block_size:bs base in
    let output = Extmem.Device.in_memory ~block_size:bs () in
    ignore (Nexsort.sort_device ~config ?session ~ordering ~input ~output ());
    Extmem.Device.contents output
  in
  let root_name =
    let p = Xmlio.Parser.of_string sorted in
    match Xmlio.Parser.next p with
    | Some (Xmlio.Event.Start (name, _)) -> name
    | _ -> invalid_arg "Ingest: base document has no root element"
  in
  let bs = config.Nexsort.Config.block_size in
  let budget =
    Extmem.Memory_budget.create ~blocks:config.Nexsort.Config.memory_blocks ~block_size:bs
  in
  let arena = Extmem.Frame_arena.create ~budget () in
  let base_dev = Nexsort.Config.scratch_device config ~name:"ingest-base-0" in
  let pq_temp = Nexsort.Config.scratch_device config ~name:"ingest-pq" in
  (* The index lives on its own device with blocks big enough for the
     quarter-block entry limit even under tiny sort geometries; its
     pager is standalone (unaccounted), like any side index. *)
  let index_dev = Extmem.Device.in_memory ~block_size:(max 1024 bs) () in
  Extmem.Device.load_string base_dev sorted;
  let pq = Extsort.Ext_pq.create ~arena ~budget ~temp:pq_temp ~cmp:pq_cmp () in
  let t =
    {
      config;
      ordering;
      budget;
      arena;
      pq;
      root_name;
      base = base_dev;
      generation = 0;
      index = Extmem.Btree.create ~frames:index_frames ~cmp:String.compare index_dev;
      index_dev;
      index_complete = false;
      indexed = 0;
      next_seq = 0;
      batch_docs = 0;
      destroyed = false;
    }
  in
  rebuild_index t;
  t

let check_live t = if t.destroyed then invalid_arg "Ingest: session destroyed"

let add_update t doc =
  check_live t;
  let tree =
    match Tree.of_string doc with
    | Tree.Element el -> el
    | Tree.Text _ -> raise (Tree.Malformed "update document has no root element")
  in
  if tree.Tree.name <> t.root_name then
    invalid_arg
      (Printf.sprintf "Ingest: update root <%s> does not match base root <%s>" tree.Tree.name
         t.root_name);
  let ops = decompose ~ordering:t.ordering tree in
  List.iter
    (fun op ->
      let op = { op with seq = t.next_seq } in
      t.next_seq <- t.next_seq + 1;
      Extsort.Ext_pq.insert t.pq (encode_op op))
    ops;
  t.batch_docs <- t.batch_docs + 1

let pending t = Extsort.Ext_pq.length t.pq

(* A delete whose top-level subtree is absent from the base is a no-op —
   unless another operation in the same batch touches that subtree (an
   earlier upsert may have created what the delete targets). *)
let index_droppable t ops op =
  marker_of_attrs op.node.Tree.attrs = Delete
  && t.index_complete
  && (match op.path with
     | _root :: top :: _ ->
         (not (Extmem.Btree.mem t.index (index_key top.Keypath.key)))
         && not
              (List.exists
                 (fun other ->
                   other != op
                   &&
                   match other.path with
                   | _ :: otop :: _ -> Key.compare otop.Keypath.key top.Keypath.key = 0
                   | _ -> false)
                 ops)
     | _ -> false)

let base_bytes t = Extmem.Device.byte_length t.base

let flush t =
  check_live t;
  let pq_stats () = Extsort.Ext_pq.stats t.pq in
  let batch_docs = t.batch_docs in
  let finish ?merge ~batch_ops ~index_dropped ~skipped ~flush_io () =
    t.batch_docs <- 0;
    {
      batch_ops;
      batch_docs;
      index_dropped;
      skipped;
      merge;
      pq = pq_stats ();
      pq_run_blocks = Extsort.Ext_pq.run_blocks t.pq;
      flush_io;
      base_bytes = base_bytes t;
      indexed_keys = t.indexed;
    }
  in
  let rec drain acc =
    match Extsort.Ext_pq.delete_min t.pq with
    | None -> List.rev acc
    | Some r -> drain (decode_op r :: acc)
  in
  let ops = drain [] in
  if ops = [] then finish ~batch_ops:0 ~index_dropped:0 ~skipped:true ~flush_io:(Extmem.Io_stats.create ()) ()
  else begin
    let live_ops = List.filter (fun op -> not (index_droppable t ops op)) ops in
    let index_dropped = List.length ops - List.length live_ops in
    if live_ops = [] then
      finish ~batch_ops:(List.length ops) ~index_dropped ~skipped:true
        ~flush_io:(Extmem.Io_stats.create ()) ()
    else begin
      let root =
        {
          u_name = t.root_name;
          u_key = Key.Null;
          u_attrs = [];
          u_marker = Upsert;
          u_seq = 0;
          u_texts = [];
          u_elems = [];
        }
      in
      List.iter (graft ~ordering:t.ordering root) live_ops;
      let update_events = events_of_unode root in
      (* Devices are append-allocated and cannot be rewound, so each
         flush writes the new base to a fresh scratch device and drops
         the old one (reclaimed with the in-memory backend). *)
      let spare =
        Nexsort.Config.scratch_device t.config
          ~name:(Printf.sprintf "ingest-base-%d" (t.generation + 1))
      in
      let io_before =
        Extmem.Io_stats.add
          (Extmem.Io_stats.snapshot (Extmem.Device.stats t.base))
          (Extmem.Io_stats.snapshot (Extmem.Device.stats spare))
      in
      let pb = Xmlio.Parser.of_reader (Extmem.Block_reader.of_device t.base) in
      let bw = Extmem.Block_writer.create spare in
      let writer = Xmlio.Writer.to_block_writer bw in
      let updates = ref update_events in
      let pull_updates () =
        match !updates with
        | [] -> None
        | e :: rest ->
            updates := rest;
            Some e
      in
      let merge =
        Batch_update.apply_events ~ordering:t.ordering
          ~base:(fun () -> Xmlio.Parser.next pb)
          ~updates:pull_updates
          ~emit:(Xmlio.Writer.event writer)
      in
      Xmlio.Writer.close writer;
      let extent = Extmem.Block_writer.close bw in
      Extmem.Device.set_byte_length spare extent.Extmem.Extent.bytes;
      let io_after =
        Extmem.Io_stats.add
          (Extmem.Io_stats.snapshot (Extmem.Device.stats t.base))
          (Extmem.Io_stats.snapshot (Extmem.Device.stats spare))
      in
      t.base <- spare;
      t.generation <- t.generation + 1;
      rebuild_index t;
      finish ~merge ~batch_ops:(List.length ops) ~index_dropped ~skipped:false
        ~flush_io:(Extmem.Io_stats.diff io_after io_before)
        ()
    end
  end

let flush_report_json (r : flush_report) =
  Obs.Json.Obj
    [ ("batch_ops", Obs.Json.Int r.batch_ops);
      ("batch_docs", Obs.Json.Int r.batch_docs);
      ("index_dropped", Obs.Json.Int r.index_dropped);
      ("skipped", Obs.Json.Bool r.skipped);
      ( "merge",
        match r.merge with
        | None -> Obs.Json.Null
        | Some m ->
            Obs.Json.Obj
              [ ("matched_elements", Obs.Json.Int m.Batch_update.merge.Struct_merge.matched_elements);
                ("output_events", Obs.Json.Int m.Batch_update.merge.Struct_merge.output_events);
                ("deletes", Obs.Json.Int m.Batch_update.deletes);
                ("replaces", Obs.Json.Int m.Batch_update.replaces);
                ("unmatched_deletes", Obs.Json.Int m.Batch_update.unmatched_deletes) ] );
      ( "pq",
        Obs.Json.Obj
          [ ("inserts", Obs.Json.Int r.pq.Extsort.Ext_pq.inserts);
            ("deletes", Obs.Json.Int r.pq.Extsort.Ext_pq.deletes);
            ("spills", Obs.Json.Int r.pq.Extsort.Ext_pq.spills);
            ("spilled_records", Obs.Json.Int r.pq.Extsort.Ext_pq.spilled_records);
            ("compactions", Obs.Json.Int r.pq.Extsort.Ext_pq.compactions);
            ("run_blocks", Obs.Json.Int r.pq_run_blocks) ] );
      ("flush_io", Obs.Json.io_stats r.flush_io);
      ("base_bytes", Obs.Json.Int r.base_bytes);
      ("indexed_keys", Obs.Json.Int r.indexed_keys) ]

let contents t =
  check_live t;
  Extmem.Device.contents t.base

let base_device t = t.base

let index_keys t = t.indexed

let find_offset t key =
  check_live t;
  Option.map int_of_string (Extmem.Btree.find t.index (index_key key))

let destroy t =
  if not t.destroyed then begin
    t.destroyed <- true;
    Extsort.Ext_pq.destroy t.pq
  end
