(** Batch updates by merging (§1).

    The paper's second application of sorting: to apply a large batch of
    updates to a sorted document, sort the batch under the same ordering
    and merge it in, in a single pass; the result remains sorted.

    An update document mirrors the base document's structure.  Elements
    may carry an [__op] attribute:

    - [__op="delete"]: the matching base element (and subtree) is removed;
    - [__op="replace"]: the matching base subtree is replaced wholesale;
    - no [__op] (or [__op="merge"]): upsert — merged into the matching
      base element, or inserted if there is no match.

    [__op] attributes are stripped from the output.  A delete of an
    element that does not exist is a silent no-op (the unmatched update
    element would otherwise be inserted; deletes are never inserted). *)

val op_attr : string
(** The operation-marker attribute name, ["__op"] (shared with
    {!Ingest}, which folds buffered updates into marker-carrying batch
    documents). *)

type report = {
  merge : Struct_merge.report;
  deletes : int;            (** delete markers honoured (matched) *)
  replaces : int;
  unmatched_deletes : int;  (** delete markers with no base match (no-ops) *)
}

val apply_events :
  ordering:Nexsort.Ordering.t ->
  base:(unit -> Xmlio.Event.t option) ->
  updates:(unit -> Xmlio.Event.t option) ->
  emit:(Xmlio.Event.t -> unit) ->
  report
(** Streaming form: both inputs sorted, single pass. *)

val apply_strings :
  ordering:Nexsort.Ordering.t -> base:string -> updates:string -> string * report
(** Apply a {e sorted} update document to a {e sorted} base document.
    @raise Struct_merge.Not_sorted / [Invalid_argument] as in
    {!Struct_merge.merge_events}. *)

val sort_and_apply_strings :
  ?config:Nexsort.Config.t ->
  ordering:Nexsort.Ordering.t ->
  base:string ->
  updates:string ->
  unit ->
  string * report
(** Sort both inputs with NEXSORT first, then apply. *)
