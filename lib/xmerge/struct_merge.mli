(** Structural merge of sorted XML documents (Example 1.1).

    The XML analogue of a sort-merge outer join, and the paper's main
    motivation for sorting: once both documents are fully sorted under the
    same ordering, they merge in a {e single pass}.  Two elements match
    when they have the same tag name, equal sort keys, and matching
    ancestors; matched elements are merged recursively (attributes
    unioned, left first on conflicts), unmatched elements are copied —
    an outer join.

    Requirements, checked at entry: the ordering is scan-evaluable (keys
    must be known at start tags for streaming), and both inputs are fully
    sorted under it (violations raise {!Not_sorted} as soon as they are
    observed).  Sort keys should be unique among siblings for meaningful
    matching, as in the paper.

    Text children: a matched pair contributes the left element's text
    children, followed by the right's when they differ (no silent data
    loss; equal text is emitted once). *)

exception Not_sorted of string
(** An input stream violated the sorted-children invariant. *)

type behaviour =
  | Merge      (** recursively merge the matched pair (default) *)
  | Take_right (** replace: emit the right subtree, drop the left *)
  | Drop       (** delete: emit neither subtree *)

type report = {
  left_events : int;
  right_events : int;
  output_events : int;
  matched_elements : int;
  spans : Obs.Span.t;
      (** the ["merge"] phase span under ["struct_merge"]: wall time, and
          I/O delta when an [io] meter was supplied *)
}

val merge_events :
  ?on_match:(left_attrs:Xmlio.Event.attr list -> right_attrs:Xmlio.Event.attr list -> behaviour) ->
  ?rewrite_attrs:(Xmlio.Event.attr list -> Xmlio.Event.attr list) ->
  ?io:(unit -> Extmem.Io_stats.t) ->
  ?tracer:Obs.Tracer.t ->
  ordering:Nexsort.Ordering.t ->
  left:(unit -> Xmlio.Event.t option) ->
  right:(unit -> Xmlio.Event.t option) ->
  emit:(Xmlio.Event.t -> unit) ->
  unit ->
  report
(** Merge two sorted event streams.  [on_match] decides what to do with a
    matched element pair (default: always [Merge]); [rewrite_attrs]
    post-processes attribute lists on emitted start tags (used by
    {!Batch_update} to strip operation markers); [io] is an optional
    cumulative I/O meter sampled around the merge for the report's span
    (supplied by {!merge_devices}); [tracer] mirrors the merge spans
    onto an event-trace timeline (fused paths pass the config's tracer).
    @raise Not_sorted / [Invalid_argument] as described above. *)

val merge_strings :
  ordering:Nexsort.Ordering.t -> string -> string -> string * report
(** Parse, merge, serialize.  Inputs must already be sorted. *)

val merge_devices :
  ordering:Nexsort.Ordering.t ->
  left:Extmem.Device.t ->
  right:Extmem.Device.t ->
  output:Extmem.Device.t ->
  unit ->
  report
(** Single-pass merge of device-resident sorted documents: I/O cost is
    one read pass over each input plus one write pass of the output. *)

val sort_and_merge_strings :
  ?config:Nexsort.Config.t ->
  ?fuse:bool ->
  ?sessions:Nexsort.Session.t * Nexsort.Session.t ->
  ordering:Nexsort.Ordering.t ->
  string ->
  string ->
  string * report
(** Convenience for unsorted inputs: NEXSORT both, then merge.  With
    [fuse] (the default) the two sorts are opened as event streams
    ({!Nexsort.open_stream}) and the merge pulls from them directly, so
    neither sorted document is materialised; [~fuse:false] restores the
    three-pass sort/sort/merge sequence.  Each fused sort runs its own
    session with its own memory budget, unless [sessions] supplies the
    (left, right) pair — the engine path, where both sessions carve
    from one engine budget; they are destroyed here on every exit path
    (ignored on the unfused string path, which sorts in memory). *)

val sort_and_merge_devices :
  ?config:Nexsort.Config.t ->
  ?fuse:bool ->
  ?sessions:Nexsort.Session.t * Nexsort.Session.t ->
  ordering:Nexsort.Ordering.t ->
  left:Extmem.Device.t ->
  right:Extmem.Device.t ->
  output:Extmem.Device.t ->
  unit ->
  report
(** Sort both device-resident documents and merge them onto [output].
    Fused (default), the sorted documents exist only as event streams —
    the whole job writes each input's sorted runs once and the merged
    output once, skipping the two sorted-document materialisation
    passes.  [~fuse:false] sorts onto scratch devices first and then
    runs {!merge_devices}.  [sessions] runs the two sorts over
    pre-built (left, right) sessions — see
    {!sort_and_merge_strings}. *)
