(** Index-assisted nested-loop merge — the paper's parenthetical remedy.

    §1 qualifies the naive merge's cost: "looking for a particular branch
    in a region requires scanning half of the region subtree on average,
    {e unless there is an additional index}".  This comparator supplies
    that index: one sequential pass over the right document builds a
    disk-resident {!Extmem.Btree} mapping (parent offset, child position)
    to each child's tag, sort key, attributes and extent.  The merge then
    walks the left document as in {!Naive_merge}, but resolves right-side
    children and subtree extents from the index instead of re-scanning the
    document.

    What the experiment shows (benchmark [motivation]): the index removes
    the quadratic re-scanning, but you pay to build and probe it, and the
    right document is still read out of order — the sort-merge approach
    remains ahead and needs no auxiliary structure. *)

type report = {
  matched_elements : int;
  index_entries : int;
  index_build_io : Extmem.Io_stats.t;  (** index-device I/O during the build *)
  left_io : Extmem.Io_stats.t;
  right_io : Extmem.Io_stats.t;
  index_io : Extmem.Io_stats.t;        (** total index-device I/O *)
  output_io : Extmem.Io_stats.t;
  total_io : Extmem.Io_stats.t;
  pager_hits : int;        (** index buffer-pool hits (the probe cost) *)
  pager_misses : int;
  pager_evictions : int;
  pager_writebacks : int;
  wall_seconds : float;
  spans : Obs.Span.t;
      (** phase spans: [index_build] and [probe_merge] under
          ["indexed_merge"], with per-phase I/O deltas *)
}

val merge_devices :
  ?policy:Extmem.Frame_arena.policy ->
  ordering:Nexsort.Ordering.t ->
  left:Extmem.Device.t ->
  right:Extmem.Device.t ->
  output:Extmem.Device.t ->
  unit ->
  report
(** Same semantics and restrictions as {!Naive_merge.merge_devices}; the
    index lives on a private device whose I/O is reported separately.
    [policy] selects the index buffer pool's replacement policy (default
    LRU) — the merged output is identical under every policy, only the
    pager counters move. *)

val merge_strings :
  ?policy:Extmem.Frame_arena.policy ->
  ordering:Nexsort.Ordering.t ->
  ?block_size:int ->
  ?device:Extmem.Device_spec.t ->
  string ->
  string ->
  string * report
(** The devices are built through the spec factory (default: plain
    in-memory). *)
