(** Synthetic XML workload generators (§5 of the paper).

    Two generators reproduce the paper's test-data tooling:

    - {!random_shape} mirrors the IBM alphaWorks XML Generator as the
      paper uses it: a target height and maximum fan-out, with each
      element's fan-out drawn uniformly from [[1, max_fanout]].

    - {!exact_shape} mirrors the authors' custom generator: an exact
      fan-out for every level (Table 2), giving precise control over the
      shape and size of the document.

    Every element carries a random [id] attribute (the sort key — ids are
    random, so generated documents arrive unsorted) and a padding
    attribute sized so the average element is [avg_bytes] long, matching
    the paper's "average element size of about 150 bytes".  Leaves get a
    short random text value.

    Generation streams events directly to a sink, so documents larger
    than memory never exist as in-memory trees. *)

type stats = {
  elements : int;
  text_nodes : int;
  height : int;
  bytes : int;  (** bytes written (only set by the [to_device]/[to_string]
                    wrappers; 0 when streaming to a raw event sink) *)
}

val random_shape :
  ?seed:int ->
  ?avg_bytes:int ->
  ?max_elements:int ->
  height:int ->
  max_fanout:int ->
  (Xmlio.Event.t -> unit) ->
  stats
(** Emit a document of at most [height] levels where each non-leaf
    element has between 1 and [max_fanout] children.  Generation stops
    adding children once [max_elements] (default 100_000) elements were
    emitted, bounding the exponential blow-up exactly like capping the
    generated file size.  Default [avg_bytes] is 150, default [seed] 42. *)

val exact_shape :
  ?seed:int ->
  ?avg_bytes:int ->
  fanouts:int list ->
  (Xmlio.Event.t -> unit) ->
  stats
(** Emit a document whose root has [List.nth fanouts 0] children, each of
    which has [List.nth fanouts 1] children, and so on (the paper's
    Table 2: a height-h document is described by h-1 fan-outs).  An empty
    list gives the one-element document. *)

val to_string : ((Xmlio.Event.t -> unit) -> stats) -> string * stats
(** Capture a generator's output as an XML string. *)

val to_device :
  Extmem.Device.t -> ((Xmlio.Event.t -> unit) -> stats) -> stats
(** Stream a generator's output onto a device as XML text; sets the
    device's byte length and fills in [bytes]. *)

val adversarial :
  ?seed:int ->
  ?avg_bytes:int ->
  k:int ->
  n_elements:int ->
  (Xmlio.Event.t -> unit) ->
  stats
(** The worst-case structure of the paper's Lemma 4.1: a document where
    (at most) one element has neither 0 nor [k] children — the shape an
    adversary picks because it maximises the number of legal sorting
    outcomes, [(k!)^((N-1)/k) * ((N-1) mod k)!].  Built as a left-spine
    of [k]-ary stars: each spine element has [k] children, of which one
    continues the spine, until [n_elements] have been emitted. *)

val pathological :
  ?seed:int -> ?max_elements:int -> (Xmlio.Event.t -> unit) -> stats
(** Small documents engineered for fuzzing rather than benchmarks:
    skewed fan-outs, deep single-child chains, empty elements, mixed
    content, text and keys containing every character the writer must
    escape (including ["]]>"] and bare whitespace), and [id] attributes
    that collide, go missing, and mix numeric with string forms.
    Default [max_elements] is 200 — fuzz cases must stay shrinkable. *)

val exact_shape_size : fanouts:int list -> int
(** Number of elements {!exact_shape} will produce (Table 2's "size"
    column). *)
