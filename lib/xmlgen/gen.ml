type stats = {
  elements : int;
  text_nodes : int;
  height : int;
  bytes : int;
}

(* Attribute padding so that an element's serialized size averages
   [avg_bytes]: "<nX id='NNNNNN' pad='...'></nX>" has roughly 30 bytes of
   fixed overhead. *)
let padding rng avg_bytes =
  let base = 30 in
  let n = max 0 (avg_bytes - base) in
  (* vary ±25% for realism *)
  let n = if n = 0 then 0 else max 0 (n - (n / 4) + Splitmix.int rng (max 1 (n / 2))) in
  String.init n (fun _ -> Splitmix.letter rng)

let random_id rng = string_of_int (Splitmix.int rng 1_000_000)

let element_attrs rng avg_bytes =
  let pad = padding rng avg_bytes in
  if pad = "" then [ ("id", random_id rng) ] else [ ("id", random_id rng); ("pad", pad) ]

let leaf_text rng = Printf.sprintf "v%d" (Splitmix.int rng 100_000)

let random_shape ?(seed = 42) ?(avg_bytes = 150) ?(max_elements = 100_000) ~height ~max_fanout
    sink =
  if height < 1 then invalid_arg "Gen.random_shape: height must be >= 1";
  if max_fanout < 1 then invalid_arg "Gen.random_shape: max_fanout must be >= 1";
  let rng = Splitmix.create seed in
  let elements = ref 0 in
  let text_nodes = ref 0 in
  let deepest = ref 0 in
  let rec emit level =
    incr elements;
    if level > !deepest then deepest := level;
    let name = Printf.sprintf "n%d" level in
    sink (Xmlio.Event.Start (name, element_attrs rng avg_bytes));
    if level < height && !elements < max_elements then begin
      let fanout = Splitmix.in_range rng 1 max_fanout in
      let rec children i =
        if i < fanout && !elements < max_elements then begin
          emit (level + 1);
          children (i + 1)
        end
      in
      children 0
    end
    else begin
      incr text_nodes;
      sink (Xmlio.Event.Text (leaf_text rng))
    end;
    sink (Xmlio.Event.End name)
  in
  emit 1;
  { elements = !elements; text_nodes = !text_nodes; height = !deepest; bytes = 0 }

let exact_shape ?(seed = 42) ?(avg_bytes = 150) ~fanouts sink =
  List.iter (fun f -> if f < 1 then invalid_arg "Gen.exact_shape: fan-outs must be >= 1") fanouts;
  let rng = Splitmix.create seed in
  let elements = ref 0 in
  let text_nodes = ref 0 in
  let deepest = ref 0 in
  let rec emit level fanouts =
    incr elements;
    if level > !deepest then deepest := level;
    let name = Printf.sprintf "n%d" level in
    sink (Xmlio.Event.Start (name, element_attrs rng avg_bytes));
    (match fanouts with
    | [] ->
        incr text_nodes;
        sink (Xmlio.Event.Text (leaf_text rng))
    | f :: rest ->
        for _ = 1 to f do
          emit (level + 1) rest
        done);
    sink (Xmlio.Event.End name)
  in
  emit 1 fanouts;
  { elements = !elements; text_nodes = !text_nodes; height = !deepest; bytes = 0 }

let to_string gen =
  let buf = Buffer.create 4096 in
  let writer = Xmlio.Writer.to_buffer buf in
  let stats = gen (Xmlio.Writer.event writer) in
  Xmlio.Writer.close writer;
  let s = Buffer.contents buf in
  (s, { stats with bytes = String.length s })

let to_device dev gen =
  let bw = Extmem.Block_writer.create dev in
  let writer = Xmlio.Writer.to_block_writer bw in
  let stats = gen (Xmlio.Writer.event writer) in
  Xmlio.Writer.close writer;
  let extent = Extmem.Block_writer.close bw in
  Extmem.Device.set_byte_length dev extent.Extmem.Extent.bytes;
  { stats with bytes = extent.Extmem.Extent.bytes }

let adversarial ?(seed = 42) ?(avg_bytes = 100) ~k ~n_elements sink =
  if k < 1 then invalid_arg "Gen.adversarial: k must be >= 1";
  if n_elements < 1 then invalid_arg "Gen.adversarial: n_elements must be >= 1";
  let rng = Splitmix.create seed in
  let elements = ref 0 in
  let deepest = ref 0 in
  let emit_leaf level =
    incr elements;
    if level > !deepest then deepest := level;
    sink (Xmlio.Event.Start ("leaf", element_attrs rng avg_bytes));
    sink (Xmlio.Event.End "leaf")
  in
  (* spine of k-ary stars: each spine node emits k-1 leaves and one spine
     child, until the budget is exhausted *)
  let rec spine level =
    incr elements;
    if level > !deepest then deepest := level;
    sink (Xmlio.Event.Start ("spine", element_attrs rng avg_bytes));
    let rec children i =
      if i < k && !elements < n_elements then begin
        if i = k - 1 && !elements + 1 < n_elements then spine (level + 1)
        else emit_leaf (level + 1);
        children (i + 1)
      end
    in
    children 0;
    sink (Xmlio.Event.End "spine")
  in
  spine 1;
  { elements = !elements; text_nodes = 0; height = !deepest; bytes = 0 }

(* Fuzz-oriented generator: small documents engineered to hit the sorter's
   awkward paths rather than the paper's size/shape regimes.  The text and
   key alphabets deliberately include every character the writer must
   escape, ids collide and go missing, and the shape mixes wide stars,
   single-child chains and empty elements. *)
let pathological ?(seed = 42) ?(max_elements = 200) sink =
  if max_elements < 1 then invalid_arg "Gen.pathological: max_elements must be >= 1";
  let rng = Splitmix.create seed in
  let elements = ref 0 in
  let text_nodes = ref 0 in
  let deepest = ref 0 in
  let names = [| "r"; "a"; "b"; "item"; "x-1"; "_n" |] in
  let nasty = [| "&"; "<"; ">"; "\""; "'"; "]]>"; " "; "\n"; "\t"; "\r"; "."; "zz" |] in
  let nasty_string max_parts =
    let n = Splitmix.int rng (max_parts + 1) in
    String.concat "" (List.init n (fun _ -> nasty.(Splitmix.int rng (Array.length nasty))))
  in
  let key rng =
    (* numeric and string keys both appear, with collisions: exercises
       Key's numeric comparison, the Null path and position tiebreaks *)
    match Splitmix.int rng 4 with
    | 0 -> string_of_int (Splitmix.int rng 8)
    | 1 -> Printf.sprintf "%d.%d" (Splitmix.int rng 4) (Splitmix.int rng 10)
    | 2 -> Printf.sprintf "k%c" (Splitmix.letter rng)
    | _ -> nasty_string 2
  in
  let attrs rng =
    (* duplicate ids are the norm, missing ids common *)
    match Splitmix.int rng 5 with
    | 0 -> []
    | 1 -> [ ("id", key rng); ("pad", nasty_string 3) ]
    | _ -> [ ("id", key rng) ]
  in
  let rec emit level =
    incr elements;
    if level > !deepest then deepest := level;
    let name = names.(Splitmix.int rng (Array.length names)) in
    sink (Xmlio.Event.Start (name, attrs rng));
    let budget () = !elements < max_elements in
    (match Splitmix.int rng 10 with
    | 0 | 1 -> () (* empty element *)
    | 2 ->
        (* deep single-child chain ending in a random subtree *)
        let len = Splitmix.in_range rng 3 8 in
        let rec chain i =
          if i < len && budget () then begin
            incr elements;
            let lvl = level + 1 + i in
            if lvl > !deepest then deepest := lvl;
            let nm = names.(Splitmix.int rng (Array.length names)) in
            sink (Xmlio.Event.Start (nm, attrs rng));
            chain (i + 1);
            sink (Xmlio.Event.End nm)
          end
          else if budget () then emit (level + 1 + i)
        in
        chain 0
    | 3 ->
        (* wide star *)
        let fanout = Splitmix.in_range rng 4 12 in
        let rec children i =
          if i < fanout && budget () then begin
            emit (level + 1);
            children (i + 1)
          end
        in
        children 0
    | _ ->
        (* mixed content: interleaved text and a skewed few children *)
        let fanout = Splitmix.int rng 4 in
        let rec children i =
          if Splitmix.int rng 3 = 0 then begin
            incr text_nodes;
            sink (Xmlio.Event.Text ("t" ^ nasty_string 3))
          end;
          if i < fanout && budget () then begin
            emit (level + 1);
            children (i + 1)
          end
        in
        children 0);
    sink (Xmlio.Event.End name)
  in
  emit 1;
  { elements = !elements; text_nodes = !text_nodes; height = !deepest; bytes = 0 }

let exact_shape_size ~fanouts =
  let total = ref 1 in
  let level_count = ref 1 in
  List.iter
    (fun f ->
      level_count := !level_count * f;
      total := !total + !level_count)
    fanouts;
  !total
