(** Pull-based streaming pipelines with budgeted memory.

    TPIE-style pipelining ("External Memory Pipelining Made Easy With
    TPIE", Arge et al.): phases that would otherwise materialise their
    output on disk and re-read it are fused into one pass by composing
    pull streams.  A pipeline is built from three kinds of stages:

    - a {e source} produces records (or any values) on demand;
    - a {e transform} rewrites a pull stream into another pull stream;
    - a {e sink} consumes records and owns the final flush.

    Every stage declares the number of internal-memory blocks it needs
    (its stream buffers); {!open_source} and {!run} reserve the pipeline's
    total from the shared {!Extmem.Memory_budget.t} before any stage
    allocates, so exceeding [M] surfaces as
    {!Extmem.Memory_budget.Exhausted} naming the pipeline instead of
    silently inflating memory.  Stages that size their memory dynamically
    (an external sort reserving its arena, a fragment merge reserving its
    fan-in) declare [mem = 0] and reserve internally at open time under
    their own name — the protocol is that {e every} block-sized buffer is
    reserved by somebody before it is allocated.

    Opening is deferred: building a pipeline allocates nothing; the stage
    [open] functions run — outermost source first — when the pipeline is
    opened.  Closing is exception-safe: {!run} closes the sink even when a
    stage raises mid-stream, so a failing pipeline cannot leave a torn,
    unflushed final block behind (the original exception is re-raised; a
    secondary failure inside the flush is suppressed in that case). *)

type 'a pull = unit -> 'a option
(** A pull stream: [None] is end of stream and must be sticky. *)

type 'a source
type ('a, 'b) transform
type 'a sink

type 'a opened = {
  pull : 'a pull;
  close : unit -> unit;  (** idempotent; releases the stages' reservation *)
}

val source : ?mem:int -> who:string -> (unit -> 'a pull * (unit -> unit)) -> 'a source
(** [source ~mem ~who open_] is a stage producing a pull stream.  [open_]
    runs at pipeline-open time, after [mem] blocks (default 0) have been
    reserved, and returns the stream plus its closer. *)

val of_pull : ?mem:int -> who:string -> 'a pull -> 'a source
(** An already-open stream as a source (closer is a no-op). *)

val of_list : who:string -> 'a list -> 'a source

val of_run : ?who:string -> Extmem.Run_store.t -> Extmem.Run_store.id -> string source
(** Streaming read of a stored run ({!Extmem.Run_store.read_run});
    declares the reader's one buffer block. *)

val transform : ?mem:int -> who:string -> ('a pull -> 'b pull) -> ('a, 'b) transform
(** A stage rewriting the upstream pull (state lives in the closure). *)

val map : who:string -> ('a -> 'b) -> ('a, 'b) transform

val via : 'a source -> ('a, 'b) transform -> 'b source
(** Compose: memory needs add, stage names concatenate. *)

val sink : ?mem:int -> who:string -> (unit -> ('a -> unit) * (unit -> unit)) -> 'a sink
(** [sink ~mem ~who open_] consumes records.  [open_] returns the push
    function and the closer; the closer must flush (it is called on both
    success and failure paths). *)

val fn_sink : who:string -> ('a -> unit) -> 'a sink
(** A memoryless sink around a plain function. *)

val mem_need : 'a source -> int
(** Total blocks the source-side stages declare. *)

val sink_mem : 'a sink -> int

val describe : 'a source -> string
(** Stage names, source first, joined with [" -> "]; used as the [who] of
    the pipeline's budget reservation. *)

val sink_who : 'a sink -> string

val open_source :
  ?spans:Obs.Spans.t -> budget:Extmem.Memory_budget.t -> 'a source -> 'a opened
(** Reserve {!mem_need} blocks under {!describe}, then run the stage
    opens (under an ["open:<describe>"] span when [spans] is given).  The
    returned [close] runs the stage closers and releases the reservation;
    it is idempotent.  If an open raises, the reservation is released.

    @raise Extmem.Memory_budget.Exhausted naming the pipeline. *)

val drain : 'a pull -> ('a -> unit) -> unit
(** Pump a stream to exhaustion. *)

val run_opened :
  ?spans:Obs.Spans.t -> budget:Extmem.Memory_budget.t -> 'a opened -> 'a sink -> unit
(** Reserve the sink's blocks, open it, pump the stream into it, close
    everything.  The sink is closed (flushed) even when the stream or the
    push raises — the original exception is re-raised and a secondary
    exception from the flush is suppressed.  The opened source is closed
    in all cases. *)

val run : ?spans:Obs.Spans.t -> budget:Extmem.Memory_budget.t -> 'a source -> 'a sink -> unit
(** [open_source] followed by {!run_opened}. *)
