type 'a pull = unit -> 'a option

type 'a source = {
  s_desc : string list;  (* stage names, source first *)
  s_mem : int;
  s_open : unit -> 'a pull * (unit -> unit);
}

type ('a, 'b) transform = {
  t_who : string;
  t_mem : int;
  t_fn : 'a pull -> 'b pull;
}

type 'a sink = {
  k_who : string;
  k_mem : int;
  k_open : unit -> ('a -> unit) * (unit -> unit);
}

type 'a opened = { pull : 'a pull; close : unit -> unit }

let source ?(mem = 0) ~who open_ = { s_desc = [ who ]; s_mem = mem; s_open = open_ }

let of_pull ?(mem = 0) ~who pull = source ~mem ~who (fun () -> (pull, ignore))

let of_list ~who items =
  source ~who (fun () ->
      let rest = ref items in
      let pull () =
        match !rest with
        | [] -> None
        | x :: tl ->
            rest := tl;
            Some x
      in
      (pull, ignore))

let of_run ?(who = "run reader") store id =
  source ~mem:1 ~who (fun () -> (Extmem.Run_store.read_run store id, ignore))

let transform ?(mem = 0) ~who fn = { t_who = who; t_mem = mem; t_fn = fn }

let map ~who f =
  transform ~who (fun pull () -> match pull () with None -> None | Some x -> Some (f x))

let via src tr =
  {
    s_desc = src.s_desc @ [ tr.t_who ];
    s_mem = src.s_mem + tr.t_mem;
    s_open =
      (fun () ->
        let pull, close = src.s_open () in
        (tr.t_fn pull, close));
  }

let sink ?(mem = 0) ~who open_ = { k_who = who; k_mem = mem; k_open = open_ }

let fn_sink ~who push = sink ~who (fun () -> (push, ignore))

let mem_need src = src.s_mem
let sink_mem snk = snk.k_mem
let describe src = String.concat " -> " src.s_desc
let sink_who snk = snk.k_who

let in_span spans name f =
  match spans with None -> f () | Some sp -> Obs.Spans.with_span sp name f

let open_source ?spans ~budget src =
  let who = describe src in
  Extmem.Memory_budget.reserve budget ~who src.s_mem;
  let pull, close_stages =
    try in_span spans ("open:" ^ who) src.s_open
    with e ->
      Extmem.Memory_budget.release budget ~who src.s_mem;
      raise e
  in
  let closed = ref false in
  let close () =
    if not !closed then begin
      closed := true;
      Fun.protect
        ~finally:(fun () -> Extmem.Memory_budget.release budget ~who src.s_mem)
        close_stages
    end
  in
  { pull; close }

let drain pull push =
  let rec loop () =
    match pull () with
    | None -> ()
    | Some x ->
        push x;
        loop ()
  in
  loop ()

let run_opened ?spans ~budget opened snk =
  Fun.protect ~finally:opened.close @@ fun () ->
  Extmem.Memory_budget.reserve budget ~who:snk.k_who snk.k_mem;
  let release () = Extmem.Memory_budget.release budget ~who:snk.k_who snk.k_mem in
  let push, close_snk =
    try snk.k_open ()
    with e ->
      release ();
      raise e
  in
  match in_span spans ("drain:" ^ snk.k_who) (fun () -> drain opened.pull push) with
  | () -> Fun.protect ~finally:release close_snk
  | exception e ->
      (* Flush what the sink buffered so a failing pipeline never leaves a
         torn final block; the original exception wins over flush errors. *)
      (try close_snk () with _ -> ());
      release ();
      raise e

let run ?spans ~budget src snk = run_opened ?spans ~budget (open_source ?spans ~budget src) snk
