(** XML escaping and entity decoding. *)

val escape_text : string -> string
(** Escape ampersand and angle brackets for use as character data.
    Carriage returns become [&#13;] so they survive the parser's
    end-of-line normalization. *)

val escape_attr : string -> string
(** Escape ampersand, angle brackets and both quote characters for use
    inside a double-quoted attribute value.  Whitespace other than the
    space character becomes a character reference ([&#9;], [&#10;],
    [&#13;]) so it survives attribute-value normalization. *)

exception Bad_entity of string
(** Raised by {!decode_entity} on an unknown or malformed entity. *)

val decode_entity : string -> string
(** [decode_entity name] resolves an entity reference body (the text
    between [&] and [;]): the five predefined entities, decimal
    [#NNN] and hexadecimal [#xNNN] character references (ASCII and
    UTF-8-encoded code points). *)
