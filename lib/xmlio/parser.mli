(** Streaming XML pull parser.

    A hand-written, event-based parser in the spirit of SAX, which the
    paper uses to drive the sorting-phase scan (Figure 4, line 2).  It
    reads characters from a pluggable source — a string or a
    {!Extmem.Block_reader.t}, so parsing a disk-resident document costs
    exactly [ceil(n/B)] block reads — and produces {!Event.t}s on demand.

    Supported syntax: elements with attributes (single- or double-quoted),
    character data with the predefined and numeric entity references,
    CDATA sections, comments, processing instructions, an XML declaration
    and a DOCTYPE with internal subset (both skipped).  Namespaces are not
    interpreted (colons are ordinary name characters), which matches the
    paper's data model.

    Well-formedness is enforced: mismatched or unclosed tags, text outside
    the root element, multiple roots and malformed markup all raise
    {!Error} with a line/column position. *)

type t

exception Error of { line : int; col : int; msg : string }

val of_string : ?dict:Dict.t -> ?keep_whitespace:bool -> string -> t
(** Parse from an in-memory string (no I/O counted).  When
    [keep_whitespace] is false (default), character data consisting only
    of whitespace is dropped — the usual treatment for data-centric XML,
    and what the paper's generators produce.  With [?dict], tag and
    attribute names are interned as they are read: events carry the
    canonical shared strings plus their dict ids, and known names are
    resolved straight out of the parser's scratch buffer without
    allocating (§3.2's name dictionary pushed down into the scan). *)

val of_reader : ?dict:Dict.t -> ?keep_whitespace:bool -> Extmem.Block_reader.t -> t
(** Parse from a device-backed stream; every block crossed is counted by
    the reader's device. *)

val of_fn : ?dict:Dict.t -> ?keep_whitespace:bool -> (unit -> char option) -> t
(** Parse from an arbitrary character source. *)

val next : t -> Event.t option
(** The next event, or [None] once the root element has been closed and
    only trailing misc remains.  @raise Error on malformed input. *)

val next_packed : t -> Event.packed option
(** Like {!next}, but fills and returns the parser's reusable
    {!Event.packed} scratch instead of allocating an event: the returned
    record is valid only until the next call on the parser.  Attribute
    values and text are still fresh strings; names are shared.  May be
    freely interleaved with {!next}/{!peek}. *)

val peek : t -> Event.t option
(** The next event without consuming it. *)

val depth : t -> int
(** Number of currently open elements. *)

val line : t -> int
val col : t -> int

val doctype_subset : t -> string option
(** The internal subset of the document's DOCTYPE (the text between the
    brackets), once the declaration has been consumed — feed it to
    {!Dtd.parse} to recover the DTD.  [None] when there is no DOCTYPE or
    it has no internal subset. *)

val to_list : t -> Event.t list
(** Drain the parser.  @raise Error on malformed input. *)
