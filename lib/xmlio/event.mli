(** SAX-style XML events.

    The streaming interfaces of this library — parser, writer, sorter —
    exchange documents as sequences of these events, the "units of XML
    data" of the paper's pseudo-code (Figure 4, line 3). *)

type attr = string * string
(** Attribute name and (unescaped) value.  Order is preserved. *)

type t =
  | Start of string * attr list  (** start tag: element name, attributes *)
  | End of string                (** end tag: element name *)
  | Text of string               (** character data (unescaped) *)

val start_name : t -> string option
(** The element name when the event is a [Start]. *)

val attr : string -> t -> string option
(** [attr k e] is the value of attribute [k] when [e] is a [Start] that
    carries it. *)

val equal : t -> t -> bool
(** Structural equality on the character data (names, attributes in order,
    text).  Implemented by explicit string comparison, not polymorphic [=],
    so it stays correct when events mix interned and fresh strings. *)

(** {1 Packed events}

    A reusable scratch record that streaming producers fill in place: the
    hot scan loop reads one event at a time without allocating an
    [Event.t], name strings (producers with a {!Dict.t} share the interned
    canonical copy) or attribute assoc lists.  The record and its arrays
    are only valid until the producer's next event — consumers that need to
    retain one call {!of_packed}. *)

type pkind =
  | Pstart
  | Pend
  | Ptext

type packed = {
  mutable pkind : pkind;
  mutable pname : string;  (** element name ([Pstart]/[Pend]) *)
  mutable pname_id : int;  (** dict id of [pname], [-1] when not interned *)
  mutable pnattrs : int;  (** live prefix length of the attribute arrays *)
  mutable pattr_names : string array;
  mutable pattr_ids : int array;  (** dict ids of names, [-1] when not interned *)
  mutable pattr_values : string array;
  mutable ptext : string;  (** character data ([Ptext]) *)
}

val packed_create : unit -> packed

val packed_grow_attrs : packed -> unit
(** Double the attribute capacity, preserving the live prefix. *)

val packed_attr : packed -> string -> string option
(** Attribute lookup on a packed [Pstart]. *)

val of_packed : packed -> t
(** Materialize an owned [Event.t] (allocates the attr list). *)

val pack_into : packed -> t -> unit
(** Fill the scratch from an owned event (ids are set to [-1]). *)

val pp : Format.formatter -> t -> unit

val to_debug_string : t -> string
