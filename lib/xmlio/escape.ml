exception Bad_entity of string

(* Whitespace is escaped as character references wherever a literal
   occurrence would not survive a re-parse: CR anywhere (end-of-line
   handling folds it to LF), and tab/LF inside attribute values
   (attribute-value normalization folds them to spaces).  This is what
   makes [parse (write doc)] the identity on every string. *)
let escape generic s =
  (* fast path: nothing to escape *)
  let needs c =
    match c with
    | '&' | '<' | '>' | '\r' -> true
    | '"' | '\'' | '\t' | '\n' -> generic
    | _ -> false
  in
  if not (String.exists needs s) then s
  else begin
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '&' -> Buffer.add_string b "&amp;"
        | '<' -> Buffer.add_string b "&lt;"
        | '>' -> Buffer.add_string b "&gt;"
        | '\r' -> Buffer.add_string b "&#13;"
        | '"' when generic -> Buffer.add_string b "&quot;"
        | '\'' when generic -> Buffer.add_string b "&apos;"
        | '\t' when generic -> Buffer.add_string b "&#9;"
        | '\n' when generic -> Buffer.add_string b "&#10;"
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b
  end

let escape_text = escape false

let escape_attr = escape true

(* Encode a Unicode code point as UTF-8. *)
let utf8_of_code_point cp =
  let b = Buffer.create 4 in
  if cp < 0 || cp > 0x10FFFF then raise (Bad_entity (Printf.sprintf "#%d" cp));
  if cp < 0x80 then Buffer.add_char b (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
  end;
  Buffer.contents b

let decode_entity name =
  match name with
  | "amp" -> "&"
  | "lt" -> "<"
  | "gt" -> ">"
  | "quot" -> "\""
  | "apos" -> "'"
  | "" -> raise (Bad_entity "")
  | _ when name.[0] = '#' -> (
      let digits = String.sub name 1 (String.length name - 1) in
      let cp =
        try
          if String.length digits > 1 && (digits.[0] = 'x' || digits.[0] = 'X') then
            int_of_string ("0x" ^ String.sub digits 1 (String.length digits - 1))
          else int_of_string digits
        with Failure _ -> raise (Bad_entity name)
      in
      try utf8_of_code_point cp with Invalid_argument _ -> raise (Bad_entity name))
  | _ -> raise (Bad_entity name)
