type attr = string * string

type t =
  | Start of string * attr list
  | End of string
  | Text of string

let start_name = function
  | Start (name, _) -> Some name
  | End _ | Text _ -> None

let attr k = function
  | Start (_, attrs) -> List.assoc_opt k attrs
  | End _ | Text _ -> None

(* Structural, not polymorphic [=]: events may mix interned (physically
   shared) and freshly-built strings, and future representations may hang
   non-comparable state off an event.  Compare the character data only. *)
let equal_attrs a b =
  let rec go a b =
    match (a, b) with
    | [], [] -> true
    | (ka, va) :: a', (kb, vb) :: b' -> String.equal ka kb && String.equal va vb && go a' b'
    | _, _ -> false
  in
  go a b

let equal a b =
  match (a, b) with
  | Start (na, aa), Start (nb, ab) -> String.equal na nb && equal_attrs aa ab
  | End na, End nb -> String.equal na nb
  | Text ta, Text tb -> String.equal ta tb
  | (Start _ | End _ | Text _), _ -> false

(** Packed events: a reusable scratch record the parser fills in place, so
    the scan loop sees one event at a time without allocating an [Event.t],
    a name string (names are interned, the canonical copy is shared) or an
    attribute assoc list per event.  Valid only until the producer's next
    event. *)

type pkind =
  | Pstart
  | Pend
  | Ptext

type packed = {
  mutable pkind : pkind;
  mutable pname : string;  (** element name ([Pstart]/[Pend]) *)
  mutable pname_id : int;  (** dict id of [pname], [-1] when not interned *)
  mutable pnattrs : int;
  mutable pattr_names : string array;
  mutable pattr_ids : int array;  (** dict ids of names, [-1] when not interned *)
  mutable pattr_values : string array;
  mutable ptext : string;  (** character data ([Ptext]) *)
}

let packed_create () =
  {
    pkind = Ptext;
    pname = "";
    pname_id = -1;
    pnattrs = 0;
    pattr_names = Array.make 8 "";
    pattr_ids = Array.make 8 (-1);
    pattr_values = Array.make 8 "";
    ptext = "";
  }

let packed_grow_attrs p =
  let cap = Array.length p.pattr_names * 2 in
  let grow a fill =
    let a' = Array.make cap fill in
    Array.blit a 0 a' 0 (Array.length a);
    a'
  in
  p.pattr_names <- grow p.pattr_names "";
  p.pattr_ids <- grow p.pattr_ids (-1);
  p.pattr_values <- grow p.pattr_values ""

let packed_attr p k =
  let rec go i =
    if i >= p.pnattrs then None
    else if String.equal p.pattr_names.(i) k then Some p.pattr_values.(i)
    else go (i + 1)
  in
  match p.pkind with Pstart -> go 0 | Pend | Ptext -> None

let of_packed p =
  match p.pkind with
  | Ptext -> Text p.ptext
  | Pend -> End p.pname
  | Pstart ->
      let rec attrs i =
        if i >= p.pnattrs then [] else (p.pattr_names.(i), p.pattr_values.(i)) :: attrs (i + 1)
      in
      Start (p.pname, attrs 0)

let pack_into p = function
  | Text s ->
      p.pkind <- Ptext;
      p.ptext <- s
  | End name ->
      p.pkind <- Pend;
      p.pname <- name;
      p.pname_id <- -1
  | Start (name, attrs) ->
      p.pkind <- Pstart;
      p.pname <- name;
      p.pname_id <- -1;
      p.pnattrs <- 0;
      List.iter
        (fun (k, v) ->
          if p.pnattrs >= Array.length p.pattr_names then packed_grow_attrs p;
          p.pattr_names.(p.pnattrs) <- k;
          p.pattr_ids.(p.pnattrs) <- -1;
          p.pattr_values.(p.pnattrs) <- v;
          p.pnattrs <- p.pnattrs + 1)
        attrs

let pp ppf = function
  | Start (name, attrs) ->
      Format.fprintf ppf "Start(%s%a)" name
        (fun ppf l -> List.iter (fun (k, v) -> Format.fprintf ppf " %s=%S" k v) l)
        attrs
  | End name -> Format.fprintf ppf "End(%s)" name
  | Text s -> Format.fprintf ppf "Text(%S)" s

let to_debug_string e = Format.asprintf "%a" pp e
