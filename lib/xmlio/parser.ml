exception Error of { line : int; col : int; msg : string }

type t = {
  source : unit -> char option;
  mutable ahead : char option option; (* one-char lookahead; None = empty *)
  mutable line : int;
  mutable col : int;
  mutable stack : string list;        (* open elements, innermost first *)
  mutable pending : Event.t list;     (* queued events (empty-element tags) *)
  mutable peeked : Event.t option option;
  mutable root_seen : bool;
  mutable finished : bool;
  mutable doctype_subset : string option;
  keep_ws : bool;
  buf : Buffer.t;
  buf2 : Buffer.t;
}

let fail p fmt =
  Printf.ksprintf (fun msg -> raise (Error { line = p.line; col = p.col; msg })) fmt

(* XML 1.0 §2.11 end-of-line handling: a literal CRLF pair or lone CR in
   the input is passed to the application as a single LF.  This runs
   below entity expansion, so a [&#13;] character reference still yields
   a literal CR. *)
let normalize_newlines source =
  let after_cr = ref false in
  let rec next () =
    match source () with
    | Some '\n' when !after_cr ->
        after_cr := false;
        next ()
    | Some '\r' ->
        after_cr := true;
        Some '\n'
    | c ->
        after_cr := false;
        c
  in
  next

let of_fn ?(keep_whitespace = false) source =
  let source = normalize_newlines source in
  {
    source;
    ahead = None;
    line = 1;
    col = 1;
    stack = [];
    pending = [];
    peeked = None;
    root_seen = false;
    finished = false;
    doctype_subset = None;
    keep_ws = keep_whitespace;
    buf = Buffer.create 256;
    buf2 = Buffer.create 64;
  }

let of_string ?keep_whitespace s =
  let pos = ref 0 in
  let read () =
    if !pos >= String.length s then None
    else begin
      let c = s.[!pos] in
      incr pos;
      Some c
    end
  in
  of_fn ?keep_whitespace read

let of_reader ?keep_whitespace r = of_fn ?keep_whitespace (fun () -> Extmem.Block_reader.read_char r)

let line p = p.line

let col p = p.col

let depth p = List.length p.stack

(* ---- character level ---- *)

let peek_char p =
  match p.ahead with
  | Some c -> c
  | None ->
      let c = p.source () in
      p.ahead <- Some c;
      c

let read_char p =
  let c = peek_char p in
  p.ahead <- None;
  (match c with
  | Some '\n' ->
      p.line <- p.line + 1;
      p.col <- 1
  | Some _ -> p.col <- p.col + 1
  | None -> ());
  c

let expect_char p want =
  match read_char p with
  | Some c when c = want -> ()
  | Some c -> fail p "expected %C, found %C" want c
  | None -> fail p "expected %C, found end of input" want

let expect_string p s = String.iter (expect_char p) s

let is_ws = function
  | ' ' | '\t' | '\n' | '\r' -> true
  | _ -> false

let skip_ws p =
  let rec go () =
    match peek_char p with
    | Some c when is_ws c ->
        ignore (read_char p);
        go ()
    | Some _ | None -> ()
  in
  go ()

let is_name_start = function
  | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true
  | c -> Char.code c >= 0x80

let is_name_char c =
  is_name_start c
  ||
  match c with
  | '0' .. '9' | '-' | '.' -> true
  | _ -> false

let read_name p =
  Buffer.clear p.buf2;
  (match read_char p with
  | Some c when is_name_start c -> Buffer.add_char p.buf2 c
  | Some c -> fail p "invalid name start character %C" c
  | None -> fail p "name expected, found end of input");
  let rec go () =
    match peek_char p with
    | Some c when is_name_char c ->
        ignore (read_char p);
        Buffer.add_char p.buf2 c;
        go ()
    | Some _ | None -> ()
  in
  go ();
  Buffer.contents p.buf2

(* entity reference after the '&' has been consumed *)
let read_entity p =
  Buffer.clear p.buf2;
  let rec go n =
    if n > 12 then fail p "entity reference too long";
    match read_char p with
    | Some ';' -> ()
    | Some c ->
        Buffer.add_char p.buf2 c;
        go (n + 1)
    | None -> fail p "unterminated entity reference"
  in
  go 0;
  let name = Buffer.contents p.buf2 in
  try Escape.decode_entity name with Escape.Bad_entity _ -> fail p "unknown entity &%s;" name

(* ---- markup constructs ---- *)

let read_comment p =
  (* after "<!--" *)
  let rec go dashes =
    match read_char p with
    | None -> fail p "unterminated comment"
    | Some '-' -> go (dashes + 1)
    | Some '>' when dashes >= 2 -> ()
    | Some _ -> go 0
  in
  go 0

let read_pi p =
  (* after "<?" *)
  let rec go saw_q =
    match read_char p with
    | None -> fail p "unterminated processing instruction"
    | Some '?' -> go true
    | Some '>' when saw_q -> ()
    | Some _ -> go false
  in
  go false

let read_doctype p =
  (* after "<!DOCTYPE"; the internal subset (between brackets) is captured
     so a DTD can be recovered with [doctype_subset] *)
  let subset = Buffer.create 64 in
  let rec go bracket_depth =
    match read_char p with
    | None -> fail p "unterminated DOCTYPE"
    | Some '[' ->
        if bracket_depth > 0 then Buffer.add_char subset '[';
        go (bracket_depth + 1)
    | Some ']' ->
        if bracket_depth > 1 then Buffer.add_char subset ']';
        go (bracket_depth - 1)
    | Some '>' when bracket_depth = 0 -> ()
    | Some c ->
        if bracket_depth > 0 then Buffer.add_char subset c;
        go bracket_depth
  in
  go 0;
  if Buffer.length subset > 0 then p.doctype_subset <- Some (Buffer.contents subset)

let read_cdata p =
  (* after "<![CDATA[", contents appended to p.buf *)
  let rec go brackets =
    match read_char p with
    | None -> fail p "unterminated CDATA section"
    | Some ']' -> go (brackets + 1)
    | Some '>' when brackets >= 2 ->
        (* the two brackets were the terminator; drop any extras beyond 2 *)
        for _ = 1 to brackets - 2 do
          Buffer.add_char p.buf ']'
        done
    | Some c ->
        for _ = 1 to brackets do
          Buffer.add_char p.buf ']'
        done;
        Buffer.add_char p.buf c;
        go 0
  in
  go 0

let read_attr_value p =
  let quote =
    match read_char p with
    | Some (('"' | '\'') as q) -> q
    | Some c -> fail p "attribute value must be quoted, found %C" c
    | None -> fail p "attribute value expected, found end of input"
  in
  let b = Buffer.create 16 in
  let rec go () =
    match read_char p with
    | None -> fail p "unterminated attribute value"
    | Some c when c = quote -> ()
    | Some '<' -> fail p "'<' not allowed in attribute value"
    | Some '&' ->
        Buffer.add_string b (read_entity p);
        go ()
    | Some ('\t' | '\n') ->
        (* attribute-value normalization (§3.3.3): literal whitespace
           becomes a space; only character references survive verbatim *)
        Buffer.add_char b ' ';
        go ()
    | Some c ->
        Buffer.add_char b c;
        go ()
  in
  go ();
  Buffer.contents b

let read_start_tag p =
  (* after '<', name start pending *)
  let name = read_name p in
  let rec attrs acc =
    skip_ws p;
    match peek_char p with
    | Some '>' ->
        ignore (read_char p);
        (List.rev acc, false)
    | Some '/' ->
        ignore (read_char p);
        expect_char p '>';
        (List.rev acc, true)
    | Some c when is_name_start c ->
        let k = read_name p in
        skip_ws p;
        expect_char p '=';
        skip_ws p;
        let v = read_attr_value p in
        if List.mem_assoc k acc then fail p "duplicate attribute %s" k;
        attrs ((k, v) :: acc)
    | Some c -> fail p "unexpected %C in start tag" c
    | None -> fail p "unterminated start tag"
  in
  let attrs, empty = attrs [] in
  (name, attrs, empty)

let read_end_tag p =
  (* after "</" *)
  let name = read_name p in
  skip_ws p;
  expect_char p '>';
  name

(* ---- event level ---- *)

let push_element p name = p.stack <- name :: p.stack

let pop_element p name =
  match p.stack with
  | top :: rest when top = name ->
      p.stack <- rest;
      if p.stack = [] then p.finished <- true
  | top :: _ -> fail p "mismatched end tag </%s>, expected </%s>" name top
  | [] -> fail p "end tag </%s> without open element" name

let all_ws s = String.for_all is_ws s

(* Read character data (text and CDATA runs) until the next markup that
   yields an event.  Returns the possibly-empty accumulated text. *)
let rec produce p =
  match p.pending with
  | e :: rest ->
      p.pending <- rest;
      Some e
  | [] ->
      if p.stack = [] then produce_misc p
      else produce_content p

and produce_misc p =
  (* outside the root element: only whitespace, comments, PIs, DOCTYPE *)
  skip_ws p;
  match peek_char p with
  | None ->
      if not p.root_seen then fail p "document has no root element";
      None
  | Some '<' -> (
      ignore (read_char p);
      match peek_char p with
      | Some '!' -> (
          ignore (read_char p);
          match peek_char p with
          | Some '-' ->
              expect_string p "--";
              read_comment p;
              produce_misc p
          | Some 'D' ->
              expect_string p "DOCTYPE";
              if p.root_seen then fail p "DOCTYPE after root element";
              read_doctype p;
              produce_misc p
          | Some c -> fail p "unexpected markup <!%C outside root" c
          | None -> fail p "truncated markup")
      | Some '?' ->
          ignore (read_char p);
          read_pi p;
          produce_misc p
      | Some '/' -> fail p "end tag outside any element"
      | Some c when is_name_start c ->
          if p.finished then fail p "multiple root elements"
          else begin
            p.root_seen <- true;
            start_element p
          end
      | Some c -> fail p "unexpected %C after '<'" c
      | None -> fail p "truncated markup at end of input")
  | Some c -> fail p "character data %C outside root element" c

and start_element p =
  let name, attrs, empty = read_start_tag p in
  if empty then begin
    p.pending <- [ Event.End name ];
    if p.stack = [] then p.finished <- true
  end
  else push_element p name;
  Some (Event.Start (name, attrs))

and produce_content p =
  Buffer.clear p.buf;
  let rec text () =
    match peek_char p with
    | None -> fail p "unclosed element <%s>" (List.hd p.stack)
    | Some '<' -> (
        ignore (read_char p);
        match peek_char p with
        | Some '!' -> (
            ignore (read_char p);
            match peek_char p with
            | Some '-' ->
                expect_string p "--";
                flush_or_comment p text
            | Some '[' ->
                expect_string p "[CDATA[";
                read_cdata p;
                text ()
            | Some c -> fail p "unexpected markup <!%C" c
            | None -> fail p "truncated markup")
        | Some '?' ->
            ignore (read_char p);
            flush_or_pi p text
        | Some '/' ->
            ignore (read_char p);
            `End_tag
        | Some c when is_name_start c -> `Start_tag
        | Some c -> fail p "unexpected %C after '<'" c
        | None -> fail p "truncated markup at end of input")
    | Some '&' ->
        ignore (read_char p);
        Buffer.add_string p.buf (read_entity p);
        text ()
    | Some c ->
        ignore (read_char p);
        Buffer.add_char p.buf c;
        text ()
  in
  let kind = text () in
  let txt = Buffer.contents p.buf in
  let emit_text = txt <> "" && (p.keep_ws || not (all_ws txt)) in
  match kind with
  | `Start_tag ->
      let e = start_element p in
      if emit_text then begin
        (match e with
        | Some e -> p.pending <- e :: p.pending
        | None -> ());
        Some (Event.Text txt)
      end
      else e
  | `End_tag ->
      let name = read_end_tag p in
      pop_element p name;
      if emit_text then begin
        p.pending <- Event.End name :: p.pending;
        Some (Event.Text txt)
      end
      else Some (Event.End name)

(* Comments and PIs inside content do not break the surrounding text run:
   skip them and continue accumulating. *)
and flush_or_comment p k =
  read_comment p;
  k ()

and flush_or_pi p k =
  read_pi p;
  k ()

let next p =
  match p.peeked with
  | Some e ->
      p.peeked <- None;
      e
  | None -> produce p

let peek p =
  match p.peeked with
  | Some e -> e
  | None ->
      let e = produce p in
      p.peeked <- Some e;
      e

let to_list p =
  let rec go acc =
    match next p with
    | Some e -> go (e :: acc)
    | None -> List.rev acc
  in
  go []

let doctype_subset p = p.doctype_subset
