exception Error of { line : int; col : int; msg : string }

type t = {
  source : unit -> char option;
  dict : Dict.t option;               (* when set, names are interned as read *)
  mutable ahead : char option option; (* one-char lookahead; None = empty *)
  mutable line : int;
  mutable col : int;
  mutable stack : string list;        (* open elements, innermost first *)
  packed : Event.packed;              (* the one event scratch, filled in place *)
  (* Deferred work for the next [produce]: at most one of these is set.
     Tag parses are deferred (not buffered) when a text run precedes the
     tag, so the scratch can carry the text out first. *)
  mutable pending_start_tag : bool;   (* '<' + name-start consumed the peek *)
  mutable pending_end_tag : bool;     (* "</" consumed *)
  mutable pending_end : string option; (* queued End (empty-element tags) *)
  mutable peeked : Event.t option option;
  mutable root_seen : bool;
  mutable finished : bool;
  mutable doctype_subset : string option;
  keep_ws : bool;
  buf : Buffer.t;                     (* text accumulator *)
  buf2 : Buffer.t;                    (* entity references *)
  abuf : Buffer.t;                    (* attribute values *)
  mutable nbuf : Bytes.t;             (* name scratch *)
  mutable nlen : int;
}

let fail p fmt =
  Printf.ksprintf (fun msg -> raise (Error { line = p.line; col = p.col; msg })) fmt

(* XML 1.0 §2.11 end-of-line handling: a literal CRLF pair or lone CR in
   the input is passed to the application as a single LF.  This runs
   below entity expansion, so a [&#13;] character reference still yields
   a literal CR. *)
let normalize_newlines source =
  let after_cr = ref false in
  let rec next () =
    match source () with
    | Some '\n' when !after_cr ->
        after_cr := false;
        next ()
    | Some '\r' ->
        after_cr := true;
        Some '\n'
    | c ->
        after_cr := false;
        c
  in
  next

let of_fn ?dict ?(keep_whitespace = false) source =
  let source = normalize_newlines source in
  {
    source;
    dict;
    ahead = None;
    line = 1;
    col = 1;
    stack = [];
    packed = Event.packed_create ();
    pending_start_tag = false;
    pending_end_tag = false;
    pending_end = None;
    peeked = None;
    root_seen = false;
    finished = false;
    doctype_subset = None;
    keep_ws = keep_whitespace;
    buf = Buffer.create 256;
    buf2 = Buffer.create 64;
    abuf = Buffer.create 64;
    nbuf = Bytes.create 64;
    nlen = 0;
  }

let of_string ?dict ?keep_whitespace s =
  let pos = ref 0 in
  let read () =
    if !pos >= String.length s then None
    else begin
      let c = s.[!pos] in
      incr pos;
      Some c
    end
  in
  of_fn ?dict ?keep_whitespace read

let of_reader ?dict ?keep_whitespace r =
  of_fn ?dict ?keep_whitespace (fun () -> Extmem.Block_reader.read_char r)

let line p = p.line

let col p = p.col

let depth p = List.length p.stack

(* ---- character level ---- *)

let peek_char p =
  match p.ahead with
  | Some c -> c
  | None ->
      let c = p.source () in
      p.ahead <- Some c;
      c

let read_char p =
  let c = peek_char p in
  p.ahead <- None;
  (match c with
  | Some '\n' ->
      p.line <- p.line + 1;
      p.col <- 1
  | Some _ -> p.col <- p.col + 1
  | None -> ());
  c

let expect_char p want =
  match read_char p with
  | Some c when c = want -> ()
  | Some c -> fail p "expected %C, found %C" want c
  | None -> fail p "expected %C, found end of input" want

let expect_string p s = String.iter (expect_char p) s

let is_ws = function
  | ' ' | '\t' | '\n' | '\r' -> true
  | _ -> false

let skip_ws p =
  let rec go () =
    match peek_char p with
    | Some c when is_ws c ->
        ignore (read_char p);
        go ()
    | Some _ | None -> ()
  in
  go ()

let is_name_start = function
  | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true
  | c -> Char.code c >= 0x80

let is_name_char c =
  is_name_start c
  ||
  match c with
  | '0' .. '9' | '-' | '.' -> true
  | _ -> false

(* Read a name into [p.nbuf]/[p.nlen] without materializing a string. *)
let read_name_raw p =
  p.nlen <- 0;
  let add c =
    if p.nlen >= Bytes.length p.nbuf then begin
      let b = Bytes.create (Bytes.length p.nbuf * 2) in
      Bytes.blit p.nbuf 0 b 0 p.nlen;
      p.nbuf <- b
    end;
    Bytes.unsafe_set p.nbuf p.nlen c;
    p.nlen <- p.nlen + 1
  in
  (match read_char p with
  | Some c when is_name_start c -> add c
  | Some c -> fail p "invalid name start character %C" c
  | None -> fail p "name expected, found end of input");
  let rec go () =
    match peek_char p with
    | Some c when is_name_char c ->
        ignore (read_char p);
        add c;
        go ()
    | Some _ | None -> ()
  in
  go ()

let name_string p = Bytes.sub_string p.nbuf 0 p.nlen

(* The name just read, as [(canonical_string, dict_id)].  With a dict the
   canonical copy is shared and nothing is allocated for known names;
   without one a fresh string is built and the id is [-1]. *)
let resolve_name p =
  match p.dict with
  | Some d ->
      let id, s = Dict.intern_bytes d p.nbuf 0 p.nlen in
      (s, id)
  | None -> (name_string p, -1)

let name_equals p s =
  String.length s = p.nlen
  &&
  let rec go i =
    i = p.nlen || (Char.equal (String.unsafe_get s i) (Bytes.unsafe_get p.nbuf i) && go (i + 1))
  in
  go 0

(* entity reference after the '&' has been consumed *)
let read_entity p =
  Buffer.clear p.buf2;
  let rec go n =
    if n > 12 then fail p "entity reference too long";
    match read_char p with
    | Some ';' -> ()
    | Some c ->
        Buffer.add_char p.buf2 c;
        go (n + 1)
    | None -> fail p "unterminated entity reference"
  in
  go 0;
  let name = Buffer.contents p.buf2 in
  try Escape.decode_entity name with Escape.Bad_entity _ -> fail p "unknown entity &%s;" name

(* ---- markup constructs ---- *)

let read_comment p =
  (* after "<!--" *)
  let rec go dashes =
    match read_char p with
    | None -> fail p "unterminated comment"
    | Some '-' -> go (dashes + 1)
    | Some '>' when dashes >= 2 -> ()
    | Some _ -> go 0
  in
  go 0

let read_pi p =
  (* after "<?" *)
  let rec go saw_q =
    match read_char p with
    | None -> fail p "unterminated processing instruction"
    | Some '?' -> go true
    | Some '>' when saw_q -> ()
    | Some _ -> go false
  in
  go false

let read_doctype p =
  (* after "<!DOCTYPE"; the internal subset (between brackets) is captured
     so a DTD can be recovered with [doctype_subset] *)
  let subset = Buffer.create 64 in
  let rec go bracket_depth =
    match read_char p with
    | None -> fail p "unterminated DOCTYPE"
    | Some '[' ->
        if bracket_depth > 0 then Buffer.add_char subset '[';
        go (bracket_depth + 1)
    | Some ']' ->
        if bracket_depth > 1 then Buffer.add_char subset ']';
        go (bracket_depth - 1)
    | Some '>' when bracket_depth = 0 -> ()
    | Some c ->
        if bracket_depth > 0 then Buffer.add_char subset c;
        go bracket_depth
  in
  go 0;
  if Buffer.length subset > 0 then p.doctype_subset <- Some (Buffer.contents subset)

let read_cdata p =
  (* after "<![CDATA[", contents appended to p.buf *)
  let rec go brackets =
    match read_char p with
    | None -> fail p "unterminated CDATA section"
    | Some ']' -> go (brackets + 1)
    | Some '>' when brackets >= 2 ->
        (* the two brackets were the terminator; drop any extras beyond 2 *)
        for _ = 1 to brackets - 2 do
          Buffer.add_char p.buf ']'
        done
    | Some c ->
        for _ = 1 to brackets do
          Buffer.add_char p.buf ']'
        done;
        Buffer.add_char p.buf c;
        go 0
  in
  go 0

let read_attr_value p =
  let quote =
    match read_char p with
    | Some (('"' | '\'') as q) -> q
    | Some c -> fail p "attribute value must be quoted, found %C" c
    | None -> fail p "attribute value expected, found end of input"
  in
  let b = p.abuf in
  Buffer.clear b;
  let rec go () =
    match read_char p with
    | None -> fail p "unterminated attribute value"
    | Some c when c = quote -> ()
    | Some '<' -> fail p "'<' not allowed in attribute value"
    | Some '&' ->
        Buffer.add_string b (read_entity p);
        go ()
    | Some ('\t' | '\n') ->
        (* attribute-value normalization (§3.3.3): literal whitespace
           becomes a space; only character references survive verbatim *)
        Buffer.add_char b ' ';
        go ()
    | Some c ->
        Buffer.add_char b c;
        go ()
  in
  go ();
  Buffer.contents b

(* after '<', name start pending: fill [p.packed] with the start tag.
   Returns [true] when the tag was an empty-element tag. *)
let read_start_tag p =
  read_name_raw p;
  let name, id = resolve_name p in
  let pk = p.packed in
  pk.Event.pkind <- Event.Pstart;
  pk.Event.pname <- name;
  pk.Event.pname_id <- id;
  pk.Event.pnattrs <- 0;
  let rec attrs () =
    skip_ws p;
    match peek_char p with
    | Some '>' ->
        ignore (read_char p);
        false
    | Some '/' ->
        ignore (read_char p);
        expect_char p '>';
        true
    | Some c when is_name_start c ->
        read_name_raw p;
        let k, kid = resolve_name p in
        skip_ws p;
        expect_char p '=';
        skip_ws p;
        let v = read_attr_value p in
        let n = pk.Event.pnattrs in
        for i = 0 to n - 1 do
          if String.equal pk.Event.pattr_names.(i) k then fail p "duplicate attribute %s" k
        done;
        if n >= Array.length pk.Event.pattr_names then Event.packed_grow_attrs pk;
        pk.Event.pattr_names.(n) <- k;
        pk.Event.pattr_ids.(n) <- kid;
        pk.Event.pattr_values.(n) <- v;
        pk.Event.pnattrs <- n + 1;
        attrs ()
    | Some c -> fail p "unexpected %C in start tag" c
    | None -> fail p "unterminated start tag"
  in
  attrs ()

(* ---- event level ---- *)

let push_element p name = p.stack <- name :: p.stack

(* after "</": read the end tag, match it against the innermost open
   element and fill [p.packed].  The name is compared against (and shared
   with) the stack top, so no string is built on the happy path. *)
let end_element p =
  read_name_raw p;
  skip_ws p;
  expect_char p '>';
  let name =
    match p.stack with
    | top :: rest when name_equals p top ->
        p.stack <- rest;
        if rest = [] then p.finished <- true;
        top
    | top :: _ -> fail p "mismatched end tag </%s>, expected </%s>" (name_string p) top
    | [] -> fail p "end tag </%s> without open element" (name_string p)
  in
  let pk = p.packed in
  pk.Event.pkind <- Event.Pend;
  pk.Event.pname <- name;
  pk.Event.pname_id <- -1

let set_text p txt =
  let pk = p.packed in
  pk.Event.pkind <- Event.Ptext;
  pk.Event.ptext <- txt

let set_end p name =
  let pk = p.packed in
  pk.Event.pkind <- Event.Pend;
  pk.Event.pname <- name;
  pk.Event.pname_id <- -1

let all_ws s = String.for_all is_ws s

(* Produce the next event into [p.packed]; false at end of input. *)
let rec produce p =
  match p.pending_end with
  | Some name ->
      p.pending_end <- None;
      set_end p name;
      true
  | None ->
      if p.pending_start_tag then begin
        p.pending_start_tag <- false;
        start_element p
      end
      else if p.pending_end_tag then begin
        p.pending_end_tag <- false;
        end_element p;
        true
      end
      else if p.stack = [] then produce_misc p
      else produce_content p

and produce_misc p =
  (* outside the root element: only whitespace, comments, PIs, DOCTYPE *)
  skip_ws p;
  match peek_char p with
  | None ->
      if not p.root_seen then fail p "document has no root element";
      false
  | Some '<' -> (
      ignore (read_char p);
      match peek_char p with
      | Some '!' -> (
          ignore (read_char p);
          match peek_char p with
          | Some '-' ->
              expect_string p "--";
              read_comment p;
              produce_misc p
          | Some 'D' ->
              expect_string p "DOCTYPE";
              if p.root_seen then fail p "DOCTYPE after root element";
              read_doctype p;
              produce_misc p
          | Some c -> fail p "unexpected markup <!%C outside root" c
          | None -> fail p "truncated markup")
      | Some '?' ->
          ignore (read_char p);
          read_pi p;
          produce_misc p
      | Some '/' -> fail p "end tag outside any element"
      | Some c when is_name_start c ->
          if p.finished then fail p "multiple root elements"
          else begin
            p.root_seen <- true;
            start_element p
          end
      | Some c -> fail p "unexpected %C after '<'" c
      | None -> fail p "truncated markup at end of input")
  | Some c -> fail p "character data %C outside root element" c

and start_element p =
  let empty = read_start_tag p in
  let name = p.packed.Event.pname in
  if empty then begin
    p.pending_end <- Some name;
    if p.stack = [] then p.finished <- true
  end
  else push_element p name;
  true

and produce_content p =
  Buffer.clear p.buf;
  let rec text () =
    match peek_char p with
    | None -> fail p "unclosed element <%s>" (List.hd p.stack)
    | Some '<' -> (
        ignore (read_char p);
        match peek_char p with
        | Some '!' -> (
            ignore (read_char p);
            match peek_char p with
            | Some '-' ->
                expect_string p "--";
                flush_or_comment p text
            | Some '[' ->
                expect_string p "[CDATA[";
                read_cdata p;
                text ()
            | Some c -> fail p "unexpected markup <!%C" c
            | None -> fail p "truncated markup")
        | Some '?' ->
            ignore (read_char p);
            flush_or_pi p text
        | Some '/' ->
            ignore (read_char p);
            `End_tag
        | Some c when is_name_start c -> `Start_tag
        | Some c -> fail p "unexpected %C after '<'" c
        | None -> fail p "truncated markup at end of input")
    | Some '&' ->
        ignore (read_char p);
        Buffer.add_string p.buf (read_entity p);
        text ()
    | Some c ->
        ignore (read_char p);
        Buffer.add_char p.buf c;
        text ()
  in
  let kind = text () in
  let txt = Buffer.contents p.buf in
  let emit_text = txt <> "" && (p.keep_ws || not (all_ws txt)) in
  (* When a text run precedes the tag, emit the text now and defer the tag
     parse to the next [produce] — the scratch holds one event at a time. *)
  match kind with
  | `Start_tag ->
      if emit_text then begin
        p.pending_start_tag <- true;
        set_text p txt;
        true
      end
      else start_element p
  | `End_tag ->
      if emit_text then begin
        p.pending_end_tag <- true;
        set_text p txt;
        true
      end
      else begin
        end_element p;
        true
      end

(* Comments and PIs inside content do not break the surrounding text run:
   skip them and continue accumulating. *)
and flush_or_comment p k =
  read_comment p;
  k ()

and flush_or_pi p k =
  read_pi p;
  k ()

let next_packed p =
  match p.peeked with
  | Some (Some e) ->
      p.peeked <- None;
      Event.pack_into p.packed e;
      Some p.packed
  | Some None ->
      p.peeked <- None;
      None
  | None -> if produce p then Some p.packed else None

let next p =
  match p.peeked with
  | Some e ->
      p.peeked <- None;
      e
  | None -> if produce p then Some (Event.of_packed p.packed) else None

let peek p =
  match p.peeked with
  | Some e -> e
  | None ->
      let e = if produce p then Some (Event.of_packed p.packed) else None in
      p.peeked <- Some e;
      e

let to_list p =
  let rec go acc =
    match next p with
    | Some e -> go (e :: acc)
    | None -> List.rev acc
  in
  go []

let doctype_subset p = p.doctype_subset
