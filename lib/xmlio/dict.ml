type t = {
  by_string : (string, int) Hashtbl.t;
  by_id : string Extmem.Vec.t;
  (* Worker domains re-encode entries whose names were all interned on
     the main thread, so their lookups are logically read-only — but the
     main thread may intern new names concurrently (hashtable resize,
     vector growth), so every operation locks. *)
  lock : Mutex.t;
}

let create () =
  { by_string = Hashtbl.create 64; by_id = Extmem.Vec.create (); lock = Mutex.create () }

let intern d s =
  Mutex.protect d.lock (fun () ->
      match Hashtbl.find_opt d.by_string s with
      | Some id -> id
      | None ->
          let id = Extmem.Vec.length d.by_id in
          Hashtbl.add d.by_string s id;
          Extmem.Vec.push d.by_id s;
          id)

let find d s = Mutex.protect d.lock (fun () -> Hashtbl.find_opt d.by_string s)

let lookup d id =
  Mutex.protect d.lock (fun () ->
      if id < 0 || id >= Extmem.Vec.length d.by_id then
        invalid_arg (Printf.sprintf "Dict.lookup: unknown id %d" id);
      Extmem.Vec.get d.by_id id)

let size d = Mutex.protect d.lock (fun () -> Extmem.Vec.length d.by_id)

let to_list d = Mutex.protect d.lock (fun () -> Extmem.Vec.to_list d.by_id)
