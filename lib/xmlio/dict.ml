type t = {
  by_id : string Extmem.Vec.t;
  (* Open-addressing probe table over ids (slot = id + 1, 0 = empty) with a
     per-id cached hash, instead of a [(string, int) Hashtbl.t]: it can be
     probed with a raw byte range, so [intern_bytes] resolves names the
     parser has in its scratch buffer without allocating a string for
     already-known names. *)
  mutable table : int array;
  mutable mask : int;
  mutable hash_of_id : int array;
  (* Worker domains resolve names that were all interned on the main
     thread, so their lookups are logically read-only — but the main
     thread may intern new names concurrently (table resize, vector
     growth), so every operation locks. *)
  lock : Mutex.t;
}

let initial_slots = 128

let create () =
  {
    by_id = Extmem.Vec.create ();
    table = Array.make initial_slots 0;
    mask = initial_slots - 1;
    hash_of_id = Array.make 64 0;
    lock = Mutex.create ();
  }

(* FNV-1a; cheap, stable, and good enough for tag/attribute names. *)
let fnv_init = 0x811c9dc5
let fnv_step h c = ((h lxor c) * 0x01000193) land max_int

let hash_string s =
  let h = ref fnv_init in
  for i = 0 to String.length s - 1 do
    h := fnv_step !h (Char.code (String.unsafe_get s i))
  done;
  !h

let hash_bytes b off len =
  let h = ref fnv_init in
  for i = off to off + len - 1 do
    h := fnv_step !h (Char.code (Bytes.unsafe_get b i))
  done;
  !h

let eq_range s b off len =
  String.length s = len
  &&
  let rec go i =
    i = len || (Char.equal (String.unsafe_get s i) (Bytes.unsafe_get b (off + i)) && go (i + 1))
  in
  go 0

let rehash d =
  let slots = (d.mask + 1) * 2 in
  let table = Array.make slots 0 in
  let mask = slots - 1 in
  for id = 0 to Extmem.Vec.length d.by_id - 1 do
    let i = ref (d.hash_of_id.(id) land mask) in
    while table.(!i) <> 0 do
      i := (!i + 1) land mask
    done;
    table.(!i) <- id + 1
  done;
  d.table <- table;
  d.mask <- mask

let add_locked d s h =
  let id = Extmem.Vec.length d.by_id in
  Extmem.Vec.push d.by_id s;
  if id >= Array.length d.hash_of_id then begin
    let a = Array.make (Array.length d.hash_of_id * 2) 0 in
    Array.blit d.hash_of_id 0 a 0 id;
    d.hash_of_id <- a
  end;
  d.hash_of_id.(id) <- h;
  if (id + 1) * 2 > d.mask + 1 then rehash d;
  let i = ref (h land d.mask) in
  while d.table.(!i) <> 0 do
    i := (!i + 1) land d.mask
  done;
  d.table.(!i) <- id + 1;
  id

let find_locked_string d s h =
  let rec probe i =
    match d.table.(i) with
    | 0 -> None
    | slot ->
        let id = slot - 1 in
        if d.hash_of_id.(id) = h && String.equal (Extmem.Vec.get d.by_id id) s then Some id
        else probe ((i + 1) land d.mask)
  in
  probe (h land d.mask)

let intern d s =
  Mutex.protect d.lock (fun () ->
      let h = hash_string s in
      match find_locked_string d s h with Some id -> id | None -> add_locked d s h)

let intern_bytes d b off len =
  Mutex.protect d.lock (fun () ->
      let h = hash_bytes b off len in
      let rec probe i =
        match d.table.(i) with
        | 0 ->
            let s = Bytes.sub_string b off len in
            (add_locked d s h, s)
        | slot ->
            let id = slot - 1 in
            let s = Extmem.Vec.get d.by_id id in
            if d.hash_of_id.(id) = h && eq_range s b off len then (id, s)
            else probe ((i + 1) land d.mask)
      in
      probe (h land d.mask))

let find d s = Mutex.protect d.lock (fun () -> find_locked_string d s (hash_string s))

let lookup d id =
  Mutex.protect d.lock (fun () ->
      if id < 0 || id >= Extmem.Vec.length d.by_id then
        invalid_arg (Printf.sprintf "Dict.lookup: unknown id %d" id);
      Extmem.Vec.get d.by_id id)

let size d = Mutex.protect d.lock (fun () -> Extmem.Vec.length d.by_id)

let to_list d = Mutex.protect d.lock (fun () -> Extmem.Vec.to_list d.by_id)
