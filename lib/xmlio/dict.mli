(** String interning dictionaries.

    §3.2 of the paper observes that XML repeats tag and attribute names
    endlessly and proposes converting each unique string to an integer
    before sorting and back during output.  A [Dict.t] assigns dense ids
    in first-occurrence order; the compact entry encoding stores ids
    (1–2 byte varints) instead of names. *)

type t

val create : unit -> t

val intern : t -> string -> int
(** The id of [s], assigning the next free id on first sight. *)

val intern_bytes : t -> bytes -> int -> int -> int * string
(** [intern_bytes d b off len] interns the byte range [b.[off..off+len)],
    returning its id and the canonical (shared) string.  Allocates only on
    first occurrence — the hot path for a parser resolving names straight
    out of its scratch buffer. *)

val find : t -> string -> int option
(** The id of [s] if already interned. *)

val lookup : t -> int -> string
(** The string behind an id.  @raise Invalid_argument on unknown ids. *)

val size : t -> int
(** Number of distinct strings interned. *)

val to_list : t -> string list
(** All interned strings in id order. *)
