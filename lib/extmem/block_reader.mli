(** Sequential reader over an extent of a device.

    Holds exactly one internal-memory block as its buffer; a block read is
    issued each time the stream crosses a block boundary, so scanning [n]
    bytes costs [ceil(n / block_size)] I/Os.  {!seek} supports the output
    phase of NEXSORT, which resumes reading a sorted run just after the
    location where a run pointer was found: seeking to a byte offset costs
    at most one block read (for the block containing the offset). *)

type t

val of_extent : ?buffer:bytes -> Device.t -> Extent.t -> t
(** Read the given extent from its start.  [buffer] supplies the block
    buffer (typically a [Frame_arena] frame, so the reader's memory is
    accounted to its owner); it must be exactly one block long.
    @raise Invalid_argument on a wrong-sized buffer. *)

val of_device : ?buffer:bytes -> Device.t -> t
(** Read a whole device: the extent covering [byte_length] bytes from
    block 0. *)

val position : t -> int
(** Current byte offset within the extent. *)

val length : t -> int
(** Total byte length of the extent. *)

val at_end : t -> bool

val read_char : t -> char option
(** Next byte, or [None] at end of stream. *)

val peek_char : t -> char option
(** Next byte without consuming it. *)

val read_bytes : t -> bytes -> int -> int -> int
(** [read_bytes r buf off len] reads up to [len] bytes; returns the number
    actually read (0 only at end of stream). *)

val read_record : t -> string option
(** Read one varint-length-framed record written by
    {!Block_writer.write_record}.  [None] at end of stream.
    @raise Codec.Corrupt on a truncated record. *)

val seek : t -> int -> unit
(** [seek r off] repositions to byte [off] of the extent.  Costs one block
    read unless [off] lands in the currently buffered block. *)
