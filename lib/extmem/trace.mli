(** I/O access-pattern traces.

    The paper's motivating argument (§1) is about access {e patterns}, not
    just counts: the naive nested-loop merge "generates element access
    patterns that do not at all correspond to the natural depth-first
    element ordering of disk-resident XML documents".  On a spinning disk
    that means seeks.  A trace records the sequence of block indices a
    device was asked for and summarises how sequential it was, so the
    claim can be quantified (benchmark [motivation]). *)

type summary = {
  accesses : int;      (** total traced I/Os *)
  sequential : int;    (** accesses to the block following the previous one *)
  repeats : int;       (** accesses to the same block again *)
  backward : int;      (** accesses strictly before the previous block *)
  mean_distance : float;
      (** mean absolute distance in blocks between consecutive accesses —
          the seek-cost proxy *)
  max_block : int;
}

type t

val attach : Device.t -> t
(** Start tracing the device by pushing an observation layer onto its
    middleware stack.  Traces compose: several can be attached to one
    device, alongside fault-injection and cost layers. *)

val detach : t -> unit
(** Stop recording and remove the observation layer from the device's
    stack ({!Device.remove_layer}), so repeated attach/detach cycles do
    not grow the stack.  Idempotent; the recorded trace stays readable. *)

val set_observer : t -> (Backend.op -> int -> unit) -> unit
(** Forward every access this trace records to an external sink as well
    (e.g. an [Obs.Tracer] track).  {!detach} silences the observer along
    with the trace — one layer, one removal. *)

val length : t -> int

val blocks : t -> int list
(** The recorded block indices, in access order. *)

val summarize : t -> summary

val sequential_fraction : summary -> float
(** [sequential / accesses] (1.0 for a perfect scan; 0 when empty). *)

val pp_summary : Format.formatter -> summary -> unit
