(** Stackable device middleware.

    A layer wraps a {!Backend.t} with extra behaviour on the block-I/O
    path — counting, tracing, fault injection, simulated cost — and
    returns a backend again, so layers compose like function composition.
    Unlike the old single-slot [set_fault]/[set_tracer] hooks, any number
    of layers can be active on one device at once; installing one never
    displaces another.

    In a stack, the outermost layer sees each I/O first.  A fault layer
    placed outside the accounting layer aborts the I/O {e before} it is
    counted (the historical semantics: failed I/Os do not count). *)

type t

val name : t -> string
(** Human-readable tag, e.g. ["stats"], ["faulty(p=0.001,seed=42)"]. *)

val make : name:string -> (Backend.t -> Backend.t) -> t
(** Build a custom layer.  The wrapper must delegate to the inner backend
    for anything it does not change. *)

val apply : t list -> Backend.t -> Backend.t
(** [apply layers backend] stacks [layers] over [backend]; the head of the
    list becomes the outermost layer. *)

val counted : Io_stats.t -> t
(** Count every read and write into the given stats.  Every {!Device.t}
    installs one of these at the bottom of its stack. *)

val observed : (Backend.op -> int -> unit) -> t
(** Call the hook before every block I/O with the operation and block
    index.  {!Trace.attach} is built on this. *)

val timed :
  clock:(unit -> int) ->
  ?hook:(Backend.op -> int -> start_ns:int -> dur_ns:int -> unit) ->
  Io_stats.Latency.t ->
  t
(** Measure each I/O with [clock] (a monotonic ns counter) and record the
    duration into the latency histograms; [hook], when given, then
    receives the operation, block index, start and duration (used to emit
    per-I/O trace events).  An I/O that raises is not recorded, matching
    {!counted}'s failed-I/Os-don't-count semantics. *)

val fault_hook : (Backend.op -> int -> bool) -> t
(** Deterministic fault injection: before each I/O the predicate decides
    whether to raise {!Backend.Fault} instead of executing it. *)

val faulty : ?seed:int -> p:float -> unit -> t
(** Seeded random fault injection: each I/O independently fails with
    probability [p], driven by a splitmix64 PRNG seeded with [seed] —
    the same seed always yields the same fault sequence.
    @raise Invalid_argument unless [0 <= p <= 1]. *)

val costed : Cost_model.t -> t
(** Charge each I/O to the given cost meter, with a seek penalty whenever
    the access does not continue where the previous access on this device
    left off.  Several devices may share one meter; each layer {e value}
    tracks its own head position (so a device rebuilding its stack keeps
    the simulated head where it was). *)
