type summary = {
  accesses : int;
  sequential : int;
  repeats : int;
  backward : int;
  mean_distance : float;
  max_block : int;
}

type t = {
  trace : int Vec.t;
  dev : Device.t;
  layer : Layer.t;
  observer : (Backend.op -> int -> unit) option ref;
  mutable active : bool;
}

let attach dev =
  let trace = Vec.create () in
  let observer = ref None in
  let layer =
    Layer.observed (fun op i ->
        Vec.push trace i;
        match !observer with Some f -> f op i | None -> ())
  in
  Device.push_layer dev layer;
  { trace; dev; layer; observer; active = true }

(* Forward every recorded access to an external sink (e.g. Obs.Tracer)
   in addition to the in-memory trace; detach stops both at once. *)
let set_observer t f = t.observer := Some f

(* Really pop the observer layer off the device stack (idempotent); a
   detached trace keeps its recorded blocks but costs the device nothing. *)
let detach t =
  if t.active then begin
    t.active <- false;
    ignore (Device.remove_layer t.dev t.layer)
  end

let length t = Vec.length t.trace

let blocks t = Vec.to_list t.trace

let summarize t =
  let n = Vec.length t.trace in
  if n = 0 then
    { accesses = 0; sequential = 0; repeats = 0; backward = 0; mean_distance = 0.; max_block = 0 }
  else begin
    let sequential = ref 0 in
    let repeats = ref 0 in
    let backward = ref 0 in
    let total_distance = ref 0 in
    let max_block = ref (Vec.get t.trace 0) in
    for i = 1 to n - 1 do
      let prev = Vec.get t.trace (i - 1) in
      let cur = Vec.get t.trace i in
      if cur > !max_block then max_block := cur;
      if cur = prev + 1 then incr sequential
      else if cur = prev then incr repeats
      else if cur < prev then incr backward;
      total_distance := !total_distance + abs (cur - prev)
    done;
    {
      accesses = n;
      sequential = !sequential;
      repeats = !repeats;
      backward = !backward;
      mean_distance = (if n > 1 then float_of_int !total_distance /. float_of_int (n - 1) else 0.);
      max_block = !max_block;
    }
  end

let sequential_fraction s =
  if s.accesses <= 1 then if s.accesses = 1 then 1.0 else 0.0
  else float_of_int s.sequential /. float_of_int (s.accesses - 1)

let pp_summary ppf s =
  Format.fprintf ppf "{accesses=%d; sequential=%.0f%%; repeats=%d; backward=%d; mean seek=%.1f blocks}"
    s.accesses
    (100. *. sequential_fraction s)
    s.repeats s.backward s.mean_distance
