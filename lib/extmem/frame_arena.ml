(* One pool of block frames for the whole session.  Every component that
   holds blocks in memory draws them from here — either as a [lease]
   (plain accounting plus recycled buffers: stack windows, stream
   buffers, sort arenas, merge fan-in) or as a [cache] (a pager-style
   mapped frame set with a replacement policy and pin counts).  All
   reservations flow through the shared [Memory_budget] under the
   owner's [who] label, so exhaustion messages and metrics name the
   component that holds each frame. *)

type policy =
  | Lru
  | Clock
  | Mru
  | Stack

let all_policies = [ Lru; Clock; Mru; Stack ]

let policy_to_string = function
  | Lru -> "lru"
  | Clock -> "clock"
  | Mru -> "mru"
  | Stack -> "stack"

let policy_of_string = function
  | "lru" -> Some Lru
  | "clock" -> Some Clock
  | "mru" -> Some Mru
  | "stack" -> Some Stack
  | _ -> None

(* Per-owner record: current/peak frame counts plus cumulative cache
   counters.  Kept for the arena's life so metrics still cover owners
   whose lease or cache has since been closed. *)
type owner = {
  o_name : string;
  mutable o_held : int;
  mutable o_peak : int;
  mutable o_hits : int;
  mutable o_misses : int;
  mutable o_evictions : int;
  mutable o_writebacks : int;
}

type owner_stats = {
  held : int;
  peak : int;
  hits : int;
  misses : int;
  evictions : int;
  writebacks : int;
}

type event = Evict | Writeback

type t = {
  budget : Memory_budget.t option;
  arena_policy : policy;
  pool : (int, bytes list ref) Hashtbl.t; (* buffer size -> free buffers *)
  table : (string, owner) Hashtbl.t;
  lock : Mutex.t; (* guards [pool] and [table]; never held across budget calls *)
  mutable observer : (who:string -> event -> int -> unit) option;
      (* caches are main-thread, so firing without the lock is safe *)
}

let create ?budget ?(default_policy = Lru) () =
  { budget; arena_policy = default_policy; pool = Hashtbl.create 4; table = Hashtbl.create 8;
    lock = Mutex.create (); observer = None }

let set_observer t f = t.observer <- Some f

let budget t = t.budget

let default_policy t = t.arena_policy

let owner_u t who =
  match Hashtbl.find_opt t.table who with
  | Some o -> o
  | None ->
      let o =
        { o_name = who; o_held = 0; o_peak = 0; o_hits = 0; o_misses = 0; o_evictions = 0;
          o_writebacks = 0 }
      in
      Hashtbl.add t.table who o;
      o

let owner t who = Mutex.protect t.lock (fun () -> owner_u t who)

let reserve t ~who n =
  (match t.budget with Some b -> Memory_budget.reserve b ~who n | None -> ());
  Mutex.protect t.lock (fun () ->
      let o = owner_u t who in
      o.o_held <- o.o_held + n;
      if o.o_held > o.o_peak then o.o_peak <- o.o_held)

let release t ~who n =
  Mutex.protect t.lock (fun () ->
      let o = owner_u t who in
      if n > o.o_held then
        invalid_arg
          (Printf.sprintf "Frame_arena: %s releasing %d frames but holds %d" who n o.o_held);
      o.o_held <- o.o_held - n);
  match t.budget with Some b -> Memory_budget.release b ~who n | None -> ()

let stats_of o =
  { held = o.o_held; peak = o.o_peak; hits = o.o_hits; misses = o.o_misses;
    evictions = o.o_evictions; writebacks = o.o_writebacks }

let owners t =
  Mutex.protect t.lock (fun () ->
      Hashtbl.fold (fun name o acc -> (name, stats_of o) :: acc) t.table [])
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let totals t =
  Mutex.protect t.lock (fun () ->
      Hashtbl.fold
        (fun _ o acc ->
          { held = acc.held + o.o_held; peak = acc.peak + o.o_peak; hits = acc.hits + o.o_hits;
            misses = acc.misses + o.o_misses; evictions = acc.evictions + o.o_evictions;
            writebacks = acc.writebacks + o.o_writebacks })
        t.table
        { held = 0; peak = 0; hits = 0; misses = 0; evictions = 0; writebacks = 0 })

(* Buffer recycling.  Frames handed out must be indistinguishable from a
   fresh [Bytes.create]: components (notably [Ext_stack.flush_block])
   write whole blocks including bytes past their logical length, so a
   recycled buffer is zero-filled before reuse. *)

let take t size =
  let recycled =
    Mutex.protect t.lock (fun () ->
        match Hashtbl.find_opt t.pool size with
        | Some ({ contents = b :: rest } as cell) ->
            cell := rest;
            Some b
        | _ -> None)
  in
  match recycled with
  | Some b ->
      Bytes.fill b 0 size '\000';
      b
  | None -> Bytes.create size

let give t b =
  let size = Bytes.length b in
  Mutex.protect t.lock (fun () ->
      match Hashtbl.find_opt t.pool size with
      | Some cell -> cell := b :: !cell
      | None -> Hashtbl.add t.pool size (ref [ b ]))

(* Sub-arenas: a fixed slab carved out of the shared budget becomes a
   private arena for one domain.  All frame traffic inside the worker
   then hits only the sub-arena's own lock and ledger; the parent pool
   records the whole slab under the carver's name until [close]. *)

let carve t ~who ~blocks =
  match t.budget with
  | None -> invalid_arg "Frame_arena.carve: arena has no budget to carve from"
  | Some b ->
      let sub = Memory_budget.carve b ~who ~blocks () in
      create ~budget:sub ~default_policy:t.arena_policy ()

let close t =
  match t.budget with
  | None -> invalid_arg "Frame_arena.close: arena has no budget"
  | Some b -> Memory_budget.uncarve b

(* {2 Leases} *)

type lease = {
  lt : t;
  l_who : string;
  mutable l_blocks : int;
  mutable l_closed : bool;
}

let lease t ~who n =
  reserve t ~who n;
  { lt = t; l_who = who; l_blocks = n; l_closed = false }

let lease_blocks l = if l.l_closed then 0 else l.l_blocks

let lease_who l = l.l_who

let grow l n =
  if l.l_closed then invalid_arg "Frame_arena.grow: lease closed";
  reserve l.lt ~who:l.l_who n;
  l.l_blocks <- l.l_blocks + n

let try_grow l n =
  if l.l_closed then false
  else
    match l.lt.budget with
    | Some b when Memory_budget.available_blocks b < n -> false
    | _ ->
        grow l n;
        true

let shrink l n =
  if l.l_closed then invalid_arg "Frame_arena.shrink: lease closed";
  if n > l.l_blocks then invalid_arg "Frame_arena.shrink: below zero";
  release l.lt ~who:l.l_who n;
  l.l_blocks <- l.l_blocks - n

let close_lease l =
  if not l.l_closed then begin
    release l.lt ~who:l.l_who l.l_blocks;
    l.l_blocks <- 0;
    l.l_closed <- true
  end

let with_lease t ~who n f =
  let l = lease t ~who n in
  Fun.protect ~finally:(fun () -> close_lease l) (fun () -> f l)

(* {2 Caches}

   The mapped-frame machinery formerly private to [Pager], generalised
   with pin counts and two more policies.  With every pin count at zero
   the victim choices reduce exactly to the original Lru/Clock code, so
   access patterns (and therefore I/O counts) are unchanged for callers
   that never pin. *)

type frame = {
  mutable block : int; (* -1 = free *)
  data : bytes;
  mutable dirty : bool;
  mutable stamp : int;       (* LRU/MRU timestamp *)
  mutable referenced : bool; (* Clock bit *)
  mutable pins : int;        (* > 0 = never evicted *)
}

type cache = {
  c_arena : t;
  c_owner : owner;
  c_who : string;
  dev : Device.t;
  c_policy : policy;
  frames : frame array;
  map : (int, int) Hashtbl.t; (* block -> frame index *)
  mutable tick : int;
  mutable hand : int; (* Clock hand *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable writebacks : int;
  mutable detached : bool;
}

let attach t ?(who = "pager") ?policy ~frames dev =
  if frames < 1 then invalid_arg "Frame_arena.attach: frames must be >= 1";
  reserve t ~who frames;
  let bs = Device.block_size dev in
  let mk _ =
    { block = -1; data = take t bs; dirty = false; stamp = 0; referenced = false; pins = 0 }
  in
  {
    c_arena = t;
    c_owner = owner t who;
    c_who = who;
    dev;
    c_policy = (match policy with Some p -> p | None -> t.arena_policy);
    frames = Array.init frames mk;
    map = Hashtbl.create (2 * frames);
    tick = 0;
    hand = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    writebacks = 0;
    detached = false;
  }

let cache_device c = c.dev

let cache_policy c = c.c_policy

let cache_frames c = Array.length c.frames

let hits c = c.hits

let misses c = c.misses

let evictions c = c.evictions

let writebacks c = c.writebacks

let write_back c f =
  if f.dirty then begin
    Device.write_block c.dev f.block f.data;
    f.dirty <- false;
    c.writebacks <- c.writebacks + 1;
    c.c_owner.o_writebacks <- c.c_owner.o_writebacks + 1;
    match c.c_arena.observer with
    | Some obs -> obs ~who:c.c_who Writeback f.block
    | None -> ()
  end

(* Victim scans.  Free frames always win (the last free frame found, as
   in the original pager); among occupied frames Lru takes the strictly
   lowest stamp, Mru the strictly highest, Stack the lowest block index
   (the paper's no-prefetch rule: the block deepest below the stack top
   goes first).  Pinned frames are invisible; -1 means everything is
   pinned. *)

let victim_scan c better =
  let fs = c.frames in
  let best = ref (-1) in
  for i = 0 to Array.length fs - 1 do
    let f = fs.(i) in
    if f.pins = 0 then begin
      if f.block = -1 then best := i
      else if !best = -1 then best := i
      else begin
        let b = fs.(!best) in
        if b.block <> -1 && better f b then best := i
      end
    end
  done;
  !best

let victim_lru c = victim_scan c (fun f b -> f.stamp < b.stamp)

let victim_mru c = victim_scan c (fun f b -> f.stamp > b.stamp)

let victim_stack c = victim_scan c (fun f b -> f.block < b.block)

let victim_clock c =
  let n = Array.length c.frames in
  if not (Array.exists (fun f -> f.pins = 0) c.frames) then -1
  else
    let rec spin guard =
      let f = c.frames.(c.hand) in
      let i = c.hand in
      c.hand <- (c.hand + 1) mod n;
      if f.pins > 0 then spin (guard + 1)
      else if f.block = -1 then i
      else if f.referenced && guard < 2 * n then begin
        f.referenced <- false;
        spin (guard + 1)
      end
      else i
    in
    spin 0

let victim c =
  let i =
    match c.c_policy with
    | Lru -> victim_lru c
    | Clock -> victim_clock c
    | Mru -> victim_mru c
    | Stack -> victim_stack c
  in
  if i < 0 then
    raise
      (Memory_budget.Exhausted
         (Printf.sprintf "%s: all %d frames are pinned" c.c_who (Array.length c.frames)));
  i

let touch c f =
  c.tick <- c.tick + 1;
  f.stamp <- c.tick;
  f.referenced <- true

(* Return the frame holding [block], faulting it in if needed. *)
let frame_for c block =
  match Hashtbl.find_opt c.map block with
  | Some i ->
      let f = c.frames.(i) in
      c.hits <- c.hits + 1;
      c.c_owner.o_hits <- c.c_owner.o_hits + 1;
      touch c f;
      f
  | None ->
      c.misses <- c.misses + 1;
      c.c_owner.o_misses <- c.c_owner.o_misses + 1;
      let i = victim c in
      let f = c.frames.(i) in
      if f.block <> -1 then begin
        c.evictions <- c.evictions + 1;
        c.c_owner.o_evictions <- c.c_owner.o_evictions + 1;
        (match c.c_arena.observer with
        | Some obs -> obs ~who:c.c_who Evict f.block
        | None -> ());
        write_back c f;
        Hashtbl.remove c.map f.block
      end;
      if block < Device.block_count c.dev then Device.read_block c.dev block f.data
      else Bytes.fill f.data 0 (Bytes.length f.data) '\000';
      f.block <- block;
      f.dirty <- false;
      Hashtbl.replace c.map block i;
      touch c f;
      f

let pin c block =
  let f = frame_for c block in
  f.pins <- f.pins + 1

let unpin c block =
  match Hashtbl.find_opt c.map block with
  | Some i ->
      let f = c.frames.(i) in
      if f.pins = 0 then invalid_arg "Frame_arena.unpin: frame not pinned";
      f.pins <- f.pins - 1
  | None -> invalid_arg "Frame_arena.unpin: block not resident"

let pinned c block =
  match Hashtbl.find_opt c.map block with
  | Some i -> c.frames.(i).pins
  | None -> 0

let read_byte c off =
  let bs = Device.block_size c.dev in
  let f = frame_for c (off / bs) in
  Bytes.get f.data (off mod bs)

let write_byte c off ch =
  let bs = Device.block_size c.dev in
  let block = off / bs in
  while block >= Device.block_count c.dev do
    ignore (Device.allocate c.dev 1)
  done;
  let f = frame_for c block in
  Bytes.set f.data (off mod bs) ch;
  f.dirty <- true

let read c ~pos ~len = String.init len (fun i -> read_byte c (pos + i))

let write c ~pos s = String.iteri (fun i ch -> write_byte c (pos + i) ch) s

let read_page c block =
  if block >= Device.block_count c.dev then
    invalid_arg (Printf.sprintf "Frame_arena.read_page: block %d not allocated" block);
  let f = frame_for c block in
  Bytes.to_string f.data

let write_page c block s =
  let bs = Device.block_size c.dev in
  if String.length s > bs then invalid_arg "Frame_arena.write_page: page larger than a block";
  while block >= Device.block_count c.dev do
    ignore (Device.allocate c.dev 1)
  done;
  let f = frame_for c block in
  Bytes.fill f.data 0 bs '\000';
  Bytes.blit_string s 0 f.data 0 (String.length s);
  f.dirty <- true

let flush c = Array.iter (fun f -> if f.block <> -1 then write_back c f) c.frames

let detach c =
  if not c.detached then begin
    flush c;
    Array.iter
      (fun f ->
        f.block <- -1;
        f.pins <- 0;
        give c.c_arena f.data)
      c.frames;
    Hashtbl.reset c.map;
    release c.c_arena ~who:c.c_who (Array.length c.frames);
    c.detached <- true
  end
