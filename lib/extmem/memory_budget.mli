(** Internal-memory accounting.

    The external-memory model gives an algorithm [M] blocks of internal
    memory; TPIE enforces this with an application memory limit.  Here
    every component that holds blocks in memory (stack windows, stream
    buffers, sort arenas, merge fan-in buffers) reserves them from a
    shared budget, so exceeding [M] is a programming error that surfaces
    immediately instead of silently inflating memory.

    The budget keeps a per-[who] ledger: reservations are recorded under
    the owner's name, and both exhaustion and release errors report who
    holds what, so a leak or double-release points at its owner instead
    of failing with a bare count. *)

type t

exception Exhausted of string
(** Raised when a reservation would exceed the budget.  The message names
    the component that asked and lists the current holders. *)

val create : blocks:int -> block_size:int -> t
(** A budget of [blocks] internal-memory blocks of [block_size] bytes. *)

val block_size : t -> int

val total_blocks : t -> int

val used_blocks : t -> int

val available_blocks : t -> int

val available_bytes : t -> int

val reserve : t -> who:string -> int -> unit
(** [reserve b ~who n] takes [n] blocks, recorded in [who]'s ledger.
    @raise Exhausted naming [who] when fewer than [n] blocks remain. *)

val release : t -> who:string -> int -> unit
(** [release b ~who n] gives back [n] of [who]'s blocks.
    @raise Invalid_argument naming [who] when releasing more than [who]
    holds — a double-release (or a release under the wrong name) is
    reported with the owner, not a bare count. *)

val held : t -> string -> int
(** Blocks currently held under a given owner name (0 if unknown). *)

val holders : t -> (string * int) list
(** Every owner currently holding blocks, with the count, sorted by
    name.  The sum of the counts is {!used_blocks}. *)

val with_reserved : t -> who:string -> int -> (unit -> 'a) -> 'a
(** Reserve around a scope; always released, also on exceptions. *)
