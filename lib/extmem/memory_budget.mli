(** Internal-memory accounting.

    The external-memory model gives an algorithm [M] blocks of internal
    memory; TPIE enforces this with an application memory limit.  Here
    every component that holds blocks in memory (stack windows, stream
    buffers, sort arenas, merge fan-in buffers) reserves them from a
    shared budget, so exceeding [M] is a programming error that surfaces
    immediately instead of silently inflating memory.

    The budget keeps a per-[who] ledger: reservations are recorded under
    the owner's name, and both exhaustion and release errors report who
    holds what, so a leak or double-release points at its owner instead
    of failing with a bare count.

    Every operation is thread-safe (one internal mutex per budget), so a
    budget can be shared across domains.  For parallel phases the
    intended pattern is coarser than per-block locking: {!carve} a fixed
    slab into a per-domain {e sub-budget} up front, let the domain
    reserve and release against its private sub-budget without touching
    the shared pool, and {!uncarve} the slab back when the domain
    finishes.  The parent's ledger records each slab under the carver's
    name, so exhaustion messages stay exact across domains. *)

type t

exception Exhausted of string
(** Raised when a reservation would exceed the budget.  The message names
    the component that asked and lists the current holders. *)

val create : blocks:int -> block_size:int -> t
(** A budget of [blocks] internal-memory blocks of [block_size] bytes. *)

val block_size : t -> int

val total_blocks : t -> int

val used_blocks : t -> int

val available_blocks : t -> int

val available_bytes : t -> int

val reserve : t -> who:string -> int -> unit
(** [reserve b ~who n] takes [n] blocks, recorded in [who]'s ledger.
    @raise Exhausted naming [who] when fewer than [n] blocks remain. *)

val release : t -> who:string -> int -> unit
(** [release b ~who n] gives back [n] of [who]'s blocks.
    @raise Invalid_argument naming [who] when releasing more than [who]
    holds — a double-release (or a release under the wrong name) is
    reported with the owner, not a bare count. *)

val held : t -> string -> int
(** Blocks currently held under a given owner name (0 if unknown). *)

val holders : t -> (string * int) list
(** Every owner currently holding blocks, with the count, sorted by
    name.  The sum of the counts is {!used_blocks}. *)

val with_reserved : t -> who:string -> int -> (unit -> 'a) -> 'a
(** Reserve around a scope; always released, also on exceptions. *)

val carve : t -> ?block_size:int -> who:string -> blocks:int -> unit -> t
(** [carve b ~who ~blocks ()] reserves a [blocks]-block slab under [who]
    and returns it as a fresh sub-budget with its own lock and ledger.
    The slab counts as used in [b] for as long as the sub-budget lives, so
    concurrent holders of the parent can never over-commit the pool.
    [block_size] gives the sub-budget its own granularity (a multi-tenant
    engine budget parcels blocks out to jobs with different [B]s); the
    parent is charged [blocks * block_size] bytes rounded {e up} to whole
    parent blocks, so a sub-budget can never out-commit its slab.
    @raise Exhausted when the parent cannot cover the slab. *)

val uncarve : ?force:bool -> t -> unit
(** Return a carved sub-budget's slab to its parent.  The sub-budget must
    be empty — a block still reserved in it is a leak, reported with its
    owner — and must not be used afterwards.  [~force:true] releases the
    slab even when blocks are still held, for teardown paths that count
    the leak themselves ({!used_blocks} before forcing) instead of
    masking the original failure with a raise.
    @raise Invalid_argument on a non-carved budget, or (unforced) on a
    non-empty one. *)
