type t = {
  dev : Device.t;
  extent : Extent.t;
  buf : bytes;
  mutable cur_block : int; (* index within extent of buffered block; -1 = none *)
  mutable pos : int;       (* byte offset within extent *)
}

let of_extent ?buffer dev extent =
  let bs = Device.block_size dev in
  let buf =
    match buffer with
    | None -> Bytes.create bs
    | Some b ->
        if Bytes.length b <> bs then
          invalid_arg "Block_reader.of_extent: buffer length must equal the block size";
        b
  in
  { dev; extent; buf; cur_block = -1; pos = 0 }

let of_device ?buffer dev =
  let bs = Device.block_size dev in
  let bytes = Device.byte_length dev in
  let blocks = (bytes + bs - 1) / bs in
  of_extent ?buffer dev { Extent.first_block = 0; blocks; bytes }

let position r = r.pos

let length r = r.extent.Extent.bytes

let at_end r = r.pos >= r.extent.Extent.bytes

let ensure_block r =
  let bs = Bytes.length r.buf in
  let want = r.pos / bs in
  if want <> r.cur_block then begin
    Device.read_block r.dev (r.extent.Extent.first_block + want) r.buf;
    r.cur_block <- want
  end

let peek_char r =
  if at_end r then None
  else begin
    ensure_block r;
    Some (Bytes.get r.buf (r.pos mod Bytes.length r.buf))
  end

let read_char r =
  match peek_char r with
  | None -> None
  | Some c ->
      r.pos <- r.pos + 1;
      Some c

let read_bytes r dst off len =
  let bs = Bytes.length r.buf in
  let remaining = r.extent.Extent.bytes - r.pos in
  let len = min len remaining in
  let rec go off len got =
    if len = 0 then got
    else begin
      ensure_block r;
      let within = r.pos mod bs in
      let n = min len (bs - within) in
      Bytes.blit r.buf within dst off n;
      r.pos <- r.pos + n;
      go (off + n) (len - n) (got + n)
    end
  in
  go off len 0

let read_record r =
  if at_end r then None
  else begin
    (* varint length, read byte-at-a-time without boxing an option *)
    let byte () =
      if at_end r then raise (Codec.Corrupt "Block_reader.read_record: truncated length");
      ensure_block r;
      let b = Char.code (Bytes.unsafe_get r.buf (r.pos mod Bytes.length r.buf)) in
      r.pos <- r.pos + 1;
      b
    in
    let rec len shift acc =
      let b = byte () in
      let acc = acc lor ((b land 0x7f) lsl shift) in
      if b land 0x80 = 0 then acc else len (shift + 7) acc
    in
    let n = len 0 0 in
    let payload = Bytes.create n in
    let got = read_bytes r payload 0 n in
    if got <> n then raise (Codec.Corrupt "Block_reader.read_record: truncated payload");
    Some (Bytes.unsafe_to_string payload)
  end

let seek r off =
  if off < 0 || off > r.extent.Extent.bytes then invalid_arg "Block_reader.seek: out of range";
  r.pos <- off
