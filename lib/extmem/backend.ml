type op =
  | Read
  | Write

exception Fault of op * int

type t = {
  name : string;
  block_size : int;
  read_block : int -> bytes -> unit;
  write_block : int -> bytes -> unit;
  allocate : int -> unit;
  flush : unit -> unit;
  close : unit -> unit;
}

let check_block_size bs = if bs <= 0 then invalid_arg "Backend: block_size must be positive"

let mem ?(name = "mem") ~block_size () =
  check_block_size block_size;
  let v : bytes Vec.t = Vec.create () in
  {
    name;
    block_size;
    read_block = (fun i buf -> Bytes.blit (Vec.get v i) 0 buf 0 block_size);
    write_block = (fun i buf -> Bytes.blit buf 0 (Vec.get v i) 0 block_size);
    allocate =
      (fun n ->
        for _ = 1 to n do
          Vec.push v (Bytes.make block_size '\000')
        done);
    flush = (fun () -> ());
    close = (fun () -> ());
  }

let file ?name ~block_size ~path () =
  check_block_size block_size;
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  {
    name = Option.value name ~default:path;
    block_size;
    read_block =
      (fun i buf ->
        let off = i * block_size in
        ignore (Unix.lseek fd off Unix.SEEK_SET);
        let rec fill pos =
          if pos < block_size then begin
            let n = Unix.read fd buf pos (block_size - pos) in
            if n = 0 then Bytes.fill buf pos (block_size - pos) '\000'
            else fill (pos + n)
          end
        in
        fill 0);
    write_block =
      (fun i buf ->
        let off = i * block_size in
        ignore (Unix.lseek fd off Unix.SEEK_SET);
        let rec drain pos =
          if pos < block_size then begin
            let n = Unix.write fd buf pos (block_size - pos) in
            drain (pos + n)
          end
        in
        drain 0);
    allocate = (fun _ -> () (* sparse: the file grows on write *));
    flush = (fun () -> ());
    close = (fun () -> Unix.close fd);
  }
