(** External-memory B+-trees.

    The "additional index" of the paper's §1: the naive nested-loop merge
    scans half of a subtree on average to find a matching element —
    {e "unless there is an additional index"}.  This is that index: a
    disk-resident B+-tree over a {!Device.t}, accessed through a
    {!Pager.t} so hot paths stay cached within a bounded frame budget.
    The indexed-merge comparator in [bench/main.exe motivation] is built
    on it.

    Keys and values are byte strings under a caller-supplied total order
    on keys.  Structure: a meta page (root pointer, entry count), internal
    pages of separator keys and child pointers, and leaf pages chained
    left-to-right for range scans.  Nodes split when their serialized form
    outgrows the block.  Deletion removes entries from leaves without
    rebalancing (pages may become sparse but never incorrect) — the usage
    here is build-once, query-many.

    Keys may appear at most once ({!insert} replaces).  A single key/value
    pair must fit a quarter block, guaranteeing internal fan-out of at
    least two. *)

type t

val create :
  ?arena:Frame_arena.t ->
  ?who:string ->
  ?policy:Pager.policy ->
  ?frames:int ->
  cmp:(string -> string -> int) ->
  Device.t ->
  t
(** Initialise a fresh tree on an empty device region (allocates the meta
    page and an empty root leaf).  [frames] (default 8) is the pager's
    cache budget, drawn from [arena] under [who] (default ["btree"])
    when given; [policy] selects the pager's replacement policy. *)

val reopen :
  ?arena:Frame_arena.t ->
  ?who:string ->
  ?policy:Pager.policy ->
  ?frames:int ->
  cmp:(string -> string -> int) ->
  Device.t ->
  t
(** Re-attach to a device previously written by {!create} + {!flush} (the
    comparator must be the one the tree was built with). *)

val length : t -> int
(** Number of entries. *)

val insert : t -> key:string -> value:string -> unit
(** Insert or replace.  @raise Invalid_argument when key + value exceed a
    quarter of the block size. *)

val find : t -> string -> string option

val mem : t -> string -> bool

val delete : t -> string -> bool
(** Remove a key; [true] if it was present. *)

val iter_from : t -> string -> (string -> string -> bool) -> unit
(** [iter_from t k f] visits entries with key >= [k] in ascending order,
    until [f key value] returns [false] or the entries run out. *)

val iter : t -> (string -> string -> unit) -> unit
(** All entries in ascending key order. *)

val flush : t -> unit
(** Write all dirty pages back to the device. *)

val pager : t -> Pager.t
(** The underlying pager (for cache statistics). *)

val height : t -> int
(** Levels from root to leaves (1 = root is a leaf). *)
