(** Storage for sorted runs.

    NEXSORT collapses each sufficiently large subtree into a sorted run on
    disk; the output phase later traverses the resulting tree of runs.
    A [Run_store.t] owns one device and hands out append-only writers; each
    closed run gets a dense integer id that can be embedded in run-pointer
    entries on the data stack and inside other runs.

    Runs on the store's own device are written one at a time (the main
    thread never interleaves two subtree sorts), which the store
    enforces.  For parallel sorting the main thread instead {!reserve}s
    an id — keeping id assignment a deterministic main-thread sequence —
    and a worker later {!install}s the finished payload, which may live
    on the worker's private scratch device.  All store operations are
    main-thread only: workers hand (device, extent) pairs back for the
    main thread to install. *)

type t

type id = int
(** Dense run identifier, assigned at {!finish_run} or {!reserve}. *)

val create : Device.t -> t
(** A store using [dev] for run payloads.  Run metadata (extents) is held
    in memory, mirroring a file system's allocation tables. *)

val device : t -> Device.t

val run_count : t -> int

val begin_run : ?buffer:bytes -> t -> Block_writer.t
(** Open the writer for a new run.  [buffer] is passed to
    {!Block_writer.create} (one block, typically an arena frame).
    @raise Invalid_argument if a run is already open. *)

val finish_run : t -> Block_writer.t -> id
(** Close the writer and register the run; returns its id. *)

val reserve : t -> id
(** Claim the next run id with no payload yet.  The run stays pending —
    reading it is an error — until {!install} supplies its extent. *)

val install : t -> id -> dev:Device.t -> extent:Extent.t -> unit
(** Fill a {!reserve}d slot with a finished run, possibly on a device
    other than the store's own (a worker's scratch device).
    @raise Invalid_argument on an unknown id or an already-installed
    run. *)

val open_run : ?buffer:bytes -> t -> id -> Block_reader.t
(** A fresh sequential reader over the given run, on whichever device
    holds it.  [buffer] is the reader's block buffer (typically an arena
    frame).
    @raise Invalid_argument on an unknown or still-pending id. *)

val read_run : ?buffer:bytes -> t -> id -> unit -> string option
(** Streaming open: a pull over the run's length-prefixed records, for
    feeding a run into a pipeline without re-materialising it.  The
    reader holds one block of buffer; callers account for it (see
    [Pipe.of_run]). *)

val run_extent : t -> id -> Extent.t

val total_run_blocks : t -> int
(** Sum of block counts over all installed runs (Lemma 4.8 measures
    this); pending reservations contribute nothing. *)

val total_run_bytes : t -> int
(** Sum of payload byte counts over all runs. *)
