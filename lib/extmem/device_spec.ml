type backend_spec =
  | Mem
  | File of string

type layer_spec =
  | Stats
  | Traced
  | Faulty of { p : float; seed : int }
  | Cost of Cost_model.params

type t = {
  layers : layer_spec list;
  backend : backend_spec;
}

let default = { layers = []; backend = Mem }

let grammar =
  "SPEC ::= [LAYER/]...BACKEND; BACKEND ::= mem | file:PATH; LAYER ::= stats | traced | \
   faulty[:p=P,seed=N] | cost[:profile=hdd|ssd][,seek=MS][,read=MS][,write=MS] (example: \
   traced/faulty:p=0.001,seed=42/file:/tmp/dev.img)"

let fail fmt = Printf.ksprintf (fun m -> invalid_arg ("device spec: " ^ m ^ "; " ^ grammar)) fmt

let kv_pairs what args =
  List.filter_map
    (fun part ->
      match String.index_opt part '=' with
      | _ when part = "" -> None
      | Some i -> Some (String.sub part 0 i, String.sub part (i + 1) (String.length part - i - 1))
      | None -> fail "%s: expected key=value, got %S" what part)
    (String.split_on_char ',' args)

let float_of what v =
  match float_of_string_opt v with
  | Some f -> f
  | None -> fail "%s: %S is not a number" what v

let parse_faulty args =
  let p = ref 0.01 and seed = ref 42 in
  List.iter
    (fun (k, v) ->
      match k with
      | "p" -> p := float_of "faulty" v
      | "seed" -> (
          match int_of_string_opt v with
          | Some s -> seed := s
          | None -> fail "faulty: seed %S is not an integer" v)
      | k -> fail "faulty: unknown parameter %S" k)
    (kv_pairs "faulty" args);
  if !p < 0. || !p > 1. then fail "faulty: p=%g out of [0,1]" !p;
  Faulty { p = !p; seed = !seed }

let parse_cost args =
  let params = ref Cost_model.hdd in
  List.iter
    (fun (k, v) ->
      match k with
      | "profile" -> (
          match v with
          | "hdd" -> params := Cost_model.hdd
          | "ssd" -> params := Cost_model.ssd
          | v -> fail "cost: unknown profile %S (hdd or ssd)" v)
      | "seek" -> params := { !params with Cost_model.seek_ms = float_of "cost" v }
      | "read" -> params := { !params with Cost_model.read_ms = float_of "cost" v }
      | "write" -> params := { !params with Cost_model.write_ms = float_of "cost" v }
      | k -> fail "cost: unknown parameter %S" k)
    (kv_pairs "cost" args);
  Cost !params

let parse_layer seg =
  let head, args =
    match String.index_opt seg ':' with
    | Some i -> (String.sub seg 0 i, String.sub seg (i + 1) (String.length seg - i - 1))
    | None -> (seg, "")
  in
  match head with
  | "stats" -> Stats
  | "traced" -> Traced
  | "faulty" -> parse_faulty args
  | "cost" -> parse_cost args
  | "" -> fail "empty layer before %S" args
  | l -> fail "unknown layer %S" l

let parse s =
  if s = "" then fail "empty spec";
  (* Scan '/'-separated segments left to right; the backend segment ends
     the spec (so 'file:' paths may themselves contain slashes). *)
  let rec go acc start =
    let seg_end = try String.index_from s start '/' with Not_found -> String.length s in
    let seg = String.sub s start (seg_end - start) in
    if String.length seg >= 5 && String.sub seg 0 5 = "file:" then begin
      let path = String.sub s (start + 5) (String.length s - start - 5) in
      if path = "" then fail "file: needs a path";
      { layers = List.rev acc; backend = File path }
    end
    else if seg_end = String.length s then
      if seg = "mem" then { layers = List.rev acc; backend = Mem }
      else fail "expected a backend (mem or file:PATH) last, got %S" seg
    else go (parse_layer seg :: acc) (seg_end + 1)
  in
  go [] 0

let layer_to_string = function
  | Stats -> "stats"
  | Traced -> "traced"
  | Faulty { p; seed } -> Printf.sprintf "faulty:p=%g,seed=%d" p seed
  | Cost { Cost_model.seek_ms; read_ms; write_ms } ->
      Printf.sprintf "cost:seek=%g,read=%g,write=%g" seek_ms read_ms write_ms

let to_string t =
  let backend = match t.backend with Mem -> "mem" | File p -> "file:" ^ p in
  String.concat "/" (List.map layer_to_string t.layers @ [ backend ])

type built = {
  device : Device.t;
  trace : Trace.t option;
  cost : Cost_model.t option;
}

let build ?name ~block_size t =
  let device =
    match t.backend with
    | Mem -> Device.in_memory ?name ~block_size ()
    | File path -> Device.file ?name ~block_size ~path ()
  in
  (* push innermost-first so the head of [t.layers] ends up outermost *)
  let trace = ref None and cost = ref None in
  List.iter
    (fun layer ->
      match layer with
      | Stats -> () (* accounting is always installed at the bottom *)
      | Traced ->
          let tr = Trace.attach device in
          if !trace = None then trace := Some tr
      | Faulty { p; seed } -> Device.push_layer device (Layer.faulty ~seed ~p ())
      | Cost params -> cost := Some (Device.attach_cost ~params device))
    (List.rev t.layers);
  { device; trace = !trace; cost = !cost }

let device ?name ~block_size t = (build ?name ~block_size t).device

let build_scratch ~name ~block_size t =
  (* scratch devices share the spec's layers but must not collide on a
     file backend's path: suffix it with the component name *)
  let backend =
    match t.backend with
    | Mem -> Mem
    | File p -> File (p ^ "." ^ name)
  in
  build ~name ~block_size { t with backend }

let scratch ~name ~block_size t = (build_scratch ~name ~block_size t).device
