type policy =
  | Lru
  | Clock

type frame = {
  mutable block : int; (* -1 = free *)
  data : bytes;
  mutable dirty : bool;
  mutable stamp : int;    (* LRU timestamp *)
  mutable referenced : bool; (* Clock bit *)
}

type t = {
  dev : Device.t;
  policy : policy;
  frames : frame array;
  map : (int, int) Hashtbl.t; (* block -> frame index *)
  mutable tick : int;
  mutable hand : int; (* Clock hand *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable writebacks : int;
}

let create ?(policy = Lru) ~frames dev =
  if frames < 1 then invalid_arg "Pager.create: frames must be >= 1";
  let bs = Device.block_size dev in
  let mk _ = { block = -1; data = Bytes.create bs; dirty = false; stamp = 0; referenced = false } in
  {
    dev;
    policy;
    frames = Array.init frames mk;
    map = Hashtbl.create (2 * frames);
    tick = 0;
    hand = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    writebacks = 0;
  }

let device p = p.dev

let hits p = p.hits

let misses p = p.misses

let evictions p = p.evictions

let writebacks p = p.writebacks

let write_back p f =
  if f.dirty then begin
    Device.write_block p.dev f.block f.data;
    f.dirty <- false;
    p.writebacks <- p.writebacks + 1
  end

let victim_lru p =
  let best = ref 0 in
  for i = 1 to Array.length p.frames - 1 do
    if p.frames.(i).block = -1 then best := i
    else if p.frames.(!best).block <> -1 && p.frames.(i).stamp < p.frames.(!best).stamp then
      best := i
  done;
  !best

let victim_clock p =
  let n = Array.length p.frames in
  let rec spin guard =
    let f = p.frames.(p.hand) in
    let i = p.hand in
    p.hand <- (p.hand + 1) mod n;
    if f.block = -1 then i
    else if f.referenced && guard < 2 * n then begin
      f.referenced <- false;
      spin (guard + 1)
    end
    else i
  in
  spin 0

let touch p f =
  p.tick <- p.tick + 1;
  f.stamp <- p.tick;
  f.referenced <- true

(* Return the frame holding [block], faulting it in if needed. *)
let frame_for p block =
  match Hashtbl.find_opt p.map block with
  | Some i ->
      let f = p.frames.(i) in
      p.hits <- p.hits + 1;
      touch p f;
      f
  | None ->
      p.misses <- p.misses + 1;
      let i = match p.policy with Lru -> victim_lru p | Clock -> victim_clock p in
      let f = p.frames.(i) in
      if f.block <> -1 then begin
        p.evictions <- p.evictions + 1;
        write_back p f;
        Hashtbl.remove p.map f.block
      end;
      if block < Device.block_count p.dev then Device.read_block p.dev block f.data
      else Bytes.fill f.data 0 (Bytes.length f.data) '\000';
      f.block <- block;
      f.dirty <- false;
      Hashtbl.replace p.map block i;
      touch p f;
      f

let read_byte p off =
  let bs = Device.block_size p.dev in
  let f = frame_for p (off / bs) in
  Bytes.get f.data (off mod bs)

let write_byte p off c =
  let bs = Device.block_size p.dev in
  let block = off / bs in
  while block >= Device.block_count p.dev do
    ignore (Device.allocate p.dev 1)
  done;
  let f = frame_for p block in
  Bytes.set f.data (off mod bs) c;
  f.dirty <- true

let read p ~pos ~len =
  String.init len (fun i -> read_byte p (pos + i))

let write p ~pos s =
  String.iteri (fun i c -> write_byte p (pos + i) c) s

let read_page p block =
  if block >= Device.block_count p.dev then
    invalid_arg (Printf.sprintf "Pager.read_page: block %d not allocated" block);
  let f = frame_for p block in
  Bytes.to_string f.data

let write_page p block s =
  let bs = Device.block_size p.dev in
  if String.length s > bs then invalid_arg "Pager.write_page: page larger than a block";
  while block >= Device.block_count p.dev do
    ignore (Device.allocate p.dev 1)
  done;
  let f = frame_for p block in
  Bytes.fill f.data 0 bs '\000';
  Bytes.blit_string s 0 f.data 0 (String.length s);
  f.dirty <- true

let flush p =
  Array.iter (fun f -> if f.block <> -1 then write_back p f) p.frames
