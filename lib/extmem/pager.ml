(* A thin random-access view over arena frames: all policy, eviction and
   frame bookkeeping lives in [Frame_arena].  A pager created without an
   arena gets a private unbudgeted one, preserving the old standalone
   behaviour. *)

type policy = Frame_arena.policy =
  | Lru
  | Clock
  | Mru
  | Stack

type t = Frame_arena.cache

let create ?arena ?(who = "pager") ?policy ~frames dev =
  if frames < 1 then invalid_arg "Pager.create: frames must be >= 1";
  let arena = match arena with Some a -> a | None -> Frame_arena.create () in
  Frame_arena.attach arena ~who ?policy ~frames dev

let device = Frame_arena.cache_device

let policy = Frame_arena.cache_policy

let hits = Frame_arena.hits

let misses = Frame_arena.misses

let evictions = Frame_arena.evictions

let writebacks = Frame_arena.writebacks

let read_byte = Frame_arena.read_byte

let write_byte = Frame_arena.write_byte

let read = Frame_arena.read

let write = Frame_arena.write

let read_page = Frame_arena.read_page

let write_page = Frame_arena.write_page

let pin = Frame_arena.pin

let unpin = Frame_arena.unpin

let flush = Frame_arena.flush

let detach = Frame_arena.detach
