(** A mini-language for building device stacks.

    Every consumer of block storage — the sorter's session, the baselines,
    the CLIs ([--device]), the benchmark harness, the tests — constructs
    its devices through this factory, so any backend and any middleware
    combination can be injected anywhere without code changes.

    Grammar (layers outermost first, backend last):
    {v
      SPEC    ::= (LAYER "/")* BACKEND
      BACKEND ::= "mem" | "file:" PATH        (PATH may contain slashes)
      LAYER   ::= "stats"                      (no-op: always installed)
                | "traced"                     (record the access pattern)
                | "faulty" [":p=" P ",seed=" N]  (seeded random faults)
                | "cost" [":" ARGS]            (simulated time; ARGS from
                  profile=hdd|ssd, seek=MS, read=MS, write=MS)
    v}

    Examples: ["mem"], ["file:/tmp/dev.img"], ["traced/mem"],
    ["faulty:p=0.001,seed=42/file:run.dev"], ["cost:profile=ssd/mem"]. *)

type backend_spec =
  | Mem
  | File of string

type layer_spec =
  | Stats
  | Traced
  | Faulty of { p : float; seed : int }
  | Cost of Cost_model.params

type t = {
  layers : layer_spec list;  (** outermost first *)
  backend : backend_spec;
}

val default : t
(** [{ layers = []; backend = Mem }] — a plain accounting in-memory
    device, the historical behaviour. *)

val grammar : string
(** One-line grammar summary, used in error messages and [--help]. *)

val parse : string -> t
(** @raise Invalid_argument with a message quoting {!grammar} on any
    malformed spec. *)

val to_string : t -> string
(** Round-trips through {!parse}. *)

type built = {
  device : Device.t;
  trace : Trace.t option;  (** the recorder of the first [traced] layer *)
  cost : Cost_model.t option;  (** the meter of the last [cost] layer *)
}

val build : ?name:string -> block_size:int -> t -> built
(** Instantiate the stack: backend at the bottom, accounting just above
    it, then the spec's layers with the head of [layers] outermost. *)

val device : ?name:string -> block_size:int -> t -> Device.t
(** [build] when the trace/cost handles are not needed (they remain
    reachable through {!Device.cost} / {!Device.simulated_ms}). *)

val build_scratch : name:string -> block_size:int -> t -> built
(** A scratch/per-component device under the same spec: identical layers,
    but a [file:PATH] backend is re-pointed at [PATH.NAME] so the many
    devices of one session do not collide on a single file. *)

val scratch : name:string -> block_size:int -> t -> Device.t
(** [build_scratch] without the handles. *)
