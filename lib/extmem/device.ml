type op = Backend.op =
  | Read
  | Write

exception Fault = Backend.Fault

type t = {
  name : string;
  block_size : int;
  mutable blocks : int;
  mutable logical_len : int option;
  base : Backend.t;       (* the raw store; bypassed only by [contents]/preload *)
  mutable top : Backend.t;  (* base under the middleware stack *)
  mutable stack : Layer.t list;  (* outermost first; last is the counted layer *)
  stats : Io_stats.t;
  mutable cost : Cost_model.t option;
}

(* Rebuilding re-runs each layer's [wrap]; layers keep their state in the
   layer value (see Layer), so a rebuild changes no observable counts. *)
let rebuild d = d.top <- Layer.apply d.stack d.base

let of_backend ?(layers = []) base =
  let stats = Io_stats.create () in
  let stack = layers @ [ Layer.counted stats ] in
  let d =
    {
      name = base.Backend.name;
      block_size = base.Backend.block_size;
      blocks = 0;
      logical_len = None;
      base;
      top = base;
      stack;
      stats;
      cost = None;
    }
  in
  rebuild d;
  d

let in_memory ?(name = "mem") ~block_size () =
  of_backend (Backend.mem ~name ~block_size ())

let file ?name ~block_size ~path () = of_backend (Backend.file ?name ~block_size ~path ())

let push_layer d layer =
  d.stack <- layer :: d.stack;
  rebuild d

let remove_layer d layer =
  if List.memq layer d.stack then begin
    d.stack <- List.filter (fun l -> not (l == layer)) d.stack;
    rebuild d;
    true
  end
  else false

let attach_cost ?params d =
  let c = Cost_model.create ?params () in
  push_layer d (Layer.costed c);
  d.cost <- Some c;
  c

let name d = d.name

let block_size d = d.block_size

let block_count d = d.blocks

let byte_length d =
  match d.logical_len with
  | Some n -> n
  | None -> d.blocks * d.block_size

let set_byte_length d n = d.logical_len <- Some n

let stats d = d.stats

let layers d = List.map Layer.name d.stack

let cost d = d.cost

let simulated_ms d =
  match d.cost with
  | Some c -> Cost_model.elapsed_ms c
  | None -> 0.

let allocate d n =
  if n < 0 then invalid_arg "Device.allocate: negative count";
  let first = d.blocks in
  d.base.Backend.allocate n;
  d.blocks <- d.blocks + n;
  first

let read_block d i buf =
  if i < 0 || i >= d.blocks then
    invalid_arg (Printf.sprintf "Device.read_block(%s): block %d out of range [0,%d)" d.name i d.blocks);
  if Bytes.length buf < d.block_size then invalid_arg "Device.read_block: buffer too small";
  d.top.Backend.read_block i buf

let write_block d i buf =
  if i < 0 || i > d.blocks then
    invalid_arg (Printf.sprintf "Device.write_block(%s): block %d out of range [0,%d]" d.name i d.blocks);
  if Bytes.length buf < d.block_size then invalid_arg "Device.write_block: buffer too small";
  if i = d.blocks then ignore (allocate d 1);
  d.top.Backend.write_block i buf

(* Preload bytes through the raw backend: not counted as I/O, not visible
   to middleware.  Used by [of_string] and Device_spec loading. *)
let load_string d s =
  let bs = d.block_size in
  let nblocks = (String.length s + bs - 1) / bs in
  if nblocks > d.blocks then ignore (allocate d (nblocks - d.blocks));
  let buf = Bytes.create bs in
  for i = 0 to nblocks - 1 do
    let off = i * bs in
    let n = min bs (String.length s - off) in
    Bytes.fill buf 0 bs '\000';
    Bytes.blit_string s off buf 0 n;
    d.base.Backend.write_block i buf
  done;
  set_byte_length d (String.length s)

let of_string ?name ~block_size s =
  let d = in_memory ?name ~block_size () in
  load_string d s;
  d

let contents d =
  let len = byte_length d in
  let out = Bytes.create len in
  let buf = Bytes.create d.block_size in
  for i = 0 to d.blocks - 1 do
    let off = i * d.block_size in
    let n = min d.block_size (len - off) in
    if n > 0 then begin
      d.base.Backend.read_block i buf;
      Bytes.blit buf 0 out off n
    end
  done;
  Bytes.unsafe_to_string out

let flush d = d.top.Backend.flush ()

let close d = d.top.Backend.close ()
