(* Resident-window invariants:
   - the deque holds blocks [front_idx, front_idx + count) of the stack's
     address space, each with a dirty flag;
   - every live byte (offset < length) is either in a resident block or in
     a block that was flushed to the device at some point and not dirtied
     since eviction (so the device copy is current);
   - [flushed] is the allocation frontier of the device: blocks with index
     < flushed exist on the device.

   Window memory comes from a [Frame_arena]: the base window is a lease of
   [resident_blocks] frames under "<name> window", and with [~borrow:true]
   a second elastic lease "<name> window (borrowed)" grows over idle
   budget blocks and shrinks as the stack does.  Frame buffers are
   recycled through the arena pool (zero-filled on reuse, so a recycled
   block is indistinguishable from a fresh [Bytes.create]). *)

type frame = {
  data : bytes;
  mutable dirty : bool;
}

type t = {
  dev : Device.t;
  bs : int;
  limit : int;
  arena : Frame_arena.t;
  window : Frame_arena.lease;            (* the base resident window *)
  borrow : Frame_arena.lease option;     (* elastic extra window blocks *)
  resident : frame Deque.t;
  mutable front_idx : int; (* block index of the deque's front *)
  mutable len : int;       (* logical byte length = top of stack *)
  mutable flushed : int;   (* device allocation frontier, in blocks *)
  scratch : bytes;         (* for reads that bypass the window *)
  mutable scratch_idx : int; (* block currently in scratch, -1 = none *)
  (* paging metrics (see Obs.Probe.ext_stack) *)
  mutable pushes : int;
  mutable pops : int;
  mutable page_ins : int;    (* device reads back into the window/scratch *)
  mutable writebacks : int;  (* evicted or spilled blocks written out *)
  mutable high_water : int;  (* max logical length ever, bytes *)
}

let create ?(name = "ext stack") ?(resident_blocks = 1) ?arena ?(borrow = false) dev =
  if resident_blocks < 1 then invalid_arg "Ext_stack.create: resident_blocks must be >= 1";
  let arena = match arena with Some a -> a | None -> Frame_arena.create () in
  let bs = Device.block_size dev in
  let window_who = name ^ " window" in
  let window = Frame_arena.lease arena ~who:window_who resident_blocks in
  let borrow =
    (* Borrowing only makes sense against a real budget: an unbudgeted
       lease always grows, which would disable eviction entirely. *)
    if borrow && Frame_arena.budget arena <> None then
      Some (Frame_arena.lease arena ~who:(window_who ^ " (borrowed)") 0)
    else None
  in
  {
    dev;
    bs;
    limit = resident_blocks;
    arena;
    window;
    borrow;
    resident = Deque.create ();
    front_idx = 0;
    len = 0;
    flushed = 0;
    scratch = Bytes.create bs;
    scratch_idx = -1;
    pushes = 0;
    pops = 0;
    page_ins = 0;
    writebacks = 0;
    high_water = 0;
  }

let length st = st.len

let is_empty st = st.len = 0

let resident_blocks st = Deque.length st.resident

let io_stats st = Device.stats st.dev

let device st = st.dev

let pushes st = st.pushes

let pops st = st.pops

let page_ins st = st.page_ins

let writebacks st = st.writebacks

let high_water st = st.high_water

let borrowed st =
  match st.borrow with Some l -> Frame_arena.lease_blocks l | None -> 0

(* Block index just past the resident window. *)
let back_limit st = st.front_idx + Deque.length st.resident

let is_resident st b =
  Deque.length st.resident > 0 && b >= st.front_idx && b < back_limit st

let frame_of st b =
  assert (is_resident st b);
  Deque.get st.resident (b - st.front_idx)

(* Window frames come from (and return to) the arena pool. *)
let fresh_frame st = { data = Frame_arena.take st.arena st.bs; dirty = false }

let drop_frame st frame = Frame_arena.give st.arena frame.data

(* Write block [idx] of the stack's address space to the device, extending
   the device if this block has never been flushed before. *)
let flush_block st idx frame =
  while st.flushed <= idx do
    ignore (Device.allocate st.dev 1);
    st.flushed <- st.flushed + 1
  done;
  Device.write_block st.dev idx frame.data;
  st.writebacks <- st.writebacks + 1;
  frame.dirty <- false

let evict_front st =
  let frame = Deque.peek_front st.resident in
  if frame.dirty then flush_block st st.front_idx frame;
  ignore (Deque.pop_front st.resident);
  drop_frame st frame;
  st.front_idx <- st.front_idx + 1

(* The elastic window: before evicting, try to grow the window by
   borrowing otherwise-idle blocks from the budget.  Borrowed blocks are
   given back by [release_surplus] (as the stack shrinks) or [shed] (when
   another phase is about to reserve memory), so the stack only uses
   memory nobody else wants — paging I/O drops, decisions based on
   [Memory_budget.available_bytes] are unaffected as long as callers
   account for [borrowed] (see [Session.arena_bytes]). *)
let try_borrow st =
  match st.borrow with
  | None -> ()
  | Some l ->
      while
        Deque.length st.resident > st.limit + Frame_arena.lease_blocks l
        && Frame_arena.try_grow l 1
      do
        ()
      done

let maybe_evict st =
  try_borrow st;
  while Deque.length st.resident > st.limit + borrowed st do
    evict_front st
  done

let release_surplus st =
  match st.borrow with
  | None -> ()
  | Some l ->
      while
        Frame_arena.lease_blocks l > 0
        && Deque.length st.resident <= st.limit + Frame_arena.lease_blocks l - 1
      do
        Frame_arena.shrink l 1
      done

let shed st =
  match st.borrow with
  | None -> ()
  | Some l ->
      while Deque.length st.resident > st.limit do
        evict_front st
      done;
      Frame_arena.shrink l (Frame_arena.lease_blocks l)

(* Teardown: every window frame goes back to the arena pool and both
   leases are released.  Nothing is flushed — close is for ending a
   session (successful or aborted), not for persisting the stack, so it
   costs no I/O. *)
let close st =
  while Deque.length st.resident > 0 do
    let frame = Deque.pop_back st.resident in
    drop_frame st frame
  done;
  (match st.borrow with Some l -> Frame_arena.close_lease l | None -> ());
  Frame_arena.close_lease st.window

(* Make block [b] resident, reading it from the device if it was flushed
   before and contains live bytes, zero-filling otherwise.  Only blocks
   adjacent to the window are ever requested. *)
let page_in_front st =
  let b = st.front_idx - 1 in
  assert (b >= 0);
  let frame = fresh_frame st in
  if b < st.flushed then begin
    Device.read_block st.dev b frame.data;
    st.page_ins <- st.page_ins + 1
  end;
  Deque.push_front st.resident frame;
  st.front_idx <- b

let append_back st =
  let b = back_limit st in
  let frame = fresh_frame st in
  if b < st.flushed && b * st.bs < st.len then begin
    (* The block holds live bytes below [len] that were flushed earlier;
       re-read so they survive the coming writes. *)
    Device.read_block st.dev b frame.data;
    st.page_ins <- st.page_ins + 1
  end;
  Deque.push_back st.resident frame

(* Ensure the block containing the next byte to write is resident. *)
let ensure_tail st =
  if Deque.length st.resident = 0 then begin
    st.front_idx <- st.len / st.bs;
    append_back st
  end
  else if st.len >= back_limit st * st.bs then begin
    append_back st;
    maybe_evict st
  end

let append_substring st s off n =
  let rec go off n =
    if n > 0 then begin
      ensure_tail st;
      let within = st.len mod st.bs in
      let room = st.bs - within in
      let k = min n room in
      let frame = frame_of st (st.len / st.bs) in
      Bytes.blit_string s off frame.data within k;
      frame.dirty <- true;
      st.len <- st.len + k;
      if st.len > st.high_water then st.high_water <- st.len;
      go (off + k) (n - k)
    end
  in
  go off n

let varint_size n =
  let rec go n acc = if n < 0x80 then acc else go (n lsr 7) (acc + 1) in
  go n 1

let framed_size payload =
  let n = String.length payload in
  varint_size n + n + 4

let push st payload =
  let buf = Buffer.create (framed_size payload) in
  Codec.put_varint buf (String.length payload);
  Buffer.add_string buf payload;
  Codec.put_u32 buf (String.length payload);
  let framed = Buffer.contents buf in
  append_substring st framed 0 (String.length framed);
  st.pushes <- st.pushes + 1;
  st.scratch_idx <- -1

(* Copy [n] bytes starting at logical offset [pos] into [dst.(dst_off..)],
   paging resident blocks in at the front of the window as a pop would. *)
(* Bring block [b] into the window, reading it back from the device when it
   was flushed earlier.  Blocks are added at the front (pops walking down)
   or at the back (an entry spanning upward past the window). *)
let make_resident st b =
  if Deque.length st.resident = 0 then st.front_idx <- b + 1;
  while st.front_idx > b do
    page_in_front st
  done;
  while b >= back_limit st do
    let nb = back_limit st in
    let frame = fresh_frame st in
    if nb < st.flushed then begin
      Device.read_block st.dev nb frame.data;
      st.page_ins <- st.page_ins + 1
    end;
    Deque.push_back st.resident frame
  done

let read_resident st pos dst dst_off n =
  let rec go pos dst_off n =
    if n > 0 then begin
      let b = pos / st.bs in
      make_resident st b;
      let frame = frame_of st b in
      let within = pos mod st.bs in
      let k = min n (st.bs - within) in
      Bytes.blit frame.data within dst dst_off k;
      go (pos + k) (dst_off + k) (n - k)
    end
  in
  go pos dst_off n

(* Truncate to [pos], dropping resident blocks that are now fully above the
   top (free), then shrink the window back to its limit. *)
let truncate_to st pos =
  if pos < 0 || pos > st.len then invalid_arg "Ext_stack.truncate_to: out of range";
  st.len <- pos;
  let rec drop () =
    if Deque.length st.resident > 0 && (back_limit st - 1) * st.bs >= st.len then begin
      let frame = Deque.pop_back st.resident in
      drop_frame st frame;
      drop ()
    end
  in
  drop ();
  maybe_evict st;
  release_surplus st;
  st.scratch_idx <- -1

let read_top_entry st =
  if st.len = 0 then invalid_arg "Ext_stack: empty stack";
  let tail = Bytes.create 4 in
  read_resident st (st.len - 4) tail 0 4;
  let n = Codec.get_u32_at (Bytes.unsafe_to_string tail) 0 in
  let start = st.len - 4 - n - varint_size n in
  if start < 0 then raise (Codec.Corrupt "Ext_stack: bad entry frame");
  let payload = Bytes.create n in
  read_resident st (start + varint_size n) payload 0 n;
  (Bytes.unsafe_to_string payload, start)

let pop st =
  let payload, start = read_top_entry st in
  truncate_to st start;
  st.pops <- st.pops + 1;
  payload

let top st =
  let payload, _ = read_top_entry st in
  maybe_evict st;
  payload

(* Forward scan: resident blocks are free; evicted blocks are streamed
   through the scratch buffer without touching the window. *)
let read_byte_scanning st pos =
  let b = pos / st.bs in
  if is_resident st b then Bytes.get (frame_of st b).data (pos mod st.bs)
  else begin
    if st.scratch_idx <> b then begin
      assert (b < st.flushed);
      Device.read_block st.dev b st.scratch;
      st.page_ins <- st.page_ins + 1;
      st.scratch_idx <- b
    end;
    Bytes.get st.scratch (pos mod st.bs)
  end

let read_bytes_scanning st pos dst dst_off n =
  for i = 0 to n - 1 do
    Bytes.set dst (dst_off + i) (read_byte_scanning st (pos + i))
  done

let iter_entries_from st ~pos f =
  let cur = ref pos in
  while !cur < st.len do
    (* varint length *)
    let n = ref 0 and shift = ref 0 and continue = ref true in
    while !continue do
      let b = Char.code (read_byte_scanning st !cur) in
      incr cur;
      n := !n lor ((b land 0x7f) lsl !shift);
      shift := !shift + 7;
      if b land 0x80 = 0 then continue := false
    done;
    let payload = Bytes.create !n in
    read_bytes_scanning st !cur payload 0 !n;
    cur := !cur + !n + 4;
    if !cur > st.len then raise (Codec.Corrupt "Ext_stack: truncated entry during scan");
    f (Bytes.unsafe_to_string payload)
  done

let cursor_from st ~pos =
  let cur = ref pos in
  fun () ->
    if !cur >= st.len then None
    else begin
      let n = ref 0 and shift = ref 0 and continue = ref true in
      while !continue do
        let b = Char.code (read_byte_scanning st !cur) in
        incr cur;
        n := !n lor ((b land 0x7f) lsl !shift);
        shift := !shift + 7;
        if b land 0x80 = 0 then continue := false
      done;
      let payload = Bytes.create !n in
      read_bytes_scanning st !cur payload 0 !n;
      cur := !cur + !n + 4;
      if !cur > st.len then raise (Codec.Corrupt "Ext_stack: truncated entry during scan");
      Some (Bytes.unsafe_to_string payload)
    end

let read_all_from st ~pos =
  let n = st.len - pos in
  if n < 0 then invalid_arg "Ext_stack.read_all_from: position above top";
  let out = Bytes.create n in
  read_bytes_scanning st pos out 0 n;
  Bytes.unsafe_to_string out
