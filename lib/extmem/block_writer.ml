type t = {
  dev : Device.t;
  first_block : int;
  buf : bytes;
  mutable fill : int;      (* valid bytes in buf *)
  mutable blocks : int;    (* full blocks already written *)
  mutable closed : bool;
  scratch : bytes;         (* record-framing varint, <= 10 bytes *)
}

let create ?buffer dev =
  let bs = Device.block_size dev in
  let buf =
    match buffer with
    | None -> Bytes.create bs
    | Some b ->
        if Bytes.length b <> bs then
          invalid_arg "Block_writer.create: buffer length must equal the block size";
        b
  in
  {
    dev;
    first_block = Device.block_count dev;
    buf;
    fill = 0;
    blocks = 0;
    closed = false;
    scratch = Bytes.create 10;
  }

let check_open w = if w.closed then invalid_arg "Block_writer: already closed"

let flush_block w =
  let i = Device.allocate w.dev 1 in
  assert (i = w.first_block + w.blocks);
  Device.write_block w.dev i w.buf;
  w.blocks <- w.blocks + 1;
  w.fill <- 0

let write_bytes w src off len =
  check_open w;
  let bs = Bytes.length w.buf in
  let rec go off len =
    if len > 0 then begin
      let n = min len (bs - w.fill) in
      Bytes.blit src off w.buf w.fill n;
      w.fill <- w.fill + n;
      if w.fill = bs then flush_block w;
      go (off + n) (len - n)
    end
  in
  go off len

let write_string w s = write_bytes w (Bytes.unsafe_of_string s) 0 (String.length s)

let write_char w c =
  check_open w;
  Bytes.set w.buf w.fill c;
  w.fill <- w.fill + 1;
  if w.fill = Bytes.length w.buf then flush_block w

let write_record w payload =
  (* frame the length straight into the fixed scratch: no Buffer, no
     intermediate string *)
  let v = ref (String.length payload) in
  let i = ref 0 in
  while !v >= 0x80 do
    Bytes.unsafe_set w.scratch !i (Char.unsafe_chr (0x80 lor (!v land 0x7f)));
    incr i;
    v := !v lsr 7
  done;
  Bytes.unsafe_set w.scratch !i (Char.unsafe_chr !v);
  write_bytes w w.scratch 0 (!i + 1);
  write_string w payload

let bytes_written w = (w.blocks * Bytes.length w.buf) + w.fill

let position = bytes_written

let close w =
  check_open w;
  let bytes = bytes_written w in
  if w.fill > 0 then begin
    Bytes.fill w.buf w.fill (Bytes.length w.buf - w.fill) '\000';
    flush_block w
  end;
  w.closed <- true;
  { Extent.first_block = w.first_block; blocks = w.blocks; bytes }
