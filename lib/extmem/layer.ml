type t = {
  name : string;
  wrap : Backend.t -> Backend.t;
}

let name l = l.name

let make ~name wrap = { name; wrap }

let apply layers backend = List.fold_right (fun l acc -> l.wrap acc) layers backend

(* Wrap just the data path of [next], leaving identity and resource
   management to the inner backend. *)
let on_io next ~read ~write =
  { next with Backend.read_block = read; write_block = write }

let counted stats =
  {
    name = "stats";
    wrap =
      (fun next ->
        on_io next
          ~read:(fun i buf ->
            Io_stats.record_read stats;
            next.Backend.read_block i buf)
          ~write:(fun i buf ->
            Io_stats.record_write stats;
            next.Backend.write_block i buf));
  }

let observed hook =
  {
    name = "observe";
    wrap =
      (fun next ->
        on_io next
          ~read:(fun i buf ->
            hook Backend.Read i;
            next.Backend.read_block i buf)
          ~write:(fun i buf ->
            hook Backend.Write i;
            next.Backend.write_block i buf));
  }

let timed ~clock ?hook lat =
  let hook = match hook with Some h -> h | None -> fun _op _i ~start_ns:_ ~dur_ns:_ -> () in
  {
    name = "timed";
    wrap =
      (fun next ->
        on_io next
          ~read:(fun i buf ->
            let t0 = clock () in
            next.Backend.read_block i buf;
            let dt = clock () - t0 in
            Io_stats.Latency.observe lat.Io_stats.Latency.read dt;
            hook Backend.Read i ~start_ns:t0 ~dur_ns:dt)
          ~write:(fun i buf ->
            let t0 = clock () in
            next.Backend.write_block i buf;
            let dt = clock () - t0 in
            Io_stats.Latency.observe lat.Io_stats.Latency.write dt;
            hook Backend.Write i ~start_ns:t0 ~dur_ns:dt));
  }

let fault_hook hook =
  {
    name = "fault";
    wrap =
      (fun next ->
        let check op i = if hook op i then raise (Backend.Fault (op, i)) in
        on_io next
          ~read:(fun i buf ->
            check Backend.Read i;
            next.Backend.read_block i buf)
          ~write:(fun i buf ->
            check Backend.Write i;
            next.Backend.write_block i buf));
  }

(* splitmix64: a tiny deterministic PRNG so seeded fault injection is
   reproducible across runs and platforms *)
let splitmix64 state =
  state := Int64.add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let uniform state =
  (* 53 random bits -> [0,1) *)
  let bits = Int64.to_float (Int64.shift_right_logical (splitmix64 state) 11) in
  bits /. 9007199254740992.0

let faulty ?(seed = 42) ~p () =
  if p < 0. || p > 1. then invalid_arg "Layer.faulty: p must lie in [0,1]";
  (* PRNG state lives in the layer value, not the [wrap] closure, so
     rebuilding a device's stack (push/remove of another layer) continues
     the fault sequence instead of restarting it *)
  let state = ref (Int64.of_int seed) in
  {
    name = Printf.sprintf "faulty(p=%g,seed=%d)" p seed;
    wrap =
      (fun next ->
        let check op i = if uniform state < p then raise (Backend.Fault (op, i)) in
        on_io next
          ~read:(fun i buf ->
            check Backend.Read i;
            next.Backend.read_block i buf)
          ~write:(fun i buf ->
            check Backend.Write i;
            next.Backend.write_block i buf));
  }

let costed cost =
  (* the simulated disk head: block index the previous access on this
     device ended at; -1 = no access yet (first access seeks).  Held per
     layer value (not per [wrap] call) so stack rebuilds keep the head
     position. *)
  let head = ref (-1) in
  {
    name = "cost";
    wrap =
      (fun next ->
        let charge op i =
          Cost_model.charge cost ~sequential:(i = !head) op;
          head := i + 1
        in
        on_io next
          ~read:(fun i buf ->
            charge Backend.Read i;
            next.Backend.read_block i buf)
          ~write:(fun i buf ->
            charge Backend.Write i;
            next.Backend.write_block i buf));
  }
