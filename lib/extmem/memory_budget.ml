type t = {
  total : int;
  bs : int;
  mutable used : int;
  ledger : (string, int) Hashtbl.t; (* who -> blocks currently held *)
  lock : Mutex.t;
  (* a carved sub-budget remembers the pool it was carved from, the owner
     name its slab is recorded under there, and the slab size in the
     parent's blocks (the two budgets may use different block sizes) *)
  parent : (t * string * int) option;
}

exception Exhausted of string

let create ~blocks ~block_size =
  if blocks < 1 then invalid_arg "Memory_budget.create: need at least one block";
  if block_size < 1 then invalid_arg "Memory_budget.create: block_size must be positive";
  { total = blocks; bs = block_size; used = 0; ledger = Hashtbl.create 8;
    lock = Mutex.create (); parent = None }

let block_size b = b.bs

let total_blocks b = b.total

(* The lock is not reentrant, so every operation that composes smaller
   ones (reserve reports holders, carve reserves) works on the unlocked
   [_u] forms and takes the lock exactly once at its public entry. *)

let held_u b who = Option.value ~default:0 (Hashtbl.find_opt b.ledger who)

let holders_u b =
  Hashtbl.fold (fun who n acc -> if n > 0 then (who, n) :: acc else acc) b.ledger []
  |> List.sort compare

let pp_holders_u b =
  match holders_u b with
  | [] -> "nothing is held"
  | hs -> String.concat ", " (List.map (fun (who, n) -> Printf.sprintf "%s=%d" who n) hs)

let reserve_u b ~who n =
  if n < 0 then invalid_arg "Memory_budget.reserve: negative";
  if b.used + n > b.total then
    raise
      (Exhausted
         (Printf.sprintf "%s needs %d blocks but only %d of %d are free (%s)" who n
            (b.total - b.used) b.total (pp_holders_u b)));
  b.used <- b.used + n;
  Hashtbl.replace b.ledger who (held_u b who + n)

let release_u b ~who n =
  if n < 0 then invalid_arg "Memory_budget.release: negative";
  let h = held_u b who in
  if n > h then
    invalid_arg
      (Printf.sprintf "Memory_budget.release: %s releasing %d blocks but holds %d (%s)" who n h
         (pp_holders_u b));
  b.used <- b.used - n;
  if h - n = 0 then Hashtbl.remove b.ledger who else Hashtbl.replace b.ledger who (h - n)

let used_blocks b = Mutex.protect b.lock (fun () -> b.used)

let available_blocks b = Mutex.protect b.lock (fun () -> b.total - b.used)

let available_bytes b = available_blocks b * b.bs

let held b who = Mutex.protect b.lock (fun () -> held_u b who)

let holders b = Mutex.protect b.lock (fun () -> holders_u b)

let reserve b ~who n = Mutex.protect b.lock (fun () -> reserve_u b ~who n)

let release b ~who n = Mutex.protect b.lock (fun () -> release_u b ~who n)

let with_reserved b ~who n f =
  reserve b ~who n;
  Fun.protect ~finally:(fun () -> release b ~who n) f

let carve b ?block_size ~who ~blocks () =
  if blocks < 1 then invalid_arg "Memory_budget.carve: need at least one block";
  let bs = Option.value block_size ~default:b.bs in
  if bs < 1 then invalid_arg "Memory_budget.carve: block_size must be positive";
  (* the slab is charged to the parent in the parent's own granularity,
     rounding up so a sub-budget can never out-commit its slab *)
  let parent_blocks = (blocks * bs + b.bs - 1) / b.bs in
  reserve b ~who parent_blocks;
  { total = blocks; bs; used = 0; ledger = Hashtbl.create 8;
    lock = Mutex.create (); parent = Some (b, who, parent_blocks) }

let uncarve ?(force = false) child =
  match child.parent with
  | None -> invalid_arg "Memory_budget.uncarve: not a carved sub-budget"
  | Some (parent, who, parent_blocks) ->
      Mutex.protect child.lock (fun () ->
          if child.used <> 0 && not force then
            invalid_arg
              (Printf.sprintf "Memory_budget.uncarve: %s still holds %d blocks (%s)" who
                 child.used (pp_holders_u child)));
      release parent ~who parent_blocks
