type t = {
  total : int;
  bs : int;
  mutable used : int;
  ledger : (string, int) Hashtbl.t; (* who -> blocks currently held *)
}

exception Exhausted of string

let create ~blocks ~block_size =
  if blocks < 1 then invalid_arg "Memory_budget.create: need at least one block";
  if block_size < 1 then invalid_arg "Memory_budget.create: block_size must be positive";
  { total = blocks; bs = block_size; used = 0; ledger = Hashtbl.create 8 }

let block_size b = b.bs

let total_blocks b = b.total

let used_blocks b = b.used

let available_blocks b = b.total - b.used

let available_bytes b = available_blocks b * b.bs

let held b who = Option.value ~default:0 (Hashtbl.find_opt b.ledger who)

let holders b =
  Hashtbl.fold (fun who n acc -> if n > 0 then (who, n) :: acc else acc) b.ledger []
  |> List.sort compare

let pp_holders b =
  match holders b with
  | [] -> "nothing is held"
  | hs -> String.concat ", " (List.map (fun (who, n) -> Printf.sprintf "%s=%d" who n) hs)

let reserve b ~who n =
  if n < 0 then invalid_arg "Memory_budget.reserve: negative";
  if b.used + n > b.total then
    raise
      (Exhausted
         (Printf.sprintf "%s needs %d blocks but only %d of %d are free (%s)" who n
            (available_blocks b) b.total (pp_holders b)));
  b.used <- b.used + n;
  Hashtbl.replace b.ledger who (held b who + n)

let release b ~who n =
  if n < 0 then invalid_arg "Memory_budget.release: negative";
  let h = held b who in
  if n > h then
    invalid_arg
      (Printf.sprintf "Memory_budget.release: %s releasing %d blocks but holds %d (%s)" who n h
         (pp_holders b));
  b.used <- b.used - n;
  if h - n = 0 then Hashtbl.remove b.ledger who else Hashtbl.replace b.ledger who (h - n)

let with_reserved b ~who n f =
  reserve b ~who n;
  Fun.protect ~finally:(fun () -> release b ~who n) f
