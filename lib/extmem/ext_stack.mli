(** External-memory stacks (§3.1 of the paper).

    NEXSORT uses three stacks that can grow beyond internal memory: the
    data stack (elements being sorted), the path stack (start locations of
    the current element's ancestors) and the output-location stack (the
    manual recursion stack of the output phase).  This module implements
    all three: a stack of variable-length byte entries stored on its own
    device, with a bounded window of resident blocks and the paper's
    {e no-prefetch} paging policy — a block that has been evicted is read
    back only when something on it must be popped.

    The resident window always covers the top of the stack.  Pushes that
    overflow the window evict the lowest resident block (written back only
    if dirty); pops that reach below the window page blocks back in, while
    blocks that fall entirely above the shrunk top are discarded for free.
    With [resident_blocks = w], at most [w] blocks of internal memory are
    used, matching the paper's assumption of two blocks for the path stack
    and one each for the data and output-location stacks.

    Entries are framed as [varint length ++ payload ++ fixed u32 length],
    so they can be popped from the top {e and} scanned forward from any
    recorded position — NEXSORT pops a whole subtree by remembering the
    stack length before the subtree's first entry and scanning forward
    from there.

    Positions reported by {!length} are byte offsets and double as the
    "locations" of the paper's pseudo-code: the difference of two
    positions is the exact on-stack byte size of the entries between
    them. *)

type t

val create :
  ?name:string -> ?resident_blocks:int -> ?arena:Frame_arena.t -> ?borrow:bool -> Device.t -> t
(** [create dev] is an empty stack storing its spilled blocks on [dev]
    (which it should own exclusively).  [resident_blocks] (default 1,
    must be >= 1) bounds the internal-memory window.

    Window frames are drawn from [arena] (a private unbudgeted arena
    when omitted): the base window is a lease of [resident_blocks]
    frames under ["<name> window"], so on a budgeted arena creating the
    stack reserves its window from the shared budget — the stack owns
    its own accounting.

    With [~borrow:true] (on a budgeted arena) the window becomes
    {e elastic}: instead of evicting when it outgrows
    [resident_blocks], the stack first grows a second lease
    ["<name> window (borrowed)"] over idle budget blocks and keeps them
    resident, falling back to eviction only when the budget is
    exhausted.  Borrowed blocks are returned as the stack shrinks, or
    all at once by {!shed}; callers that size work off
    [Memory_budget.available_bytes] must add {!borrowed} back in to keep
    decisions independent of how much was lent (see
    [Session.arena_bytes]). *)

val length : t -> int
(** Current top-of-stack byte offset. *)

val is_empty : t -> bool

val push : t -> string -> unit
(** Push one entry (its payload bytes). *)

val pop : t -> string
(** Pop the top entry.  @raise Invalid_argument on an empty stack. *)

val top : t -> string
(** The top entry without removing it.  Pages in exactly the blocks a
    [pop] would.  @raise Invalid_argument on an empty stack. *)

val framed_size : string -> int
(** [framed_size payload] is the number of stack bytes an entry with that
    payload occupies, framing included. *)

val truncate_to : t -> int -> unit
(** [truncate_to st pos] discards everything at or above byte position
    [pos], which must be an entry boundary previously observed via
    {!length}.  Costs no I/O. *)

val iter_entries_from : t -> pos:int -> (string -> unit) -> unit
(** [iter_entries_from st ~pos f] scans entries forward from byte position
    [pos] (an entry boundary) to the top, calling [f] on each payload in
    bottom-to-top order.  Blocks below the resident window are read
    through a scratch buffer (each counted as one read) without disturbing
    the window; resident blocks cost nothing. *)

val cursor_from : t -> pos:int -> unit -> string option
(** Pull-based variant of {!iter_entries_from}: each call returns the next
    entry payload, [None] at the top.  The cursor reads the stack as it
    was when created; pushing, popping or truncating while a cursor is
    live is a programming error. *)

val read_all_from : t -> pos:int -> string
(** The raw framed bytes from [pos] to the top, as one string.  Same I/O
    behaviour as {!iter_entries_from}. *)

val resident_blocks : t -> int
(** Number of blocks currently held in memory (<= the configured limit
    plus {!borrowed}, except transiently while popping an entry larger
    than the window). *)

val borrowed : t -> int
(** Blocks currently borrowed from the budget (0 without [?borrow]). *)

val shed : t -> unit
(** Evict the window down to its configured limit and release every
    borrowed block back to the budget.  Call before another phase
    reserves memory.  No-op without [?borrow]. *)

val close : t -> unit
(** Release the window: every resident frame returns to the arena pool
    and both leases (base window and borrowed blocks) are released back
    to the budget.  Nothing is flushed — close ends a session, it does
    not persist the stack — so it costs no I/O.  Idempotent; using the
    stack afterwards is a programming error. *)

val device : t -> Device.t
(** The backing device (for layer inspection and simulated-cost totals). *)

val io_stats : t -> Io_stats.t
(** The underlying device's counters: every page-in is a read, every
    dirty eviction a write. *)

(** {2 Paging metrics}

    Plain counters over the stack's life, read by [Obs.Probe.ext_stack]. *)

val pushes : t -> int
(** Entries pushed. *)

val pops : t -> int
(** Entries popped (scans and {!truncate_to} are not pops). *)

val page_ins : t -> int
(** Blocks read back from the device — into the resident window or the
    scan scratch buffer. *)

val writebacks : t -> int
(** Blocks written to the device (dirty evictions and spills). *)

val high_water : t -> int
(** Largest byte length the stack ever reached. *)
