(** Simulated I/O time: a hardware-independent cost meter.

    The paper's primary metric is the I/O {e count}, but its motivating
    argument is about access {e patterns} — seeks cost orders of magnitude
    more than sequential transfers on a spinning disk.  A cost model
    charges each block I/O a transfer cost plus, when the access does not
    continue where the previous one on the same device left off, a seek
    penalty.  Attached to devices as {!Layer.costed} middleware, it lets
    benchmarks report a simulated time that rewards sequential layouts the
    way real hardware does, while staying deterministic and
    hardware-independent. *)

type params = {
  seek_ms : float;   (** charged when an access is not sequential *)
  read_ms : float;   (** per-block transfer cost of a read *)
  write_ms : float;  (** per-block transfer cost of a write *)
}

val hdd : params
(** Spinning-disk-flavoured defaults: seeks dominate (8 ms seek vs
    ~0.05 ms per-block transfer). *)

val ssd : params
(** Flash-flavoured: seeks nearly free, writes slightly dearer than
    reads. *)

type t
(** A cost accumulator.  One accumulator may be shared by several devices
    (each {!Layer.costed} application tracks its own disk-head position);
    the elapsed time is the sum over all of them. *)

val create : ?params:params -> unit -> t
(** Fresh zeroed meter; default parameters are {!hdd}. *)

val charge : t -> sequential:bool -> Backend.op -> unit
(** Charge one block I/O.  Middleware calls this; tests may too. *)

val params : t -> params

val charged : t -> int
(** Number of I/Os charged. *)

val seeks : t -> int
(** Number of non-sequential accesses. *)

val elapsed_ms : t -> float
(** Total simulated time, in milliseconds. *)

val pp : Format.formatter -> t -> unit
