(* Page layout (one block per node):
     meta page (block [meta_block]): magic u8, root varint, count varint,
       next_free varint (allocation frontier within the tree's region)
     leaf:     u8 0, next_leaf+1 varint (0 = none), n varint,
               n * (key string, value string)
     internal: u8 1, n varint, child_0 varint, n * (key_i, child_i+1)
   All node references are device block indices. *)

type node =
  | Leaf of {
      mutable next : int option;
      mutable entries : (string * string) list; (* ascending *)
    }
  | Internal of {
      mutable children : int list;  (* n+1 children *)
      mutable seps : string list;   (* n separators; subtree i holds keys < seps.(i) *)
    }

type t = {
  dev : Device.t;
  pager : Pager.t;
  cmp : string -> string -> int;
  meta_block : int;
  mutable root : int;
  mutable count : int;
}

let magic = 0xB7

let max_entry t = Device.block_size t.dev / 4

(* ---- node (de)serialization ---- *)

let encode_node node =
  let b = Buffer.create 256 in
  (match node with
  | Leaf l ->
      Codec.put_u8 b 0;
      Codec.put_varint b (match l.next with Some n -> n + 1 | None -> 0);
      Codec.put_varint b (List.length l.entries);
      List.iter
        (fun (k, v) ->
          Codec.put_string b k;
          Codec.put_string b v)
        l.entries
  | Internal i ->
      Codec.put_u8 b 1;
      Codec.put_varint b (List.length i.seps);
      (match i.children with
      | first :: _ -> Codec.put_varint b first
      | [] -> invalid_arg "Btree: internal node without children");
      List.iter2
        (fun sep child ->
          Codec.put_string b sep;
          Codec.put_varint b child)
        i.seps (List.tl i.children));
  Buffer.contents b

let decode_node s =
  let c = Codec.cursor s in
  match Codec.get_u8 c with
  | 0 ->
      let next = Codec.get_varint c in
      let n = Codec.get_varint c in
      let rec entries n acc =
        if n = 0 then List.rev acc
        else begin
          let k = Codec.get_string c in
          let v = Codec.get_string c in
          entries (n - 1) ((k, v) :: acc)
        end
      in
      Leaf { next = (if next = 0 then None else Some (next - 1)); entries = entries n [] }
  | 1 ->
      let n = Codec.get_varint c in
      let first = Codec.get_varint c in
      let rec rest n seps children =
        if n = 0 then (List.rev seps, List.rev children)
        else begin
          let sep = Codec.get_string c in
          let child = Codec.get_varint c in
          rest (n - 1) (sep :: seps) (child :: children)
        end
      in
      let seps, children = rest n [] [] in
      Internal { children = first :: children; seps }
  | k -> raise (Codec.Corrupt (Printf.sprintf "Btree: bad node kind %d" k))

let load t block = decode_node (Pager.read_page t.pager block)

let store t block node = Pager.write_page t.pager block (encode_node node)

let node_fits t node = String.length (encode_node node) <= Device.block_size t.dev

(* ---- meta page ---- *)

let write_meta t =
  let b = Buffer.create 16 in
  Codec.put_u8 b magic;
  Codec.put_varint b t.root;
  Codec.put_varint b t.count;
  Pager.write_page t.pager t.meta_block (Buffer.contents b)

let alloc_block t =
  let block = Device.allocate t.dev 1 in
  block

let create ?arena ?(who = "btree") ?policy ?(frames = 8) ~cmp dev =
  let pager = Pager.create ?arena ~who ?policy ~frames dev in
  let meta_block = Device.allocate dev 1 in
  let t = { dev; pager; cmp; meta_block; root = 0; count = 0 } in
  let root = alloc_block t in
  t.root <- root;
  store t root (Leaf { next = None; entries = [] });
  write_meta t;
  t

let reopen ?arena ?(who = "btree") ?policy ?(frames = 8) ~cmp dev =
  let pager = Pager.create ?arena ~who ?policy ~frames dev in
  let t = { dev; pager; cmp; meta_block = 0; root = 0; count = 0 } in
  let c = Codec.cursor (Pager.read_page pager 0) in
  if Codec.get_u8 c <> magic then raise (Codec.Corrupt "Btree.reopen: bad magic");
  t.root <- Codec.get_varint c;
  t.count <- Codec.get_varint c;
  t

let length t = t.count

let flush t =
  write_meta t;
  Pager.flush t.pager

let pager t = t.pager

(* ---- search ---- *)

(* index of the child subtree of an internal node that may hold [key]:
   child i covers keys < seps.(i) (and the last child the rest) *)
let child_for t seps key =
  let rec go i = function
    | [] -> i
    | sep :: rest -> if t.cmp key sep < 0 then i else go (i + 1) rest
  in
  go 0 seps

let rec find_in t block key =
  match load t block with
  | Leaf l -> List.find_map (fun (k, v) -> if t.cmp k key = 0 then Some v else None) l.entries
  | Internal i -> find_in t (List.nth i.children (child_for t i.seps key)) key

let find t key = find_in t t.root key

let mem t key = find t key <> None

(* ---- insertion ---- *)

type split_result =
  | Ok_no_split
  | Split of string * int (* separator, new right sibling block *)

let split_leaf t block (l : (string * string) list) next =
  let n = List.length l in
  let rec take k acc = function
    | rest when k = 0 -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | x :: tl -> take (k - 1) (x :: acc) tl
  in
  let left, right = take (n / 2) [] l in
  match right with
  | [] -> invalid_arg "Btree: entry too large to split"
  | (sep, _) :: _ ->
      let right_block = alloc_block t in
      store t right_block (Leaf { next; entries = right });
      store t block (Leaf { next = Some right_block; entries = left });
      Split (sep, right_block)

let split_internal t block children seps =
  let n = List.length seps in
  let mid = n / 2 in
  let rec split_at i seps children lsep lchild =
    match (seps, children) with
    | sep :: seps', child :: children' when i < mid ->
        split_at (i + 1) seps' children' (sep :: lsep) (child :: lchild)
    | sep :: seps', child :: children' ->
        (* sep is promoted; its right child becomes the right node's first *)
        (List.rev lsep, List.rev lchild, sep, seps', child :: children')
    | _ -> invalid_arg "Btree: malformed internal split"
  in
  match children with
  | first :: rest ->
      let lseps, lchildren, promoted, rseps, rchildren = split_at 0 seps rest [] [ first ] in
      let right_block = alloc_block t in
      store t right_block (Internal { children = rchildren; seps = rseps });
      store t block (Internal { children = lchildren; seps = lseps });
      Split (promoted, right_block)
  | [] -> invalid_arg "Btree: internal node without children"

let rec insert_in t block key value =
  match load t block with
  | Leaf l ->
      let rec place = function
        | [] -> [ (key, value) ]
        | (k, _) :: rest when t.cmp k key = 0 ->
            t.count <- t.count - 1; (* replacement: net count unchanged *)
            (key, value) :: rest
        | (k, v) :: rest when t.cmp k key < 0 -> (k, v) :: place rest
        | rest -> (key, value) :: rest
      in
      let entries = place l.entries in
      t.count <- t.count + 1;
      let node = Leaf { next = l.next; entries } in
      if node_fits t node then begin
        store t block node;
        Ok_no_split
      end
      else split_leaf t block entries l.next
  | Internal i -> (
      let idx = child_for t i.seps key in
      let child = List.nth i.children idx in
      match insert_in t child key value with
      | Ok_no_split -> Ok_no_split
      | Split (sep, right) ->
          let children = List.filteri (fun j _ -> j <= idx) i.children
                         @ [ right ]
                         @ List.filteri (fun j _ -> j > idx) i.children in
          let seps = List.filteri (fun j _ -> j < idx) i.seps
                     @ [ sep ]
                     @ List.filteri (fun j _ -> j >= idx) i.seps in
          let node = Internal { children; seps } in
          if node_fits t node then begin
            store t block node;
            Ok_no_split
          end
          else split_internal t block children seps)

let insert t ~key ~value =
  if String.length key + String.length value > max_entry t then
    invalid_arg "Btree.insert: entry exceeds a quarter block";
  (match insert_in t t.root key value with
  | Ok_no_split -> ()
  | Split (sep, right) ->
      let new_root = alloc_block t in
      store t new_root (Internal { children = [ t.root; right ]; seps = [ sep ] });
      t.root <- new_root);
  write_meta t

(* ---- deletion (leaf-local, no rebalancing) ---- *)

let rec delete_in t block key =
  match load t block with
  | Leaf l ->
      let found = ref false in
      let entries =
        List.filter
          (fun (k, _) ->
            if t.cmp k key = 0 then begin
              found := true;
              false
            end
            else true)
          l.entries
      in
      if !found then begin
        store t block (Leaf { next = l.next; entries });
        t.count <- t.count - 1
      end;
      !found
  | Internal i -> delete_in t (List.nth i.children (child_for t i.seps key)) key

let delete t key =
  let r = delete_in t t.root key in
  if r then write_meta t;
  r

(* ---- iteration ---- *)

let rec leftmost_leaf_for t block key =
  match load t block with
  | Leaf _ -> block
  | Internal i -> leftmost_leaf_for t (List.nth i.children (child_for t i.seps key)) key

let iter_from t key f =
  let rec walk block skip_lower =
    match load t block with
    | Internal _ -> assert false
    | Leaf l ->
        let continue =
          List.for_all
            (fun (k, v) -> if skip_lower && t.cmp k key < 0 then true else f k v)
            l.entries
        in
        if continue then
          match l.next with
          | Some next -> walk next false
          | None -> ()
  in
  walk (leftmost_leaf_for t t.root key) true

let iter t f =
  (* start from the globally leftmost leaf *)
  let rec leftmost block =
    match load t block with
    | Leaf _ -> block
    | Internal i -> leftmost (List.hd i.children)
  in
  let rec walk block =
    match load t block with
    | Internal _ -> assert false
    | Leaf l ->
        List.iter (fun (k, v) -> f k v) l.entries;
        (match l.next with
        | Some next -> walk next
        | None -> ())
  in
  walk (leftmost t.root)

let height t =
  let rec go block acc =
    match load t block with
    | Leaf _ -> acc
    | Internal i -> go (List.hd i.children) (acc + 1)
  in
  go t.root 1
