(** Raw block storage: the bottom of the composable device stack.

    A backend is a record of functions moving whole blocks between memory
    and some store — the narrow waist every {!Device.t} is built on.
    Backends know nothing about range checks, I/O accounting, tracing or
    fault injection; all of that is layered on top by {!Layer} middleware
    and driven by {!Device}.  This mirrors TPIE's split between its BTE
    (block transfer engine) and the stream/collection layers above it.

    Two primitive backends are provided: an in-memory virtual disk and a
    real file.  New backends (mmap, remote, compressed, …) only need to
    fill in this record to plug into the whole system. *)

type op =
  | Read
  | Write

exception Fault of op * int
(** Raised by fault-injection middleware (see {!Layer.faulty}) in place of
    performing the I/O.  Lives here so both {!Device} and layers can refer
    to it without a dependency cycle. *)

type t = {
  name : string;
  block_size : int;
  read_block : int -> bytes -> unit;
      (** [read_block i buf] fills [buf] (≥ [block_size] bytes) with block
          [i].  The caller has already range-checked [i]. *)
  write_block : int -> bytes -> unit;
      (** [write_block i buf] stores [buf]'s first [block_size] bytes as
          block [i]. *)
  allocate : int -> unit;
      (** Extend the store by [n] blocks reading as zeroes.  May be a no-op
          for sparse stores. *)
  flush : unit -> unit;  (** Push buffered writes down (no-op for primitives). *)
  close : unit -> unit;  (** Release OS resources. *)
}

val mem : ?name:string -> block_size:int -> unit -> t
(** A fresh in-memory virtual disk. *)

val file : ?name:string -> block_size:int -> path:string -> unit -> t
(** [file ~block_size ~path ()] opens (creating or truncating) [path].
    Unwritten (sparse) blocks read as zeroes. *)
