(** The session-wide frame arena: one pool of internal-memory block
    frames behind every block-holding component.

    The external-memory model hands an algorithm [m] blocks of internal
    memory; TPIE makes that concrete with a single memory manager that
    every data structure draws from.  This module is that spine.  It
    wraps a {!Memory_budget} (the counting side) and adds the frames
    themselves: recycled zero-filled buffers, per-owner accounting, and
    two ways to hold memory —

    {ul
    {- a {b lease}: a named reservation of [n] frames with elastic
       grow/shrink, used by components that manage their own block
       layout (stack windows, stream buffers, run-formation arenas,
       merge fan-in);}
    {- a {b cache}: a mapped set of frames over one device with a
       replacement policy, pin counts, dirty tracking and write-back on
       eviction — the machinery behind {!Pager}.}}

    Every reservation is recorded under its owner's [who] label, so
    budget exhaustion names the holders and per-owner hit/miss/eviction
    counters can be exported to metrics.  An arena created without a
    budget performs no accounting (frames are still pooled) — handy for
    standalone pagers and tests.

    Thread-safety: the shared owner table and buffer pool are protected
    by an internal mutex, so {!reserve}/{!release}/{!take}/{!give} (and
    the lease operations built on them) are safe from any domain.  A
    {b cache} is single-domain: its frame map and counters are
    deliberately unlocked for the pager hot path.  Parallel phases
    should {!carve} a per-domain sub-arena instead of sharing one. *)

type t

(** {1 Replacement policies} *)

type policy =
  | Lru    (** evict the least-recently-touched frame *)
  | Clock  (** second-chance: skip referenced frames once *)
  | Mru    (** evict the most-recently-touched frame *)
  | Stack  (** the paper's no-prefetch stack rule: evict the lowest
               block index, keeping the top of a stack resident *)

val all_policies : policy list

val policy_to_string : policy -> string

val policy_of_string : string -> policy option

(** {1 Arena} *)

val create : ?budget:Memory_budget.t -> ?default_policy:policy -> unit -> t
(** An arena drawing from [budget] (when given); [default_policy]
    (default [Lru]) applies to caches attached without an explicit
    policy. *)

val budget : t -> Memory_budget.t option

val default_policy : t -> policy

(** Replacement traffic visible to an observer: a frame chosen as victim
    while holding a block ([Evict]), and a dirty frame flushed to its
    device ([Writeback], also on explicit flushes). *)
type event = Evict | Writeback

val set_observer : t -> (who:string -> event -> int -> unit) -> unit
(** Fire the hook on every eviction and write-back in caches attached to
    this arena, with the cache owner's name and the block index.  Caches
    are main-thread objects, so the hook runs unlocked on the caller's
    domain.  Carved sub-arenas do not inherit the observer. *)

val take : t -> int -> bytes
(** [take t size] is a zero-filled buffer of [size] bytes, recycled from
    the pool when possible.  Buffer pooling is not accounting: callers
    hold a lease (or cache) covering the blocks they keep. *)

val give : t -> bytes -> unit
(** Return a buffer to the pool.  The caller must drop its reference. *)

val carve : t -> who:string -> blocks:int -> t
(** [carve t ~who ~blocks] reserves a [blocks]-frame slab from the
    arena's budget under [who] and wraps it in a fresh private arena
    (same default policy).  Intended for worker domains: every lease,
    cache and buffer the worker takes then lives entirely in its own
    arena, with no shared mutable frame state on the hot path, while the
    parent's ledger pins the slab under the carver's name.
    @raise Invalid_argument on an unbudgeted arena.
    @raise Memory_budget.Exhausted when the slab does not fit. *)

val close : t -> unit
(** Return a carved sub-arena's slab to the parent budget.  Every lease
    and cache in the sub-arena must already be closed — a frame still
    reserved is a leak, reported with its owner.
    @raise Invalid_argument on a non-carved arena or a non-empty one. *)

(** {1 Leases} *)

type lease

val lease : t -> who:string -> int -> lease
(** Reserve [n] frames under [who].  @raise Memory_budget.Exhausted when
    the arena's budget cannot cover them. *)

val lease_blocks : lease -> int
(** Frames currently held (0 after {!close_lease}). *)

val lease_who : lease -> string

val grow : lease -> int -> unit
(** Reserve [n] more frames.  @raise Memory_budget.Exhausted on a full
    budget. *)

val try_grow : lease -> int -> bool
(** Like {!grow} but returns [false] instead of raising when the budget
    lacks [n] free blocks (always succeeds on an unbudgeted arena). *)

val shrink : lease -> int -> unit
(** Give back [n] frames.  @raise Invalid_argument below zero. *)

val close_lease : lease -> unit
(** Give back everything still held.  Idempotent. *)

val with_lease : t -> who:string -> int -> (lease -> 'a) -> 'a
(** Lease around a scope; always closed, also on exceptions. *)

(** {1 Caches}

    The pager machinery: a set of frames mapped onto one device's
    blocks, faulting misses in through the chosen replacement policy,
    with pin counts protecting frames from eviction.  With no pins held
    the Lru and Clock victim choices are exactly the original [Pager]
    ones, so access patterns are unchanged for non-pinning callers. *)

type cache

val attach : t -> ?who:string -> ?policy:policy -> frames:int -> Device.t -> cache
(** [attach t ~frames dev] reserves [frames] frames under [who] (default
    ["pager"]) and maps them onto [dev].  [policy] defaults to the
    arena's {!default_policy}. *)

val detach : cache -> unit
(** Flush dirty frames, return the buffers to the pool and release the
    reservation.  Idempotent; using the cache afterwards is a
    programming error.  The owner's cumulative counters survive in
    {!owners}. *)

val cache_device : cache -> Device.t

val cache_policy : cache -> policy

val cache_frames : cache -> int

val pin : cache -> int -> unit
(** Fault the block in (counting a hit or miss as any access does) and
    increment its pin count; a pinned frame is never chosen for
    eviction.  @raise Memory_budget.Exhausted via the fault when every
    frame is already pinned. *)

val unpin : cache -> int -> unit
(** @raise Invalid_argument when the block is not resident or not
    pinned. *)

val pinned : cache -> int -> int
(** Current pin count of a block (0 when not resident). *)

val read_byte : cache -> int -> char

val write_byte : cache -> int -> char -> unit
(** Extends the device as needed; the touched frame becomes dirty. *)

val read : cache -> pos:int -> len:int -> string

val write : cache -> pos:int -> string -> unit

val read_page : cache -> int -> string
(** Whole-block read.  @raise Invalid_argument on an unallocated
    block. *)

val write_page : cache -> int -> string -> unit
(** Whole-block write, zero-padded to the block size.  Extends the
    device as needed.  @raise Invalid_argument when the page exceeds the
    block size. *)

val flush : cache -> unit
(** Write back every dirty resident frame. *)

val hits : cache -> int

val misses : cache -> int

val evictions : cache -> int

val writebacks : cache -> int

(** {1 Per-owner accounting} *)

type owner_stats = {
  held : int;        (** frames reserved right now *)
  peak : int;        (** high-water mark of [held] *)
  hits : int;        (** cache hits (0 for pure leases) *)
  misses : int;
  evictions : int;
  writebacks : int;
}

val owners : t -> (string * owner_stats) list
(** Every owner the arena has ever seen, sorted by name.  Cumulative
    cache counters survive {!detach}/{!close_lease} so end-of-run
    metrics are complete. *)

val totals : t -> owner_stats
(** Sum over {!owners}. *)
