(** Block-I/O accounting.

    The paper's primary performance metric is the number of block I/Os
    ("disk accesses").  Every {!Device.t} owns an [Io_stats.t]; every block
    read and write increments it.  Stats are plain mutable counters so they
    can be snapshotted and diffed around a phase of an algorithm. *)

type t = {
  mutable reads : int;   (** number of blocks read from the device *)
  mutable writes : int;  (** number of blocks written to the device *)
}

val create : unit -> t
(** Fresh zeroed counters. *)

val record_read : t -> unit
val record_write : t -> unit

val total : t -> int
(** [total s] is [s.reads + s.writes]. *)

val reset : t -> unit

val snapshot : t -> t
(** An independent copy of the current counter values. *)

val diff : t -> t -> t
(** [diff now before] is the component-wise difference, i.e. the I/Os that
    happened between the [before] snapshot and [now]. *)

val add : t -> t -> t
(** Component-wise sum (functional; inputs unchanged). *)

val accumulate : into:t -> t -> unit
(** [accumulate ~into s] adds [s]'s counters into [into]. *)

val pp : Format.formatter -> t -> unit
(** Prints as ["{reads=<r>; writes=<w>; total=<t>}"]. *)

val to_string : t -> string

(** Per-operation latency distributions: a pair of log2 histograms
    (read/write), filled by the [Layer.timed] middleware.  Bucket layout
    mirrors [Obs.Histogram]: bucket [i] counts values with bit-length
    [i], i.e. upper bound [2^i] (first bucket [< 1], last unbounded). *)
module Latency : sig
  type histo

  type t = { read : histo; write : histo }

  val create : unit -> t
  (** Fresh zeroed histograms. *)

  val observe : histo -> int -> unit
  (** Record one latency sample (ns; negative samples clamp to 0). *)

  val count : histo -> int
  val sum_ns : histo -> int
  val max_ns : histo -> int

  val buckets : histo -> (int * int) list
  (** Non-empty buckets as [(upper_bound, count)], ascending. *)

  val percentile : histo -> float -> int
  (** [percentile h q] for [q] in [0,1]: the bucket upper bound at which
      the cumulative count reaches [q * count], capped at the observed
      max; 0 when empty. *)

  val accumulate : into:t -> t -> unit
  (** Merge [src]'s samples into [into]. *)
end
