(** Low-level binary codecs shared by the substrate and the sorters.

    Records on the external stacks, in sorted runs and in merge-sort
    temporaries are framed with these primitives: LEB128-style varints for
    small integers and length-prefixed byte strings.  Two encode paths share
    the same wire format: the historical [Buffer.t] appenders, and the
    allocation-free {!Enc} growable-bytes encoder used on hot paths.
    Decoding reads from a [string] through a mutable cursor, either
    materializing values or — via the [slice]/[skip] variants — returning
    offsets into the frame without copying. *)

(** {1 Encoding (Buffer-based)} *)

val put_varint : Buffer.t -> int -> unit
(** Append a non-negative integer as a LEB128 varint (7 bits per byte,
    high bit = continuation).  @raise Invalid_argument on negatives. *)

val put_zigzag : Buffer.t -> int -> unit
(** Append a possibly-negative integer using zigzag + varint coding.
    Covers the full [int] range including [min_int]/[max_int]. *)

val put_string : Buffer.t -> string -> unit
(** Append a varint length followed by the raw bytes. *)

val put_u8 : Buffer.t -> int -> unit
(** Append one byte (the low 8 bits of the argument). *)

val put_u32 : Buffer.t -> int -> unit
(** Append a fixed-width 32-bit little-endian unsigned integer. *)

val put_f64 : Buffer.t -> float -> unit
(** Append a fixed-width IEEE-754 double, little-endian. *)

(** {1 Encoding (preallocated bytes)} *)

(** A reusable growable byte encoder for inner loops: one backing [Bytes.t]
    that doubles on demand and is reused across records via {!Enc.clear},
    with bounds checked once per append and [unsafe_set] stores.  Produces
    byte-for-byte the same wire format as the [Buffer.t] appenders. *)
module Enc : sig
  type t

  val create : ?capacity:int -> unit -> t
  val clear : t -> unit
  (** Reset length to zero; the backing buffer is retained. *)

  val length : t -> int
  val add_varint : t -> int -> unit
  val add_uvarint : t -> int -> unit
  (** Emit the raw 63-bit pattern (logical shifts, accepts "negative" ints). *)

  val add_zigzag : t -> int -> unit
  val add_string : t -> string -> unit
  val add_substring : t -> string -> int -> int -> unit
  (** [add_substring t s off len]: length-prefix then [len] bytes of [s]
      starting at [off], without an intermediate copy. *)

  val add_raw : t -> string -> unit
  (** Append raw bytes with no length prefix. *)

  val add_u8 : t -> int -> unit
  val add_u32 : t -> int -> unit
  val add_f64 : t -> float -> unit

  val contents : t -> string
  (** Copy out the encoded bytes (the only allocation on the encode path). *)

  val blit : t -> bytes -> int -> unit
  (** [blit t dst off] copies the encoded bytes into [dst] at [off]. *)
end

(** {1 Decoding} *)

type cursor = {
  buf : string;
  mutable pos : int;
}
(** A read cursor over an immutable string. *)

exception Corrupt of string
(** Raised by all [get_*] functions on truncated or malformed input. *)

val cursor : ?pos:int -> string -> cursor

val at_end : cursor -> bool
(** True when the cursor has consumed the whole string. *)

val need : cursor -> int -> unit
(** [need c n] checks that [n] bytes remain.  @raise Corrupt otherwise. *)

val get_varint : cursor -> int
val get_zigzag : cursor -> int
val get_string : cursor -> string
val get_u8 : cursor -> int
val get_u32 : cursor -> int
val get_f64 : cursor -> float

val get_string_slice : cursor -> int * int
(** Like {!get_string} but returns [(offset, length)] into [cursor.buf]
    instead of copying the bytes out. *)

val skip_string : cursor -> unit
(** Advance past a length-prefixed string without materializing it. *)

val skip_varint : cursor -> unit
(** Advance past one varint without decoding its value. *)

val compare_sub : string -> int -> int -> string -> int -> int -> int
(** [compare_sub a ao al b bo bl] compares the slices [a.[ao..ao+al)] and
    [b.[bo..bo+bl)] in [String.compare] order, without allocating. *)

(** {1 Conversions} *)

val zigzag_of_int : int -> int
val int_of_zigzag : int -> int

(** {1 Fixed-width access into [bytes]} *)

val set_u32_at : bytes -> int -> int -> unit
(** [set_u32_at b off v] stores [v] as 32-bit LE at offset [off]. *)

val get_u32_at : string -> int -> int
(** [get_u32_at s off] reads a 32-bit LE unsigned integer at [off]. *)
