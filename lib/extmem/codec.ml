exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

let put_varint buf n =
  if n < 0 then invalid_arg "Codec.put_varint: negative";
  let rec go n =
    if n < 0x80 then Buffer.add_char buf (Char.chr n)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7f)));
      go (n lsr 7)
    end
  in
  go n

(* Emit the raw 63-bit pattern of [z] as a varint: logical shifts only, so
   "negative" ints (bit 62 set) encode as 9-byte varints instead of being
   rejected.  Same bytes as [put_varint] for non-negative inputs. *)
let put_uvarint buf z =
  let rec go z =
    if z land lnot 0x7f = 0 then Buffer.add_char buf (Char.chr z)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (z land 0x7f)));
      go (z lsr 7)
    end
  in
  go z

let zigzag_of_int n = (n lsl 1) lxor (n asr 62)
let int_of_zigzag z = (z lsr 1) lxor (-(z land 1))

let put_zigzag buf n = put_uvarint buf (zigzag_of_int n)

let put_string buf s =
  put_varint buf (String.length s);
  Buffer.add_string buf s

let put_u8 buf n = Buffer.add_char buf (Char.chr (n land 0xff))

let put_u32 buf n =
  Buffer.add_char buf (Char.chr (n land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 24) land 0xff))

let put_f64 buf f =
  let bits = Int64.bits_of_float f in
  for i = 0 to 7 do
    Buffer.add_char buf (Char.chr (Int64.to_int (Int64.shift_right_logical bits (8 * i)) land 0xff))
  done

module Enc = struct
  type t = { mutable buf : Bytes.t; mutable len : int }

  let create ?(capacity = 256) () = { buf = Bytes.create (max 16 capacity); len = 0 }
  let clear t = t.len <- 0
  let length t = t.len

  let ensure t extra =
    let need = t.len + extra in
    if need > Bytes.length t.buf then begin
      let cap = ref (Bytes.length t.buf * 2) in
      while !cap < need do
        cap := !cap * 2
      done;
      let b = Bytes.create !cap in
      Bytes.blit t.buf 0 b 0 t.len;
      t.buf <- b
    end

  let add_u8 t n =
    ensure t 1;
    Bytes.unsafe_set t.buf t.len (Char.unsafe_chr (n land 0xff));
    t.len <- t.len + 1

  (* Worst case 9 bytes for a 63-bit int; reserve once, then unsafe stores. *)
  let add_uvarint t z =
    ensure t 9;
    let b = t.buf in
    let i = ref t.len in
    let z = ref z in
    while !z land lnot 0x7f <> 0 do
      Bytes.unsafe_set b !i (Char.unsafe_chr (0x80 lor (!z land 0x7f)));
      incr i;
      z := !z lsr 7
    done;
    Bytes.unsafe_set b !i (Char.unsafe_chr !z);
    t.len <- !i + 1

  let add_varint t n =
    if n < 0 then invalid_arg "Codec.Enc.add_varint: negative";
    add_uvarint t n

  let add_zigzag t n = add_uvarint t (zigzag_of_int n)

  let add_string t s =
    let n = String.length s in
    add_varint t n;
    ensure t n;
    Bytes.blit_string s 0 t.buf t.len n;
    t.len <- t.len + n

  let add_substring t s off len =
    add_varint t len;
    ensure t len;
    Bytes.blit_string s off t.buf t.len len;
    t.len <- t.len + len

  let add_raw t s =
    let n = String.length s in
    ensure t n;
    Bytes.blit_string s 0 t.buf t.len n;
    t.len <- t.len + n

  let add_u32 t v =
    ensure t 4;
    let b = t.buf and i = t.len in
    Bytes.unsafe_set b i (Char.unsafe_chr (v land 0xff));
    Bytes.unsafe_set b (i + 1) (Char.unsafe_chr ((v lsr 8) land 0xff));
    Bytes.unsafe_set b (i + 2) (Char.unsafe_chr ((v lsr 16) land 0xff));
    Bytes.unsafe_set b (i + 3) (Char.unsafe_chr ((v lsr 24) land 0xff));
    t.len <- i + 4

  let add_f64 t f =
    ensure t 8;
    Bytes.set_int64_le t.buf t.len (Int64.bits_of_float f);
    t.len <- t.len + 8

  let contents t = Bytes.sub_string t.buf 0 t.len
  let blit t dst dstoff = Bytes.blit t.buf 0 dst dstoff t.len
end

type cursor = {
  buf : string;
  mutable pos : int;
}

let cursor ?(pos = 0) buf = { buf; pos }

let at_end c = c.pos >= String.length c.buf

let need c n =
  if c.pos + n > String.length c.buf then
    corrupt "Codec: truncated input (need %d bytes at %d, have %d)" n c.pos (String.length c.buf)

let get_u8 c =
  need c 1;
  let b = Char.code (String.unsafe_get c.buf c.pos) in
  c.pos <- c.pos + 1;
  b

let get_varint c =
  let rec go shift acc =
    if shift > 62 then corrupt "Codec: varint too long";
    let b = get_u8 c in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let get_zigzag c = int_of_zigzag (get_varint c)

let get_string c =
  let n = get_varint c in
  need c n;
  let s = String.sub c.buf c.pos n in
  c.pos <- c.pos + n;
  s

let get_string_slice c =
  let n = get_varint c in
  need c n;
  let off = c.pos in
  c.pos <- off + n;
  (off, n)

let skip_string c = ignore (get_string_slice c : int * int)

let skip_varint c =
  let rec go () = if get_u8 c land 0x80 <> 0 then go () in
  go ()

let get_u32 c =
  need c 4;
  let b i = Char.code (String.unsafe_get c.buf (c.pos + i)) in
  let v = b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24) in
  c.pos <- c.pos + 4;
  v

let get_f64 c =
  need c 8;
  let b i = Char.code (String.unsafe_get c.buf (c.pos + i)) in
  let lo = b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24) in
  let hi = b 4 lor (b 5 lsl 8) lor (b 6 lsl 16) lor (b 7 lsl 24) in
  c.pos <- c.pos + 8;
  Int64.float_of_bits
    (Int64.logor (Int64.of_int lo) (Int64.shift_left (Int64.of_int hi) 32))

(* Lexicographic byte compare of two substrings, same order as
   [String.compare] restricted to the slices. *)
let compare_sub a ao al b bo bl =
  let n = if al < bl then al else bl in
  let rec go i =
    if i = n then Stdlib.compare al bl
    else
      let ca = String.unsafe_get a (ao + i) and cb = String.unsafe_get b (bo + i) in
      if Char.equal ca cb then go (i + 1) else Char.compare ca cb
  in
  go 0

let set_u32_at b off v =
  Bytes.set b off (Char.chr (v land 0xff));
  Bytes.set b (off + 1) (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b (off + 2) (Char.chr ((v lsr 16) land 0xff));
  Bytes.set b (off + 3) (Char.chr ((v lsr 24) land 0xff))

let get_u32_at s off =
  let b i = Char.code s.[off + i] in
  b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24)
