(** Block devices with exact I/O accounting, built as a composable stack.

    A device is a linear array of fixed-size blocks.  All data that is
    "on disk" in the sense of the external-memory model of Aggarwal and
    Vitter lives on a device; every whole-block read or write is counted in
    the device's {!Io_stats.t}.  This is the reproduction's substitute for
    TPIE: the paper uses TPIE for explicit control and detailed accounting
    of I/O operations, which is exactly what this module provides.

    Internally a device is a raw {!Backend.t} (in-memory or file; see
    {!Backend}) wrapped in a stack of {!Layer} middleware.  The bottom
    layer is always the accounting layer feeding {!stats}; further layers —
    tracing ({!Trace.attach}), fault injection ({!Layer.faulty}), simulated
    cost ({!attach_cost}) — can be stacked freely with {!push_layer}, at
    construction time or later, and {e compose}: installing one never
    displaces another.  Devices are normally built from a textual spec via
    {!Device_spec}.

    Devices are append-allocated: {!allocate} extends the device and
    returns the index of the first new block.  Reading a block that was
    allocated but never written yields zeroes. *)

type t

type op = Backend.op =
  | Read
  | Write

exception Fault of op * int
(** Alias of {!Backend.Fault}, raised by fault-injection layers. *)

val of_backend : ?layers:Layer.t list -> Backend.t -> t
(** Wrap a raw backend into a device.  An accounting layer feeding
    {!stats} is always installed at the bottom of the stack; [layers] are
    stacked above it, head of the list outermost. *)

val in_memory : ?name:string -> block_size:int -> unit -> t
(** [in_memory ~block_size ()] is a fresh virtual disk.  [block_size] must
    be positive. *)

val file : ?name:string -> block_size:int -> path:string -> unit -> t
(** [file ~block_size ~path ()] opens (creating or truncating) [path] as a
    block device backed by the real file system. *)

val of_string : ?name:string -> block_size:int -> string -> t
(** [of_string ~block_size s] is an in-memory device pre-loaded with the
    bytes of [s] (zero-padded to a whole number of blocks); its byte length
    is recorded so {!byte_length} returns [String.length s].  Initial
    loading is not counted as I/O. *)

val load_string : t -> string -> unit
(** Preload the device with the bytes of a string through the raw backend:
    no I/O is counted and no middleware observes it.  Records the byte
    length.  Works on any backend (used to stage real input files onto
    file-backed devices). *)

val push_layer : t -> Layer.t -> unit
(** Stack one more middleware layer on top of the device's current stack.
    The new layer sees each subsequent I/O first. *)

val remove_layer : t -> Layer.t -> bool
(** Remove a previously pushed layer (compared by physical equality) from
    anywhere in the stack, rebuilding the stack without it.  Returns
    [false] when the layer is not on this device.  Layers keep their state
    in the layer value, so the surviving layers observe no discontinuity.
    {!Trace.detach} is built on this. *)

val attach_cost : ?params:Cost_model.params -> t -> Cost_model.t
(** Push a {!Layer.costed} layer with a fresh meter and return the meter;
    {!simulated_ms} reports its elapsed time from now on. *)

val layers : t -> string list
(** Names of the stacked layers, outermost first; always ends with
    ["stats"]. *)

val name : t -> string
val block_size : t -> int

val block_count : t -> int
(** Number of allocated blocks. *)

val byte_length : t -> int
(** Logical byte length of the device contents, as recorded by
    {!set_byte_length} (defaults to [block_count * block_size]). *)

val set_byte_length : t -> int -> unit
(** Record the logical byte length (writers call this on [close] so readers
    know where the data ends within the last block). *)

val stats : t -> Io_stats.t
(** The device's I/O counters (live; mutated by every read/write). *)

val cost : t -> Cost_model.t option
(** The meter installed by {!attach_cost} (or by a [cost] spec layer). *)

val simulated_ms : t -> float
(** Simulated time charged to this device's cost meter; [0.] when no cost
    layer is attached. *)

val allocate : t -> int -> int
(** [allocate dev n] extends the device by [n] blocks and returns the index
    of the first one.  Allocation itself performs no I/O. *)

val read_block : t -> int -> bytes -> unit
(** [read_block dev i buf] reads block [i] into [buf] (which must be at
    least [block_size] long) and counts one read.
    @raise Invalid_argument if [i] is out of range. *)

val write_block : t -> int -> bytes -> unit
(** [write_block dev i buf] writes [buf]'s first [block_size] bytes to
    block [i] and counts one write.  Writing one block past the end
    auto-allocates.  @raise Invalid_argument if [i] is further out of
    range. *)

val contents : t -> string
(** The whole device contents as a string of {!byte_length} bytes (not
    counted as I/O; for tests and for writing final output files). *)

val flush : t -> unit
(** Flush the stack down to the backend (no-op for the built-in ones). *)

val close : t -> unit
(** Release OS resources (no-op for in-memory devices). *)
