type t = {
  mutable reads : int;
  mutable writes : int;
}

let create () = { reads = 0; writes = 0 }

let record_read s = s.reads <- s.reads + 1

let record_write s = s.writes <- s.writes + 1

let total s = s.reads + s.writes

let reset s =
  s.reads <- 0;
  s.writes <- 0

let snapshot s = { reads = s.reads; writes = s.writes }

let diff now before = { reads = now.reads - before.reads; writes = now.writes - before.writes }

let add a b = { reads = a.reads + b.reads; writes = a.writes + b.writes }

let accumulate ~into s =
  into.reads <- into.reads + s.reads;
  into.writes <- into.writes + s.writes

let pp ppf s =
  Format.fprintf ppf "{reads=%d; writes=%d; total=%d}" s.reads s.writes (total s)

let to_string s = Format.asprintf "%a" pp s

module Latency = struct
  (* log2 latency histograms, one per direction; bucket layout mirrors
     Obs.Histogram so both render identically in reports *)
  let n_buckets = 63

  type histo = {
    mutable h_count : int;
    mutable h_sum : int;
    mutable h_max : int;
    h_buckets : int array;
  }

  type t = { read : histo; write : histo }

  let make_histo () = { h_count = 0; h_sum = 0; h_max = 0; h_buckets = Array.make n_buckets 0 }
  let create () = { read = make_histo (); write = make_histo () }

  let bucket_index v =
    if v <= 0 then 0
    else begin
      (* index = bit length of v, capped *)
      let rec bits acc v = if v = 0 then acc else bits (acc + 1) (v lsr 1) in
      let b = bits 0 v in
      if b >= n_buckets then n_buckets - 1 else b
    end

  let bucket_bound i = if i = 0 then 1 else if i >= n_buckets - 1 then max_int else 1 lsl i

  let observe h v =
    let v = if v < 0 then 0 else v in
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum + v;
    if v > h.h_max then h.h_max <- v;
    let i = bucket_index v in
    h.h_buckets.(i) <- h.h_buckets.(i) + 1

  let count h = h.h_count
  let sum_ns h = h.h_sum
  let max_ns h = h.h_max

  let buckets h =
    let out = ref [] in
    for i = n_buckets - 1 downto 0 do
      if h.h_buckets.(i) > 0 then out := (bucket_bound i, h.h_buckets.(i)) :: !out
    done;
    !out

  let percentile h q =
    if h.h_count = 0 then 0
    else begin
      let rank = int_of_float (Float.round (q *. float_of_int h.h_count)) in
      let rank = if rank < 1 then 1 else if rank > h.h_count then h.h_count else rank in
      let rec scan i seen =
        if i >= n_buckets then h.h_max
        else
          let seen = seen + h.h_buckets.(i) in
          if seen >= rank then min (bucket_bound i) h.h_max else scan (i + 1) seen
      in
      scan 0 0
    end

  let accumulate ~into src =
    let acc_histo ~into src =
      into.h_count <- into.h_count + src.h_count;
      into.h_sum <- into.h_sum + src.h_sum;
      if src.h_max > into.h_max then into.h_max <- src.h_max;
      Array.iteri (fun i c -> into.h_buckets.(i) <- into.h_buckets.(i) + c) src.h_buckets
    in
    acc_histo ~into:into.read src.read;
    acc_histo ~into:into.write src.write
end
