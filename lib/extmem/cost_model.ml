type params = {
  seek_ms : float;
  read_ms : float;
  write_ms : float;
}

let hdd = { seek_ms = 8.0; read_ms = 0.05; write_ms = 0.06 }

let ssd = { seek_ms = 0.05; read_ms = 0.01; write_ms = 0.015 }

type t = {
  params : params;
  mutable charged : int;
  mutable seeks : int;
  mutable elapsed_ms : float;
}

let create ?(params = hdd) () = { params; charged = 0; seeks = 0; elapsed_ms = 0. }

let params t = t.params

let charged t = t.charged

let seeks t = t.seeks

let elapsed_ms t = t.elapsed_ms

let charge t ~sequential op =
  t.charged <- t.charged + 1;
  if not sequential then begin
    t.seeks <- t.seeks + 1;
    t.elapsed_ms <- t.elapsed_ms +. t.params.seek_ms
  end;
  t.elapsed_ms <-
    t.elapsed_ms +. (match op with Backend.Read -> t.params.read_ms | Backend.Write -> t.params.write_ms)

let pp ppf t =
  Format.fprintf ppf "{sim=%.2fms; ios=%d; seeks=%d}" t.elapsed_ms t.charged t.seeks
