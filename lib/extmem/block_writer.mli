(** Sequential, append-only writer over a device.

    Holds exactly one internal-memory block as its buffer; a block write is
    issued each time the buffer fills (so writing [n] bytes costs
    [ceil(n / block_size)] I/Os).  Blocks are allocated from the device as
    needed, so multiple writers on the same device must not be interleaved
    unless each was given a pre-allocated region.

    Beyond raw bytes, the writer offers framed records: {!write_record}
    emits a varint length followed by the payload, which {!Block_reader}
    can consume with [read_record]. *)

type t

val create : ?buffer:bytes -> Device.t -> t
(** Start a stream at the device's current allocation frontier.
    [buffer] supplies the block buffer (typically a [Frame_arena] frame,
    so the writer's memory is accounted to its owner); it must be
    exactly one block long.
    @raise Invalid_argument on a wrong-sized buffer. *)

val write_bytes : t -> bytes -> int -> int -> unit
(** [write_bytes w buf off len] appends [len] bytes of [buf] from [off]. *)

val write_string : t -> string -> unit

val write_char : t -> char -> unit

val write_record : t -> string -> unit
(** Append a varint-length-framed record. *)

val bytes_written : t -> int
(** Bytes appended so far (including any still in the buffer). *)

val position : t -> int
(** Synonym of {!bytes_written}: the stream offset of the next byte. *)

val close : t -> Extent.t
(** Flush the final partial block and return the extent covering the whole
    stream.  The writer must not be used afterwards. *)
