type id = int

type t = {
  dev : Device.t;
  extents : Extent.t Vec.t;
  mutable writing : bool;
}

let create dev = { dev; extents = Vec.create (); writing = false }

let device t = t.dev

let run_count t = Vec.length t.extents

let begin_run ?buffer t =
  if t.writing then invalid_arg "Run_store.begin_run: a run is already open";
  t.writing <- true;
  Block_writer.create ?buffer t.dev

let finish_run t w =
  if not t.writing then invalid_arg "Run_store.finish_run: no open run";
  let extent = Block_writer.close w in
  t.writing <- false;
  Vec.push t.extents extent;
  Vec.length t.extents - 1

let run_extent t id =
  if id < 0 || id >= Vec.length t.extents then
    invalid_arg (Printf.sprintf "Run_store: unknown run id %d" id);
  Vec.get t.extents id

let open_run ?buffer t id = Block_reader.of_extent ?buffer t.dev (run_extent t id)

let read_run ?buffer t id =
  let r = open_run ?buffer t id in
  fun () -> Block_reader.read_record r

let total_run_blocks t = Vec.fold_left (fun acc e -> acc + e.Extent.blocks) 0 t.extents

let total_run_bytes t = Vec.fold_left (fun acc e -> acc + e.Extent.bytes) 0 t.extents
