type id = int

(* A slot is either a finished run (with the device it lives on — worker
   domains write runs to their own scratch devices) or a reservation
   whose payload is still being produced elsewhere. *)
type slot =
  | Ready of { dev : Device.t; extent : Extent.t }
  | Pending

type t = {
  dev : Device.t;
  slots : slot Vec.t;
  mutable writing : bool;
}

let create dev = { dev; slots = Vec.create (); writing = false }

let device t = t.dev

let run_count t = Vec.length t.slots

let begin_run ?buffer t =
  if t.writing then invalid_arg "Run_store.begin_run: a run is already open";
  t.writing <- true;
  Block_writer.create ?buffer t.dev

let finish_run t w =
  if not t.writing then invalid_arg "Run_store.finish_run: no open run";
  let extent = Block_writer.close w in
  t.writing <- false;
  Vec.push t.slots (Ready { dev = t.dev; extent });
  Vec.length t.slots - 1

let reserve t =
  Vec.push t.slots Pending;
  Vec.length t.slots - 1

let check_id t id =
  if id < 0 || id >= Vec.length t.slots then
    invalid_arg (Printf.sprintf "Run_store: unknown run id %d" id)

let install t id ~dev ~extent =
  check_id t id;
  (match Vec.get t.slots id with
  | Pending -> ()
  | Ready _ -> invalid_arg (Printf.sprintf "Run_store.install: run %d is already installed" id));
  Vec.set t.slots id (Ready { dev; extent })

let slot t id =
  check_id t id;
  match Vec.get t.slots id with
  | Ready { dev; extent } -> (dev, extent)
  | Pending -> invalid_arg (Printf.sprintf "Run_store: run %d is pending" id)

let run_extent t id = snd (slot t id)

let open_run ?buffer t id =
  let dev, extent = slot t id in
  Block_reader.of_extent ?buffer dev extent

let read_run ?buffer t id =
  let r = open_run ?buffer t id in
  fun () -> Block_reader.read_record r

let fold_ready f acc t =
  Vec.fold_left (fun acc -> function Ready r -> f acc r.extent | Pending -> acc) acc t.slots

let total_run_blocks t = fold_ready (fun acc e -> acc + e.Extent.blocks) 0 t

let total_run_bytes t = fold_ready (fun acc e -> acc + e.Extent.bytes) 0 t
