(** A buffer pool: random byte access over a device through a bounded set
    of in-memory frames.

    This plays the role of TPIE's block collection / memory manager for
    components that need random access rather than the streaming patterns
    of {!Block_reader}/{!Ext_stack} — e.g. the internal-memory recursive
    sort baseline when it is deliberately run on inputs larger than memory
    to demonstrate paging behaviour, and the [--paged] mode of the
    command-line tools.

    Two classic replacement policies are provided; both write a frame back
    only when it is dirty. *)

type policy =
  | Lru    (** evict the least recently used frame *)
  | Clock  (** second-chance / clock approximation of LRU *)

type t

val create : ?policy:policy -> frames:int -> Device.t -> t
(** [create ~frames dev] is a pool of [frames] (>= 1) block frames over
    [dev].  Default policy is {!Lru}. *)

val device : t -> Device.t

val read_byte : t -> int -> char
(** [read_byte p off] reads the byte at device offset [off], faulting the
    containing block in if needed. *)

val write_byte : t -> int -> char -> unit
(** Write one byte (marks the frame dirty; auto-extends the device when
    writing into the block just past the end). *)

val read : t -> pos:int -> len:int -> string
val write : t -> pos:int -> string -> unit

val read_page : t -> int -> string
(** The whole block as a string (faulting it in if needed).
    @raise Invalid_argument on an unallocated block. *)

val write_page : t -> int -> string -> unit
(** Replace a block's contents (zero-padded to the block size; the device
    is extended as needed).  The write is buffered in the frame until
    eviction or {!flush}. *)

val flush : t -> unit
(** Write back all dirty frames (frames stay resident). *)

val hits : t -> int
(** Number of block accesses served from a resident frame. *)

val misses : t -> int
(** Number of block accesses that required a device read. *)

val evictions : t -> int
(** Number of resident frames replaced to make room for another block. *)

val writebacks : t -> int
(** Number of dirty frames written back to the device (on eviction or
    {!flush}). *)
