(** A buffer pool: random byte access over a device through a bounded set
    of in-memory frames.

    This plays the role of TPIE's block collection / memory manager for
    components that need random access rather than the streaming patterns
    of {!Block_reader}/{!Ext_stack} — e.g. the internal-memory recursive
    sort baseline when it is deliberately run on inputs larger than memory
    to demonstrate paging behaviour, and the [--paged] mode of the
    command-line tools.

    Since the frame-arena refactor this module is a thin view over a
    {!Frame_arena.cache}: the frames, replacement policies, pin counts
    and per-owner accounting all live in the arena.  A pager created
    without [?arena] owns a private unbudgeted arena, which behaves
    exactly like the old standalone pager.  All policies write a frame
    back only when it is dirty. *)

type policy = Frame_arena.policy =
  | Lru    (** evict the least recently used frame *)
  | Clock  (** second-chance / clock approximation of LRU *)
  | Mru    (** evict the most recently used frame *)
  | Stack  (** no-prefetch stack rule: evict the lowest block index *)

type t = Frame_arena.cache

val create : ?arena:Frame_arena.t -> ?who:string -> ?policy:policy -> frames:int -> Device.t -> t
(** [create ~frames dev] is a pool of [frames] (>= 1) block frames over
    [dev].  With [?arena] the frames are drawn from (and accounted to)
    that arena under [who] (default ["pager"]); the default policy is
    then the arena's, otherwise {!Lru}. *)

val device : t -> Device.t

val policy : t -> policy

val read_byte : t -> int -> char
(** [read_byte p off] reads the byte at device offset [off], faulting the
    containing block in if needed. *)

val write_byte : t -> int -> char -> unit
(** Write one byte (marks the frame dirty; auto-extends the device when
    writing into the block just past the end). *)

val read : t -> pos:int -> len:int -> string
val write : t -> pos:int -> string -> unit

val read_page : t -> int -> string
(** The whole block as a string (faulting it in if needed).
    @raise Invalid_argument on an unallocated block. *)

val write_page : t -> int -> string -> unit
(** Replace a block's contents (zero-padded to the block size; the device
    is extended as needed).  The write is buffered in the frame until
    eviction or {!flush}. *)

val pin : t -> int -> unit
(** Fault the block in and protect its frame from eviction until the
    matching {!unpin}.  Pin counts nest. *)

val unpin : t -> int -> unit

val flush : t -> unit
(** Write back all dirty frames (frames stay resident). *)

val detach : t -> unit
(** Flush and return the frames to the arena.  Idempotent. *)

val hits : t -> int
(** Number of block accesses served from a resident frame. *)

val misses : t -> int
(** Number of block accesses that required a device read. *)

val evictions : t -> int
(** Number of resident frames replaced to make room for another block. *)

val writebacks : t -> int
(** Number of dirty frames written back to the device (on eviction or
    {!flush}). *)
