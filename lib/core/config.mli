(** NEXSORT configuration.

    Mirrors the knobs of the paper's experimental setup: block size and
    memory size (the external-memory model's [B] and [M]), the sort
    threshold [t] (§3: sort a complete subtree once its on-stack size
    reaches [t]; §5 finds roughly twice the block size works well), the
    optional depth limit (§3.2), the graceful-degeneration switch (§3.2),
    and the entry encoding (§3.2's compaction techniques). *)

type encoding =
  | Plain   (** names stored inline; explicit end-tag entries *)
  | Dict    (** names dictionary-coded to integers; explicit end-tag
                entries *)
  | Packed  (** dictionary coding plus end-tag elimination: start entries
                carry level numbers, end tags are reconstructed on output.
                Requires a scan-evaluable ordering. *)

type t = {
  block_size : int;     (** bytes per block (the paper uses 64 KiB) *)
  memory_blocks : int;  (** internal-memory blocks available, the model's
                            [m = M/B]; at least 8 *)
  threshold : int;      (** sort threshold [t] in on-stack bytes *)
  depth_limit : int option;
      (** sort only down to this level (root = 1); [None] = head-to-toe *)
  degeneration : bool;
      (** create incomplete sorted runs when an unfinished subtree fills
          memory, making flat inputs cost the same passes as external
          merge sort *)
  root_fusion : bool;
      (** stream the final (root) subtree sort straight into the output
          phase instead of materialising the root run and re-reading it —
          saves two passes over the document *)
  encoding : encoding;
  data_stack_blocks : int;  (** resident window of the data stack (>= 1) *)
  path_stack_blocks : int;  (** resident window of the path stack (>= 2
                                per the paper's analysis) *)
  keep_whitespace : bool;   (** preserve whitespace-only text nodes *)
  device : Extmem.Device_spec.t;
      (** device stack for the sort's internal devices (stacks, runs,
          scratch): backend plus middleware layers; see {!Extmem.Device_spec} *)
  pager_policy : Extmem.Pager.policy;
      (** default replacement policy for frame-arena caches attached
          during the sort (NEXSORT's own streaming path holds no cache,
          so this mainly steers auxiliary structures like the indexed
          merge's B-tree pager); the data stack always pages under the
          paper's no-prefetch stack rule *)
  jobs : int;
      (** worker domains for parallel subtree sorting (1..64); 1 runs
          the sort single-threaded on today's exact code path.  Output
          and I/O counters are identical for every value — see DESIGN's
          "Parallel execution" section *)
  tracer : Obs.Tracer.t;
      (** event-trace sink for the session ({!Obs.Tracer.null} = tracing
          off, the default).  When enabled, every scratch device gets a
          [Layer.timed] latency middleware, phase spans and pool/arena
          events flow onto per-domain tracks, and the CLI flushes the
          trace with [--trace FILE] *)
}

val make :
  ?block_size:int ->
  ?memory_blocks:int ->
  ?threshold:int ->
  ?depth_limit:int ->
  ?degeneration:bool ->
  ?root_fusion:bool ->
  ?encoding:encoding ->
  ?data_stack_blocks:int ->
  ?path_stack_blocks:int ->
  ?keep_whitespace:bool ->
  ?device:Extmem.Device_spec.t ->
  ?pager_policy:Extmem.Pager.policy ->
  ?jobs:int ->
  ?tracer:Obs.Tracer.t ->
  unit ->
  t
(** Defaults: 4 KiB blocks, 64 memory blocks, threshold [2 * block_size],
    no depth limit, degeneration and root fusion on, [Dict] encoding, 2 path-stack
    resident blocks, whitespace dropped, 1 job.  The data-stack window
    defaults to covering twice the threshold (so the stack's oscillation
    between subtree collapses stays resident), clamped so the fixed
    buffers and a 3-block sort arena still fit the memory budget.
    @raise Invalid_argument on inconsistent values (non-positive sizes,
    [memory_blocks < 8], threshold smaller than one block, windows too
    small, jobs outside 1..64). *)

val memory_bytes : t -> int

val scratch_device : t -> name:string -> Extmem.Device.t
(** Build one internal device (stack, run store, scratch) through the
    configured {!field-device} spec, with the config's block size.  When
    the config's tracer is enabled the device carries a timing layer
    (see {!attach_tracing}). *)

val attach_tracing : t -> name:string -> Extmem.Device.t -> unit
(** Push an {!Extmem.Layer.timed} latency middleware onto [dev] wired to
    the config's tracer: per-I/O Complete events named
    [read:<name>]/[write:<name>] plus a registered latency histogram.
    No-op when tracing is disabled.  Used for endpoint (input/output)
    devices the config did not build itself. *)

val attach_trace_observer : t -> name:string -> Extmem.Trace.t -> unit
(** Mirror a [traced] debug layer's block accesses into the tracer as
    [access.read:<name>]/[access.write:<name>] counter events (value =
    block index — a block-position-over-time graph in Perfetto).  No-op
    when tracing is disabled; {!Extmem.Trace.detach} silences it. *)

val validate_ordering : t -> Ordering.t -> unit
(** @raise Invalid_argument when the encoding is [Packed] but the
    ordering is not scan-evaluable (end-tag elimination discards the
    entries that would carry subtree-derived keys). *)

val pp : Format.formatter -> t -> unit
