type encoding =
  | Plain
  | Dict
  | Packed

type t = {
  block_size : int;
  memory_blocks : int;
  threshold : int;
  depth_limit : int option;
  degeneration : bool;
  root_fusion : bool;
  encoding : encoding;
  data_stack_blocks : int;
  path_stack_blocks : int;
  keep_whitespace : bool;
  device : Extmem.Device_spec.t;
  pager_policy : Extmem.Pager.policy;
  jobs : int;
  tracer : Obs.Tracer.t;
}

let make ?(block_size = 4096) ?(memory_blocks = 64) ?threshold ?depth_limit ?(degeneration = true)
    ?(root_fusion = true) ?(encoding = Dict) ?data_stack_blocks ?(path_stack_blocks = 2)
    ?(keep_whitespace = false) ?(device = Extmem.Device_spec.default)
    ?(pager_policy = Extmem.Pager.Lru) ?(jobs = 1) ?(tracer = Obs.Tracer.null) () =
  let threshold = Option.value threshold ~default:(2 * block_size) in
  (* The data stack oscillates: entries accumulate until a subtree reaches
     the threshold and is truncated away.  A window that covers twice the
     threshold keeps that oscillation resident and avoids spilling the
     whole document through the stack device — provided the budget leaves
     the fixed buffers (input, path window, output-location window) and a
     minimal 3-block sort arena. *)
  let data_stack_blocks =
    match data_stack_blocks with
    | Some d -> d
    | None ->
        let fixed = 1 + path_stack_blocks + 1 in
        let want = max (2 * threshold / block_size) ((memory_blocks - fixed) / 3) in
        max 1 (min want (memory_blocks - fixed - 3))
  in
  if block_size < 64 then invalid_arg "Config: block_size must be at least 64 bytes";
  if memory_blocks < 8 then invalid_arg "Config: memory_blocks must be at least 8";
  if threshold < block_size then
    invalid_arg "Config: threshold below the block size causes partial-block runs";
  (match depth_limit with
  | Some d when d < 1 -> invalid_arg "Config: depth_limit must be >= 1"
  | Some _ | None -> ());
  if data_stack_blocks < 1 then invalid_arg "Config: data_stack_blocks must be >= 1";
  if path_stack_blocks < 2 then invalid_arg "Config: path_stack_blocks must be >= 2";
  if jobs < 1 || jobs > 64 then invalid_arg "Config: jobs must be between 1 and 64";
  {
    block_size;
    memory_blocks;
    threshold;
    depth_limit;
    degeneration;
    root_fusion;
    encoding;
    data_stack_blocks;
    path_stack_blocks;
    keep_whitespace;
    device;
    pager_policy;
    jobs;
    tracer;
  }

(* Per-device I/O latency instrumentation: a [Layer.timed] middleware
   whose histograms flush with the trace and whose hook emits one
   Complete event per block I/O onto the emitting domain's track.  Names
   are interned once here, so the hot path is clock reads + ring stores. *)
let attach_tracing t ~name dev =
  let tracer = t.tracer in
  if Obs.Tracer.enabled tracer then begin
    let lat = Extmem.Io_stats.Latency.create () in
    Obs.Tracer.register_latency tracer ~device:name lat;
    let read_id = Obs.Tracer.intern tracer ("read:" ^ name) in
    let write_id = Obs.Tracer.intern tracer ("write:" ^ name) in
    let hook op _block ~start_ns ~dur_ns =
      let id = match op with Extmem.Backend.Read -> read_id | Extmem.Backend.Write -> write_id in
      Obs.Tracer.complete tracer id ~start_ns ~dur_ns
    in
    Extmem.Device.push_layer dev
      (Extmem.Layer.timed ~clock:(fun () -> Obs.Tracer.now_ns tracer) ~hook lat)
  end

(* Unify the debug access-pattern layer with the event tracer: a spec's
   [traced] layer keeps its in-memory block list, and additionally mirrors
   each access as a counter event (value = block index), which renders as
   a block-position-over-time graph on the emitting domain's track. *)
let attach_trace_observer t ~name tr =
  let tracer = t.tracer in
  if Obs.Tracer.enabled tracer then begin
    let read_id = Obs.Tracer.intern tracer ("access.read:" ^ name) in
    let write_id = Obs.Tracer.intern tracer ("access.write:" ^ name) in
    Extmem.Trace.set_observer tr (fun op block ->
        let id = match op with Extmem.Backend.Read -> read_id | Extmem.Backend.Write -> write_id in
        Obs.Tracer.counter tracer id block)
  end

let scratch_device t ~name =
  let built = Extmem.Device_spec.build_scratch t.device ~name ~block_size:t.block_size in
  let dev = built.Extmem.Device_spec.device in
  attach_tracing t ~name dev;
  Option.iter (attach_trace_observer t ~name) built.Extmem.Device_spec.trace;
  dev

let memory_bytes t = t.block_size * t.memory_blocks

let validate_ordering t ordering =
  match t.encoding with
  | Packed when not (Ordering.all_scan_evaluable ordering) ->
      invalid_arg
        "Config: Packed encoding eliminates end-tag entries and cannot carry subtree-derived \
         keys; use a scan-evaluable ordering or the Dict encoding"
  | Packed | Plain | Dict -> ()

let pp_encoding ppf = function
  | Plain -> Format.pp_print_string ppf "plain"
  | Dict -> Format.pp_print_string ppf "dict"
  | Packed -> Format.pp_print_string ppf "packed"

let pp ppf t =
  Format.fprintf ppf
    "{B=%dB; M=%d blocks (%d KiB); t=%dB; depth_limit=%s; degeneration=%b; fusion=%b; encoding=%a; \
     policy=%s}"
    t.block_size t.memory_blocks
    (memory_bytes t / 1024)
    t.threshold
    (match t.depth_limit with Some d -> string_of_int d | None -> "none")
    t.degeneration t.root_fusion pp_encoding t.encoding
    (Extmem.Frame_arena.policy_to_string t.pager_policy)
