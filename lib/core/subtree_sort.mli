(** Sorting one complete subtree into a sorted run (Figure 4, line 11).

    Depending on the subtree's size, NEXSORT sorts it with the
    internal-memory recursive algorithm (build the tree, reorder child
    lists, serialize) or — when it exceeds the arena — with a key-path
    external merge sort that streams the subtree's entries into
    {!Keypath} records, sorts them with {!Extsort.External_sort}, and
    reconstructs the run from the sorted record stream.

    Entries arrive and travel as {!Entry.View.t}s over their original
    encoded payloads: the sorts read levels, positions and keys off the
    encoded bytes and re-emit the payloads verbatim — names, attributes
    and text are never decoded, and nothing is re-encoded (synthesized
    End entries excepted).

    The module also implements the incomplete sorted runs of the
    graceful-degeneration extension (§3.2): a {e fragment} is a sorted
    run holding a sorted subsequence of one element's children, each
    child chunk preceded by a small header carrying its (key, pos), so
    fragments can later be merged by key into the element's complete
    run.

    All functions honour the session's depth limit: the child list of an
    element at level L is sorted only when L <= d (root = level 1). *)

type node = Forest.node = {
  view : Entry.View.t;      (** [Vstart], [Vtext] or [Vrun_ptr] — never [Vend] *)
  mutable key : Key.t;      (** resolved sibling key *)
  mutable children : node list;
}

val build_forest : Entry.View.t list -> node list
(** Rebuild the forest structure of an entry sequence (document order,
    levels consistent).  [End] entries close elements and contribute
    their keys; in their absence ({!Config.Packed}) nesting is recovered
    from the level numbers. *)

val sort_forest : depth_limit:int option -> node list -> node list
(** Recursively order sibling lists by [(key, pos)], down to the depth
    limit.  The input forest is a sibling list; its nodes' levels decide
    whether it is itself sorted. *)

val forest_size : node list -> int
(** Total node count (for reporting). *)

val sort_in_memory : Session.t -> Entry.View.t list -> Extmem.Run_store.id
(** Internal-memory recursive sort of a complete subtree (first entry =
    its root's [Start]); writes and registers the sorted run. *)

val sort_in_memory_to : Session.t -> Entry.View.t list -> (string -> unit) -> unit
(** Like {!sort_in_memory} but streaming the encoded entries to an
    arbitrary sink instead of a run. *)

val sort_in_memory_source : Session.t -> Entry.View.t list -> unit -> string option
(** Pull-stream variant for pipeline fusion: sorts eagerly (the forest
    is in memory anyway), then yields the encoded entries of the sorted
    pre-order walk one at a time. *)

val sort_external :
  Session.t ->
  input:(unit -> Entry.View.t option) ->
  scan:[ `Forward | `Reverse ] ->
  Extmem.Run_store.id * Extsort.External_sort.stats
(** Key-path external merge sort of a subtree too large for memory.
    [`Forward] consumes entries in document order (keys must be on
    [Start] entries — scan-evaluable orderings); [`Reverse] consumes
    them top-of-stack first as popped from the data stack (keys taken
    from [End] entries, which always precede their subtrees in reverse
    order).  Writes and registers the complete sorted run. *)

val sort_external_to :
  Session.t ->
  input:(unit -> Entry.View.t option) ->
  scan:[ `Forward | `Reverse ] ->
  (string -> unit) ->
  Extsort.External_sort.stats
(** Sink-streaming variant of {!sort_external}. *)

type streamed = {
  pull : unit -> string option;
      (** encoded sorted entries; exhausting the stream releases the
          final merge's memory and retires the scratch device *)
  close : unit -> unit;  (** idempotent early release *)
  stats : Extsort.External_sort.stats;
}

val sort_external_source :
  Session.t ->
  input:(unit -> Entry.View.t option) ->
  scan:[ `Forward | `Reverse ] ->
  streamed
(** Pull-stream variant of {!sort_external_to} for pipeline fusion: run
    formation and all intermediate merge passes run here (consuming
    [input]); the final merge — with End-entry reconstruction fused on
    top — is exposed as the returned pull, so the sorted entries stream
    straight into their consumer without a materialised output run.
    Reclaims borrowed stack blocks first ({!Session.reclaim}); the final
    merge's fan-in stays reserved until the stream ends or [close]. *)

val write_fragment : Session.t -> node list -> Extmem.Run_store.id
(** Write a sorted forest (children of one open element) as an
    incomplete sorted run with per-chunk headers. *)

val merge_fragments :
  Session.t ->
  start_view:Entry.View.t ->
  fragments:Extmem.Run_store.id list ->
  Extmem.Run_store.id
(** Merge an element's fragment runs (in creation order) into its
    complete sorted run, wrapped in the element's start (and, unless
    packed, end) entry.  Merges multi-pass when the fragment count
    exceeds the memory fan-in. *)

val merge_fragments_to :
  Session.t ->
  start_view:Entry.View.t ->
  fragments:Extmem.Run_store.id list ->
  (string -> unit) ->
  unit
(** Sink-streaming variant of {!merge_fragments}. *)

val merge_fragments_source :
  Session.t ->
  start_view:Entry.View.t ->
  fragments:Extmem.Run_store.id list ->
  (unit -> string option) * (unit -> unit)
(** Pull-stream variant for pipeline fusion: reduces the fragments to
    the memory fan-in (intermediate passes reserve their buffers from
    the budget, clamped to the 2-way floor), reserves the final fan-in,
    and returns [(pull, close)] over the wrapped merged element.  The
    reservation is released at stream end or [close] (idempotent). *)
