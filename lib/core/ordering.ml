type criterion =
  | By_tag
  | By_attr of string
  | By_text
  | By_path of string list
  | Document_order
  | Composite of criterion list
  | Desc of criterion

type t = {
  rules : (string * criterion) list;
  default : criterion;
}

let make ?(rules = []) default = { rules; default }

let by_attr name = make (By_attr name)

let by_tag = make By_tag

let document_order = make Document_order

let criterion_for t tag =
  match List.assoc_opt tag t.rules with
  | Some c -> c
  | None -> t.default

let rec scan_evaluable = function
  | By_tag | By_attr _ | Document_order -> true
  | By_text | By_path _ -> false
  | Composite l -> List.for_all scan_evaluable l
  | Desc c -> scan_evaluable c

let all_scan_evaluable t =
  scan_evaluable t.default && List.for_all (fun (_, c) -> scan_evaluable c) t.rules

(* key of a start tag, for scan-evaluable criteria only; attribute
   values come through a lookup function so callers holding packed
   events need not build an assoc list *)
let rec key_of_start_criterion criterion name lookup =
  match criterion with
  | Document_order -> Some Key.Null
  | By_tag -> Some (Key.of_string name)
  | By_attr a ->
      Some
        (match lookup a with
        | Some v -> Key.of_string v
        | None -> Key.Null)
  | By_text | By_path _ -> None
  | Desc c -> Option.map (fun k -> Key.Rev k) (key_of_start_criterion c name lookup)
  | Composite l ->
      let parts = List.map (fun c -> key_of_start_criterion c name lookup) l in
      if List.for_all Option.is_some parts then Some (Key.Tuple (List.map Option.get parts))
      else None

let key_of_start t name attrs =
  key_of_start_criterion (criterion_for t name) name (fun a -> List.assoc_opt a attrs)

(* ---- in-memory evaluation (oracle) ---- *)

let direct_text (e : Xmlio.Tree.element) =
  let b = Buffer.create 16 in
  List.iter
    (function
      | Xmlio.Tree.Text s -> Buffer.add_string b s
      | Xmlio.Tree.Element _ -> ())
    e.Xmlio.Tree.children;
  Buffer.contents b

let rec all_text (e : Xmlio.Tree.element) =
  let b = Buffer.create 16 in
  List.iter
    (function
      | Xmlio.Tree.Text s -> Buffer.add_string b s
      | Xmlio.Tree.Element c -> Buffer.add_string b (all_text c))
    e.Xmlio.Tree.children;
  Buffer.contents b

let rec find_path (e : Xmlio.Tree.element) = function
  | [] -> Some e
  | seg :: rest ->
      let rec first = function
        | [] -> None
        | Xmlio.Tree.Element c :: _ when c.Xmlio.Tree.name = seg -> find_path c rest
        | _ :: tl -> first tl
      in
      first e.Xmlio.Tree.children

let rec key_of_tree_criterion criterion (e : Xmlio.Tree.element) =
  match criterion with
  | Document_order -> Key.Null
  | By_tag -> Key.of_string e.Xmlio.Tree.name
  | By_attr a -> (
      match List.assoc_opt a e.Xmlio.Tree.attrs with
      | Some v -> Key.of_string v
      | None -> Key.Null)
  | By_text -> Key.of_string (direct_text e)
  | By_path path -> (
      match find_path e path with
      | Some target -> Key.of_string (all_text target)
      | None -> Key.Null)
  | Desc c -> Key.Rev (key_of_tree_criterion c e)
  | Composite l -> Key.Tuple (List.map (fun c -> key_of_tree_criterion c e) l)

let key_of_tree t (e : Xmlio.Tree.element) = key_of_tree_criterion (criterion_for t e.Xmlio.Tree.name) e

(* ---- streaming evaluation ---- *)

module Evaluator = struct
  (* the state of one subtree-derived leaf criterion of one open element *)
  type slot =
    | Done of Key.t
    | Text_acc of Buffer.t
    | Path_acc of {
        path : string array;
        mutable progress : int;
        mutable capturing : bool;
        mutable result : Buffer.t option;
        mutable rel_depth : int;
      }

  type frame = {
    shape : criterion;
    slots : slot array; (* leaf slots, in the pre-order of [shape] *)
  }

  type eval = {
    spec : t;
    mutable frames : frame list; (* innermost first *)
  }

  let create spec = { spec; frames = [] }

  let depth e = List.length e.frames

  (* allocate the leaf slots of a criterion, in pre-order *)
  let slots_of criterion name lookup =
    let acc = ref [] in
    let rec go = function
      | (By_tag | By_attr _ | Document_order) as c ->
          acc := Done (Option.get (key_of_start_criterion c name lookup)) :: !acc
      | By_text -> acc := Text_acc (Buffer.create 16) :: !acc
      | By_path path ->
          acc :=
            Path_acc
              { path = Array.of_list path; progress = 0; capturing = false; result = None;
                rel_depth = 0 }
            :: !acc
      | Desc c -> go c
      | Composite l -> List.iter go l
    in
    go criterion;
    Array.of_list (List.rev !acc)

  (* assemble the final key from the filled slots *)
  let assemble frame =
    let idx = ref 0 in
    let next_slot () =
      let s = frame.slots.(!idx) in
      incr idx;
      s
    in
    let rec go = function
      | By_tag | By_attr _ | Document_order -> (
          match next_slot () with
          | Done k -> k
          | Text_acc _ | Path_acc _ -> assert false)
      | By_text -> (
          match next_slot () with
          | Text_acc b -> Key.of_string (Buffer.contents b)
          | Done k -> k
          | Path_acc _ -> assert false)
      | By_path _ -> (
          match next_slot () with
          | Path_acc p -> (
              match p.result with
              | Some b -> Key.of_string (Buffer.contents b)
              | None -> Key.Null)
          | Done k -> k
          | Text_acc _ -> assert false)
      | Desc c -> Key.Rev (go c)
      | Composite l -> Key.Tuple (List.map go l)
    in
    go frame.shape

  let all_done frame =
    Array.for_all (function Done _ -> true | Text_acc _ | Path_acc _ -> false) frame.slots

  (* path-matching state updates for every live slot *)
  let slots_on_start e name =
    List.iter
      (fun frame ->
        Array.iter
          (function
            | Done _ | Text_acc _ -> ()
            | Path_acc w ->
                w.rel_depth <- w.rel_depth + 1;
                if
                  w.result = None && (not w.capturing)
                  && w.rel_depth = w.progress + 1
                  && w.progress < Array.length w.path
                  && w.path.(w.progress) = name
                then begin
                  w.progress <- w.progress + 1;
                  if w.progress = Array.length w.path then begin
                    w.capturing <- true;
                    w.result <- Some (Buffer.create 16)
                  end
                end)
          frame.slots)
      e.frames

  let slots_on_end e =
    List.iter
      (fun frame ->
        Array.iter
          (function
            | Done _ | Text_acc _ -> ()
            | Path_acc w ->
                if w.capturing && w.rel_depth = Array.length w.path then w.capturing <- false;
                if w.rel_depth <= w.progress then w.progress <- w.rel_depth - 1;
                if w.progress < 0 then w.progress <- 0;
                w.rel_depth <- w.rel_depth - 1)
          frame.slots)
      e.frames

  let on_start_lookup e name lookup =
    slots_on_start e name;
    let shape = criterion_for e.spec name in
    let frame = { shape; slots = slots_of shape name lookup } in
    e.frames <- frame :: e.frames;
    if all_done frame then Some (assemble frame) else None

  let on_start e name attrs = on_start_lookup e name (fun a -> List.assoc_opt a attrs)

  let on_text e s =
    (* direct text feeds the innermost frame's text accumulators *)
    (match e.frames with
    | frame :: _ ->
        Array.iter
          (function
            | Text_acc b -> Buffer.add_string b s
            | Done _ | Path_acc _ -> ())
          frame.slots
    | [] -> ());
    (* capturing path slots of any ancestor receive all text below target *)
    List.iter
      (fun frame ->
        Array.iter
          (function
            | Path_acc w when w.capturing -> (
                match w.result with
                | Some b -> Buffer.add_string b s
                | None -> ())
            | Path_acc _ | Done _ | Text_acc _ -> ())
          frame.slots)
      e.frames

  let on_end e =
    match e.frames with
    | [] -> invalid_arg "Ordering.Evaluator.on_end: no open element"
    | frame :: rest ->
        e.frames <- rest;
        slots_on_end e;
        if all_done frame then None (* the key was already delivered at the start tag *)
        else Some (assemble frame)
end

let rec pp_criterion ppf = function
  | By_tag -> Format.pp_print_string ppf "tag"
  | By_attr a -> Format.fprintf ppf "@%s" a
  | By_text -> Format.pp_print_string ppf "text"
  | By_path p -> Format.pp_print_string ppf (String.concat "/" p)
  | Document_order -> Format.pp_print_string ppf "doc"
  | Desc c -> Format.fprintf ppf "-%a" pp_criterion c
  | Composite l ->
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ";") pp_criterion)
        l

let rec parse_criterion s =
  if s = "" then invalid_arg "Ordering.of_spec_string: empty criterion";
  if s.[0] = '-' then Desc (parse_criterion (String.sub s 1 (String.length s - 1)))
  else if s.[0] = '(' then begin
    if s.[String.length s - 1] <> ')' then
      invalid_arg "Ordering.of_spec_string: unbalanced parentheses";
    let inner = String.sub s 1 (String.length s - 2) in
    let parts = String.split_on_char ';' inner in
    Composite (List.map parse_criterion parts)
  end
  else if s = "tag" then By_tag
  else if s = "doc" then Document_order
  else if s = "text" then By_text
  else if s.[0] = '@' then By_attr (String.sub s 1 (String.length s - 1))
  else By_path (String.split_on_char '/' s)

let of_spec_string spec =
  let parts = String.split_on_char ',' spec in
  let rules, defaults =
    List.partition_map
      (fun part ->
        match String.index_opt part '=' with
        | Some i ->
            let tag = String.sub part 0 i in
            let c = parse_criterion (String.sub part (i + 1) (String.length part - i - 1)) in
            if tag = "" then invalid_arg "Ordering.of_spec_string: empty tag";
            Left (tag, c)
        | None -> Right (parse_criterion part))
      (List.filter (fun p -> p <> "") parts)
  in
  let default =
    match defaults with
    | [] -> By_tag
    | [ d ] -> d
    | _ -> invalid_arg "Ordering.of_spec_string: multiple default criteria"
  in
  make ~rules default
