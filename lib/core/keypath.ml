type component = {
  key : Key.t;
  pos : int;
}

let encode_record ?enc path ~payload =
  let enc =
    match enc with
    | Some e ->
        Extmem.Codec.Enc.clear e;
        e
    | None -> Extmem.Codec.Enc.create ~capacity:(64 + String.length payload) ()
  in
  Extmem.Codec.Enc.add_varint enc (List.length path);
  List.iter
    (fun { key; pos } ->
      Key.encode_enc enc key;
      Extmem.Codec.Enc.add_varint enc pos)
    path;
  Extmem.Codec.Enc.add_raw enc payload;
  Extmem.Codec.Enc.contents enc

let decode_path s =
  let c = Extmem.Codec.cursor s in
  let n = Extmem.Codec.get_varint c in
  let rec go n acc =
    if n = 0 then List.rev acc
    else begin
      let key = Key.decode c in
      let pos = Extmem.Codec.get_varint c in
      go (n - 1) ({ key; pos } :: acc)
    end
  in
  go n []

let payload_offset s =
  let c = Extmem.Codec.cursor s in
  let n = Extmem.Codec.get_varint c in
  for _ = 1 to n do
    Key.skip c;
    Extmem.Codec.skip_varint c
  done;
  c.Extmem.Codec.pos

let decode_payload s =
  let off = payload_offset s in
  String.sub s off (String.length s - off)

(* Compared directly on the encoded bytes via [Key.compare_cursors]: no
   [Key.t] trees are built per comparison, which matters because this runs
   O(n log n) times inside external merge-sorts. *)
let compare_encoded a b =
  let ca = Extmem.Codec.cursor a and cb = Extmem.Codec.cursor b in
  let na = Extmem.Codec.get_varint ca and nb = Extmem.Codec.get_varint cb in
  let rec go i =
    if i >= na || i >= nb then compare na nb
    else begin
      let c = Key.compare_cursors ca cb in
      if c <> 0 then c
      else begin
        let pa = Extmem.Codec.get_varint ca and pb = Extmem.Codec.get_varint cb in
        let c = compare pa pb in
        if c <> 0 then c else go (i + 1)
      end
    end
  in
  go 0

let pp_component ppf { key; pos } = Format.fprintf ppf "%s#%d" (Key.to_string key) pos

let rec key_display key =
  match key with
  | Key.Null -> "·"
  | Key.Num f -> if Float.is_integer f then string_of_int (int_of_float f) else string_of_float f
  | Key.Str s -> s
  | Key.Rev k -> "~" ^ key_display k
  | Key.Tuple ks -> String.concat "+" (List.map key_display ks)

let path_to_string path =
  if path = [] then "/"
  else String.concat "" (List.map (fun { key; _ } -> "/" ^ key_display key) path)
