(** Sort key values.

    The value an ordering criterion extracts from an element, used to order
    it among its siblings.  Keys are compared numerically when both sides
    parse as numbers — so employee IDs 90 and 1000 order as numbers, the
    behaviour users expect from attribute keys like the paper's
    [employee ID] — and as byte strings otherwise.

    [Null] is the key of nodes that sort by document position alone (text
    nodes, and elements under the [Document_order] criterion); it orders
    before every non-null key, and ties are always broken by document
    position, which also makes keys unique as the paper requires (§1:
    "if not, we can make it unique by appending it with the element's
    location in the input"). *)

type t =
  | Null
  | Num of float
  | Str of string
  | Rev of t        (** inverts the order of the wrapped key (descending
                        criteria) *)
  | Tuple of t list (** lexicographic compound keys (composite criteria,
                        e.g. last name then first name) *)

val of_string : string -> t
(** [Num] when the whole string parses as a float, [Str] otherwise.  The
    empty string is [Str ""]. *)

val compare : t -> t -> int
(** Total order: [Null] < every [Num] < every [Str] < every [Rev] < every
    [Tuple]; numbers numerically, strings bytewise, [Rev] inverted,
    tuples lexicographically. *)

val equal : t -> t -> bool

val encode : Buffer.t -> t -> unit

val encode_enc : Extmem.Codec.Enc.t -> t -> unit
(** Same wire format as {!encode}, into a reusable {!Extmem.Codec.Enc.t}. *)

val decode : Extmem.Codec.cursor -> t

val encode_opt : Buffer.t -> t option -> unit

val encode_opt_enc : Extmem.Codec.Enc.t -> t option -> unit

val decode_opt : Extmem.Codec.cursor -> t option

val skip : Extmem.Codec.cursor -> unit
(** Advance past one encoded key without building the tree. *)

val skip_opt : Extmem.Codec.cursor -> unit
(** Advance past one encoded optional key ([255] = [None]). *)

val compare_cursors : Extmem.Codec.cursor -> Extmem.Codec.cursor -> int
(** Compare two encoded keys in {!compare} order directly on the encoded
    bytes, allocation-free.  When the result is [0] both cursors end just
    past their keys; on a non-zero result their positions are unspecified. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string
