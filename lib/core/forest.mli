(** The pure in-memory half of a subtree sort (§4.1): forest
    reconstruction from a flat entry list, sibling sorting, and
    sorted-pre-order serialization.

    No session, device or shared state is touched — encoding and the
    packed/depth-limit configuration arrive as plain arguments — so
    these functions are safe to run inside worker domains
    ({!Sort_pool}).  {!Subtree_sort} wraps them with the session's
    encoder for the single-threaded path. *)

type node = {
  entry : Entry.t;
  mutable key : Key.t;
  mutable children : node list; (** reversed while building *)
}

val node_of_entry : Entry.t -> node

val build_forest : Entry.t list -> node list
(** Rebuild the sibling forest from entries in document order.  End
    entries resolve their element's key and close it; in packed mode
    (no End entries) elements close when a following entry's level shows
    they ended. *)

val compare_siblings : node -> node -> int
(** Key order, document position as tiebreak. *)

val sort_forest : depth_limit:int option -> node list -> node list
(** Sort every sibling list, leaving levels beyond [depth_limit] in
    document order. *)

val forest_size : node list -> int

val emit_node : encode:(Entry.t -> string) -> packed:bool -> (string -> unit) -> node -> unit
(** Emit a node's entries in sorted pre-order, synthesizing End entries
    unless [packed]. *)

val forest_pull :
  encode:(Entry.t -> string) -> packed:bool -> node list -> unit -> string option
(** Pull-based pre-order walk of a sorted forest, for feeding a pipeline
    stage one entry at a time. *)
