(** The pure in-memory half of a subtree sort (§4.1): forest
    reconstruction from a flat list of entry views, sibling sorting, and
    sorted-pre-order serialization.

    Nodes wrap {!Entry.View.t}s, so building and sorting a forest never
    decodes names, attributes or text, and emission passes the original
    encoded payloads through byte-identical (End entries synthesized in
    unpacked mode are the only bytes produced here).  No session, device
    or shared state is touched, so these functions are safe to run inside
    worker domains ({!Sort_pool}).  {!Subtree_sort} wraps them for the
    single-threaded path. *)

type node = {
  view : Entry.View.t;
  mutable key : Key.t;
  mutable children : node list; (** reversed while building *)
}

val node_of_view : Entry.View.t -> node

val build_forest : Entry.View.t list -> node list
(** Rebuild the sibling forest from entry views in document order.  End
    entries resolve their element's key and close it; in packed mode
    (no End entries) elements close when a following entry's level shows
    they ended. *)

val compare_siblings : node -> node -> int
(** Key order, document position as tiebreak. *)

val sort_forest : depth_limit:int option -> node list -> node list
(** Sort every sibling list, leaving levels beyond [depth_limit] in
    document order. *)

val forest_size : node list -> int

val emit_node : packed:bool -> Extmem.Codec.Enc.t -> (string -> unit) -> node -> unit
(** Emit a node's entries in sorted pre-order, passing stored payloads
    through verbatim and synthesizing End entries (via the scratch
    encoder) unless [packed]. *)

val forest_pull : packed:bool -> node list -> unit -> string option
(** Pull-based pre-order walk of a sorted forest, for feeding a pipeline
    stage one entry at a time. *)

(** {2 Key-path record streams}

    The pure half of an {e external} subtree sort (§3.1): entry views in,
    encoded {!Keypath} records out, and reconstruction of sorted records
    back into entries.  Like the forest functions, these touch no session
    or shared state, so {!Sort_pool} workers can run a whole run-spilling
    subtree sort on a private scratch device. *)

val forward_records :
  enc:Extmem.Codec.Enc.t ->
  depth_limit:int option ->
  (unit -> Entry.View.t option) ->
  unit ->
  string option
(** Key-path records from an entry-view stream in document order.  Keys
    must be on Start entries (scan-evaluable orderings); keys below
    [depth_limit] are suppressed so deeper levels keep document order. *)

val reverse_records :
  enc:Extmem.Codec.Enc.t ->
  depth_limit:int option ->
  (unit -> Entry.View.t option) ->
  unit ->
  string option
(** Same, for entries arriving in reverse document order (popped from the
    data stack); End entries precede their subtrees and carry the
    authoritative element keys. *)

val keypath_output :
  encoding:Config.encoding ->
  enc:Extmem.Codec.Enc.t ->
  (string -> unit) ->
  (string -> unit) * (unit -> unit)
(** [keypath_output ~encoding ~enc emit] is the reconstruction sink for a
    sorted key-path record stream: the returned output function emits
    each record's payload verbatim, synthesizing End entries from level
    transitions (unless packed); the returned finish closes the remaining
    open tags — call it once the sort has drained. *)
