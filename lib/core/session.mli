(** A NEXSORT session: the devices, stacks and memory budget of one sort.

    The paper's setup gives the algorithm an input stream, an output
    stream, three external stacks, a region for sorted runs and scratch
    space for external subtree sorts, all drawing from [M] blocks of
    internal memory.  A session materialises exactly that: each component
    gets its own virtual device so the per-component I/O breakdown of the
    analysis in §4.2 (input, subtree sorts, stack paging, run reads,
    output) can be measured directly.

    A session is {e one job's view} of its resources.  Standalone it
    creates everything itself; under an {!Engine} it is handed a budget
    carved from the engine's, a view of the engine's shared
    {!Sort_pool}, and a poll hook for cooperative cancellation — the
    session never knows the difference. *)

type t = {
  config : Config.t;
  budget : Extmem.Memory_budget.t;
  arena : Extmem.Frame_arena.t;
      (** the session-wide frame arena over {!field-budget}: every
          block-holding component (stack windows, stream buffers, sort
          leases, pager caches) draws its frames here under a [who]
          label, so budget exhaustion and the metrics report name the
          owners; its default replacement policy follows
          [config.pager_policy] *)
  dict : Xmlio.Dict.t;
  data_stack : Extmem.Ext_stack.t;
  path_stack : Extmem.Ext_stack.t;
  out_stack : Extmem.Ext_stack.t;
  runs : Extmem.Run_store.t;
  temp_stats : Extmem.Io_stats.t;
      (** accumulated I/O of retired scratch devices (external subtree
          sorts and fragment merges) *)
  mutable temp_sim_ms : float;
      (** accumulated simulated time of retired scratch devices (when the
          configured device spec carries a [cost] layer) *)
  registry : Obs.Registry.t;
      (** pull-gauge metrics over every session component — stacks
          ([stack.data.*], [stack.path.*], [stack.out.*]), run store
          ([runs.store.*]) and their devices ([dev.*]); see
          {!Obs.Probe} *)
  pool : (Sort_pool.t * Sort_pool.view) option;
      (** the worker pool serving this job and this job's view of it;
          [None] when [config.jobs = 1] (the single-threaded code path).
          The pool may be shared with other jobs (engine); the view
          never is. *)
  pool_host : Sort_pool.t option;
      (** a pool spawned for this session alone (standalone
          [--jobs N]); shut down at {!destroy}.  [None] when the pool in
          {!field-pool} is engine-shared, or when there is no pool. *)
  poll : unit -> unit;
      (** cooperative cancellation hook, called at scan and output
          checkpoints; raises to abort the job (the engine's poll raises
          [Engine.Cancelled]).  Defaults to a no-op. *)
  enc_scratch : Extmem.Codec.Enc.t;
      (** reusable encode scratch for the main thread's record path
          (entry/record encoding between phases); worker domains carry
          their own — never share this across domains *)
  mutable destroyed : bool;  (** set by {!destroy} *)
}

val job_blocks : ?pool:Sort_pool.t -> Config.t -> int
(** The budget size one job needs: the algorithm-visible
    [config.memory_blocks] plus the pool writer buffers its view
    reserves on top ([workers * Sort_pool.slab_blocks] when
    [config.jobs > 1], with the worker count taken from [pool] when the
    job will share one).  {!create} sizes its own budget this way;
    engine admission carves exactly this much, so the blocks the
    algorithm can see are identical either way. *)

val ext_blocks : ?pool:Sort_pool.t -> Config.t -> int
(** Headroom blocks for offloaded external subtree sorts: each
    in-flight external task carves at most the job's full arena, one
    task per worker.  Zero when [config.jobs = 1]. *)

val create :
  ?budget:Extmem.Memory_budget.t ->
  ?pool:Sort_pool.t ->
  ?ext_budget:Extmem.Memory_budget.t ->
  ?poll:(unit -> unit) ->
  Config.t ->
  t
(** Build the frame arena, stacks and run store.  Each stack leases its
    own window from the arena — the data-stack window, the path-stack
    window and one block for the output-location stack (the input buffer
    is charged by the scan pipeline stage).  What remains of the budget
    is the sorting arena.  The data-stack window is {e elastic}: it
    borrows idle arena blocks to avoid paging and gives them back via
    {!reclaim} whenever a phase actually reserves memory.  Because the
    window draws only on this session's own budget, its borrowing can
    never touch another tenant's blocks.

    [budget] supplies the job's memory (an engine-carved sub-budget); it
    must hold {!job_blocks} blocks.  Omitted, a private budget of that
    size is created.

    When [config.jobs > 1] the session sorts subtrees through a
    {!Sort_pool}: [pool] names a shared (engine) pool to open a view on,
    else a private pool of [config.jobs] workers is spawned (and shut
    down at {!destroy}).  The view's writer buffers are reserved in the
    job budget — which {!job_blocks} inflates by exactly that much, so
    the [memory_blocks] visible to the algorithm, and every size-based
    decision, are unchanged.  [ext_budget] supplies the headroom
    offloaded external sorts carve their arenas from ({!ext_blocks}
    blocks); omitted, a private one is created.

    [poll] is called at scan and output checkpoints; raise from it to
    abort the job cooperatively. *)

val sync : t -> unit
(** Barrier over the worker pool ({!Sort_pool.drain}): every submitted
    subtree sort is finished and installed afterwards.  Re-raises the
    first worker failure in run-id order.  A no-op with one job. *)

val arena_bytes : t -> int
(** Internal-memory bytes available to a subtree sort right now (also the
    trigger level for graceful degeneration).  Counts blocks currently
    lent to the data-stack window — they are reclaimable on demand — so
    sort and degeneration decisions are independent of borrowing. *)

val reclaim : t -> unit
(** Return every block the data-stack window borrowed to the budget
    (evicting the window down to its configured size), so a phase about
    to reserve arena memory actually finds it available. *)

val leaked_blocks : t -> int
(** Blocks aborted offloaded external sorts failed to return to their
    arenas (see {!Sort_pool.leaked_blocks}); zero on the single-threaded
    path.  The engine folds this into its per-job leak accounting. *)

val destroy : t -> unit
(** Tear the session down: close the pool view first (waiting out
    in-flight worker tasks and returning the writer buffers — also when
    a worker raised mid-sort), shut down the pool if this session owns
    it, close every stack window (frames and leases go back to the
    budget, nothing is flushed), close the stack and run devices, then
    run the registered {!add_destroy_probe} hooks.  Idempotent; costs no
    I/O.  {!Sorter} destroys its session on every exit path, so after a
    sort — successful or aborted — the budget holds zero blocks unless a
    phase leaked (which the probes exist to catch). *)

val add_destroy_probe : (t -> unit) -> unit
(** Register a global hook run at the end of every {!destroy}, after the
    session's own resources were released.  Verification harnesses use
    this to assert resource invariants ({!Extmem.Memory_budget} empty,
    {!Extmem.Frame_arena} ledger quiescent) after every run, including
    aborted ones.  Probes should record violations rather than raise:
    destroy runs in exception finalizers, where a raising probe would
    mask the original failure. *)

val with_temp : t -> (Extmem.Device.t -> 'a) -> 'a
(** Run a scope with a fresh scratch device; its I/O counters are folded
    into {!field-temp_stats} afterwards, also on exceptions.  Calls
    {!reclaim} first — scratch scopes exist to run external sorts, which
    reserve the arena. *)

val encode_entry : t -> Entry.t -> string
(** {!Entry.encode} under the session's encoding and dictionary (through
    the session's scratch encoder; main thread only). *)

val decode_entry : t -> string -> Entry.t

val view_entry : t -> string -> Entry.View.t
(** {!Entry.View.of_payload} under the session's encoding: wrap an
    encoded entry without decoding names, attributes or text. *)

val io_breakdown : t -> (string * Extmem.Io_stats.t) list
(** Per-component I/O counters: data/path/output-location stacks, runs
    (the store's device plus this job's worker scratch devices), scratch
    (retired temp devices, main-thread and offloaded). *)

val total_io : t -> Extmem.Io_stats.t
(** Sum of {!io_breakdown} (input and output devices are owned by the
    caller and not included). *)

val simulated_ms : t -> float
(** Total simulated time charged to the session's internal devices —
    stacks, run store, retired scratch — when the config's device spec
    includes a [cost] layer; [0.] otherwise.  Input/output devices are the
    caller's. *)
