(* The forest machinery itself is the pure [Forest] module (shared with
   the worker pool); this module binds it to a session.  Entries travel
   through as [Entry.View.t]s over their original encoded payloads: sorts
   and merges never decode names, attributes or text, and emitted bytes
   are the input bytes (End entries synthesized from level transitions
   are the only encoding done here). *)

type node = Forest.node = {
  view : Entry.View.t;
  mutable key : Key.t;
  mutable children : node list; (* reversed while building *)
}

let build_forest = Forest.build_forest

let sort_forest = Forest.sort_forest

let forest_size = Forest.forest_size

let packed (session : Session.t) = session.Session.config.Config.encoding = Config.Packed

let emit_node (session : Session.t) emit n =
  Forest.emit_node ~packed:(packed session) session.Session.enc_scratch emit n

let write_node session w n = emit_node session (Extmem.Block_writer.write_record w) n

let forest_pull session forest = Forest.forest_pull ~packed:(packed session) forest

let sort_in_memory_source (session : Session.t) views =
  let depth_limit = session.Session.config.Config.depth_limit in
  forest_pull session (sort_forest ~depth_limit (build_forest views))

let sort_in_memory_to (session : Session.t) views emit =
  let depth_limit = session.Session.config.Config.depth_limit in
  let forest = sort_forest ~depth_limit (build_forest views) in
  List.iter (emit_node session emit) forest

let sort_in_memory (session : Session.t) views =
  let w = Extmem.Run_store.begin_run session.Session.runs in
  sort_in_memory_to session views (Extmem.Block_writer.write_record w);
  Extmem.Run_store.finish_run session.Session.runs w

(* ---- key-path external sort ---- *)

(* The pure record streams and reconstruction live in [Forest] (shared
   with the worker pool, which runs whole external sorts off-session);
   these wrappers bind them to the session's encoder and config. *)

let forward_records (session : Session.t) ~depth_limit input =
  Forest.forward_records ~enc:session.Session.enc_scratch ~depth_limit input

let reverse_records (session : Session.t) ~depth_limit input =
  Forest.reverse_records ~enc:session.Session.enc_scratch ~depth_limit input

let sort_external_to (session : Session.t) ~input ~scan emit =
  let depth_limit = session.Session.config.Config.depth_limit in
  let records =
    match scan with
    | `Forward -> forward_records session ~depth_limit input
    | `Reverse -> reverse_records session ~depth_limit input
  in
  let output, finish =
    Forest.keypath_output ~encoding:session.Session.config.Config.encoding
      ~enc:session.Session.enc_scratch emit
  in
  let stats =
    try
      Session.with_temp session (fun temp ->
          Extsort.External_sort.sort ~arena:session.Session.arena
            ~budget:session.Session.budget ~temp ~cmp:Keypath.compare_encoded ~input:records
            ~output ())
    with e ->
      (* The input callback pops the data stack, which may have re-grown
         its borrowed window mid-sort; shed it so an aborted subtree sort
         leaves the budget exactly as a completed one would. *)
      Session.reclaim session;
      raise e
  in
  finish ();
  stats

let sort_external (session : Session.t) ~input ~scan =
  let w = Extmem.Run_store.begin_run session.Session.runs in
  let stats = sort_external_to session ~input ~scan (Extmem.Block_writer.write_record w) in
  let id = Extmem.Run_store.finish_run session.Session.runs w in
  (id, stats)

type streamed = {
  pull : unit -> string option;
  close : unit -> unit;
  stats : Extsort.External_sort.stats;
}

(* Streaming variant of [sort_external_to]: run formation and all but the
   last merge pass happen here (consuming [input]); the returned pull is
   the final merge with entry reconstruction fused on top, so the root
   sort's sorted entries flow straight into the output phase without a
   materialised run.  The scratch device outlives [Session.with_temp]'s
   scope, so its retirement bookkeeping is inlined into [close]. *)
let sort_external_source (session : Session.t) ~input ~scan =
  let depth_limit = session.Session.config.Config.depth_limit in
  let records =
    match scan with
    | `Forward -> forward_records session ~depth_limit input
    | `Reverse -> reverse_records session ~depth_limit input
  in
  Session.reclaim session;
  let temp = Config.scratch_device session.Session.config ~name:"temp" in
  let retired = ref false in
  let retire () =
    if not !retired then begin
      retired := true;
      Extmem.Io_stats.accumulate ~into:session.Session.temp_stats (Extmem.Device.stats temp);
      session.Session.temp_sim_ms <-
        session.Session.temp_sim_ms +. Extmem.Device.simulated_ms temp;
      Extmem.Device.close temp
    end
  in
  let o =
    try
      Extsort.External_sort.sort_open ~arena:session.Session.arena
        ~budget:session.Session.budget ~temp ~cmp:Keypath.compare_encoded ~input:records ()
    with e ->
      (* As in [sort_external_to]: reclaim any blocks the data stack
         re-borrowed while the aborted sort was draining it. *)
      Session.reclaim session;
      retire ();
      raise e
  in
  let encoding = session.Session.config.Config.encoding in
  let opens = ref [] in (* (level, pos) of open Start entries *)
  let pending = Queue.create () in (* encoded entries ready to emit *)
  let close_down_to level =
    if not (packed session) then
      let rec go () =
        match !opens with
        | (l, pos) :: rest when l >= level ->
            Queue.push
              (Entry.encode_end_to session.Session.enc_scratch ~level:l ~pos ~key:None)
              pending;
            opens := rest;
            go ()
        | _ -> ()
      in
      go ()
    else opens := List.filter (fun (l, _) -> l < level) !opens
  in
  let finished = ref false in
  let rec pull () =
    if not (Queue.is_empty pending) then Some (Queue.pop pending)
    else if !finished then None
    else
      match o.Extsort.External_sort.pull () with
      | Some record ->
          let payload = Keypath.decode_payload record in
          let v = Entry.View.of_payload encoding payload in
          close_down_to (Entry.View.level v);
          Queue.push payload pending;
          (match Entry.View.kind v with
          | Entry.View.Vstart -> opens := (Entry.View.level v, Entry.View.pos v) :: !opens
          | Entry.View.Vtext | Entry.View.Vrun_ptr | Entry.View.Vend -> ());
          pull ()
      | None ->
          finished := true;
          close_down_to 0;
          o.Extsort.External_sort.close ();
          retire ();
          pull ()
  in
  let close () =
    o.Extsort.External_sort.close ();
    retire ()
  in
  { pull; close; stats = o.Extsort.External_sort.stats }

(* ---- fragments (graceful degeneration, §3.2) ---- *)

let header_prefix = '\xFF'

let encode_header key pos =
  let buf = Buffer.create 16 in
  Buffer.add_char buf header_prefix;
  Key.encode buf key;
  Extmem.Codec.put_varint buf pos;
  Buffer.contents buf

let decode_header s =
  let c = Extmem.Codec.cursor ~pos:1 s in
  let key = Key.decode c in
  let pos = Extmem.Codec.get_varint c in
  (key, pos)

let is_header s = String.length s > 0 && s.[0] = header_prefix

let write_fragment (session : Session.t) nodes =
  let depth_limit = session.Session.config.Config.depth_limit in
  (* below the depth limit chunks must keep document order: their headers
     carry Null keys so the merge falls back to the position tiebreak *)
  let header_key n =
    match depth_limit with
    | Some d when Entry.View.level n.view > d + 1 -> Key.Null
    | Some _ | None -> n.key
  in
  let w = Extmem.Run_store.begin_run session.Session.runs in
  List.iter
    (fun n ->
      Extmem.Block_writer.write_record w
        (encode_header (header_key n) (Entry.View.pos n.view));
      write_node session w n)
    nodes;
  Extmem.Run_store.finish_run session.Session.runs w

(* Fragment merges account their reader buffers against the budget, but
   clamped to what is free: [fan_in] guarantees at least a 2-way merge
   even on degenerate budgets (the paper's minimum), so the floor may
   over-commit by design rather than fail. *)
let reserve_clamped (session : Session.t) ~who n =
  let budget = session.Session.budget in
  let n = min n (Extmem.Memory_budget.available_blocks budget) in
  Extmem.Memory_budget.reserve budget ~who n;
  n

(* Chunk-level pull merge of fragment runs.  [keep_headers] preserves
   chunk headers (intermediate passes); the final pass drops them. *)
let fragment_batch_pull (session : Session.t) ~keep_headers ~fragments =
  let readers =
    List.map
      (fun id ->
        let r = Extmem.Run_store.open_run session.Session.runs id in
        let first = Extmem.Block_reader.read_record r in
        (r, ref first))
      fragments
  in
  (* sorted work list keyed by (key, pos, reader index) for stability *)
  let items : (Key.t * int * int) list ref = ref [] in
  let insert ((k, p, i) as item) =
    let rec ins = function
      | [] -> [ item ]
      | (k', p', i') :: _ as l
        when Key.compare k k' < 0
             || (Key.compare k k' = 0 && (p < p' || (p = p' && i < i'))) -> item :: l
      | x :: rest -> x :: ins rest
    in
    items := ins !items
  in
  let readers = Array.of_list readers in
  Array.iteri
    (fun i (_, pending) ->
      match !pending with
      | Some h when is_header h ->
          let k, p = decode_header h in
          insert (k, p, i)
      | Some _ -> raise (Extmem.Codec.Corrupt "fragment run does not start with a header")
      | None -> ())
    readers;
  let current = ref None in (* reader whose chunk is being copied *)
  let rec pull () =
    match !current with
    | Some i -> (
        let r, pending = readers.(i) in
        match Extmem.Block_reader.read_record r with
        | None ->
            pending := None;
            current := None;
            pull ()
        | Some rec_ when is_header rec_ ->
            pending := Some rec_;
            let k', p' = decode_header rec_ in
            insert (k', p', i);
            current := None;
            pull ()
        | Some rec_ -> Some rec_)
    | None -> (
        match !items with
        | [] -> None
        | (k, p, i) :: rest ->
            items := rest;
            current := Some i;
            if keep_headers then Some (encode_header k p) else pull ())
  in
  pull

let merge_fragment_batch session ~keep_headers ~fragments emit =
  let pull = fragment_batch_pull session ~keep_headers ~fragments in
  let rec go () =
    match pull () with
    | None -> ()
    | Some r ->
        emit r;
        go ()
  in
  go ()

let fan_in (session : Session.t) =
  max 2 (Extmem.Memory_budget.available_blocks session.Session.budget - 1)

let rec reduce_fragments session fragments =
  Session.reclaim session;
  let k = fan_in session in
  if List.length fragments <= k then fragments
  else begin
    let rec batches = function
      | [] -> []
      | ids ->
          let rec take n acc = function
            | rest when n = 0 -> (List.rev acc, rest)
            | [] -> (List.rev acc, [])
            | x :: tl -> take (n - 1) (x :: acc) tl
          in
          let b, rest = take k [] ids in
          b :: batches rest
    in
    let next =
      List.map
        (fun batch ->
          let held =
            reserve_clamped session ~who:"fragment merge" (List.length batch + 1)
          in
          Fun.protect
            ~finally:(fun () ->
              Extmem.Memory_budget.release session.Session.budget ~who:"fragment merge" held)
            (fun () ->
              let w = Extmem.Run_store.begin_run session.Session.runs in
              merge_fragment_batch session ~keep_headers:true ~fragments:batch
                (Extmem.Block_writer.write_record w);
              Extmem.Run_store.finish_run session.Session.runs w))
        (batches fragments)
    in
    reduce_fragments session next
  end

(* the wrapped, merged element; fragments must already fit the fan-in.
   [start_view]'s payload passes through verbatim. *)
let merged_pull session ~start_view ~fragments =
  let inner = fragment_batch_pull session ~keep_headers:false ~fragments in
  let st = ref `Start in
  let rec pull () =
    match !st with
    | `Start ->
        st := `Body;
        Some (Entry.View.payload start_view)
    | `Body -> (
        match inner () with
        | Some r -> Some r
        | None ->
            st := `Tail;
            pull ())
    | `Tail -> (
        st := `Done;
        match Entry.View.kind start_view with
        | Entry.View.Vstart when not (packed session) ->
            Some
              (Entry.encode_end_to session.Session.enc_scratch
                 ~level:(Entry.View.level start_view) ~pos:(Entry.View.pos start_view)
                 ~key:None)
        | Entry.View.Vstart | Entry.View.Vend | Entry.View.Vtext | Entry.View.Vrun_ptr ->
            None)
    | `Done -> None
  in
  pull

let merge_fragments_source (session : Session.t) ~start_view ~fragments =
  (* reduce first: intermediate merge passes open their own runs *)
  let fragments = reduce_fragments session fragments in
  let held = reserve_clamped session ~who:"fragment merge fan-in" (List.length fragments) in
  let released = ref false in
  let release () =
    if not !released then begin
      released := true;
      Extmem.Memory_budget.release session.Session.budget ~who:"fragment merge fan-in" held
    end
  in
  let inner = merged_pull session ~start_view ~fragments in
  let pull () =
    match inner () with
    | Some r -> Some r
    | None ->
        release ();
        None
  in
  (pull, release)

let drain_into pull emit =
  let rec go () =
    match pull () with
    | None -> ()
    | Some r ->
        emit r;
        go ()
  in
  go ()

let merge_fragments_to (session : Session.t) ~start_view ~fragments emit =
  let pull, close = merge_fragments_source session ~start_view ~fragments in
  Fun.protect ~finally:close (fun () -> drain_into pull emit)

let merge_fragments (session : Session.t) ~start_view ~fragments =
  let pull, close = merge_fragments_source session ~start_view ~fragments in
  Fun.protect ~finally:close (fun () ->
      let w = Extmem.Run_store.begin_run session.Session.runs in
      drain_into pull (Extmem.Block_writer.write_record w);
      Extmem.Run_store.finish_run session.Session.runs w)
