(* A hand-rolled domain pool for in-memory subtree sorts.

   NEXSORT's subtree sorts are independent by construction (§4): by the
   time a subtree collapses, its entries are complete and nothing else
   reads them.  The main thread stays the only owner of the session —
   stacks, budget decisions, run-id assignment — and workers get the
   purely functional piece: rebuild the forest from an entry list, sort
   it, serialize it to a private scratch device.

   Determinism is by construction rather than by locking discipline:

   - Run ids are assigned on the main thread ([Run_store.reserve]) at
     exactly the sequence points where the single-threaded path would
     call [finish_run], so the id order never depends on worker timing.
   - Workers are pure given their task: they receive already-encoded
     payloads, sort them as entry views and re-emit the same bytes —
     no dictionary access, no re-encoding (synthesized End entries are
     name-free and produced in a worker-private scratch encoder).
   - Each worker writes to its own scratch device and runs are padded
     to whole blocks, so a run's block count — and therefore every I/O
     counter — is determined by its content, not by which device or
     worker produced it.
   - The main thread drains the pool (one barrier) before anything
     reads a worker-written run.

   Memory: each worker carves a fixed slab out of the session arena
   ([Frame_arena.carve]) and takes its writer buffer from that private
   sub-arena, so worker memory is accounted without touching the shared
   pool on the hot path.  [Session.create] inflates the budget by
   exactly the carved slabs, keeping the blocks visible to the
   algorithm — and with them every size-based decision — identical to
   the single-threaded path. *)

let slab_blocks = 1

type task =
  | Sort of { run : Extmem.Run_store.id; payloads : string list }
  | Copy of { run : Extmem.Run_store.id; payloads : string list }

type completion = {
  c_run : Extmem.Run_store.id;
  c_result : (Extmem.Device.t * Extmem.Extent.t, exn) result;
}

type worker = {
  index : int;
  dev : Extmem.Device.t;
  sub_arena : Extmem.Frame_arena.t;
  lease : Extmem.Frame_arena.lease;
  buffer : bytes;
  scratch : Extmem.Codec.Enc.t;  (* worker-private End-entry encoder *)
  tasks_done : int Atomic.t;
  entries_sorted : int Atomic.t;
  mutable domain : unit Domain.t option;
}

type worker_stats = {
  w_index : int;
  w_tasks : int;
  w_entries : int;
  w_io : Extmem.Io_stats.t;
}

type t = {
  lock : Mutex.t;
  work_ready : Condition.t;   (* queue went non-empty, or stopping *)
  space_ready : Condition.t;  (* queue dropped below its bound *)
  done_ready : Condition.t;   (* a task completed *)
  queue : task Queue.t;
  max_queue : int;
  mutable stopping : bool;
  mutable in_flight : int;    (* submitted tasks not yet completed *)
  mutable completions : completion list;
  workers : worker array;
  runs : Extmem.Run_store.t;
  encoding : Config.encoding;
  depth_limit : int option;
  tracer : Obs.Tracer.t;
  (* pre-interned event names; emitting is lock-free *)
  tr_idle : int;
  tr_sort : int;
  tr_copy : int;
  tr_submit_wait : int;
  tr_install : int;
  (* totals captured at shutdown, once worker devices are gone *)
  mutable final_io : Extmem.Io_stats.t option;
  mutable final_sim_ms : float;
  mutable final_stats : worker_stats list;
  mutable shut : bool;
}

let workers t = Array.length t.workers

let task_run = function Sort { run; _ } | Copy { run; _ } -> run

let run_task t w task =
  let writer = Extmem.Block_writer.create ~buffer:w.buffer w.dev in
  let emit = Extmem.Block_writer.write_record writer in
  (match task with
  | Sort { payloads; _ } ->
      let packed = t.encoding = Config.Packed in
      let views = List.map (Entry.View.of_payload t.encoding) payloads in
      let forest = Forest.sort_forest ~depth_limit:t.depth_limit (Forest.build_forest views) in
      List.iter (Forest.emit_node ~packed w.scratch emit) forest;
      ignore (Atomic.fetch_and_add w.entries_sorted (List.length payloads))
  | Copy { payloads; _ } ->
      List.iter emit payloads;
      ignore (Atomic.fetch_and_add w.entries_sorted (List.length payloads)));
  let extent = Extmem.Block_writer.close writer in
  Atomic.incr w.tasks_done;
  (w.dev, extent)

let rec worker_loop t w =
  (* idle covers lock acquisition and the empty-queue wait: everything
     the worker does that is not running a task *)
  Obs.Tracer.begin_span t.tracer t.tr_idle;
  Mutex.lock t.lock;
  while Queue.is_empty t.queue && not t.stopping do
    Condition.wait t.work_ready t.lock
  done;
  if Queue.is_empty t.queue then begin
    Mutex.unlock t.lock;
    (* stopping, nothing left *)
    Obs.Tracer.end_span t.tracer t.tr_idle
  end
  else begin
    let task = Queue.pop t.queue in
    Condition.broadcast t.space_ready;
    Mutex.unlock t.lock;
    Obs.Tracer.end_span t.tracer t.tr_idle;
    let tr_task = match task with Sort _ -> t.tr_sort | Copy _ -> t.tr_copy in
    Obs.Tracer.begin_span t.tracer tr_task;
    let result = try Ok (run_task t w task) with e -> Error e in
    Obs.Tracer.end_span t.tracer tr_task;
    Mutex.lock t.lock;
    t.completions <- { c_run = task_run task; c_result = result } :: t.completions;
    t.in_flight <- t.in_flight - 1;
    Condition.broadcast t.done_ready;
    Mutex.unlock t.lock;
    worker_loop t w
  end

let create ~(config : Config.t) ~arena ~runs ~workers:n =
  if n < 1 then invalid_arg "Sort_pool.create: need at least one worker";
  let bs = config.Config.block_size in
  let mk_worker i =
    let sub_arena =
      Extmem.Frame_arena.carve arena ~who:(Printf.sprintf "worker %d slab" i)
        ~blocks:slab_blocks
    in
    let lease =
      Extmem.Frame_arena.lease sub_arena ~who:(Printf.sprintf "worker %d writer" i) slab_blocks
    in
    let buffer = Extmem.Frame_arena.take sub_arena bs in
    let dev = Config.scratch_device config ~name:(Printf.sprintf "runs-w%d" i) in
    {
      index = i;
      dev;
      sub_arena;
      lease;
      buffer;
      scratch = Extmem.Codec.Enc.create ~capacity:32 ();
      tasks_done = Atomic.make 0;
      entries_sorted = Atomic.make 0;
      domain = None;
    }
  in
  let tracer = config.Config.tracer in
  let t =
    {
      lock = Mutex.create ();
      work_ready = Condition.create ();
      space_ready = Condition.create ();
      done_ready = Condition.create ();
      queue = Queue.create ();
      max_queue = 2 * n;
      stopping = false;
      in_flight = 0;
      completions = [];
      workers = Array.init n mk_worker;
      runs;
      encoding = config.Config.encoding;
      depth_limit = config.Config.depth_limit;
      tracer;
      tr_idle = Obs.Tracer.intern tracer "worker.idle";
      tr_sort = Obs.Tracer.intern tracer "task:sort";
      tr_copy = Obs.Tracer.intern tracer "task:copy";
      tr_submit_wait = Obs.Tracer.intern tracer "pool.submit.wait";
      tr_install = Obs.Tracer.intern tracer "run.install";
      final_io = None;
      final_sim_ms = 0.;
      final_stats = [];
      shut = false;
    }
  in
  Array.iter
    (fun w ->
      w.domain <-
        Some
          (Domain.spawn (fun () ->
               Obs.Tracer.register_track tracer (Printf.sprintf "worker %d" w.index);
               worker_loop t w)))
    t.workers;
  t

let submit t task =
  Mutex.lock t.lock;
  if t.stopping then begin
    Mutex.unlock t.lock;
    invalid_arg "Sort_pool.submit: pool is shut down"
  end;
  if Queue.length t.queue >= t.max_queue then begin
    (* backpressure: the producer blocks until a worker frees a slot *)
    Obs.Tracer.begin_span t.tracer t.tr_submit_wait;
    while Queue.length t.queue >= t.max_queue do
      Condition.wait t.space_ready t.lock
    done;
    Obs.Tracer.end_span t.tracer t.tr_submit_wait
  end;
  Queue.push task t.queue;
  t.in_flight <- t.in_flight + 1;
  Condition.broadcast t.work_ready;
  Mutex.unlock t.lock

let submit_sort t ~run payloads = submit t (Sort { run; payloads })

let submit_copy t ~run payloads = submit t (Copy { run; payloads })

(* Install the finished runs in id order and surface the first failure
   (by run id, i.e. by submission order — not by completion timing) with
   its original exception identity, so fault classification upstream
   sees the same [Device.Fault] it would on the single-threaded path. *)
let install_completions t cs =
  let cs = List.sort (fun a b -> compare a.c_run b.c_run) cs in
  let first_error = ref None in
  List.iter
    (fun c ->
      match c.c_result with
      | Ok (dev, extent) ->
          Obs.Tracer.instant t.tracer t.tr_install;
          Extmem.Run_store.install t.runs c.c_run ~dev ~extent
      | Error e -> if Option.is_none !first_error then first_error := Some e)
    cs;
  match !first_error with None -> () | Some e -> raise e

let drain t =
  Mutex.lock t.lock;
  while t.in_flight > 0 do
    Condition.wait t.done_ready t.lock
  done;
  let cs = t.completions in
  t.completions <- [];
  Mutex.unlock t.lock;
  install_completions t cs

let live_io t =
  Array.fold_left
    (fun acc w -> Extmem.Io_stats.add acc (Extmem.Io_stats.snapshot (Extmem.Device.stats w.dev)))
    (Extmem.Io_stats.create ()) t.workers

let io t =
  match t.final_io with Some s -> Extmem.Io_stats.snapshot s | None -> live_io t

let live_sim_ms t =
  Array.fold_left (fun acc w -> acc +. Extmem.Device.simulated_ms w.dev) 0. t.workers

let sim_ms t = if t.shut then t.final_sim_ms else live_sim_ms t

let live_worker_stats t =
  Array.to_list
    (Array.map
       (fun w ->
         {
           w_index = w.index;
           w_tasks = Atomic.get w.tasks_done;
           w_entries = Atomic.get w.entries_sorted;
           w_io = Extmem.Io_stats.snapshot (Extmem.Device.stats w.dev);
         })
       t.workers)

let worker_stats t = if t.shut then t.final_stats else live_worker_stats t

(* Shutdown joins the workers and releases every worker resource on the
   main thread, so it is safe on any exit path: on an abort the queue is
   cleared first (pending tasks are dropped — their pending run slots
   are never read, the whole sort is being torn down) and workers exit
   as soon as their current task finishes. *)
let shutdown t =
  if not t.shut then begin
    Mutex.lock t.lock;
    t.stopping <- true;
    t.in_flight <- t.in_flight - Queue.length t.queue;
    Queue.clear t.queue;
    Condition.broadcast t.work_ready;
    Condition.broadcast t.space_ready;
    Mutex.unlock t.lock;
    Array.iter
      (fun w ->
        match w.domain with
        | Some d ->
            Domain.join d;
            w.domain <- None
        | None -> ())
      t.workers;
    t.completions <- [];
    t.final_stats <- live_worker_stats t;
    t.final_io <- Some (live_io t);
    t.final_sim_ms <- live_sim_ms t;
    t.shut <- true;
    Array.iter
      (fun w ->
        Extmem.Frame_arena.give w.sub_arena w.buffer;
        Extmem.Frame_arena.close_lease w.lease;
        Extmem.Frame_arena.close w.sub_arena;
        Extmem.Device.close w.dev)
      t.workers
  end
