(* A hand-rolled domain pool for parallel subtree sorts.

   NEXSORT's subtree sorts are independent by construction (§4): by the
   time a subtree collapses, its entries are complete and nothing else
   reads them.  The main thread stays the only owner of the session —
   stacks, budget decisions, run-id assignment — and workers get the
   work that is pure given its inputs: rebuild the forest from an entry
   list, sort it, serialize it to a private scratch device; or (for
   subtrees that exceed the arena) a whole key-path external merge sort
   over a private scratch arena.

   Since the engine refactor the pool itself is just the domains and the
   task queue: it owns no devices, no buffers and no memory.  Every
   job-owned resource lives in a {e view} — per-worker scratch run
   devices, writer buffers (reserved in the job's budget), the run store
   runs are installed into, and the external-sort headroom budget — so
   one pool can serve many concurrent jobs with different block sizes,
   and a job's I/O counters never mix with another tenant's.

   Determinism is by construction rather than by locking discipline:

   - Run ids are assigned on the main thread ([Run_store.reserve]) at
     exactly the sequence points where the single-threaded path would
     call [finish_run], so the id order never depends on worker timing.
   - Workers are pure given their task: they receive already-encoded
     payloads, sort them as entry views and re-emit the same bytes —
     no dictionary access, no re-encoding (synthesized End entries are
     name-free and produced in a worker-private scratch encoder).
   - Each task writes to a per-(view, worker) scratch device and runs
     are padded to whole blocks, so a run's block count — and therefore
     every I/O counter — is determined by its content, not by which
     device or worker produced it.
   - External tasks are handed the exact arena size the single-threaded
     path would have leased ([arena_blocks], measured after the same
     reclaim), carved out of the view's headroom budget, so run sizes,
     merge fan-ins and scratch I/O match the [--jobs 1] bill.
   - The job's thread drains its view (one barrier) before anything
     reads a worker-written run. *)

let slab_blocks = 1

type task =
  | Sort of { run : Extmem.Run_store.id; payloads : string list }
  | Copy of { run : Extmem.Run_store.id; payloads : string list }
  | External of {
      run : Extmem.Run_store.id;
      payloads : string list;  (* in scan order *)
      scan : [ `Forward | `Reverse ];
      arena_blocks : int;  (* what the -j1 sort would have leased *)
    }

type completion = {
  c_run : Extmem.Run_store.id;
  c_result : (Extmem.Device.t * Extmem.Extent.t, exn) result;
}

type worker = {
  index : int;
  scratch : Extmem.Codec.Enc.t;  (* worker-private entry/record encoder *)
  mutable domain : unit Domain.t option;
}

type worker_stats = {
  w_index : int;
  w_tasks : int;
  w_entries : int;
  w_io : Extmem.Io_stats.t;
}

type view = {
  v_config : Config.t;
  v_runs : Extmem.Run_store.t;
  v_budget : Extmem.Memory_budget.t;  (* writer buffers reserved here *)
  v_ext_budget : Extmem.Memory_budget.t option;
  v_devs : Extmem.Device.t array;     (* per-worker scratch run devices *)
  v_buffers : bytes array;            (* per-worker run-writer buffers *)
  v_tasks_done : int Atomic.t array;
  v_entries : int Atomic.t array;
  v_stats_lock : Mutex.t;             (* guards the scratch-device totals *)
  v_temp_io : Extmem.Io_stats.t;      (* retired external-sort temp devices *)
  mutable v_temp_sim : float;
  mutable v_leaked : int;             (* blocks an aborted task failed to return *)
  (* the fields below are guarded by the pool lock *)
  mutable v_in_flight : int;
  mutable v_completions : completion list;
  mutable v_closed : bool;
  (* totals captured at close, once the view devices are gone *)
  mutable v_final_io : Extmem.Io_stats.t option;
  mutable v_final_sim : float;
  mutable v_final_stats : worker_stats list;
}

type t = {
  lock : Mutex.t;
  work_ready : Condition.t;   (* queue went non-empty, or stopping *)
  space_ready : Condition.t;  (* queue dropped below its bound *)
  done_ready : Condition.t;   (* a task completed *)
  queue : (view * task) Queue.t;
  max_queue : int;
  mutable stopping : bool;
  workers : worker array;
  tracer : Obs.Tracer.t;
  (* pre-interned event names; emitting is lock-free *)
  tr_idle : int;
  tr_sort : int;
  tr_copy : int;
  tr_external : int;
  tr_submit_wait : int;
  tr_install : int;
}

let workers t = Array.length t.workers

let task_run = function
  | Sort { run; _ } | Copy { run; _ } | External { run; _ } -> run

(* An external subtree sort, entirely off-session: key-path records are
   built from the payload views by the same pure stream the
   single-threaded path uses, the sort's arena is a private sub-budget
   carved from the view's headroom (sized exactly like the -j1 lease),
   and scratch I/O retires into the view's temp totals. *)
let run_external_task v w ~arena_blocks ~scan payloads emit =
  let config = v.v_config in
  let encoding = config.Config.encoding in
  let depth_limit = config.Config.depth_limit in
  let pending = ref (List.map (Entry.View.of_payload encoding) payloads) in
  let input () =
    match !pending with
    | [] -> None
    | x :: rest ->
        pending := rest;
        Some x
  in
  let records =
    match scan with
    | `Forward -> Forest.forward_records ~enc:w.scratch ~depth_limit input
    | `Reverse -> Forest.reverse_records ~enc:w.scratch ~depth_limit input
  in
  let ext_budget =
    match v.v_ext_budget with
    | Some b -> b
    | None -> invalid_arg "Sort_pool: external task on a view without headroom"
  in
  let sub =
    Extmem.Memory_budget.carve ext_budget
      ~who:(Printf.sprintf "external sort (worker %d)" w.index)
      ~blocks:arena_blocks ()
  in
  let temp = Config.scratch_device config ~name:"temp" in
  Fun.protect
    ~finally:(fun () ->
      Mutex.protect v.v_stats_lock (fun () ->
          Extmem.Io_stats.accumulate ~into:v.v_temp_io (Extmem.Device.stats temp);
          v.v_temp_sim <- v.v_temp_sim +. Extmem.Device.simulated_ms temp;
          let leak = Extmem.Memory_budget.used_blocks sub in
          if leak > 0 then v.v_leaked <- v.v_leaked + leak);
      Extmem.Device.close temp;
      (* a leak is counted above, never masked by an uncarve raise *)
      Extmem.Memory_budget.uncarve ~force:true sub)
    (fun () ->
      let output, finish = Forest.keypath_output ~encoding ~enc:w.scratch emit in
      ignore
        (Extsort.External_sort.sort ~budget:sub ~temp ~cmp:Keypath.compare_encoded
           ~input:records ~output ()
          : Extsort.External_sort.stats);
      finish ())

let run_task (v, task) w =
  let writer = Extmem.Block_writer.create ~buffer:v.v_buffers.(w.index) v.v_devs.(w.index) in
  let emit = Extmem.Block_writer.write_record writer in
  (match task with
  | Sort { payloads; _ } ->
      let packed = v.v_config.Config.encoding = Config.Packed in
      let views = List.map (Entry.View.of_payload v.v_config.Config.encoding) payloads in
      let forest =
        Forest.sort_forest ~depth_limit:v.v_config.Config.depth_limit
          (Forest.build_forest views)
      in
      List.iter (Forest.emit_node ~packed w.scratch emit) forest;
      ignore (Atomic.fetch_and_add v.v_entries.(w.index) (List.length payloads))
  | Copy { payloads; _ } ->
      List.iter emit payloads;
      ignore (Atomic.fetch_and_add v.v_entries.(w.index) (List.length payloads))
  | External { payloads; scan; arena_blocks; _ } ->
      run_external_task v w ~arena_blocks ~scan payloads emit;
      ignore (Atomic.fetch_and_add v.v_entries.(w.index) (List.length payloads)));
  let extent = Extmem.Block_writer.close writer in
  Atomic.incr v.v_tasks_done.(w.index);
  (v.v_devs.(w.index), extent)

let rec worker_loop t w =
  (* idle covers lock acquisition and the empty-queue wait: everything
     the worker does that is not running a task *)
  Obs.Tracer.begin_span t.tracer t.tr_idle;
  Mutex.lock t.lock;
  while Queue.is_empty t.queue && not t.stopping do
    Condition.wait t.work_ready t.lock
  done;
  if Queue.is_empty t.queue then begin
    Mutex.unlock t.lock;
    (* stopping, nothing left *)
    Obs.Tracer.end_span t.tracer t.tr_idle
  end
  else begin
    let ((v, task) as item) = Queue.pop t.queue in
    Condition.broadcast t.space_ready;
    Mutex.unlock t.lock;
    Obs.Tracer.end_span t.tracer t.tr_idle;
    let tr_task =
      match task with
      | Sort _ -> t.tr_sort
      | Copy _ -> t.tr_copy
      | External _ -> t.tr_external
    in
    Obs.Tracer.begin_span t.tracer tr_task;
    let result = try Ok (run_task item w) with e -> Error e in
    Obs.Tracer.end_span t.tracer tr_task;
    Mutex.lock t.lock;
    v.v_completions <- { c_run = task_run task; c_result = result } :: v.v_completions;
    v.v_in_flight <- v.v_in_flight - 1;
    Condition.broadcast t.done_ready;
    Mutex.unlock t.lock;
    worker_loop t w
  end

let create ?(tracer = Obs.Tracer.null) ~workers:n () =
  if n < 1 then invalid_arg "Sort_pool.create: need at least one worker";
  let t =
    {
      lock = Mutex.create ();
      work_ready = Condition.create ();
      space_ready = Condition.create ();
      done_ready = Condition.create ();
      queue = Queue.create ();
      max_queue = 2 * n;
      stopping = false;
      workers =
        Array.init n (fun i ->
            { index = i; scratch = Extmem.Codec.Enc.create ~capacity:32 (); domain = None });
      tracer;
      tr_idle = Obs.Tracer.intern tracer "worker.idle";
      tr_sort = Obs.Tracer.intern tracer "task:sort";
      tr_copy = Obs.Tracer.intern tracer "task:copy";
      tr_external = Obs.Tracer.intern tracer "task:external";
      tr_submit_wait = Obs.Tracer.intern tracer "pool.submit.wait";
      tr_install = Obs.Tracer.intern tracer "run.install";
    }
  in
  Array.iter
    (fun w ->
      w.domain <-
        Some
          (Domain.spawn (fun () ->
               Obs.Tracer.register_track tracer (Printf.sprintf "worker %d" w.index);
               worker_loop t w)))
    t.workers;
  t

let view t ~(config : Config.t) ~runs ~budget ~ext_budget =
  let n = Array.length t.workers in
  (* the per-worker run-writer buffers are the job's memory: reserved in
     the job budget, which [Session.create] inflates by exactly this
     total so the blocks visible to the algorithm are unchanged *)
  Extmem.Memory_budget.reserve budget ~who:"pool writer buffers" (n * slab_blocks);
  let bs = config.Config.block_size in
  {
    v_config = config;
    v_runs = runs;
    v_budget = budget;
    v_ext_budget = ext_budget;
    v_devs =
      Array.init n (fun i -> Config.scratch_device config ~name:(Printf.sprintf "runs-w%d" i));
    v_buffers = Array.init n (fun _ -> Bytes.create bs);
    v_tasks_done = Array.init n (fun _ -> Atomic.make 0);
    v_entries = Array.init n (fun _ -> Atomic.make 0);
    v_stats_lock = Mutex.create ();
    v_temp_io = Extmem.Io_stats.create ();
    v_temp_sim = 0.;
    v_leaked = 0;
    v_in_flight = 0;
    v_completions = [];
    v_closed = false;
    v_final_io = None;
    v_final_sim = 0.;
    v_final_stats = [];
  }

let submit t v task =
  Mutex.lock t.lock;
  if t.stopping || v.v_closed then begin
    Mutex.unlock t.lock;
    invalid_arg "Sort_pool.submit: pool or view is shut down"
  end;
  if Queue.length t.queue >= t.max_queue then begin
    (* backpressure: the producer blocks until a worker frees a slot *)
    Obs.Tracer.begin_span t.tracer t.tr_submit_wait;
    while Queue.length t.queue >= t.max_queue do
      Condition.wait t.space_ready t.lock
    done;
    Obs.Tracer.end_span t.tracer t.tr_submit_wait
  end;
  Queue.push (v, task) t.queue;
  v.v_in_flight <- v.v_in_flight + 1;
  Condition.broadcast t.work_ready;
  Mutex.unlock t.lock

let submit_sort t v ~run payloads = submit t v (Sort { run; payloads })

let submit_copy t v ~run payloads = submit t v (Copy { run; payloads })

let submit_external t v ~run ~scan ~arena_blocks payloads =
  submit t v (External { run; payloads; scan; arena_blocks })

(* Install the finished runs in id order and surface the first failure
   (by run id, i.e. by submission order — not by completion timing) with
   its original exception identity, so fault classification upstream
   sees the same [Device.Fault] it would on the single-threaded path. *)
let install_completions t v cs =
  let cs = List.sort (fun a b -> compare a.c_run b.c_run) cs in
  let first_error = ref None in
  List.iter
    (fun c ->
      match c.c_result with
      | Ok (dev, extent) ->
          Obs.Tracer.instant t.tracer t.tr_install;
          Extmem.Run_store.install v.v_runs c.c_run ~dev ~extent
      | Error e -> if Option.is_none !first_error then first_error := Some e)
    cs;
  match !first_error with None -> () | Some e -> raise e

let drain t v =
  Mutex.lock t.lock;
  while v.v_in_flight > 0 do
    Condition.wait t.done_ready t.lock
  done;
  let cs = v.v_completions in
  v.v_completions <- [];
  Mutex.unlock t.lock;
  install_completions t v cs

let live_io v =
  Array.fold_left
    (fun acc d -> Extmem.Io_stats.add acc (Extmem.Io_stats.snapshot (Extmem.Device.stats d)))
    (Extmem.Io_stats.create ()) v.v_devs

let io v =
  match v.v_final_io with Some s -> Extmem.Io_stats.snapshot s | None -> live_io v

let live_sim_ms v =
  Array.fold_left (fun acc d -> acc +. Extmem.Device.simulated_ms d) 0. v.v_devs

let sim_ms v = if v.v_closed then v.v_final_sim else live_sim_ms v

let temp_io v = Mutex.protect v.v_stats_lock (fun () -> Extmem.Io_stats.snapshot v.v_temp_io)

let temp_sim_ms v = Mutex.protect v.v_stats_lock (fun () -> v.v_temp_sim)

let leaked_blocks v = Mutex.protect v.v_stats_lock (fun () -> v.v_leaked)

let live_worker_stats v =
  Array.to_list
    (Array.init (Array.length v.v_devs) (fun i ->
         {
           w_index = i;
           w_tasks = Atomic.get v.v_tasks_done.(i);
           w_entries = Atomic.get v.v_entries.(i);
           w_io = Extmem.Io_stats.snapshot (Extmem.Device.stats v.v_devs.(i));
         }))

let worker_stats v = if v.v_closed then v.v_final_stats else live_worker_stats v

(* Close a job's view: drop its queued tasks (abort path: their reserved
   run slots are never read, the whole job is being torn down), wait out
   its in-flight task, snapshot the totals, and release the view's
   devices and writer-buffer reservation.  The pool and the other
   tenants' views are untouched. *)
let close_view t v =
  Mutex.lock t.lock;
  if v.v_closed then Mutex.unlock t.lock
  else begin
    (* remove this view's queued tasks, preserving the others' order *)
    let keep = Queue.create () in
    Queue.iter
      (fun ((v', _) as item) ->
        if v' == v then v.v_in_flight <- v.v_in_flight - 1 else Queue.push item keep)
      t.queue;
    Queue.clear t.queue;
    Queue.transfer keep t.queue;
    Condition.broadcast t.space_ready;
    while v.v_in_flight > 0 do
      Condition.wait t.done_ready t.lock
    done;
    v.v_completions <- [];
    v.v_closed <- true;
    Mutex.unlock t.lock;
    v.v_final_stats <- live_worker_stats v;
    v.v_final_io <- Some (live_io v);
    v.v_final_sim <- live_sim_ms v;
    Extmem.Memory_budget.release v.v_budget ~who:"pool writer buffers"
      (Array.length v.v_devs * slab_blocks);
    Array.iter Extmem.Device.close v.v_devs
  end

(* Stop and join the workers.  Views must be closed first (every job
   torn down); any task still queued here belongs to a live view, whose
   drain would deadlock after shutdown, so refuse instead of dropping
   other tenants' work silently. *)
let shutdown t =
  Mutex.lock t.lock;
  if t.stopping then Mutex.unlock t.lock
  else begin
    t.stopping <- true;
    Queue.iter (fun (v, _) -> v.v_in_flight <- v.v_in_flight - 1) t.queue;
    Queue.clear t.queue;
    Condition.broadcast t.work_ready;
    Condition.broadcast t.space_ready;
    Mutex.unlock t.lock;
    Array.iter
      (fun w ->
        match w.domain with
        | Some d ->
            Domain.join d;
            w.domain <- None
        | None -> ())
      t.workers
  end
