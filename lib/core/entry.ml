type t =
  | Start of {
      level : int;
      pos : int;
      name : string;
      attrs : Xmlio.Event.attr list;
      key : Key.t option;
    }
  | End of { level : int; pos : int; key : Key.t option }
  | Text of { level : int; pos : int; content : string }
  | Run_ptr of {
      level : int;
      pos : int;
      key : Key.t;
      run : Extmem.Run_store.id;
      bytes : int;
    }

let level = function
  | Start { level; _ } | End { level; _ } | Text { level; _ } | Run_ptr { level; _ } -> level

let pos = function
  | Start { pos; _ } | End { pos; _ } | Text { pos; _ } | Run_ptr { pos; _ } -> pos

let sibling_key = function
  | Start { key; _ } -> Option.value key ~default:Key.Null
  | Run_ptr { key; _ } -> key
  | Text _ | End _ -> Key.Null

let tag_start = 0
let tag_end = 1
let tag_text = 2
let tag_run_ptr = 3

let put_name enc dict e name =
  match enc with
  | Config.Plain -> Extmem.Codec.Enc.add_string e name
  | Config.Dict | Config.Packed -> Extmem.Codec.Enc.add_varint e (Xmlio.Dict.intern dict name)

let get_name enc dict c =
  match enc with
  | Config.Plain -> Extmem.Codec.get_string c
  | Config.Dict | Config.Packed -> Xmlio.Dict.lookup dict (Extmem.Codec.get_varint c)

let encode_to enc dict b e =
  Extmem.Codec.Enc.clear b;
  (match e with
  | Start { level; pos; name; attrs; key } ->
      Extmem.Codec.Enc.add_u8 b tag_start;
      Extmem.Codec.Enc.add_varint b level;
      Extmem.Codec.Enc.add_varint b pos;
      put_name enc dict b name;
      Key.encode_opt_enc b key;
      Extmem.Codec.Enc.add_varint b (List.length attrs);
      List.iter
        (fun (k, v) ->
          put_name enc dict b k;
          Extmem.Codec.Enc.add_string b v)
        attrs
  | End { level; pos; key } ->
      Extmem.Codec.Enc.add_u8 b tag_end;
      Extmem.Codec.Enc.add_varint b level;
      Extmem.Codec.Enc.add_varint b pos;
      Key.encode_opt_enc b key
  | Text { level; pos; content } ->
      Extmem.Codec.Enc.add_u8 b tag_text;
      Extmem.Codec.Enc.add_varint b level;
      Extmem.Codec.Enc.add_varint b pos;
      Extmem.Codec.Enc.add_string b content
  | Run_ptr { level; pos; key; run; bytes } ->
      Extmem.Codec.Enc.add_u8 b tag_run_ptr;
      Extmem.Codec.Enc.add_varint b level;
      Extmem.Codec.Enc.add_varint b pos;
      Key.encode_enc b key;
      Extmem.Codec.Enc.add_varint b run;
      Extmem.Codec.Enc.add_varint b bytes);
  Extmem.Codec.Enc.contents b

let encode enc dict e = encode_to enc dict (Extmem.Codec.Enc.create ~capacity:64 ()) e

(* Encode a Start entry straight from a parser-packed event: no [t] record,
   no attr assoc list, and when the parser shares the session dict the
   name ids are already resolved (no dictionary probe here). *)
let encode_start_of_packed enc dict b ~level ~pos ~key (pk : Xmlio.Event.packed) =
  Extmem.Codec.Enc.clear b;
  Extmem.Codec.Enc.add_u8 b tag_start;
  Extmem.Codec.Enc.add_varint b level;
  Extmem.Codec.Enc.add_varint b pos;
  let put_packed_name name id =
    match enc with
    | Config.Plain -> Extmem.Codec.Enc.add_string b name
    | Config.Dict | Config.Packed ->
        Extmem.Codec.Enc.add_varint b (if id >= 0 then id else Xmlio.Dict.intern dict name)
  in
  put_packed_name pk.Xmlio.Event.pname pk.Xmlio.Event.pname_id;
  Key.encode_opt_enc b key;
  let n = pk.Xmlio.Event.pnattrs in
  Extmem.Codec.Enc.add_varint b n;
  for i = 0 to n - 1 do
    put_packed_name pk.Xmlio.Event.pattr_names.(i) pk.Xmlio.Event.pattr_ids.(i);
    Extmem.Codec.Enc.add_string b pk.Xmlio.Event.pattr_values.(i)
  done;
  Extmem.Codec.Enc.contents b

let encode_text_to b ~level ~pos content =
  Extmem.Codec.Enc.clear b;
  Extmem.Codec.Enc.add_u8 b tag_text;
  Extmem.Codec.Enc.add_varint b level;
  Extmem.Codec.Enc.add_varint b pos;
  Extmem.Codec.Enc.add_string b content;
  Extmem.Codec.Enc.contents b

let encode_end_to b ~level ~pos ~key =
  Extmem.Codec.Enc.clear b;
  Extmem.Codec.Enc.add_u8 b tag_end;
  Extmem.Codec.Enc.add_varint b level;
  Extmem.Codec.Enc.add_varint b pos;
  Key.encode_opt_enc b key;
  Extmem.Codec.Enc.contents b

let decode enc dict s =
  let c = Extmem.Codec.cursor s in
  let tag = Extmem.Codec.get_u8 c in
  let level = Extmem.Codec.get_varint c in
  let pos = Extmem.Codec.get_varint c in
  if tag = tag_start then begin
    let name = get_name enc dict c in
    let key = Key.decode_opt c in
    let nattrs = Extmem.Codec.get_varint c in
    (* explicit loop: the order of decoding side effects matters *)
    let rec read_attrs n acc =
      if n = 0 then List.rev acc
      else begin
        let k = get_name enc dict c in
        let v = Extmem.Codec.get_string c in
        read_attrs (n - 1) ((k, v) :: acc)
      end
    in
    let attrs = read_attrs nattrs [] in
    Start { level; pos; name; attrs; key }
  end
  else if tag = tag_end then End { level; pos; key = Key.decode_opt c }
  else if tag = tag_text then Text { level; pos; content = Extmem.Codec.get_string c }
  else if tag = tag_run_ptr then begin
    let key = Key.decode c in
    let run = Extmem.Codec.get_varint c in
    let bytes = Extmem.Codec.get_varint c in
    Run_ptr { level; pos; key; run; bytes }
  end
  else raise (Extmem.Codec.Corrupt (Printf.sprintf "Entry.decode: bad tag %d" tag))

module View = struct
  type kind =
    | Vstart
    | Vend
    | Vtext
    | Vrun_ptr

  type t = {
    payload : string;
    enc : Config.encoding;
    kind : kind;
    level : int;
    pos : int;
    body : int;
  }

  let of_payload enc payload =
    let c = Extmem.Codec.cursor payload in
    let tag = Extmem.Codec.get_u8 c in
    let level = Extmem.Codec.get_varint c in
    let pos = Extmem.Codec.get_varint c in
    let kind =
      if tag = tag_start then Vstart
      else if tag = tag_end then Vend
      else if tag = tag_text then Vtext
      else if tag = tag_run_ptr then Vrun_ptr
      else raise (Extmem.Codec.Corrupt (Printf.sprintf "Entry.View: bad tag %d" tag))
    in
    { payload; enc; kind; level; pos; body = c.Extmem.Codec.pos }

  let payload v = v.payload
  let kind v = v.kind
  let level v = v.level
  let pos v = v.pos

  let skip_name v c =
    match v.enc with
    | Config.Plain -> Extmem.Codec.skip_string c
    | Config.Dict | Config.Packed -> Extmem.Codec.skip_varint c

  (* Field reads below re-cursor into the payload on demand: nothing past
     [body] is touched (or allocated) unless a consumer asks for it. *)

  let start_key v =
    let c = Extmem.Codec.cursor ~pos:v.body v.payload in
    skip_name v c;
    Key.decode_opt c

  let end_key v = Key.decode_opt (Extmem.Codec.cursor ~pos:v.body v.payload)

  let sibling_key v =
    match v.kind with
    | Vstart -> ( match start_key v with Some k -> k | None -> Key.Null)
    | Vrun_ptr -> Key.decode (Extmem.Codec.cursor ~pos:v.body v.payload)
    | Vtext | Vend -> Key.Null

  let run_ptr v =
    let c = Extmem.Codec.cursor ~pos:v.body v.payload in
    let key = Key.decode c in
    let run = Extmem.Codec.get_varint c in
    let bytes = Extmem.Codec.get_varint c in
    (key, run, bytes)

  let to_entry dict v = decode v.enc dict v.payload
end

let pp ppf = function
  | Start { level; pos; name; attrs; key } ->
      Format.fprintf ppf "Start(l%d p%d <%s%s> key=%s)" level pos name
        (String.concat "" (List.map (fun (k, v) -> Printf.sprintf " %s=%S" k v) attrs))
        (match key with Some k -> Key.to_string k | None -> "-")
  | End { level; pos; key } ->
      Format.fprintf ppf "End(l%d p%d key=%s)" level pos
        (match key with Some k -> Key.to_string k | None -> "-")
  | Text { level; pos; content } -> Format.fprintf ppf "Text(l%d p%d %S)" level pos content
  | Run_ptr { level; pos; key; run; bytes } ->
      Format.fprintf ppf "Run_ptr(l%d p%d key=%s run=%d %dB)" level pos (Key.to_string key) run
        bytes
