(** Data-stack and sorted-run entries.

    NEXSORT's on-disk representation of "a unit of XML data" (Figure 4).
    Entries appear in three places with one encoding: on the external data
    stack during the sorting phase, inside sorted runs, and as the payload
    of key-path records during external subtree sorts.

    Every entry carries its absolute document level (root element =
    level 1), which lets any consumer rebuild the tree shape without
    relying on end-tag entries — the basis of §3.2's end-tag elimination.
    [Start] entries carry the element's key when the ordering is
    scan-evaluable; otherwise the key travels on the matching [End] entry
    (evaluated by the streaming {!Ordering.Evaluator} during the scan,
    §3.2's path-stack augmentation).  [pos] fields are document positions
    used as the uniqueness tiebreak.

    The encoding implements the compaction techniques of §3.2: with
    {!Config.Dict} and {!Config.Packed}, tag and attribute names are
    dictionary-coded integers; with {!Config.Packed} the sorting phase
    additionally never materialises [End] entries (output reconstructs end
    tags from level transitions). *)

type t =
  | Start of {
      level : int;
      pos : int;
      name : string;
      attrs : Xmlio.Event.attr list;
      key : Key.t option;  (** present iff scan-evaluable ordering *)
    }
  | End of {
      level : int;  (** level of the element being closed *)
      pos : int;    (** document position of that element *)
      key : Key.t option;  (** present iff subtree-derived ordering *)
    }
  | Text of {
      level : int;  (** level of the text node itself (parent level + 1) *)
      pos : int;
      content : string;
    }
  | Run_ptr of {
      level : int;  (** level of the collapsed subtree's root element *)
      pos : int;    (** document position of that element *)
      key : Key.t;  (** its sort key, for ordering among its siblings *)
      run : Extmem.Run_store.id;
      bytes : int;  (** on-stack byte size the subtree had when collapsed *)
    }

val level : t -> int

val pos : t -> int

val sibling_key : t -> Key.t
(** The key this entry sorts by among its siblings: the element key for
    [Start]/[Run_ptr] ([Null] when it is on the [End] entry instead),
    [Null] for [Text]. *)

val encode : Config.encoding -> Xmlio.Dict.t -> t -> string
(** Serialize.  The dictionary is consulted/extended for [Dict]/[Packed];
    ignored for [Plain]. *)

val encode_to : Config.encoding -> Xmlio.Dict.t -> Extmem.Codec.Enc.t -> t -> string
(** {!encode} through a reusable scratch encoder (cleared first); the
    returned string is freshly allocated, the scratch only amortizes the
    intermediate buffer. *)

val encode_start_of_packed :
  Config.encoding ->
  Xmlio.Dict.t ->
  Extmem.Codec.Enc.t ->
  level:int ->
  pos:int ->
  key:Key.t option ->
  Xmlio.Event.packed ->
  string
(** Encode a [Start] entry directly from a parser-packed event: no [t]
    record or attr assoc list is built, and name ids already resolved by
    the parser (against the same dictionary) are written as-is.  Produces
    exactly the bytes {!encode} would for the equivalent [Start]. *)

val encode_text_to : Extmem.Codec.Enc.t -> level:int -> pos:int -> string -> string
(** Encode a [Text] entry without building the [t] record. *)

val encode_end_to : Extmem.Codec.Enc.t -> level:int -> pos:int -> key:Key.t option -> string
(** Encode an [End] entry without building the [t] record. *)

val decode : Config.encoding -> Xmlio.Dict.t -> string -> t
(** Inverse of {!encode} for the same encoding and dictionary.
    @raise Extmem.Codec.Corrupt on malformed bytes. *)

(** In-place entry views.

    A [View.t] wraps an encoded entry and reads fields straight off the
    bytes: the header (tag, level, pos) is decoded once at construction;
    keys are decoded on demand; names, attributes and text are never
    materialized.  Sorting and merging operate entirely on views — the
    original payload travels through {!Forest} and {!Subtree_sort} and is
    re-emitted verbatim, so sorted output is byte-identical to the input
    entries without a decode/re-encode round trip (and without consulting
    the dictionary at all). *)

type entry := t

module View : sig
  type kind =
    | Vstart
    | Vend
    | Vtext
    | Vrun_ptr

  type t

  val of_payload : Config.encoding -> string -> t
  (** Wrap one encoded entry.  @raise Extmem.Codec.Corrupt on a bad tag. *)

  val payload : t -> string
  (** The encoded bytes, byte-identical to what was passed in. *)

  val kind : t -> kind
  val level : t -> int
  val pos : t -> int

  val sibling_key : t -> Key.t
  (** Same semantics as {!Entry.sibling_key}, decoded on demand. *)

  val start_key : t -> Key.t option
  (** The key option of a [Vstart] view. *)

  val end_key : t -> Key.t option
  (** The key option of a [Vend] view. *)

  val run_ptr : t -> Key.t * Extmem.Run_store.id * int
  (** [(key, run, bytes)] of a [Vrun_ptr] view. *)

  val to_entry : Xmlio.Dict.t -> t -> entry
  (** Full decode, for consumers that need names/attributes/text. *)
end

val pp : Format.formatter -> t -> unit
