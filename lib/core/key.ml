type t =
  | Null
  | Num of float
  | Str of string
  | Rev of t
  | Tuple of t list

let of_string s =
  if s = "" then Str ""
  else
    match float_of_string_opt s with
    | Some f when Float.is_finite f -> Num f
    | Some _ | None -> Str s

(* rank for comparisons across constructors: Null < Num < Str < Rev < Tuple *)
let rank = function
  | Null -> 0
  | Num _ -> 1
  | Str _ -> 2
  | Rev _ -> 3
  | Tuple _ -> 4

let rec compare a b =
  match (a, b) with
  | Null, Null -> 0
  | Num x, Num y -> Float.compare x y
  | Str x, Str y -> String.compare x y
  | Rev x, Rev y -> compare y x
  | Tuple xs, Tuple ys ->
      let rec go xs ys =
        match (xs, ys) with
        | [], [] -> 0
        | [], _ :: _ -> -1
        | _ :: _, [] -> 1
        | x :: xs', y :: ys' ->
            let c = compare x y in
            if c <> 0 then c else go xs' ys'
      in
      go xs ys
  | a, b -> Stdlib.compare (rank a) (rank b)

let equal a b = compare a b = 0

let rec encode buf = function
  | Null -> Extmem.Codec.put_u8 buf 0
  | Num f ->
      Extmem.Codec.put_u8 buf 1;
      Extmem.Codec.put_f64 buf f
  | Str s ->
      Extmem.Codec.put_u8 buf 2;
      Extmem.Codec.put_string buf s
  | Rev k ->
      Extmem.Codec.put_u8 buf 3;
      encode buf k
  | Tuple ks ->
      Extmem.Codec.put_u8 buf 4;
      Extmem.Codec.put_varint buf (List.length ks);
      List.iter (encode buf) ks

let rec decode c =
  match Extmem.Codec.get_u8 c with
  | 0 -> Null
  | 1 -> Num (Extmem.Codec.get_f64 c)
  | 2 -> Str (Extmem.Codec.get_string c)
  | 3 -> Rev (decode c)
  | 4 ->
      let n = Extmem.Codec.get_varint c in
      let rec ks n acc = if n = 0 then List.rev acc else ks (n - 1) (decode c :: acc) in
      Tuple (ks n [])
  | n -> raise (Extmem.Codec.Corrupt (Printf.sprintf "Key.decode: bad tag %d" n))

let rec encode_enc enc = function
  | Null -> Extmem.Codec.Enc.add_u8 enc 0
  | Num f ->
      Extmem.Codec.Enc.add_u8 enc 1;
      Extmem.Codec.Enc.add_f64 enc f
  | Str s ->
      Extmem.Codec.Enc.add_u8 enc 2;
      Extmem.Codec.Enc.add_string enc s
  | Rev k ->
      Extmem.Codec.Enc.add_u8 enc 3;
      encode_enc enc k
  | Tuple ks ->
      Extmem.Codec.Enc.add_u8 enc 4;
      Extmem.Codec.Enc.add_varint enc (List.length ks);
      List.iter (encode_enc enc) ks

let encode_opt buf = function
  | None -> Extmem.Codec.put_u8 buf 255
  | Some k -> encode buf k

let encode_opt_enc enc = function
  | None -> Extmem.Codec.Enc.add_u8 enc 255
  | Some k -> encode_enc enc k

let decode_opt c =
  match Extmem.Codec.get_u8 c with
  | 255 -> None
  | n ->
      (* re-dispatch on the already-consumed tag *)
      c.Extmem.Codec.pos <- c.Extmem.Codec.pos - 1;
      ignore n;
      Some (decode c)

let rec skip c =
  match Extmem.Codec.get_u8 c with
  | 0 -> ()
  | 1 ->
      Extmem.Codec.need c 8;
      c.Extmem.Codec.pos <- c.Extmem.Codec.pos + 8
  | 2 -> Extmem.Codec.skip_string c
  | 3 -> skip c
  | 4 ->
      let n = Extmem.Codec.get_varint c in
      for _ = 1 to n do
        skip c
      done
  | n -> raise (Extmem.Codec.Corrupt (Printf.sprintf "Key.skip: bad tag %d" n))

let skip_opt c =
  match Extmem.Codec.get_u8 c with
  | 255 -> ()
  | _ ->
      c.Extmem.Codec.pos <- c.Extmem.Codec.pos - 1;
      skip c

(* Order two encoded keys directly on the wire bytes, without building the
   [t] trees.  Same result as [compare (decode ca) (decode cb)].  Tag bytes
   coincide with constructor ranks, so cross-constructor comparisons reduce
   to a tag compare.  When the result is 0 both cursors sit just past their
   keys; on a non-zero result the cursor positions are unspecified (callers
   stop reading once an order is known). *)
let rec compare_cursors ca cb =
  let ta = Extmem.Codec.get_u8 ca and tb = Extmem.Codec.get_u8 cb in
  if ta <> tb then Stdlib.compare ta tb
  else
    match ta with
    | 0 -> 0
    | 1 ->
        let fa = Extmem.Codec.get_f64 ca in
        let fb = Extmem.Codec.get_f64 cb in
        Float.compare fa fb
    | 2 ->
        let ao, al = Extmem.Codec.get_string_slice ca in
        let bo, bl = Extmem.Codec.get_string_slice cb in
        Extmem.Codec.compare_sub ca.Extmem.Codec.buf ao al cb.Extmem.Codec.buf bo bl
    | 3 -> compare_cursors cb ca
    | 4 ->
        let na = Extmem.Codec.get_varint ca in
        let nb = Extmem.Codec.get_varint cb in
        let n = if na < nb then na else nb in
        let rec go i =
          if i = n then Stdlib.compare na nb
          else
            let c = compare_cursors ca cb in
            if c <> 0 then c else go (i + 1)
        in
        go 0
    | n -> raise (Extmem.Codec.Corrupt (Printf.sprintf "Key.compare_cursors: bad tag %d" n))

let rec pp ppf = function
  | Null -> Format.pp_print_string ppf "<null>"
  | Num f -> Format.fprintf ppf "%g" f
  | Str s -> Format.fprintf ppf "%S" s
  | Rev k -> Format.fprintf ppf "desc(%a)" pp k
  | Tuple ks ->
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ") pp)
        ks

let to_string k = Format.asprintf "%a" pp k
