(** NEXSORT: I/O-efficient head-to-toe sorting of XML documents
    (Silberstein & Yang, ICDE 2004, Figure 4).

    {b Sorting phase}: the input is scanned once in document order with a
    streaming parser.  Every unit of XML data is pushed onto an external
    data stack; an external path stack records where each open element's
    entries begin, so when an end tag arrives the on-stack size of the
    now-complete subtree is a subtraction of two stack positions.  A
    subtree at least the sort threshold [t] large (or the whole document)
    is popped, sorted — recursively in memory when it fits the arena, by
    key-path external merge sort otherwise — written out as a sorted run,
    and replaced on the stack by a single run-pointer entry carrying its
    root's sort key.  Subtrees therefore never exceed [k*t] bytes on the
    stack, which is where NEXSORT's advantage over flat external merge
    sort comes from.

    {b Output phase}: the collapsed document is a tree of sorted runs
    connected by run pointers; an explicit depth-first traversal driven by
    an external output-location stack streams it back out as XML text.

    {b Extensions} (§3.2), all selectable via {!Config.t}: graceful
    degeneration into external merge sort on flat inputs (incomplete
    sorted runs merged at the parent's end tag), depth-limited sorting,
    compaction (dictionary coding, end-tag elimination), and complex
    subtree-derived ordering criteria evaluated in a single pass during
    the scan. *)

type gc_stats = {
  gc_minor_words : float;      (** words allocated on the minor heap *)
  gc_major_words : float;      (** words allocated on/promoted to the major heap *)
  gc_promoted_words : float;
  gc_minor_collections : int;
  gc_major_collections : int;
}
(** GC-counter delta ({!Gc.quick_stat}) between opening the sort and
    building its report: the allocation cost of the whole record path. *)

type report = {
  events : int;           (** parser events consumed, the model's [N] *)
  elements : int;         (** element count *)
  text_nodes : int;
  height : int;           (** deepest element level observed *)
  subtree_sorts : int;    (** the paper's [x]: number of subtree collapses *)
  in_memory_sorts : int;
  external_sorts : int;   (** subtree sorts that needed key-path extsort *)
  fragment_runs : int;    (** incomplete runs created by degeneration *)
  fragment_merges : int;  (** elements whose fragments had to be merged *)
  runs_created : int;     (** total sorted runs (incl. intermediates) *)
  run_blocks : int;       (** blocks occupied by all runs (Lemma 4.8) *)
  input_io : Extmem.Io_stats.t;
  output_io : Extmem.Io_stats.t;
  breakdown : (string * Extmem.Io_stats.t) list;
      (** stacks / runs / scratch, from {!Session.io_breakdown} *)
  total_io : Extmem.Io_stats.t;  (** everything, input and output included *)
  simulated_ms : float;
      (** simulated I/O time (session + input + output devices) when cost
          layers are attached; [0.] otherwise *)
  wall_seconds : float;
  gc : gc_stats;
  spans : Obs.Span.t;
      (** phase span tree rooted at ["sort"]: [input_scan] (with nested
          [subtree_sorts] / [fragment_write] / [fragment_merge] /
          [root_sort]) and [output], each with wall time and I/O deltas *)
  metrics : Obs.Json.t;
      (** final values of the session's metric registry (stack paging
          counters, run-store gauges, per-device I/O) *)
  arena : (string * Extmem.Frame_arena.owner_stats) list;
      (** per-owner frame-arena accounting (held/peak blocks and cache
          hit/miss/eviction/writeback counters), sorted by owner name;
          owners persist past lease close and cache detach *)
  jobs : int;  (** configured worker count *)
  workers : Sort_pool.worker_stats list;
      (** per-worker tasks/entries/I/O of the parallel path; empty at
          [jobs = 1] *)
}

val sort_device :
  ?config:Config.t ->
  ?session:Session.t ->
  ordering:Ordering.t ->
  input:Extmem.Device.t ->
  output:Extmem.Device.t ->
  unit ->
  report
(** Sort the XML document stored on [input] (its {!Extmem.Device.byte_length}
    bytes) and write the fully sorted document to [output].  The devices'
    own I/O counters record the input/output passes; all intermediate I/O
    is on session-private devices, reported in [breakdown].

    [session] runs the sort over a pre-built session — the engine path,
    where the session carries an engine-carved budget, a shared pool
    view and a cancellation poll.  It is destroyed here on every exit
    path, exactly like a self-created one, and overrides [config] (the
    session's own config is used).

    @raise Xmlio.Parser.Error on malformed input.
    @raise Invalid_argument on a configuration/ordering mismatch (see
    {!Config.validate_ordering}). *)

val sort_string :
  ?config:Config.t -> ordering:Ordering.t -> string -> string * report
(** Convenience wrapper over in-memory devices. *)

type stream
(** An in-progress sort whose output phase is exposed as an XML event
    stream instead of being serialized to a device — the fusion point for
    downstream consumers (e.g. structural merge of several sorted
    documents).  The scan and all subtree sorts run at {!open_stream}
    time; pulling {!stream_events} drives the root's final merge and the
    run-tree traversal lazily. *)

val open_stream :
  ?config:Config.t ->
  ?session:Session.t ->
  ordering:Ordering.t ->
  input:Extmem.Device.t ->
  unit ->
  stream
(** Run the sorting phase on [input] and return the sorted document as a
    pull stream of XML events.  Same raising behaviour (and the same
    [session] semantics — destroyed at {!stream_finish} or on a raise
    here) as {!sort_device}. *)

val stream_events : stream -> Xmlio.Event.t option
(** Next event of the sorted document, [None] at the end. *)

val stream_finish : stream -> report
(** Release the stream's resources (idempotent) and return the report.
    [output_io] is zero — the caller owns whatever the events became. *)

val pp_report : Format.formatter -> report -> unit

val metrics_report : ?tool:string -> config:Config.t -> report -> Obs.Report.t
(** The machine-readable run report behind [--metrics]: sections [config]
    (parameter echo), [counts], [io] (the §4.2 per-phase breakdown —
    [input] / [subtree_sorts] / [stack_paging] / [runs] / [output] — plus
    [total] and the raw per-component stats), [pager] (cache totals over
    the session arena; zero for the streaming NEXSORT pipeline), [arena]
    (per-owner frame accounting), [gc] (allocation words/collections over
    the sort, schema v2), [phases] (the span tree), [metrics] (registry
    dump) and [timing].  [tool] defaults to ["nexsort"]. *)
