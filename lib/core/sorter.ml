let src = Logs.Src.create "nexsort" ~doc:"NEXSORT sorting and output phases"

module Log = (val Logs.src_log src : Logs.LOG)

type gc_stats = {
  gc_minor_words : float;
  gc_major_words : float;
  gc_promoted_words : float;
  gc_minor_collections : int;
  gc_major_collections : int;
}

type report = {
  events : int;
  elements : int;
  text_nodes : int;
  height : int;
  subtree_sorts : int;
  in_memory_sorts : int;
  external_sorts : int;
  fragment_runs : int;
  fragment_merges : int;
  runs_created : int;
  run_blocks : int;
  input_io : Extmem.Io_stats.t;
  output_io : Extmem.Io_stats.t;
  breakdown : (string * Extmem.Io_stats.t) list;
  total_io : Extmem.Io_stats.t;
  simulated_ms : float;
  wall_seconds : float;
  gc : gc_stats;  (** allocation/collection delta over the whole sort *)
  spans : Obs.Span.t;
  metrics : Obs.Json.t;
  arena : (string * Extmem.Frame_arena.owner_stats) list;
  jobs : int;
  workers : Sort_pool.worker_stats list;
}

(* ---- path-stack frames ----

   One frame per open element: where its entries begin on the data stack,
   its identity for tiebreaks, its key when scan-evaluable, and the ids of
   any incomplete sorted runs (fragments) created for it. *)
type frame = {
  loc : int;           (* data-stack position of the element's Start entry *)
  children_loc : int;  (* data-stack position just after the Start entry *)
  fpos : int;          (* document position *)
  flevel : int;        (* level, root = 1 *)
  fkey : Key.t option; (* key when the criterion is scan-evaluable *)
  frags : int list;    (* fragment run ids, in creation order *)
}

let encode_frame f =
  let buf = Buffer.create 32 in
  Extmem.Codec.put_varint buf f.loc;
  Extmem.Codec.put_varint buf f.children_loc;
  Extmem.Codec.put_varint buf f.fpos;
  Extmem.Codec.put_varint buf f.flevel;
  Key.encode_opt buf f.fkey;
  Extmem.Codec.put_varint buf (List.length f.frags);
  List.iter (Extmem.Codec.put_varint buf) f.frags;
  Buffer.contents buf

let decode_frame s =
  let c = Extmem.Codec.cursor s in
  let loc = Extmem.Codec.get_varint c in
  let children_loc = Extmem.Codec.get_varint c in
  let fpos = Extmem.Codec.get_varint c in
  let flevel = Extmem.Codec.get_varint c in
  let fkey = Key.decode_opt c in
  let n = Extmem.Codec.get_varint c in
  let rec ids n acc = if n = 0 then List.rev acc else ids (n - 1) (Extmem.Codec.get_varint c :: acc) in
  { loc; children_loc; fpos; flevel; fkey; frags = ids n [] }

(* ---- output-location stack entries (Figure 4, lines 13-20) ---- *)

let encode_out_loc run off =
  let buf = Buffer.create 8 in
  Extmem.Codec.put_varint buf run;
  Extmem.Codec.put_varint buf off;
  Buffer.contents buf

let decode_out_loc s =
  let c = Extmem.Codec.cursor s in
  let run = Extmem.Codec.get_varint c in
  let off = Extmem.Codec.get_varint c in
  (run, off)

(* ---- the algorithm ---- *)

type state = {
  session : Session.t;
  scan_evaluable : bool;
  evaluator : Ordering.Evaluator.eval;
  mutable pos : int;
  mutable level : int;
  mutable n_events : int;
  mutable n_elements : int;
  mutable n_text : int;
  mutable max_level : int;
  mutable n_subtree_sorts : int;
  mutable n_in_memory : int;
  mutable n_external : int;
  mutable n_fragment_runs : int;
  mutable n_fragment_merges : int;
  (* root fusion: when [fuse], the root's collapse opens its final
     sort/merge as a pull stream here instead of materialising the root
     run; the output phase consumes it *)
  fuse : bool;
  mutable root : ((unit -> string option) * (unit -> unit)) option;
  spans : Obs.Spans.t;
  gc0 : Gc.stat;  (* GC counters when the sort opened (quick_stat) *)
  mw0 : float;  (* Gc.minor_words at open: exact, unlike quick_stat's
                   minor_words which only refreshes at collections *)
}

let in_span st name f = Obs.Spans.with_span st.spans name f

let push_data st entry =
  Extmem.Ext_stack.push st.session.Session.data_stack (Session.encode_entry st.session entry)

let push_payload st payload = Extmem.Ext_stack.push st.session.Session.data_stack payload

(* End entries carry no names, so they encode without touching the
   dictionary — straight through the session scratch encoder *)
let push_end st ~level ~pos ~key =
  push_payload st (Entry.encode_end_to st.session.Session.enc_scratch ~level ~pos ~key)

let push_frame st f = Extmem.Ext_stack.push st.session.Session.path_stack (encode_frame f)

let pop_frame st = decode_frame (Extmem.Ext_stack.pop st.session.Session.path_stack)

let peek_frame st = decode_frame (Extmem.Ext_stack.top st.session.Session.path_stack)

let packed st = st.session.Session.config.Config.encoding = Config.Packed

let depth_limit st = st.session.Session.config.Config.depth_limit

(* Entries of the data-stack range [from_, top), as views over the
   stored payloads — names, attributes and text stay encoded. *)
let collect_views st ~from_ =
  let acc = ref [] in
  Extmem.Ext_stack.iter_entries_from st.session.Session.data_stack ~pos:from_ (fun payload ->
      acc := Session.view_entry st.session payload :: !acc);
  List.rev !acc

(* Same range as raw encoded payloads (for handoff to worker domains). *)
let collect_payloads st ~from_ =
  let acc = ref [] in
  Extmem.Ext_stack.iter_entries_from st.session.Session.data_stack ~pos:from_ (fun payload ->
      acc := payload :: !acc);
  List.rev !acc

(* ---- graceful degeneration (§3.2) ----

   When the children accumulated for the innermost open element fill the
   sorting arena, sort them in memory now and park them as an incomplete
   sorted run, exactly like external merge sort's initial run creation. *)
let maybe_degenerate st =
  if
    st.session.Session.config.Config.degeneration
    && not (Extmem.Ext_stack.is_empty st.session.Session.path_stack)
  then begin
    let top = peek_frame st in
    (* below the depth limit nothing needs sorting: the region will be
       copied verbatim at the element's end, so never fragment it *)
    let below_limit =
      match depth_limit st with
      | Some d -> top.flevel >= d + 1
      | None -> false
    in
    if not below_limit then begin
    let region = Extmem.Ext_stack.length st.session.Session.data_stack - top.children_loc in
    if region >= Session.arena_bytes st.session && region > 0 then begin
      in_span st "fragment_write" @@ fun () ->
      let views = collect_views st ~from_:top.children_loc in
      let forest =
        Subtree_sort.sort_forest ~depth_limit:(depth_limit st) (Subtree_sort.build_forest views)
      in
      let frag = Subtree_sort.write_fragment st.session forest in
      Log.debug (fun m ->
          m "degeneration: level %d filled the arena, fragment run %d (%d bytes)" top.flevel frag
            region);
      Extmem.Ext_stack.truncate_to st.session.Session.data_stack top.children_loc;
      ignore (pop_frame st);
      push_frame st { top with frags = top.frags @ [ frag ] };
      st.n_fragment_runs <- st.n_fragment_runs + 1
    end
    end
  end

let external_scan_input st frame =
  let data = st.session.Session.data_stack in
  if st.scan_evaluable then begin
    let cursor = Extmem.Ext_stack.cursor_from data ~pos:frame.loc in
    (`Forward, fun () -> Option.map (Session.view_entry st.session) (cursor ()))
  end
  else
    ( `Reverse,
      fun () ->
        if Extmem.Ext_stack.length data > frame.loc then
          Some (Session.view_entry st.session (Extmem.Ext_stack.pop data))
        else None )

(* Sort the complete subtree beginning at [frame.loc] and replace it by a
   run pointer (Figure 4, lines 10-12). *)
let collapse st frame resolved_key =
  in_span st "subtree_sorts" @@ fun () ->
  let data = st.session.Session.data_stack in
  let size = Extmem.Ext_stack.length data - frame.loc in
  let run =
    if size <= Session.arena_bytes st.session then begin
      st.n_in_memory <- st.n_in_memory + 1;
      Log.debug (fun m ->
          m "collapse: level %d pos %d, %d bytes, in-memory sort" frame.flevel frame.fpos size);
      match st.session.Session.pool with
      | Some (pool, view) ->
          (* parallel path: claim the run id here — the same sequence
             point where the single-threaded path registers the run — and
             hand the pure sort (over the raw payloads) to a worker *)
          let run = Extmem.Run_store.reserve st.session.Session.runs in
          Sort_pool.submit_sort pool view ~run (collect_payloads st ~from_:frame.loc);
          run
      | None -> Subtree_sort.sort_in_memory st.session (collect_views st ~from_:frame.loc)
    end
    else begin
      st.n_external <- st.n_external + 1;
      match st.session.Session.pool with
      | Some (pool, view) ->
          (* offloaded external sort: mirror the single-threaded sequence
             exactly — reclaim, drain the scan input with the same stack
             mechanics (a reverse scan pops; a forward scan reads), then
             hand the pure key-path sort to a worker along with the very
             arena size the inline sort would have leased, so run
             structure and scratch I/O match the [--jobs 1] bill *)
          Session.reclaim st.session;
          let scan, payloads =
            if st.scan_evaluable then (`Forward, collect_payloads st ~from_:frame.loc)
            else begin
              let acc = ref [] in
              while Extmem.Ext_stack.length data > frame.loc do
                acc := Extmem.Ext_stack.pop data :: !acc
              done;
              (`Reverse, List.rev !acc (* pop order: reverse document order *))
            end
          in
          let arena_blocks =
            Extmem.Memory_budget.available_blocks st.session.Session.budget
          in
          Log.debug (fun m ->
              m
                "collapse: level %d pos %d, %d bytes > arena, external key-path sort \
                 offloaded (%s scan, %d-block arena)"
                frame.flevel frame.fpos size
                (match scan with `Forward -> "forward" | `Reverse -> "reverse")
                arena_blocks);
          let run = Extmem.Run_store.reserve st.session.Session.runs in
          Sort_pool.submit_external pool view ~run ~scan ~arena_blocks payloads;
          run
      | None ->
          let scan, input = external_scan_input st frame in
          Log.debug (fun m ->
              m "collapse: level %d pos %d, %d bytes > arena, external key-path sort (%s scan)"
                frame.flevel frame.fpos size
                (match scan with `Forward -> "forward" | `Reverse -> "reverse"));
          let id, _stats = Subtree_sort.sort_external st.session ~input ~scan in
          id
    end
  in
  st.n_subtree_sorts <- st.n_subtree_sorts + 1;
  Extmem.Ext_stack.truncate_to data frame.loc;
  push_data st
    (Entry.Run_ptr { level = frame.flevel; pos = frame.fpos; key = resolved_key; run; bytes = size })

(* Depth-limited sorting, d_s = d+1 case (§3.2): "no sorting is needed but
   the subtree is still written to disk, ensuring that we do not carry
   large subtrees along".  The subtree below the limit contains no run
   pointers (nothing deeper ever collapses), so it is copied verbatim —
   streaming, with no memory requirement. *)
let collapse_copy st frame resolved_key =
  in_span st "subtree_copy" @@ fun () ->
  let data = st.session.Session.data_stack in
  let size = Extmem.Ext_stack.length data - frame.loc in
  Log.debug (fun m ->
      m "collapse: level %d pos %d, %d bytes, verbatim copy (depth limit)" frame.flevel
        frame.fpos size);
  let run =
    match st.session.Session.pool with
    | Some (pool, view) ->
        let run = Extmem.Run_store.reserve st.session.Session.runs in
        Sort_pool.submit_copy pool view ~run (collect_payloads st ~from_:frame.loc);
        run
    | None ->
        let w = Extmem.Run_store.begin_run st.session.Session.runs in
        Extmem.Ext_stack.iter_entries_from data ~pos:frame.loc (fun payload ->
            Extmem.Block_writer.write_record w payload);
        Extmem.Run_store.finish_run st.session.Session.runs w
  in
  st.n_subtree_sorts <- st.n_subtree_sorts + 1;
  Extmem.Ext_stack.truncate_to data frame.loc;
  push_data st
    (Entry.Run_ptr { level = frame.flevel; pos = frame.fpos; key = resolved_key; run; bytes = size })

(* Root fusion: the root's final sort/merge is opened as a pull stream
   (saves writing and re-reading the whole document once); the output
   phase pulls it straight into the XML writer.  The stream is built
   before truncating the stack — run formation consumes the stack here,
   but the final merge is deferred to the consumer. *)
let open_root_source st frame =
  in_span st "root_sort" @@ fun () ->
  let data = st.session.Session.data_stack in
  let result =
    if frame.frags <> [] then begin
      let tail = collect_views st ~from_:frame.children_loc in
      let fragments =
        if tail = [] then frame.frags
        else begin
          let forest =
            Subtree_sort.sort_forest ~depth_limit:(depth_limit st) (Subtree_sort.build_forest tail)
          in
          st.n_fragment_runs <- st.n_fragment_runs + 1;
          frame.frags @ [ Subtree_sort.write_fragment st.session forest ]
        end
      in
      let start_view =
        match Extmem.Ext_stack.cursor_from data ~pos:frame.loc () with
        | Some payload -> Session.view_entry st.session payload
        | None -> assert false
      in
      st.n_fragment_merges <- st.n_fragment_merges + 1;
      Subtree_sort.merge_fragments_source st.session ~start_view ~fragments
    end
    else begin
      if not (packed st) then
        push_end st ~level:frame.flevel ~pos:frame.fpos ~key:(Some Key.Null);
      let size = Extmem.Ext_stack.length data - frame.loc in
      if size <= Session.arena_bytes st.session then begin
        st.n_in_memory <- st.n_in_memory + 1;
        ( Subtree_sort.sort_in_memory_source st.session (collect_views st ~from_:frame.loc),
          ignore )
      end
      else begin
        st.n_external <- st.n_external + 1;
        let scan, input = external_scan_input st frame in
        let s = Subtree_sort.sort_external_source st.session ~input ~scan in
        (s.Subtree_sort.pull, s.Subtree_sort.close)
      end
    end
  in
  st.n_subtree_sorts <- st.n_subtree_sorts + 1;
  Extmem.Ext_stack.truncate_to data frame.loc;
  result

(* Merge an element's fragments (plus its unsorted tail children) into its
   complete run. *)
let collapse_fragments st frame resolved_key =
  in_span st "fragment_merge" @@ fun () ->
  let data = st.session.Session.data_stack in
  let size = Extmem.Ext_stack.length data - frame.loc in
  let tail = collect_views st ~from_:frame.children_loc in
  let fragments =
    if tail = [] then frame.frags
    else begin
      let forest =
        Subtree_sort.sort_forest ~depth_limit:(depth_limit st) (Subtree_sort.build_forest tail)
      in
      st.n_fragment_runs <- st.n_fragment_runs + 1;
      frame.frags @ [ Subtree_sort.write_fragment st.session forest ]
    end
  in
  (* the element's own Start entry is the first entry at frame.loc *)
  let start_view =
    match Extmem.Ext_stack.cursor_from data ~pos:frame.loc () with
    | Some payload -> Session.view_entry st.session payload
    | None -> assert false
  in
  let run = Subtree_sort.merge_fragments st.session ~start_view ~fragments in
  st.n_fragment_merges <- st.n_fragment_merges + 1;
  st.n_subtree_sorts <- st.n_subtree_sorts + 1;
  Extmem.Ext_stack.truncate_to data frame.loc;
  push_data st
    (Entry.Run_ptr { level = frame.flevel; pos = frame.fpos; key = resolved_key; run; bytes = size })

(* [p] is the parser's reusable scratch: everything needed later is
   copied out here (the encoded entry, the frame fields). *)
let on_start st (p : Xmlio.Event.packed) =
  st.level <- st.level + 1;
  st.pos <- st.pos + 1;
  if st.level > st.max_level then st.max_level <- st.level;
  st.n_elements <- st.n_elements + 1;
  let key =
    Ordering.Evaluator.on_start_lookup st.evaluator p.Xmlio.Event.pname
      (Xmlio.Event.packed_attr p)
  in
  let loc = Extmem.Ext_stack.length st.session.Session.data_stack in
  push_payload st
    (Entry.encode_start_of_packed st.session.Session.config.Config.encoding
       st.session.Session.dict st.session.Session.enc_scratch ~level:st.level ~pos:st.pos ~key p);
  push_frame st
    {
      loc;
      children_loc = Extmem.Ext_stack.length st.session.Session.data_stack;
      fpos = st.pos;
      flevel = st.level;
      fkey = key;
      frags = [];
    };
  maybe_degenerate st

let on_text st content =
  st.pos <- st.pos + 1;
  st.n_text <- st.n_text + 1;
  Ordering.Evaluator.on_text st.evaluator content;
  push_payload st
    (Entry.encode_text_to st.session.Session.enc_scratch ~level:(st.level + 1) ~pos:st.pos
       content);
  maybe_degenerate st

let on_end st =
  let key_end = Ordering.Evaluator.on_end st.evaluator in
  let frame = pop_frame st in
  st.level <- st.level - 1;
  let resolved_key =
    match frame.fkey with
    | Some k -> k
    | None -> Option.value key_end ~default:Key.Null
  in
  if st.fuse && frame.flevel = 1 then st.root <- Some (open_root_source st frame)
  else begin
      if frame.frags <> [] then collapse_fragments st frame resolved_key
      else begin
        if not (packed st) then
          push_end st ~level:frame.flevel ~pos:frame.fpos ~key:(Some resolved_key);
        let size = Extmem.Ext_stack.length st.session.Session.data_stack - frame.loc in
        let is_root = frame.flevel = 1 in
        let depth_ok =
          match depth_limit st with
          | None -> true
          | Some d -> frame.flevel <= d + 1
        in
        let threshold = st.session.Session.config.Config.threshold in
        let at_limit =
          match depth_limit st with
          | Some d -> frame.flevel = d + 1
          | None -> false
        in
        if (size >= threshold || is_root) && depth_ok then
          if at_limit && not is_root then collapse_copy st frame resolved_key
          else collapse st frame resolved_key
      end;
      (* the parent's children region just grew (run pointer or uncollapsed
         subtree): it may now fill the arena *)
      maybe_degenerate st
  end

(* ---- output phase (Figure 4, lines 13-21) ---- *)

(* Event expansion: encoded entries in final document order become XML
   events.  Run pointers trigger the depth-first traversal of the
   pointed run in place, driven by the external output-location stack;
   End events are synthesized from level transitions via the open-tag
   recovery stack of §3.2 — O(height) internal state.  This is the
   generic transform behind both the fused and the materialised output
   path, and behind {!stream_events}. *)
let event_stream st entries =
  let session = st.session in
  let out_stack = session.Session.out_stack in
  let pending : Xmlio.Event.t Queue.t = Queue.create () in
  let opens : (string * int) Extmem.Vec.t = Extmem.Vec.create () in
  let reader = ref None in (* (block reader, its run id) during run DFS *)
  let finished = ref false in
  let close_to level =
    while Extmem.Vec.length opens > 0 && snd (Extmem.Vec.top opens) >= level do
      let name, _ = Extmem.Vec.pop opens in
      Queue.push (Xmlio.Event.End name) pending
    done
  in
  let handle payload =
    let e = Session.decode_entry session payload in
    close_to (Entry.level e);
    match e with
    | Entry.Start { name; attrs; level; _ } ->
        Queue.push (Xmlio.Event.Start (name, attrs)) pending;
        Extmem.Vec.push opens (name, level)
    | Entry.End _ -> () (* already closed by close_to *)
    | Entry.Text { content; _ } -> Queue.push (Xmlio.Event.Text content) pending
    | Entry.Run_ptr { run; _ } ->
        (* descend; remember where to resume in the enclosing run *)
        (match !reader with
        | Some (r, cur) ->
            Extmem.Ext_stack.push out_stack
              (encode_out_loc cur (Extmem.Block_reader.position r))
        | None -> ());
        reader := Some (Extmem.Run_store.open_run session.Session.runs run, run)
  in
  let rec next () =
    if not (Queue.is_empty pending) then Some (Queue.pop pending)
    else if !finished then None
    else begin
      (match !reader with
      | Some (r, _) -> (
          match Extmem.Block_reader.read_record r with
          | Some payload -> handle payload
          | None ->
              if Extmem.Ext_stack.is_empty out_stack then reader := None
              else begin
                let run, off = decode_out_loc (Extmem.Ext_stack.pop out_stack) in
                let r = Extmem.Run_store.open_run session.Session.runs run in
                Extmem.Block_reader.seek r off;
                reader := Some (r, run)
              end)
      | None -> (
          match entries () with
          | Some payload -> handle payload
          | None ->
              close_to 1;
              finished := true));
      next ()
    end
  in
  fun () ->
    (* cancellation checkpoint: one poll per pulled output event *)
    session.Session.poll ();
    next ()

(* The terminal pipeline stage: XML events into the serialized document.
   The close flushes the block writer before validating writer depth, so
   a failing pipeline still leaves whole blocks behind (see
   [Pipe.run_opened]'s exception discipline). *)
let writer_sink output =
  Pipe.sink ~mem:1 ~who:"xml writer" (fun () ->
      let bw = Extmem.Block_writer.create output in
      let w = Xmlio.Writer.to_block_writer bw in
      let push ev = Xmlio.Writer.event w ev in
      let close () =
        let extent = Extmem.Block_writer.close bw in
        Extmem.Device.set_byte_length output extent.Extmem.Extent.bytes;
        Xmlio.Writer.close w
      in
      (push, close))

(* ---- driver ---- *)

(* The scan pulls the parser's packed scratch through the pipe: each
   element is consumed (encoded onto the data stack) before the next
   pull overwrites it, so the shared record is safe here.  With a
   dictionary (Dict/Packed encodings) the parser interns names as it
   reads them and the entry encoder writes the ids straight out. *)
let scan_source ?dict ~keep_whitespace input =
  Pipe.source ~mem:1 ~who:"input scan" (fun () ->
      let parser =
        Xmlio.Parser.of_reader ?dict ~keep_whitespace (Extmem.Block_reader.of_device input)
      in
      ((fun () -> Xmlio.Parser.next_packed parser), ignore))

(* Scan the input and open the root's sorted entries as a pull stream:
   the shared front end of {!sort_device} and {!open_stream}. *)
let open_sorted ~session ~config ~ordering ~input ~io_meter ~sim_meter =
  let spans =
    Obs.Spans.create ~io:io_meter ~sim_ms:sim_meter ~tracer:config.Config.tracer "sort"
  in
  let st =
    {
      session;
      scan_evaluable = Ordering.all_scan_evaluable ordering;
      evaluator = Ordering.Evaluator.create ordering;
      pos = 0;
      level = 0;
      n_events = 0;
      n_elements = 0;
      n_text = 0;
      max_level = 0;
      n_subtree_sorts = 0;
      n_in_memory = 0;
      n_external = 0;
      n_fragment_runs = 0;
      n_fragment_merges = 0;
      fuse = config.Config.root_fusion;
      root = None;
      spans;
      gc0 = Gc.quick_stat ();
      mw0 = Gc.minor_words ();
    }
  in
  Log.info (fun m -> m "sorting phase: %a" Config.pp config);
  let dict =
    match config.Config.encoding with
    | Config.Plain -> None (* plain entries never consult the dictionary *)
    | Config.Dict | Config.Packed -> Some session.Session.dict
  in
  in_span st "input_scan" (fun () ->
      Pipe.run ~spans ~budget:session.Session.budget
        (scan_source ?dict ~keep_whitespace:config.Config.keep_whitespace input)
        (Pipe.fn_sink ~who:"sort scan" (fun (p : Xmlio.Event.packed) ->
             (* cancellation checkpoint: one poll per scan event *)
             session.Session.poll ();
             st.n_events <- st.n_events + 1;
             match p.Xmlio.Event.pkind with
             | Xmlio.Event.Pstart -> on_start st p
             | Xmlio.Event.Ptext -> on_text st p.Xmlio.Event.ptext
             | Xmlio.Event.Pend -> on_end st)));
  Log.info (fun m ->
      m "scan done: %d events, %d subtree sorts (%d in-memory, %d external), %d fragments"
        st.n_events st.n_subtree_sorts st.n_in_memory st.n_external st.n_fragment_runs);
  assert (st.level = 0);
  assert (Extmem.Ext_stack.is_empty session.Session.path_stack);
  (* the one barrier of the parallel path: every submitted subtree sort
     is finished and installed before anything dereferences a run *)
  Session.sync session;
  (* any blocks the data-stack window borrowed are idle now *)
  Session.reclaim session;
  let entries =
    match st.root with
    | Some (pull, close) ->
        (* root fusion: the root collapse opened its final merge as a
           stream; the data stack is empty *)
        assert (Extmem.Ext_stack.is_empty session.Session.data_stack);
        { Pipe.pull; close }
    | None ->
        (* the data stack now holds the single run pointer of the root *)
        let root_run =
          match
            Session.decode_entry session (Extmem.Ext_stack.pop session.Session.data_stack)
          with
          | Entry.Run_ptr { run; _ } -> run
          | Entry.Start _ | Entry.End _ | Entry.Text _ ->
              invalid_arg "Nexsort: internal error - root did not collapse"
        in
        assert (Extmem.Ext_stack.is_empty session.Session.data_stack);
        Pipe.open_source ~spans ~budget:session.Session.budget
          (Pipe.of_run ~who:"root run" session.Session.runs root_run)
  in
  (st, entries)

let build_report (st : state) ~input_io ~output_io ~extra_sim ~t0 =
  let session = st.session in
  let g1 = Gc.quick_stat () in
  let gc =
    {
      gc_minor_words = Gc.minor_words () -. st.mw0;
      gc_major_words = g1.Gc.major_words -. st.gc0.Gc.major_words;
      gc_promoted_words = g1.Gc.promoted_words -. st.gc0.Gc.promoted_words;
      gc_minor_collections = g1.Gc.minor_collections - st.gc0.Gc.minor_collections;
      gc_major_collections = g1.Gc.major_collections - st.gc0.Gc.major_collections;
    }
  in
  (* surface the same GC deltas on the trace timeline, so nextrace
     summaries show allocation pressure next to span self-times *)
  let tracer = session.Session.config.Config.tracer in
  if Obs.Tracer.enabled tracer then begin
    let count name v = Obs.Tracer.counter tracer (Obs.Tracer.intern tracer name) v in
    count "gc.minor_words" (int_of_float gc.gc_minor_words);
    count "gc.major_words" (int_of_float gc.gc_major_words);
    count "gc.promoted_words" (int_of_float gc.gc_promoted_words);
    count "gc.minor_collections" gc.gc_minor_collections;
    count "gc.major_collections" gc.gc_major_collections
  end;
  {
    events = st.n_events;
    elements = st.n_elements;
    text_nodes = st.n_text;
    height = st.max_level;
    subtree_sorts = st.n_subtree_sorts;
    in_memory_sorts = st.n_in_memory;
    external_sorts = st.n_external;
    fragment_runs = st.n_fragment_runs;
    fragment_merges = st.n_fragment_merges;
    runs_created = Extmem.Run_store.run_count session.Session.runs;
    run_blocks = Extmem.Run_store.total_run_blocks session.Session.runs;
    input_io;
    output_io;
    breakdown = Session.io_breakdown session;
    total_io =
      Extmem.Io_stats.add (Extmem.Io_stats.add input_io output_io) (Session.total_io session);
    simulated_ms = Session.simulated_ms session +. extra_sim;
    wall_seconds = Unix.gettimeofday () -. t0;
    gc;
    spans = Obs.Spans.close st.spans;
    metrics = Obs.Registry.to_json session.Session.registry;
    arena = Extmem.Frame_arena.owners session.Session.arena;
    jobs = session.Session.config.Config.jobs;
    workers =
      (match session.Session.pool with
      | Some (_, v) -> Sort_pool.worker_stats v
      | None -> []);
  }

let sort_device ?config ?session ~ordering ~input ~output () =
  (* an engine-provided session brings its own config (and budget, pool
     view, poll hook); standalone calls build a one-job session here *)
  let config =
    match session with
    | Some s -> s.Session.config
    | None -> Option.value config ~default:(Config.make ())
  in
  Config.validate_ordering config ordering;
  let t0 = Unix.gettimeofday () in
  let session = match session with Some s -> s | None -> Session.create config in
  (* span meters: cumulative I/O and simulated time over every device the
     sort touches, so phase deltas attribute all of it *)
  let io_meter () =
    Extmem.Io_stats.add
      (Extmem.Io_stats.add
         (Extmem.Io_stats.snapshot (Extmem.Device.stats input))
         (Extmem.Io_stats.snapshot (Extmem.Device.stats output)))
      (Session.total_io session)
  in
  let sim_meter () =
    Session.simulated_ms session
    +. Extmem.Device.simulated_ms input
    +. Extmem.Device.simulated_ms output
  in
  (* the session is destroyed on every exit path — also on a fault or
     budget exhaustion mid-sort — so its windows return to the budget
     and the registered teardown probes can verify nothing leaked *)
  Fun.protect
    ~finally:(fun () -> Session.destroy session)
    (fun () ->
      let st, entries = open_sorted ~session ~config ~ordering ~input ~io_meter ~sim_meter in
      in_span st "output" (fun () ->
          Pipe.run_opened ~spans:st.spans ~budget:session.Session.budget
            { Pipe.pull = event_stream st entries.Pipe.pull; close = entries.Pipe.close }
            (writer_sink output));
      build_report st
        ~input_io:(Extmem.Io_stats.snapshot (Extmem.Device.stats input))
        ~output_io:(Extmem.Io_stats.snapshot (Extmem.Device.stats output))
        ~extra_sim:(Extmem.Device.simulated_ms input +. Extmem.Device.simulated_ms output)
        ~t0)

let sort_string ?config ~ordering s =
  let config = Option.value config ~default:(Config.make ()) in
  let input = Config.scratch_device config ~name:"input" in
  Extmem.Device.load_string input s;
  let output = Config.scratch_device config ~name:"output" in
  let report = sort_device ~config ~ordering ~input ~output () in
  (Extmem.Device.contents output, report)

(* ---- event-stream front end (cross-tool fusion) ---- *)

type stream = {
  s_st : state;
  s_input : Extmem.Device.t;
  s_events : unit -> Xmlio.Event.t option;
  s_close : unit -> unit;
  s_t0 : float;
  mutable s_report : report option;
}

let open_stream ?config ?session ~ordering ~input () =
  let config =
    match session with
    | Some s -> s.Session.config
    | None -> Option.value config ~default:(Config.make ())
  in
  Config.validate_ordering config ordering;
  let t0 = Unix.gettimeofday () in
  let session = match session with Some s -> s | None -> Session.create config in
  let io_meter () =
    Extmem.Io_stats.add
      (Extmem.Io_stats.snapshot (Extmem.Device.stats input))
      (Session.total_io session)
  in
  let sim_meter () = Session.simulated_ms session +. Extmem.Device.simulated_ms input in
  let st, entries =
    try open_sorted ~session ~config ~ordering ~input ~io_meter ~sim_meter
    with e ->
      let bt = Printexc.get_raw_backtrace () in
      Session.destroy session;
      Printexc.raise_with_backtrace e bt
  in
  {
    s_st = st;
    s_input = input;
    s_events = event_stream st entries.Pipe.pull;
    s_close = entries.Pipe.close;
    s_t0 = t0;
    s_report = None;
  }

let stream_events s = s.s_events ()

let stream_finish s =
  match s.s_report with
  | Some r -> r
  | None ->
      let r =
        Fun.protect
          ~finally:(fun () -> Session.destroy s.s_st.session)
          (fun () ->
            s.s_close ();
            build_report s.s_st
              ~input_io:(Extmem.Io_stats.snapshot (Extmem.Device.stats s.s_input))
              ~output_io:(Extmem.Io_stats.create ())
              ~extra_sim:(Extmem.Device.simulated_ms s.s_input)
              ~t0:s.s_t0)
      in
      s.s_report <- Some r;
      r

(* ---- machine-readable report (--metrics) ---- *)

let config_json (c : Config.t) =
  let open Obs.Json in
  Obj
    [
      ("block_size", Int c.Config.block_size);
      ("memory_blocks", Int c.Config.memory_blocks);
      ("threshold", Int c.Config.threshold);
      ("depth_limit", (match c.Config.depth_limit with Some d -> Int d | None -> Null));
      ("degeneration", Bool c.Config.degeneration);
      ("root_fusion", Bool c.Config.root_fusion);
      ( "encoding",
        Str
          (match c.Config.encoding with
          | Config.Plain -> "plain"
          | Config.Dict -> "dict"
          | Config.Packed -> "packed") );
      ("data_stack_blocks", Int c.Config.data_stack_blocks);
      ("path_stack_blocks", Int c.Config.path_stack_blocks);
      ("keep_whitespace", Bool c.Config.keep_whitespace);
      ("device", Str (Extmem.Device_spec.to_string c.Config.device));
      ("policy", Str (Extmem.Frame_arena.policy_to_string c.Config.pager_policy));
      ("jobs", Int c.Config.jobs);
    ]

let owner_stats_json (s : Extmem.Frame_arena.owner_stats) =
  Obs.Json.Obj
    [
      ("held", Obs.Json.Int s.Extmem.Frame_arena.held);
      ("peak", Obs.Json.Int s.Extmem.Frame_arena.peak);
      ("hits", Obs.Json.Int s.Extmem.Frame_arena.hits);
      ("misses", Obs.Json.Int s.Extmem.Frame_arena.misses);
      ("evictions", Obs.Json.Int s.Extmem.Frame_arena.evictions);
      ("writebacks", Obs.Json.Int s.Extmem.Frame_arena.writebacks);
    ]

let metrics_report ?(tool = "nexsort") ~config r =
  let component name =
    match List.assoc_opt name r.breakdown with
    | Some s -> s
    | None -> Extmem.Io_stats.create ()
  in
  (* the paper's §4.2 phase attribution: each phase owns a device *)
  let stack_paging =
    Extmem.Io_stats.add
      (Extmem.Io_stats.add (component "data stack") (component "path stack"))
      (component "output location stack")
  in
  let rep = Obs.Report.create ~tool in
  Obs.Report.add rep "config" (config_json config);
  Obs.Report.add rep "counts"
    (Obs.Json.Obj
       [
         ("events", Obs.Json.Int r.events);
         ("elements", Obs.Json.Int r.elements);
         ("text_nodes", Obs.Json.Int r.text_nodes);
         ("height", Obs.Json.Int r.height);
         ("subtree_sorts", Obs.Json.Int r.subtree_sorts);
         ("in_memory_sorts", Obs.Json.Int r.in_memory_sorts);
         ("external_sorts", Obs.Json.Int r.external_sorts);
         ("fragment_runs", Obs.Json.Int r.fragment_runs);
         ("fragment_merges", Obs.Json.Int r.fragment_merges);
         ("runs_created", Obs.Json.Int r.runs_created);
         ("run_blocks", Obs.Json.Int r.run_blocks);
       ]);
  Obs.Report.add rep "io"
    (Obs.Json.Obj
       [
         ("input", Obs.Json.io_stats r.input_io);
         ("subtree_sorts", Obs.Json.io_stats (component "scratch"));
         ("stack_paging", Obs.Json.io_stats stack_paging);
         ("runs", Obs.Json.io_stats (component "runs"));
         ("output", Obs.Json.io_stats r.output_io);
         ("total", Obs.Json.io_stats r.total_io);
         ( "components",
           Obs.Json.Obj (List.map (fun (n, s) -> (n, Obs.Json.io_stats s)) r.breakdown) );
       ]);
  (* the NEXSORT pipeline is purely streaming — its arena owners are
     leases, not caches, so these totals are zero — but the section is
     always present so report consumers see a stable schema; paged
     algorithms (indexed merge) fill it in *)
  let tot =
    List.fold_left
      (fun (h, m, e, w) (_, (s : Extmem.Frame_arena.owner_stats)) ->
        (h + s.hits, m + s.misses, e + s.evictions, w + s.writebacks))
      (0, 0, 0, 0) r.arena
  in
  let hits, misses, evictions, writebacks = tot in
  Obs.Report.add rep "pager"
    (Obs.Json.Obj
       [
         ("hits", Obs.Json.Int hits);
         ("misses", Obs.Json.Int misses);
         ("evictions", Obs.Json.Int evictions);
         ("writebacks", Obs.Json.Int writebacks);
       ]);
  Obs.Report.add rep "arena"
    (Obs.Json.Obj (List.map (fun (who, s) -> (who, owner_stats_json s)) r.arena));
  (* per-worker section of the parallel path; always present (with an
     empty pool at jobs=1) so the schema is stable *)
  Obs.Report.add rep "workers"
    (Obs.Json.Obj
       [
         ("jobs", Obs.Json.Int r.jobs);
         ( "pool",
           Obs.Json.Obj
             (List.map
                (fun (ws : Sort_pool.worker_stats) ->
                  ( Printf.sprintf "worker%d" ws.Sort_pool.w_index,
                    Obs.Json.Obj
                      [
                        ("tasks", Obs.Json.Int ws.Sort_pool.w_tasks);
                        ("entries", Obs.Json.Int ws.Sort_pool.w_entries);
                        ("io", Obs.Json.io_stats ws.Sort_pool.w_io);
                      ] ))
                r.workers) );
       ]);
  (* allocation behaviour of the whole sort (schema v2): words are OCaml
     words allocated (minor = all allocation, major includes promotions),
     the per-event rate is the record path's headline number *)
  Obs.Report.add rep "gc"
    (Obs.Json.Obj
       [
         ("minor_words", Obs.Json.Float r.gc.gc_minor_words);
         ("major_words", Obs.Json.Float r.gc.gc_major_words);
         ("promoted_words", Obs.Json.Float r.gc.gc_promoted_words);
         ("minor_collections", Obs.Json.Int r.gc.gc_minor_collections);
         ("major_collections", Obs.Json.Int r.gc.gc_major_collections);
         ( "minor_words_per_event",
           Obs.Json.Float
             (if r.events = 0 then 0. else r.gc.gc_minor_words /. float_of_int r.events) );
       ]);
  Obs.Report.add rep "phases" (Obs.Span.to_json r.spans);
  Obs.Report.add rep "metrics" r.metrics;
  Obs.Report.add rep "timing"
    (Obs.Json.Obj
       [
         ("wall_s", Obs.Json.Float r.wall_seconds);
         ("simulated_ms", Obs.Json.Float r.simulated_ms);
       ]);
  rep

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>events=%d (elements=%d, text=%d), height=%d@,\
     subtree sorts=%d (in-memory=%d, external=%d), fragments=%d (merges=%d)@,\
     runs=%d (%d blocks)@,\
     io: input=%a output=%a total=%a@,\
     wall=%.3fs%t@]"
    r.events r.elements r.text_nodes r.height r.subtree_sorts r.in_memory_sorts r.external_sorts
    r.fragment_runs r.fragment_merges r.runs_created r.run_blocks Extmem.Io_stats.pp r.input_io
    Extmem.Io_stats.pp r.output_io Extmem.Io_stats.pp r.total_io r.wall_seconds
    (fun ppf -> if r.simulated_ms > 0. then Format.fprintf ppf "@,simulated io time=%.2fms" r.simulated_ms)
