(* The in-memory side of a subtree sort: rebuild the sibling forest from
   a flat list of entry views, sort siblings by key (position as
   tiebreak), and stream the result back out in sorted pre-order.

   Nodes hold views, not decoded entries: names, attributes and text are
   never materialized, and emission re-uses the original encoded payloads
   verbatim (only synthesized End entries are encoded here, and they
   carry no names).  Everything is pure given its arguments — no session,
   no devices, no shared state — which is what lets [Sort_pool] run it
   inside worker domains.  The session-flavoured wrappers live in
   [Subtree_sort]. *)

type node = {
  view : Entry.View.t;
  mutable key : Key.t;
  mutable children : node list; (* reversed while building *)
}

(* ---- forest building ---- *)

let node_of_view v =
  let key = Entry.View.sibling_key v in
  { view = v; key; children = [] }

let build_forest views =
  let roots = ref [] in
  let open_stack = ref [] in (* innermost first *)
  let attach n =
    match !open_stack with
    | [] -> roots := n :: !roots
    | parent :: _ -> parent.children <- n :: parent.children
  in
  let close () =
    match !open_stack with
    | [] -> ()
    | top :: rest ->
        top.children <- List.rev top.children;
        open_stack := rest
  in
  (* close open elements whose level shows they ended (packed mode, where
     End entries are absent) *)
  let close_to level =
    while
      match !open_stack with
      | top :: _ -> Entry.View.level top.view >= level
      | [] -> false
    do
      close ()
    done
  in
  List.iter
    (fun v ->
      match Entry.View.kind v with
      | Entry.View.Vend ->
          let level = Entry.View.level v in
          close_to (level + 1);
          (match (!open_stack, Entry.View.end_key v) with
          | top :: _, Some k when Entry.View.level top.view = level -> top.key <- k
          | _ -> ());
          close_to level
      | Entry.View.Vstart ->
          close_to (Entry.View.level v);
          let n = node_of_view v in
          attach n;
          open_stack := n :: !open_stack
      | Entry.View.Vtext | Entry.View.Vrun_ptr ->
          close_to (Entry.View.level v);
          attach (node_of_view v))
    views;
  while !open_stack <> [] do
    close ()
  done;
  List.rev !roots

(* ---- sorting ---- *)

let compare_siblings a b =
  let c = Key.compare a.key b.key in
  if c <> 0 then c else compare (Entry.View.pos a.view) (Entry.View.pos b.view)

let rec sort_forest ~depth_limit nodes =
  match nodes with
  | [] -> []
  | first :: _ ->
      let level = Entry.View.level first.view in
      let sort_here =
        match depth_limit with
        | None -> true
        | Some d -> level <= d + 1
      in
      if not sort_here then nodes
      else begin
        let nodes = List.sort compare_siblings nodes in
        List.iter (fun n -> n.children <- sort_forest ~depth_limit n.children) nodes;
        nodes
      end

let forest_size nodes =
  let rec count acc n = List.fold_left count (acc + 1) n.children in
  List.fold_left count 0 nodes

(* ---- serialization ---- *)

(* Emit a node's entries in sorted pre-order to an arbitrary sink of
   encoded entries (a run writer, or the fused output phase).  The stored
   payloads pass through byte-identical; [scratch] is only used to encode
   synthesized End entries. *)
let rec emit_node ~packed scratch emit n =
  emit (Entry.View.payload n.view);
  match Entry.View.kind n.view with
  | Entry.View.Vstart ->
      List.iter (emit_node ~packed scratch emit) n.children;
      if not packed then
        emit
          (Entry.encode_end_to scratch ~level:(Entry.View.level n.view)
             ~pos:(Entry.View.pos n.view) ~key:None)
  | Entry.View.Vtext | Entry.View.Vrun_ptr -> ()
  | Entry.View.Vend -> assert false (* nodes are never built from End entries *)

(* ---- key-path record streams (external subtree sorts, §3.1) ----

   Like the forest half above, these are pure given their arguments —
   entry views in, encoded key-path records out — so [Sort_pool] workers
   can run a full external subtree sort without touching the session.
   The session-flavoured wrappers stay in [Subtree_sort]. *)

(* The component an entry contributes to key paths: its resolved key and
   position, with the key suppressed below the depth limit so deeper
   levels keep document order. *)
let keypath_component ~depth_limit key v =
  let key =
    match depth_limit with
    | Some d when Entry.View.level v > d + 1 -> Key.Null
    | Some _ | None -> key
  in
  { Keypath.key; pos = Entry.View.pos v }

(* Pull-stream of encoded key-path records from an entry-view stream in
   document order.  Keys must be on Start entries (scan-evaluable).  The
   view's payload rides along verbatim as the record payload. *)
let forward_records ~enc ~depth_limit input =
  let stack = ref [] in (* (level, component), innermost first *)
  let pop_to level =
    let rec go () =
      match !stack with
      | (l, _) :: rest when l >= level ->
          stack := rest;
          go ()
      | _ -> ()
    in
    go ()
  in
  let path_of own = List.rev_map snd !stack @ [ own ] in
  let rec next () =
    match input () with
    | None -> None
    | Some v -> (
        match Entry.View.kind v with
        | Entry.View.Vend ->
            pop_to (Entry.View.level v);
            next ()
        | kind ->
            let level = Entry.View.level v in
            pop_to level;
            let own = keypath_component ~depth_limit (Entry.View.sibling_key v) v in
            let record =
              Keypath.encode_record ~enc (path_of own) ~payload:(Entry.View.payload v)
            in
            (match kind with
            | Entry.View.Vstart -> stack := (level, own) :: !stack
            | Entry.View.Vtext | Entry.View.Vrun_ptr | Entry.View.Vend -> ());
            Some record)
  in
  next

(* Same, for entries arriving in reverse document order (popped from the
   data stack).  End entries precede their subtrees here and carry the
   element keys. *)
let reverse_records ~enc ~depth_limit input =
  let stack = ref [] in (* components, innermost first *)
  let rec next () =
    match input () with
    | None -> None
    | Some v -> (
        match Entry.View.kind v with
        | Entry.View.Vend ->
            let k = Option.value (Entry.View.end_key v) ~default:Key.Null in
            stack := keypath_component ~depth_limit k v :: !stack;
            next ()
        | Entry.View.Vstart ->
            (* own component is the stack top when an End was seen (it
               carries the authoritative key); synthesize it otherwise
               (packed) *)
            let path =
              match !stack with
              | _ :: _ -> List.rev !stack
              | [] ->
                  [
                    keypath_component ~depth_limit
                      (Option.value (Entry.View.start_key v) ~default:Key.Null)
                      v;
                  ]
            in
            let record = Keypath.encode_record ~enc path ~payload:(Entry.View.payload v) in
            (match !stack with
            | _ :: rest -> stack := rest
            | [] -> ());
            Some record
        | Entry.View.Vtext | Entry.View.Vrun_ptr ->
            let own = keypath_component ~depth_limit (Entry.View.sibling_key v) v in
            let record =
              Keypath.encode_record ~enc
                (List.rev !stack @ [ own ])
                ~payload:(Entry.View.payload v)
            in
            Some record)
  in
  next

(* Reconstruction behind a sorted key-path record stream: emit payloads
   verbatim, synthesizing End entries from level transitions (the
   open-tag stack is O(height) internal state).  [finish] closes the
   remaining open tags — call it after the sort has drained. *)
let keypath_output ~encoding ~enc emit =
  let packed = encoding = Config.Packed in
  let opens = ref [] in (* (level, pos) of open Start entries *)
  let close_down_to level =
    if not packed then
      let rec go () =
        match !opens with
        | (l, pos) :: rest when l >= level ->
            emit (Entry.encode_end_to enc ~level:l ~pos ~key:None);
            opens := rest;
            go ()
        | _ -> ()
      in
      go ()
    else opens := List.filter (fun (l, _) -> l < level) !opens
  in
  let output record =
    let payload = Keypath.decode_payload record in
    let v = Entry.View.of_payload encoding payload in
    close_down_to (Entry.View.level v);
    emit payload;
    match Entry.View.kind v with
    | Entry.View.Vstart -> opens := (Entry.View.level v, Entry.View.pos v) :: !opens
    | Entry.View.Vtext | Entry.View.Vrun_ptr | Entry.View.Vend -> ()
  in
  (output, fun () -> close_down_to 0)

(* Pull-based pre-order walk of a sorted forest: an explicit work list
   replaces emit_node's recursion so the sorted entries can feed a
   pipeline stage one at a time. *)
let forest_pull ~packed forest =
  let scratch = Extmem.Codec.Enc.create ~capacity:32 () in
  let work = ref (List.map (fun n -> `Node n) forest) in
  fun () ->
    match !work with
    | [] -> None
    | `End (level, pos) :: rest ->
        work := rest;
        Some (Entry.encode_end_to scratch ~level ~pos ~key:None)
    | `Node n :: rest ->
        let rest =
          match Entry.View.kind n.view with
          | Entry.View.Vstart ->
              let level = Entry.View.level n.view and pos = Entry.View.pos n.view in
              let rest = if packed then rest else `End (level, pos) :: rest in
              List.map (fun c -> `Node c) n.children @ rest
          | Entry.View.Vtext | Entry.View.Vrun_ptr -> rest
          | Entry.View.Vend -> assert false (* nodes are never built from End entries *)
        in
        work := rest;
        Some (Entry.View.payload n.view)
