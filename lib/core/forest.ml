(* The in-memory side of a subtree sort: rebuild the sibling forest from
   a flat entry list, sort siblings by key (position as tiebreak), and
   stream the result back out in sorted pre-order.

   Everything here is pure given its arguments — no session, no devices,
   no shared state — which is what lets [Sort_pool] run it inside worker
   domains.  The session-flavoured wrappers live in [Subtree_sort]. *)

type node = {
  entry : Entry.t;
  mutable key : Key.t;
  mutable children : node list; (* reversed while building *)
}

(* ---- forest building ---- *)

let node_of_entry e =
  let key = Entry.sibling_key e in
  { entry = e; key; children = [] }

let build_forest entries =
  let roots = ref [] in
  let open_stack = ref [] in (* innermost first *)
  let attach n =
    match !open_stack with
    | [] -> roots := n :: !roots
    | parent :: _ -> parent.children <- n :: parent.children
  in
  let close () =
    match !open_stack with
    | [] -> ()
    | top :: rest ->
        top.children <- List.rev top.children;
        open_stack := rest
  in
  (* close open elements whose level shows they ended (packed mode, where
     End entries are absent) *)
  let close_to level =
    while
      match !open_stack with
      | top :: _ -> Entry.level top.entry >= level
      | [] -> false
    do
      close ()
    done
  in
  List.iter
    (fun e ->
      match e with
      | Entry.End { level; key; _ } ->
          close_to (level + 1);
          (match (!open_stack, key) with
          | top :: _, Some k when Entry.level top.entry = level -> top.key <- k
          | _ -> ());
          close_to level
      | Entry.Start _ ->
          close_to (Entry.level e);
          let n = node_of_entry e in
          attach n;
          open_stack := n :: !open_stack
      | Entry.Text _ | Entry.Run_ptr _ ->
          close_to (Entry.level e);
          attach (node_of_entry e))
    entries;
  while !open_stack <> [] do
    close ()
  done;
  List.rev !roots

(* ---- sorting ---- *)

let compare_siblings a b =
  let c = Key.compare a.key b.key in
  if c <> 0 then c else compare (Entry.pos a.entry) (Entry.pos b.entry)

let rec sort_forest ~depth_limit nodes =
  match nodes with
  | [] -> []
  | first :: _ ->
      let level = Entry.level first.entry in
      let sort_here =
        match depth_limit with
        | None -> true
        | Some d -> level <= d + 1
      in
      if not sort_here then nodes
      else begin
        let nodes = List.sort compare_siblings nodes in
        List.iter (fun n -> n.children <- sort_forest ~depth_limit n.children) nodes;
        nodes
      end

let forest_size nodes =
  let rec count acc n = List.fold_left count (acc + 1) n.children in
  List.fold_left count 0 nodes

(* ---- serialization ---- *)

(* Emit a node's entries in sorted pre-order to an arbitrary sink of
   encoded entries (a run writer, or the fused output phase). *)
let rec emit_node ~encode ~packed emit n =
  emit (encode n.entry);
  match n.entry with
  | Entry.Start { level; pos; _ } ->
      List.iter (emit_node ~encode ~packed emit) n.children;
      if not packed then emit (encode (Entry.End { level; pos; key = None }))
  | Entry.Text _ | Entry.Run_ptr _ -> ()
  | Entry.End _ -> assert false (* nodes are never built from End entries *)

(* Pull-based pre-order walk of a sorted forest: an explicit work list
   replaces emit_node's recursion so the sorted entries can feed a
   pipeline stage one at a time. *)
let forest_pull ~encode ~packed forest =
  let work = ref (List.map (fun n -> `Node n) forest) in
  fun () ->
    match !work with
    | [] -> None
    | `End (level, pos) :: rest ->
        work := rest;
        Some (encode (Entry.End { level; pos; key = None }))
    | `Node n :: rest ->
        let rest =
          match n.entry with
          | Entry.Start { level; pos; _ } ->
              let rest = if packed then rest else `End (level, pos) :: rest in
              List.map (fun c -> `Node c) n.children @ rest
          | Entry.Text _ | Entry.Run_ptr _ -> rest
          | Entry.End _ -> assert false (* nodes are never built from End entries *)
        in
        work := rest;
        Some (encode n.entry)
