(** Domain pool for parallel subtree sorts, shared across jobs.

    The pool itself is only domains plus a bounded task queue; every
    job-owned resource (scratch run devices, writer buffers, run store,
    external-sort headroom) lives in a per-job {!view}, so one pool can
    serve many concurrent sessions with different configurations and a
    job's I/O counters never mix with another tenant's.

    Determinism contract (why [--jobs N] output and I/O counters are
    byte-identical to [--jobs 1]): run ids are {!Extmem.Run_store.reserve}d
    by the submitting thread at the single-threaded sequence points;
    workers are pure over already-encoded payloads; every task writes to
    a per-(view, worker) device with block-padded runs, so run block
    counts depend only on content; external tasks get exactly the arena
    the single-threaded sort would have leased; and {!drain} is the one
    barrier, after which runs are installed in id order. *)

type t
(** The shared pool: worker domains and the task queue. *)

type view
(** One job's handle on the pool: per-worker scratch devices and writer
    buffers, the run store runs are installed into, and the headroom
    budget external tasks carve their arenas from. *)

type worker_stats = {
  w_index : int;
  w_tasks : int;  (** tasks completed *)
  w_entries : int;  (** entries written across those tasks *)
  w_io : Extmem.Io_stats.t;  (** this view's scratch-run device I/O *)
}

val slab_blocks : int
(** Writer-buffer blocks per worker a view reserves in its job budget
    (the session inflates the budget by [workers * slab_blocks] so the
    blocks visible to the algorithm are unchanged). *)

val create : ?tracer:Obs.Tracer.t -> workers:int -> unit -> t
(** Spawn [workers] domains.  Each registers a ["worker i"] tracer
    track.  The pool owns no memory or devices.
    @raise Invalid_argument if [workers < 1]. *)

val workers : t -> int

val view :
  t ->
  config:Config.t ->
  runs:Extmem.Run_store.t ->
  budget:Extmem.Memory_budget.t ->
  ext_budget:Extmem.Memory_budget.t option ->
  view
(** Open a job's view.  Reserves [workers t * slab_blocks] blocks in
    [budget] (as ["pool writer buffers"]) and creates one scratch run
    device per worker via [config].  [ext_budget], when given, supplies
    the arena blocks for {!submit_external} tasks; carves from it are
    charged there, never to [budget].
    @raise Extmem.Memory_budget.Exhausted if [budget] cannot cover the
    writer buffers. *)

val submit_sort : t -> view -> run:Extmem.Run_store.id -> string list -> unit
(** Enqueue a subtree sort: rebuild the forest from the encoded entry
    payloads (document order), sort it, write the run.  [run] must have
    been {!Extmem.Run_store.reserve}d by the caller.  Blocks when the
    queue is full (bounded at twice the worker count). *)

val submit_copy : t -> view -> run:Extmem.Run_store.id -> string list -> unit
(** Enqueue a verbatim run write of pre-sorted payloads (degenerated
    fragments: already sorted, just being spilled). *)

val submit_external :
  t ->
  view ->
  run:Extmem.Run_store.id ->
  scan:[ `Forward | `Reverse ] ->
  arena_blocks:int ->
  string list ->
  unit
(** Enqueue a run-spilling subtree sort: key-path records are built from
    the payloads ([scan] names their order), merge-sorted through a
    private temp device with an [arena_blocks]-block arena carved from
    the view's headroom budget, and the reconstructed entry stream is
    written as one run.  [arena_blocks] must equal the lease the
    single-threaded path would take (measured after the same reclaim) so
    the run structure and temp I/O match the [--jobs 1] bill. *)

val drain : t -> view -> unit
(** Wait for this view's submitted tasks, then install their runs in id
    order.  If tasks failed, re-raises the failure with the smallest run
    id (= earliest submission) after installing the successful runs, so
    fault identity matches the single-threaded path. *)

val worker_stats : view -> worker_stats list
(** Per-worker totals for this view (snapshot at close once closed). *)

val io : view -> Extmem.Io_stats.t
(** This view's scratch-run device I/O (captured at close once closed). *)

val sim_ms : view -> float

val temp_io : view -> Extmem.Io_stats.t
(** I/O of retired external-task temp devices (the job's "scratch" bill). *)

val temp_sim_ms : view -> float

val leaked_blocks : view -> int
(** Blocks aborted external tasks failed to return to their arenas
    (force-reclaimed into the headroom budget, but counted here so a
    faulted job's leak is visible to the engine). *)

val close_view : t -> view -> unit
(** Tear down a job's view: discard its queued tasks (abort path — their
    reserved run ids are never read), wait out its in-flight task,
    snapshot totals, close the scratch devices and release the writer
    buffer reservation.  Other views are untouched.  Idempotent. *)

val shutdown : t -> unit
(** Stop and join the worker domains.  All views must be closed first.
    Idempotent. *)
