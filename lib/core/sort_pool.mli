(** A hand-rolled domain pool for in-memory subtree sorts.

    NEXSORT's subtree sorts are independent by construction (§4), so the
    pool fans the purely functional piece — forest rebuild, sibling
    sort, serialization ({!Forest}) — across worker domains while the
    main thread keeps sole ownership of the session: stacks, budget
    decisions and run-id assignment never leave it.

    The protocol keeping [--jobs N] byte-identical to [--jobs 1]:
    the main thread {!Extmem.Run_store.reserve}s the run id at exactly
    the sequence point where the single-threaded path would register the
    run, {!submit_sort}s the encoded payloads, and {!drain}s the pool
    before anything reads a worker-written run.  Workers sort the
    payloads as entry views and re-emit the same bytes — no dictionary
    access, no re-encoding — and write block-padded runs to private
    scratch devices, so run bytes and I/O counts are determined by
    content alone.

    Each worker's memory is a fixed slab ({!slab_blocks}) carved from
    the session arena; {!Session.create} inflates the budget by the
    carved total so the blocks visible to the algorithm are unchanged. *)

type t

val slab_blocks : int
(** Blocks carved per worker (its run-writer buffer). *)

val create :
  config:Config.t ->
  arena:Extmem.Frame_arena.t ->
  runs:Extmem.Run_store.t ->
  workers:int ->
  t
(** Carve per-worker sub-arenas out of [arena], open one scratch device
    per worker ([runs-w<i>]) and spawn the worker domains. *)

val workers : t -> int

val submit_sort : t -> run:Extmem.Run_store.id -> string list -> unit
(** Queue an in-memory subtree sort over already-encoded entry payloads
    whose result will fill the reserved [run] slot.  Blocks
    (backpressure) while the queue is full, bounding the transient heap
    held by queued payload lists. *)

val submit_copy : t -> run:Extmem.Run_store.id -> string list -> unit
(** Queue a verbatim copy (the depth-limit [d+1] case): already-encoded
    payloads written as a run, no sorting. *)

val drain : t -> unit
(** Barrier: wait for every submitted task, then install the finished
    runs into the store in id order.  If any task failed, the first
    failure in run-id order (not completion order) is re-raised with its
    original exception identity after the successful installs. *)

val shutdown : t -> unit
(** Stop and join the workers and release their slabs, leases, buffers
    and devices.  Pending queued tasks are dropped (abort path: their
    reserved run slots are never read).  Idempotent; called by
    {!Session.destroy} on every exit path, so teardown probes observe a
    quiescent arena even after a worker raised mid-sort. *)

type worker_stats = {
  w_index : int;
  w_tasks : int;    (** tasks completed *)
  w_entries : int;  (** entries sorted or copied *)
  w_io : Extmem.Io_stats.t;  (** I/O on the worker's scratch device *)
}

val worker_stats : t -> worker_stats list
(** Per-worker totals (snapshotted at {!shutdown} once it has run). *)

val io : t -> Extmem.Io_stats.t
(** Combined I/O of the worker scratch devices — the session counts it
    as part of the "runs" component. *)

val sim_ms : t -> float
(** Combined simulated time of the worker devices (cost-layer specs). *)
