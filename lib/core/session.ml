type t = {
  config : Config.t;
  budget : Extmem.Memory_budget.t;
  arena : Extmem.Frame_arena.t;
  dict : Xmlio.Dict.t;
  data_stack : Extmem.Ext_stack.t;
  path_stack : Extmem.Ext_stack.t;
  out_stack : Extmem.Ext_stack.t;
  runs : Extmem.Run_store.t;
  temp_stats : Extmem.Io_stats.t;
  mutable temp_sim_ms : float;
  registry : Obs.Registry.t;
  pool : (Sort_pool.t * Sort_pool.view) option;
  pool_host : Sort_pool.t option;
      (* a pool spawned for this session alone (standalone [--jobs N]);
         shut down at destroy.  [None] when the pool is engine-shared. *)
  poll : unit -> unit;
  enc_scratch : Extmem.Codec.Enc.t;
      (* main-thread encode scratch; workers carry their own *)
  mutable destroyed : bool;
}

(* Teardown probes: verification hooks (lib/verify) register here to
   check resource invariants — budget empty, arena ledger quiescent —
   after every sort, including aborted ones.  Probes run after the
   session's own resources are released, so anything still held points
   at a leak in a phase, not at the session. *)
let destroy_probes : (t -> unit) list ref = ref []

let add_destroy_probe f = destroy_probes := !destroy_probes @ [ f ]

(* Register every component's live counters as pull gauges — sampled only
   when a report is rendered, so the sort itself never pays for them. *)
let register_probes t =
  let reg = t.registry in
  Obs.Probe.ext_stack reg ~prefix:"data" t.data_stack;
  Obs.Probe.ext_stack reg ~prefix:"path" t.path_stack;
  Obs.Probe.ext_stack reg ~prefix:"out" t.out_stack;
  Obs.Probe.run_store reg ~prefix:"store" t.runs;
  Obs.Probe.device reg ~prefix:"data_stack" (Extmem.Ext_stack.device t.data_stack);
  Obs.Probe.device reg ~prefix:"path_stack" (Extmem.Ext_stack.device t.path_stack);
  Obs.Probe.device reg ~prefix:"out_stack" (Extmem.Ext_stack.device t.out_stack);
  Obs.Probe.device reg ~prefix:"runs" (Extmem.Run_store.device t.runs);
  Obs.Probe.frame_arena reg ~prefix:"arena" t.arena

(* How many pool workers serve this config: the shared pool's worker
   count when one is given, else the config's own [jobs]; zero on the
   single-threaded path (the pool is not used at all). *)
let pool_workers ?pool (config : Config.t) =
  if config.Config.jobs <= 1 then 0
  else match pool with Some p -> Sort_pool.workers p | None -> config.Config.jobs

(* The size of a job's budget: the algorithm-visible [memory_blocks]
   plus the pool writer buffers the view reserves on top, so the blocks
   the algorithm can see — and every size-based decision — are identical
   to the single-threaded path.  Engine admission carves exactly this. *)
let job_blocks ?pool (config : Config.t) =
  config.Config.memory_blocks + (pool_workers ?pool config * Sort_pool.slab_blocks)

(* Headroom for offloaded external subtree sorts: each in-flight
   external task carves at most the job's full arena, and at most one
   task per worker is in flight. *)
let ext_blocks ?pool (config : Config.t) =
  pool_workers ?pool config * config.Config.memory_blocks

let create ?budget ?pool ?ext_budget ?(poll = ignore) (config : Config.t) =
  let workers = pool_workers ?pool config in
  let budget =
    match budget with
    | Some b -> b
    | None ->
        Extmem.Memory_budget.create ~blocks:(job_blocks ?pool config)
          ~block_size:config.Config.block_size
  in
  let arena =
    Extmem.Frame_arena.create ~budget ~default_policy:config.Config.pager_policy ()
  in
  let tracer = config.Config.tracer in
  if Obs.Tracer.enabled tracer then
    Extmem.Frame_arena.set_observer arena (fun ~who ev _block ->
        let tag = match ev with Extmem.Frame_arena.Evict -> "evict:" | Writeback -> "writeback:" in
        Obs.Tracer.instant_s tracer (tag ^ who));
  let stack_dev name = Config.scratch_device config ~name in
  let dict = Xmlio.Dict.create () in
  let runs = Extmem.Run_store.create (stack_dev "runs") in
  let pool_host, the_pool =
    if workers = 0 then (None, None)
    else
      match pool with
      | Some p -> (None, Some p)
      | None ->
          let p = Sort_pool.create ~tracer ~workers () in
          (Some p, Some p)
  in
  let pool =
    match the_pool with
    | None -> None
    | Some p ->
        let ext_budget =
          match ext_budget with
          | Some _ as eb -> eb
          | None ->
              Some
                (Extmem.Memory_budget.create ~blocks:(ext_blocks ~pool:p config)
                   ~block_size:config.Config.block_size)
        in
        Some (p, Sort_pool.view p ~config ~runs ~budget ~ext_budget)
  in
  (* The input buffer is charged by the scan pipeline stage (see
     [Sorter.scan_source]), not here.  Each stack leases its own window
     from the arena — "data stack window", "path stack window",
     "output location stack window" — so the fixed reservations now live
     with their owners. *)
  let t =
    {
      config;
      budget;
      arena;
      dict;
      data_stack =
        Extmem.Ext_stack.create ~name:"data stack"
          ~resident_blocks:config.Config.data_stack_blocks ~arena ~borrow:true
          (stack_dev "data-stack");
      path_stack =
        Extmem.Ext_stack.create ~name:"path stack"
          ~resident_blocks:config.Config.path_stack_blocks ~arena (stack_dev "path-stack");
      out_stack =
        Extmem.Ext_stack.create ~name:"output location stack" ~resident_blocks:1 ~arena
          (stack_dev "output-location-stack");
      runs;
      temp_stats = Extmem.Io_stats.create ();
      temp_sim_ms = 0.;
      registry = Obs.Registry.create ();
      pool;
      pool_host;
      poll;
      enc_scratch = Extmem.Codec.Enc.create ~capacity:256 ();
      destroyed = false;
    }
  in
  register_probes t;
  t

let sync t =
  match t.pool with
  | Some (p, v) ->
      (* the one barrier: everything between these events is the main
         thread waiting on (and installing behind) worker completions *)
      let tracer = t.config.Config.tracer in
      Obs.Tracer.begin_s tracer "pool.drain";
      Fun.protect ~finally:(fun () -> Obs.Tracer.end_s tracer "pool.drain") (fun () ->
          Sort_pool.drain p v)
  | None -> ()

let destroy t =
  if not t.destroyed then begin
    t.destroyed <- true;
    (* the view first: waiting out in-flight worker tasks and returning
       the writer buffers must precede the teardown probes on every exit
       path, including a worker raising mid-sort.  Engine-shared pools
       survive — only this job's view closes. *)
    (match t.pool with Some (p, v) -> Sort_pool.close_view p v | None -> ());
    (match t.pool_host with Some p -> Sort_pool.shutdown p | None -> ());
    Extmem.Ext_stack.close t.data_stack;
    Extmem.Ext_stack.close t.path_stack;
    Extmem.Ext_stack.close t.out_stack;
    Extmem.Device.close (Extmem.Ext_stack.device t.data_stack);
    Extmem.Device.close (Extmem.Ext_stack.device t.path_stack);
    Extmem.Device.close (Extmem.Ext_stack.device t.out_stack);
    Extmem.Device.close (Extmem.Run_store.device t.runs);
    List.iter (fun f -> f t) !destroy_probes
  end

(* Blocks lent to the data-stack window are idle memory, reclaimable at
   any time ([reclaim]), so they still count as arena: this keeps every
   size-based decision (in-memory vs external sort, degeneration)
   independent of how many blocks the stack happens to hold. *)
let arena_bytes t =
  Extmem.Memory_budget.available_bytes t.budget
  + Extmem.Ext_stack.borrowed t.data_stack * Extmem.Memory_budget.block_size t.budget

let reclaim t = Extmem.Ext_stack.shed t.data_stack

let leaked_blocks t =
  match t.pool with Some (_, v) -> Sort_pool.leaked_blocks v | None -> 0

let with_temp t f =
  reclaim t;
  let dev = Config.scratch_device t.config ~name:"temp" in
  Fun.protect
    ~finally:(fun () ->
      Extmem.Io_stats.accumulate ~into:t.temp_stats (Extmem.Device.stats dev);
      t.temp_sim_ms <- t.temp_sim_ms +. Extmem.Device.simulated_ms dev;
      Extmem.Device.close dev)
    (fun () -> f dev)

let encode_entry t e = Entry.encode_to t.config.Config.encoding t.dict t.enc_scratch e

let decode_entry t s = Entry.decode t.config.Config.encoding t.dict s

let view_entry t s = Entry.View.of_payload t.config.Config.encoding s

let io_breakdown t =
  [
    ("data stack", Extmem.Io_stats.snapshot (Extmem.Ext_stack.io_stats t.data_stack));
    ("path stack", Extmem.Io_stats.snapshot (Extmem.Ext_stack.io_stats t.path_stack));
    ("output location stack", Extmem.Io_stats.snapshot (Extmem.Ext_stack.io_stats t.out_stack));
    ( "runs",
      (* runs I/O covers every device runs live on: the store's own plus
         this job's worker scratch devices *)
      let main = Extmem.Io_stats.snapshot (Extmem.Device.stats (Extmem.Run_store.device t.runs)) in
      match t.pool with
      | Some (_, v) -> Extmem.Io_stats.add main (Sort_pool.io v)
      | None -> main );
    ( "scratch",
      (* retired temp devices: the main thread's plus the workers'
         (offloaded external subtree sorts) *)
      let main = Extmem.Io_stats.snapshot t.temp_stats in
      match t.pool with
      | Some (_, v) -> Extmem.Io_stats.add main (Sort_pool.temp_io v)
      | None -> main );
  ]

let total_io t =
  List.fold_left
    (fun acc (_, s) -> Extmem.Io_stats.add acc s)
    (Extmem.Io_stats.create ()) (io_breakdown t)

let simulated_ms t =
  Extmem.Device.simulated_ms (Extmem.Ext_stack.device t.data_stack)
  +. Extmem.Device.simulated_ms (Extmem.Ext_stack.device t.path_stack)
  +. Extmem.Device.simulated_ms (Extmem.Ext_stack.device t.out_stack)
  +. Extmem.Device.simulated_ms (Extmem.Run_store.device t.runs)
  +. (match t.pool with
     | Some (_, v) -> Sort_pool.sim_ms v +. Sort_pool.temp_sim_ms v
     | None -> 0.)
  +. t.temp_sim_ms
