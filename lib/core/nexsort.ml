(** NEXSORT — sorting XML in external memory (Silberstein & Yang, ICDE 2004).

    The library's entry points live in {!Sorter} and are also included
    here, so [Nexsort.sort_string] works directly.  Supporting modules:
    {!Key} and {!Ordering} (sort criteria), {!Config} (algorithm
    parameters), {!Entry}, {!Keypath}, {!Session} and {!Subtree_sort}
    (the machinery, exposed for the baselines, benchmarks and tests). *)

module Key = Key
module Ordering = Ordering
module Config = Config
module Entry = Entry
module Session = Session
module Keypath = Keypath
module Forest = Forest
module Subtree_sort = Subtree_sort
module Sort_pool = Sort_pool
module Sorter = Sorter
include Sorter
