(** Key-path records (Table 1 of the paper).

    The key path of a node is the sequence of sort keys of the elements on
    the path from (sub)tree root to the node, each key paired with the
    node's document position as the uniqueness tiebreak.  Sorting records
    by key path puts them exactly in the pre-order of the sorted document:
    a parent's path is a strict prefix of its descendants' paths (so it
    sorts first), and siblings compare by their final (key, pos)
    component.

    These records drive the key-path external merge-sort baseline and the
    external subtree sorts inside NEXSORT (Figure 4, line 11).  Records
    are compared in their encoded form, without allocation. *)

type component = {
  key : Key.t;
  pos : int;  (** document position of the element contributing [key] *)
}

val encode_record : ?enc:Extmem.Codec.Enc.t -> component list -> payload:string -> string
(** [encode_record path ~payload] serializes a record whose key path is
    [path] (outermost component first) carrying an opaque payload (an
    encoded {!Entry.t}).  [?enc] supplies a reusable scratch encoder; it is
    cleared first, and the returned string is still freshly allocated. *)

val decode_path : string -> component list

val decode_payload : string -> string

val payload_offset : string -> int
(** Offset of the opaque payload within an encoded record, letting callers
    slice it out (or view it in place) without decoding the path. *)

val compare_encoded : string -> string -> int
(** Lexicographic comparison of the key paths: component-wise by
    [(Key.compare, pos)], a strict prefix ordering before its extensions.
    Payloads do not participate. *)

val pp_component : Format.formatter -> component -> unit

val path_to_string : component list -> string
(** Display form, ["/NE/Durham/454"]-style (Table 1). *)
