(** Ordering criteria: how to extract a sort key from an element.

    The paper's example sorts regions and branches by their [name]
    attribute and employees by [ID] (Figure 1); §3.2 extends this to
    "complex ordering criteria" evaluated over an element's subtree, such
    as [personalInfo/name/lastName], provided the expression can be
    computed in a single pass over the subtree with constant state.  All
    of those are supported here.

    A criterion is {e scan-evaluable} when its key is known from the start
    tag alone ([By_tag], [By_attr], [Document_order]); subtree criteria
    ([By_text], [By_path]) only produce their key once the end tag is
    reached.  NEXSORT handles both; the key-path merge-sort baseline
    requires scan-evaluable criteria (it emits each element's key path
    when its start tag is read).

    Text nodes always get the [Null] key: they keep document order among
    themselves and sort before keyed siblings. *)

type criterion =
  | By_tag            (** the element's tag name *)
  | By_attr of string (** value of the named attribute, [Null] if absent *)
  | By_text           (** concatenated direct text children of the element *)
  | By_path of string list
      (** text content of the first descendant reached by the given tag
          path (e.g. [["personalInfo"; "name"]]), [Null] when
          no such descendant exists *)
  | Document_order    (** key [Null]: keep siblings in document order *)
  | Composite of criterion list
      (** lexicographic compound key — the recursively-defined orderings
          of the NF2 literature the paper discusses in §2, e.g. last name
          then first name *)
  | Desc of criterion (** descending order of the wrapped criterion *)

type t
(** A criterion assignment: per-tag rules with a default. *)

val make : ?rules:(string * criterion) list -> criterion -> t
(** [make ~rules default]: elements whose tag appears in [rules] use that
    criterion, all others use [default]. *)

val by_attr : string -> t
(** Every element sorts by the given attribute — the common case for
    data-centric documents (the paper's generators key every element by an
    [id]-like attribute). *)

val by_tag : t

val document_order : t

val criterion_for : t -> string -> criterion
(** The criterion that applies to elements with the given tag. *)

val scan_evaluable : criterion -> bool

val key_of_start : t -> string -> Xmlio.Event.attr list -> Key.t option
(** The key of an element given only its start tag; [None] when the
    applicable criterion is not scan-evaluable.  The shared helper behind
    the streaming merges and the key-path baseline. *)

val all_scan_evaluable : t -> bool
(** True when every rule and the default are scan-evaluable. *)

val key_of_tree : t -> Xmlio.Tree.element -> Key.t
(** Evaluate the applicable criterion against an in-memory element (used
    by the internal-memory baseline and by tests as the oracle). *)

(** {1 Streaming evaluation}

    The sorting-phase scan feeds every parser event to an evaluator, which
    produces each element's key as early as possible: at the start tag for
    scan-evaluable criteria, at the end tag for subtree criteria.  This is
    the implementation of §3.2's path-stack augmentation — the per-open-
    element expression state lives alongside the path stack (O(height)
    small values). *)

module Evaluator : sig
  type eval

  val create : t -> eval

  val on_start : eval -> string -> Xmlio.Event.attr list -> Key.t option
  (** Open an element.  [Some key] iff its criterion is scan-evaluable. *)

  val on_start_lookup : eval -> string -> (string -> string option) -> Key.t option
  (** {!on_start} with attribute values supplied by a lookup function —
      the allocation-free variant for callers holding a packed event
      ({!Xmlio.Event.packed_attr}) instead of an attr assoc list. *)

  val on_text : eval -> string -> unit
  (** Character data inside the innermost open element. *)

  val on_end : eval -> Key.t option
  (** Close the innermost element.  [Some key] iff its criterion is a
      subtree criterion. *)

  val depth : eval -> int
end

val pp_criterion : Format.formatter -> criterion -> unit

val of_spec_string : string -> t
(** Parse a command-line spec: a comma-separated list of
    [tag=criterion] rules with an optional bare [criterion] default,
    where criterion is [tag], [doc], [text], [@attr], an [a/b/c]
    descendant path, [-c] for descending, or [(c1;c2;...)] for a
    compound key.
    Example: ["@id,region=@name,employee=(personalInfo/name;-@ID)"].
    @raise Invalid_argument on a malformed spec. *)
