module Config = Nexsort.Config
module Entry = Nexsort.Entry
module Key = Nexsort.Key
module Keypath = Nexsort.Keypath
module Ordering = Nexsort.Ordering

type report = {
  records : int;
  record_bytes : int;
  initial_runs : int;
  merge_passes : int;
  input_io : Extmem.Io_stats.t;
  temp_io : Extmem.Io_stats.t;
  output_io : Extmem.Io_stats.t;
  total_io : Extmem.Io_stats.t;
  simulated_ms : float;
  wall_seconds : float;
  spans : Obs.Span.t;
}

(* Pull-stream of encoded key-path records for the whole document. *)
let record_stream ~config ~ordering ~dict parser counters =
  let evaluator = Ordering.Evaluator.create ordering in
  let enc = config.Config.encoding in
  let stack = ref [] in (* components of open elements, innermost first *)
  let pos = ref 0 in
  let level () = List.length !stack in
  let depth_limit = config.Config.depth_limit in
  let component lvl key p =
    let key =
      match depth_limit with
      | Some d when lvl > d + 1 -> Key.Null
      | Some _ | None -> key
    in
    { Keypath.key; pos = p }
  in
  let emit entry own =
    let record =
      Keypath.encode_record (List.rev !stack @ [ own ]) ~payload:(Entry.encode enc dict entry)
    in
    let n_rec, n_bytes = !counters in
    counters := (n_rec + 1, n_bytes + String.length record);
    Some record
  in
  let rec next () =
    match Xmlio.Parser.next parser with
    | None -> None
    | Some (Xmlio.Event.Start (name, attrs)) ->
        incr pos;
        let key =
          match Ordering.Evaluator.on_start evaluator name attrs with
          | Some k -> k
          | None ->
              invalid_arg
                "Keypath_sort: subtree-derived orderings are not supported by the key-path \
                 baseline (keys must be known at the start tag)"
        in
        let lvl = level () + 1 in
        let own = component lvl key !pos in
        let entry = Entry.Start { level = lvl; pos = !pos; name; attrs; key = Some key } in
        let r = emit entry own in
        stack := own :: !stack;
        r
    | Some (Xmlio.Event.Text content) ->
        incr pos;
        Ordering.Evaluator.on_text evaluator content;
        let lvl = level () + 1 in
        let entry = Entry.Text { level = lvl; pos = !pos; content } in
        emit entry (component lvl Key.Null !pos)
    | Some (Xmlio.Event.End _) ->
        ignore (Ordering.Evaluator.on_end evaluator);
        (match !stack with
        | _ :: rest -> stack := rest
        | [] -> ());
        next ()
  in
  next

let sort_device ?(config = Config.make ()) ~ordering ~input ~output () =
  if not (Ordering.all_scan_evaluable ordering) then
    invalid_arg "Keypath_sort: ordering must be scan-evaluable";
  let t0 = Unix.gettimeofday () in
  let dict = Xmlio.Dict.create () in
  let budget =
    Extmem.Memory_budget.create ~blocks:config.Config.memory_blocks
      ~block_size:config.Config.block_size
  in
  let counters = ref (0, 0) in
  (* the scan pipeline stage owns the input buffer *)
  let scan_src =
    Pipe.source ~mem:1 ~who:"keypath scan" (fun () ->
        let parser =
          Xmlio.Parser.of_reader
            ~keep_whitespace:config.Config.keep_whitespace
            (Extmem.Block_reader.of_device input)
        in
        (record_stream ~config ~ordering ~dict parser counters, ignore))
  in
  let temp = Config.scratch_device config ~name:"temp" in
  let enc = config.Config.encoding in
  (* reconstruction sink: sorted key-path order is the sorted document's
     pre-order; end tags come back from level transitions (§3.2).  The
     close flushes whole blocks before validating writer depth. *)
  let recon_sink =
    Pipe.sink ~mem:1 ~who:"xml reconstruction" (fun () ->
        let bw = Extmem.Block_writer.create output in
        let writer = Xmlio.Writer.to_block_writer bw in
        let opens = Extmem.Vec.create () in
        let close_to level =
          while Extmem.Vec.length opens > 0 && snd (Extmem.Vec.top opens) >= level do
            let name, _ = Extmem.Vec.pop opens in
            Xmlio.Writer.event writer (Xmlio.Event.End name)
          done
        in
        let push record =
          match Entry.decode enc dict (Keypath.decode_payload record) with
          | Entry.Start { name; attrs; level; _ } ->
              close_to level;
              Xmlio.Writer.event writer (Xmlio.Event.Start (name, attrs));
              Extmem.Vec.push opens (name, level)
          | Entry.Text { content; level; _ } ->
              close_to level;
              Xmlio.Writer.event writer (Xmlio.Event.Text content)
          | Entry.End _ | Entry.Run_ptr _ -> assert false
        in
        let close () =
          close_to 1;
          let extent = Extmem.Block_writer.close bw in
          Extmem.Device.set_byte_length output extent.Extmem.Extent.bytes;
          Xmlio.Writer.close writer
        in
        (push, close))
  in
  let io_meter () =
    Extmem.Io_stats.add
      (Extmem.Io_stats.snapshot (Extmem.Device.stats input))
      (Extmem.Io_stats.add
         (Extmem.Io_stats.snapshot (Extmem.Device.stats temp))
         (Extmem.Io_stats.snapshot (Extmem.Device.stats output)))
  in
  let sim_meter () =
    Extmem.Device.simulated_ms input
    +. Extmem.Device.simulated_ms temp
    +. Extmem.Device.simulated_ms output
  in
  let spans = Obs.Spans.create ~io:io_meter ~sim_ms:sim_meter "keypath_sort" in
  (* scan, run formation, merging and reconstruction are one pipeline here:
     records are pulled from the parser and sorted output is reconstructed
     on the fly, so they share one phase span *)
  let stats =
    Obs.Spans.with_span spans "scan_sort_reconstruct" (fun () ->
        let src = Pipe.open_source ~spans ~budget scan_src in
        let o =
          try
            Extsort.External_sort.sort_open ~budget ~temp ~cmp:Keypath.compare_encoded
              ~input:src.Pipe.pull ()
          with e ->
            src.Pipe.close ();
            raise e
        in
        (* run formation consumed the whole input; give its buffer back
           before the reconstruction sink reserves the output buffer *)
        src.Pipe.close ();
        Pipe.run_opened ~spans ~budget
          { Pipe.pull = o.Extsort.External_sort.pull; close = o.Extsort.External_sort.close }
          recon_sink;
        o.Extsort.External_sort.stats)
  in
  let input_io = Extmem.Io_stats.snapshot (Extmem.Device.stats input) in
  let temp_io = Extmem.Io_stats.snapshot (Extmem.Device.stats temp) in
  let output_io = Extmem.Io_stats.snapshot (Extmem.Device.stats output) in
  let n_records, record_bytes = !counters in
  {
    records = n_records;
    record_bytes;
    initial_runs = stats.Extsort.External_sort.initial_runs;
    merge_passes = stats.Extsort.External_sort.merge_passes;
    input_io;
    temp_io;
    output_io;
    total_io = Extmem.Io_stats.add input_io (Extmem.Io_stats.add temp_io output_io);
    simulated_ms =
      Extmem.Device.simulated_ms input
      +. Extmem.Device.simulated_ms temp
      +. Extmem.Device.simulated_ms output;
    wall_seconds = Unix.gettimeofday () -. t0;
    spans = Obs.Spans.close spans;
  }

let sort_string ?config ~ordering s =
  let config = Option.value config ~default:(Config.make ()) in
  let input = Config.scratch_device config ~name:"input" in
  Extmem.Device.load_string input s;
  let output = Config.scratch_device config ~name:"output" in
  let report = sort_device ~config ~ordering ~input ~output () in
  (Extmem.Device.contents output, report)

let keypath_table ~ordering s =
  if not (Ordering.all_scan_evaluable ordering) then
    invalid_arg "Keypath_sort.keypath_table: ordering must be scan-evaluable";
  let parser = Xmlio.Parser.of_string s in
  let evaluator = Ordering.Evaluator.create ordering in
  let stack = ref [] in
  let rows = ref [] in
  let rec go () =
    match Xmlio.Parser.next parser with
    | None -> ()
    | Some (Xmlio.Event.Start (name, attrs)) ->
        let key = Option.get (Ordering.Evaluator.on_start evaluator name attrs) in
        stack := { Keypath.key; pos = 0 } :: !stack;
        let tag =
          Printf.sprintf "<%s%s>" name
            (String.concat ""
               (List.map (fun (k, v) -> Printf.sprintf " %s=\"%s\"" k (Xmlio.Escape.escape_attr v)) attrs))
        in
        (* Table 1 omits the root's own key: the root row reads "/" *)
        let display_path =
          match List.rev !stack with
          | _root :: rest -> rest
          | [] -> []
        in
        rows := (Keypath.path_to_string display_path, tag) :: !rows;
        go ()
    | Some (Xmlio.Event.Text content) ->
        Ordering.Evaluator.on_text evaluator content;
        (match !rows with
        | (path, tag) :: rest -> rows := (path, tag ^ Xmlio.Escape.escape_text content) :: rest
        | [] -> ());
        go ()
    | Some (Xmlio.Event.End _) ->
        ignore (Ordering.Evaluator.on_end evaluator);
        (match !stack with
        | _ :: rest -> stack := rest
        | [] -> ());
        go ()
  in
  go ();
  List.rev !rows
