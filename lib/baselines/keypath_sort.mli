(** Key-path external merge sort (§1, second strawman; Table 1).

    The flat-file approach the paper measures NEXSORT against: scan the
    input once, emit one key-path record per node (the concatenation of
    the sort keys along the path from the root, Table 1), externally
    merge-sort the records, and reconstruct the document from the sorted
    record stream.  It achieves the Θ(n·log_m n) flat-file bound but
    ignores the document structure, and for tall trees the key-path
    representation can be much larger than the input.

    Requires a scan-evaluable ordering — the record of an element is
    emitted when its start tag is read, before any subtree-derived key
    could be known.  Compaction (§3.2) applies here too via
    {!Nexsort.Config.encoding}, mirroring the paper's implementation which
    enables it for both algorithms. *)

type report = {
  records : int;        (** key-path records generated (one per node) *)
  record_bytes : int;   (** total size of the key-path representation *)
  initial_runs : int;
  merge_passes : int;
  input_io : Extmem.Io_stats.t;
  temp_io : Extmem.Io_stats.t;
  output_io : Extmem.Io_stats.t;
  total_io : Extmem.Io_stats.t;
  simulated_ms : float;
      (** simulated I/O time across input/temp/output when cost layers are
          attached; [0.] otherwise *)
  wall_seconds : float;
  spans : Obs.Span.t;
      (** phase spans under ["keypath_sort"]: [scan_sort_reconstruct] (the
          whole fused pipeline, including the final flush) plus the
          per-stage [open:]/[drain:] spans from [Pipe], with I/O deltas *)
}

val sort_device :
  ?config:Nexsort.Config.t ->
  ordering:Nexsort.Ordering.t ->
  input:Extmem.Device.t ->
  output:Extmem.Device.t ->
  unit ->
  report
(** Sort the document on [input] into [output].
    @raise Invalid_argument when the ordering is not scan-evaluable.
    @raise Xmlio.Parser.Error on malformed input. *)

val sort_string :
  ?config:Nexsort.Config.t -> ordering:Nexsort.Ordering.t -> string -> string * report

val keypath_table :
  ordering:Nexsort.Ordering.t -> string -> (string * string) list
(** The key-path representation as displayable rows (Table 1 of the
    paper): for every element, its key path (["/AC/Durham/454"]) and its
    start-tag text.  For exposition and the T1 benchmark. *)
