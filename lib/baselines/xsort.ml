module Config = Nexsort.Config
module Key = Nexsort.Key
module Ordering = Nexsort.Ordering

type report = {
  targets_sorted : int;
  children_sorted : int;
  spilled_sorts : int;
  input_io : Extmem.Io_stats.t;
  temp_io : Extmem.Io_stats.t;
  output_io : Extmem.Io_stats.t;
  total_io : Extmem.Io_stats.t;
  wall_seconds : float;
}

(* ---- a small self-contained event codec for spooled child subtrees ---- *)

let put_event buf e =
  match e with
  | Xmlio.Event.Start (name, attrs) ->
      Extmem.Codec.put_u8 buf 0;
      Extmem.Codec.put_string buf name;
      Extmem.Codec.put_varint buf (List.length attrs);
      List.iter
        (fun (k, v) ->
          Extmem.Codec.put_string buf k;
          Extmem.Codec.put_string buf v)
        attrs
  | Xmlio.Event.End name ->
      Extmem.Codec.put_u8 buf 1;
      Extmem.Codec.put_string buf name
  | Xmlio.Event.Text s ->
      Extmem.Codec.put_u8 buf 2;
      Extmem.Codec.put_string buf s

let get_event c =
  match Extmem.Codec.get_u8 c with
  | 0 ->
      let name = Extmem.Codec.get_string c in
      let n = Extmem.Codec.get_varint c in
      let rec attrs n acc =
        if n = 0 then List.rev acc
        else begin
          let k = Extmem.Codec.get_string c in
          let v = Extmem.Codec.get_string c in
          attrs (n - 1) ((k, v) :: acc)
        end
      in
      Xmlio.Event.Start (name, attrs n [])
  | 1 -> Xmlio.Event.End (Extmem.Codec.get_string c)
  | 2 -> Xmlio.Event.Text (Extmem.Codec.get_string c)
  | t -> raise (Extmem.Codec.Corrupt (Printf.sprintf "Xsort: bad event tag %d" t))

(* child records: [key][varint pos][events...] *)
let encode_child key pos events =
  let buf = Buffer.create 128 in
  Key.encode buf key;
  Extmem.Codec.put_varint buf pos;
  List.iter (put_event buf) (List.rev events);
  Buffer.contents buf

let compare_children a b =
  let ca = Extmem.Codec.cursor a and cb = Extmem.Codec.cursor b in
  let ka = Key.decode ca and kb = Key.decode cb in
  let c = Key.compare ka kb in
  if c <> 0 then c else compare (Extmem.Codec.get_varint ca) (Extmem.Codec.get_varint cb)

let emit_child_events record emit =
  let c = Extmem.Codec.cursor record in
  ignore (Key.decode c);
  ignore (Extmem.Codec.get_varint c);
  while not (Extmem.Codec.at_end c) do
    emit (get_event c)
  done

(* ---- the streaming pass ---- *)

type ctx = {
  parser : Xmlio.Parser.t;
  ordering : Ordering.t;
  targets : string list;
  selector : Xmlio.Xpath.t option;
  budget : Extmem.Memory_budget.t;
  temp : Extmem.Device.t;
  mutable chain : (string * Xmlio.Event.attr list) list; (* innermost first *)
  mutable pos : int;
  mutable n_targets : int;
  mutable n_children : int;
  mutable n_spilled : int;
}

(* the element is already on ctx.chain when this is asked *)
let is_target ctx name =
  match ctx.selector with
  | Some path -> Xmlio.Xpath.matches_chain path (List.rev ctx.chain)
  | None -> List.mem name ctx.targets

let key_of ctx name attrs =
  match Ordering.key_of_start ctx.ordering name attrs with
  | Some k -> k
  | None -> invalid_arg "Xsort: ordering must be scan-evaluable"

(* [element] processes one element whose Start has been consumed, emitting
   its (possibly child-sorted) events including the End.  [captured] is
   true when we are already buffering inside an outer target's child — the
   nested sort is then done in memory, since the data is memory-resident
   anyway. *)
let rec element ctx ~captured emit name attrs =
  ctx.chain <- (name, attrs) :: ctx.chain;
  emit (Xmlio.Event.Start (name, attrs));
  if is_target ctx name then sorted_children ctx ~captured emit name
  else plain_children ctx ~captured emit;
  ctx.chain <- List.tl ctx.chain

and plain_children ctx ~captured emit =
  match Xmlio.Parser.next ctx.parser with
  | None -> invalid_arg "Xsort: truncated input"
  | Some (Xmlio.Event.End _ as e) -> emit e
  | Some (Xmlio.Event.Text _ as e) ->
      ctx.pos <- ctx.pos + 1;
      emit e;
      plain_children ctx ~captured emit
  | Some (Xmlio.Event.Start (n, a)) ->
      ctx.pos <- ctx.pos + 1;
      element ctx ~captured emit n a;
      plain_children ctx ~captured emit

(* capture one child subtree (its Start already identified by the caller's
   peek) into an encoded record; nested targets are sorted on the fly *)
and capture_child ctx =
  match Xmlio.Parser.next ctx.parser with
  | Some (Xmlio.Event.Text s) ->
      ctx.pos <- ctx.pos + 1;
      Some (encode_child Key.Null ctx.pos [ Xmlio.Event.Text s ])
  | Some (Xmlio.Event.Start (n, a)) ->
      ctx.pos <- ctx.pos + 1;
      let pos = ctx.pos in
      let key = key_of ctx n a in
      let events = ref [] in
      element ctx ~captured:true (fun e -> events := e :: !events) n a;
      Some (encode_child key pos !events)
  | Some (Xmlio.Event.End _) -> None
  | None -> invalid_arg "Xsort: truncated input"

and sorted_children ctx ~captured emit name =
  ctx.n_targets <- ctx.n_targets + 1;
  if captured then begin
    (* in-memory: the surrounding capture already holds everything *)
    let records = ref [] in
    let rec gather () =
      match capture_child ctx with
      | Some r ->
          records := r :: !records;
          gather ()
      | None -> ()
    in
    gather ();
    let sorted = List.sort compare_children (List.rev !records) in
    ctx.n_children <- ctx.n_children + List.length sorted;
    List.iter (fun r -> emit_child_events r emit) sorted;
    emit (Xmlio.Event.End name)
  end
  else begin
    (* streaming: external merge sort over the child records *)
    let count = ref 0 in
    let input () =
      match capture_child ctx with
      | Some r ->
          incr count;
          Some r
      | None -> None
    in
    let stats =
      Extsort.External_sort.sort ~budget:ctx.budget ~temp:ctx.temp ~cmp:compare_children ~input
        ~output:(fun r -> emit_child_events r emit)
        ()
    in
    if stats.Extsort.External_sort.initial_runs > 0 then ctx.n_spilled <- ctx.n_spilled + 1;
    ctx.n_children <- ctx.n_children + !count;
    emit (Xmlio.Event.End name)
  end

let sort_device ?(config = Config.make ()) ?selector ~ordering ~targets ~input ~output () =
  if targets = [] && selector = None then invalid_arg "Xsort: no target elements given";
  (match selector with
  | Some p when Xmlio.Xpath.has_positional p ->
      invalid_arg "Xsort: positional predicates are not supported in target paths"
  | Some _ | None -> ());
  if not (Ordering.all_scan_evaluable ordering) then
    invalid_arg "Xsort: ordering must be scan-evaluable";
  let t0 = Unix.gettimeofday () in
  let budget =
    Extmem.Memory_budget.create ~blocks:config.Config.memory_blocks
      ~block_size:config.Config.block_size
  in
  Extmem.Memory_budget.reserve budget ~who:"input buffer" 1;
  Extmem.Memory_budget.reserve budget ~who:"output buffer" 1;
  let temp = Config.scratch_device config ~name:"temp" in
  let parser =
    Xmlio.Parser.of_reader
      ~keep_whitespace:config.Config.keep_whitespace
      (Extmem.Block_reader.of_device input)
  in
  let ctx =
    { parser; ordering; targets; selector; budget; temp; chain = []; pos = 0; n_targets = 0;
      n_children = 0; n_spilled = 0 }
  in
  let bw = Extmem.Block_writer.create output in
  let writer = Xmlio.Writer.to_block_writer bw in
  let emit = Xmlio.Writer.event writer in
  (match Xmlio.Parser.next parser with
  | Some (Xmlio.Event.Start (n, a)) ->
      ctx.pos <- 1;
      element ctx ~captured:false emit n a
  | Some _ | None -> invalid_arg "Xsort: input has no root element");
  (match Xmlio.Parser.next parser with
  | None -> ()
  | Some _ -> invalid_arg "Xsort: trailing content after the root element");
  Xmlio.Writer.close writer;
  let extent = Extmem.Block_writer.close bw in
  Extmem.Device.set_byte_length output extent.Extmem.Extent.bytes;
  let input_io = Extmem.Io_stats.snapshot (Extmem.Device.stats input) in
  let temp_io = Extmem.Io_stats.snapshot (Extmem.Device.stats temp) in
  let output_io = Extmem.Io_stats.snapshot (Extmem.Device.stats output) in
  {
    targets_sorted = ctx.n_targets;
    children_sorted = ctx.n_children;
    spilled_sorts = ctx.n_spilled;
    input_io;
    temp_io;
    output_io;
    total_io = Extmem.Io_stats.add input_io (Extmem.Io_stats.add temp_io output_io);
    wall_seconds = Unix.gettimeofday () -. t0;
  }

let sort_string ?config ?selector ~ordering ~targets s =
  let config = Option.value config ~default:(Config.make ()) in
  let input = Config.scratch_device config ~name:"input" in
  Extmem.Device.load_string input s;
  let output = Config.scratch_device config ~name:"output" in
  let report = sort_device ~config ?selector ~ordering ~targets ~input ~output () in
  (Extmem.Device.contents output, report)
