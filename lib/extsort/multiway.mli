(** K-way merging of sorted streams.

    The merge step of external merge sort: given [k] streams that are each
    sorted under [cmp], produce their sorted union.  Implemented with a
    binary tournament heap, so each output record costs O(log k)
    comparisons and no I/O beyond what the input streams themselves do
    (one buffer block per stream when they are {!Extmem.Block_reader}s).

    Those per-stream buffer blocks are real memory: with [?arena] the
    merge holds a {!Extmem.Frame_arena.lease} of one block per input for
    its duration, so an over-wide merge raises
    {!Extmem.Memory_budget.Exhausted} naming the merge (via [?who],
    default ["<k>-way merge"]) instead of silently exceeding [M].

    The merge is stable across streams: on equal records, the stream with
    the smaller index wins. *)

val merge :
  ?arena:Extmem.Frame_arena.t ->
  ?who:string ->
  cmp:(string -> string -> int) ->
  inputs:(unit -> string option) array ->
  output:(string -> unit) ->
  unit ->
  unit
(** [merge ~cmp ~inputs ~output ()] drains all input streams into
    [output] in sorted order.  Streams must individually be sorted under
    [cmp]; this is not checked.  With [?arena], one block per input is
    leased for the duration of the merge.

    @raise Extmem.Memory_budget.Exhausted when the fan-in does not fit. *)

val merge_list :
  ?arena:Extmem.Frame_arena.t ->
  ?who:string ->
  cmp:(string -> string -> int) ->
  inputs:(unit -> string option) list ->
  output:(string -> unit) ->
  unit ->
  unit

val merge_pull :
  ?arena:Extmem.Frame_arena.t ->
  ?lease:Extmem.Frame_arena.lease ->
  ?who:string ->
  cmp:(string -> string -> int) ->
  inputs:(unit -> string option) array ->
  unit ->
  (unit -> string option) * (unit -> unit)
(** Streaming variant for pipeline fusion: [merge_pull ~cmp ~inputs ()]
    returns [(pull, close)] where [pull] yields the sorted union on
    demand.  With [?arena], a fan-in lease is taken up front and closed
    when the stream is exhausted or [close] is called (whichever comes
    first; [close] is idempotent).  With [?lease] the caller hands over
    an already-held lease instead (covering the fan-in buffers it
    opened); the merge assumes ownership and closes it the same way. *)
