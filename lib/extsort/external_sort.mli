(** External merge sort over record streams.

    The classic Θ(n·log_m n) algorithm the paper compares NEXSORT against,
    and the machinery NEXSORT itself reuses for subtree sorts that exceed
    internal memory (§3.1, line 11) and for merging incomplete runs in the
    graceful-degeneration extension (§3.2).

    The sort works on opaque records (byte strings) under a caller-supplied
    total order:

    - {e Run generation}: records are accumulated in an internal-memory
      arena sized by the {!Extmem.Memory_budget.t}, sorted, and written to
      the temp device as initial runs.
    - {e Merging}: runs are merged [fan-in] at a time (fan-in = free
      memory blocks minus one output buffer) until one pass remains, which
      is merged directly into the output sink.

    An input that fits in the arena never touches the temp device: it is
    sorted in memory and streamed straight to the output. *)

type run_formation =
  [ `Load_sort  (** fill the arena, sort it, write a run (the default) *)
  | `Replacement_selection
    (** heap-based run formation: runs average twice the arena size on
        random input, halving the run count and often saving a merge
        pass — the classic tape-era optimisation, ablated in
        [bench/main.exe ablate-runs] *)
  ]

type stats = {
  records : int;       (** number of records sorted *)
  bytes : int;         (** total payload bytes *)
  initial_runs : int;  (** runs written by the run-generation phase *)
  merge_passes : int;  (** full merge passes over the data (0 when the
                           input fit in memory or a single run sufficed) *)
}

type opened = {
  pull : unit -> string option;
      (** the sorted stream; pulling it to exhaustion releases the
          sort's remaining reservation *)
  close : unit -> unit;
      (** idempotent; releases whatever the sort still holds (call when
          abandoning the stream early) *)
  stats : stats;
      (** complete at open time: [merge_passes] includes the final,
          streaming merge *)
}
(** A sort whose final merge has been opened as a pull stream instead of
    drained into a sink — the pipeline-fusion entry point. *)

val sort_open :
  ?run_formation:run_formation ->
  ?arena:Extmem.Frame_arena.t ->
  budget:Extmem.Memory_budget.t ->
  temp:Extmem.Device.t ->
  cmp:(string -> string -> int) ->
  input:(unit -> string option) ->
  unit ->
  opened
(** [sort_open ~budget ~temp ~cmp ~input ()] drains [input], forms runs,
    runs every merge pass but the last, and returns the final merge as a
    pull stream — fusing the sort's output boundary into whatever
    consumes it (no materialised output run).

    Memory is held per phase as {!Extmem.Frame_arena.lease}s (on
    [arena] when given — it must wrap [budget] — else on a private
    arena over [budget]): run formation leases all currently-available
    blocks (at least 3 are required: 2-way merge fan-in plus an output
    buffer) and closes the lease when runs are cut; each intermediate
    merge pass leases its fan-in plus one output buffer; the final
    merge holds its fan-in lease until the stream is exhausted or
    closed.  When the input fits in the formation arena, the sorted
    records stay leased until the stream is done.  Run reader/writer
    block buffers are recycled through the arena's pool.

    Temp-device contents are garbage after the stream is drained and may
    be reused by subsequent sorts (each sort appends; pass a fresh or
    recycled device to reclaim space).

    @raise Extmem.Memory_budget.Exhausted when fewer than 3 blocks are
    free. *)

val sort :
  ?run_formation:run_formation ->
  ?arena:Extmem.Frame_arena.t ->
  budget:Extmem.Memory_budget.t ->
  temp:Extmem.Device.t ->
  cmp:(string -> string -> int) ->
  input:(unit -> string option) ->
  output:(string -> unit) ->
  unit ->
  stats
(** [sort ~budget ~temp ~cmp ~input ~output ()] is {!sort_open} drained
    into [output] (reserving one output-buffer block for the drain).
    Peak memory use equals the blocks available at entry, as before the
    streaming refactor.

    @raise Extmem.Memory_budget.Exhausted when fewer than 3 blocks are
    free. *)

val sorted_run_input : Extmem.Block_reader.t -> unit -> string option
(** Adapter: read framed records back from a run written by this module
    (or any {!Extmem.Block_writer.write_record} stream). *)
