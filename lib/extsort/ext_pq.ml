(* External-memory priority queue: in-memory insert heap under a leased
   byte budget, overflow spilled as sorted runs, delete-min as a lazy
   tournament over one leased block reader per open run. *)

type reader = {
  mutable head : string;
  pull : unit -> string option;
  buffer : bytes;
  run_id : Extmem.Run_store.id;
}

type stats = {
  inserts : int;
  deletes : int;
  spills : int;
  spilled_records : int;
  compactions : int;
  melds : int;
}

type t = {
  fa : Extmem.Frame_arena.t;
  cmp : string -> string -> int;
  bs : int;
  capacity : int; (* insert-tier byte capacity *)
  fan_in : int; (* max open run readers *)
  store : Extmem.Run_store.t;
  spans : Obs.Spans.t option;
  heap : string Heap.t;
  mutable heap_bytes : int;
  buffer_lease : Extmem.Frame_arena.lease;
  merge_lease : Extmem.Frame_arena.lease; (* one frame per open reader *)
  readers : reader Heap.t; (* tournament over run heads *)
  mutable live : int;
  mutable runs_consumed : int; (* records pulled out of run readers *)
  mutable foreign : bool; (* holds runs adopted from another store *)
  mutable destroyed : bool;
  mutable s_inserts : int;
  mutable s_deletes : int;
  mutable s_spills : int;
  mutable s_spilled : int;
  mutable s_compactions : int;
  mutable s_melds : int;
}

(* Same per-record arena overhead constant as External_sort. *)
let record_overhead = 16

let with_span t name f =
  match t.spans with None -> f () | Some s -> Obs.Spans.with_span s name f

let create ?arena ?buffer_blocks ?spans ~budget ~temp ~cmp () =
  let fa = match arena with Some a -> a | None -> Extmem.Frame_arena.create ~budget () in
  let bs = Extmem.Memory_budget.block_size budget in
  let blocks = Extmem.Memory_budget.available_blocks budget in
  if blocks < 4 then
    raise
      (Extmem.Memory_budget.Exhausted
         (Printf.sprintf "external pq needs >= 4 blocks, has %d" blocks));
  let buffer_blocks =
    let b = match buffer_blocks with Some b -> max 2 b | None -> max 2 (blocks / 2) in
    min b (blocks - 2)
  in
  let fan_in = blocks - buffer_blocks in
  let less a b = cmp a b < 0 in
  {
    fa;
    cmp;
    bs;
    capacity = (buffer_blocks - 1) * bs;
    fan_in;
    store = Extmem.Run_store.create temp;
    spans;
    heap = Heap.create ~less;
    heap_bytes = 0;
    buffer_lease = Extmem.Frame_arena.lease fa ~who:"ext pq insert tier" buffer_blocks;
    (* A 2-frame floor held for the queue's lifetime: a queue that can
       always open two readers can always compact, so sharing the budget
       with other holders cannot wedge the spill path. *)
    merge_lease = Extmem.Frame_arena.lease fa ~who:"ext pq merge fan-in" 2;
    readers = Heap.create ~less:(fun a b -> cmp a.head b.head < 0);
    live = 0;
    runs_consumed = 0;
    foreign = false;
    destroyed = false;
    s_inserts = 0;
    s_deletes = 0;
    s_spills = 0;
    s_spilled = 0;
    s_compactions = 0;
    s_melds = 0;
  }

let check_live t = if t.destroyed then invalid_arg "Ext_pq: queue destroyed"

let length t = t.live

let is_empty t = t.live = 0

let close_reader t r =
  Extmem.Frame_arena.give t.fa r.buffer;
  (* keep the 2-frame reader floor; shrink only above it *)
  if Extmem.Frame_arena.lease_blocks t.merge_lease > 2 then
    Extmem.Frame_arena.shrink t.merge_lease 1

(* Pop the tournament minimum; re-seat the reader on its next record or
   close it at end of run. *)
let pull_from_readers t =
  let r = Heap.pop t.readers in
  let v = r.head in
  t.runs_consumed <- t.runs_consumed + 1;
  (match r.pull () with
  | Some next ->
      r.head <- next;
      Heap.push t.readers r
  | None -> close_reader t r);
  v

(* Opening a reader needs one more leased frame.  When the budget cannot
   cover it (the queue's creation-time fan-in allowance was optimistic —
   other queues or components on the same budget have grown since),
   compacting the open readers down to one frees their frames first.
   Each compaction closes >= 2 readers and reopens 1, so the recursion
   strictly frees memory and bottoms out at a genuine exhaustion. *)
let rec open_reader t id =
  let spare = Extmem.Frame_arena.lease_blocks t.merge_lease - Heap.length t.readers in
  if spare <= 0 && not (Extmem.Frame_arena.try_grow t.merge_lease 1) then begin
    if Heap.length t.readers < 2 then
      raise
        (Extmem.Memory_budget.Exhausted "ext pq merge fan-in: no block for a run reader");
    compact t;
    open_reader t id
  end
  else begin
    let buffer = Extmem.Frame_arena.take t.fa t.bs in
    let pull =
      let br = Extmem.Run_store.open_run ~buffer t.store id in
      fun () -> Extmem.Block_reader.read_record br
    in
    match pull () with
    | Some head -> Heap.push t.readers { head; pull; buffer; run_id = id }
    | None ->
        Extmem.Frame_arena.give t.fa buffer;
        if Extmem.Frame_arena.lease_blocks t.merge_lease > 2 then
          Extmem.Frame_arena.shrink t.merge_lease 1
  end

(* Merge every open reader's remainder into one fresh run.  The writer
   buffer is the insert tier's slack block, free outside a spill write. *)
and compact t =
  with_span t "pq_compact" @@ fun () ->
  t.s_compactions <- t.s_compactions + 1;
  let buffer = Extmem.Frame_arena.take t.fa t.bs in
  let w = Extmem.Run_store.begin_run ~buffer t.store in
  while Heap.length t.readers > 0 do
    let r = Heap.pop t.readers in
    Extmem.Block_writer.write_record w r.head;
    (match r.pull () with
    | Some next ->
        r.head <- next;
        Heap.push t.readers r
    | None -> close_reader t r)
  done;
  let id = Extmem.Run_store.finish_run t.store w in
  Extmem.Frame_arena.give t.fa buffer;
  open_reader t id

let ensure_fan_in t = if Heap.length t.readers >= t.fan_in then compact t

let spill t =
  with_span t "pq_spill" @@ fun () ->
  t.s_spills <- t.s_spills + 1;
  let buffer = Extmem.Frame_arena.take t.fa t.bs in
  let w = Extmem.Run_store.begin_run ~buffer t.store in
  while Heap.length t.heap > 0 do
    (* heap drain order is sorted order *)
    let r = Heap.pop t.heap in
    t.s_spilled <- t.s_spilled + 1;
    Extmem.Block_writer.write_record w r
  done;
  t.heap_bytes <- 0;
  let id = Extmem.Run_store.finish_run t.store w in
  Extmem.Frame_arena.give t.fa buffer;
  ensure_fan_in t;
  open_reader t id

let add t r =
  let sz = String.length r + record_overhead in
  if t.heap_bytes + sz > t.capacity && Heap.length t.heap > 0 then spill t;
  Heap.push t.heap r;
  t.heap_bytes <- t.heap_bytes + sz;
  t.live <- t.live + 1

let insert t r =
  check_live t;
  t.s_inserts <- t.s_inserts + 1;
  add t r

(* Which tier holds the minimum: [`Heap], [`Runs], or [`Empty].  Ties go
   to the insert tier (equal records are indistinguishable). *)
let min_tier t =
  match (Heap.length t.heap > 0, Heap.length t.readers > 0) with
  | false, false -> `Empty
  | true, false -> `Heap
  | false, true -> `Runs
  | true, true ->
      if t.cmp (Heap.peek t.heap) (Heap.peek t.readers).head <= 0 then `Heap else `Runs

let peek_min t =
  check_live t;
  match min_tier t with
  | `Empty -> None
  | `Heap -> Some (Heap.peek t.heap)
  | `Runs -> Some (Heap.peek t.readers).head

let delete_min t =
  check_live t;
  match min_tier t with
  | `Empty -> None
  | `Heap ->
      let r = Heap.pop t.heap in
      t.heap_bytes <- t.heap_bytes - (String.length r + record_overhead);
      t.s_deletes <- t.s_deletes + 1;
      t.live <- t.live - 1;
      Some r
  | `Runs ->
      let r = pull_from_readers t in
      t.s_deletes <- t.s_deletes + 1;
      t.live <- t.live - 1;
      Some r

let destroy t =
  if not t.destroyed then begin
    t.destroyed <- true;
    while Heap.length t.readers > 0 do
      close_reader t (Heap.pop t.readers)
    done;
    Heap.clear t.heap;
    t.heap_bytes <- 0;
    t.live <- 0;
    Extmem.Frame_arena.close_lease t.merge_lease;
    Extmem.Frame_arena.close_lease t.buffer_lease
  end

(* Adopt one of [src]'s runs into [dst]'s store by reference. *)
let adopt dst src_store id =
  let id' = Extmem.Run_store.reserve dst.store in
  Extmem.Run_store.install dst.store id'
    ~dev:(Extmem.Run_store.device src_store)
    ~extent:(Extmem.Run_store.run_extent src_store id);
  ensure_fan_in dst;
  open_reader dst id';
  dst.foreign <- true

let meld t other =
  check_live t;
  check_live other;
  if t.bs <> other.bs then invalid_arg "Ext_pq.meld: block sizes differ";
  t.s_melds <- t.s_melds + 1;
  let moved = other.live in
  (* Runs: adopt by reference when the donor's runs are intact on its own
     store; otherwise compact its remainder into one run first (also the
     path that strips consumed prefixes and foreign indirections). *)
  if Heap.length other.readers > 0 then begin
    if other.runs_consumed = 0 && not other.foreign then begin
      let ids = ref [] in
      while Heap.length other.readers > 0 do
        let r = Heap.pop other.readers in
        ids := r.run_id :: !ids;
        close_reader other r
      done;
      List.iter (adopt t other.store) (List.rev !ids)
    end
    else begin
      compact other;
      let r = Heap.pop other.readers in
      close_reader other r;
      adopt t other.store r.run_id
    end
  end;
  (* In-memory tier: re-inserted through [t], may spill.  [add] counts
     each of these in [live]; the run records adopted by reference above
     bypassed it and are counted here. *)
  let mem_moved = Heap.length other.heap in
  while Heap.length other.heap > 0 do
    add t (Heap.pop other.heap)
  done;
  t.live <- t.live + (moved - mem_moved);
  other.heap_bytes <- 0;
  other.live <- 0;
  destroy other

let run_count t = Heap.length t.readers

let run_blocks t = Extmem.Run_store.total_run_blocks t.store

let stats t =
  {
    inserts = t.s_inserts;
    deletes = t.s_deletes;
    spills = t.s_spills;
    spilled_records = t.s_spilled;
    compactions = t.s_compactions;
    melds = t.s_melds;
  }
