(** External-memory priority queue on the extsort substrate.

    Wei & Yi's equivalence between priority queues and sorting in
    external memory says a sorter's machinery is already morally a PQ;
    this module makes that literal.  The insert tier is an in-memory
    heap byte-accounted under a {!Extmem.Frame_arena} lease; when it
    overflows, the heap is drained in sorted order into a fresh run in a
    private {!Extmem.Run_store}, and delete-min lazily merges the open
    runs through a tournament of block readers (one leased frame each,
    exactly the {!Multiway} discipline).  When the reader fan-in would
    exceed its block allowance, all open runs are compacted into one.

    Memory accounting: with [blocks] available in the budget at
    creation, [buffer_blocks] frames back the insert tier (one of them
    is slack for the run writer during spills and compactions, so the
    tier's byte capacity is [(buffer_blocks - 1) * block_size]) and the
    remaining [blocks - buffer_blocks] frames bound the reader fan-in.
    Two of the fan-in frames are held for the queue's lifetime: a queue
    that can always open two readers can always compact its runs down
    to one, so queues sharing a budget degrade to narrower merges
    instead of wedging each other's spill paths.  Both sides live in
    named leases, so exhaustion and leaks name the queue in the per-who
    ledger.

    [meld] adopts the other queue's runs by id into this queue's store
    via {!Extmem.Run_store.reserve}/[install] — run payloads stay on the
    donor's device and are never copied unless the donor had already
    consumed from its runs (then its remainder is compacted into one
    run first).  Both queues must use the same block size.

    Consumed run space is not reclaimed until {!destroy}; the store's
    device is scratch space sized to the queue's lifetime high-water
    mark, as with external sort temp. *)

type t

type stats = {
  inserts : int;          (** records ever inserted (meld moves excluded) *)
  deletes : int;          (** successful delete-mins *)
  spills : int;           (** insert-tier overflows written as runs *)
  spilled_records : int;  (** records across all spills *)
  compactions : int;      (** fan-in overflow merges (melds included) *)
  melds : int;            (** queues absorbed *)
}

val create :
  ?arena:Extmem.Frame_arena.t ->
  ?buffer_blocks:int ->
  ?spans:Obs.Spans.t ->
  budget:Extmem.Memory_budget.t ->
  temp:Extmem.Device.t ->
  cmp:(string -> string -> int) ->
  unit ->
  t
(** [create ~budget ~temp ~cmp ()] is an empty queue over records
    ordered by [cmp], spilling to [temp].  [buffer_blocks] sizes the
    insert tier (default: half the blocks available at creation,
    clamped so the reader side keeps at least 2); [spans] wraps spill
    and compaction phases in [pq_spill]/[pq_compact] spans.
    @raise Extmem.Memory_budget.Exhausted when fewer than 4 blocks are
    available. *)

val length : t -> int
(** Live records (inserted or melded in, not yet deleted). *)

val is_empty : t -> bool

val insert : t -> string -> unit
(** May spill (and then compact) when the insert tier overflows.
    @raise Extmem.Memory_budget.Exhausted when a spill cannot lease its
    reader frame even after compaction. *)

val peek_min : t -> string option
(** The minimum under [cmp] without removing it. *)

val delete_min : t -> string option
(** Remove and return the minimum; [None] on an empty queue.  Lazy: at
    most one record is pulled from one run reader. *)

val meld : t -> t -> unit
(** [meld t other] moves all of [other]'s records into [t] and destroys
    [other].  [other]'s in-memory tier is re-inserted through [t] (and
    may spill); its runs are adopted by reference as described above.
    @raise Invalid_argument when the block sizes differ. *)

val run_count : t -> int
(** Open (live) runs backing the queue right now. *)

val run_blocks : t -> int
(** Total blocks ever written to the queue's run store — the spill I/O
    footprint, including space consumed delete-mins have not
    reclaimed. *)

val stats : t -> stats

val destroy : t -> unit
(** Close every reader and lease; the queue's budget footprint returns
    to zero.  Idempotent; using the queue afterwards is a programming
    error. *)
