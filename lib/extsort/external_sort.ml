type stats = {
  records : int;
  bytes : int;
  initial_runs : int;
  merge_passes : int;
}

type run_formation =
  [ `Load_sort
  | `Replacement_selection
  ]

(* Per-record arena overhead: OCaml string header + container slot,
   approximated as two words.  The exact constant only shifts where runs
   are cut. *)
let record_overhead = 16

let sorted_run_input reader () = Extmem.Block_reader.read_record reader

(* Run-writer and run-reader block buffers come from the frame arena's
   pool; the covering reservation is the caller's lease (run formation,
   merge fan-in, ...), so pool traffic itself is not an accounting op. *)
let write_run fa store records =
  let buffer = Extmem.Frame_arena.take fa (Extmem.Device.block_size (Extmem.Run_store.device store)) in
  let w = Extmem.Run_store.begin_run ~buffer store in
  Extmem.Vec.iter (Extmem.Block_writer.write_record w) records;
  let id = Extmem.Run_store.finish_run store w in
  Extmem.Frame_arena.give fa buffer;
  id

(* ---- run formation: load, sort, store ---- *)

(* Returns [Ok run_ids] after spilling, or [Error sorted_records] when the
   whole input fit in the arena (no temp I/O at all). *)
let load_sort_runs ~fa ~arena_capacity ~store ~cmp ~input ~count =
  let arena = Extmem.Vec.create () in
  let arena_bytes = ref 0 in
  let run_ids = ref [] in
  let flush () =
    if not (Extmem.Vec.is_empty arena) then begin
      Extmem.Vec.sort cmp arena;
      run_ids := write_run fa store arena :: !run_ids;
      Extmem.Vec.clear arena;
      arena_bytes := 0
    end
  in
  let rec fill () =
    match input () with
    | None -> ()
    | Some r ->
        count r;
        let sz = String.length r + record_overhead in
        if !arena_bytes + sz > arena_capacity && not (Extmem.Vec.is_empty arena) then flush ();
        Extmem.Vec.push arena r;
        arena_bytes := !arena_bytes + sz;
        fill ()
  in
  fill ();
  if !run_ids = [] then begin
    Extmem.Vec.sort cmp arena;
    Error arena
  end
  else begin
    flush ();
    Ok (List.rev !run_ids)
  end

(* ---- run formation: replacement selection ----

   The classic heap-based scheme: pop the smallest record into the current
   run; an incoming record joins the current run's heap if it is not
   smaller than the last record written, otherwise it waits (still in
   memory) for the next run.  On random input runs come out about twice
   the arena size, halving the run count and often saving a merge pass. *)
let replacement_selection_runs ~fa ~arena_capacity ~store ~cmp ~input ~count =
  let less a b = cmp a b < 0 in
  let current = Heap.create ~less in
  let pending = Extmem.Vec.create () in
  let in_memory = ref 0 in
  let size_of r = String.length r + record_overhead in
  let exhausted = ref false in
  let read () =
    match input () with
    | None ->
        exhausted := true;
        None
    | Some r ->
        count r;
        Some r
  in
  (* prime the heap *)
  let rec prime () =
    if !in_memory < arena_capacity && not !exhausted then begin
      match read () with
      | Some r ->
          Heap.push current r;
          in_memory := !in_memory + size_of r;
          prime ()
      | None -> ()
    end
  in
  prime ();
  if !exhausted then Error current (* everything fits: drain the heap *)
  else begin
    let run_ids = ref [] in
    while Heap.length current > 0 do
      let buffer = Extmem.Frame_arena.take fa (Extmem.Device.block_size (Extmem.Run_store.device store)) in
      let w = Extmem.Run_store.begin_run ~buffer store in
      let rec produce () =
        if Heap.length current > 0 then begin
          let m = Heap.pop current in
          Extmem.Block_writer.write_record w m;
          in_memory := !in_memory - size_of m;
          (* refill while there is room *)
          let rec refill () =
            if !in_memory < arena_capacity && not !exhausted then begin
              match read () with
              | Some r ->
                  in_memory := !in_memory + size_of r;
                  if cmp r m >= 0 then Heap.push current r else Extmem.Vec.push pending r;
                  refill ()
              | None -> ()
            end
          in
          refill ();
          produce ()
        end
      in
      produce ();
      run_ids := Extmem.Run_store.finish_run store w :: !run_ids;
      Extmem.Frame_arena.give fa buffer;
      (* the pending records seed the next run *)
      Extmem.Vec.iter (Heap.push current) pending;
      Extmem.Vec.clear pending
    done;
    Ok (List.rev !run_ids)
  end

(* ---- merging ---- *)

let open_inputs fa store ids =
  let bs = Extmem.Device.block_size (Extmem.Run_store.device store) in
  Array.of_list
    (List.map
       (fun id ->
         let buffer = Extmem.Frame_arena.take fa bs in
         sorted_run_input (Extmem.Run_store.open_run ~buffer store id))
       ids)

let batches fan_in ids =
  let rec go = function
    | [] -> []
    | ids ->
        let rec take k acc = function
          | rest when k = 0 -> (List.rev acc, rest)
          | [] -> (List.rev acc, [])
          | id :: rest -> take (k - 1) (id :: acc) rest
        in
        let batch, rest = take fan_in [] ids in
        batch :: go rest
  in
  go ids

(* Merge until at most [fan_in] runs remain; those feed the final,
   streaming merge.  Each intermediate pass leases its own output
   buffer and (via Multiway) its fan-in from the arena, so memory is
   accounted per-phase instead of as one opaque blanket. *)
let intermediate_passes ~fa ~store ~fan_in ~cmp runs =
  let bs = Extmem.Device.block_size (Extmem.Run_store.device store) in
  let rec passes runs n =
    if List.length runs <= fan_in then (runs, n)
    else begin
      let next_runs =
        List.map
          (fun batch ->
            Extmem.Frame_arena.with_lease fa ~who:"external sort merge output buffer" 1
            @@ fun _ ->
            let buffer = Extmem.Frame_arena.take fa bs in
            let w = Extmem.Run_store.begin_run ~buffer store in
            Multiway.merge ~arena:fa ~who:"external sort merge" ~cmp
              ~inputs:(open_inputs fa store batch)
              ~output:(Extmem.Block_writer.write_record w) ();
            let id = Extmem.Run_store.finish_run store w in
            Extmem.Frame_arena.give fa buffer;
            id)
          (batches fan_in runs)
      in
      passes next_runs (n + 1)
    end
  in
  passes runs 0

(* ---- driver ---- *)

type opened = {
  pull : unit -> string option;
  close : unit -> unit;
  stats : stats;
}

let sort_open ?(run_formation = `Load_sort) ?arena ~budget ~temp ~cmp ~input () =
  let fa = match arena with Some a -> a | None -> Extmem.Frame_arena.create ~budget () in
  let bs = Extmem.Memory_budget.block_size budget in
  let blocks = Extmem.Memory_budget.available_blocks budget in
  if blocks < 3 then
    raise
      (Extmem.Memory_budget.Exhausted
         (Printf.sprintf "external sort needs >= 3 blocks, has %d" blocks));
  (* one block is the stream buffer of the run writer / output;
     the rest is the arena during run formation *)
  let arena_capacity = (blocks - 1) * bs in
  let store = Extmem.Run_store.create temp in
  let records = ref 0 in
  let total_bytes = ref 0 in
  let count r =
    incr records;
    total_bytes := !total_bytes + String.length r
  in
  let finish initial_runs merge_passes =
    { records = !records; bytes = !total_bytes; initial_runs; merge_passes }
  in
  let formation = Extmem.Frame_arena.lease fa ~who:"external sort run formation" blocks in
  let formed =
    try
      match run_formation with
      | `Load_sort -> (
          match load_sort_runs ~fa ~arena_capacity ~store ~cmp ~input ~count with
          | Error arena -> `Arena arena
          | Ok runs -> `Runs runs)
      | `Replacement_selection -> (
          match replacement_selection_runs ~fa ~arena_capacity ~store ~cmp ~input ~count with
          | Error heap -> `Heap heap
          | Ok runs -> `Runs runs)
    with e ->
      Extmem.Frame_arena.close_lease formation;
      raise e
  in
  match formed with
  | `Arena arena ->
      (* Everything fits: the sorted arena stays live until drained, so
         keep its [blocks - 1] leased (the output-buffer block is the
         caller's) and close on close / exhaustion. *)
      Extmem.Frame_arena.shrink formation 1;
      let release () = Extmem.Frame_arena.close_lease formation in
      let idx = ref 0 in
      let pull () =
        if !idx >= Extmem.Vec.length arena then begin
          release ();
          None
        end
        else begin
          let r = Extmem.Vec.get arena !idx in
          incr idx;
          Some r
        end
      in
      { pull; close = release; stats = finish 0 0 }
  | `Heap heap ->
      Extmem.Frame_arena.shrink formation 1;
      let release () = Extmem.Frame_arena.close_lease formation in
      let pull () =
        if Heap.length heap = 0 then begin
          release ();
          None
        end
        else Some (Heap.pop heap)
      in
      { pull; close = release; stats = finish 0 0 }
  | `Runs runs ->
      Extmem.Frame_arena.close_lease formation;
      let fan_in = blocks - 1 in
      let final_runs, inter = intermediate_passes ~fa ~store ~fan_in ~cmp runs in
      (* Lease the final fan-in first, then draw the readers' buffers
         from the arena pool it covers; the merge assumes ownership of
         the lease and closes it on exhaustion. *)
      let lease =
        Extmem.Frame_arena.lease fa ~who:"external sort final merge" (List.length final_runs)
      in
      let pull, close =
        Multiway.merge_pull ~lease ~cmp ~inputs:(open_inputs fa store final_runs) ()
      in
      { pull; close; stats = finish (List.length runs) (inter + 1) }

let sort ?run_formation ?arena ~budget ~temp ~cmp ~input ~output () =
  let fa = match arena with Some a -> a | None -> Extmem.Frame_arena.create ~budget () in
  let o = sort_open ?run_formation ~arena:fa ~budget ~temp ~cmp ~input () in
  Fun.protect ~finally:o.close (fun () ->
      Extmem.Frame_arena.with_lease fa ~who:"external sort output buffer" 1 @@ fun _ ->
      let rec go () =
        match o.pull () with
        | None -> ()
        | Some r ->
            output r;
            go ()
      in
      go ());
  o.stats
