let default_who k = Printf.sprintf "%d-way merge" k

(* The heap stores stream indices (unboxed); each stream's head record
   lives in [cur], so no (record, index) pair is allocated per step. *)
let make_heap ~cmp ~inputs =
  let k = Array.length inputs in
  let cur = Array.make k "" in
  let less i j =
    let c = cmp cur.(i) cur.(j) in
    if c <> 0 then c < 0 else i < j
  in
  let h = Heap.create ~less in
  Array.iteri
    (fun i next ->
      match next () with
      | Some r ->
          cur.(i) <- r;
          Heap.push h i
      | None -> ())
    inputs;
  (h, cur)

let merge ?arena ?who ~cmp ~inputs ~output () =
  let k = Array.length inputs in
  let who = match who with Some w -> w | None -> default_who k in
  let body () =
    let h, cur = make_heap ~cmp ~inputs in
    while not (Heap.is_empty h) do
      let i = Heap.pop h in
      output cur.(i);
      match inputs.(i) () with
      | Some r' ->
          cur.(i) <- r';
          Heap.push h i
      | None -> ()
    done
  in
  match arena with
  | None -> body ()
  | Some a -> Extmem.Frame_arena.with_lease a ~who k (fun _ -> body ())

let merge_list ?arena ?who ~cmp ~inputs ~output () =
  merge ?arena ?who ~cmp ~inputs:(Array.of_list inputs) ~output ()

let merge_pull ?arena ?lease ?who ~cmp ~inputs () =
  let k = Array.length inputs in
  let who = match who with Some w -> w | None -> default_who k in
  let lease =
    match (lease, arena) with
    | Some l, _ -> Some l
    | None, Some a -> Some (Extmem.Frame_arena.lease a ~who k)
    | None, None -> None
  in
  let release () =
    match lease with Some l -> Extmem.Frame_arena.close_lease l | None -> ()
  in
  let h, cur = make_heap ~cmp ~inputs in
  let pull () =
    if Heap.is_empty h then begin
      release ();
      None
    end
    else begin
      let i = Heap.pop h in
      let r = cur.(i) in
      (match inputs.(i) () with
      | Some r' ->
          cur.(i) <- r';
          Heap.push h i
      | None -> ());
      Some r
    end
  in
  (pull, release)
