let default_who k = Printf.sprintf "%d-way merge" k

let make_heap ~cmp ~inputs =
  let less (ra, ia) (rb, ib) =
    let c = cmp ra rb in
    if c <> 0 then c < 0 else ia < ib
  in
  let h = Heap.create ~less in
  Array.iteri
    (fun i next ->
      match next () with
      | Some r -> Heap.push h (r, i)
      | None -> ())
    inputs;
  h

let merge ?arena ?who ~cmp ~inputs ~output () =
  let k = Array.length inputs in
  let who = match who with Some w -> w | None -> default_who k in
  let body () =
    let h = make_heap ~cmp ~inputs in
    while not (Heap.is_empty h) do
      let r, i = Heap.pop h in
      output r;
      match inputs.(i) () with
      | Some r' -> Heap.push h (r', i)
      | None -> ()
    done
  in
  match arena with
  | None -> body ()
  | Some a -> Extmem.Frame_arena.with_lease a ~who k (fun _ -> body ())

let merge_list ?arena ?who ~cmp ~inputs ~output () =
  merge ?arena ?who ~cmp ~inputs:(Array.of_list inputs) ~output ()

let merge_pull ?arena ?lease ?who ~cmp ~inputs () =
  let k = Array.length inputs in
  let who = match who with Some w -> w | None -> default_who k in
  let lease =
    match (lease, arena) with
    | Some l, _ -> Some l
    | None, Some a -> Some (Extmem.Frame_arena.lease a ~who k)
    | None, None -> None
  in
  let release () =
    match lease with Some l -> Extmem.Frame_arena.close_lease l | None -> ()
  in
  let h = make_heap ~cmp ~inputs in
  let pull () =
    if Heap.is_empty h then begin
      release ();
      None
    end
    else begin
      let r, i = Heap.pop h in
      (match inputs.(i) () with
      | Some r' -> Heap.push h (r', i)
      | None -> ());
      Some r
    end
  in
  (pull, release)
