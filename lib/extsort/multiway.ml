let default_who k = Printf.sprintf "%d-way merge" k

let make_heap ~cmp ~inputs =
  let less (ra, ia) (rb, ib) =
    let c = cmp ra rb in
    if c <> 0 then c < 0 else ia < ib
  in
  let h = Heap.create ~less in
  Array.iteri
    (fun i next ->
      match next () with
      | Some r -> Heap.push h (r, i)
      | None -> ())
    inputs;
  h

let merge ?budget ?who ~cmp ~inputs ~output () =
  let k = Array.length inputs in
  let who = match who with Some w -> w | None -> default_who k in
  let body () =
    let h = make_heap ~cmp ~inputs in
    while not (Heap.is_empty h) do
      let r, i = Heap.pop h in
      output r;
      match inputs.(i) () with
      | Some r' -> Heap.push h (r', i)
      | None -> ()
    done
  in
  match budget with
  | None -> body ()
  | Some b -> Extmem.Memory_budget.with_reserved b ~who k body

let merge_list ?budget ?who ~cmp ~inputs ~output () =
  merge ?budget ?who ~cmp ~inputs:(Array.of_list inputs) ~output ()

let merge_pull ?budget ?who ~cmp ~inputs () =
  let k = Array.length inputs in
  let who = match who with Some w -> w | None -> default_who k in
  (match budget with Some b -> Extmem.Memory_budget.reserve b ~who k | None -> ());
  let released = ref false in
  let release () =
    if not !released then begin
      released := true;
      match budget with Some b -> Extmem.Memory_budget.release b k | None -> ()
    end
  in
  let h = make_heap ~cmp ~inputs in
  let pull () =
    if Heap.is_empty h then begin
      release ();
      None
    end
    else begin
      let r, i = Heap.pop h in
      (match inputs.(i) () with
      | Some r' -> Heap.push h (r', i)
      | None -> ());
      Some r
    end
  in
  (pull, release)
