(* Tests for the pull-based block-stream pipeline framework. *)

let check = Alcotest.check

let budget () = Extmem.Memory_budget.create ~blocks:4 ~block_size:16

let collect_sink acc = Pipe.fn_sink ~who:"collect" (fun x -> acc := x :: !acc)

let test_run_basic () =
  let b = budget () in
  let acc = ref [] in
  Pipe.run ~budget:b (Pipe.of_list ~who:"list" [ 1; 2; 3 ]) (collect_sink acc);
  check (Alcotest.list Alcotest.int) "all pushed" [ 1; 2; 3 ] (List.rev !acc);
  check Alcotest.int "nothing reserved afterwards" 0 (Extmem.Memory_budget.used_blocks b)

let test_transform_compose () =
  let b = budget () in
  let acc = ref [] in
  let src =
    Pipe.via
      (Pipe.via (Pipe.of_list ~who:"list" [ 1; 2; 3 ]) (Pipe.map ~who:"double" (fun x -> x * 2)))
      (Pipe.map ~who:"string" string_of_int)
  in
  check Alcotest.string "describe chains stage names" "list -> double -> string"
    (Pipe.describe src);
  Pipe.run ~budget:b src (collect_sink acc);
  check (Alcotest.list Alcotest.string) "transformed" [ "2"; "4"; "6" ] (List.rev !acc)

(* the source's memory is held from open to close, the sink's only
   around the drain *)
let test_reservation_protocol () =
  let b = budget () in
  let during_pull = ref (-1) in
  let src =
    Pipe.source ~mem:2 ~who:"reader" (fun () ->
        let remaining = ref 3 in
        let pull () =
          during_pull := Extmem.Memory_budget.used_blocks b;
          if !remaining = 0 then None
          else begin
            decr remaining;
            Some "x"
          end
        in
        (pull, ignore))
  in
  let snk = Pipe.sink ~mem:1 ~who:"writer" (fun () -> (ignore, ignore)) in
  Pipe.run ~budget:b src snk;
  check Alcotest.int "source 2 + sink 1 held during the drain" 3 !during_pull;
  check Alcotest.int "all released" 0 (Extmem.Memory_budget.used_blocks b)

let test_open_failure_releases () =
  let b = budget () in
  let src = Pipe.source ~mem:2 ~who:"boom" (fun () -> failwith "open failed") in
  (try
     ignore (Pipe.open_source ~budget:b src);
     Alcotest.fail "expected failure"
   with Failure _ -> ());
  check Alcotest.int "reservation rolled back" 0 (Extmem.Memory_budget.used_blocks b)

let test_exhaustion_names_stage () =
  let b = Extmem.Memory_budget.create ~blocks:1 ~block_size:16 in
  let src = Pipe.of_list ~who:"tiny" [ 1 ] in
  let snk = Pipe.sink ~mem:2 ~who:"greedy sink" (fun () -> (ignore, ignore)) in
  try
    Pipe.run ~budget:b src snk;
    Alcotest.fail "expected Exhausted"
  with Extmem.Memory_budget.Exhausted who ->
    let contains s sub =
      let n = String.length s and m = String.length sub in
      let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
      go 0
    in
    check Alcotest.bool
      (Printf.sprintf "who names the sink (%s)" who)
      true
      (contains who "greedy sink")

(* a failing drain still closes the sink (flushing buffered output) and
   re-raises the original exception *)
let test_sink_flushed_on_drain_failure () =
  let b = budget () in
  let flushed = ref false in
  let pushed = ref 0 in
  let src =
    Pipe.source ~who:"failing source" (fun () ->
        let n = ref 0 in
        let pull () =
          incr n;
          if !n > 2 then failwith "mid-stream failure" else Some !n
        in
        (pull, ignore))
  in
  let snk =
    Pipe.sink ~mem:1 ~who:"buffering sink" (fun () ->
        ((fun _ -> incr pushed), fun () -> flushed := true))
  in
  (try
     Pipe.run ~budget:b src snk;
     Alcotest.fail "expected failure"
   with Failure m -> check Alcotest.string "original exception wins" "mid-stream failure" m);
  check Alcotest.int "records before the fault arrived" 2 !pushed;
  check Alcotest.bool "sink close ran (buffered output flushed)" true !flushed;
  check Alcotest.int "all memory released" 0 (Extmem.Memory_budget.used_blocks b)

let test_source_closed_once () =
  let b = budget () in
  let closes = ref 0 in
  let src = Pipe.source ~mem:1 ~who:"counted" (fun () -> ((fun () -> None), fun () -> incr closes)) in
  let o = Pipe.open_source ~budget:b src in
  check Alcotest.int "mem held" 1 (Extmem.Memory_budget.used_blocks b);
  o.Pipe.close ();
  o.Pipe.close ();
  check Alcotest.int "closed once" 1 !closes;
  check Alcotest.int "released once" 0 (Extmem.Memory_budget.used_blocks b)

let test_of_run () =
  let dev = Extmem.Device.in_memory ~block_size:16 () in
  let store = Extmem.Run_store.create dev in
  let w = Extmem.Run_store.begin_run store in
  List.iter (Extmem.Block_writer.write_record w) [ "r1"; "r2" ];
  let id = Extmem.Run_store.finish_run store w in
  let b = budget () in
  let acc = ref [] in
  Pipe.run ~budget:b (Pipe.of_run store id) (collect_sink acc);
  check (Alcotest.list Alcotest.string) "run streamed" [ "r1"; "r2" ] (List.rev !acc);
  check Alcotest.int "read buffer released" 0 (Extmem.Memory_budget.used_blocks b)

let () =
  Alcotest.run "pipe"
    [
      ( "pipe",
        [
          Alcotest.test_case "run basic" `Quick test_run_basic;
          Alcotest.test_case "transform compose" `Quick test_transform_compose;
          Alcotest.test_case "reservation protocol" `Quick test_reservation_protocol;
          Alcotest.test_case "open failure releases" `Quick test_open_failure_releases;
          Alcotest.test_case "exhaustion names stage" `Quick test_exhaustion_names_stage;
          Alcotest.test_case "sink flushed on drain failure" `Quick
            test_sink_flushed_on_drain_failure;
          Alcotest.test_case "source closed once" `Quick test_source_closed_once;
          Alcotest.test_case "of_run" `Quick test_of_run;
        ] );
    ]
