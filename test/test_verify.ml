(* The verification harness itself: the oracle must agree with the tree
   strawman, the validator must accept real sorter output and reject
   deliberately broken documents, and the resource probes must come back
   clean after both successful and fault-aborted sorts. *)

let check = Alcotest.check
module Ordering = Nexsort.Ordering
module Validator = Verify.Validator
module Oracle = Verify.Oracle

let qcheck = QCheck_alcotest.to_alcotest

let pathological_doc ?(max_elements = 120) seed =
  fst (Xmlgen.Gen.to_string (Xmlgen.Gen.pathological ~seed ~max_elements))

(* ------------------------------------------------------------------ *)
(* Oracle *)

let test_oracle_basic () =
  let doc = {|<r><b id="2">x<d id="9"/><c id="1"/></b><a id="1"/>t</r>|} in
  check Alcotest.string "sorted by @id, text first, recursively"
    {|<r>t<a id="1"/><b id="2">x<c id="1"/><d id="9"/></b></r>|}
    (Oracle.sort_string (Ordering.by_attr "id") doc)

let test_oracle_stability () =
  (* equal keys keep document order; text nodes keep relative order *)
  let doc = {|<r><a id="1" n="first"/>t1<a id="1" n="second"/>t2</r>|} in
  check Alcotest.string "position breaks ties"
    {|<r>t1t2<a id="1" n="first"/><a id="1" n="second"/></r>|}
    (Oracle.sort_string (Ordering.by_attr "id") doc)

let test_oracle_depth_limit () =
  let doc = {|<r><b id="2"><d id="9"/><c id="1"/></b><a id="1"/></r>|} in
  check Alcotest.string "level-2 lists untouched under depth_limit 1"
    {|<r><a id="1"/><b id="2"><d id="9"/><c id="1"/></b></r>|}
    (Oracle.sort_string ~depth_limit:1 (Ordering.by_attr "id") doc)

let oracle_orderings =
  [
    ("@id", Ordering.by_attr "id");
    ("tag", Ordering.by_tag);
    ("text", Ordering.of_spec_string "text");
  ]

let prop_oracle_agrees_with_treesort =
  QCheck.Test.make ~name:"oracle and Tree_sort agree on pathological docs" ~count:60
    QCheck.(pair (int_bound 10_000) (int_bound (List.length oracle_orderings - 1)))
    (fun (seed, oi) ->
      let doc = pathological_doc seed in
      let _, ordering = List.nth oracle_orderings oi in
      String.equal (Oracle.sort_string ordering doc)
        (Baselines.Tree_sort.sort_string ordering doc))

let prop_oracle_output_validates =
  QCheck.Test.make ~name:"validator accepts every oracle output" ~count:60
    QCheck.(pair (int_bound 10_000) (int_bound (List.length oracle_orderings - 1)))
    (fun (seed, oi) ->
      let doc = pathological_doc seed in
      let _, ordering = List.nth oracle_orderings oi in
      match Validator.check ~ordering ~input:doc (Oracle.sort_string ordering doc) with
      | Ok () -> true
      | Error e -> QCheck.Test.fail_reportf "validator rejected oracle output: %s" e)

(* ------------------------------------------------------------------ *)
(* Validator *)

let test_validator_self_test () =
  match Validator.self_test () with
  | Ok () -> ()
  | Error e -> Alcotest.failf "self-test failed: %s" e

let test_validator_flags_missort () =
  let ordering = Ordering.by_attr "id" in
  let rep = Validator.of_string ~ordering {|<r><a id="2"/><a id="1"/></r>|} in
  (match rep.Validator.findings with
  | [ { Validator.path; _ } ] -> check Alcotest.string "finding at root" "r" path
  | fs -> Alcotest.failf "expected exactly one finding, got %d" (List.length fs));
  check Alcotest.int "elements counted" 3 rep.Validator.elements

(* plain substring search, no extra deps *)
let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let test_validator_digest_catches_edit () =
  let ordering = Ordering.by_attr "id" in
  let input = {|<r><a id="1">x</a></r>|} in
  match Validator.check ~ordering ~input {|<r><a id="1">y</a></r>|} with
  | Ok () -> Alcotest.fail "text edit accepted"
  | Error e -> check Alcotest.bool "blamed on the digest" true (contains ~sub:"digest" e)

let test_validator_rejects_malformed () =
  match Validator.check ~ordering:Ordering.by_tag ~input:"<r/>" "<r>" with
  | Ok () -> Alcotest.fail "malformed output accepted"
  | Error e -> check Alcotest.bool "parse error surfaced" true (contains ~sub:"malformed" e)

let test_validator_digest_ignores_text_coalescing () =
  (* the exact situation a sort produces: Null-keyed text moved to the
     front coalesces on re-parse; the digest must not change *)
  let input = {|<r>ab<a id="1"/>cd</r>|} in
  let sorted = {|<r>abcd<a id="1"/></r>|} in
  check Alcotest.bool "coalesced text, same digest" true
    (Int64.equal (Validator.digest_of_string input) (Validator.digest_of_string sorted));
  match Validator.check ~ordering:(Ordering.by_attr "id") ~input sorted with
  | Ok () -> ()
  | Error e -> Alcotest.failf "sorted document rejected: %s" e

(* ------------------------------------------------------------------ *)
(* End-to-end: nexsort output through validator + probes *)

let sorted_by_nexsort ~policy doc =
  let config =
    Nexsort.Config.make ~block_size:512 ~memory_blocks:16 ~pager_policy:policy ()
  in
  fst (Nexsort.Sorter.sort_string ~config ~ordering:(Ordering.by_attr "id") doc)

let test_nexsort_output_validates_all_policies () =
  Verify.Probes.install ();
  Verify.Probes.clear ();
  let doc = pathological_doc ~max_elements:200 4242 in
  List.iter
    (fun policy ->
      let out = sorted_by_nexsort ~policy doc in
      match Validator.check ~ordering:(Ordering.by_attr "id") ~input:doc out with
      | Ok () -> ()
      | Error e ->
          Alcotest.failf "policy %s: %s" (Extmem.Frame_arena.policy_to_string policy) e)
    [ Extmem.Frame_arena.Lru; Clock; Mru; Stack ];
  check (Alcotest.list Alcotest.string) "probes clean after 4 sorts" []
    (Verify.Probes.violations ())

let test_probes_clean_after_fault () =
  (* p=1.0: the very first internal write faults, the sort aborts, and
     teardown must still return every budget block *)
  Verify.Probes.install ();
  Verify.Probes.clear ();
  let doc = pathological_doc ~max_elements:250 99 in
  let config =
    Nexsort.Config.make ~block_size:512 ~memory_blocks:16
      ~device:(Extmem.Device_spec.parse "faulty:p=1.0,seed=7/mem") ()
  in
  (match Nexsort.Sorter.sort_string ~config ~ordering:(Ordering.by_attr "id") doc with
  | _ -> Alcotest.fail "sort on an always-faulting device succeeded"
  | exception Extmem.Backend.Fault _ -> ()
  | exception e -> Alcotest.failf "expected Device.Fault, got %s" (Printexc.to_string e));
  check (Alcotest.list Alcotest.string) "no leaks after abort" []
    (Verify.Probes.violations ())

let test_probes_clean_after_worker_fault () =
  (* the same abort with a worker pool attached: once the first subtree
     collapse is offloaded, the faulting write lands on a worker's
     private run device inside its domain; drain re-raises the fault on
     the main thread, and destroy must still tear the pool down to a
     quiescent arena and an empty budget *)
  Verify.Probes.install ();
  Verify.Probes.clear ();
  List.iter
    (fun seed ->
      let doc = pathological_doc ~max_elements:250 (100 + seed) in
      let config =
        Nexsort.Config.make ~block_size:512 ~memory_blocks:16 ~jobs:2
          ~device:
            (Extmem.Device_spec.parse (Printf.sprintf "faulty:p=1.0,seed=%d/mem" seed))
          ()
      in
      match Nexsort.Sorter.sort_string ~config ~ordering:(Ordering.by_attr "id") doc with
      | _ -> Alcotest.fail "sort on an always-faulting device succeeded"
      | exception Extmem.Backend.Fault _ -> ()
      | exception e -> Alcotest.failf "expected Device.Fault, got %s" (Printexc.to_string e))
    [ 1; 2; 3 ];
  check (Alcotest.list Alcotest.string) "no leaks after worker aborts" []
    (Verify.Probes.violations ())

let test_probe_sees_leak () =
  (* check_session must actually report a dirty session, otherwise the
     clean results above prove nothing *)
  let config = Nexsort.Config.make ~block_size:512 ~memory_blocks:16 () in
  let session = Nexsort.Session.create config in
  check Alcotest.bool "live session is flagged" true
    (Verify.Probes.check_session session <> []);
  Nexsort.Session.destroy session;
  check (Alcotest.list Alcotest.string) "destroyed session is clean" []
    (Verify.Probes.check_session session)

let () =
  Alcotest.run "verify"
    [
      ( "oracle",
        [
          Alcotest.test_case "basic" `Quick test_oracle_basic;
          Alcotest.test_case "stability" `Quick test_oracle_stability;
          Alcotest.test_case "depth limit" `Quick test_oracle_depth_limit;
          qcheck prop_oracle_agrees_with_treesort;
          qcheck prop_oracle_output_validates;
        ] );
      ( "validator",
        [
          Alcotest.test_case "self test" `Quick test_validator_self_test;
          Alcotest.test_case "flags mis-sort" `Quick test_validator_flags_missort;
          Alcotest.test_case "digest catches edit" `Quick test_validator_digest_catches_edit;
          Alcotest.test_case "rejects malformed" `Quick test_validator_rejects_malformed;
          Alcotest.test_case "text coalescing invariance" `Quick
            test_validator_digest_ignores_text_coalescing;
        ] );
      ( "probes",
        [
          Alcotest.test_case "nexsort output validates (all policies)" `Quick
            test_nexsort_output_validates_all_policies;
          Alcotest.test_case "clean after fault abort" `Quick test_probes_clean_after_fault;
          Alcotest.test_case "clean after worker fault abort" `Quick
            test_probes_clean_after_worker_fault;
          Alcotest.test_case "sees a leak" `Quick test_probe_sees_leak;
        ] );
    ]
