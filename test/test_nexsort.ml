(* Correctness tests for the NEXSORT core: key/ordering machinery, the
   algorithm itself against the internal-memory oracle, extensions
   (degeneration, depth limits, encodings, subtree-derived keys), and the
   key-path baseline. *)

let check = Alcotest.check

let qcheck = QCheck_alcotest.to_alcotest

module Key = Nexsort.Key
module Ordering = Nexsort.Ordering
module Config = Nexsort.Config

let tree_eq = Alcotest.testable Xmlio.Tree.pp Xmlio.Tree.equal

let parse = Xmlio.Tree.of_string

(* Small configs so even tiny documents exercise the external machinery. *)
let tiny_config ?depth_limit ?(degeneration = true) ?(encoding = Config.Dict)
    ?(memory_blocks = 8) ?(block_size = 128) ?threshold () =
  Config.make ~block_size ~memory_blocks ?threshold ?depth_limit ~degeneration ~encoding ()

let by_id = Ordering.by_attr "id"

(* ------------------------------------------------------------------ *)
(* Key *)

let test_key_of_string () =
  check Alcotest.bool "numeric" true (Key.of_string "42" = Key.Num 42.);
  check Alcotest.bool "negative" true (Key.of_string "-3.5" = Key.Num (-3.5));
  check Alcotest.bool "string" true (Key.of_string "abc" = Key.Str "abc");
  check Alcotest.bool "empty" true (Key.of_string "" = Key.Str "");
  check Alcotest.bool "mixed" true (Key.of_string "42x" = Key.Str "42x")

let test_key_compare () =
  let lt a b = Key.compare a b < 0 in
  check Alcotest.bool "null < num" true (lt Key.Null (Key.Num 0.));
  check Alcotest.bool "num < str" true (lt (Key.Num 1e9) (Key.Str "a"));
  check Alcotest.bool "numeric order" true (lt (Key.Num 90.) (Key.Num 1000.));
  check Alcotest.bool "string order" true (lt (Key.Str "abc") (Key.Str "abd"));
  check Alcotest.bool "equal" true (Key.compare (Key.Str "x") (Key.Str "x") = 0)

let test_key_roundtrip () =
  List.iter
    (fun k ->
      let b = Buffer.create 16 in
      Key.encode b k;
      let c = Extmem.Codec.cursor (Buffer.contents b) in
      check Alcotest.bool (Key.to_string k) true (Key.equal k (Key.decode c)))
    [ Key.Null; Key.Num 3.25; Key.Num (-1e42); Key.Str ""; Key.Str "hello" ];
  let b = Buffer.create 4 in
  Key.encode_opt b None;
  check Alcotest.bool "option none" true
    (Key.decode_opt (Extmem.Codec.cursor (Buffer.contents b)) = None)

(* ------------------------------------------------------------------ *)
(* Ordering *)

let test_ordering_key_of_tree () =
  let t = parse "<e id=\"7\" name=\"x\"><sub><deep>inner</deep></sub>direct</e>" in
  let e = match t with Xmlio.Tree.Element e -> e | _ -> assert false in
  check Alcotest.bool "by tag" true
    (Ordering.key_of_tree Ordering.by_tag e = Key.Str "e");
  check Alcotest.bool "by attr" true
    (Ordering.key_of_tree (Ordering.by_attr "id") e = Key.Num 7.);
  check Alcotest.bool "missing attr" true
    (Ordering.key_of_tree (Ordering.by_attr "zzz") e = Key.Null);
  check Alcotest.bool "by text" true
    (Ordering.key_of_tree (Ordering.make Ordering.By_text) e = Key.Str "direct");
  check Alcotest.bool "by path" true
    (Ordering.key_of_tree (Ordering.make (Ordering.By_path [ "sub"; "deep" ])) e
    = Key.Str "inner");
  check Alcotest.bool "path missing" true
    (Ordering.key_of_tree (Ordering.make (Ordering.By_path [ "nope" ])) e = Key.Null);
  check Alcotest.bool "doc order" true
    (Ordering.key_of_tree Ordering.document_order e = Key.Null)

(* streaming evaluator agrees with the tree oracle on every element *)
let evaluator_vs_oracle ordering xml =
  let tree = parse xml in
  let evaluator = Ordering.Evaluator.create ordering in
  let expected = ref [] in
  let rec collect = function
    | Xmlio.Tree.Text _ -> ()
    | Xmlio.Tree.Element e ->
        expected := Ordering.key_of_tree ordering e :: !expected;
        List.iter collect e.Xmlio.Tree.children
  in
  collect tree;
  let got = ref [] in
  let stack = ref [] in
  let rec walk = function
    | Xmlio.Tree.Text s -> Ordering.Evaluator.on_text evaluator s
    | Xmlio.Tree.Element e ->
        let at_start = Ordering.Evaluator.on_start evaluator e.Xmlio.Tree.name e.Xmlio.Tree.attrs in
        stack := at_start :: !stack;
        List.iter walk e.Xmlio.Tree.children;
        let at_end = Ordering.Evaluator.on_end evaluator in
        (match (!stack, at_end) with
        | Some k :: rest, None ->
            got := k :: !got;
            stack := rest
        | None :: rest, Some k ->
            got := k :: !got;
            stack := rest
        | _ -> Alcotest.fail "evaluator produced the key at the wrong moment")
  in
  walk tree;
  (* both lists were collected in different orders; compare as multisets of
     strings (keys may repeat) *)
  let canon l = List.sort compare (List.map Key.to_string l) in
  check (Alcotest.list Alcotest.string) ("evaluator keys for " ^ xml) (canon !expected) (canon !got)

let test_evaluator_scan () =
  evaluator_vs_oracle (Ordering.by_attr "id") "<r id=\"1\"><a id=\"3\"/><b id=\"2\"/></r>";
  evaluator_vs_oracle Ordering.by_tag "<r><b/><a><c/></a></r>"

let test_evaluator_by_text () =
  evaluator_vs_oracle (Ordering.make Ordering.By_text)
    "<r>root text<a>alpha<x>inner ignored</x></a><b>beta</b></r>"

let test_evaluator_by_path () =
  evaluator_vs_oracle
    (Ordering.make ~rules:[ ("employee", Ordering.By_path [ "personalInfo"; "name" ]) ]
       Ordering.By_tag)
    "<staff><employee><personalInfo><name>Zed</name></personalInfo></employee>\
     <employee><personalInfo><name>Amy</name><dept>X</dept></personalInfo></employee>\
     <employee><other/></employee></staff>";
  (* nested employees: each matches its own personalInfo only *)
  evaluator_vs_oracle
    (Ordering.make ~rules:[ ("e", Ordering.By_path [ "p" ]) ] Ordering.By_tag)
    "<r><e><p>outer</p><e><p>inner</p></e></e></r>"

let test_key_compound () =
  let lt a b = Key.compare a b < 0 in
  check Alcotest.bool "rev inverts" true (lt (Key.Rev (Key.Num 5.)) (Key.Rev (Key.Num 2.)));
  check Alcotest.bool "tuple lexicographic" true
    (lt (Key.Tuple [ Key.Str "a"; Key.Num 9. ]) (Key.Tuple [ Key.Str "b"; Key.Num 1. ]));
  check Alcotest.bool "tuple second component" true
    (lt (Key.Tuple [ Key.Str "a"; Key.Num 1. ]) (Key.Tuple [ Key.Str "a"; Key.Num 2. ]));
  check Alcotest.bool "tuple prefix first" true
    (lt (Key.Tuple [ Key.Str "a" ]) (Key.Tuple [ Key.Str "a"; Key.Null ]));
  (* round-trip the new constructors *)
  List.iter
    (fun k ->
      let b = Buffer.create 16 in
      Key.encode b k;
      check Alcotest.bool (Key.to_string k) true
        (Key.equal k (Key.decode (Extmem.Codec.cursor (Buffer.contents b)))))
    [ Key.Rev (Key.Str "x"); Key.Tuple [ Key.Null; Key.Num 2.; Key.Rev (Key.Str "y") ] ]

let test_ordering_composite_and_desc () =
  (* employees by (last name, first name); NF2-style compound ordering *)
  let ordering =
    Ordering.make
      ~rules:[ ("employee", Ordering.Composite [ Ordering.By_attr "last"; Ordering.By_attr "first" ]) ]
      Ordering.By_tag
  in
  let xml =
    "<staff><employee last=\"Yang\" first=\"Jun\"/><employee last=\"Silber\" first=\"Adam\"/>\
     <employee last=\"Silber\" first=\"Aaron\"/></staff>"
  in
  let sorted, _ = Nexsort.sort_string ~config:(tiny_config ()) ~ordering xml in
  check tree_eq "compound key"
    (parse
       "<staff><employee last=\"Silber\" first=\"Aaron\"/><employee last=\"Silber\" first=\"Adam\"/>\
        <employee last=\"Yang\" first=\"Jun\"/></staff>")
    (parse sorted);
  (* descending *)
  let desc = Ordering.make (Ordering.Desc (Ordering.By_attr "id")) in
  let sorted, _ =
    Nexsort.sort_string ~config:(tiny_config ()) ~ordering:desc
      "<r id=\"0\"><a id=\"1\"/><a id=\"3\"/><a id=\"2\"/></r>"
  in
  check tree_eq "descending"
    (parse "<r id=\"0\"><a id=\"3\"/><a id=\"2\"/><a id=\"1\"/></r>")
    (parse sorted)

let test_ordering_composite_subtree () =
  (* a compound key mixing a subtree criterion with an attribute *)
  let ordering =
    Ordering.make
      ~rules:[ ("e", Ordering.Composite [ Ordering.By_path [ "name" ]; Ordering.By_attr "n" ]) ]
      Ordering.By_tag
  in
  let xml =
    "<r><e n=\"2\"><name>b</name></e><e n=\"1\"><name>b</name></e><e n=\"9\"><name>a</name></e></r>"
  in
  let sorted, _ = Nexsort.sort_string ~config:(tiny_config ()) ~ordering xml in
  check tree_eq "mixed compound"
    (Baselines.Tree_sort.sort_tree ordering (parse xml))
    (parse sorted)

let test_ordering_spec_compound () =
  let o = Ordering.of_spec_string "employee=(@last;@first),-@id" in
  check Alcotest.bool "composite rule" true
    (Ordering.criterion_for o "employee"
    = Ordering.Composite [ Ordering.By_attr "last"; Ordering.By_attr "first" ]);
  check Alcotest.bool "desc default" true
    (Ordering.criterion_for o "other" = Ordering.Desc (Ordering.By_attr "id"));
  check Alcotest.bool "scan evaluable" true (Ordering.all_scan_evaluable o)

let test_ordering_spec_string () =
  let o = Ordering.of_spec_string "@id,region=@name,employee=personalInfo/name" in
  check Alcotest.bool "default" true (Ordering.criterion_for o "other" = Ordering.By_attr "id");
  check Alcotest.bool "rule" true (Ordering.criterion_for o "region" = Ordering.By_attr "name");
  check Alcotest.bool "path rule" true
    (Ordering.criterion_for o "employee" = Ordering.By_path [ "personalInfo"; "name" ]);
  check Alcotest.bool "scan evaluable" false (Ordering.all_scan_evaluable o);
  check Alcotest.bool "tag" true (Ordering.criterion_for (Ordering.of_spec_string "tag") "x" = Ordering.By_tag);
  Alcotest.check_raises "empty criterion"
    (Invalid_argument "Ordering.of_spec_string: empty criterion") (fun () ->
      ignore (Ordering.of_spec_string "a=,b"))

(* ------------------------------------------------------------------ *)
(* Entry encoding *)

let test_entry_roundtrip () =
  let entries =
    [
      Nexsort.Entry.Start
        { level = 3; pos = 17; name = "employee"; attrs = [ ("ID", "454"); ("x", "") ];
          key = Some (Key.Num 454.) };
      Nexsort.Entry.Start { level = 1; pos = 1; name = "company"; attrs = []; key = None };
      Nexsort.Entry.End { level = 3; pos = 17; key = Some (Key.Str "z") };
      Nexsort.Entry.Text { level = 4; pos = 18; content = "Smith & co <x>" };
      Nexsort.Entry.Run_ptr { level = 2; pos = 9; key = Key.Num 3.; run = 12; bytes = 4096 };
    ]
  in
  List.iter
    (fun enc ->
      let dict = Xmlio.Dict.create () in
      List.iter
        (fun e ->
          let s = Nexsort.Entry.encode enc dict e in
          let back = Nexsort.Entry.decode enc dict s in
          check Alcotest.bool (Format.asprintf "%a" Nexsort.Entry.pp e) true (back = e))
        entries)
    [ Config.Plain; Config.Dict; Config.Packed ]

(* dict coding must actually shrink repeated names *)
let test_entry_dict_smaller () =
  let dict = Xmlio.Dict.create () in
  let e =
    Nexsort.Entry.Start
      { level = 5; pos = 100; name = "averagelongelementname"; attrs = [ ("attribute", "v") ];
        key = Some Key.Null }
  in
  (* intern once so the comparison measures steady state *)
  ignore (Nexsort.Entry.encode Config.Dict dict e);
  let dict_len = String.length (Nexsort.Entry.encode Config.Dict dict e) in
  let plain_len = String.length (Nexsort.Entry.encode Config.Plain (Xmlio.Dict.create ()) e) in
  check Alcotest.bool "smaller" true (dict_len < plain_len)

(* ------------------------------------------------------------------ *)
(* Keypath records *)

let test_keypath_roundtrip () =
  let path =
    [ { Nexsort.Keypath.key = Key.Str "AC"; pos = 2 }; { Nexsort.Keypath.key = Key.Num 454.; pos = 5 } ]
  in
  let r = Nexsort.Keypath.encode_record path ~payload:"PAYLOAD" in
  check Alcotest.string "payload" "PAYLOAD" (Nexsort.Keypath.decode_payload r);
  check Alcotest.bool "path" true (Nexsort.Keypath.decode_path r = path)

let test_keypath_compare () =
  let r path = Nexsort.Keypath.encode_record path ~payload:"" in
  let c key pos = { Nexsort.Keypath.key; pos } in
  let a = r [ c (Key.Str "AC") 1 ] in
  let a_child = r [ c (Key.Str "AC") 1; c (Key.Num 3.) 9 ] in
  let b = r [ c (Key.Str "NE") 2 ] in
  check Alcotest.bool "parent before child" true (Nexsort.Keypath.compare_encoded a a_child < 0);
  check Alcotest.bool "sibling order" true (Nexsort.Keypath.compare_encoded a b < 0);
  check Alcotest.bool "child before later sibling" true
    (Nexsort.Keypath.compare_encoded a_child b < 0);
  let tie1 = r [ c Key.Null 4 ] and tie2 = r [ c Key.Null 5 ] in
  check Alcotest.bool "pos tiebreak" true (Nexsort.Keypath.compare_encoded tie1 tie2 < 0)

(* ------------------------------------------------------------------ *)
(* NEXSORT vs the internal-memory oracle *)

let nexsort_matches_oracle ?depth_limit ~config ~ordering xml =
  let sorted, report = Nexsort.sort_string ~config ~ordering xml in
  let expected = Baselines.Tree_sort.sort_tree ?depth_limit ordering (parse xml) in
  check tree_eq ("sorted " ^ xml) expected (parse sorted);
  report

let test_sort_trivial () =
  let r = nexsort_matches_oracle ~config:(tiny_config ()) ~ordering:by_id "<a id=\"1\"/>" in
  check Alcotest.int "one element" 1 r.Nexsort.elements

let test_sort_small_flat () =
  ignore
    (nexsort_matches_oracle ~config:(tiny_config ()) ~ordering:by_id
       "<r id=\"0\"><a id=\"3\"/><b id=\"1\"/><c id=\"2\"/></r>")

let test_sort_figure_1 () =
  let sorted, _ =
    Nexsort.sort_string ~config:(tiny_config ()) ~ordering:Xmlgen.Company.ordering
      Xmlgen.Company.figure_1_d1
  in
  (* Figure 1's sorted D1: regions AC < NE; branches Atlanta < Durham;
     employees 323 < 454 *)
  let expected =
    "<company>\
     <region name=\"AC\">\
     <branch name=\"Atlanta\"/>\
     <branch name=\"Durham\">\
     <employee ID=\"323\"><name>Smith</name><phone>5552345</phone></employee>\
     <employee ID=\"454\"/>\
     </branch>\
     </region>\
     <region name=\"NE\"/>\
     </company>"
  in
  check tree_eq "figure 1 sorted" (parse expected) (parse sorted)

let test_sort_deep_chain () =
  ignore
    (nexsort_matches_oracle ~config:(tiny_config ()) ~ordering:by_id
       "<a id=\"9\"><b id=\"8\"><c id=\"7\"><d id=\"6\"><e id=\"5\">leaf</e></d></c></b></a>")

let test_sort_duplicate_keys_stable () =
  (* equal keys keep document order via the position tiebreak *)
  let xml = "<r id=\"0\"><a id=\"1\" n=\"first\"/><a id=\"1\" n=\"second\"/><a id=\"0\"/></r>" in
  let sorted, _ = Nexsort.sort_string ~config:(tiny_config ()) ~ordering:by_id xml in
  check tree_eq "stable"
    (parse "<r id=\"0\"><a id=\"0\"/><a id=\"1\" n=\"first\"/><a id=\"1\" n=\"second\"/></r>")
    (parse sorted)

let test_sort_mixed_text_children () =
  (* text nodes have Null keys: they come first, in document order *)
  let xml = "<r id=\"0\">alpha<b id=\"2\"/>beta<a id=\"1\"/></r>" in
  let sorted, _ = Nexsort.sort_string ~config:(tiny_config ()) ~ordering:by_id xml in
  check tree_eq "text first, doc order"
    (parse "<r id=\"0\">alphabeta<a id=\"1\"/><b id=\"2\"/></r>")
    (parse sorted)

let gen_doc ?(height = 4) ?(max_fanout = 6) ?(max_elements = 400) seed =
  let s, _ = Xmlgen.Gen.to_string (fun sink ->
      Xmlgen.Gen.random_shape ~seed ~avg_bytes:40 ~max_elements ~height ~max_fanout sink)
  in
  s

let test_sort_generated_all_encodings () =
  let xml = gen_doc 1 in
  List.iter
    (fun encoding ->
      ignore (nexsort_matches_oracle ~config:(tiny_config ~encoding ()) ~ordering:by_id xml))
    [ Config.Plain; Config.Dict; Config.Packed ]

let test_sort_degeneration_off () =
  let xml = gen_doc 2 in
  ignore
    (nexsort_matches_oracle ~config:(tiny_config ~degeneration:false ()) ~ordering:by_id xml)

let test_sort_flat_wide () =
  (* 500 flat children, tiny memory: exercises degeneration fragments *)
  let children =
    String.concat ""
      (List.init 500 (fun i -> Printf.sprintf "<c id=\"%d\"/>" ((i * 7919) mod 500)))
  in
  let xml = "<r id=\"0\">" ^ children ^ "</r>" in
  let r = nexsort_matches_oracle ~config:(tiny_config ()) ~ordering:by_id xml in
  check Alcotest.bool "fragments were created" true (r.Nexsort.fragment_runs > 0);
  check Alcotest.bool "fragments were merged" true (r.Nexsort.fragment_merges > 0)

let test_sort_flat_wide_no_degen_external () =
  (* same input, degeneration off: the root subtree exceeds the arena and
     must go through the external key-path sort *)
  let children =
    String.concat ""
      (List.init 500 (fun i -> Printf.sprintf "<c id=\"%d\"/>" ((i * 337) mod 500)))
  in
  let xml = "<r id=\"0\">" ^ children ^ "</r>" in
  let r =
    nexsort_matches_oracle ~config:(tiny_config ~degeneration:false ()) ~ordering:by_id xml
  in
  check Alcotest.bool "external subtree sort used" true (r.Nexsort.external_sorts > 0)

let test_sort_subtree_keys () =
  (* subtree-derived keys force the reverse-scan external path *)
  let ordering =
    Ordering.make ~rules:[ ("employee", Ordering.By_path [ "personalInfo"; "name" ]) ]
      Ordering.By_tag
  in
  let employee i =
    Printf.sprintf "<employee><personalInfo><name>N%03d</name></personalInfo><pad>%s</pad></employee>"
      ((i * 733) mod 300)
      (String.make 20 'x')
  in
  let xml = "<staff>" ^ String.concat "" (List.init 300 employee) ^ "</staff>" in
  let r =
    nexsort_matches_oracle ~config:(tiny_config ~degeneration:false ()) ~ordering xml
  in
  check Alcotest.bool "reverse external sort used" true (r.Nexsort.external_sorts > 0)

let test_sort_by_text_ordering () =
  let xml = "<r><w>delta</w><w>alpha</w><w>charlie</w><w>bravo</w></r>" in
  let ordering = Ordering.make Ordering.By_text in
  let sorted, _ = Nexsort.sort_string ~config:(tiny_config ()) ~ordering xml in
  check tree_eq "by text"
    (parse "<r><w>alpha</w><w>bravo</w><w>charlie</w><w>delta</w></r>")
    (parse sorted)

let test_sort_depth_limited () =
  let xml = gen_doc ~height:5 3 in
  List.iter
    (fun d ->
      ignore
        (nexsort_matches_oracle ~depth_limit:d
           ~config:(tiny_config ~depth_limit:d ())
           ~ordering:by_id xml))
    [ 1; 2; 3 ]

let test_sort_idempotent () =
  let xml = gen_doc 4 in
  let config = tiny_config () in
  let once, _ = Nexsort.sort_string ~config ~ordering:by_id xml in
  let twice, _ = Nexsort.sort_string ~config ~ordering:by_id once in
  check tree_eq "idempotent" (parse once) (parse twice)

let test_sort_output_is_sorted_invariant () =
  let xml = gen_doc 5 in
  let sorted, _ = Nexsort.sort_string ~config:(tiny_config ()) ~ordering:by_id xml in
  check Alcotest.bool "invariant" true (Baselines.Tree_sort.sorted by_id (parse sorted))

let test_sort_packed_rejects_subtree_keys () =
  let ordering = Ordering.make Ordering.By_text in
  try
    ignore
      (Nexsort.sort_string ~config:(tiny_config ~encoding:Config.Packed ()) ~ordering "<a/>");
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_sort_malformed_input () =
  try
    ignore (Nexsort.sort_string ~config:(tiny_config ()) ~ordering:by_id "<a><b></a>");
    Alcotest.fail "expected parse error"
  with Xmlio.Parser.Error _ -> ()

let test_sort_fusion_off_same_output () =
  (* root fusion is a pure optimization: identical output, fewer I/Os *)
  let xml = gen_doc 21 in
  let with_fusion, rf =
    Nexsort.sort_string
      ~config:(Config.make ~block_size:128 ~memory_blocks:8 ~root_fusion:true ())
      ~ordering:by_id xml
  in
  let without_fusion, rn =
    Nexsort.sort_string
      ~config:(Config.make ~block_size:128 ~memory_blocks:8 ~root_fusion:false ())
      ~ordering:by_id xml
  in
  check Alcotest.string "same output" without_fusion with_fusion;
  check Alcotest.bool "fusion does not cost I/O" true
    (Extmem.Io_stats.total rf.Nexsort.total_io <= Extmem.Io_stats.total rn.Nexsort.total_io)

let prop_fusion_identical =
  (* fusion must be invisible in the output: for any generated document
     and memory geometry, the fused and unfused paths produce
     byte-identical sorted XML *)
  QCheck.Test.make ~name:"fused and unfused outputs are byte-identical" ~count:20
    QCheck.(pair (int_bound 1000) (int_range 8 16))
    (fun (seed, memory_blocks) ->
      let xml = gen_doc ~max_elements:200 seed in
      let mk root_fusion = Config.make ~block_size:128 ~memory_blocks ~root_fusion () in
      let fused, _ = Nexsort.sort_string ~config:(mk true) ~ordering:by_id xml in
      let unfused, _ = Nexsort.sort_string ~config:(mk false) ~ordering:by_id xml in
      String.equal fused unfused)

let test_fusion_saves_exactly_root_run_io () =
  (* a threshold larger than the document makes the root the only subtree
     sort — one big external sort.  Without fusion its result is
     materialised as the root run and read straight back during output;
     with fusion the final merge streams into the writer.  The saving is
     therefore exactly one write plus one read of every root-run block. *)
  let xml = gen_doc ~max_elements:300 33 in
  let mk root_fusion =
    Config.make ~block_size:128 ~memory_blocks:8 ~threshold:1_000_000 ~degeneration:false
      ~root_fusion ()
  in
  let fused, rf = Nexsort.sort_string ~config:(mk true) ~ordering:by_id xml in
  let unfused, rn = Nexsort.sort_string ~config:(mk false) ~ordering:by_id xml in
  check Alcotest.string "same output" unfused fused;
  check Alcotest.int "root is the only subtree sort" 1 rn.Nexsort.subtree_sorts;
  check Alcotest.int "and it ran externally" 1 rn.Nexsort.external_sorts;
  let root_run_blocks = rn.Nexsort.run_blocks - rf.Nexsort.run_blocks in
  check Alcotest.bool "root run materialised only without fusion" true (root_run_blocks > 0);
  check Alcotest.int "no run store blocks at all when fused" 0 rf.Nexsort.run_blocks;
  let runs_io (r : Nexsort.report) =
    Extmem.Io_stats.total (List.assoc "runs" r.Nexsort.breakdown)
  in
  check Alcotest.int "fusing saves exactly 2 x root-run blocks of run-store I/O"
    (2 * root_run_blocks)
    (runs_io rn - runs_io rf);
  check Alcotest.bool "and at least that much in total" true
    (Extmem.Io_stats.total rn.Nexsort.total_io - Extmem.Io_stats.total rf.Nexsort.total_io
     >= 2 * root_run_blocks)

let test_output_fault_leaves_whole_blocks () =
  (* a failing output phase must not leave a torn final block: whatever
     reached the device is whole blocks of the fault-free serialization *)
  let xml = gen_doc 23 in
  let config = tiny_config () in
  let bs = config.Config.block_size in
  let reference, _ = Nexsort.sort_string ~config ~ordering:by_id xml in
  check Alcotest.bool "document spans several blocks" true (String.length reference > 3 * bs);
  let input = Extmem.Device.of_string ~block_size:bs xml in
  let output = Extmem.Device.in_memory ~block_size:bs () in
  Extmem.Device.push_layer output
    (Extmem.Layer.fault_hook (fun op i -> op = Extmem.Backend.Write && i = 2));
  (try
     ignore (Nexsort.sort_device ~config ~ordering:by_id ~input ~output ());
     Alcotest.fail "expected Device.Fault"
   with Extmem.Device.Fault (Extmem.Device.Write, 2) -> ());
  (* blocks before the faulted one arrived intact *)
  let buf = Bytes.create bs in
  for i = 0 to 1 do
    Extmem.Device.read_block output i buf;
    check Alcotest.string
      (Printf.sprintf "block %d is a whole block of the reference output" i)
      (String.sub reference (i * bs) bs)
      (Bytes.to_string buf)
  done

let test_sort_input_fault_surfaces () =
  (* a failing device read must surface as Device.Fault, not corrupt output *)
  let xml = gen_doc 22 in
  let config = tiny_config () in
  let input = Extmem.Device.of_string ~block_size:config.Config.block_size xml in
  let output = Extmem.Device.in_memory ~block_size:config.Config.block_size () in
  let armed = ref true in
  Extmem.Device.push_layer input
    (Extmem.Layer.fault_hook (fun op i -> !armed && op = Extmem.Backend.Read && i = 2));
  (try
     ignore (Nexsort.sort_device ~config ~ordering:by_id ~input ~output ());
     Alcotest.fail "expected Device.Fault"
   with Extmem.Device.Fault (Extmem.Device.Read, 2) -> ());
  (* disarming the fault layer lets the same devices finish the job *)
  armed := false;
  let output2 = Extmem.Device.in_memory ~block_size:config.Config.block_size () in
  let r = Nexsort.sort_device ~config ~ordering:by_id ~input ~output:output2 () in
  check Alcotest.bool "recovered" true (r.Nexsort.elements > 0)

let test_sort_jobs_equivalence () =
  (* the worker pool must be invisible in the result: byte-identical
     output and an identical I/O bill for every worker count, with the
     per-worker report rows proving the parallel path actually ran *)
  let tasks_seen = ref 0 in
  List.iter
    (fun seed ->
      let xml = gen_doc ~height:5 ~max_elements:600 seed in
      let mk jobs = Config.make ~block_size:128 ~memory_blocks:8 ~jobs () in
      let ref_out, ref_rep = Nexsort.sort_string ~config:(mk 1) ~ordering:by_id xml in
      check Alcotest.int (Printf.sprintf "seed %d jobs 1 has no worker rows" seed) 0
        (List.length ref_rep.Nexsort.workers);
      List.iter
        (fun jobs ->
          let out, rep = Nexsort.sort_string ~config:(mk jobs) ~ordering:by_id xml in
          check Alcotest.string (Printf.sprintf "seed %d jobs %d bytes" seed jobs) ref_out out;
          check Alcotest.int
            (Printf.sprintf "seed %d jobs %d total io" seed jobs)
            (Extmem.Io_stats.total ref_rep.Nexsort.total_io)
            (Extmem.Io_stats.total rep.Nexsort.total_io);
          check Alcotest.int (Printf.sprintf "seed %d jobs %d worker rows" seed jobs) jobs
            (List.length rep.Nexsort.workers);
          List.iter
            (fun w -> tasks_seen := !tasks_seen + w.Nexsort.Sort_pool.w_tasks)
            rep.Nexsort.workers)
        [ 2; 4 ])
    [ 3; 17 ];
  check Alcotest.bool "some subtree sorts ran on workers" true (!tasks_seen > 0)

exception Boom

let test_aborted_external_sort_restores_budget () =
  (* an exception raised mid-external-sort — while the data-stack window
     may hold borrowed arena blocks — must leave the session's budget
     exactly as a completed sort would: every sort lease released and the
     window shed back to its configured size *)
  let config = Config.make ~block_size:256 ~memory_blocks:12 () in
  let session = Nexsort.Session.create config in
  let budget = session.Nexsort.Session.budget in
  let baseline = Extmem.Memory_budget.used_blocks budget in
  let run variant =
    let fed = ref 0 in
    let input () =
      incr fed;
      if !fed > 30 then raise Boom
      else begin
        (* push the data stack while the sort drains input, as the real
           scan does; if the budget has slack the window re-borrows *)
        Extmem.Ext_stack.push session.Nexsort.Session.data_stack (String.make 64 'x');
        Some
          (Nexsort.Session.view_entry session
             (Nexsort.Session.encode_entry session
                (Nexsort.Entry.Start
                   {
                     level = 2;
                     pos = !fed;
                     name = "e";
                     attrs = [];
                     key = Some (Key.Num (float_of_int !fed));
                   })))
      end
    in
    (try
       (match variant with
       | `Sink ->
           ignore
             (Nexsort.Subtree_sort.sort_external_to session ~input ~scan:`Forward ignore
               : Extsort.External_sort.stats)
       | `Source ->
           ignore
             (Nexsort.Subtree_sort.sort_external_source session ~input ~scan:`Forward
               : Nexsort.Subtree_sort.streamed));
       Alcotest.fail "expected Boom"
     with Boom -> ());
    check Alcotest.int "borrow shed after abort" 0
      (Extmem.Ext_stack.borrowed session.Nexsort.Session.data_stack);
    check Alcotest.int "budget restored after abort" baseline
      (Extmem.Memory_budget.used_blocks budget);
    (* drain what the aborted sort left on the data stack *)
    while not (Extmem.Ext_stack.is_empty session.Nexsort.Session.data_stack) do
      ignore (Extmem.Ext_stack.pop session.Nexsort.Session.data_stack)
    done
  in
  run `Sink;
  run `Source

let test_report_io_accounting () =
  let xml = gen_doc 6 in
  let config = tiny_config () in
  let input = Extmem.Device.of_string ~block_size:config.Config.block_size xml in
  let output = Extmem.Device.in_memory ~block_size:config.Config.block_size () in
  let r = Nexsort.sort_device ~config ~ordering:by_id ~input ~output () in
  let bs = config.Config.block_size in
  let in_blocks = (String.length xml + bs - 1) / bs in
  check Alcotest.int "input read exactly once" in_blocks r.Nexsort.input_io.Extmem.Io_stats.reads;
  check Alcotest.bool "output written" true (r.Nexsort.output_io.Extmem.Io_stats.writes > 0);
  check Alcotest.bool "breakdown sums below total" true
    (Extmem.Io_stats.total r.Nexsort.total_io
    >= Extmem.Io_stats.total r.Nexsort.input_io + Extmem.Io_stats.total r.Nexsort.output_io);
  check Alcotest.bool "run blocks recorded" true (r.Nexsort.run_blocks > 0)

let test_sort_file_backed_devices () =
  (* the whole pipeline against real files: input and output on disk *)
  let xml = gen_doc ~max_elements:300 31 in
  let in_path = Filename.temp_file "nexsort_in" ".xml" in
  let out_path = Filename.temp_file "nexsort_out" ".xml" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove in_path;
      Sys.remove out_path)
    (fun () ->
      let oc = open_out_bin in_path in
      output_string oc xml;
      close_out oc;
      let bs = 256 in
      let input = Extmem.Device.file ~block_size:bs ~path:(in_path ^ ".dev") () in
      (* load the file contents onto the device block by block *)
      let w = Extmem.Block_writer.create input in
      Extmem.Block_writer.write_string w xml;
      let e = Extmem.Block_writer.close w in
      Extmem.Device.set_byte_length input e.Extmem.Extent.bytes;
      Extmem.Io_stats.reset (Extmem.Device.stats input);
      let output = Extmem.Device.file ~block_size:bs ~path:out_path () in
      let config = Config.make ~block_size:bs ~memory_blocks:8 () in
      let r = Nexsort.sort_device ~config ~ordering:by_id ~input ~output () in
      check Alcotest.bool "sorted elements" true (r.Nexsort.elements > 100);
      let sorted = Extmem.Device.contents output in
      check tree_eq "file-backed result"
        (Baselines.Tree_sort.sort_tree by_id (parse xml))
        (parse sorted);
      Extmem.Device.close input;
      Extmem.Device.close output;
      Sys.remove (in_path ^ ".dev"))

let test_all_sorters_agree_on_company_docs () =
  (* the three sorters and XSort-on-root-path all agree where they should *)
  let pair = Xmlgen.Company.generate ~seed:77 ~regions:4 ~employees_per_branch:6 () in
  let doc = pair.Xmlgen.Company.personnel in
  let ordering = Xmlgen.Company.ordering in
  let config = tiny_config () in
  let nx, _ = Nexsort.sort_string ~config ~ordering doc in
  let kp, _ = Baselines.Keypath_sort.sort_string ~config ~ordering doc in
  let ts = Baselines.Tree_sort.sort_string ordering doc in
  check tree_eq "nexsort = treesort" (parse ts) (parse nx);
  check tree_eq "keypath = treesort" (parse ts) (parse kp);
  (* XSort over every element sorted one level at a time reaches the same
     fixpoint because every element is a target *)
  let all_tags = [ "company"; "region"; "branch"; "employee"; "name"; "phone" ] in
  let xs, _ = Baselines.Xsort.sort_string ~config ~ordering ~targets:all_tags doc in
  check tree_eq "xsort everywhere = full sort" (parse ts) (parse xs)

let test_sort_stress_combined_features () =
  (* packed encoding + degeneration + compound descending ordering +
     tiny memory, on a mid-size generated document *)
  let xml = gen_doc ~height:5 ~max_fanout:9 ~max_elements:1500 99 in
  let ordering =
    Ordering.make
      ~rules:[ ("n2", Ordering.Desc (Ordering.By_attr "id")) ]
      (Ordering.Composite [ Ordering.By_attr "id"; Ordering.By_tag ])
  in
  let config =
    Config.make ~block_size:128 ~memory_blocks:8 ~encoding:Config.Packed ~degeneration:true ()
  in
  let sorted, report = Nexsort.sort_string ~config ~ordering xml in
  check tree_eq "stress"
    (Baselines.Tree_sort.sort_tree ordering (parse xml))
    (parse sorted);
  check Alcotest.bool "did real work" true (report.Nexsort.subtree_sorts > 5)

(* ------------------------------------------------------------------ *)
(* The I/O lemmas of §4.2: per-component costs are linear in the input *)

let lemma_breakdown ~config xml =
  let input = Extmem.Device.of_string ~block_size:config.Config.block_size xml in
  let output = Extmem.Device.in_memory ~block_size:config.Config.block_size () in
  let r = Nexsort.sort_device ~config ~ordering:by_id ~input ~output () in
  let get name = Extmem.Io_stats.total (List.assoc name r.Nexsort.breakdown) in
  (r, get)

let test_lemma_stack_paging_linear () =
  (* Lemmas 4.10/4.11/4.13: data-, path- and output-location-stack paging
     are all O(N/B); measure them against the input block count *)
  let config =
    Config.make ~block_size:128 ~memory_blocks:8 ~degeneration:false ~root_fusion:false ()
  in
  let xml = gen_doc ~height:6 ~max_fanout:5 ~max_elements:2000 41 in
  let n_blocks = (String.length xml + 127) / 128 in
  let _, get = lemma_breakdown ~config xml in
  check Alcotest.bool
    (Printf.sprintf "data stack %d <= 4 * %d (Lemma 4.10)" (get "data stack") n_blocks)
    true
    (get "data stack" <= 4 * n_blocks);
  check Alcotest.bool
    (Printf.sprintf "path stack %d small (Lemma 4.11)" (get "path stack"))
    true
    (get "path stack" <= n_blocks);
  check Alcotest.bool
    (Printf.sprintf "output location stack %d small (Lemma 4.13)" (get "output location stack"))
    true
    (get "output location stack" <= n_blocks)

let test_lemma_run_blocks_linear () =
  (* Lemma 4.8: total sorted-run blocks are O(N/B); and Lemma 4.12: run
     reads during output are bounded by run blocks + number of runs *)
  let config = Config.make ~block_size:128 ~memory_blocks:8 ~root_fusion:false () in
  let xml = gen_doc ~height:5 ~max_fanout:6 ~max_elements:1500 43 in
  let n_blocks = (String.length xml + 127) / 128 in
  let r, get = lemma_breakdown ~config xml in
  check Alcotest.bool
    (Printf.sprintf "run blocks %d <= 4 * %d (Lemma 4.8)" r.Nexsort.run_blocks n_blocks)
    true
    (r.Nexsort.run_blocks <= 4 * n_blocks);
  check Alcotest.bool "run io bounded (Lemma 4.12)" true
    (get "runs" <= (3 * r.Nexsort.run_blocks) + (2 * r.Nexsort.runs_created))

let test_adversarial_shape () =
  (* the Lemma 4.1 worst case: the generator really produces the claimed
     shape (every element has 0 or k children, at most one exception) *)
  let xml, stats =
    Xmlgen.Gen.to_string (fun sink -> Xmlgen.Gen.adversarial ~k:5 ~n_elements:203 sink)
  in
  check Alcotest.int "element budget" 203 stats.Xmlgen.Gen.elements;
  let t = parse xml in
  let exceptions = ref 0 in
  let rec walk = function
    | Xmlio.Tree.Text _ -> ()
    | Xmlio.Tree.Element e ->
        let n = List.length e.Xmlio.Tree.children in
        if n <> 0 && n <> 5 then incr exceptions;
        List.iter walk e.Xmlio.Tree.children
  in
  walk t;
  check Alcotest.bool "at most one exceptional fan-out" true (!exceptions <= 1);
  check Alcotest.int "max fanout is k" 5 (Xmlio.Tree.max_fanout t)

let test_adversarial_sorts_correctly () =
  let xml, _ =
    Xmlgen.Gen.to_string (fun sink ->
        Xmlgen.Gen.adversarial ~k:8 ~n_elements:400 ~avg_bytes:60 sink)
  in
  ignore (nexsort_matches_oracle ~config:(tiny_config ()) ~ordering:by_id xml)

(* ------------------------------------------------------------------ *)
(* Key-path baseline *)

let keypath_matches_oracle ~config ~ordering xml =
  let sorted, report = Baselines.Keypath_sort.sort_string ~config ~ordering xml in
  let expected = Baselines.Tree_sort.sort_tree ordering (parse xml) in
  check tree_eq ("keypath sorted " ^ String.sub xml 0 (min 40 (String.length xml))) expected
    (parse sorted);
  report

let test_keypath_sort_small () =
  ignore
    (keypath_matches_oracle ~config:(tiny_config ()) ~ordering:by_id
       "<r id=\"0\"><a id=\"3\"/><b id=\"1\"><c id=\"9\"/><c id=\"2\"/></b></r>")

let test_keypath_sort_generated () =
  let xml = gen_doc 7 in
  let r = keypath_matches_oracle ~config:(tiny_config ()) ~ordering:by_id xml in
  check Alcotest.bool "records emitted" true (r.Baselines.Keypath_sort.records > 0)

let test_keypath_rejects_subtree_keys () =
  try
    ignore
      (Baselines.Keypath_sort.sort_string ~config:(tiny_config ())
         ~ordering:(Ordering.make Ordering.By_text) "<a/>");
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_keypath_table () =
  let rows =
    Baselines.Keypath_sort.keypath_table ~ordering:Xmlgen.Company.ordering
      Xmlgen.Company.figure_1_d1
  in
  (* Table 1 of the paper *)
  let paths = List.map fst rows in
  check (Alcotest.list Alcotest.string) "table 1 paths"
    [ "/"; "/NE"; "/AC"; "/AC/Durham"; "/AC/Durham/454"; "/AC/Durham/323";
      "/AC/Durham/323/name"; "/AC/Durham/323/phone"; "/AC/Atlanta" ]
    paths

(* ------------------------------------------------------------------ *)
(* XSort baseline (one-level sorting) *)

(* oracle: sort only the child lists of target elements *)
let xsort_oracle ordering targets tree =
  let counter = ref 0 in
  let rec go node =
    incr counter;
    let pos = !counter in
    match node with
    | Xmlio.Tree.Text _ -> (node, Key.Null, pos)
    | Xmlio.Tree.Element e ->
        let children = List.map go e.Xmlio.Tree.children in
        let children =
          if List.mem e.Xmlio.Tree.name targets then
            List.sort
              (fun (_, ka, pa) (_, kb, pb) ->
                let c = Key.compare ka kb in
                if c <> 0 then c else compare pa pb)
              children
          else children
        in
        ( Xmlio.Tree.Element { e with Xmlio.Tree.children = List.map (fun (n, _, _) -> n) children },
          Ordering.key_of_tree ordering e,
          pos )
  in
  let t, _, _ = go tree in
  t

let test_xsort_one_level () =
  let xml = "<r id=\"0\"><g id=\"9\"><c id=\"2\"/><c id=\"1\"/></g><g id=\"3\"><c id=\"5\"/><c id=\"4\"/></g></r>" in
  (* sort only the children of <g> elements: the <g>s themselves stay put *)
  let sorted, report =
    Baselines.Xsort.sort_string ~config:(tiny_config ()) ~ordering:by_id ~targets:[ "g" ] xml
  in
  check tree_eq "only g children sorted"
    (parse
       "<r id=\"0\"><g id=\"9\"><c id=\"1\"/><c id=\"2\"/></g><g id=\"3\"><c id=\"4\"/><c id=\"5\"/></g></r>")
    (parse sorted);
  check Alcotest.int "two targets" 2 report.Baselines.Xsort.targets_sorted;
  check Alcotest.int "four children" 4 report.Baselines.Xsort.children_sorted

let test_xsort_nested_targets () =
  let xml = "<g id=\"0\"><g id=\"2\"><x id=\"7\"/><x id=\"6\"/></g><g id=\"1\"><x id=\"5\"/></g></g>" in
  let sorted, _ =
    Baselines.Xsort.sort_string ~config:(tiny_config ()) ~ordering:by_id ~targets:[ "g" ] xml
  in
  check tree_eq "nested targets sorted"
    (parse "<g id=\"0\"><g id=\"1\"><x id=\"5\"/></g><g id=\"2\"><x id=\"6\"/><x id=\"7\"/></g></g>")
    (parse sorted)

let test_xsort_spills () =
  (* a wide target: the child records exceed the arena and go external *)
  let children =
    String.concat ""
      (List.init 600 (fun i -> Printf.sprintf "<c id=\"%d\"/>" ((i * 7919) mod 600)))
  in
  let xml = "<r id=\"0\">" ^ children ^ "</r>" in
  let sorted, report =
    Baselines.Xsort.sort_string ~config:(tiny_config ()) ~ordering:by_id ~targets:[ "r" ] xml
  in
  check Alcotest.bool "spilled" true (report.Baselines.Xsort.spilled_sorts > 0);
  check tree_eq "sorted anyway"
    (xsort_oracle by_id [ "r" ] (parse xml))
    (parse sorted)

let test_xsort_xpath_selector () =
  (* sort only Durham's employees, selected by path *)
  let xml =
    "<company><region name=\"AC\">\
     <branch name=\"Durham\"><e id=\"2\"/><e id=\"1\"/></branch>\
     <branch name=\"Atlanta\"><e id=\"9\"/><e id=\"8\"/></branch>\
     </region></company>"
  in
  let selector = Xmlio.Xpath.parse "//branch[@name='Durham']" in
  let sorted, report =
    Baselines.Xsort.sort_string ~config:(tiny_config ()) ~selector ~ordering:by_id ~targets:[]
      xml
  in
  check tree_eq "only Durham sorted"
    (parse
       "<company><region name=\"AC\">\
        <branch name=\"Durham\"><e id=\"1\"/><e id=\"2\"/></branch>\
        <branch name=\"Atlanta\"><e id=\"9\"/><e id=\"8\"/></branch>\
        </region></company>")
    (parse sorted);
  check Alcotest.int "one target" 1 report.Baselines.Xsort.targets_sorted;
  (* positional predicates are rejected for streaming selection *)
  try
    ignore
      (Baselines.Xsort.sort_string ~config:(tiny_config ())
         ~selector:(Xmlio.Xpath.parse "/company/region[1]") ~ordering:by_id ~targets:[] xml);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_xsort_errors () =
  (try
     ignore (Baselines.Xsort.sort_string ~ordering:by_id ~targets:[] "<a/>");
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ());
  try
    ignore
      (Baselines.Xsort.sort_string ~ordering:(Ordering.make Ordering.By_text) ~targets:[ "a" ]
         "<a/>");
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let arb_xsort_doc =
  QCheck.make ~print:(fun s -> s)
    QCheck.Gen.(map (fun seed -> gen_doc ~height:4 ~max_fanout:5 ~max_elements:150 seed)
      (int_bound 5000))

let prop_xsort_equals_oracle =
  QCheck.Test.make ~name:"XSort = one-level oracle on random documents" ~count:60 arb_xsort_doc
    (fun xml ->
      let sorted, _ =
        Baselines.Xsort.sort_string ~config:(tiny_config ()) ~ordering:by_id
          ~targets:[ "n2"; "n3" ] xml
      in
      Xmlio.Tree.equal (xsort_oracle by_id [ "n2"; "n3" ] (parse xml)) (parse sorted))

let prop_xsort_does_less_than_nexsort =
  (* XSort's output sorted at the target level only; NEXSORT's everywhere *)
  QCheck.Test.make ~name:"XSort output need not be fully sorted" ~count:30 arb_xsort_doc
    (fun xml ->
      let xs, _ =
        Baselines.Xsort.sort_string ~config:(tiny_config ()) ~ordering:by_id ~targets:[ "n1" ] xml
      in
      let nx, _ = Nexsort.sort_string ~config:(tiny_config ()) ~ordering:by_id xml in
      (* NEXSORT's output always satisfies the invariant; XSort's only has
         to when the document happens to be shallow *)
      Baselines.Tree_sort.sorted by_id (parse nx)
      &&
      (* and XSort preserves the document everywhere else: same multiset of
         elements *)
      Xmlio.Tree.element_count (parse xs) = Xmlio.Tree.element_count (parse xml))

(* ------------------------------------------------------------------ *)
(* Tree_sort oracle self-checks *)

let test_tree_sort_sorted_check () =
  let unsorted = parse "<r id=\"0\"><b id=\"2\"/><a id=\"1\"/></r>" in
  check Alcotest.bool "detects unsorted" false (Baselines.Tree_sort.sorted by_id unsorted);
  check Alcotest.bool "accepts sorted" true
    (Baselines.Tree_sort.sorted by_id (Baselines.Tree_sort.sort_tree by_id unsorted))

let test_tree_sort_depth_limit () =
  let t = parse "<r id=\"0\"><b id=\"2\"><y id=\"9\"/><x id=\"1\"/></b><a id=\"1\"/></r>" in
  let d1 = Baselines.Tree_sort.sort_tree ~depth_limit:1 by_id t in
  check tree_eq "depth 1 sorts only root children"
    (parse "<r id=\"0\"><a id=\"1\"/><b id=\"2\"><y id=\"9\"/><x id=\"1\"/></b></r>")
    d1

(* ------------------------------------------------------------------ *)
(* Properties: random documents, geometries and algorithms agree *)

let arb_config =
  QCheck.make
    ~print:(fun c -> Format.asprintf "%a" Config.pp c)
    QCheck.Gen.(
      let* block_size = oneofl [ 64; 128; 256 ] in
      let* memory_blocks = int_range 8 16 in
      let* threshold_mult = oneofl [ 1; 2; 4 ] in
      let* degeneration = bool in
      let* root_fusion = bool in
      let* encoding = oneofl [ Config.Plain; Config.Dict; Config.Packed ] in
      return
        (Config.make ~block_size ~memory_blocks ~threshold:(threshold_mult * block_size)
           ~degeneration ~root_fusion ~encoding ()))

let arb_doc =
  QCheck.make
    ~print:(fun s -> s)
    QCheck.Gen.(
      let* seed = int_bound 10_000 in
      let* height = int_range 2 5 in
      let* max_fanout = int_range 1 8 in
      let* max_elements = int_range 5 300 in
      return (gen_doc ~height ~max_fanout ~max_elements seed))

let prop_nexsort_equals_oracle =
  QCheck.Test.make ~name:"NEXSORT = oracle on random documents and configs" ~count:120
    (QCheck.pair arb_doc arb_config)
    (fun (xml, config) ->
      let sorted, _ = Nexsort.sort_string ~config ~ordering:by_id xml in
      let expected = Baselines.Tree_sort.sort_tree by_id (parse xml) in
      Xmlio.Tree.equal expected (parse sorted))

let prop_keypath_equals_oracle =
  QCheck.Test.make ~name:"key-path sort = oracle on random documents and configs" ~count:60
    (QCheck.pair arb_doc arb_config)
    (fun (xml, config) ->
      let sorted, _ = Baselines.Keypath_sort.sort_string ~config ~ordering:by_id xml in
      let expected = Baselines.Tree_sort.sort_tree by_id (parse xml) in
      Xmlio.Tree.equal expected (parse sorted))

let prop_structure_preserved =
  (* sorting permutes sibling lists only: the multiset of (parent tag,
     child tag/text) edges is invariant *)
  QCheck.Test.make ~name:"NEXSORT preserves parent-child structure" ~count:60 arb_doc (fun xml ->
      let edges t =
        let acc = ref [] in
        let rec go parent = function
          | Xmlio.Tree.Text s -> acc := (parent, "text:" ^ s) :: !acc
          | Xmlio.Tree.Element e ->
              acc := (parent, "elem:" ^ e.Xmlio.Tree.name ^ String.concat ";" (List.map snd e.Xmlio.Tree.attrs)) :: !acc;
              List.iter (go e.Xmlio.Tree.name) e.Xmlio.Tree.children
        in
        go "" t;
        List.sort compare !acc
      in
      let sorted, _ = Nexsort.sort_string ~config:(tiny_config ()) ~ordering:by_id xml in
      edges (parse xml) = edges (parse sorted))

let prop_subtree_ordering_equals_oracle =
  QCheck.Test.make ~name:"NEXSORT with subtree-derived keys = oracle" ~count:40 arb_doc
    (fun xml ->
      let ordering = Ordering.make ~rules:[ ("n3", Ordering.By_text) ] (Ordering.By_attr "id") in
      let sorted, _ = Nexsort.sort_string ~config:(tiny_config ()) ~ordering xml in
      Xmlio.Tree.equal (Baselines.Tree_sort.sort_tree ordering (parse xml)) (parse sorted))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "nexsort"
    [
      ( "key",
        [
          Alcotest.test_case "of_string" `Quick test_key_of_string;
          Alcotest.test_case "compare" `Quick test_key_compare;
          Alcotest.test_case "roundtrip" `Quick test_key_roundtrip;
        ] );
      ( "ordering",
        [
          Alcotest.test_case "key_of_tree" `Quick test_ordering_key_of_tree;
          Alcotest.test_case "evaluator scan" `Quick test_evaluator_scan;
          Alcotest.test_case "evaluator by_text" `Quick test_evaluator_by_text;
          Alcotest.test_case "evaluator by_path" `Quick test_evaluator_by_path;
          Alcotest.test_case "compound keys" `Quick test_key_compound;
          Alcotest.test_case "composite and desc" `Quick test_ordering_composite_and_desc;
          Alcotest.test_case "composite with subtree part" `Quick test_ordering_composite_subtree;
          Alcotest.test_case "compound spec strings" `Quick test_ordering_spec_compound;
          Alcotest.test_case "spec strings" `Quick test_ordering_spec_string;
        ] );
      ( "entry",
        [
          Alcotest.test_case "roundtrip" `Quick test_entry_roundtrip;
          Alcotest.test_case "dict compaction shrinks" `Quick test_entry_dict_smaller;
        ] );
      ( "keypath",
        [
          Alcotest.test_case "roundtrip" `Quick test_keypath_roundtrip;
          Alcotest.test_case "compare" `Quick test_keypath_compare;
        ] );
      ( "nexsort",
        [
          Alcotest.test_case "trivial" `Quick test_sort_trivial;
          Alcotest.test_case "small flat" `Quick test_sort_small_flat;
          Alcotest.test_case "figure 1" `Quick test_sort_figure_1;
          Alcotest.test_case "deep chain" `Quick test_sort_deep_chain;
          Alcotest.test_case "duplicate keys stable" `Quick test_sort_duplicate_keys_stable;
          Alcotest.test_case "mixed text children" `Quick test_sort_mixed_text_children;
          Alcotest.test_case "generated, all encodings" `Quick test_sort_generated_all_encodings;
          Alcotest.test_case "degeneration off" `Quick test_sort_degeneration_off;
          Alcotest.test_case "flat wide (fragments)" `Quick test_sort_flat_wide;
          Alcotest.test_case "flat wide external" `Quick test_sort_flat_wide_no_degen_external;
          Alcotest.test_case "subtree-derived keys" `Quick test_sort_subtree_keys;
          Alcotest.test_case "by_text ordering" `Quick test_sort_by_text_ordering;
          Alcotest.test_case "depth limited" `Quick test_sort_depth_limited;
          Alcotest.test_case "idempotent" `Quick test_sort_idempotent;
          Alcotest.test_case "sortedness invariant" `Quick test_sort_output_is_sorted_invariant;
          Alcotest.test_case "packed rejects subtree keys" `Quick test_sort_packed_rejects_subtree_keys;
          Alcotest.test_case "malformed input" `Quick test_sort_malformed_input;
          Alcotest.test_case "fusion off same output" `Quick test_sort_fusion_off_same_output;
          qcheck prop_fusion_identical;
          Alcotest.test_case "fusion saves exactly the root-run I/O" `Quick
            test_fusion_saves_exactly_root_run_io;
          Alcotest.test_case "output fault leaves whole blocks" `Quick
            test_output_fault_leaves_whole_blocks;
          Alcotest.test_case "input fault surfaces" `Quick test_sort_input_fault_surfaces;
          Alcotest.test_case "jobs equivalence" `Quick test_sort_jobs_equivalence;
          Alcotest.test_case "aborted external sort restores budget" `Quick
            test_aborted_external_sort_restores_budget;
          Alcotest.test_case "io accounting" `Quick test_report_io_accounting;
          Alcotest.test_case "file-backed devices" `Quick test_sort_file_backed_devices;
          Alcotest.test_case "all sorters agree" `Quick test_all_sorters_agree_on_company_docs;
          Alcotest.test_case "stress combined features" `Quick test_sort_stress_combined_features;
        ] );
      ( "lemmas",
        [
          Alcotest.test_case "stack paging linear" `Quick test_lemma_stack_paging_linear;
          Alcotest.test_case "run blocks linear" `Quick test_lemma_run_blocks_linear;
          Alcotest.test_case "adversarial shape" `Quick test_adversarial_shape;
          Alcotest.test_case "adversarial sorts" `Quick test_adversarial_sorts_correctly;
        ] );
      ( "keypath_sort",
        [
          Alcotest.test_case "small" `Quick test_keypath_sort_small;
          Alcotest.test_case "generated" `Quick test_keypath_sort_generated;
          Alcotest.test_case "rejects subtree keys" `Quick test_keypath_rejects_subtree_keys;
          Alcotest.test_case "table 1" `Quick test_keypath_table;
        ] );
      ( "xsort",
        [
          Alcotest.test_case "one level" `Quick test_xsort_one_level;
          Alcotest.test_case "nested targets" `Quick test_xsort_nested_targets;
          Alcotest.test_case "spills" `Quick test_xsort_spills;
          Alcotest.test_case "xpath selector" `Quick test_xsort_xpath_selector;
          Alcotest.test_case "errors" `Quick test_xsort_errors;
          qcheck prop_xsort_equals_oracle;
          qcheck prop_xsort_does_less_than_nexsort;
        ] );
      ( "tree_sort",
        [
          Alcotest.test_case "sorted check" `Quick test_tree_sort_sorted_check;
          Alcotest.test_case "depth limit" `Quick test_tree_sort_depth_limit;
        ] );
      ( "properties",
        [
          qcheck prop_nexsort_equals_oracle;
          qcheck prop_keypath_equals_oracle;
          qcheck prop_structure_preserved;
          qcheck prop_subtree_ordering_equals_oracle;
        ] );
    ]
