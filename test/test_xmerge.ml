(* Tests for structural merge and batch updates, plus the workload
   generators. *)

let check = Alcotest.check

let qcheck = QCheck_alcotest.to_alcotest

module Key = Nexsort.Key
module Ordering = Nexsort.Ordering

let tree_eq = Alcotest.testable Xmlio.Tree.pp Xmlio.Tree.equal

let parse = Xmlio.Tree.of_string

let by_id = Ordering.by_attr "id"

let config = Nexsort.Config.make ~block_size:128 ~memory_blocks:8 ()

(* ------------------------------------------------------------------ *)
(* Reference merge on in-memory trees (the oracle for Struct_merge) *)

let key_of ordering (e : Xmlio.Tree.element) = Ordering.key_of_tree ordering e

let rec ref_merge ordering (a : Xmlio.Tree.element) (b : Xmlio.Tree.element) : Xmlio.Tree.element =
  let attrs =
    a.Xmlio.Tree.attrs
    @ List.filter (fun (k, _) -> not (List.mem_assoc k a.Xmlio.Tree.attrs)) b.Xmlio.Tree.attrs
  in
  let texts l =
    List.filter_map (function Xmlio.Tree.Text t -> Some t | _ -> None) l
  in
  let elems l =
    List.filter_map (function Xmlio.Tree.Element e -> Some e | _ -> None) l
  in
  let ta = texts a.Xmlio.Tree.children and tb = texts b.Xmlio.Tree.children in
  let text_children = if ta = tb then ta else ta @ tb in
  let cmp x y =
    let c = Key.compare (key_of ordering x) (key_of ordering y) in
    if c <> 0 then c else String.compare x.Xmlio.Tree.name y.Xmlio.Tree.name
  in
  let rec walk xs ys =
    match (xs, ys) with
    | [], rest | rest, [] -> rest
    | x :: xs', y :: ys' ->
        let c = cmp x y in
        if c < 0 then x :: walk xs' ys
        else if c > 0 then y :: walk xs ys'
        else ref_merge ordering x y :: walk xs' ys'
  in
  let merged = walk (elems a.Xmlio.Tree.children) (elems b.Xmlio.Tree.children) in
  {
    a with
    Xmlio.Tree.attrs = attrs;
    Xmlio.Tree.children =
      List.map (fun t -> Xmlio.Tree.Text t) text_children
      @ List.map (fun e -> Xmlio.Tree.Element e) merged;
  }

let ref_merge_strings ordering l r =
  let el = match parse l with Xmlio.Tree.Element e -> e | _ -> assert false in
  let er = match parse r with Xmlio.Tree.Element e -> e | _ -> assert false in
  Xmlio.Tree.Element (ref_merge ordering el er)

(* ------------------------------------------------------------------ *)
(* Struct_merge *)

let test_sort_and_merge_fused_matches_unfused () =
  (* fusion is a pure optimization: the merged document is identical
     whether the sorted inputs are materialised or streamed *)
  let pair = Xmlgen.Company.generate ~seed:9 ~regions:3 ~employees_per_branch:5 () in
  let l = pair.Xmlgen.Company.personnel and r = pair.Xmlgen.Company.payroll in
  let ordering = Xmlgen.Company.ordering in
  let fused, _ = Xmerge.Struct_merge.sort_and_merge_strings ~config ~fuse:true ~ordering l r in
  let unfused, _ = Xmerge.Struct_merge.sort_and_merge_strings ~config ~fuse:false ~ordering l r in
  Alcotest.check Alcotest.string "same merged document" unfused fused

let test_sort_and_merge_devices_fused_saves_io () =
  let pair = Xmlgen.Company.generate ~seed:10 ~regions:3 ~employees_per_branch:5 () in
  let ordering = Xmlgen.Company.ordering in
  let bs = config.Nexsort.Config.block_size in
  let run fuse =
    let load name s =
      let d = Extmem.Device.in_memory ~name ~block_size:bs () in
      Extmem.Device.load_string d s;
      d
    in
    let left = load "left" pair.Xmlgen.Company.personnel in
    let right = load "right" pair.Xmlgen.Company.payroll in
    let output = Extmem.Device.in_memory ~name:"output" ~block_size:bs () in
    ignore
      (Xmerge.Struct_merge.sort_and_merge_devices ~config ~fuse ~ordering ~left ~right ~output ()
        : Xmerge.Struct_merge.report);
    ( Extmem.Device.contents output,
      Extmem.Io_stats.total (Extmem.Io_stats.snapshot (Extmem.Device.stats left))
      + Extmem.Io_stats.total (Extmem.Io_stats.snapshot (Extmem.Device.stats right)) )
  in
  let fused_out, fused_io = run true in
  let unfused_out, unfused_io = run false in
  Alcotest.check Alcotest.string "same merged document" unfused_out fused_out;
  (* unfused reads each raw input once to sort it; fused does the same —
     the savings are on the scratch/sorted devices, so the raw-input I/O
     must not grow *)
  Alcotest.check Alcotest.bool "fusion does not cost raw-input I/O" true
    (fused_io <= unfused_io)

let test_merge_figure_1 () =
  let merged, report =
    Xmerge.Struct_merge.sort_and_merge_strings ~config ~ordering:Xmlgen.Company.ordering
      Xmlgen.Company.figure_1_d1 Xmlgen.Company.figure_1_d2
  in
  (* the bottom document of Figure 1 *)
  let expected =
    "<company>\
     <region name=\"AC\">\
     <branch name=\"Atlanta\"/>\
     <branch name=\"Durham\">\
     <employee ID=\"323\">\
     <bonus>5000</bonus><name>Smith</name><phone>5552345</phone><salary>45000</salary>\
     </employee>\
     <employee ID=\"454\"/>\
     <employee ID=\"844\"/>\
     </branch>\
     <branch name=\"Miami\"/>\
     </region>\
     <region name=\"NE\"/>\
     <region name=\"NW\"/>\
     </company>"
  in
  check tree_eq "figure 1 merge" (parse expected) (parse merged);
  check Alcotest.bool "matches found" true (report.Xmerge.Struct_merge.matched_elements >= 4)

let test_merge_disjoint () =
  let merged, _ =
    Xmerge.Struct_merge.merge_strings ~ordering:by_id "<r id=\"0\"><a id=\"1\"/></r>"
      "<r id=\"0\"><b id=\"2\"/></r>"
  in
  check tree_eq "outer join" (parse "<r id=\"0\"><a id=\"1\"/><b id=\"2\"/></r>") (parse merged)

let test_merge_attr_union () =
  let merged, _ =
    Xmerge.Struct_merge.merge_strings ~ordering:by_id "<r id=\"1\" a=\"left\"/>"
      "<r id=\"1\" a=\"right\" b=\"only\"/>"
  in
  check tree_eq "left wins conflicts, union otherwise"
    (parse "<r id=\"1\" a=\"left\" b=\"only\"/>")
    (parse merged)

let test_merge_text_policy () =
  let same, _ =
    Xmerge.Struct_merge.merge_strings ~ordering:by_id "<r id=\"1\">x</r>" "<r id=\"1\">x</r>"
  in
  check tree_eq "equal text once" (parse "<r id=\"1\">x</r>") (parse same);
  let diff, _ =
    Xmerge.Struct_merge.merge_strings ~ordering:by_id "<r id=\"1\">x</r>" "<r id=\"1\">y</r>"
  in
  check tree_eq "different text kept" (parse "<r id=\"1\">xy</r>") (parse diff)

let test_merge_rejects_unsorted () =
  try
    ignore
      (Xmerge.Struct_merge.merge_strings ~ordering:by_id
         "<r id=\"0\"><b id=\"2\"/><a id=\"1\"/></r>" "<r id=\"0\"/>");
    Alcotest.fail "expected Not_sorted"
  with Xmerge.Struct_merge.Not_sorted _ -> ()

let test_merge_rejects_subtree_ordering () =
  try
    ignore
      (Xmerge.Struct_merge.merge_strings ~ordering:(Ordering.make Ordering.By_text) "<a/>" "<a/>");
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_merge_mismatched_roots () =
  try
    ignore (Xmerge.Struct_merge.merge_strings ~ordering:by_id "<a id=\"1\"/>" "<b id=\"1\"/>");
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_merge_devices_single_pass () =
  let pair = Xmlgen.Company.generate ~seed:3 ~regions:3 ~branches_per_region:2 () in
  let ordering = Xmlgen.Company.ordering in
  let sl, _ = Nexsort.sort_string ~config ~ordering pair.Xmlgen.Company.personnel in
  let sr, _ = Nexsort.sort_string ~config ~ordering pair.Xmlgen.Company.payroll in
  let bs = 128 in
  let left = Extmem.Device.of_string ~block_size:bs sl in
  let right = Extmem.Device.of_string ~block_size:bs sr in
  let output = Extmem.Device.in_memory ~block_size:bs () in
  ignore (Xmerge.Struct_merge.merge_devices ~ordering ~left ~right ~output ());
  let blocks_of s = (String.length s + bs - 1) / bs in
  check Alcotest.int "left read once" (blocks_of sl) (Extmem.Device.stats left).Extmem.Io_stats.reads;
  check Alcotest.int "right read once" (blocks_of sr)
    (Extmem.Device.stats right).Extmem.Io_stats.reads;
  (* the merged output equals the reference merge *)
  check tree_eq "device merge correct"
    (ref_merge_strings ordering sl sr)
    (parse (Extmem.Device.contents output))

let prop_merge_equals_reference =
  QCheck.Test.make ~name:"struct merge = reference tree merge" ~count:60
    QCheck.(pair small_nat small_nat)
    (fun (seed, extra) ->
      let pair =
        Xmlgen.Company.generate ~seed:(seed + 1)
          ~regions:(1 + (extra mod 3))
          ~branches_per_region:(1 + (seed mod 3))
          ~employees_per_branch:(2 + (extra mod 4))
          ~overlap:(float_of_int (seed mod 10) /. 10.)
          ()
      in
      let ordering = Xmlgen.Company.ordering in
      let sl, _ = Nexsort.sort_string ~config ~ordering pair.Xmlgen.Company.personnel in
      let sr, _ = Nexsort.sort_string ~config ~ordering pair.Xmlgen.Company.payroll in
      let merged, _ = Xmerge.Struct_merge.merge_strings ~ordering sl sr in
      Xmlio.Tree.equal (ref_merge_strings ordering sl sr) (parse merged))

let prop_merge_output_sorted =
  QCheck.Test.make ~name:"struct merge output is itself sorted" ~count:40 QCheck.small_nat
    (fun seed ->
      let pair = Xmlgen.Company.generate ~seed:(seed + 100) () in
      let ordering = Xmlgen.Company.ordering in
      let merged, _ =
        Xmerge.Struct_merge.sort_and_merge_strings ~config ~ordering
          pair.Xmlgen.Company.personnel pair.Xmlgen.Company.payroll
      in
      Baselines.Tree_sort.sorted ordering (parse merged))

(* ------------------------------------------------------------------ *)
(* Naive nested-loop merge (the paper's strawman) *)

let test_naive_merge_small () =
  let merged, report =
    Xmerge.Naive_merge.merge_strings ~ordering:by_id "<r id=\"0\"><a id=\"2\"/><b id=\"1\">hi</b></r>"
      "<r id=\"0\"><c id=\"3\"/><b id=\"1\"/></r>"
  in
  (* left order kept, unmatched right children appended *)
  check tree_eq "naive merge"
    (parse "<r id=\"0\"><a id=\"2\"/><b id=\"1\">hi</b><c id=\"3\"/></r>")
    (parse merged);
  check Alcotest.int "matched r and b" 2 report.Xmerge.Naive_merge.matched_elements

let test_naive_merge_agrees_with_sort_merge () =
  (* sorting the naive merge's output gives exactly the sort-merge result *)
  let pair = Xmlgen.Company.generate ~seed:17 ~regions:3 ~employees_per_branch:4 () in
  let ordering = Xmlgen.Company.ordering in
  let naive, _ =
    Xmerge.Naive_merge.merge_strings ~ordering pair.Xmlgen.Company.personnel
      pair.Xmlgen.Company.payroll
  in
  let sorted_naive = Baselines.Tree_sort.sort_tree ordering (parse naive) in
  let via_sort_merge, _ =
    Xmerge.Struct_merge.sort_and_merge_strings ~config ~ordering pair.Xmlgen.Company.personnel
      pair.Xmlgen.Company.payroll
  in
  check tree_eq "same merge, different order" (parse via_sort_merge) sorted_naive

let test_naive_merge_io_pattern () =
  (* the point of the exercise: the naive merge re-reads the right document
     many times over, sort-merge reads everything a bounded number of
     times *)
  let pair = Xmlgen.Company.generate ~seed:5 ~regions:4 ~branches_per_region:4
      ~employees_per_branch:8 ()
  in
  let ordering = Xmlgen.Company.ordering in
  let bs = 256 in
  let left = Extmem.Device.of_string ~block_size:bs pair.Xmlgen.Company.personnel in
  let right = Extmem.Device.of_string ~block_size:bs pair.Xmlgen.Company.payroll in
  let output = Extmem.Device.in_memory ~block_size:bs () in
  let report = Xmerge.Naive_merge.merge_devices ~ordering ~left ~right ~output () in
  let right_blocks = (String.length pair.Xmlgen.Company.payroll + bs - 1) / bs in
  check Alcotest.bool "right side re-read many times" true
    (report.Xmerge.Naive_merge.right_io.Extmem.Io_stats.reads > 3 * right_blocks)

let test_indexed_merge_matches_naive () =
  (* the index changes the I/O pattern, not the answer *)
  let pair = Xmlgen.Company.generate ~seed:23 ~regions:3 ~employees_per_branch:5 () in
  let ordering = Xmlgen.Company.ordering in
  let naive, _ =
    Xmerge.Naive_merge.merge_strings ~ordering pair.Xmlgen.Company.personnel
      pair.Xmlgen.Company.payroll
  in
  let indexed, report =
    Xmerge.Indexed_merge.merge_strings ~ordering pair.Xmlgen.Company.personnel
      pair.Xmlgen.Company.payroll
  in
  check tree_eq "same result" (parse naive) (parse indexed);
  check Alcotest.bool "index populated" true (report.Xmerge.Indexed_merge.index_entries > 20)

let test_indexed_merge_reads_right_less () =
  let pair =
    Xmlgen.Company.generate ~seed:31 ~regions:4 ~branches_per_region:4 ~employees_per_branch:8 ()
  in
  let ordering = Xmlgen.Company.ordering in
  let bs = 256 in
  let run_naive () =
    let left = Extmem.Device.of_string ~block_size:bs pair.Xmlgen.Company.personnel in
    let right = Extmem.Device.of_string ~block_size:bs pair.Xmlgen.Company.payroll in
    let output = Extmem.Device.in_memory ~block_size:bs () in
    Xmerge.Naive_merge.merge_devices ~ordering ~left ~right ~output ()
  in
  let run_indexed () =
    let left = Extmem.Device.of_string ~block_size:bs pair.Xmlgen.Company.personnel in
    let right = Extmem.Device.of_string ~block_size:bs pair.Xmlgen.Company.payroll in
    let output = Extmem.Device.in_memory ~block_size:bs () in
    Xmerge.Indexed_merge.merge_devices ~ordering ~left ~right ~output ()
  in
  let naive = run_naive () in
  let indexed = run_indexed () in
  check Alcotest.bool "index removes right re-scans" true
    (indexed.Xmerge.Indexed_merge.right_io.Extmem.Io_stats.reads
    < naive.Xmerge.Naive_merge.right_io.Extmem.Io_stats.reads)

let test_naive_merge_rejects_fancy_markup () =
  try
    ignore
      (Xmerge.Naive_merge.merge_strings ~ordering:by_id "<r id=\"0\"><!-- c --></r>" "<r id=\"0\"/>");
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Batch_update *)

let test_update_upsert () =
  let base = "<db id=\"0\"><item id=\"1\"><v>old</v></item><item id=\"3\"/></db>" in
  let updates = "<db id=\"0\"><item id=\"2\"/><item id=\"1\"><w>new</w></item></db>" in
  let out, report =
    Xmerge.Batch_update.sort_and_apply_strings ~config ~ordering:by_id ~base ~updates ()
  in
  check tree_eq "upsert"
    (parse
       "<db id=\"0\"><item id=\"1\"><v>old</v><w>new</w></item><item id=\"2\"/><item id=\"3\"/></db>")
    (parse out);
  check Alcotest.int "no deletes" 0 report.Xmerge.Batch_update.deletes

let test_update_delete () =
  let base = "<db id=\"0\"><item id=\"1\"/><item id=\"2\"/></db>" in
  let updates = "<db id=\"0\"><item id=\"1\" __op=\"delete\"/></db>" in
  let out, report =
    Xmerge.Batch_update.sort_and_apply_strings ~config ~ordering:by_id ~base ~updates ()
  in
  check tree_eq "deleted" (parse "<db id=\"0\"><item id=\"2\"/></db>") (parse out);
  check Alcotest.int "one delete" 1 report.Xmerge.Batch_update.deletes

let test_update_delete_missing_is_noop () =
  let base = "<db id=\"0\"><item id=\"2\"/></db>" in
  let updates = "<db id=\"0\"><item id=\"9\" __op=\"delete\"/></db>" in
  let out, report =
    Xmerge.Batch_update.sort_and_apply_strings ~config ~ordering:by_id ~base ~updates ()
  in
  check tree_eq "unchanged" (parse base) (parse out);
  check Alcotest.int "unmatched" 1 report.Xmerge.Batch_update.unmatched_deletes

let test_update_replace () =
  let base = "<db id=\"0\"><item id=\"1\"><old/><older/></item></db>" in
  let updates = "<db id=\"0\"><item id=\"1\" __op=\"replace\"><new/></item></db>" in
  let out, report =
    Xmerge.Batch_update.sort_and_apply_strings ~config ~ordering:by_id ~base ~updates ()
  in
  check tree_eq "replaced" (parse "<db id=\"0\"><item id=\"1\"><new/></item></db>") (parse out);
  check Alcotest.int "one replace" 1 report.Xmerge.Batch_update.replaces

let test_update_marker_stripped () =
  let base = "<db id=\"0\"/>" in
  let updates = "<db id=\"0\"><item id=\"5\" __op=\"merge\" keep=\"yes\"/></db>" in
  let out, _ =
    Xmerge.Batch_update.sort_and_apply_strings ~config ~ordering:by_id ~base ~updates ()
  in
  check tree_eq "marker gone" (parse "<db id=\"0\"><item id=\"5\" keep=\"yes\"/></db>") (parse out)

let test_update_result_stays_sorted () =
  let base = "<db id=\"0\"><a id=\"1\"/><c id=\"5\"/><d id=\"9\"/></db>" in
  let updates = "<db id=\"0\"><b id=\"3\"/><c id=\"5\" __op=\"delete\"/><e id=\"7\"/></db>" in
  let out, _ = Xmerge.Batch_update.apply_strings ~ordering:by_id ~base ~updates in
  check tree_eq "applied"
    (parse "<db id=\"0\"><a id=\"1\"/><b id=\"3\"/><e id=\"7\"/><d id=\"9\"/></db>")
    (parse out);
  check Alcotest.bool "still sorted" true (Baselines.Tree_sort.sorted by_id (parse out))

(* ------------------------------------------------------------------ *)
(* Seqnum: preserving document order across sort + merge (Example 1.1) *)

let test_seqnum_roundtrip () =
  let doc = "<r id=\"0\"><b id=\"9\"><y id=\"5\"/><x id=\"7\"/></b><a id=\"3\">text</a></r>" in
  let annotated = Xmerge.Seqnum.annotate doc in
  (* sorting scrambles the sibling order... *)
  let sorted, _ = Nexsort.sort_string ~config ~ordering:by_id annotated in
  check Alcotest.bool "sorting changed the order" true
    (Xmerge.Seqnum.strip sorted <> doc);
  (* ...and restore brings the original order back exactly *)
  check tree_eq "restored" (parse doc) (parse (Xmerge.Seqnum.restore ~config sorted))

let test_seqnum_preserves_order_through_merge () =
  (* Example 1.1's closing remark, end to end: merge two documents, then
     recover the left document's original ordering *)
  let d1 = "<r id=\"0\"><b id=\"9\"/><a id=\"3\"/><c id=\"5\"/></r>" in
  let d2 = "<r id=\"0\"><z id=\"1\"/><a id=\"3\"/></r>" in
  let a1 = Xmerge.Seqnum.annotate ~offset:0 d1 in
  let a2 = Xmerge.Seqnum.annotate ~offset:1000 d2 in
  (* __seq must not disturb key-based matching: sort under by_id, merge *)
  let merged, _ = Xmerge.Struct_merge.sort_and_merge_strings ~config ~ordering:by_id a1 a2 in
  let restored = Xmerge.Seqnum.restore ~config merged in
  (* left order first (b, a, c), right-only elements after (z) *)
  check tree_eq "left order preserved"
    (parse "<r id=\"0\"><b id=\"9\"/><a id=\"3\"/><c id=\"5\"/><z id=\"1\"/></r>")
    (parse restored)

let test_seqnum_rejects_reserved () =
  try
    ignore (Xmerge.Seqnum.annotate "<r __seq=\"1\"/>");
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let prop_seqnum_restores_any_document =
  QCheck.Test.make ~name:"annotate |> sort |> restore = identity" ~count:60 QCheck.small_nat
    (fun seed ->
      let doc, _ =
        Xmlgen.Gen.to_string (fun sink ->
            Xmlgen.Gen.random_shape ~seed:(seed + 3000) ~avg_bytes:30 ~max_elements:80 ~height:4
              ~max_fanout:5 sink)
      in
      let sorted, _ =
        Nexsort.sort_string ~config ~ordering:by_id (Xmerge.Seqnum.annotate doc)
      in
      Xmlio.Tree.equal (parse doc) (parse (Xmerge.Seqnum.restore ~config sorted)))

(* ------------------------------------------------------------------ *)
(* Archive (nested merge of versions) *)

let test_archive_init_and_extract () =
  let doc = "<db id=\"0\"><item id=\"2\">two</item><item id=\"1\">one</item></db>" in
  let archive, report = Xmerge.Archive.init ~config ~ordering:by_id ~version:"v1" doc in
  check (Alcotest.list Alcotest.string) "versions" [ "v1" ] (Xmerge.Archive.versions archive);
  check Alcotest.int "elements added" 3 report.Xmerge.Archive.elements_added;
  (match Xmerge.Archive.extract ~version:"v1" archive with
  | Some snapshot ->
      check tree_eq "extract = sorted original"
        (parse "<db id=\"0\"><item id=\"1\">one</item><item id=\"2\">two</item></db>")
        (parse snapshot)
  | None -> Alcotest.fail "v1 missing");
  check Alcotest.bool "unknown version" true
    (Xmerge.Archive.extract ~version:"v9" archive = None)

let test_archive_add_and_extract_all () =
  let v1 = "<db id=\"0\"><item id=\"1\">alpha</item><item id=\"2\">beta</item></db>" in
  (* v2: item 2 changes text, item 3 appears, item 1 disappears *)
  let v2 = "<db id=\"0\"><item id=\"3\">new</item><item id=\"2\">BETA</item></db>" in
  let archive, _ = Xmerge.Archive.init ~config ~ordering:by_id ~version:"v1" v1 in
  let archive, report = Xmerge.Archive.add ~config ~ordering:by_id ~version:"v2" ~archive v2 in
  check (Alcotest.list Alcotest.string) "versions" [ "v1"; "v2" ]
    (Xmerge.Archive.versions archive);
  check Alcotest.int "item 3 added" 1 report.Xmerge.Archive.elements_added;
  let snap v = Option.get (Xmerge.Archive.extract ~version:v archive) in
  check tree_eq "v1 reconstructed"
    (Baselines.Tree_sort.sort_tree by_id (parse v1))
    (parse (snap "v1"));
  check tree_eq "v2 reconstructed"
    (Baselines.Tree_sort.sort_tree by_id (parse v2))
    (parse (snap "v2"))

let test_archive_duplicate_version_rejected () =
  let archive, _ = Xmerge.Archive.init ~config ~ordering:by_id ~version:"v1" "<db id=\"0\"/>" in
  try
    ignore (Xmerge.Archive.add ~config ~ordering:by_id ~version:"v1" ~archive "<db id=\"0\"/>");
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_archive_reserved_names_rejected () =
  (try
     ignore (Xmerge.Archive.init ~config ~ordering:by_id ~version:"v1" "<db id=\"0\" __v=\"x\"/>");
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ());
  try
    ignore (Xmerge.Archive.init ~config ~ordering:by_id ~version:"v1" "<db id=\"0\"><__text/></db>");
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_archive_is_sorted () =
  let pair = Xmlgen.Company.generate ~seed:8 () in
  let ordering = Xmlgen.Company.ordering in
  let archive, _ =
    Xmerge.Archive.init ~config ~ordering ~version:"2026-01" pair.Xmlgen.Company.personnel
  in
  let archive, _ =
    Xmerge.Archive.add ~config ~ordering ~version:"2026-02" ~archive pair.Xmlgen.Company.payroll
  in
  (* the archive stays fully sorted, so the next merge is one pass *)
  check Alcotest.bool "archive sorted" true
    (Baselines.Tree_sort.sorted ordering (parse archive))

let prop_archive_roundtrip =
  (* every version of a random history is reconstructible, exactly *)
  QCheck.Test.make ~name:"archive reconstructs every version exactly" ~count:40
    QCheck.(pair small_nat (int_range 2 4))
    (fun (seed, nversions) ->
      let version_doc i =
        let s, _ =
          Xmlgen.Gen.to_string (fun sink ->
              Xmlgen.Gen.random_shape ~seed:(seed + (i * 131)) ~avg_bytes:30 ~max_elements:40
                ~height:3 ~max_fanout:4 sink)
        in
        s
      in
      let docs = List.init nversions version_doc in
      (* all docs share the root tag n1, as archives require *)
      let archive =
        List.fold_left
          (fun acc (i, doc) ->
            match acc with
            | None -> Some (fst (Xmerge.Archive.init ~config ~ordering:by_id ~version:(Printf.sprintf "v%d" i) doc))
            | Some archive ->
                Some
                  (fst
                     (Xmerge.Archive.add ~config ~ordering:by_id
                        ~version:(Printf.sprintf "v%d" i) ~archive doc)))
          None
          (List.mapi (fun i d -> (i, d)) docs)
      in
      let archive = Option.get archive in
      List.for_all
        (fun (i, doc) ->
          match Xmerge.Archive.extract ~version:(Printf.sprintf "v%d" i) archive with
          | None -> false
          | Some snap ->
              Xmlio.Tree.equal
                (Baselines.Tree_sort.sort_tree by_id (parse doc))
                (parse snap))
        (List.mapi (fun i d -> (i, d)) docs))

(* ------------------------------------------------------------------ *)
(* Generators *)

let test_gen_exact_shape () =
  let s, stats = Xmlgen.Gen.to_string (fun sink -> Xmlgen.Gen.exact_shape ~fanouts:[ 3; 2 ] sink) in
  check Alcotest.int "elements 1+3+6" 10 stats.Xmlgen.Gen.elements;
  check Alcotest.int "height" 3 stats.Xmlgen.Gen.height;
  let t = parse s in
  check Alcotest.int "tree agrees" 10 (Xmlio.Tree.element_count t);
  check Alcotest.int "size formula" 10 (Xmlgen.Gen.exact_shape_size ~fanouts:[ 3; 2 ])

let test_gen_exact_shape_table2 () =
  (* scaled-down Table 2 shapes keep their element counts *)
  check Alcotest.int "height 3" (1 + 17 + (17 * 17))
    (Xmlgen.Gen.exact_shape_size ~fanouts:[ 17; 17 ]);
  check Alcotest.int "height 2" 101 (Xmlgen.Gen.exact_shape_size ~fanouts:[ 100 ])

let test_gen_random_shape_bounds () =
  let s, stats =
    Xmlgen.Gen.to_string (fun sink ->
        Xmlgen.Gen.random_shape ~seed:5 ~height:4 ~max_fanout:5 ~max_elements:200 sink)
  in
  check Alcotest.bool "bounded" true (stats.Xmlgen.Gen.elements <= 200);
  let t = parse s in
  check Alcotest.bool "height bounded" true (Xmlio.Tree.height t <= 4);
  check Alcotest.int "element count agrees" stats.Xmlgen.Gen.elements (Xmlio.Tree.element_count t)

let test_gen_deterministic () =
  let a, _ = Xmlgen.Gen.to_string (fun s -> Xmlgen.Gen.random_shape ~seed:9 ~height:3 ~max_fanout:4 s) in
  let b, _ = Xmlgen.Gen.to_string (fun s -> Xmlgen.Gen.random_shape ~seed:9 ~height:3 ~max_fanout:4 s) in
  let c, _ = Xmlgen.Gen.to_string (fun s -> Xmlgen.Gen.random_shape ~seed:10 ~height:3 ~max_fanout:4 s) in
  check Alcotest.bool "same seed same doc" true (a = b);
  check Alcotest.bool "different seed different doc" true (a <> c)

let test_gen_avg_bytes () =
  let _, stats =
    Xmlgen.Gen.to_string (fun sink ->
        Xmlgen.Gen.exact_shape ~avg_bytes:150 ~fanouts:[ 10; 10 ] sink)
  in
  let avg = float_of_int stats.Xmlgen.Gen.bytes /. float_of_int stats.Xmlgen.Gen.elements in
  check Alcotest.bool (Printf.sprintf "avg element size ~150 (got %.0f)" avg) true
    (avg > 100. && avg < 200.)

let test_gen_to_device () =
  let dev = Extmem.Device.in_memory ~block_size:64 () in
  let stats = Xmlgen.Gen.to_device dev (fun sink -> Xmlgen.Gen.exact_shape ~fanouts:[ 4 ] sink) in
  check Alcotest.int "bytes recorded" stats.Xmlgen.Gen.bytes (Extmem.Device.byte_length dev);
  let t = parse (Extmem.Device.contents dev) in
  check Alcotest.int "parses" 5 (Xmlio.Tree.element_count t)

let test_company_pair_mergeable () =
  let pair = Xmlgen.Company.generate ~seed:42 () in
  let t1 = parse pair.Xmlgen.Company.personnel in
  let t2 = parse pair.Xmlgen.Company.payroll in
  check Alcotest.bool "d1 parses" true (Xmlio.Tree.element_count t1 > 5);
  check Alcotest.bool "d2 parses" true (Xmlio.Tree.element_count t2 > 5);
  (* the documents are generated unsorted (that is the point) *)
  check Alcotest.bool "unsorted" true
    (not (Baselines.Tree_sort.sorted Xmlgen.Company.ordering t1)
    || not (Baselines.Tree_sort.sorted Xmlgen.Company.ordering t2))

let test_splitmix_determinism () =
  let a = Xmlgen.Splitmix.create 1 and b = Xmlgen.Splitmix.create 1 in
  let xs = List.init 20 (fun _ -> Xmlgen.Splitmix.int a 1000) in
  let ys = List.init 20 (fun _ -> Xmlgen.Splitmix.int b 1000) in
  check (Alcotest.list Alcotest.int) "streams equal" xs ys;
  List.iter (fun x -> check Alcotest.bool "in range" true (x >= 0 && x < 1000)) xs;
  let r = Xmlgen.Splitmix.in_range a 5 9 in
  check Alcotest.bool "in_range" true (r >= 5 && r <= 9)

(* ------------------------------------------------------------------ *)
(* Batch_update report counters *)

let apply base updates =
  Xmerge.Batch_update.sort_and_apply_strings ~config ~ordering:by_id ~base ~updates ()

let test_update_report_counters () =
  let base = {|<r><a id="1"/><a id="2"/><a id="3"/></r>|} in
  let _, r = apply base {|<r><a id="1" __op="delete"/><a id="3" __op="delete"/></r>|} in
  check Alcotest.int "deletes" 2 r.Xmerge.Batch_update.deletes;
  check Alcotest.int "replaces" 0 r.Xmerge.Batch_update.replaces;
  check Alcotest.int "unmatched" 0 r.Xmerge.Batch_update.unmatched_deletes;
  let _, r = apply base {|<r><a id="2" __op="replace"><b/></a></r>|} in
  check Alcotest.int "replaces counted" 1 r.Xmerge.Batch_update.replaces;
  check Alcotest.int "no deletes" 0 r.Xmerge.Batch_update.deletes;
  let _, r = apply base {|<r><a id="9" __op="delete"/></r>|} in
  check Alcotest.int "unmatched counted" 1 r.Xmerge.Batch_update.unmatched_deletes;
  check Alcotest.int "unmatched not a delete" 0 r.Xmerge.Batch_update.deletes;
  let out, r =
    apply base
      {|<r><a id="1" __op="delete"/><a id="2" __op="replace"><b/></a><a id="8" __op="delete"/><a id="4"/></r>|}
  in
  check Alcotest.int "mixed deletes" 1 r.Xmerge.Batch_update.deletes;
  check Alcotest.int "mixed replaces" 1 r.Xmerge.Batch_update.replaces;
  check Alcotest.int "mixed unmatched" 1 r.Xmerge.Batch_update.unmatched_deletes;
  check tree_eq "mixed result" (parse {|<r><a id="2"><b/></a><a id="3"/><a id="4"/></r>|})
    (parse out)

(* ------------------------------------------------------------------ *)
(* Ingest: incremental maintenance *)

let ingest_config = Nexsort.Config.make ~block_size:128 ~memory_blocks:8 ()

let test_ingest_basic () =
  let t =
    Xmerge.Ingest.create ~config:ingest_config ~ordering:by_id
      ~base:{|<r><a id="3"><n>c</n></a><a id="1"><n>a</n></a></r>|} ()
  in
  Fun.protect
    ~finally:(fun () -> Xmerge.Ingest.destroy t)
    (fun () ->
      check Alcotest.string "base sorted"
        {|<r><a id="1"><n>a</n></a><a id="3"><n>c</n></a></r>|}
        (Xmerge.Ingest.contents t);
      check Alcotest.int "index built" 2 (Xmerge.Ingest.index_keys t);
      Xmerge.Ingest.add_update t {|<r><a id="2"><n>b</n></a></r>|};
      Xmerge.Ingest.add_update t {|<r><a id="3" __op="delete"/></r>|};
      check Alcotest.int "pending" 2 (Xmerge.Ingest.pending t);
      let r = Xmerge.Ingest.flush t in
      check Alcotest.int "batch ops" 2 r.Xmerge.Ingest.batch_ops;
      check Alcotest.int "batch docs" 2 r.Xmerge.Ingest.batch_docs;
      check Alcotest.bool "not skipped" false r.Xmerge.Ingest.skipped;
      (match r.Xmerge.Ingest.merge with
      | Some m -> check Alcotest.int "delete applied" 1 m.Xmerge.Batch_update.deletes
      | None -> Alcotest.fail "expected a merge report");
      check Alcotest.string "after flush"
        {|<r><a id="1"><n>a</n></a><a id="2"><n>b</n></a></r>|}
        (Xmerge.Ingest.contents t);
      check Alcotest.int "pending drained" 0 (Xmerge.Ingest.pending t))

let test_ingest_index_drops_absent_deletes () =
  let t =
    Xmerge.Ingest.create ~config:ingest_config ~ordering:by_id
      ~base:{|<r><a id="1"/><a id="2"/></r>|} ()
  in
  Fun.protect
    ~finally:(fun () -> Xmerge.Ingest.destroy t)
    (fun () ->
      Xmerge.Ingest.add_update t {|<r><a id="7" __op="delete"/><a id="9" __op="delete"/></r>|};
      let r = Xmerge.Ingest.flush t in
      check Alcotest.bool "skipped" true r.Xmerge.Ingest.skipped;
      check Alcotest.int "all dropped" 2 r.Xmerge.Ingest.index_dropped;
      check Alcotest.int "no io"
        0
        (r.Xmerge.Ingest.flush_io.Extmem.Io_stats.reads
        + r.Xmerge.Ingest.flush_io.Extmem.Io_stats.writes);
      (* a delete of a key an earlier op in the same batch creates must
         NOT be dropped: the upsert matters, and so does its deletion *)
      Xmerge.Ingest.add_update t {|<r><a id="7"><n>x</n></a></r>|};
      Xmerge.Ingest.add_update t {|<r><a id="7" __op="delete"/></r>|};
      let r = Xmerge.Ingest.flush t in
      check Alcotest.int "created-then-deleted not index-dropped" 0 r.Xmerge.Ingest.index_dropped;
      check Alcotest.string "net no-op" {|<r><a id="1"/><a id="2"/></r>|}
        (Xmerge.Ingest.contents t);
      check Alcotest.bool "offset of id=1 known" true
        (Xmerge.Ingest.find_offset t (Nexsort.Key.of_string "1") <> None);
      check Alcotest.bool "offset of absent key unknown" true
        (Xmerge.Ingest.find_offset t (Nexsort.Key.of_string "9") = None))

let test_ingest_empty_flush_is_noop () =
  let t = Xmerge.Ingest.create ~config:ingest_config ~ordering:by_id ~base:{|<r><a id="1"/></r>|} () in
  Fun.protect
    ~finally:(fun () -> Xmerge.Ingest.destroy t)
    (fun () ->
      let r = Xmerge.Ingest.flush t in
      check Alcotest.bool "skipped" true r.Xmerge.Ingest.skipped;
      check Alcotest.int "no ops" 0 r.Xmerge.Ingest.batch_ops;
      check Alcotest.string "unchanged" {|<r><a id="1"/></r>|} (Xmerge.Ingest.contents t))

let test_ingest_rejects_malformed () =
  let t = Xmerge.Ingest.create ~config:ingest_config ~ordering:by_id ~base:{|<r><a id="1"/></r>|} () in
  Fun.protect
    ~finally:(fun () -> Xmerge.Ingest.destroy t)
    (fun () ->
      (match Xmerge.Ingest.add_update t "<r><a id=" with
      | () -> Alcotest.fail "expected a parse error"
      | exception (Xmlio.Tree.Malformed _ | Xmlio.Parser.Error _) -> ());
      (match Xmerge.Ingest.add_update t {|<r __op="delete"/>|} with
      | () -> Alcotest.fail "expected rejection of a root marker"
      | exception Invalid_argument _ -> ());
      check Alcotest.int "queue unchanged" 0 (Xmerge.Ingest.pending t))

(* Satellite property: any partition of an edit script into flush
   batches produces the same document as applying the script one update
   at a time through the full sort-and-apply oracle.  Generated upsert
   payloads carry attributes and attribute-only children but no text:
   the Struct_merge text rule (equal texts coalesce, unequal concat) is
   not partition-invariant for colliding text upserts, which is the
   module's one documented folding exception. *)
let prop_ingest_partition_invariant =
  QCheck.Test.make ~name:"any flush partition matches sequential oracle" ~count:60
    QCheck.(
      let op_gen =
        Gen.(
          pair (int_range 0 9) (int_range 0 5) >|= fun (id, kind) ->
          let id = string_of_int id in
          match kind with
          | 0 | 1 ->
              Printf.sprintf {|<a id="%s" v="u%s"/>|} id id (* attr upsert *)
          | 2 -> Printf.sprintf {|<a id="%s"><m k="m%s"/></a>|} id id (* nested upsert *)
          | 3 -> Printf.sprintf {|<a id="%s" __op="delete"/>|} id
          | _ -> Printf.sprintf {|<a id="%s" __op="replace"><n>r%s</n></a>|} id id)
      in
      (* distinct ids within a doc: duplicate sibling keys inside one
         update document are ill-formed (Struct_merge emits them as
         duplicate siblings), not an ingest-foldable script *)
      let doc_gen =
        Gen.(
          list_size (int_range 1 4) op_gen >|= fun ops ->
          let seen = Hashtbl.create 8 in
          let ops =
            List.filter
              (fun op ->
                let id = List.nth (String.split_on_char '"' op) 1 in
                if Hashtbl.mem seen id then false
                else begin
                  Hashtbl.add seen id ();
                  true
                end)
              ops
          in
          "<r>" ^ String.concat "" ops ^ "</r>")
      in
      let script_gen =
        Gen.(
          pair
            (list_size (int_range 1 8) doc_gen)
            (list_size (int_range 1 8) bool) (* flush after doc i? *)
        )
      in
      make
        ~print:(fun (docs, cuts) ->
          Printf.sprintf "docs:\n%s\ncuts: %s" (String.concat "\n" docs)
            (String.concat "" (List.map (fun b -> if b then "|" else ".") cuts)))
        script_gen)
    (fun (docs, cuts) ->
      let base = {|<r><a id="2"><n>b2</n></a><a id="5"><n>b5</n></a><a id="8"><n>b8</n></a></r>|} in
      let oracle =
        List.fold_left
          (fun acc doc -> fst (apply acc doc))
          (fst (Nexsort.sort_string ~config:ingest_config ~ordering:by_id base))
          docs
      in
      let t = Xmerge.Ingest.create ~config:ingest_config ~ordering:by_id ~base () in
      Fun.protect
        ~finally:(fun () -> Xmerge.Ingest.destroy t)
        (fun () ->
          List.iteri
            (fun i doc ->
              Xmerge.Ingest.add_update t doc;
              let cut = match List.nth_opt cuts i with Some b -> b | None -> false in
              if cut then ignore (Xmerge.Ingest.flush t))
            docs;
          ignore (Xmerge.Ingest.flush t);
          let got = Xmerge.Ingest.contents t in
          if
            not
              (Int64.equal
                 (Verify.Validator.digest_of_string oracle)
                 (Verify.Validator.digest_of_string got))
          then
            QCheck.Test.fail_reportf "oracle:@.%s@.ingest:@.%s" oracle got
          else true))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "xmerge"
    [
      ( "struct_merge",
        [
          Alcotest.test_case "figure 1" `Quick test_merge_figure_1;
          Alcotest.test_case "disjoint outer join" `Quick test_merge_disjoint;
          Alcotest.test_case "attribute union" `Quick test_merge_attr_union;
          Alcotest.test_case "text policy" `Quick test_merge_text_policy;
          Alcotest.test_case "rejects unsorted" `Quick test_merge_rejects_unsorted;
          Alcotest.test_case "rejects subtree ordering" `Quick test_merge_rejects_subtree_ordering;
          Alcotest.test_case "mismatched roots" `Quick test_merge_mismatched_roots;
          Alcotest.test_case "devices single pass" `Quick test_merge_devices_single_pass;
          Alcotest.test_case "fused sort+merge matches unfused" `Quick
            test_sort_and_merge_fused_matches_unfused;
          Alcotest.test_case "fused device sort+merge" `Quick
            test_sort_and_merge_devices_fused_saves_io;
          qcheck prop_merge_equals_reference;
          qcheck prop_merge_output_sorted;
        ] );
      ( "naive_merge",
        [
          Alcotest.test_case "small" `Quick test_naive_merge_small;
          Alcotest.test_case "agrees with sort-merge" `Quick test_naive_merge_agrees_with_sort_merge;
          Alcotest.test_case "io pattern" `Quick test_naive_merge_io_pattern;
          Alcotest.test_case "rejects fancy markup" `Quick test_naive_merge_rejects_fancy_markup;
          Alcotest.test_case "indexed matches naive" `Quick test_indexed_merge_matches_naive;
          Alcotest.test_case "indexed reads right less" `Quick test_indexed_merge_reads_right_less;
        ] );
      ( "batch_update",
        [
          Alcotest.test_case "upsert" `Quick test_update_upsert;
          Alcotest.test_case "delete" `Quick test_update_delete;
          Alcotest.test_case "delete missing is noop" `Quick test_update_delete_missing_is_noop;
          Alcotest.test_case "replace" `Quick test_update_replace;
          Alcotest.test_case "marker stripped" `Quick test_update_marker_stripped;
          Alcotest.test_case "result stays sorted" `Quick test_update_result_stays_sorted;
          Alcotest.test_case "report counters" `Quick test_update_report_counters;
        ] );
      ( "ingest",
        [
          Alcotest.test_case "basic" `Quick test_ingest_basic;
          Alcotest.test_case "index drops absent deletes" `Quick
            test_ingest_index_drops_absent_deletes;
          Alcotest.test_case "empty flush" `Quick test_ingest_empty_flush_is_noop;
          Alcotest.test_case "rejects malformed" `Quick test_ingest_rejects_malformed;
          qcheck prop_ingest_partition_invariant;
        ] );
      ( "seqnum",
        [
          Alcotest.test_case "roundtrip" `Quick test_seqnum_roundtrip;
          Alcotest.test_case "order through merge" `Quick test_seqnum_preserves_order_through_merge;
          Alcotest.test_case "rejects reserved" `Quick test_seqnum_rejects_reserved;
          qcheck prop_seqnum_restores_any_document;
        ] );
      ( "archive",
        [
          Alcotest.test_case "init and extract" `Quick test_archive_init_and_extract;
          Alcotest.test_case "add and extract all" `Quick test_archive_add_and_extract_all;
          Alcotest.test_case "duplicate version" `Quick test_archive_duplicate_version_rejected;
          Alcotest.test_case "reserved names" `Quick test_archive_reserved_names_rejected;
          Alcotest.test_case "archive stays sorted" `Quick test_archive_is_sorted;
          qcheck prop_archive_roundtrip;
        ] );
      ( "generators",
        [
          Alcotest.test_case "exact shape" `Quick test_gen_exact_shape;
          Alcotest.test_case "table 2 sizes" `Quick test_gen_exact_shape_table2;
          Alcotest.test_case "random shape bounds" `Quick test_gen_random_shape_bounds;
          Alcotest.test_case "deterministic" `Quick test_gen_deterministic;
          Alcotest.test_case "average element size" `Quick test_gen_avg_bytes;
          Alcotest.test_case "to device" `Quick test_gen_to_device;
          Alcotest.test_case "company pair" `Quick test_company_pair_mergeable;
          Alcotest.test_case "splitmix" `Quick test_splitmix_determinism;
        ] );
    ]
