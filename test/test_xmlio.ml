(* Tests for the XML substrate: escaping, parser, writer, tree, dict. *)

let check = Alcotest.check

let qcheck = QCheck_alcotest.to_alcotest

let event = Alcotest.testable Xmlio.Event.pp Xmlio.Event.equal

let parse ?keep_whitespace s = Xmlio.Parser.to_list (Xmlio.Parser.of_string ?keep_whitespace s)

(* ------------------------------------------------------------------ *)
(* Event *)

(* A physically distinct copy with the same characters, as produced when
   one side of a comparison holds a dict-interned name and the other a
   string freshly sliced out of an input buffer. *)
let fresh s = String.sub (s ^ "!") 0 (String.length s)

let test_event_equal_mixed_interning () =
  let dict = Xmlio.Dict.create () in
  ignore (Xmlio.Dict.intern dict "employee");
  ignore (Xmlio.Dict.intern dict "id");
  let interned = Xmlio.Dict.lookup dict 0 in
  let attr_name = Xmlio.Dict.lookup dict 1 in
  check Alcotest.bool "interned != fresh physically" false (interned == fresh "employee");
  check event "start: interned vs fresh name"
    (Xmlio.Event.Start (interned, [ (attr_name, "7") ]))
    (Xmlio.Event.Start (fresh "employee", [ (fresh "id", fresh "7") ]));
  check event "end: interned vs fresh name" (Xmlio.Event.End interned)
    (Xmlio.Event.End (fresh "employee"));
  check event "text: fresh copies" (Xmlio.Event.Text "pay") (Xmlio.Event.Text (fresh "pay"))

let test_event_equal_distinguishes () =
  let ne msg a b = check Alcotest.bool msg false (Xmlio.Event.equal a b) in
  ne "different names" (Xmlio.Event.Start ("a", [])) (Xmlio.Event.Start ("b", []));
  ne "different kinds" (Xmlio.Event.Start ("a", [])) (Xmlio.Event.End "a");
  ne "end vs text" (Xmlio.Event.End "a") (Xmlio.Event.Text "a");
  ne "attr value differs"
    (Xmlio.Event.Start ("a", [ ("k", "1") ]))
    (Xmlio.Event.Start ("a", [ ("k", "2") ]));
  ne "attr name differs"
    (Xmlio.Event.Start ("a", [ ("k", "1") ]))
    (Xmlio.Event.Start ("a", [ ("j", "1") ]));
  ne "attr order matters"
    (Xmlio.Event.Start ("a", [ ("k", "1"); ("j", "2") ]))
    (Xmlio.Event.Start ("a", [ ("j", "2"); ("k", "1") ]));
  ne "attr count differs" (Xmlio.Event.Start ("a", [ ("k", "1") ])) (Xmlio.Event.Start ("a", []))

let test_event_packed_roundtrip_equal () =
  let p = Xmlio.Event.packed_create () in
  List.iter
    (fun e ->
      Xmlio.Event.pack_into p e;
      check event "pack_into/of_packed preserves equality" e (Xmlio.Event.of_packed p))
    [
      Xmlio.Event.Start ("employee", [ ("id", "7"); ("dept", "sales") ]);
      Xmlio.Event.Start ("employee", []);
      Xmlio.Event.End "employee";
      Xmlio.Event.Text "  spaced  ";
    ]

(* ------------------------------------------------------------------ *)
(* Escape *)

let test_escape_text () =
  check Alcotest.string "no-op" "plain" (Xmlio.Escape.escape_text "plain");
  check Alcotest.string "specials" "a&amp;b&lt;c&gt;d" (Xmlio.Escape.escape_text "a&b<c>d");
  check Alcotest.string "quotes untouched" "\"'" (Xmlio.Escape.escape_text "\"'")

let test_escape_attr () =
  check Alcotest.string "quotes escaped" "&quot;&apos;&amp;" (Xmlio.Escape.escape_attr "\"'&")

let test_decode_entity () =
  check Alcotest.string "amp" "&" (Xmlio.Escape.decode_entity "amp");
  check Alcotest.string "lt" "<" (Xmlio.Escape.decode_entity "lt");
  check Alcotest.string "decimal" "A" (Xmlio.Escape.decode_entity "#65");
  check Alcotest.string "hex" "A" (Xmlio.Escape.decode_entity "#x41");
  check Alcotest.string "utf8 2-byte" "\xC3\xA9" (Xmlio.Escape.decode_entity "#233");
  check Alcotest.string "utf8 3-byte" "\xE2\x82\xAC" (Xmlio.Escape.decode_entity "#x20AC");
  Alcotest.check_raises "unknown" (Xmlio.Escape.Bad_entity "nope") (fun () ->
      ignore (Xmlio.Escape.decode_entity "nope"))

(* ------------------------------------------------------------------ *)
(* Parser *)

let test_parse_minimal () =
  check (Alcotest.list event) "one empty element"
    [ Xmlio.Event.Start ("a", []); Xmlio.Event.End "a" ]
    (parse "<a/>");
  check (Alcotest.list event) "open/close"
    [ Xmlio.Event.Start ("a", []); Xmlio.Event.End "a" ]
    (parse "<a></a>")

let test_parse_nested_with_text () =
  check (Alcotest.list event) "nested"
    [
      Xmlio.Event.Start ("r", []);
      Xmlio.Event.Start ("x", []);
      Xmlio.Event.Text "hi";
      Xmlio.Event.End "x";
      Xmlio.Event.End "r";
    ]
    (parse "<r><x>hi</x></r>")

let test_parse_attributes () =
  check (Alcotest.list event) "attrs"
    [
      Xmlio.Event.Start ("e", [ ("a", "1"); ("b", "two"); ("c", "mix'd") ]);
      Xmlio.Event.End "e";
    ]
    (parse "<e a=\"1\" b='two' c=\"mix'd\" />")

let test_parse_attr_entities () =
  check (Alcotest.list event) "entity in attr"
    [ Xmlio.Event.Start ("e", [ ("v", "a&b<c>\"") ]); Xmlio.Event.End "e" ]
    (parse "<e v=\"a&amp;b&lt;c&gt;&quot;\"/>")

let test_parse_text_entities () =
  check (Alcotest.list event) "entities in text"
    [ Xmlio.Event.Start ("t", []); Xmlio.Event.Text "x < y & y > z A"; Xmlio.Event.End "t" ]
    (parse "<t>x &lt; y &amp; y &gt; z &#65;</t>")

let test_parse_cdata () =
  check (Alcotest.list event) "cdata"
    [ Xmlio.Event.Start ("t", []); Xmlio.Event.Text "<raw> & stuff ]] here"; Xmlio.Event.End "t" ]
    (parse "<t><![CDATA[<raw> & stuff ]] here]]></t>")

let test_parse_comments_and_pis () =
  check (Alcotest.list event) "skipped"
    [ Xmlio.Event.Start ("t", []); Xmlio.Event.Text "ab"; Xmlio.Event.End "t" ]
    (parse "<?xml version=\"1.0\"?><!-- top --><t>a<!-- mid -->b<?proc data?></t><!-- tail -->")

let test_parse_doctype () =
  check (Alcotest.list event) "doctype skipped"
    [ Xmlio.Event.Start ("t", []); Xmlio.Event.End "t" ]
    (parse "<!DOCTYPE t [ <!ELEMENT t (#PCDATA)> ]><t/>")

let test_parse_whitespace_dropped () =
  check (Alcotest.list event) "ws dropped"
    [
      Xmlio.Event.Start ("r", []);
      Xmlio.Event.Start ("a", []);
      Xmlio.Event.End "a";
      Xmlio.Event.End "r";
    ]
    (parse "<r>\n  <a/>\n</r>")

let test_parse_whitespace_kept () =
  let p = Xmlio.Parser.of_string ~keep_whitespace:true "<r> <a/> </r>" in
  check (Alcotest.list event) "ws kept"
    [
      Xmlio.Event.Start ("r", []);
      Xmlio.Event.Text " ";
      Xmlio.Event.Start ("a", []);
      Xmlio.Event.End "a";
      Xmlio.Event.Text " ";
      Xmlio.Event.End "r";
    ]
    (Xmlio.Parser.to_list p)

let test_parse_peek_and_depth () =
  let p = Xmlio.Parser.of_string "<r><a></a></r>" in
  check (Alcotest.option event) "peek" (Some (Xmlio.Event.Start ("r", []))) (Xmlio.Parser.peek p);
  check (Alcotest.option event) "next = peeked" (Some (Xmlio.Event.Start ("r", [])))
    (Xmlio.Parser.next p);
  check Alcotest.int "depth inside r" 1 (Xmlio.Parser.depth p);
  ignore (Xmlio.Parser.next p);
  check Alcotest.int "depth inside a" 2 (Xmlio.Parser.depth p)

let expect_parse_error ?(msg = "parse error expected") s =
  try
    ignore (parse s);
    Alcotest.fail msg
  with Xmlio.Parser.Error _ -> ()

let test_parse_errors () =
  expect_parse_error "<a><b></a></b>" ~msg:"mismatched tags";
  expect_parse_error "<a>" ~msg:"unclosed element";
  expect_parse_error "</a>" ~msg:"end tag only";
  expect_parse_error "<a/><b/>" ~msg:"two roots";
  expect_parse_error "text<a/>" ~msg:"text before root";
  expect_parse_error "<a b=c/>" ~msg:"unquoted attribute";
  expect_parse_error "<a b=\"1\" b=\"2\"/>" ~msg:"duplicate attribute";
  expect_parse_error "<a>&nosuch;</a>" ~msg:"unknown entity";
  expect_parse_error "" ~msg:"empty document";
  expect_parse_error "<a><![CDATA[x]]</a>" ~msg:"unterminated cdata";
  expect_parse_error "<1tag/>" ~msg:"bad name start"

let test_parse_error_position () =
  try
    ignore (parse "<a>\n  <b></c>\n</a>");
    Alcotest.fail "expected error"
  with Xmlio.Parser.Error { line; _ } -> check Alcotest.int "line number" 2 line

let test_parse_from_reader_counts_io () =
  let xml = "<r>" ^ String.concat "" (List.init 40 (fun i -> Printf.sprintf "<e i=\"%d\"/>" i)) ^ "</r>" in
  let dev = Extmem.Device.of_string ~block_size:16 xml in
  let r = Extmem.Block_reader.of_device dev in
  let p = Xmlio.Parser.of_reader r in
  let evs = Xmlio.Parser.to_list p in
  check Alcotest.int "events" 82 (List.length evs);
  let expected = (String.length xml + 15) / 16 in
  check Alcotest.int "reads = ceil(n/B)" expected (Extmem.Device.stats dev).Extmem.Io_stats.reads

(* ------------------------------------------------------------------ *)
(* Writer *)

let test_writer_basic () =
  let s =
    Xmlio.Writer.events_to_string
      [
        Xmlio.Event.Start ("r", [ ("k", "v") ]);
        Xmlio.Event.Start ("a", []);
        Xmlio.Event.End "a";
        Xmlio.Event.Text "x<y";
        Xmlio.Event.End "r";
      ]
  in
  check Alcotest.string "output" "<r k=\"v\"><a/>x&lt;y</r>" s

let test_writer_escaping_roundtrip () =
  let evs =
    [
      Xmlio.Event.Start ("r", [ ("q", "say \"hi\" & <go>") ]);
      Xmlio.Event.Text "1 < 2 & 3 > 2";
      Xmlio.Event.End "r";
    ]
  in
  let s = Xmlio.Writer.events_to_string evs in
  check (Alcotest.list event) "roundtrip" evs (parse s)

let test_newline_normalization () =
  (* XML §2.11: CRLF and lone CR in the input read as LF; §3.3.3: literal
     tab/newline in attribute values read as spaces.  Character references
     bypass both, which is how the writer round-trips whitespace. *)
  let evs = parse ~keep_whitespace:true "<a b='x\ty\nz'>l1\r\nl2\rl3&#13;</a>" in
  check (Alcotest.list event) "normalized"
    [ Xmlio.Event.Start ("a", [ ("b", "x y z") ]); Xmlio.Event.Text "l1\nl2\nl3\r"; Xmlio.Event.End "a" ]
    evs;
  let s =
    Xmlio.Writer.events_to_string
      [ Xmlio.Event.Start ("a", [ ("b", "x\ty\r") ]); Xmlio.Event.Text "c\rd"; Xmlio.Event.End "a" ]
  in
  check Alcotest.string "char refs" "<a b=\"x&#9;y&#13;\">c&#13;d</a>" s

let test_writer_decl () =
  let s = Xmlio.Writer.events_to_string ~decl:true [ Xmlio.Event.Start ("r", []); Xmlio.Event.End "r" ] in
  check Alcotest.bool "has decl" true (String.length s > 5 && String.sub s 0 5 = "<?xml")

let test_writer_unbalanced () =
  let buf = Buffer.create 16 in
  let w = Xmlio.Writer.to_buffer buf in
  Xmlio.Writer.event w (Xmlio.Event.Start ("r", []));
  Alcotest.check_raises "close unbalanced" (Invalid_argument "Writer: unclosed elements remain")
    (fun () -> Xmlio.Writer.close w);
  let w2 = Xmlio.Writer.to_buffer buf in
  Alcotest.check_raises "stray end" (Invalid_argument "Writer: end tag with no open element")
    (fun () -> Xmlio.Writer.event w2 (Xmlio.Event.End "r"))

let test_writer_to_device () =
  let dev = Extmem.Device.in_memory ~block_size:8 () in
  let bw = Extmem.Block_writer.create dev in
  let w = Xmlio.Writer.to_block_writer bw in
  Xmlio.Writer.events w [ Xmlio.Event.Start ("root", []); Xmlio.Event.Text "data"; Xmlio.Event.End "root" ];
  Xmlio.Writer.close w;
  let e = Extmem.Block_writer.close bw in
  Extmem.Device.set_byte_length dev e.Extmem.Extent.bytes;
  check Alcotest.string "device contents" "<root>data</root>" (Extmem.Device.contents dev)

(* ------------------------------------------------------------------ *)
(* Tree *)

let sample_tree =
  Xmlio.Tree.element "company"
    [
      Xmlio.Tree.element ~attrs:[ ("name", "NE") ] "region" [];
      Xmlio.Tree.element ~attrs:[ ("name", "AC") ] "region"
        [
          Xmlio.Tree.element ~attrs:[ ("name", "Durham") ] "branch"
            [
              Xmlio.Tree.element ~attrs:[ ("ID", "454") ] "employee" [];
              Xmlio.Tree.element ~attrs:[ ("ID", "323") ] "employee"
                [
                  Xmlio.Tree.element "name" [ Xmlio.Tree.text "Smith" ];
                  Xmlio.Tree.element "phone" [ Xmlio.Tree.text "5552345" ];
                ];
            ];
          Xmlio.Tree.element ~attrs:[ ("name", "Atlanta") ] "branch" [];
        ];
    ]

let test_tree_roundtrip () =
  let evs = Xmlio.Tree.to_events sample_tree in
  let back = Xmlio.Tree.of_events evs in
  check Alcotest.bool "of_events . to_events = id" true (Xmlio.Tree.equal sample_tree back);
  let s = Xmlio.Tree.to_string sample_tree in
  let reparsed = Xmlio.Tree.of_string s in
  check Alcotest.bool "string roundtrip" true (Xmlio.Tree.equal sample_tree reparsed)

let test_tree_stats () =
  check Alcotest.int "size" 11 (Xmlio.Tree.size sample_tree);
  check Alcotest.int "element count" 9 (Xmlio.Tree.element_count sample_tree);
  check Alcotest.int "height" 5 (Xmlio.Tree.height sample_tree);
  check Alcotest.int "max fanout" 2 (Xmlio.Tree.max_fanout sample_tree)

let test_tree_map_children () =
  (* reverse every child list *)
  let rev = Xmlio.Tree.map_children (fun e -> List.rev e.Xmlio.Tree.children) in
  let t = Xmlio.Tree.of_string "<r><a/><b/><c><d/><e/></c></r>" in
  let expected = Xmlio.Tree.of_string "<r><c><e/><d/></c><b/><a/></r>" in
  check Alcotest.bool "reversed" true (Xmlio.Tree.equal (rev t) expected)

let test_tree_fold () =
  let names =
    Xmlio.Tree.fold
      (fun acc n -> match n with Xmlio.Tree.Element e -> e.Xmlio.Tree.name :: acc | _ -> acc)
      [] (Xmlio.Tree.of_string "<r><a><b/></a><c/></r>")
  in
  check (Alcotest.list Alcotest.string) "preorder" [ "c"; "b"; "a"; "r" ] names

let test_tree_malformed () =
  (try
     ignore (Xmlio.Tree.of_events [ Xmlio.Event.Start ("a", []) ]);
     Alcotest.fail "expected Malformed"
   with Xmlio.Tree.Malformed _ -> ());
  try
    ignore (Xmlio.Tree.of_events [ Xmlio.Event.Text "x" ]);
    Alcotest.fail "expected Malformed"
  with Xmlio.Tree.Malformed _ -> ()

(* ------------------------------------------------------------------ *)
(* Dict *)

let test_dict () =
  let d = Xmlio.Dict.create () in
  let a = Xmlio.Dict.intern d "alpha" in
  let b = Xmlio.Dict.intern d "beta" in
  check Alcotest.int "dense ids" 1 b;
  check Alcotest.int "idempotent" a (Xmlio.Dict.intern d "alpha");
  check Alcotest.string "lookup" "beta" (Xmlio.Dict.lookup d b);
  check (Alcotest.option Alcotest.int) "find" (Some 0) (Xmlio.Dict.find d "alpha");
  check (Alcotest.option Alcotest.int) "find missing" None (Xmlio.Dict.find d "gamma");
  check Alcotest.int "size" 2 (Xmlio.Dict.size d);
  check (Alcotest.list Alcotest.string) "ordered" [ "alpha"; "beta" ] (Xmlio.Dict.to_list d);
  Alcotest.check_raises "unknown id" (Invalid_argument "Dict.lookup: unknown id 9") (fun () ->
      ignore (Xmlio.Dict.lookup d 9))

(* ------------------------------------------------------------------ *)
(* Dtd *)

let company_dtd =
  "<!ELEMENT company (region*)>\n\
   <!ELEMENT region (branch*)>\n\
   <!ELEMENT branch (employee*)>\n\
   <!ELEMENT employee (name?, phone?, (salary, bonus)?)>\n\
   <!ELEMENT name (#PCDATA)>\n\
   <!ELEMENT phone (#PCDATA)>\n\
   <!ELEMENT salary (#PCDATA)>\n\
   <!ELEMENT bonus (#PCDATA)>\n\
   <!-- attribute declarations -->\n\
   <!ATTLIST region name CDATA #REQUIRED>\n\
   <!ATTLIST branch name CDATA #REQUIRED>\n\
   <!ATTLIST employee ID CDATA #REQUIRED status (active|retired) \"active\">"

let test_dtd_parse () =
  let dtd = Xmlio.Dtd.parse company_dtd in
  check (Alcotest.list Alcotest.string) "elements"
    [ "company"; "region"; "branch"; "employee"; "name"; "phone"; "salary"; "bonus" ]
    (Xmlio.Dtd.element_names dtd);
  (match Xmlio.Dtd.content_model dtd "employee" with
  | Some (Xmlio.Dtd.Children _) -> ()
  | _ -> Alcotest.fail "employee model");
  (match Xmlio.Dtd.content_model dtd "name" with
  | Some (Xmlio.Dtd.Mixed []) -> ()
  | _ -> Alcotest.fail "name is #PCDATA");
  let employee_attrs = Xmlio.Dtd.attributes dtd "employee" in
  check Alcotest.int "employee attrs" 2 (List.length employee_attrs);
  match employee_attrs with
  | [ id; status ] ->
      check Alcotest.string "ID" "ID" id.Xmlio.Dtd.att_name;
      check Alcotest.bool "ID required" true (id.Xmlio.Dtd.att_default = Xmlio.Dtd.Required);
      check Alcotest.bool "status enum" true
        (status.Xmlio.Dtd.att_type = Xmlio.Dtd.Enum [ "active"; "retired" ])
  | _ -> Alcotest.fail "attrs shape"

let test_dtd_parse_models () =
  let dtd =
    Xmlio.Dtd.parse
      "<!ELEMENT a EMPTY><!ELEMENT b ANY><!ELEMENT c (x, (y | z)+, w?)><!ELEMENT m (#PCDATA | x)*>"
  in
  check Alcotest.bool "empty" true (Xmlio.Dtd.content_model dtd "a" = Some Xmlio.Dtd.Empty);
  check Alcotest.bool "any" true (Xmlio.Dtd.content_model dtd "b" = Some Xmlio.Dtd.Any);
  check Alcotest.bool "mixed" true
    (Xmlio.Dtd.content_model dtd "m" = Some (Xmlio.Dtd.Mixed [ "x" ]));
  match Xmlio.Dtd.content_model dtd "c" with
  | Some (Xmlio.Dtd.Children (Xmlio.Dtd.Seq [ _; Xmlio.Dtd.Plus _; Xmlio.Dtd.Opt _ ])) -> ()
  | _ -> Alcotest.fail "model of c"

let test_dtd_syntax_errors () =
  List.iter
    (fun bad ->
      try
        ignore (Xmlio.Dtd.parse bad);
        Alcotest.fail ("expected Syntax_error for " ^ bad)
      with Xmlio.Dtd.Syntax_error _ -> ())
    [ "<!ELEMENT a"; "<!ELEMENT a (b,>"; "<!WHAT x>"; "<!ATTLIST a b>"; "<!ELEMENT a (b|c,d)>" ]

let test_dtd_names_and_preload () =
  let dtd = Xmlio.Dtd.parse company_dtd in
  let names = Xmlio.Dtd.names dtd in
  check Alcotest.bool "contains all" true
    (List.for_all (fun n -> List.mem n names) [ "company"; "employee"; "ID"; "name"; "status" ]);
  let dict = Xmlio.Dict.create () in
  Xmlio.Dtd.preload dtd dict;
  check Alcotest.int "dict preloaded" (List.length names) (Xmlio.Dict.size dict);
  check (Alcotest.option Alcotest.int) "company is id 0" (Some 0) (Xmlio.Dict.find dict "company")

let tree_of = Xmlio.Tree.of_string

let test_dtd_validate_ok () =
  let dtd = Xmlio.Dtd.parse company_dtd in
  let doc =
    tree_of
      "<company><region name=\"AC\"><branch name=\"Durham\">\
       <employee ID=\"323\"><name>Smith</name><phone>5552345</phone></employee>\
       <employee ID=\"844\"><salary>45000</salary><bonus>5000</bonus></employee>\
       </branch></region></company>"
  in
  check (Alcotest.list Alcotest.string) "valid" []
    (List.map (fun v -> v.Xmlio.Dtd.message) (Xmlio.Dtd.validate dtd doc))

let test_dtd_validate_violations () =
  let dtd = Xmlio.Dtd.parse company_dtd in
  let violations doc = List.length (Xmlio.Dtd.validate dtd (tree_of doc)) in
  check Alcotest.bool "missing required attr" true
    (violations "<company><region><branch name=\"x\"/></region></company>" > 0);
  check Alcotest.bool "bad enum value" true
    (violations
       "<company><region name=\"a\"><branch name=\"b\">\
        <employee ID=\"1\" status=\"fired\"/></branch></region></company>"
    > 0);
  check Alcotest.bool "content model violation (salary without bonus)" true
    (violations
       "<company><region name=\"a\"><branch name=\"b\">\
        <employee ID=\"1\"><salary>1</salary></employee></branch></region></company>"
    > 0);
  check Alcotest.bool "undeclared element" true
    (violations "<company><intruder/></company>" > 0);
  check Alcotest.bool "text where children expected" true
    (violations "<company>oops</company>" > 0)

let test_dtd_validate_derivatives () =
  (* exercise the derivative matcher on trickier models *)
  let dtd = Xmlio.Dtd.parse "<!ELEMENT r ((a, b)+ | c)><!ELEMENT a EMPTY><!ELEMENT b EMPTY><!ELEMENT c EMPTY>" in
  let ok doc = Xmlio.Dtd.validate dtd (tree_of doc) = [] in
  check Alcotest.bool "a b" true (ok "<r><a/><b/></r>");
  check Alcotest.bool "a b a b" true (ok "<r><a/><b/><a/><b/></r>");
  check Alcotest.bool "c" true (ok "<r><c/></r>");
  check Alcotest.bool "a alone fails" false (ok "<r><a/></r>");
  check Alcotest.bool "empty fails" false (ok "<r/>");
  check Alcotest.bool "c after pair fails" false (ok "<r><a/><b/><c/></r>")

let test_dtd_from_parser () =
  let xml = "<!DOCTYPE r [ <!ELEMENT r (leaf*)> <!ELEMENT leaf EMPTY> ]><r><leaf/></r>" in
  let p = Xmlio.Parser.of_string xml in
  let events = Xmlio.Parser.to_list p in
  check Alcotest.int "events" 4 (List.length events);
  match Xmlio.Parser.doctype_subset p with
  | None -> Alcotest.fail "expected a captured subset"
  | Some subset ->
      let dtd = Xmlio.Dtd.parse subset in
      check (Alcotest.list Alcotest.string) "elements" [ "r"; "leaf" ]
        (Xmlio.Dtd.element_names dtd);
      check (Alcotest.list Alcotest.string) "document valid" []
        (List.map
           (fun v -> v.Xmlio.Dtd.message)
           (Xmlio.Dtd.validate dtd (Xmlio.Tree.of_string xml)))

(* ------------------------------------------------------------------ *)
(* Xpath *)

let company_doc =
  tree_of
    "<company><region name=\"AC\"><branch name=\"Durham\">\
     <employee ID=\"454\"/><employee ID=\"323\"><name>Smith</name></employee>\
     </branch><branch name=\"Atlanta\"/></region>\
     <region name=\"NE\"><branch name=\"Boston\"><employee ID=\"700\"/></branch></region>\
     </company>"

let names_of path doc =
  List.map (fun (e : Xmlio.Tree.element) ->
      match List.assoc_opt "ID" e.Xmlio.Tree.attrs with
      | Some id -> e.Xmlio.Tree.name ^ ":" ^ id
      | None -> (
          match List.assoc_opt "name" e.Xmlio.Tree.attrs with
          | Some n -> e.Xmlio.Tree.name ^ ":" ^ n
          | None -> e.Xmlio.Tree.name))
    (Xmlio.Xpath.select (Xmlio.Xpath.parse path) doc)

let test_xpath_child_steps () =
  check (Alcotest.list Alcotest.string) "absolute path"
    [ "branch:Durham"; "branch:Atlanta"; "branch:Boston" ]
    (names_of "/company/region/branch" company_doc);
  check (Alcotest.list Alcotest.string) "root" [ "company" ] (names_of "/company" company_doc);
  check (Alcotest.list Alcotest.string) "wrong root" [] (names_of "/nope/region" company_doc)

let test_xpath_descendant () =
  check (Alcotest.list Alcotest.string) "all employees"
    [ "employee:454"; "employee:323"; "employee:700" ]
    (names_of "//employee" company_doc);
  check (Alcotest.list Alcotest.string) "names under branches"
    [ "name" ]
    (names_of "/company//name" company_doc)

let test_xpath_predicates () =
  check (Alcotest.list Alcotest.string) "attr eq"
    [ "employee:323" ]
    (names_of "//employee[@ID='323']" company_doc);
  check (Alcotest.list Alcotest.string) "attr exists"
    [ "region:AC"; "region:NE" ]
    (names_of "/company/region[@name]" company_doc);
  check (Alcotest.list Alcotest.string) "position"
    [ "region:NE" ]
    (names_of "/company/region[2]" company_doc);
  check (Alcotest.list Alcotest.string) "wildcard with position"
    [ "branch:Atlanta" ]
    (names_of "/company/region/*[2]" company_doc)

let test_xpath_parse_errors () =
  List.iter
    (fun bad ->
      try
        ignore (Xmlio.Xpath.parse bad);
        Alcotest.fail ("expected Parse_error for " ^ bad)
      with Xmlio.Xpath.Parse_error _ -> ())
    [ ""; "company"; "/"; "/a["; "/a[@]"; "/a[@x=unquoted]"; "/a[0]" ]

let test_xpath_to_string_roundtrip () =
  List.iter
    (fun p ->
      check Alcotest.string p p (Xmlio.Xpath.to_string (Xmlio.Xpath.parse p)))
    [ "/company/region/branch"; "//employee[@ID='323']"; "/a//b[@x]/*[3]" ]

let test_xpath_matches_chain () =
  let p = Xmlio.Xpath.parse "/company//branch[@name='Durham']" in
  let chain_hit =
    [ ("company", []); ("region", [ ("name", "AC") ]); ("branch", [ ("name", "Durham") ]) ]
  in
  let chain_miss =
    [ ("company", []); ("region", [ ("name", "AC") ]); ("branch", [ ("name", "Atlanta") ]) ]
  in
  check Alcotest.bool "hit" true (Xmlio.Xpath.matches_chain p chain_hit);
  check Alcotest.bool "miss" false (Xmlio.Xpath.matches_chain p chain_miss);
  (* child-only paths must consume the whole chain *)
  let p2 = Xmlio.Xpath.parse "/company/region" in
  check Alcotest.bool "partial chain" false (Xmlio.Xpath.matches_chain p2 chain_hit);
  check Alcotest.bool "exact chain" true
    (Xmlio.Xpath.matches_chain p2 [ ("company", []); ("region", []) ]);
  (* positional predicates cannot be decided from a chain *)
  let p3 = Xmlio.Xpath.parse "/company/region[2]" in
  check Alcotest.bool "has positional" true (Xmlio.Xpath.has_positional p3);
  try
    ignore (Xmlio.Xpath.matches_chain p3 chain_hit);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Property: random trees round-trip through serialize + parse *)

let gen_tree =
  let open QCheck.Gen in
  let name = oneofl [ "a"; "b"; "c"; "item"; "node"; "x-1"; "_y" ] in
  let attr_val = string_size ~gen:(oneofl [ 'p'; 'q'; '&'; '<'; '"'; '\''; ' '; 'z' ]) (int_bound 6) in
  let text_char = oneofl [ 'h'; 'i'; '&'; '<'; '>'; ' '; '.' ] in
  let rec node depth =
    if depth = 0 then map Xmlio.Tree.text (map (fun s -> "t" ^ s) (string_size ~gen:text_char (int_bound 8)))
    else
      frequency
        [
          (1, map Xmlio.Tree.text (map (fun s -> "t" ^ s) (string_size ~gen:text_char (int_bound 8))));
          ( 3,
            let* n = name in
            let* nattrs = int_bound 2 in
            let* attrs =
              list_repeat nattrs
                (let* k = oneofl [ "k1"; "k2"; "k3" ] in
                 let* v = attr_val in
                 return (k, v))
            in
            let attrs = List.sort_uniq (fun (a, _) (b, _) -> compare a b) attrs in
            let* nchildren = int_bound 3 in
            let* children = list_repeat nchildren (node (depth - 1)) in
            return (Xmlio.Tree.element ~attrs n children) );
        ]
  in
  let* n = name in
  let* children = list_size (int_bound 4) (node 3) in
  return (Xmlio.Tree.element n children)

let arb_tree = QCheck.make ~print:(fun t -> Xmlio.Tree.to_string t) gen_tree

(* Adjacent text children coalesce in serialized form; normalize before
   comparing. *)
let rec normalize t =
  match t with
  | Xmlio.Tree.Text _ -> t
  | Xmlio.Tree.Element e ->
      let children = List.map normalize e.Xmlio.Tree.children in
      let children =
        List.fold_right
          (fun c acc ->
            match (c, acc) with
            | Xmlio.Tree.Text a, Xmlio.Tree.Text b :: rest -> Xmlio.Tree.Text (a ^ b) :: rest
            | _ -> c :: acc)
          children []
      in
      Xmlio.Tree.Element { e with Xmlio.Tree.children }

let prop_xpath_select_agrees_with_chain =
  (* for chain-decidable paths, select = filter by matches_chain *)
  QCheck.Test.make ~name:"select agrees with matches_chain" ~count:100
    (QCheck.pair arb_tree (QCheck.oneofl [ "//a"; "//node"; "/a//b"; "//item[@k1]"; "/node/*" ]))
    (fun (t, path) ->
      let p = Xmlio.Xpath.parse path in
      let selected = Xmlio.Xpath.select p t in
      (* enumerate all elements with their chains *)
      let hits = ref [] in
      let rec walk chain node =
        match node with
        | Xmlio.Tree.Text _ -> ()
        | Xmlio.Tree.Element e ->
            let chain = chain @ [ (e.Xmlio.Tree.name, e.Xmlio.Tree.attrs) ] in
            if Xmlio.Xpath.matches_chain p chain then hits := e :: !hits;
            List.iter (walk chain) e.Xmlio.Tree.children
      in
      walk [] t;
      List.rev !hits = selected)


let prop_tree_string_roundtrip =
  QCheck.Test.make ~name:"serialize+parse round-trips random trees" ~count:200 arb_tree (fun t ->
      let s = Xmlio.Tree.to_string t in
      let back = Xmlio.Tree.of_string ~keep_whitespace:true s in
      Xmlio.Tree.equal (normalize t) back)

(* The strong roundtrip property: [parse ∘ write ≡ id] over documents
   whose strings are deliberately hostile — every escapable character,
   CDATA-terminator fragments ("]]>"), whitespace that only survives as
   character references, both quote styles' worth of quotes, empty
   elements, and attributes in arbitrary (preserved) order. *)
let gen_hostile_tree =
  let open QCheck.Gen in
  let name = oneofl [ "a"; "b"; "doc"; "x-1"; "_y" ] in
  let text_char = oneofl [ 'h'; '&'; '<'; '>'; ']'; '"'; '\''; ' '; '\n'; '\r'; '\t'; '.' ] in
  let attr_char = oneofl [ 'p'; '&'; '<'; '>'; '"'; '\''; ' '; '\n'; '\r'; '\t'; ']' ] in
  let text = string_size ~gen:text_char (int_range 1 10) in
  let attrs =
    let* n = int_bound 3 in
    let* kvs =
      list_repeat n
        (let* k = oneofl [ "k1"; "k2"; "k3"; "k4" ] in
         let* v = string_size ~gen:attr_char (int_bound 8) in
         return (k, v))
    in
    let kvs = List.sort_uniq (fun (a, _) (b, _) -> compare a b) kvs in
    let* rev = bool in
    return (if rev then List.rev kvs else kvs)
  in
  let rec node depth =
    if depth = 0 then map Xmlio.Tree.text text
    else
      frequency
        [
          (2, map Xmlio.Tree.text text);
          ( 3,
            let* n = name in
            let* attrs = attrs in
            let* nchildren = int_bound 3 in
            let* children = list_repeat nchildren (node (depth - 1)) in
            return (Xmlio.Tree.element ~attrs n children) );
        ]
  in
  let* n = name in
  let* attrs = attrs in
  let* children = list_size (int_bound 4) (node 3) in
  return (Xmlio.Tree.element ~attrs n children)

let arb_hostile_tree =
  QCheck.make
    ~print:(fun t -> String.escaped (Xmlio.Writer.events_to_string (Xmlio.Tree.to_events t)))
    gen_hostile_tree

let prop_write_parse_identity =
  QCheck.Test.make ~name:"write+parse is the identity on hostile documents" ~count:500
    arb_hostile_tree (fun t ->
      let s = Xmlio.Writer.events_to_string (Xmlio.Tree.to_events t) in
      let back = Xmlio.Tree.of_string ~keep_whitespace:true s in
      Xmlio.Tree.equal (normalize t) back)

let prop_parser_never_crashes =
  (* fuzz: arbitrary bytes either parse or raise Parser.Error — never
     anything else, never hang *)
  QCheck.Test.make ~name:"parser survives arbitrary bytes" ~count:500
    QCheck.(string_of_size QCheck.Gen.small_nat)
    (fun junk ->
      match Xmlio.Parser.to_list (Xmlio.Parser.of_string junk) with
      | _ -> true
      | exception Xmlio.Parser.Error _ -> true)

let prop_parser_survives_mutated_xml =
  (* fuzz closer to the grammar: take a valid document and flip bytes *)
  QCheck.Test.make ~name:"parser survives mutated documents" ~count:300
    QCheck.(triple arb_tree (int_bound 200) (int_bound 255))
    (fun (t, pos, byte) ->
      let s = Bytes.of_string (Xmlio.Tree.to_string t) in
      if Bytes.length s = 0 then true
      else begin
        Bytes.set s (pos mod Bytes.length s) (Char.chr byte);
        match Xmlio.Parser.to_list (Xmlio.Parser.of_string (Bytes.to_string s)) with
        | _ -> true
        | exception Xmlio.Parser.Error _ -> true
      end)

let prop_events_balanced =
  QCheck.Test.make ~name:"to_events is balanced and size-consistent" ~count:200 arb_tree (fun t ->
      let evs = Xmlio.Tree.to_events t in
      let depth =
        List.fold_left
          (fun d e ->
            match e with
            | Xmlio.Event.Start _ -> d + 1
            | Xmlio.Event.End _ -> if d <= 0 then raise Exit else d - 1
            | Xmlio.Event.Text _ -> d)
          0 evs
      in
      let starts =
        List.length (List.filter (function Xmlio.Event.Start _ -> true | _ -> false) evs)
      in
      depth = 0 && starts = Xmlio.Tree.element_count t)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "xmlio"
    [
      ( "event",
        [
          Alcotest.test_case "equal across interning" `Quick test_event_equal_mixed_interning;
          Alcotest.test_case "equal distinguishes" `Quick test_event_equal_distinguishes;
          Alcotest.test_case "packed roundtrip" `Quick test_event_packed_roundtrip_equal;
        ] );
      ( "escape",
        [
          Alcotest.test_case "text" `Quick test_escape_text;
          Alcotest.test_case "attr" `Quick test_escape_attr;
          Alcotest.test_case "entities" `Quick test_decode_entity;
        ] );
      ( "parser",
        [
          Alcotest.test_case "minimal" `Quick test_parse_minimal;
          Alcotest.test_case "nested with text" `Quick test_parse_nested_with_text;
          Alcotest.test_case "attributes" `Quick test_parse_attributes;
          Alcotest.test_case "attr entities" `Quick test_parse_attr_entities;
          Alcotest.test_case "text entities" `Quick test_parse_text_entities;
          Alcotest.test_case "cdata" `Quick test_parse_cdata;
          Alcotest.test_case "comments and PIs" `Quick test_parse_comments_and_pis;
          Alcotest.test_case "doctype" `Quick test_parse_doctype;
          Alcotest.test_case "whitespace dropped" `Quick test_parse_whitespace_dropped;
          Alcotest.test_case "whitespace kept" `Quick test_parse_whitespace_kept;
          Alcotest.test_case "peek and depth" `Quick test_parse_peek_and_depth;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "error position" `Quick test_parse_error_position;
          Alcotest.test_case "reader io counting" `Quick test_parse_from_reader_counts_io;
        ] );
      ( "writer",
        [
          Alcotest.test_case "basic" `Quick test_writer_basic;
          Alcotest.test_case "escaping roundtrip" `Quick test_writer_escaping_roundtrip;
          Alcotest.test_case "newline normalization" `Quick test_newline_normalization;
          Alcotest.test_case "declaration" `Quick test_writer_decl;
          Alcotest.test_case "unbalanced" `Quick test_writer_unbalanced;
          Alcotest.test_case "to device" `Quick test_writer_to_device;
        ] );
      ( "tree",
        [
          Alcotest.test_case "roundtrip" `Quick test_tree_roundtrip;
          Alcotest.test_case "stats" `Quick test_tree_stats;
          Alcotest.test_case "map_children" `Quick test_tree_map_children;
          Alcotest.test_case "fold" `Quick test_tree_fold;
          Alcotest.test_case "malformed" `Quick test_tree_malformed;
        ] );
      ("dict", [ Alcotest.test_case "basics" `Quick test_dict ]);
      ( "dtd",
        [
          Alcotest.test_case "parse" `Quick test_dtd_parse;
          Alcotest.test_case "content models" `Quick test_dtd_parse_models;
          Alcotest.test_case "syntax errors" `Quick test_dtd_syntax_errors;
          Alcotest.test_case "names and preload" `Quick test_dtd_names_and_preload;
          Alcotest.test_case "validate ok" `Quick test_dtd_validate_ok;
          Alcotest.test_case "violations" `Quick test_dtd_validate_violations;
          Alcotest.test_case "derivative matching" `Quick test_dtd_validate_derivatives;
          Alcotest.test_case "from parser" `Quick test_dtd_from_parser;
        ] );
      ( "xpath",
        [
          Alcotest.test_case "child steps" `Quick test_xpath_child_steps;
          Alcotest.test_case "descendant" `Quick test_xpath_descendant;
          Alcotest.test_case "predicates" `Quick test_xpath_predicates;
          Alcotest.test_case "parse errors" `Quick test_xpath_parse_errors;
          Alcotest.test_case "to_string roundtrip" `Quick test_xpath_to_string_roundtrip;
          Alcotest.test_case "matches_chain" `Quick test_xpath_matches_chain;
          qcheck prop_xpath_select_agrees_with_chain;
        ] );
      ( "properties",
        [
          qcheck prop_tree_string_roundtrip;
          qcheck prop_write_parse_identity;
          qcheck prop_events_balanced;
          qcheck prop_parser_never_crashes;
          qcheck prop_parser_survives_mutated_xml;
        ] );
    ]
