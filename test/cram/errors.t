CLI error paths: every bad invocation must die with a stable,
one-screen diagnostic and a nonzero exit, never a stack trace.

  $ printf '<r><a id="2"/><a id="1"/></r>' > doc.xml

A malformed device spec is rejected by the option parser, echoing the
spec grammar:

  $ ../../bin/nexsort_cli.exe --device bogus:zz/mem -O @id doc.xml -o out.xml
  nexsort: option '--device': device spec: unknown layer "bogus"; SPEC ::=
           [LAYER/]...BACKEND; BACKEND ::= mem | file:PATH; LAYER ::= stats |
           traced | faulty[:p=P,seed=N] |
           cost[:profile=hdd|ssd][,seek=MS][,read=MS][,write=MS] (example:
           traced/faulty:p=0.001,seed=42/file:/tmp/dev.img)
  Usage: nexsort [OPTION]… INPUT
  Try 'nexsort --help' for more information.
  [124]

An unknown replacement policy lists the valid ones:

  $ ../../bin/nexsort_cli.exe --policy fancy -O @id doc.xml -o out.xml
  nexsort: option '--policy': invalid value 'fancy', expected one of 'lru',
           'clock', 'mru' or 'stack'
  Usage: nexsort [OPTION]… INPUT
  Try 'nexsort --help' for more information.
  [124]

A memory budget too small for the machinery (the sort arena needs room
on top of the stack windows) fails config validation in one line:

  $ ../../bin/nexsort_cli.exe -M 4 -O @id doc.xml -o out.xml
  nexsort: Config: memory_blocks must be at least 8
  [124]

A worker count outside the supported range fails config validation; a
non-numeric one dies in the option parser:

  $ ../../bin/nexsort_cli.exe --jobs 0 -O @id doc.xml -o out.xml
  nexsort: Config: jobs must be between 1 and 64
  [124]

  $ ../../bin/nexsort_cli.exe --jobs many -O @id doc.xml -o out.xml
  nexsort: option '--jobs': invalid value 'many', expected an integer
  Usage: nexsort [OPTION]… INPUT
  Try 'nexsort --help' for more information.
  [124]

A syntactically broken ordering spec:

  $ ../../bin/nexsort_cli.exe -O '(' doc.xml -o out.xml
  nexsort: option '-O': Ordering.of_spec_string: unbalanced parentheses
  Usage: nexsort [OPTION]… INPUT
  Try 'nexsort --help' for more information.
  [124]

And none of these left an output file behind:

  $ test -e out.xml || echo no-output
  no-output
