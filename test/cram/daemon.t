The nexsortd daemon: a long-lived multi-tenant engine serving
line-based sort/merge requests that reuse the CLI flag surface.  Jobs
run concurrently; "wait" (and end of input) joins them in submission
order, which is what makes the output below deterministic.

  $ ../../bin/xmlgen_cli.exe --seed 3 --fanouts 4,4,3 --avg-bytes 60 -o doc.xml
  wrote doc.xml: 69 elements, height 4, 4265 bytes

Clean shutdown with jobs queued: the engine budget (8 blocks) fits one
job at a time, so the second and third submissions sit in the admission
queue; end of input drains everything and exits cleanly.

  $ ../../bin/nexsortd.exe --memory 8 --block-size 256 <<'EOF'
  > sort -B 256 -M 8 doc.xml -o d1.xml --tenant acme
  > sort -B 256 -M 8 doc.xml -o d2.xml --tenant bravo
  > sort -B 256 -M 8 doc.xml -o d3.xml --tenant acme
  > EOF
  [1] queued sort doc.xml tenant=acme
  [2] queued sort doc.xml tenant=bravo
  [3] queued sort doc.xml tenant=acme
  [1] done sort doc.xml -> d1.xml (186 events, 5 subtree sorts)
  [2] done sort doc.xml -> d2.xml (186 events, 5 subtree sorts)
  [3] done sort doc.xml -> d3.xml (186 events, 5 subtree sorts)
  3 jobs: 3 done, 0 cancelled, 0 failed; leaked blocks: 0

Every concurrent job's output is byte-identical to a standalone
single-job CLI run:

  $ ../../bin/nexsort_cli.exe -B 256 -M 8 doc.xml -o ref.xml
  $ cmp d1.xml ref.xml && cmp d2.xml ref.xml && cmp d3.xml ref.xml

Cancelling a queued job wakes it out of the admission queue (this one
could never be admitted: it wants more memory than the engine has);
"status" after "wait" shows the quiescent engine.

  $ ../../bin/nexsortd.exe --memory 8 --block-size 256 <<'EOF'
  > sort -B 256 -M 64 doc.xml -o never.xml --tenant acme
  > cancel 1
  > wait
  > status
  > EOF
  [1] queued sort doc.xml tenant=acme
  [1] cancel requested
  [1] cancelled sort doc.xml
  engine: 0 running, 0 waiting, 0 admitted, 0 completed; leaked blocks: 0
  1 jobs: 0 done, 1 cancelled, 0 failed; leaked blocks: 0

Malformed requests are one-line errors with the CLI error status:

  $ ../../bin/nexsortd.exe --memory 8 <<'EOF'
  > sort --bogus doc.xml
  > EOF
  nexsortd: sort: unknown option '--bogus'.
  0 jobs: 0 done, 0 cancelled, 0 failed; leaked blocks: 0
  [124]

So are cancels of unknown jobs and unknown request verbs:

  $ ../../bin/nexsortd.exe --memory 8 <<'EOF'
  > cancel 7
  > EOF
  nexsortd: cancel: unknown job 7
  0 jobs: 0 done, 0 cancelled, 0 failed; leaked blocks: 0
  [124]

  $ ../../bin/nexsortd.exe --memory 8 <<'EOF'
  > frobnicate now
  > EOF
  nexsortd: unknown request "frobnicate"
  0 jobs: 0 done, 0 cancelled, 0 failed; leaked blocks: 0
  [124]
