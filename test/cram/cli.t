The three command-line tools, end to end.

Generate a small exact-shape document:

  $ ../../bin/xmlgen_cli.exe --fanouts 3,2 --avg-bytes 40 -o doc.xml
  wrote doc.xml: 10 elements, height 3, 428 bytes

Sort it with NEXSORT (tiny memory so the machinery actually runs):

  $ ../../bin/nexsort_cli.exe -B 256 -M 8 -O @id doc.xml -o sorted.xml
  $ test -s sorted.xml && echo ok
  ok

Sorting is idempotent:

  $ ../../bin/nexsort_cli.exe -B 256 -M 8 -O @id sorted.xml -o sorted2.xml
  $ cmp sorted.xml sorted2.xml && echo identical
  identical

The key-path merge-sort baseline produces the same document:

  $ ../../bin/nexsort_cli.exe -a mergesort -B 256 -M 8 -O @id doc.xml -o ms.xml
  $ cmp sorted.xml ms.xml && echo identical
  identical

And so does the internal-memory tree sort:

  $ ../../bin/nexsort_cli.exe -a treesort -O @id doc.xml -o ts.xml
  $ cmp sorted.xml ts.xml && echo identical
  identical

Malformed input is a clean error:

  $ printf '<a><b></a>' > bad.xml
  $ ../../bin/nexsort_cli.exe -O @id bad.xml -o nope.xml
  nexsort: bad.xml:1:11: mismatched end tag </a>, expected </b>
  [124]

Generate the Figure 1 company pair and merge it:

  $ ../../bin/xmlgen_cli.exe --company -o co
  wrote co.personnel.xml and co.payroll.xml
  $ ../../bin/xmlmerge_cli.exe -O '@ID,region=@name,branch=@name' co.personnel.xml co.payroll.xml -o merged.xml
  matched 19 elements, emitted 182 events -> merged.xml
  $ grep -c employee merged.xml > /dev/null && echo has-employees
  has-employees

Batch updates via the merge tool:

  $ printf '<db id="0"><item id="1"/><item id="2"/></db>' > base.xml
  $ printf '<db id="0"><item id="2" __op="delete"/><item id="3"/></db>' > ups.xml
  $ ../../bin/xmlmerge_cli.exe --update -O @id base.xml ups.xml -o updated.xml
  matched 1, deletes 1, replaces 0, no-op deletes 0 -> updated.xml
  $ cat updated.xml
  <db id="0"><item id="1"/><item id="3"/></db>

XSort mode: one-level sorting of targets, including by path expression:

  $ printf '<c><g id="1"><x id="3"/><x id="2"/></g><g id="2"><x id="5"/><x id="4"/></g></c>' > xs.xml
  $ ../../bin/nexsort_cli.exe -a xsort --targets g -B 256 -M 8 xs.xml -o xs1.xml
  $ cat xs1.xml
  <c><g id="1"><x id="2"/><x id="3"/></g><g id="2"><x id="4"/><x id="5"/></g></c>
  $ ../../bin/nexsort_cli.exe -a xsort --select "//g[@id='2']" -B 256 -M 8 xs.xml -o xs2.xml
  $ cat xs2.xml
  <c><g id="1"><x id="3"/><x id="2"/></g><g id="2"><x id="4"/><x id="5"/></g></c>

Compound and descending orderings from the command line:

  $ printf '<r id="0"><e last="Yang" first="Jun"/><e last="Silber" first="Adam"/></r>' > comp.xml
  $ ../../bin/nexsort_cli.exe -O 'e=(@last;@first),@id' -B 256 -M 8 comp.xml -o comp_sorted.xml
  $ cat comp_sorted.xml
  <r id="0"><e last="Silber" first="Adam"/><e last="Yang" first="Jun"/></r>
  $ ../../bin/nexsort_cli.exe --ordering='-@id' -B 256 -M 8 xs.xml -o desc.xml
  $ cat desc.xml
  <c><g id="2"><x id="5"/><x id="4"/></g><g id="1"><x id="3"/><x id="2"/></g></c>

Device stacks from the command line.  The sort's result is independent of
the chosen backend and middleware:

  $ ../../bin/nexsort_cli.exe -B 256 -M 8 -O @id --device traced/mem doc.xml -o dev1.xml
  $ cmp sorted.xml dev1.xml && echo identical
  identical
  $ ../../bin/nexsort_cli.exe -B 256 -M 8 -O @id --device file:dev.img doc.xml -o dev2.xml
  $ cmp sorted.xml dev2.xml && echo identical
  identical

A file-backed stack leaves one image per device (endpoints and the
sorter's internal structures), suffixed with the device's name:

  $ test -s dev.img.input -a -s dev.img.output && echo backing-files-exist
  backing-files-exist

--stats reports the stack and, with a cost layer, simulated I/O time:

  $ ../../bin/nexsort_cli.exe -B 256 -M 8 -O @id --device traced/mem --stats doc.xml -o dev3.xml 2>&1 | grep '^device:'
  device: traced/mem (input layers: observe -> stats)
  $ ../../bin/nexsort_cli.exe -B 256 -M 8 -O @id --device cost:profile=hdd/mem --stats doc.xml -o dev4.xml 2>&1 | grep -c 'simulated io time'
  2

A malformed spec is a clean error quoting the grammar:

  $ ../../bin/nexsort_cli.exe --device bogus doc.xml -o nope.xml 2>&1 | head -n 3
  nexsort: option '--device': device spec: expected a backend (mem or
           file:PATH) last, got "bogus"; SPEC ::= [LAYER/]...BACKEND; BACKEND
           ::= mem | file:PATH; LAYER ::= stats | traced | faulty[:p=P,seed=N]
