Incremental sorted maintenance: xmlmerge --ingest applies a stream of
update documents to a NEXSORTed base through the external priority
queue, flushing batches with single merge passes instead of re-sorts.

  $ cat > base.xml <<'EOF'
  > <catalog><item id="b"><t>beta</t></item><item id="d"><t>delta</t></item><item id="a"><t>alpha</t></item></catalog>
  > EOF
  $ cat > u1.xml <<'EOF'
  > <catalog><item id="c"><t>gamma</t></item><item id="a" __op="delete"/></catalog>
  > EOF
  $ cat > u2.xml <<'EOF'
  > <catalog><item id="d" __op="replace"><t>DELTA</t></item></catalog>
  > EOF

Happy path: each update doc is one flush by default; per-flush progress
lines report batch size, index drops, and the flush's base-device I/O.

  $ ../../bin/xmlmerge_cli.exe --ingest -O @id base.xml u1.xml u2.xml -o out.xml --metrics m.json
  flush 1: 2 ops from 1 docs, 0 index-dropped, io r=1 w=1, base 114B
  flush 2: 1 ops from 1 docs, 0 index-dropped, io r=1 w=1, base 114B
  ingested 2 update docs in 2 flushes -> out.xml
  $ cat out.xml
  <catalog><item id="b"><t>beta</t></item><item id="c"><t>gamma</t></item><item id="d"><t>DELTA</t></item></catalog>

--flush-every batches several update docs into one merge pass:

  $ ../../bin/xmlmerge_cli.exe --ingest -O @id --flush-every 2 base.xml u1.xml u2.xml -o out2.xml
  flush 1: 3 ops from 2 docs, 0 index-dropped, io r=1 w=1, base 114B
  ingested 2 update docs in 1 flushes -> out2.xml
  $ cmp out.xml out2.xml && echo identical
  identical

A batch of deletes whose keys the positional index proves absent skips
the merge pass entirely (zero base I/O, base unchanged):

  $ cat > noop.xml <<'EOF'
  > <catalog><item id="zz" __op="delete"/></catalog>
  > EOF
  $ ../../bin/xmlmerge_cli.exe --ingest -O @id base.xml noop.xml -o out3.xml
  flush 1: 1 ops from 1 docs (skipped), 1 index-dropped, io r=0 w=0, base 114B
  ingested 1 update docs in 1 flushes -> out3.xml
  $ cat out3.xml
  <catalog><item id="a"><t>alpha</t></item><item id="b"><t>beta</t></item><item id="d"><t>delta</t></item></catalog>

The metrics report (schema v3) gains an "ingest" section: a list of
per-flush objects with batch sizes, queue counters, merge report and
I/O deltas.

  $ grep -E '^  "' m.json | sed 's/^  "\([a-z_]*\)".*/\1/'
  schema_version
  tool
  counts
  ingest
  io
  $ sed -n '/^  "counts"/,/^  }/p' m.json
    "counts": {
      "update_docs": 2,
      "flushes": 2,
      "batch_ops": 3,
      "index_dropped": 0,
      "indexed_keys": 3
    },
  $ sed -n '/"ingest"/,/^  \]/p' m.json | grep -E '^      "' | sed 's/^      "\([a-z_]*\)".*/\1/' | sort -u
  base_bytes
  batch_docs
  batch_ops
  flush_io
  index_dropped
  indexed_keys
  merge
  pq
  skipped

Ingestion composes with --device and --policy like the other modes, and
the result is byte-identical under every storage stack:

  $ ../../bin/xmlmerge_cli.exe --ingest -O @id --device stats/mem --policy stack \
  >   base.xml u1.xml u2.xml -o out_dev.xml 2> /dev/null
  $ cmp out.xml out_dev.xml && echo identical
  identical

An injected device fault surfaces as a clean one-line abort:

  $ ../../bin/xmlmerge_cli.exe --ingest -O @id --device faulty:p=1,seed=1/mem \
  >   base.xml u1.xml -o out_fault.xml 2>&1 | head -1
  nexsort-merge: injected device fault: read of block 0
  $ test -e out_fault.xml || echo absent
  absent

A malformed update document is a one-line error with the CLI error
exit code; nothing is written:

  $ cat > bad.xml <<'EOF'
  > <catalog><item id="z">
  > EOF
  $ ../../bin/xmlmerge_cli.exe --ingest -O @id base.xml bad.xml -o out4.xml
  nexsort-merge: 2:1: unclosed element <item>
  [124]
  $ test -e out4.xml || echo absent
  absent

--flush-every rejects non-positive values up front:

  $ ../../bin/xmlmerge_cli.exe --ingest -O @id --flush-every 0 base.xml u1.xml -o o.xml
  nexsort-merge: --flush-every must be >= 1
  [124]
