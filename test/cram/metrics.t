Machine-readable run reports (--metrics), schema version 3.

Generate a small document and sort it, streaming the JSON report to
stdout.  The top-level section keys are the report's stable schema:

  $ ../../bin/xmlgen_cli.exe --fanouts 3,2 --avg-bytes 40 -o doc.xml 2> /dev/null
  $ ../../bin/nexsort_cli.exe -B 256 -M 8 -O @id doc.xml -o sorted.xml --metrics - 2> /dev/null > report.json
  $ grep -E '^  "' report.json | sed 's/^  "\([a-z_]*\)".*/\1/'
  schema_version
  tool
  config
  counts
  io
  pager
  arena
  workers
  gc
  phases
  metrics
  timing
  job

Writing a report must not perturb the sort: the output is byte-identical
to a run without --metrics:

  $ ../../bin/nexsort_cli.exe -B 256 -M 8 -O @id doc.xml -o sorted2.xml
  $ cmp sorted.xml sorted2.xml && echo identical
  identical

The config section echoes the effective configuration:

  $ sed -n '/^  "config"/,/^  }/p' report.json
    "config": {
      "block_size": 256,
      "memory_blocks": 8,
      "threshold": 512,
      "depth_limit": null,
      "degeneration": true,
      "root_fusion": true,
      "encoding": "dict",
      "data_stack_blocks": 1,
      "path_stack_blocks": 2,
      "keep_whitespace": false,
      "device": "mem",
      "policy": "lru",
      "jobs": 1
    },

The io section carries the paper's per-phase I/O breakdown (§4.2); its
keys are stable, the counts are deterministic for a fixed input and
configuration:

  $ sed -n '/^  "io"/,/^  }/p' report.json | grep -E '^    "' | sed 's/^    "\([a-z_]*\)".*/\1/'
  input
  subtree_sorts
  stack_paging
  runs
  output
  total
  components

NEXSORT itself pages its stacks directly, so its buffer-pool section is
all zeros (kept for schema stability; the indexed merge fills it in):

  $ sed -n '/^  "pager"/,/^  }/p' report.json
    "pager": {
      "hits": 0,
      "misses": 0,
      "evictions": 0,
      "writebacks": 0
    },

The span tree aggregates repeated phases: whatever the input, the root
span is the sort and the phase names come from the paper's pipeline:

  $ grep -o '"name": "[a-z_]*"' report.json | sort -u
  "name": "input_scan"
  "name": "output"
  "name": "root_sort"
  "name": "sort"

Volatile values live only under timing (wall-clock seconds) and in span
wall_s fields; everything else in the report is deterministic:

  $ grep -c '"wall_s"' report.json > /dev/null && echo has-timing
  has-timing

A .ndjson path selects newline-delimited JSON, one section per line,
each line a self-contained object repeating the schema version:

  $ ../../bin/nexsort_cli.exe -B 256 -M 8 -O @id doc.xml -o sorted3.xml --metrics report.ndjson 2> /dev/null
  $ wc -l < report.ndjson
  11
  $ sed 's/.*"section":"\([a-z_]*\)".*/\1/' report.ndjson
  config
  counts
  io
  pager
  arena
  workers
  gc
  phases
  metrics
  timing
  job
