Event tracing: --trace writes a Chrome trace_event file, nextrace
analyses it, and every failure path dies with a one-line diagnostic.

  $ printf '<r><a id="2"/><a id="1"/><a id="3"/></r>' > doc.xml

A traced sort writes a loadable trace; nextrace --check validates the
JSON and summarises it:

  $ ../../bin/nexsort_cli.exe -O @id --trace t.json doc.xml -o out.xml
  $ ../../bin/nextrace.exe --check t.json
  trace ok: 22 events, 1 tracks, 0 dropped

The profile summary surfaces the sorter's GC counters (values are
run-dependent, so only count them):

  $ ../../bin/nextrace.exe t.json | grep -c 'gc\.'
  5

An unwritable trace path fails up front, before any sorting work:

  $ ../../bin/nexsort_cli.exe -O @id --trace /nonexistent/dir/t.json doc.xml -o out2.xml
  nexsort: /nonexistent/dir/t.json: No such file or directory
  [124]
  $ test -f out2.xml
  [1]

xmlmerge takes the same flag and the same failure path:

  $ ../../bin/xmlmerge_cli.exe --trace /nonexistent/dir/t.json -O @id doc.xml doc.xml
  nexsort-merge: /nonexistent/dir/t.json: No such file or directory
  [124]

nextrace rejects a file that is not JSON:

  $ echo 'garbage' > garbage.json
  $ ../../bin/nextrace.exe garbage.json
  nextrace: garbage.json: not a trace (Obs.Json: unexpected 'g' at offset 0)
  [124]

...a JSON file that is not a trace:

  $ echo '{"hello": 1}' > nottrace.json
  $ ../../bin/nextrace.exe nottrace.json
  nextrace: nottrace.json: not a trace (missing traceEvents array)
  [124]

...and a trace truncated mid-write:

  $ head -c 120 t.json > cut.json
  $ ../../bin/nextrace.exe cut.json
  nextrace: cut.json: not a trace (Obs.Json: expected ',' or '}' at offset 120)
  [124]

A missing file is a plain one-liner too:

  $ ../../bin/nextrace.exe absent.json
  nextrace: absent.json: No such file or directory
  [124]
