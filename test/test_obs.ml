(* lib/obs: JSON codec, metrics registry, histograms, spans, reports. *)

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Json *)

let test_json_roundtrip () =
  let v =
    Obs.Json.Obj
      [
        ("null", Obs.Json.Null);
        ("t", Obs.Json.Bool true);
        ("n", Obs.Json.Int (-42));
        ("f", Obs.Json.Float 1.5);
        ("s", Obs.Json.Str "a \"quoted\"\nline\twith \\ unicode \xc3\xa9");
        ("l", Obs.Json.List [ Obs.Json.Int 1; Obs.Json.Obj []; Obs.Json.List [] ]);
      ]
  in
  let reparse s = Obs.Json.of_string s in
  check Alcotest.bool "pretty round-trip" true (reparse (Obs.Json.to_string v) = v);
  check Alcotest.bool "minified round-trip" true
    (reparse (Obs.Json.to_string ~minify:true v) = v)

let test_json_numbers () =
  check Alcotest.bool "int stays int" true (Obs.Json.of_string "17" = Obs.Json.Int 17);
  check Alcotest.bool "dot makes float" true (Obs.Json.of_string "17.0" = Obs.Json.Float 17.);
  check Alcotest.bool "exponent makes float" true (Obs.Json.of_string "1e2" = Obs.Json.Float 100.);
  (* non-finite floats must not produce unparseable output *)
  check Alcotest.string "nan is null" "null" (Obs.Json.to_string (Obs.Json.Float nan));
  check Alcotest.string "inf is null" "null" (Obs.Json.to_string (Obs.Json.Float infinity))

let test_json_member () =
  let v = Obs.Json.of_string {|{"a": {"b": 3}, "c": [1]}|} in
  (match Obs.Json.member "a" v with
  | Some inner -> check Alcotest.bool "nested" true (Obs.Json.member "b" inner = Some (Obs.Json.Int 3))
  | None -> Alcotest.fail "member a");
  check Alcotest.bool "missing" true (Obs.Json.member "zz" v = None);
  check Alcotest.bool "non-object" true (Obs.Json.member "x" (Obs.Json.Int 1) = None)

let test_json_escapes () =
  check Alcotest.bool "unicode escape" true
    (Obs.Json.of_string {|"éA"|} = Obs.Json.Str "\xc3\xa9A");
  check Alcotest.bool "surrogate pair" true
    (Obs.Json.of_string {|"😀"|} = Obs.Json.Str "\xf0\x9f\x98\x80");
  check Alcotest.bool "bad input raises" true
    (match Obs.Json.of_string "{" with exception Failure _ -> true | _ -> false)

(* ------------------------------------------------------------------ *)
(* Histogram: log2 buckets, 0 and max_int edge cases *)

let test_histogram_edges () =
  check Alcotest.int "zero -> bucket 0" 0 (Obs.Histogram.bucket_index 0);
  check Alcotest.int "negative -> bucket 0" 0 (Obs.Histogram.bucket_index (-5));
  check Alcotest.int "one" 1 (Obs.Histogram.bucket_index 1);
  check Alcotest.int "two" 2 (Obs.Histogram.bucket_index 2);
  check Alcotest.int "three" 2 (Obs.Histogram.bucket_index 3);
  check Alcotest.int "four" 3 (Obs.Histogram.bucket_index 4);
  check Alcotest.int "max_int lands in the last bucket" 62 (Obs.Histogram.bucket_index max_int)

let test_histogram_observe () =
  let r = Obs.Registry.create () in
  let h = Obs.Registry.histogram r ~unit_:"bytes" "h" in
  List.iter (Obs.Histogram.observe h) [ 0; 1; 1; 3; max_int ];
  check Alcotest.int "count" 5 (Obs.Histogram.count h);
  check Alcotest.bool "sum does not overflow silently" true
    (Obs.Histogram.sum h = max_int + 5 (* wraps; recorded as-is *) || Obs.Histogram.sum h > 0);
  check Alcotest.int "min" 0 (Obs.Histogram.min_value h);
  check Alcotest.int "max" max_int (Obs.Histogram.max_value h);
  let buckets = Obs.Histogram.buckets h in
  check Alcotest.int "non-empty buckets" 4 (List.length buckets);
  (match List.rev buckets with
  | (bound, count) :: _ ->
      check Alcotest.int "last bound is max_int" max_int bound;
      check Alcotest.int "last count" 1 count
  | [] -> Alcotest.fail "no buckets");
  match buckets with
  | (bound0, count0) :: _ ->
      check Alcotest.int "bucket 0 bound" 1 bound0;
      check Alcotest.int "bucket 0 holds the zero" 1 count0
  | [] -> Alcotest.fail "no buckets"

(* ------------------------------------------------------------------ *)
(* Registry: counters, gauges, snapshots *)

let test_registry_counters () =
  let r = Obs.Registry.create () in
  let c = Obs.Registry.counter r ~unit_:"events" "c" in
  Obs.Counter.incr c;
  Obs.Counter.add c 4;
  check Alcotest.int "value" 5 (Obs.Counter.value c);
  let c' = Obs.Registry.counter r ~unit_:"events" "c" in
  Obs.Counter.incr c';
  check Alcotest.int "find-or-create shares state" 6 (Obs.Counter.value c);
  check Alcotest.bool "kind clash rejected" true
    (match Obs.Registry.histogram r "c" with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_registry_snapshot_diff () =
  let r = Obs.Registry.create () in
  let c = Obs.Registry.counter r "c" in
  let g = ref 10. in
  Obs.Registry.gauge r "g" (fun () -> !g);
  let h = Obs.Registry.histogram r "h" in
  Obs.Counter.add c 3;
  Obs.Histogram.observe h 7;
  let before = Obs.Registry.snapshot r in
  Obs.Counter.add c 2;
  g := 25.;
  Obs.Histogram.observe h 1;
  let now = Obs.Registry.snapshot r in
  let d = Obs.Registry.diff now before in
  check (Alcotest.float 1e-9) "counter delta" 2. (List.assoc "c" d);
  check (Alcotest.float 1e-9) "gauge delta" 15. (List.assoc "g" d);
  check (Alcotest.float 1e-9) "histogram count delta" 1. (List.assoc "h.count" d);
  check (Alcotest.float 1e-9) "histogram sum delta" 1. (List.assoc "h.sum" d);
  (* snapshot -> json -> snapshot round-trip *)
  let rt = Obs.Registry.snapshot_of_json (Obs.Registry.snapshot_to_json now) in
  check Alcotest.bool "snapshot json round-trip" true (rt = now);
  (* gauge re-registration replaces the callback *)
  Obs.Registry.gauge r "g" (fun () -> 1.);
  check (Alcotest.float 1e-9) "gauge replaced" 1. (List.assoc "g" (Obs.Registry.snapshot r))

(* ------------------------------------------------------------------ *)
(* Spans: nesting, merging, exception safety *)

let fake_meters () =
  let io = Extmem.Io_stats.create () in
  let sim = ref 0. in
  (io, sim, (fun () -> Extmem.Io_stats.snapshot io), fun () -> !sim)

let test_spans_nesting_and_merge () =
  let io, sim, io_m, sim_m = fake_meters () in
  let clock = ref 0. in
  let t = Obs.Spans.create ~clock:(fun () -> !clock) ~io:io_m ~sim_ms:sim_m "root" in
  check Alcotest.int "root open" 1 (Obs.Spans.depth t);
  for _ = 1 to 3 do
    Obs.Spans.with_span t "outer" (fun () ->
        clock := !clock +. 1.;
        Extmem.Io_stats.record_read io;
        Obs.Spans.with_span t "inner" (fun () ->
            sim := !sim +. 2.;
            Extmem.Io_stats.record_write io))
  done;
  let root = Obs.Spans.close t in
  check Alcotest.int "one merged child" 1 (List.length root.Obs.Span.children);
  let outer = Option.get (Obs.Span.find root "outer") in
  check Alcotest.int "outer entered 3x" 3 outer.Obs.Span.count;
  check (Alcotest.float 1e-9) "outer wall" 3. outer.Obs.Span.wall_s;
  check Alcotest.int "outer reads" 3 outer.Obs.Span.io.Extmem.Io_stats.reads;
  (* parents include children: the writes happened inside inner *)
  check Alcotest.int "outer includes inner writes" 3 outer.Obs.Span.io.Extmem.Io_stats.writes;
  let inner = Option.get (Obs.Span.find outer "inner") in
  check Alcotest.int "inner entered 3x" 3 inner.Obs.Span.count;
  check Alcotest.int "inner writes" 3 inner.Obs.Span.io.Extmem.Io_stats.writes;
  check Alcotest.int "inner no reads" 0 inner.Obs.Span.io.Extmem.Io_stats.reads;
  check (Alcotest.float 1e-9) "inner sim" 6. inner.Obs.Span.sim_ms;
  check Alcotest.int "root totals" 6 (Extmem.Io_stats.total root.Obs.Span.io)

let test_spans_exception_safety () =
  let t = Obs.Spans.create "root" in
  (try Obs.Spans.with_span t "boom" (fun () -> failwith "inside") with Failure _ -> ());
  check Alcotest.int "span popped after raise" 1 (Obs.Spans.depth t);
  (* the phase was still recorded *)
  Obs.Spans.with_span t "ok" (fun () -> ());
  let root = Obs.Spans.close t in
  check Alcotest.bool "raised span recorded" true (Obs.Span.find root "boom" <> None);
  check Alcotest.int "both children" 2 (List.length root.Obs.Span.children)

let test_spans_to_json () =
  let t = Obs.Spans.create "root" in
  Obs.Spans.with_span t "phase" (fun () -> ());
  let j = Obs.Span.to_json (Obs.Spans.close t) in
  check Alcotest.bool "name" true (Obs.Json.member "name" j = Some (Obs.Json.Str "root"));
  match Obs.Json.member "children" j with
  | Some (Obs.Json.List [ child ]) ->
      check Alcotest.bool "child name" true
        (Obs.Json.member "name" child = Some (Obs.Json.Str "phase"))
  | _ -> Alcotest.fail "children"

(* ------------------------------------------------------------------ *)
(* Tracer: record codec, ring discipline, multi-domain integrity *)

module Tracer = Obs.Tracer

(* timestamps/durations below 2^39 ns (~9 minutes) survive the µs float
   encoding AND the 12-significant-digit JSON text exactly — the domain
   real runs live in; Count values are plain JSON ints, exact at any
   magnitude *)
let tracer_record_gen =
  let open QCheck.Gen in
  let ts = map (fun n -> n land ((1 lsl 39) - 1)) int in
  int_range 0 4 >>= fun k ->
  ts >>= fun r_ts_ns ->
  oneofl [ "sort"; "read:input"; "worker.idle"; "é \"quoted\"" ] >>= fun r_name ->
  (match k with 3 -> int | 4 -> ts | _ -> return 0) >>= fun r_value ->
  let r_kind =
    match k with
    | 0 -> Tracer.Begin
    | 1 -> Tracer.End
    | 2 -> Tracer.Instant
    | 3 -> Tracer.Count
    | _ -> Tracer.Complete
  in
  return { Tracer.r_kind; r_name; r_ts_ns; r_value }

let tracer_record_print r =
  Printf.sprintf "{kind=%s; name=%S; ts=%d; value=%d}"
    (match r.Tracer.r_kind with
    | Tracer.Begin -> "B"
    | Tracer.End -> "E"
    | Tracer.Instant -> "i"
    | Tracer.Count -> "C"
    | Tracer.Complete -> "X")
    r.Tracer.r_name r.Tracer.r_ts_ns r.Tracer.r_value

let test_tracer_record_roundtrip =
  QCheck.Test.make ~name:"record json round-trip" ~count:500
    (QCheck.make ~print:tracer_record_print tracer_record_gen)
    (fun r ->
      (* through the wire format: serialize, re-parse the text, decode *)
      let j = Obs.Json.of_string (Obs.Json.to_string (Tracer.record_to_json ~tid:3 r)) in
      let r', tid = Tracer.record_of_json j in
      r' = r && tid = 3)

let trace_events j =
  match Obs.Json.member "traceEvents" j with
  | Some (Obs.Json.List l) -> l
  | _ -> Alcotest.fail "no traceEvents list"

let test_tracer_overflow () =
  let t = Tracer.create ~capacity:4 () in
  let id = Tracer.intern t "tick" in
  for _ = 1 to 10 do
    Tracer.instant t id
  done;
  check Alcotest.int "ring keeps capacity, drops the rest" 6 (Tracer.dropped t);
  let j = Tracer.to_json t in
  let events = trace_events j in
  (* the flushed trace accounts every drop: a trace.dropped counter on
     the track plus the summary in otherData *)
  let drops =
    List.filter_map
      (fun e ->
        match Tracer.record_of_json e with
        | { Tracer.r_kind = Tracer.Count; r_name = "trace.dropped"; r_value; _ }, _ ->
            Some r_value
        | _ -> None
        | exception Failure _ -> None)
      events
  in
  check (Alcotest.list Alcotest.int) "trace.dropped counter" [ 6 ] drops;
  (match Obs.Json.member "otherData" j with
  | Some od ->
      check Alcotest.bool "otherData.dropped" true
        (Obs.Json.member "dropped" od = Some (Obs.Json.Int 6))
  | None -> Alcotest.fail "no otherData");
  (* metadata events name the track and are rejected by the record codec *)
  (match events with
  | meta :: _ ->
      check Alcotest.bool "first event is thread_name metadata" true
        (Obs.Json.member "ph" meta = Some (Obs.Json.Str "M"));
      check Alcotest.bool "metadata rejected by record codec" true
        (match Tracer.record_of_json meta with exception Failure _ -> true | _ -> false)
  | [] -> Alcotest.fail "empty trace");
  Tracer.reset t;
  check Alcotest.int "reset clears dropped" 0 (Tracer.dropped t);
  (* the null tracer swallows everything without allocating a ring *)
  Tracer.instant_s Tracer.null "tick";
  check Alcotest.int "null tracer drops nothing" 0 (Tracer.dropped Tracer.null)

let test_tracer_multi_domain () =
  let t = Tracer.create ~capacity:16384 () in
  let n = 10_000 in
  let worker i () =
    Tracer.register_track t (Printf.sprintf "w%d" i);
    let id = Tracer.intern t (Printf.sprintf "seq%d" i) in
    for v = 0 to n - 1 do
      Tracer.counter t id v
    done
  in
  let domains = List.init 4 (fun i -> Domain.spawn (worker i)) in
  List.iter Domain.join domains;
  check Alcotest.int "nothing dropped" 0 (Tracer.dropped t);
  (* each worker's ring must replay its exact emission sequence: a torn
     or misrouted record would corrupt or interleave the value runs *)
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun e ->
      match Tracer.record_of_json e with
      | { Tracer.r_kind = Tracer.Count; r_name; r_value; _ }, _
        when String.length r_name >= 3 && String.sub r_name 0 3 = "seq" ->
          let l =
            match Hashtbl.find_opt tbl r_name with
            | Some l -> l
            | None ->
                let l = ref [] in
                Hashtbl.add tbl r_name l;
                l
          in
          l := r_value :: !l
      | _ -> ()
      | exception Failure _ -> ())
    (trace_events (Tracer.to_json t));
  check Alcotest.int "four worker sequences" 4 (Hashtbl.length tbl);
  let expect = List.init n Fun.id in
  Hashtbl.iter
    (fun name l -> check (Alcotest.list Alcotest.int) (name ^ " intact") expect (List.rev !l))
    tbl

(* ------------------------------------------------------------------ *)
(* Report *)

let test_report_sections () =
  let r = Obs.Report.create ~tool:"test" in
  Obs.Report.add r "a" (Obs.Json.Int 1);
  Obs.Report.add r "b" (Obs.Json.Int 2);
  Obs.Report.add r "a" (Obs.Json.Int 3);
  let j = Obs.Json.of_string (Obs.Report.to_string r) in
  check Alcotest.bool "schema_version" true
    (Obs.Json.member "schema_version" j = Some (Obs.Json.Int Obs.Report.schema_version));
  check Alcotest.bool "tool" true (Obs.Json.member "tool" j = Some (Obs.Json.Str "test"));
  check Alcotest.bool "replaced in place" true (Obs.Json.member "a" j = Some (Obs.Json.Int 3));
  (match j with
  | Obs.Json.Obj kvs ->
      check
        Alcotest.(list string)
        "section order preserved" [ "schema_version"; "tool"; "a"; "b" ] (List.map fst kvs)
  | _ -> Alcotest.fail "not an object");
  let lines = String.split_on_char '\n' (String.trim (Obs.Report.to_ndjson r)) in
  check Alcotest.int "ndjson: one line per section" 2 (List.length lines);
  List.iter
    (fun line ->
      match Obs.Json.of_string line with
      | Obs.Json.Obj _ -> ()
      | _ -> Alcotest.fail "ndjson line not an object")
    lines

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "numbers" `Quick test_json_numbers;
          Alcotest.test_case "member" `Quick test_json_member;
          Alcotest.test_case "escapes" `Quick test_json_escapes;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "bucket edges (0, max_int)" `Quick test_histogram_edges;
          Alcotest.test_case "observe" `Quick test_histogram_observe;
        ] );
      ( "registry",
        [
          Alcotest.test_case "counters" `Quick test_registry_counters;
          Alcotest.test_case "snapshot and diff" `Quick test_registry_snapshot_diff;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting and merging" `Quick test_spans_nesting_and_merge;
          Alcotest.test_case "exception safety" `Quick test_spans_exception_safety;
          Alcotest.test_case "to_json" `Quick test_spans_to_json;
        ] );
      ( "tracer",
        [
          QCheck_alcotest.to_alcotest test_tracer_record_roundtrip;
          Alcotest.test_case "ring overflow accounting" `Quick test_tracer_overflow;
          Alcotest.test_case "multi-domain hammer" `Quick test_tracer_multi_domain;
        ] );
      ( "report", [ Alcotest.test_case "sections" `Quick test_report_sections ] );
    ]
