(* Tests for the generic external merge sort. *)

let check = Alcotest.check

let qcheck = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Multiway merge *)

let of_list l =
  let r = ref l in
  fun () ->
    match !r with
    | [] -> None
    | x :: tl ->
        r := tl;
        Some x

let collect f =
  let acc = ref [] in
  f (fun x -> acc := x :: !acc);
  List.rev !acc

let test_multiway_basic () =
  let inputs = [| of_list [ "a"; "d"; "f" ]; of_list [ "b"; "c" ]; of_list [ "e" ] |] in
  let got = collect (fun output -> Extsort.Multiway.merge ~cmp:compare ~inputs ~output ()) in
  check (Alcotest.list Alcotest.string) "merged" [ "a"; "b"; "c"; "d"; "e"; "f" ] got

let test_multiway_empty_inputs () =
  let got =
    collect (fun output ->
        Extsort.Multiway.merge ~cmp:compare ~inputs:[| of_list []; of_list [ "x" ]; of_list [] |]
          ~output ())
  in
  check (Alcotest.list Alcotest.string) "merged" [ "x" ] got;
  let got2 = collect (fun output -> Extsort.Multiway.merge ~cmp:compare ~inputs:[||] ~output ()) in
  check (Alcotest.list Alcotest.string) "no inputs" [] got2

let test_multiway_stability () =
  (* equal keys: stream 0 before stream 1 *)
  let cmp a b = compare (String.length a) (String.length b) in
  let got =
    collect (fun output ->
        Extsort.Multiway.merge ~cmp ~inputs:[| of_list [ "aa" ]; of_list [ "bb" ] |] ~output ())
  in
  check (Alcotest.list Alcotest.string) "stable" [ "aa"; "bb" ] got

let prop_multiway_equals_list_merge =
  QCheck.Test.make ~name:"multiway merge = sort of concatenation" ~count:300
    QCheck.(list_of_size (QCheck.Gen.int_bound 6) (list (string_of_size QCheck.Gen.small_nat)))
    (fun lists ->
      let sorted_lists = List.map (List.sort compare) lists in
      let inputs = Array.of_list (List.map of_list sorted_lists) in
      let got = collect (fun output -> Extsort.Multiway.merge ~cmp:compare ~inputs ~output ()) in
      got = List.sort compare (List.concat lists))

let test_multiway_budget_reserved () =
  (* fan-in buffers are leased from the arena's budget for the merge's
     duration and released afterwards *)
  let budget = Extmem.Memory_budget.create ~blocks:4 ~block_size:16 in
  let arena = Extmem.Frame_arena.create ~budget () in
  let peak = ref 0 in
  let first = of_list [ "a" ] in
  let inputs =
    [|
      (fun () ->
        peak := max !peak (Extmem.Memory_budget.used_blocks budget);
        first ());
      of_list [ "b" ];
      of_list [ "c" ];
    |]
  in
  Extsort.Multiway.merge ~arena ~cmp:compare ~inputs ~output:ignore ();
  check Alcotest.bool "fan-in reserved during merge" true (!peak >= 3);
  check Alcotest.int "released after" 0 (Extmem.Memory_budget.used_blocks budget)

let test_multiway_budget_exhausted_names_merge () =
  let budget = Extmem.Memory_budget.create ~blocks:2 ~block_size:16 in
  let arena = Extmem.Frame_arena.create ~budget () in
  let inputs = [| of_list [ "a" ]; of_list [ "b" ]; of_list [ "c" ] |] in
  (try
     Extsort.Multiway.merge ~arena ~cmp:compare ~inputs ~output:ignore ();
     Alcotest.fail "expected Exhausted"
   with Extmem.Memory_budget.Exhausted who ->
     let contains s sub =
       let n = String.length s and m = String.length sub in
       let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
       go 0
     in
     check Alcotest.bool
       (Printf.sprintf "who names the merge (%s)" who)
       true (contains who "merge"));
  check Alcotest.int "nothing leaked" 0 (Extmem.Memory_budget.used_blocks budget)

let test_multiway_pull () =
  let budget = Extmem.Memory_budget.create ~blocks:4 ~block_size:16 in
  let arena = Extmem.Frame_arena.create ~budget () in
  let inputs = [| of_list [ "a"; "c" ]; of_list [ "b"; "d" ] |] in
  let pull, release = Extsort.Multiway.merge_pull ~arena ~cmp:compare ~inputs () in
  check Alcotest.int "fan-in held while streaming" 2
    (Extmem.Memory_budget.used_blocks budget);
  let rec all acc = match pull () with None -> List.rev acc | Some x -> all (x :: acc) in
  check (Alcotest.list Alcotest.string) "merged" [ "a"; "b"; "c"; "d" ] (all []);
  check Alcotest.int "released at exhaustion" 0 (Extmem.Memory_budget.used_blocks budget);
  release ();
  check Alcotest.int "release idempotent" 0 (Extmem.Memory_budget.used_blocks budget)

let test_multiway_pull_early_release () =
  let budget = Extmem.Memory_budget.create ~blocks:4 ~block_size:16 in
  let arena = Extmem.Frame_arena.create ~budget () in
  let inputs = [| of_list [ "a"; "c" ]; of_list [ "b" ] |] in
  let pull, release = Extsort.Multiway.merge_pull ~arena ~cmp:compare ~inputs () in
  check (Alcotest.option Alcotest.string) "first" (Some "a") (pull ());
  release ();
  check Alcotest.int "released early" 0 (Extmem.Memory_budget.used_blocks budget)

(* ------------------------------------------------------------------ *)
(* Heap *)

let test_heap_basic () =
  let h = Extsort.Heap.create ~less:(fun a b -> a < b) in
  check Alcotest.bool "empty" true (Extsort.Heap.is_empty h);
  List.iter (Extsort.Heap.push h) [ 5; 1; 4; 2; 3 ];
  check Alcotest.int "length" 5 (Extsort.Heap.length h);
  check Alcotest.int "peek" 1 (Extsort.Heap.peek h);
  let drained = List.init 5 (fun _ -> Extsort.Heap.pop h) in
  check (Alcotest.list Alcotest.int) "sorted drain" [ 1; 2; 3; 4; 5 ] drained;
  Alcotest.check_raises "pop empty" (Invalid_argument "Heap.pop: empty") (fun () ->
      ignore (Extsort.Heap.pop h))

let prop_heap_drains_sorted =
  QCheck.Test.make ~name:"heap drains in sorted order" ~count:300 QCheck.(list int)
    (fun xs ->
      let h = Extsort.Heap.create ~less:(fun a b -> a < b) in
      List.iter (Extsort.Heap.push h) xs;
      let drained = List.init (List.length xs) (fun _ -> Extsort.Heap.pop h) in
      drained = List.sort compare xs)

(* ------------------------------------------------------------------ *)
(* External sort *)

let run_sort ?run_formation ?(block_size = 64) ?(blocks = 4) records =
  let budget = Extmem.Memory_budget.create ~blocks ~block_size in
  let temp = Extmem.Device.in_memory ~block_size () in
  let out = ref [] in
  let stats =
    Extsort.External_sort.sort ?run_formation ~budget ~temp ~cmp:compare
      ~input:(of_list records)
      ~output:(fun r -> out := r :: !out)
      ()
  in
  (List.rev !out, stats, temp, budget)

let test_extsort_small_in_memory () =
  let got, stats, temp, _ = run_sort [ "pear"; "apple"; "fig" ] in
  check (Alcotest.list Alcotest.string) "sorted" [ "apple"; "fig"; "pear" ] got;
  check Alcotest.int "no runs" 0 stats.Extsort.External_sort.initial_runs;
  check Alcotest.int "no merge passes" 0 stats.Extsort.External_sort.merge_passes;
  check Alcotest.int "no temp io" 0 (Extmem.Io_stats.total (Extmem.Device.stats temp))

let test_extsort_spills () =
  let records = List.init 200 (fun i -> Printf.sprintf "rec-%04d" (997 * i mod 200)) in
  let got, stats, temp, budget = run_sort ~block_size:32 ~blocks:3 records in
  check (Alcotest.list Alcotest.string) "sorted" (List.sort compare records) got;
  check Alcotest.bool "spilled" true (stats.Extsort.External_sort.initial_runs > 1);
  check Alcotest.bool "temp io happened" true (Extmem.Io_stats.total (Extmem.Device.stats temp) > 0);
  check Alcotest.int "records" 200 stats.Extsort.External_sort.records;
  check Alcotest.int "budget released" 0 (Extmem.Memory_budget.used_blocks budget)

let test_extsort_multi_pass () =
  (* tiny memory: fan-in 2, many runs -> multiple passes *)
  let records = List.init 400 (fun i -> Printf.sprintf "%05d" (7919 * i mod 100000)) in
  let got, stats, _, _ = run_sort ~block_size:16 ~blocks:3 records in
  check (Alcotest.list Alcotest.string) "sorted" (List.sort compare records) got;
  check Alcotest.bool "multiple passes" true (stats.Extsort.External_sort.merge_passes > 1)

let test_extsort_duplicates_preserved () =
  let records = [ "b"; "a"; "b"; "a"; "b" ] in
  let got, _, _, _ = run_sort records in
  check (Alcotest.list Alcotest.string) "multiset kept" [ "a"; "a"; "b"; "b"; "b" ] got

let test_extsort_empty_input () =
  let got, stats, _, _ = run_sort [] in
  check (Alcotest.list Alcotest.string) "empty" [] got;
  check Alcotest.int "zero records" 0 stats.Extsort.External_sort.records

let test_extsort_needs_three_blocks () =
  let budget = Extmem.Memory_budget.create ~blocks:2 ~block_size:16 in
  let temp = Extmem.Device.in_memory ~block_size:16 () in
  try
    ignore
      (Extsort.External_sort.sort ~budget ~temp ~cmp:compare ~input:(of_list [ "x" ])
         ~output:ignore ());
    Alcotest.fail "expected Exhausted"
  with Extmem.Memory_budget.Exhausted _ -> ()

let test_extsort_custom_order () =
  let cmp a b = compare b a in
  let budget = Extmem.Memory_budget.create ~blocks:3 ~block_size:16 in
  let temp = Extmem.Device.in_memory ~block_size:16 () in
  let out = ref [] in
  ignore
    (Extsort.External_sort.sort ~budget ~temp ~cmp
       ~input:(of_list (List.init 50 (fun i -> Printf.sprintf "%03d" i)))
       ~output:(fun r -> out := r :: !out)
       ());
  check (Alcotest.list Alcotest.string) "descending"
    (List.init 50 (fun i -> Printf.sprintf "%03d" (49 - i)))
    (List.rev !out)

let test_replacement_selection_correct () =
  let records = List.init 300 (fun i -> Printf.sprintf "%05d" (7919 * i mod 100000)) in
  let got, stats, _, _ =
    run_sort ~run_formation:`Replacement_selection ~block_size:32 ~blocks:3 records
  in
  check (Alcotest.list Alcotest.string) "sorted" (List.sort compare records) got;
  check Alcotest.bool "spilled" true (stats.Extsort.External_sort.initial_runs > 0)

let test_replacement_selection_fewer_runs () =
  (* on random input, replacement selection halves the run count *)
  let records = List.init 600 (fun i -> Printf.sprintf "%05d" (48271 * i mod 99991)) in
  let _, ls, _, _ = run_sort ~run_formation:`Load_sort ~block_size:32 ~blocks:3 records in
  let _, rs, _, _ =
    run_sort ~run_formation:`Replacement_selection ~block_size:32 ~blocks:3 records
  in
  check Alcotest.bool
    (Printf.sprintf "fewer runs (rs %d vs ls %d)" rs.Extsort.External_sort.initial_runs
       ls.Extsort.External_sort.initial_runs)
    true
    (rs.Extsort.External_sort.initial_runs < ls.Extsort.External_sort.initial_runs)

let test_replacement_selection_sorted_input_one_run () =
  (* already-sorted input: replacement selection produces a single run *)
  let records = List.init 400 (fun i -> Printf.sprintf "%05d" i) in
  let got, stats, _, _ =
    run_sort ~run_formation:`Replacement_selection ~block_size:32 ~blocks:3 records
  in
  check (Alcotest.list Alcotest.string) "sorted" records got;
  check Alcotest.int "single run" 1 stats.Extsort.External_sort.initial_runs

let test_replacement_selection_in_memory () =
  let got, stats, temp, _ = run_sort ~run_formation:`Replacement_selection [ "c"; "a"; "b" ] in
  check (Alcotest.list Alcotest.string) "sorted" [ "a"; "b"; "c" ] got;
  check Alcotest.int "no runs" 0 stats.Extsort.External_sort.initial_runs;
  check Alcotest.int "no temp io" 0 (Extmem.Io_stats.total (Extmem.Device.stats temp))

let prop_replacement_selection_equals_list_sort =
  QCheck.Test.make ~name:"replacement selection = List.sort" ~count:100
    QCheck.(pair (int_range 16 64) (list (string_of_size QCheck.Gen.small_nat)))
    (fun (block_size, records) ->
      let got, _, _, _ =
        run_sort ~run_formation:`Replacement_selection ~block_size ~blocks:3 records
      in
      got = List.sort compare records)

let prop_extsort_equals_list_sort =
  QCheck.Test.make ~name:"external sort = List.sort for any input and geometry" ~count:150
    QCheck.(
      triple (int_range 16 64) (int_range 3 6)
        (list (string_of_size QCheck.Gen.small_nat)))
    (fun (block_size, blocks, records) ->
      let got, _, _, _ = run_sort ~block_size ~blocks records in
      got = List.sort compare records)

let prop_extsort_io_bounded =
  (* I/O on the temp device is bounded by 2 * (passes + 1) * data blocks,
     a loose form of the n log_m n bound. *)
  QCheck.Test.make ~name:"external sort temp I/O is O(passes * n)" ~count:50
    QCheck.(list_of_size (QCheck.Gen.int_range 50 300) (string_of_size (QCheck.Gen.return 8)))
    (fun records ->
      let block_size = 32 and blocks = 3 in
      let _, stats, temp, _ = run_sort ~block_size ~blocks records in
      let data_bytes =
        List.fold_left (fun a r -> a + String.length r + 2 (* frame *)) 0 records
      in
      let data_blocks = (data_bytes / block_size) + 2 in
      let ios = Extmem.Io_stats.total (Extmem.Device.stats temp) in
      let passes = stats.Extsort.External_sort.merge_passes in
      (* every run occupies at least one block, so allow one block of
         rounding per initial run per pass on top of the data volume *)
      ios <= 2 * (passes + 1) * (data_blocks + stats.Extsort.External_sort.initial_runs))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "extsort"
    [
      ( "multiway",
        [
          Alcotest.test_case "basic" `Quick test_multiway_basic;
          Alcotest.test_case "empty inputs" `Quick test_multiway_empty_inputs;
          Alcotest.test_case "stability" `Quick test_multiway_stability;
          Alcotest.test_case "budget reserved" `Quick test_multiway_budget_reserved;
          Alcotest.test_case "budget exhausted names merge" `Quick
            test_multiway_budget_exhausted_names_merge;
          Alcotest.test_case "pull merge" `Quick test_multiway_pull;
          Alcotest.test_case "pull early release" `Quick test_multiway_pull_early_release;
          qcheck prop_multiway_equals_list_merge;
        ] );
      ( "heap",
        [
          Alcotest.test_case "basic" `Quick test_heap_basic;
          qcheck prop_heap_drains_sorted;
        ] );
      ( "replacement_selection",
        [
          Alcotest.test_case "correct" `Quick test_replacement_selection_correct;
          Alcotest.test_case "fewer runs" `Quick test_replacement_selection_fewer_runs;
          Alcotest.test_case "sorted input one run" `Quick
            test_replacement_selection_sorted_input_one_run;
          Alcotest.test_case "in-memory fast path" `Quick test_replacement_selection_in_memory;
          qcheck prop_replacement_selection_equals_list_sort;
        ] );
      ( "external_sort",
        [
          Alcotest.test_case "in-memory fast path" `Quick test_extsort_small_in_memory;
          Alcotest.test_case "spills to runs" `Quick test_extsort_spills;
          Alcotest.test_case "multi-pass" `Quick test_extsort_multi_pass;
          Alcotest.test_case "duplicates" `Quick test_extsort_duplicates_preserved;
          Alcotest.test_case "empty input" `Quick test_extsort_empty_input;
          Alcotest.test_case "needs three blocks" `Quick test_extsort_needs_three_blocks;
          Alcotest.test_case "custom order" `Quick test_extsort_custom_order;
          qcheck prop_extsort_equals_list_sort;
          qcheck prop_extsort_io_bounded;
        ] );
    ]
