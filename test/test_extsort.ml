(* Tests for the generic external merge sort. *)

let check = Alcotest.check

let qcheck = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Multiway merge *)

let of_list l =
  let r = ref l in
  fun () ->
    match !r with
    | [] -> None
    | x :: tl ->
        r := tl;
        Some x

let collect f =
  let acc = ref [] in
  f (fun x -> acc := x :: !acc);
  List.rev !acc

let test_multiway_basic () =
  let inputs = [| of_list [ "a"; "d"; "f" ]; of_list [ "b"; "c" ]; of_list [ "e" ] |] in
  let got = collect (fun output -> Extsort.Multiway.merge ~cmp:compare ~inputs ~output ()) in
  check (Alcotest.list Alcotest.string) "merged" [ "a"; "b"; "c"; "d"; "e"; "f" ] got

let test_multiway_empty_inputs () =
  let got =
    collect (fun output ->
        Extsort.Multiway.merge ~cmp:compare ~inputs:[| of_list []; of_list [ "x" ]; of_list [] |]
          ~output ())
  in
  check (Alcotest.list Alcotest.string) "merged" [ "x" ] got;
  let got2 = collect (fun output -> Extsort.Multiway.merge ~cmp:compare ~inputs:[||] ~output ()) in
  check (Alcotest.list Alcotest.string) "no inputs" [] got2

let test_multiway_stability () =
  (* equal keys: stream 0 before stream 1 *)
  let cmp a b = compare (String.length a) (String.length b) in
  let got =
    collect (fun output ->
        Extsort.Multiway.merge ~cmp ~inputs:[| of_list [ "aa" ]; of_list [ "bb" ] |] ~output ())
  in
  check (Alcotest.list Alcotest.string) "stable" [ "aa"; "bb" ] got

let prop_multiway_equals_list_merge =
  QCheck.Test.make ~name:"multiway merge = sort of concatenation" ~count:300
    QCheck.(list_of_size (QCheck.Gen.int_bound 6) (list (string_of_size QCheck.Gen.small_nat)))
    (fun lists ->
      let sorted_lists = List.map (List.sort compare) lists in
      let inputs = Array.of_list (List.map of_list sorted_lists) in
      let got = collect (fun output -> Extsort.Multiway.merge ~cmp:compare ~inputs ~output ()) in
      got = List.sort compare (List.concat lists))

let test_multiway_budget_reserved () =
  (* fan-in buffers are leased from the arena's budget for the merge's
     duration and released afterwards *)
  let budget = Extmem.Memory_budget.create ~blocks:4 ~block_size:16 in
  let arena = Extmem.Frame_arena.create ~budget () in
  let peak = ref 0 in
  let first = of_list [ "a" ] in
  let inputs =
    [|
      (fun () ->
        peak := max !peak (Extmem.Memory_budget.used_blocks budget);
        first ());
      of_list [ "b" ];
      of_list [ "c" ];
    |]
  in
  Extsort.Multiway.merge ~arena ~cmp:compare ~inputs ~output:ignore ();
  check Alcotest.bool "fan-in reserved during merge" true (!peak >= 3);
  check Alcotest.int "released after" 0 (Extmem.Memory_budget.used_blocks budget)

let test_multiway_budget_exhausted_names_merge () =
  let budget = Extmem.Memory_budget.create ~blocks:2 ~block_size:16 in
  let arena = Extmem.Frame_arena.create ~budget () in
  let inputs = [| of_list [ "a" ]; of_list [ "b" ]; of_list [ "c" ] |] in
  (try
     Extsort.Multiway.merge ~arena ~cmp:compare ~inputs ~output:ignore ();
     Alcotest.fail "expected Exhausted"
   with Extmem.Memory_budget.Exhausted who ->
     let contains s sub =
       let n = String.length s and m = String.length sub in
       let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
       go 0
     in
     check Alcotest.bool
       (Printf.sprintf "who names the merge (%s)" who)
       true (contains who "merge"));
  check Alcotest.int "nothing leaked" 0 (Extmem.Memory_budget.used_blocks budget)

let test_multiway_pull () =
  let budget = Extmem.Memory_budget.create ~blocks:4 ~block_size:16 in
  let arena = Extmem.Frame_arena.create ~budget () in
  let inputs = [| of_list [ "a"; "c" ]; of_list [ "b"; "d" ] |] in
  let pull, release = Extsort.Multiway.merge_pull ~arena ~cmp:compare ~inputs () in
  check Alcotest.int "fan-in held while streaming" 2
    (Extmem.Memory_budget.used_blocks budget);
  let rec all acc = match pull () with None -> List.rev acc | Some x -> all (x :: acc) in
  check (Alcotest.list Alcotest.string) "merged" [ "a"; "b"; "c"; "d" ] (all []);
  check Alcotest.int "released at exhaustion" 0 (Extmem.Memory_budget.used_blocks budget);
  release ();
  check Alcotest.int "release idempotent" 0 (Extmem.Memory_budget.used_blocks budget)

let test_multiway_pull_early_release () =
  let budget = Extmem.Memory_budget.create ~blocks:4 ~block_size:16 in
  let arena = Extmem.Frame_arena.create ~budget () in
  let inputs = [| of_list [ "a"; "c" ]; of_list [ "b" ] |] in
  let pull, release = Extsort.Multiway.merge_pull ~arena ~cmp:compare ~inputs () in
  check (Alcotest.option Alcotest.string) "first" (Some "a") (pull ());
  release ();
  check Alcotest.int "released early" 0 (Extmem.Memory_budget.used_blocks budget)

(* ------------------------------------------------------------------ *)
(* Heap *)

let test_heap_basic () =
  let h = Extsort.Heap.create ~less:(fun a b -> a < b) in
  check Alcotest.bool "empty" true (Extsort.Heap.is_empty h);
  List.iter (Extsort.Heap.push h) [ 5; 1; 4; 2; 3 ];
  check Alcotest.int "length" 5 (Extsort.Heap.length h);
  check Alcotest.int "peek" 1 (Extsort.Heap.peek h);
  let drained = List.init 5 (fun _ -> Extsort.Heap.pop h) in
  check (Alcotest.list Alcotest.int) "sorted drain" [ 1; 2; 3; 4; 5 ] drained;
  Alcotest.check_raises "pop empty" (Invalid_argument "Heap.pop: empty") (fun () ->
      ignore (Extsort.Heap.pop h))

let prop_heap_drains_sorted =
  QCheck.Test.make ~name:"heap drains in sorted order" ~count:300 QCheck.(list int)
    (fun xs ->
      let h = Extsort.Heap.create ~less:(fun a b -> a < b) in
      List.iter (Extsort.Heap.push h) xs;
      let drained = List.init (List.length xs) (fun _ -> Extsort.Heap.pop h) in
      drained = List.sort compare xs)

(* ------------------------------------------------------------------ *)
(* External sort *)

let run_sort ?run_formation ?(block_size = 64) ?(blocks = 4) records =
  let budget = Extmem.Memory_budget.create ~blocks ~block_size in
  let temp = Extmem.Device.in_memory ~block_size () in
  let out = ref [] in
  let stats =
    Extsort.External_sort.sort ?run_formation ~budget ~temp ~cmp:compare
      ~input:(of_list records)
      ~output:(fun r -> out := r :: !out)
      ()
  in
  (List.rev !out, stats, temp, budget)

let test_extsort_small_in_memory () =
  let got, stats, temp, _ = run_sort [ "pear"; "apple"; "fig" ] in
  check (Alcotest.list Alcotest.string) "sorted" [ "apple"; "fig"; "pear" ] got;
  check Alcotest.int "no runs" 0 stats.Extsort.External_sort.initial_runs;
  check Alcotest.int "no merge passes" 0 stats.Extsort.External_sort.merge_passes;
  check Alcotest.int "no temp io" 0 (Extmem.Io_stats.total (Extmem.Device.stats temp))

let test_extsort_spills () =
  let records = List.init 200 (fun i -> Printf.sprintf "rec-%04d" (997 * i mod 200)) in
  let got, stats, temp, budget = run_sort ~block_size:32 ~blocks:3 records in
  check (Alcotest.list Alcotest.string) "sorted" (List.sort compare records) got;
  check Alcotest.bool "spilled" true (stats.Extsort.External_sort.initial_runs > 1);
  check Alcotest.bool "temp io happened" true (Extmem.Io_stats.total (Extmem.Device.stats temp) > 0);
  check Alcotest.int "records" 200 stats.Extsort.External_sort.records;
  check Alcotest.int "budget released" 0 (Extmem.Memory_budget.used_blocks budget)

let test_extsort_multi_pass () =
  (* tiny memory: fan-in 2, many runs -> multiple passes *)
  let records = List.init 400 (fun i -> Printf.sprintf "%05d" (7919 * i mod 100000)) in
  let got, stats, _, _ = run_sort ~block_size:16 ~blocks:3 records in
  check (Alcotest.list Alcotest.string) "sorted" (List.sort compare records) got;
  check Alcotest.bool "multiple passes" true (stats.Extsort.External_sort.merge_passes > 1)

let test_extsort_duplicates_preserved () =
  let records = [ "b"; "a"; "b"; "a"; "b" ] in
  let got, _, _, _ = run_sort records in
  check (Alcotest.list Alcotest.string) "multiset kept" [ "a"; "a"; "b"; "b"; "b" ] got

let test_extsort_empty_input () =
  let got, stats, _, _ = run_sort [] in
  check (Alcotest.list Alcotest.string) "empty" [] got;
  check Alcotest.int "zero records" 0 stats.Extsort.External_sort.records

let test_extsort_needs_three_blocks () =
  let budget = Extmem.Memory_budget.create ~blocks:2 ~block_size:16 in
  let temp = Extmem.Device.in_memory ~block_size:16 () in
  try
    ignore
      (Extsort.External_sort.sort ~budget ~temp ~cmp:compare ~input:(of_list [ "x" ])
         ~output:ignore ());
    Alcotest.fail "expected Exhausted"
  with Extmem.Memory_budget.Exhausted _ -> ()

let test_extsort_custom_order () =
  let cmp a b = compare b a in
  let budget = Extmem.Memory_budget.create ~blocks:3 ~block_size:16 in
  let temp = Extmem.Device.in_memory ~block_size:16 () in
  let out = ref [] in
  ignore
    (Extsort.External_sort.sort ~budget ~temp ~cmp
       ~input:(of_list (List.init 50 (fun i -> Printf.sprintf "%03d" i)))
       ~output:(fun r -> out := r :: !out)
       ());
  check (Alcotest.list Alcotest.string) "descending"
    (List.init 50 (fun i -> Printf.sprintf "%03d" (49 - i)))
    (List.rev !out)

let test_replacement_selection_correct () =
  let records = List.init 300 (fun i -> Printf.sprintf "%05d" (7919 * i mod 100000)) in
  let got, stats, _, _ =
    run_sort ~run_formation:`Replacement_selection ~block_size:32 ~blocks:3 records
  in
  check (Alcotest.list Alcotest.string) "sorted" (List.sort compare records) got;
  check Alcotest.bool "spilled" true (stats.Extsort.External_sort.initial_runs > 0)

let test_replacement_selection_fewer_runs () =
  (* on random input, replacement selection halves the run count *)
  let records = List.init 600 (fun i -> Printf.sprintf "%05d" (48271 * i mod 99991)) in
  let _, ls, _, _ = run_sort ~run_formation:`Load_sort ~block_size:32 ~blocks:3 records in
  let _, rs, _, _ =
    run_sort ~run_formation:`Replacement_selection ~block_size:32 ~blocks:3 records
  in
  check Alcotest.bool
    (Printf.sprintf "fewer runs (rs %d vs ls %d)" rs.Extsort.External_sort.initial_runs
       ls.Extsort.External_sort.initial_runs)
    true
    (rs.Extsort.External_sort.initial_runs < ls.Extsort.External_sort.initial_runs)

let test_replacement_selection_sorted_input_one_run () =
  (* already-sorted input: replacement selection produces a single run *)
  let records = List.init 400 (fun i -> Printf.sprintf "%05d" i) in
  let got, stats, _, _ =
    run_sort ~run_formation:`Replacement_selection ~block_size:32 ~blocks:3 records
  in
  check (Alcotest.list Alcotest.string) "sorted" records got;
  check Alcotest.int "single run" 1 stats.Extsort.External_sort.initial_runs

let test_replacement_selection_in_memory () =
  let got, stats, temp, _ = run_sort ~run_formation:`Replacement_selection [ "c"; "a"; "b" ] in
  check (Alcotest.list Alcotest.string) "sorted" [ "a"; "b"; "c" ] got;
  check Alcotest.int "no runs" 0 stats.Extsort.External_sort.initial_runs;
  check Alcotest.int "no temp io" 0 (Extmem.Io_stats.total (Extmem.Device.stats temp))

let prop_replacement_selection_equals_list_sort =
  QCheck.Test.make ~name:"replacement selection = List.sort" ~count:100
    QCheck.(pair (int_range 16 64) (list (string_of_size QCheck.Gen.small_nat)))
    (fun (block_size, records) ->
      let got, _, _, _ =
        run_sort ~run_formation:`Replacement_selection ~block_size ~blocks:3 records
      in
      got = List.sort compare records)

let prop_extsort_equals_list_sort =
  QCheck.Test.make ~name:"external sort = List.sort for any input and geometry" ~count:150
    QCheck.(
      triple (int_range 16 64) (int_range 3 6)
        (list (string_of_size QCheck.Gen.small_nat)))
    (fun (block_size, blocks, records) ->
      let got, _, _, _ = run_sort ~block_size ~blocks records in
      got = List.sort compare records)

let prop_extsort_io_bounded =
  (* I/O on the temp device is bounded by 2 * (passes + 1) * data blocks,
     a loose form of the n log_m n bound. *)
  QCheck.Test.make ~name:"external sort temp I/O is O(passes * n)" ~count:50
    QCheck.(list_of_size (QCheck.Gen.int_range 50 300) (string_of_size (QCheck.Gen.return 8)))
    (fun records ->
      let block_size = 32 and blocks = 3 in
      let _, stats, temp, _ = run_sort ~block_size ~blocks records in
      let data_bytes =
        List.fold_left (fun a r -> a + String.length r + 2 (* frame *)) 0 records
      in
      let data_blocks = (data_bytes / block_size) + 2 in
      let ios = Extmem.Io_stats.total (Extmem.Device.stats temp) in
      let passes = stats.Extsort.External_sort.merge_passes in
      (* every run occupies at least one block, so allow one block of
         rounding per initial run per pass on top of the data volume *)
      ios <= 2 * (passes + 1) * (data_blocks + stats.Extsort.External_sort.initial_runs))

(* ------------------------------------------------------------------ *)
(* External priority queue *)

let make_pq ?buffer_blocks ?(block_size = 64) ?(blocks = 4) ?policy () =
  let budget = Extmem.Memory_budget.create ~blocks ~block_size in
  let arena = Extmem.Frame_arena.create ~budget ?default_policy:policy () in
  let temp = Extmem.Device.in_memory ~block_size () in
  let pq = Extsort.Ext_pq.create ~arena ?buffer_blocks ~budget ~temp ~cmp:compare () in
  (pq, budget)

let drain_pq pq =
  let rec go acc =
    match Extsort.Ext_pq.delete_min pq with None -> List.rev acc | Some r -> go (r :: acc)
  in
  go []

let test_pq_basic () =
  let pq, budget = make_pq () in
  check Alcotest.bool "empty" true (Extsort.Ext_pq.is_empty pq);
  check (Alcotest.option Alcotest.string) "peek empty" None (Extsort.Ext_pq.peek_min pq);
  List.iter (Extsort.Ext_pq.insert pq) [ "pear"; "apple"; "fig" ];
  check Alcotest.int "length" 3 (Extsort.Ext_pq.length pq);
  check (Alcotest.option Alcotest.string) "peek" (Some "apple") (Extsort.Ext_pq.peek_min pq);
  check (Alcotest.list Alcotest.string) "sorted drain" [ "apple"; "fig"; "pear" ] (drain_pq pq);
  Extsort.Ext_pq.destroy pq;
  check Alcotest.int "quiescent" 0 (Extmem.Memory_budget.used_blocks budget)

let test_pq_spills_and_compacts () =
  (* tiny geometry: every few inserts spill, fan-in 2 forces compactions *)
  let pq, budget = make_pq ~block_size:32 ~blocks:4 () in
  let records = List.init 300 (fun i -> Printf.sprintf "rec-%04d" (997 * i mod 300)) in
  List.iter (Extsort.Ext_pq.insert pq) records;
  let stats = Extsort.Ext_pq.stats pq in
  check Alcotest.bool "spilled" true (stats.Extsort.Ext_pq.spills > 1);
  check Alcotest.bool "compacted" true (stats.Extsort.Ext_pq.compactions > 0);
  check Alcotest.bool "run blocks counted" true (Extsort.Ext_pq.run_blocks pq > 0);
  check (Alcotest.list Alcotest.string) "sorted drain" (List.sort compare records) (drain_pq pq);
  Extsort.Ext_pq.destroy pq;
  check Alcotest.int "quiescent" 0 (Extmem.Memory_budget.used_blocks budget)

let test_pq_interleaved () =
  (* delete-min between inserts: the two tiers must agree on the minimum *)
  let pq, budget = make_pq ~block_size:32 ~blocks:4 () in
  let out = ref [] in
  for i = 0 to 199 do
    Extsort.Ext_pq.insert pq (Printf.sprintf "%04d" (48271 * i mod 1000));
    if i mod 3 = 2 then
      match Extsort.Ext_pq.delete_min pq with
      | Some r -> out := r :: !out
      | None -> Alcotest.fail "unexpected empty"
  done;
  let rest = drain_pq pq in
  (* every delete returned the minimum of what was live at the time; the
     reference below replays the same trace against a sorted list *)
  let reference =
    let live = ref [] and outs = ref [] in
    for i = 0 to 199 do
      live := Printf.sprintf "%04d" (48271 * i mod 1000) :: !live;
      if i mod 3 = 2 then begin
        let sorted = List.sort compare !live in
        outs := List.hd sorted :: !outs;
        live := List.tl sorted
      end
    done;
    (List.rev !outs, List.sort compare !live)
  in
  check (Alcotest.list Alcotest.string) "interleaved pops" (fst reference) (List.rev !out);
  check (Alcotest.list Alcotest.string) "final drain" (snd reference) rest;
  Extsort.Ext_pq.destroy pq;
  check Alcotest.int "quiescent" 0 (Extmem.Memory_budget.used_blocks budget)

let test_pq_needs_four_blocks () =
  let budget = Extmem.Memory_budget.create ~blocks:3 ~block_size:32 in
  let temp = Extmem.Device.in_memory ~block_size:32 () in
  try
    ignore (Extsort.Ext_pq.create ~budget ~temp ~cmp:compare ());
    Alcotest.fail "expected Exhausted"
  with Extmem.Memory_budget.Exhausted _ -> ()

let test_pq_meld_adopts_runs () =
  (* donor with intact runs: meld moves them by reference (no copy I/O
     on the donor's device beyond what the spills already wrote) *)
  let block_size = 32 in
  let budget = Extmem.Memory_budget.create ~blocks:8 ~block_size in
  let arena = Extmem.Frame_arena.create ~budget () in
  let temp_a = Extmem.Device.in_memory ~block_size () in
  let temp_b = Extmem.Device.in_memory ~block_size () in
  let a = Extsort.Ext_pq.create ~arena ~buffer_blocks:2 ~budget ~temp:temp_a ~cmp:compare () in
  let b = Extsort.Ext_pq.create ~arena ~buffer_blocks:2 ~budget ~temp:temp_b ~cmp:compare () in
  let xs = List.init 60 (fun i -> Printf.sprintf "a%03d" (7 * i mod 60)) in
  let ys = List.init 60 (fun i -> Printf.sprintf "b%03d" (11 * i mod 60)) in
  List.iter (Extsort.Ext_pq.insert a) xs;
  List.iter (Extsort.Ext_pq.insert b) ys;
  check Alcotest.bool "donor spilled" true (Extsort.Ext_pq.run_count b > 0);
  let writes_before = (Extmem.Device.stats temp_b).Extmem.Io_stats.writes in
  Extsort.Ext_pq.meld a b;
  let writes_after = (Extmem.Device.stats temp_b).Extmem.Io_stats.writes in
  check Alcotest.int "no copy on adoption" writes_before writes_after;
  check Alcotest.int "melded length" 120 (Extsort.Ext_pq.length a);
  check (Alcotest.list Alcotest.string) "melded drain"
    (List.sort compare (xs @ ys))
    (drain_pq a);
  Extsort.Ext_pq.destroy a;
  check Alcotest.int "quiescent" 0 (Extmem.Memory_budget.used_blocks budget)

let test_pq_meld_consumed_donor () =
  (* donor already served delete-mins from its runs: meld compacts the
     remainder so consumed records stay deleted *)
  let block_size = 32 in
  let budget = Extmem.Memory_budget.create ~blocks:8 ~block_size in
  let arena = Extmem.Frame_arena.create ~budget () in
  let temp = Extmem.Device.in_memory ~block_size () in
  let a = Extsort.Ext_pq.create ~arena ~buffer_blocks:2 ~budget ~temp ~cmp:compare () in
  let b =
    Extsort.Ext_pq.create ~arena ~buffer_blocks:2 ~budget
      ~temp:(Extmem.Device.in_memory ~block_size ())
      ~cmp:compare ()
  in
  let ys = List.init 80 (fun i -> Printf.sprintf "%03d" (13 * i mod 80)) in
  List.iter (Extsort.Ext_pq.insert b) ys;
  let popped = List.filter_map (fun _ -> Extsort.Ext_pq.delete_min b) (List.init 10 Fun.id) in
  check (Alcotest.list Alcotest.string) "donor pops min"
    (List.filteri (fun i _ -> i < 10) (List.sort compare ys))
    popped;
  Extsort.Ext_pq.insert a "500";
  Extsort.Ext_pq.meld a b;
  check Alcotest.int "melded length" 71 (Extsort.Ext_pq.length a);
  let expected =
    List.sort compare ("500" :: List.filteri (fun i _ -> i >= 10) (List.sort compare ys))
  in
  check (Alcotest.list Alcotest.string) "melded drain" expected (drain_pq a);
  Extsort.Ext_pq.destroy a;
  check Alcotest.int "quiescent" 0 (Extmem.Memory_budget.used_blocks budget)

(* Differential wall: random insert / delete-min / meld traces against a
   sorted-list reference model, across block-size x memory x policy
   geometries, with a destroy-probe quiescence check after every trace. *)

type pq_op = Pq_insert of int * string | Pq_delete of int | Pq_meld

let pq_op_gen =
  QCheck.Gen.(
    frequency
      [
        (5, map2 (fun q r -> Pq_insert (q, r)) (int_bound 1) (string_size (int_bound 12)));
        (3, map (fun q -> Pq_delete q) (int_bound 1));
        (1, return Pq_meld);
      ])

let pq_trace_arb =
  QCheck.make
    ~print:(fun ops ->
      String.concat ";"
        (List.map
           (function
             | Pq_insert (q, r) -> Printf.sprintf "ins%d(%s)" q (String.escaped r)
             | Pq_delete q -> Printf.sprintf "del%d" q
             | Pq_meld -> "meld")
           ops))
    QCheck.Gen.(list_size (int_range 0 120) pq_op_gen)

let pq_geometries =
  [
    (32, 4, Extmem.Frame_arena.Lru);
    (32, 8, Extmem.Frame_arena.Clock);
    (64, 5, Extmem.Frame_arena.Mru);
    (128, 6, Extmem.Frame_arena.Stack);
  ]

let prop_pq_differential =
  QCheck.Test.make ~name:"ext pq = reference heap over random traces" ~count:60 pq_trace_arb
    (fun ops ->
      List.for_all
        (fun (block_size, blocks, policy) ->
          (* two queues sharing one budget; meld folds q1 into q0 *)
          let budget = Extmem.Memory_budget.create ~blocks:(2 * blocks) ~block_size in
          let arena = Extmem.Frame_arena.create ~budget ~default_policy:policy () in
          let mk () =
            Extsort.Ext_pq.create ~arena ~buffer_blocks:2 ~budget
              ~temp:(Extmem.Device.in_memory ~block_size ())
              ~cmp:compare ()
          in
          let qs = [| mk (); mk () |] in
          let melded = ref false in
          let refs = [| ref []; ref [] |] in
          let ok = ref true in
          let expect got want = if got <> want then ok := false in
          List.iter
            (fun op ->
              let slot q = if !melded then 0 else q in
              match op with
              | Pq_insert (q, r) ->
                  let q = slot q in
                  Extsort.Ext_pq.insert qs.(q) r;
                  refs.(q) := r :: !(refs.(q))
              | Pq_delete q ->
                  let q = slot q in
                  let want =
                    match List.sort compare !(refs.(q)) with
                    | [] -> None
                    | m :: rest ->
                        refs.(q) := rest;
                        Some m
                  in
                  expect (Extsort.Ext_pq.delete_min qs.(q)) want
              | Pq_meld ->
                  if not !melded then begin
                    Extsort.Ext_pq.meld qs.(0) qs.(1);
                    refs.(0) := !(refs.(1)) @ !(refs.(0));
                    refs.(1) := [];
                    melded := true
                  end)
            ops;
          expect (drain_pq qs.(0)) (List.sort compare !(refs.(0)));
          if not !melded then expect (drain_pq qs.(1)) (List.sort compare !(refs.(1)));
          Extsort.Ext_pq.destroy qs.(0);
          if not !melded then Extsort.Ext_pq.destroy qs.(1);
          (* destroy-probe quiescence: no owner may still hold blocks *)
          if Extmem.Memory_budget.used_blocks budget <> 0 then ok := false;
          List.iter
            (fun (_, s) -> if s.Extmem.Frame_arena.held <> 0 then ok := false)
            (Extmem.Frame_arena.owners arena);
          !ok)
        pq_geometries)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "extsort"
    [
      ( "multiway",
        [
          Alcotest.test_case "basic" `Quick test_multiway_basic;
          Alcotest.test_case "empty inputs" `Quick test_multiway_empty_inputs;
          Alcotest.test_case "stability" `Quick test_multiway_stability;
          Alcotest.test_case "budget reserved" `Quick test_multiway_budget_reserved;
          Alcotest.test_case "budget exhausted names merge" `Quick
            test_multiway_budget_exhausted_names_merge;
          Alcotest.test_case "pull merge" `Quick test_multiway_pull;
          Alcotest.test_case "pull early release" `Quick test_multiway_pull_early_release;
          qcheck prop_multiway_equals_list_merge;
        ] );
      ( "heap",
        [
          Alcotest.test_case "basic" `Quick test_heap_basic;
          qcheck prop_heap_drains_sorted;
        ] );
      ( "replacement_selection",
        [
          Alcotest.test_case "correct" `Quick test_replacement_selection_correct;
          Alcotest.test_case "fewer runs" `Quick test_replacement_selection_fewer_runs;
          Alcotest.test_case "sorted input one run" `Quick
            test_replacement_selection_sorted_input_one_run;
          Alcotest.test_case "in-memory fast path" `Quick test_replacement_selection_in_memory;
          qcheck prop_replacement_selection_equals_list_sort;
        ] );
      ( "external_sort",
        [
          Alcotest.test_case "in-memory fast path" `Quick test_extsort_small_in_memory;
          Alcotest.test_case "spills to runs" `Quick test_extsort_spills;
          Alcotest.test_case "multi-pass" `Quick test_extsort_multi_pass;
          Alcotest.test_case "duplicates" `Quick test_extsort_duplicates_preserved;
          Alcotest.test_case "empty input" `Quick test_extsort_empty_input;
          Alcotest.test_case "needs three blocks" `Quick test_extsort_needs_three_blocks;
          Alcotest.test_case "custom order" `Quick test_extsort_custom_order;
          qcheck prop_extsort_equals_list_sort;
          qcheck prop_extsort_io_bounded;
        ] );
      ( "ext_pq",
        [
          Alcotest.test_case "basic" `Quick test_pq_basic;
          Alcotest.test_case "spills and compacts" `Quick test_pq_spills_and_compacts;
          Alcotest.test_case "interleaved" `Quick test_pq_interleaved;
          Alcotest.test_case "needs four blocks" `Quick test_pq_needs_four_blocks;
          Alcotest.test_case "meld adopts runs" `Quick test_pq_meld_adopts_runs;
          Alcotest.test_case "meld consumed donor" `Quick test_pq_meld_consumed_donor;
          qcheck prop_pq_differential;
        ] );
    ]
