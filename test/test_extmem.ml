(* Tests for the external-memory substrate. *)

let check = Alcotest.check

let qcheck = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Vec *)

let test_vec_basic () =
  let v = Extmem.Vec.create () in
  check Alcotest.bool "empty" true (Extmem.Vec.is_empty v);
  for i = 0 to 99 do
    Extmem.Vec.push v i
  done;
  check Alcotest.int "length" 100 (Extmem.Vec.length v);
  check Alcotest.int "get 42" 42 (Extmem.Vec.get v 42);
  Extmem.Vec.set v 42 (-1);
  check Alcotest.int "set" (-1) (Extmem.Vec.get v 42);
  check Alcotest.int "top" 99 (Extmem.Vec.top v);
  check Alcotest.int "pop" 99 (Extmem.Vec.pop v);
  check Alcotest.int "length after pop" 99 (Extmem.Vec.length v);
  Extmem.Vec.truncate v 10;
  check Alcotest.int "truncate" 10 (Extmem.Vec.length v);
  Extmem.Vec.clear v;
  check Alcotest.bool "clear" true (Extmem.Vec.is_empty v)

let test_vec_bounds () =
  let v = Extmem.Vec.of_list [ 1; 2; 3 ] in
  Alcotest.check_raises "get oob" (Invalid_argument "Vec: index 3 out of bounds (length 3)")
    (fun () -> ignore (Extmem.Vec.get v 3));
  let empty = Extmem.Vec.create () in
  Alcotest.check_raises "pop empty" (Invalid_argument "Vec.pop: empty") (fun () ->
      ignore (Extmem.Vec.pop empty))

let test_vec_sort () =
  let v = Extmem.Vec.of_list [ 5; 1; 4; 2; 3 ] in
  Extmem.Vec.sort compare v;
  check (Alcotest.list Alcotest.int) "sorted" [ 1; 2; 3; 4; 5 ] (Extmem.Vec.to_list v)

let test_vec_iter () =
  let v = Extmem.Vec.of_list [ 10; 20; 30 ] in
  let sum = Extmem.Vec.fold_left ( + ) 0 v in
  check Alcotest.int "fold" 60 sum;
  let acc = ref [] in
  Extmem.Vec.iteri (fun i x -> acc := (i, x) :: !acc) v;
  check (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int)) "iteri"
    [ (2, 30); (1, 20); (0, 10) ] !acc;
  check (Alcotest.array Alcotest.int) "to_array" [| 10; 20; 30 |] (Extmem.Vec.to_array v)

let prop_vec_model =
  QCheck.Test.make ~name:"Vec behaves like a list under push/pop" ~count:300
    QCheck.(list (pair bool small_int))
    (fun ops ->
      let v = Extmem.Vec.create () in
      let model = ref [] in
      List.iter
        (fun (is_push, x) ->
          if is_push then begin
            Extmem.Vec.push v x;
            model := x :: !model
          end
          else
            match !model with
            | [] -> ()
            | m :: rest ->
                let got = Extmem.Vec.pop v in
                if got <> m then QCheck.Test.fail_reportf "pop: got %d want %d" got m;
                model := rest)
        ops;
      Extmem.Vec.to_list v = List.rev !model)

(* ------------------------------------------------------------------ *)
(* Deque *)

let test_deque_basic () =
  let d = Extmem.Deque.create () in
  Extmem.Deque.push_back d 1;
  Extmem.Deque.push_back d 2;
  Extmem.Deque.push_front d 0;
  check (Alcotest.list Alcotest.int) "order" [ 0; 1; 2 ] (Extmem.Deque.to_list d);
  check Alcotest.int "get" 1 (Extmem.Deque.get d 1);
  check Alcotest.int "peek_front" 0 (Extmem.Deque.peek_front d);
  check Alcotest.int "peek_back" 2 (Extmem.Deque.peek_back d);
  check Alcotest.int "pop_front" 0 (Extmem.Deque.pop_front d);
  check Alcotest.int "pop_back" 2 (Extmem.Deque.pop_back d);
  check Alcotest.int "length" 1 (Extmem.Deque.length d)

let test_deque_empty () =
  let d = Extmem.Deque.create () in
  Alcotest.check_raises "pop_front" (Invalid_argument "Deque.pop_front: empty") (fun () ->
      ignore (Extmem.Deque.pop_front d));
  Alcotest.check_raises "pop_back" (Invalid_argument "Deque.pop_back: empty") (fun () ->
      ignore (Extmem.Deque.pop_back d))

let prop_deque_model =
  (* operations: 0 = push_back, 1 = push_front, 2 = pop_back, 3 = pop_front *)
  QCheck.Test.make ~name:"Deque behaves like a list model" ~count:300
    QCheck.(list (pair (int_bound 3) small_int))
    (fun ops ->
      let d = Extmem.Deque.create () in
      let model = ref [] in
      List.iter
        (fun (op, x) ->
          match op with
          | 0 ->
              Extmem.Deque.push_back d x;
              model := !model @ [ x ]
          | 1 ->
              Extmem.Deque.push_front d x;
              model := x :: !model
          | 2 -> (
              match List.rev !model with
              | [] -> ()
              | last :: rest_rev ->
                  let got = Extmem.Deque.pop_back d in
                  if got <> last then QCheck.Test.fail_reportf "pop_back mismatch";
                  model := List.rev rest_rev)
          | _ -> (
              match !model with
              | [] -> ()
              | first :: rest ->
                  let got = Extmem.Deque.pop_front d in
                  if got <> first then QCheck.Test.fail_reportf "pop_front mismatch";
                  model := rest))
        ops;
      Extmem.Deque.to_list d = !model)

(* ------------------------------------------------------------------ *)
(* Codec *)

let test_codec_varint () =
  let round n =
    let b = Buffer.create 8 in
    Extmem.Codec.put_varint b n;
    let c = Extmem.Codec.cursor (Buffer.contents b) in
    let got = Extmem.Codec.get_varint c in
    check Alcotest.int (Printf.sprintf "varint %d" n) n got;
    check Alcotest.bool "consumed" true (Extmem.Codec.at_end c)
  in
  List.iter round [ 0; 1; 127; 128; 255; 300; 16384; 1_000_000; max_int / 4 ]

let test_codec_zigzag () =
  let round n =
    let b = Buffer.create 8 in
    Extmem.Codec.put_zigzag b n;
    let c = Extmem.Codec.cursor (Buffer.contents b) in
    check Alcotest.int (Printf.sprintf "zigzag %d" n) n (Extmem.Codec.get_zigzag c)
  in
  List.iter round [ 0; 1; -1; 63; -64; 1000; -1000; max_int / 4; -(max_int / 4) ]

let test_codec_string () =
  let b = Buffer.create 8 in
  Extmem.Codec.put_string b "hello";
  Extmem.Codec.put_string b "";
  Extmem.Codec.put_string b "world";
  let c = Extmem.Codec.cursor (Buffer.contents b) in
  check Alcotest.string "s1" "hello" (Extmem.Codec.get_string c);
  check Alcotest.string "s2" "" (Extmem.Codec.get_string c);
  check Alcotest.string "s3" "world" (Extmem.Codec.get_string c)

let test_codec_fixed () =
  let b = Buffer.create 16 in
  Extmem.Codec.put_u8 b 200;
  Extmem.Codec.put_u32 b 0xDEADBE;
  Extmem.Codec.put_f64 b 3.14159;
  let c = Extmem.Codec.cursor (Buffer.contents b) in
  check Alcotest.int "u8" 200 (Extmem.Codec.get_u8 c);
  check Alcotest.int "u32" 0xDEADBE (Extmem.Codec.get_u32 c);
  check (Alcotest.float 1e-12) "f64" 3.14159 (Extmem.Codec.get_f64 c)

let test_codec_u32_at () =
  let b = Bytes.make 8 'x' in
  Extmem.Codec.set_u32_at b 2 123456;
  check Alcotest.int "u32_at" 123456 (Extmem.Codec.get_u32_at (Bytes.to_string b) 2)

let test_codec_truncated () =
  let c = Extmem.Codec.cursor "\x85" in
  (* continuation bit set but no next byte *)
  (try
     ignore (Extmem.Codec.get_varint c);
     Alcotest.fail "expected Corrupt"
   with Extmem.Codec.Corrupt _ -> ());
  let c2 = Extmem.Codec.cursor "\x05ab" in
  (* length 5 but only 2 bytes *)
  try
    ignore (Extmem.Codec.get_string c2);
    Alcotest.fail "expected Corrupt"
  with Extmem.Codec.Corrupt _ -> ()

let test_codec_extremes () =
  (* varint at the top of the positive range: 9 continuation bytes *)
  let b = Buffer.create 16 in
  Extmem.Codec.put_varint b max_int;
  let c = Extmem.Codec.cursor (Buffer.contents b) in
  check Alcotest.int "varint max_int" max_int (Extmem.Codec.get_varint c);
  check Alcotest.bool "consumed" true (Extmem.Codec.at_end c);
  (* zigzag must cover the whole int range, both encode paths *)
  List.iter
    (fun n ->
      let b = Buffer.create 16 in
      Extmem.Codec.put_zigzag b n;
      let c = Extmem.Codec.cursor (Buffer.contents b) in
      check Alcotest.int (Printf.sprintf "zigzag %d (buffer)" n) n (Extmem.Codec.get_zigzag c);
      let e = Extmem.Codec.Enc.create ~capacity:4 () in
      Extmem.Codec.Enc.add_zigzag e n;
      let c2 = Extmem.Codec.cursor (Extmem.Codec.Enc.contents e) in
      check Alcotest.int (Printf.sprintf "zigzag %d (enc)" n) n (Extmem.Codec.get_zigzag c2))
    [ min_int; min_int + 1; -1; 0; 1; max_int - 1; max_int ]

let test_codec_string_extremes () =
  (* empty, and one large enough to need a multi-byte length varint;
     forces several Enc doublings from a tiny initial capacity *)
  let huge = String.init 300_000 (fun i -> Char.chr (i land 0xff)) in
  let e = Extmem.Codec.Enc.create ~capacity:1 () in
  Extmem.Codec.Enc.add_string e "";
  Extmem.Codec.Enc.add_string e huge;
  Extmem.Codec.Enc.add_substring e huge 17 1000;
  let s = Extmem.Codec.Enc.contents e in
  let c = Extmem.Codec.cursor s in
  check Alcotest.string "empty" "" (Extmem.Codec.get_string c);
  check Alcotest.bool "huge" true (String.equal huge (Extmem.Codec.get_string c));
  let off, len = Extmem.Codec.get_string_slice c in
  check Alcotest.int "sub len" 1000 len;
  check Alcotest.bool "sub bytes" true (String.sub s off len = String.sub huge 17 1000);
  check Alcotest.bool "consumed" true (Extmem.Codec.at_end c)

let test_codec_u32_wraparound () =
  (* u32 stores the low 32 bits; values past 2^32 wrap on every path *)
  let cases = [ (0xFFFFFFFF, 0xFFFFFFFF); (1 lsl 32, 0); ((1 lsl 32) + 42, 42); (-1, 0xFFFFFFFF) ] in
  List.iter
    (fun (v, want) ->
      let b = Buffer.create 4 in
      Extmem.Codec.put_u32 b v;
      let c = Extmem.Codec.cursor (Buffer.contents b) in
      check Alcotest.int (Printf.sprintf "u32 %d (buffer)" v) want (Extmem.Codec.get_u32 c);
      let e = Extmem.Codec.Enc.create ~capacity:4 () in
      Extmem.Codec.Enc.add_u32 e v;
      let c2 = Extmem.Codec.cursor (Extmem.Codec.Enc.contents e) in
      check Alcotest.int (Printf.sprintf "u32 %d (enc)" v) want (Extmem.Codec.get_u32 c2);
      let raw = Bytes.create 4 in
      Extmem.Codec.set_u32_at raw 0 v;
      check Alcotest.int
        (Printf.sprintf "u32 %d (at)" v)
        want
        (Extmem.Codec.get_u32_at (Bytes.to_string raw) 0))
    cases

let prop_codec_enc_matches_buffer =
  QCheck.Test.make ~name:"Codec.Enc emits the same bytes as the Buffer appenders" ~count:300
    QCheck.(list (triple int small_nat (string_of_size Gen.small_nat)))
    (fun items ->
      let b = Buffer.create 64 in
      let e = Extmem.Codec.Enc.create ~capacity:1 () in
      List.iter
        (fun (z, n, s) ->
          Extmem.Codec.put_zigzag b z;
          Extmem.Codec.put_varint b n;
          Extmem.Codec.put_string b s;
          Extmem.Codec.put_u32 b n;
          Extmem.Codec.Enc.add_zigzag e z;
          Extmem.Codec.Enc.add_varint e n;
          Extmem.Codec.Enc.add_string e s;
          Extmem.Codec.Enc.add_u32 e n)
        items;
      String.equal (Buffer.contents b) (Extmem.Codec.Enc.contents e))

let prop_codec_slice_decode =
  QCheck.Test.make ~name:"Codec slice decode agrees with string decode" ~count:300
    QCheck.(list (string_of_size Gen.small_nat))
    (fun strings ->
      let e = Extmem.Codec.Enc.create ~capacity:8 () in
      List.iter (Extmem.Codec.Enc.add_string e) strings;
      let frame = Extmem.Codec.Enc.contents e in
      let c1 = Extmem.Codec.cursor frame in
      let c2 = Extmem.Codec.cursor frame in
      let c3 = Extmem.Codec.cursor frame in
      List.for_all
        (fun _ ->
          let s = Extmem.Codec.get_string c1 in
          let off, len = Extmem.Codec.get_string_slice c2 in
          Extmem.Codec.skip_string c3;
          String.equal s (String.sub frame off len)
          && Extmem.Codec.compare_sub frame off len s 0 (String.length s) = 0
          && c1.Extmem.Codec.pos = c2.Extmem.Codec.pos
          && c1.Extmem.Codec.pos = c3.Extmem.Codec.pos)
        strings
      && Extmem.Codec.at_end c1)

let prop_codec_roundtrip =
  QCheck.Test.make ~name:"Codec round-trips mixed records" ~count:300
    QCheck.(list (pair small_nat (string_of_size Gen.small_nat)))
    (fun items ->
      let b = Buffer.create 64 in
      List.iter
        (fun (n, s) ->
          Extmem.Codec.put_varint b n;
          Extmem.Codec.put_string b s)
        items;
      let c = Extmem.Codec.cursor (Buffer.contents b) in
      let got =
        List.map
          (fun _ ->
            let n = Extmem.Codec.get_varint c in
            let s = Extmem.Codec.get_string c in
            (n, s))
          items
      in
      got = items && Extmem.Codec.at_end c)

(* ------------------------------------------------------------------ *)
(* Device *)

let test_device_mem_roundtrip () =
  let d = Extmem.Device.in_memory ~block_size:16 () in
  let first = Extmem.Device.allocate d 3 in
  check Alcotest.int "first block" 0 first;
  check Alcotest.int "count" 3 (Extmem.Device.block_count d);
  let b = Bytes.make 16 'a' in
  Extmem.Device.write_block d 1 b;
  let r = Bytes.make 16 '?' in
  Extmem.Device.read_block d 1 r;
  check Alcotest.string "data" (String.make 16 'a') (Bytes.to_string r);
  (* unwritten block reads zeroes *)
  Extmem.Device.read_block d 2 r;
  check Alcotest.string "zeroes" (String.make 16 '\000') (Bytes.to_string r)

let test_device_counts_io () =
  let d = Extmem.Device.in_memory ~block_size:8 () in
  ignore (Extmem.Device.allocate d 2);
  let b = Bytes.make 8 'x' in
  Extmem.Device.write_block d 0 b;
  Extmem.Device.write_block d 1 b;
  Extmem.Device.read_block d 0 b;
  let s = Extmem.Device.stats d in
  check Alcotest.int "writes" 2 s.Extmem.Io_stats.writes;
  check Alcotest.int "reads" 1 s.Extmem.Io_stats.reads;
  check Alcotest.int "total" 3 (Extmem.Io_stats.total s)

let test_device_bounds () =
  let d = Extmem.Device.in_memory ~block_size:8 () in
  let b = Bytes.make 8 ' ' in
  (try
     Extmem.Device.read_block d 0 b;
     Alcotest.fail "expected out of range"
   with Invalid_argument _ -> ());
  (* write one past the end auto-allocates *)
  Extmem.Device.write_block d 0 b;
  check Alcotest.int "auto-alloc" 1 (Extmem.Device.block_count d)

let test_device_of_string () =
  let d = Extmem.Device.of_string ~block_size:4 "hello world" in
  check Alcotest.int "byte_length" 11 (Extmem.Device.byte_length d);
  check Alcotest.int "blocks" 3 (Extmem.Device.block_count d);
  check Alcotest.string "contents" "hello world" (Extmem.Device.contents d);
  check Alcotest.int "no io counted" 0 (Extmem.Io_stats.total (Extmem.Device.stats d))

let test_device_file () =
  let path = Filename.temp_file "nexsort_test" ".dev" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let d = Extmem.Device.file ~block_size:8 ~path () in
      ignore (Extmem.Device.allocate d 2);
      let b = Bytes.of_string "abcdefgh" in
      Extmem.Device.write_block d 1 b;
      let r = Bytes.make 8 '?' in
      Extmem.Device.read_block d 1 r;
      check Alcotest.string "file round trip" "abcdefgh" (Bytes.to_string r);
      (* block 0 was never written: sparse read gives zeroes *)
      Extmem.Device.read_block d 0 r;
      check Alcotest.string "sparse zero" (String.make 8 '\000') (Bytes.to_string r);
      Extmem.Device.set_byte_length d 12;
      check Alcotest.int "contents len" 12 (String.length (Extmem.Device.contents d));
      Extmem.Device.close d)

let test_device_fault_injection () =
  let d = Extmem.Device.in_memory ~block_size:8 () in
  ignore (Extmem.Device.allocate d 2);
  let b = Bytes.make 8 'x' in
  Extmem.Device.write_block d 0 b;
  let armed = ref true in
  Extmem.Device.push_layer d
    (Extmem.Layer.fault_hook (fun op i -> !armed && op = Extmem.Backend.Read && i = 0));
  (try
     Extmem.Device.read_block d 0 b;
     Alcotest.fail "expected Fault"
   with Extmem.Device.Fault (Extmem.Device.Read, 0) -> ());
  (* writes unaffected *)
  Extmem.Device.write_block d 1 b;
  armed := false;
  Extmem.Device.read_block d 0 b

(* ------------------------------------------------------------------ *)
(* Block_writer / Block_reader *)

let test_stream_roundtrip () =
  let d = Extmem.Device.in_memory ~block_size:10 () in
  let w = Extmem.Block_writer.create d in
  Extmem.Block_writer.write_string w "hello, ";
  Extmem.Block_writer.write_string w "block world!";
  Extmem.Block_writer.write_char w '!';
  let e = Extmem.Block_writer.close w in
  check Alcotest.int "bytes" 20 e.Extmem.Extent.bytes;
  check Alcotest.int "blocks" 2 e.Extmem.Extent.blocks;
  let r = Extmem.Block_reader.of_extent d e in
  let buf = Bytes.create 20 in
  let n = Extmem.Block_reader.read_bytes r buf 0 20 in
  check Alcotest.int "read n" 20 n;
  check Alcotest.string "payload" "hello, block world!!" (Bytes.to_string buf);
  check Alcotest.bool "at_end" true (Extmem.Block_reader.at_end r)

let test_stream_io_counts () =
  let bs = 16 in
  let d = Extmem.Device.in_memory ~block_size:bs () in
  let w = Extmem.Block_writer.create d in
  let payload = String.make 100 'z' in
  Extmem.Block_writer.write_string w payload;
  ignore (Extmem.Block_writer.close w);
  let expected_blocks = (100 + bs - 1) / bs in
  check Alcotest.int "writes = ceil(n/B)" expected_blocks
    (Extmem.Device.stats d).Extmem.Io_stats.writes;
  let before = Extmem.Io_stats.snapshot (Extmem.Device.stats d) in
  let r = Extmem.Block_reader.of_device d in
  let rec drain () = match Extmem.Block_reader.read_char r with Some _ -> drain () | None -> () in
  drain ();
  let delta = Extmem.Io_stats.diff (Extmem.Io_stats.snapshot (Extmem.Device.stats d)) before in
  check Alcotest.int "reads = ceil(n/B)" expected_blocks delta.Extmem.Io_stats.reads

let test_stream_records () =
  let d = Extmem.Device.in_memory ~block_size:7 () in
  let w = Extmem.Block_writer.create d in
  let records = [ "alpha"; ""; "a much longer record spanning blocks"; "z" ] in
  List.iter (Extmem.Block_writer.write_record w) records;
  let e = Extmem.Block_writer.close w in
  let r = Extmem.Block_reader.of_extent d e in
  let got = ref [] in
  let rec loop () =
    match Extmem.Block_reader.read_record r with
    | Some s ->
        got := s :: !got;
        loop ()
    | None -> ()
  in
  loop ();
  check (Alcotest.list Alcotest.string) "records" records (List.rev !got)

let test_stream_seek () =
  let d = Extmem.Device.in_memory ~block_size:8 () in
  let w = Extmem.Block_writer.create d in
  Extmem.Block_writer.write_string w "0123456789abcdefghij";
  let e = Extmem.Block_writer.close w in
  let r = Extmem.Block_reader.of_extent d e in
  Extmem.Block_reader.seek r 10;
  check (Alcotest.option Alcotest.char) "seek 10" (Some 'a') (Extmem.Block_reader.read_char r);
  Extmem.Block_reader.seek r 0;
  check (Alcotest.option Alcotest.char) "seek 0" (Some '0') (Extmem.Block_reader.read_char r);
  Extmem.Block_reader.seek r 20;
  check (Alcotest.option Alcotest.char) "seek end" None (Extmem.Block_reader.read_char r)

let prop_stream_roundtrip =
  QCheck.Test.make ~name:"Block stream round-trips arbitrary records" ~count:200
    QCheck.(pair (int_range 4 64) (list (string_of_size Gen.small_nat)))
    (fun (bs, records) ->
      let d = Extmem.Device.in_memory ~block_size:bs () in
      let w = Extmem.Block_writer.create d in
      List.iter (Extmem.Block_writer.write_record w) records;
      let e = Extmem.Block_writer.close w in
      let r = Extmem.Block_reader.of_extent d e in
      let rec loop acc =
        match Extmem.Block_reader.read_record r with
        | Some s -> loop (s :: acc)
        | None -> List.rev acc
      in
      loop [] = records)

(* ------------------------------------------------------------------ *)
(* Run_store *)

let test_run_store () =
  let d = Extmem.Device.in_memory ~block_size:8 () in
  let rs = Extmem.Run_store.create d in
  let w = Extmem.Run_store.begin_run rs in
  Extmem.Block_writer.write_string w "first run";
  let id0 = Extmem.Run_store.finish_run rs w in
  let w = Extmem.Run_store.begin_run rs in
  Extmem.Block_writer.write_string w "second";
  let id1 = Extmem.Run_store.finish_run rs w in
  check Alcotest.int "ids dense" 1 id1;
  check Alcotest.int "count" 2 (Extmem.Run_store.run_count rs);
  let read id =
    let r = Extmem.Run_store.open_run rs id in
    let n = Extmem.Block_reader.length r in
    let b = Bytes.create n in
    ignore (Extmem.Block_reader.read_bytes r b 0 n);
    Bytes.to_string b
  in
  check Alcotest.string "run 0" "first run" (read id0);
  check Alcotest.string "run 1" "second" (read id1);
  check Alcotest.int "total blocks" 3 (Extmem.Run_store.total_run_blocks rs)

let test_run_store_exclusive () =
  let d = Extmem.Device.in_memory ~block_size:8 () in
  let rs = Extmem.Run_store.create d in
  let _w = Extmem.Run_store.begin_run rs in
  try
    ignore (Extmem.Run_store.begin_run rs);
    Alcotest.fail "expected exclusivity error"
  with Invalid_argument _ -> ()

let test_run_store_read_run () =
  let d = Extmem.Device.in_memory ~block_size:16 () in
  let rs = Extmem.Run_store.create d in
  let w = Extmem.Run_store.begin_run rs in
  List.iter (Extmem.Block_writer.write_record w) [ "alpha"; "beta"; "gamma" ];
  let id = Extmem.Run_store.finish_run rs w in
  let pull = Extmem.Run_store.read_run rs id in
  let rec all acc = match pull () with None -> List.rev acc | Some r -> all (r :: acc) in
  check (Alcotest.list Alcotest.string) "streamed records" [ "alpha"; "beta"; "gamma" ] (all []);
  check (Alcotest.option Alcotest.string) "exhausted stays exhausted" None (pull ())

let test_run_store_reserve_install () =
  (* the worker-pool protocol: the main thread reserves the id at the
     point the run would have been created, a worker installs the payload
     later from its own scratch device *)
  let d = Extmem.Device.in_memory ~block_size:8 () in
  let rs = Extmem.Run_store.create d in
  let id0 = Extmem.Run_store.reserve rs in
  let w = Extmem.Run_store.begin_run rs in
  Extmem.Block_writer.write_record w "main";
  let id1 = Extmem.Run_store.finish_run rs w in
  check Alcotest.int "reserved id is dense" 0 id0;
  check Alcotest.int "finish_run skips the reservation" 1 id1;
  check Alcotest.int "count includes pending" 2 (Extmem.Run_store.run_count rs);
  (try
     ignore (Extmem.Run_store.open_run rs id0);
     Alcotest.fail "expected pending rejection"
   with Invalid_argument _ -> ());
  let blocks_before = Extmem.Run_store.total_run_blocks rs in
  let wd = Extmem.Device.in_memory ~block_size:8 () in
  let ww = Extmem.Block_writer.create wd in
  Extmem.Block_writer.write_record ww "worker";
  let extent = Extmem.Block_writer.close ww in
  Extmem.Run_store.install rs id0 ~dev:wd ~extent;
  check Alcotest.bool "pending excluded from totals" true
    (Extmem.Run_store.total_run_blocks rs > blocks_before);
  let pull = Extmem.Run_store.read_run rs id0 in
  check (Alcotest.option Alcotest.string) "reads from the worker device" (Some "worker")
    (pull ());
  try
    Extmem.Run_store.install rs id0 ~dev:wd ~extent;
    Alcotest.fail "expected double-install rejection"
  with Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Ext_stack *)

let test_ext_stack_borrow_window () =
  (* with a budgeted arena to borrow from, a 1-block window grows instead
     of paging; shed returns every borrowed block and forces the spill *)
  let d = Extmem.Device.in_memory ~block_size:16 () in
  let budget = Extmem.Memory_budget.create ~blocks:8 ~block_size:16 in
  let arena = Extmem.Frame_arena.create ~budget () in
  let st = Extmem.Ext_stack.create ~name:"test" ~resident_blocks:1 ~arena ~borrow:true d in
  for i = 0 to 99 do
    Extmem.Ext_stack.push st (Printf.sprintf "entry-%03d" i)
  done;
  check Alcotest.bool "borrowed from the budget" true (Extmem.Ext_stack.borrowed st > 0);
  (* the window lease holds its 1 configured block on top of the borrow *)
  check Alcotest.int "borrow is accounted"
    (Extmem.Ext_stack.borrowed st + 1)
    (Extmem.Memory_budget.used_blocks budget);
  check Alcotest.int "borrow is owner-labelled" (Extmem.Ext_stack.borrowed st)
    (Extmem.Memory_budget.held budget "test window (borrowed)");
  let writes_before = (Extmem.Ext_stack.io_stats st).Extmem.Io_stats.writes in
  Extmem.Ext_stack.shed st;
  check Alcotest.int "shed returns every block" 0 (Extmem.Ext_stack.borrowed st);
  check Alcotest.int "only the window remains charged" 1
    (Extmem.Memory_budget.used_blocks budget);
  check Alcotest.bool "shedding spills the surplus" true
    ((Extmem.Ext_stack.io_stats st).Extmem.Io_stats.writes > writes_before);
  (* contents survive the shed *)
  for i = 99 downto 0 do
    check Alcotest.string "pop order" (Printf.sprintf "entry-%03d" i) (Extmem.Ext_stack.pop st)
  done

let test_ext_stack_borrow_release_on_truncate () =
  let d = Extmem.Device.in_memory ~block_size:16 () in
  let budget = Extmem.Memory_budget.create ~blocks:8 ~block_size:16 in
  let arena = Extmem.Frame_arena.create ~budget () in
  let st = Extmem.Ext_stack.create ~name:"test" ~resident_blocks:1 ~arena ~borrow:true d in
  for i = 0 to 99 do
    Extmem.Ext_stack.push st (Printf.sprintf "entry-%03d" i)
  done;
  let borrowed = Extmem.Ext_stack.borrowed st in
  check Alcotest.bool "borrowed" true (borrowed > 0);
  Extmem.Ext_stack.truncate_to st 0;
  check Alcotest.int "truncate gives the blocks back" 0 (Extmem.Ext_stack.borrowed st);
  check Alcotest.int "only the window remains charged" 1
    (Extmem.Memory_budget.used_blocks budget)

let test_ext_stack_borrow_stops_at_exhaustion () =
  (* an exhausted budget must never raise out of push: the window just
     pages as if it had no borrow source *)
  let d = Extmem.Device.in_memory ~block_size:16 () in
  let budget = Extmem.Memory_budget.create ~blocks:3 ~block_size:16 in
  Extmem.Memory_budget.reserve budget ~who:"someone else" 2;
  let arena = Extmem.Frame_arena.create ~budget () in
  let st = Extmem.Ext_stack.create ~name:"test" ~resident_blocks:1 ~arena ~borrow:true d in
  for i = 0 to 99 do
    Extmem.Ext_stack.push st (Printf.sprintf "entry-%03d" i)
  done;
  check Alcotest.int "nothing borrowed" 0 (Extmem.Ext_stack.borrowed st);
  check Alcotest.bool "paged instead" true
    ((Extmem.Ext_stack.io_stats st).Extmem.Io_stats.writes > 0)

let test_ext_stack_shed_dirty_ledger () =
  (* shedding a dirty elastic window writes the surplus back exactly once
     per borrowed block and leaves the ledger at just the base window *)
  let d = Extmem.Device.in_memory ~block_size:16 () in
  let budget = Extmem.Memory_budget.create ~blocks:8 ~block_size:16 in
  let arena = Extmem.Frame_arena.create ~budget () in
  let st = Extmem.Ext_stack.create ~name:"test" ~resident_blocks:1 ~arena ~borrow:true d in
  for i = 0 to 99 do
    Extmem.Ext_stack.push st (Printf.sprintf "entry-%03d" i)
  done;
  let borrowed = Extmem.Ext_stack.borrowed st in
  check Alcotest.bool "window is dirty and borrowed" true (borrowed > 0);
  check (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int)) "ledger names both leases"
    [ ("test window", 1); ("test window (borrowed)", borrowed) ]
    (List.sort compare (Extmem.Memory_budget.holders budget));
  let writes_before = Extmem.Ext_stack.writebacks st in
  Extmem.Ext_stack.shed st;
  (* every borrowed block was below the new window top, so each is spilled
     exactly once; the resident top block stays in memory *)
  check Alcotest.int "one writeback per shed block" (writes_before + borrowed)
    (Extmem.Ext_stack.writebacks st);
  check (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int)) "only the window remains"
    [ ("test window", 1) ]
    (Extmem.Memory_budget.holders budget);
  for i = 99 downto 0 do
    check Alcotest.string "data survives" (Printf.sprintf "entry-%03d" i)
      (Extmem.Ext_stack.pop st)
  done

let test_ext_stack_shed_nothing_borrowed () =
  (* shed with zero borrowed frames (e.g. a reclaim that races nothing)
     must be free: no I/O, no ledger movement *)
  let d = Extmem.Device.in_memory ~block_size:16 () in
  let budget = Extmem.Memory_budget.create ~blocks:8 ~block_size:16 in
  let arena = Extmem.Frame_arena.create ~budget () in
  let st = Extmem.Ext_stack.create ~name:"test" ~resident_blocks:1 ~arena ~borrow:true d in
  Extmem.Ext_stack.push st "one";
  let io = (Extmem.Ext_stack.io_stats st).Extmem.Io_stats.writes in
  Extmem.Ext_stack.shed st;
  check Alcotest.int "no io" io (Extmem.Ext_stack.io_stats st).Extmem.Io_stats.writes;
  check Alcotest.int "window still charged" 1 (Extmem.Memory_budget.used_blocks budget);
  check Alcotest.string "data intact" "one" (Extmem.Ext_stack.pop st)

let test_ext_stack_borrow_recovers_after_release () =
  (* zero idle frames: borrowing is denied and the stack pages; once the
     other holder releases, the very next overflow borrows again *)
  let d = Extmem.Device.in_memory ~block_size:16 () in
  let budget = Extmem.Memory_budget.create ~blocks:6 ~block_size:16 in
  Extmem.Memory_budget.reserve budget ~who:"other" 5;
  let arena = Extmem.Frame_arena.create ~budget () in
  let st = Extmem.Ext_stack.create ~name:"test" ~resident_blocks:1 ~arena ~borrow:true d in
  for i = 0 to 49 do
    Extmem.Ext_stack.push st (Printf.sprintf "entry-%03d" i)
  done;
  check Alcotest.int "nothing borrowed under pressure" 0 (Extmem.Ext_stack.borrowed st);
  check Alcotest.bool "paged instead" true
    ((Extmem.Ext_stack.io_stats st).Extmem.Io_stats.writes > 0);
  Extmem.Memory_budget.release budget ~who:"other" 5;
  for i = 50 to 99 do
    Extmem.Ext_stack.push st (Printf.sprintf "entry-%03d" i)
  done;
  check Alcotest.bool "borrowing resumes" true (Extmem.Ext_stack.borrowed st > 0);
  for i = 99 downto 0 do
    check Alcotest.string "pop order" (Printf.sprintf "entry-%03d" i) (Extmem.Ext_stack.pop st)
  done

let test_ext_stack_close_releases_budget () =
  (* close ends the session: every frame (base and borrowed, dirty or
     not) goes back without any flush I/O, and close is idempotent *)
  let d = Extmem.Device.in_memory ~block_size:16 () in
  let budget = Extmem.Memory_budget.create ~blocks:8 ~block_size:16 in
  let arena = Extmem.Frame_arena.create ~budget () in
  let st = Extmem.Ext_stack.create ~name:"test" ~resident_blocks:1 ~arena ~borrow:true d in
  for i = 0 to 99 do
    Extmem.Ext_stack.push st (Printf.sprintf "entry-%03d" i)
  done;
  check Alcotest.bool "holding several blocks" true
    (Extmem.Memory_budget.used_blocks budget > 1);
  let writes = (Extmem.Ext_stack.io_stats st).Extmem.Io_stats.writes in
  Extmem.Ext_stack.close st;
  check Alcotest.int "budget fully restored" 0 (Extmem.Memory_budget.used_blocks budget);
  check Alcotest.int "close costs no io" writes
    (Extmem.Ext_stack.io_stats st).Extmem.Io_stats.writes;
  Extmem.Ext_stack.close st;
  check Alcotest.int "idempotent" 0 (Extmem.Memory_budget.used_blocks budget)

let test_ext_stack_borrow_across_session_reclaim () =
  (* the data stack of a real session borrows idle budget while growing;
     Session.reclaim takes it all back without losing data, and destroy
     empties the ledger and is idempotent *)
  let config = Nexsort.Config.make ~block_size:512 ~memory_blocks:64 () in
  let session = Nexsort.Session.create config in
  let budget = session.Nexsort.Session.budget in
  let baseline = Extmem.Memory_budget.used_blocks budget in
  Nexsort.Session.reclaim session;
  check Alcotest.int "reclaim with nothing borrowed is a no-op" baseline
    (Extmem.Memory_budget.used_blocks budget);
  let st = session.Nexsort.Session.data_stack in
  for i = 0 to 199 do
    Extmem.Ext_stack.push st (Printf.sprintf "payload-%04d-%s" i (String.make 48 'x'))
  done;
  check Alcotest.bool "data stack borrowed idle budget" true (Extmem.Ext_stack.borrowed st > 0);
  check Alcotest.int "borrow shows in the ledger" (Extmem.Ext_stack.borrowed st)
    (Extmem.Memory_budget.held budget "data stack window (borrowed)");
  Nexsort.Session.reclaim session;
  check Alcotest.int "reclaim returns every borrowed block" 0 (Extmem.Ext_stack.borrowed st);
  check Alcotest.int "ledger back to baseline" baseline
    (Extmem.Memory_budget.used_blocks budget);
  for i = 199 downto 0 do
    check Alcotest.string "data survives the reclaim"
      (Printf.sprintf "payload-%04d-%s" i (String.make 48 'x'))
      (Extmem.Ext_stack.pop st)
  done;
  Nexsort.Session.destroy session;
  check Alcotest.int "destroy empties the ledger" 0 (Extmem.Memory_budget.used_blocks budget);
  Nexsort.Session.destroy session;
  check Alcotest.int "destroy is idempotent" 0 (Extmem.Memory_budget.used_blocks budget)

let test_ext_stack_basic () =
  let d = Extmem.Device.in_memory ~block_size:16 () in
  let st = Extmem.Ext_stack.create d in
  check Alcotest.bool "empty" true (Extmem.Ext_stack.is_empty st);
  Extmem.Ext_stack.push st "one";
  Extmem.Ext_stack.push st "two";
  check Alcotest.string "top" "two" (Extmem.Ext_stack.top st);
  check Alcotest.string "pop two" "two" (Extmem.Ext_stack.pop st);
  check Alcotest.string "pop one" "one" (Extmem.Ext_stack.pop st);
  check Alcotest.bool "empty again" true (Extmem.Ext_stack.is_empty st)

let test_ext_stack_spills () =
  let d = Extmem.Device.in_memory ~block_size:16 () in
  let st = Extmem.Ext_stack.create ~resident_blocks:1 d in
  for i = 0 to 99 do
    Extmem.Ext_stack.push st (Printf.sprintf "entry-%03d" i)
  done;
  check Alcotest.bool "spilled to device" true
    ((Extmem.Ext_stack.io_stats st).Extmem.Io_stats.writes > 0);
  check Alcotest.int "window bounded" 1 (Extmem.Ext_stack.resident_blocks st);
  for i = 99 downto 0 do
    check Alcotest.string "pop order" (Printf.sprintf "entry-%03d" i) (Extmem.Ext_stack.pop st)
  done;
  check Alcotest.bool "reads happened" true
    ((Extmem.Ext_stack.io_stats st).Extmem.Io_stats.reads > 0)

let test_ext_stack_paging_counters () =
  let d = Extmem.Device.in_memory ~block_size:16 () in
  let st = Extmem.Ext_stack.create ~resident_blocks:1 d in
  let n = 100 in
  let entries = List.init n (fun i -> Printf.sprintf "entry-%03d" i) in
  let framed = List.fold_left (fun a e -> a + Extmem.Ext_stack.framed_size e) 0 entries in
  List.iter (Extmem.Ext_stack.push st) entries;
  check Alcotest.int "pushes" n (Extmem.Ext_stack.pushes st);
  check Alcotest.int "high water is the peak resident+spilled size" framed
    (Extmem.Ext_stack.high_water st);
  check Alcotest.bool "spilling counted as writebacks" true (Extmem.Ext_stack.writebacks st > 0);
  check Alcotest.int "no page-ins yet" 0 (Extmem.Ext_stack.page_ins st);
  for _ = 1 to n do
    ignore (Extmem.Ext_stack.pop st)
  done;
  check Alcotest.int "pops" n (Extmem.Ext_stack.pops st);
  check Alcotest.bool "popping pages spilled blocks back in" true
    (Extmem.Ext_stack.page_ins st > 0);
  (* the counters agree with the device-level I/O they describe *)
  check Alcotest.int "writebacks = device writes" (Extmem.Ext_stack.writebacks st)
    (Extmem.Ext_stack.io_stats st).Extmem.Io_stats.writes;
  check Alcotest.int "page_ins = device reads" (Extmem.Ext_stack.page_ins st)
    (Extmem.Ext_stack.io_stats st).Extmem.Io_stats.reads;
  check Alcotest.int "high water unchanged by pops" framed (Extmem.Ext_stack.high_water st)

let test_ext_stack_no_io_when_resident () =
  let d = Extmem.Device.in_memory ~block_size:4096 () in
  let st = Extmem.Ext_stack.create ~resident_blocks:1 d in
  for _ = 1 to 50 do
    Extmem.Ext_stack.push st "tiny"
  done;
  for _ = 1 to 50 do
    ignore (Extmem.Ext_stack.pop st)
  done;
  check Alcotest.int "all resident, no io" 0 (Extmem.Io_stats.total (Extmem.Ext_stack.io_stats st))

let test_ext_stack_large_entry () =
  let d = Extmem.Device.in_memory ~block_size:8 () in
  let st = Extmem.Ext_stack.create ~resident_blocks:2 d in
  let big = String.init 100 (fun i -> Char.chr (65 + (i mod 26))) in
  Extmem.Ext_stack.push st "small";
  Extmem.Ext_stack.push st big;
  Extmem.Ext_stack.push st "after";
  check Alcotest.string "after" "after" (Extmem.Ext_stack.pop st);
  check Alcotest.string "big" big (Extmem.Ext_stack.pop st);
  check Alcotest.string "small" "small" (Extmem.Ext_stack.pop st)

let test_ext_stack_scan_and_truncate () =
  let d = Extmem.Device.in_memory ~block_size:16 () in
  let st = Extmem.Ext_stack.create d in
  Extmem.Ext_stack.push st "keep-0";
  Extmem.Ext_stack.push st "keep-1";
  let mark = Extmem.Ext_stack.length st in
  Extmem.Ext_stack.push st "sub-a";
  Extmem.Ext_stack.push st "sub-b";
  Extmem.Ext_stack.push st "sub-c";
  let got = ref [] in
  Extmem.Ext_stack.iter_entries_from st ~pos:mark (fun e -> got := e :: !got);
  check (Alcotest.list Alcotest.string) "scan order" [ "sub-a"; "sub-b"; "sub-c" ] (List.rev !got);
  Extmem.Ext_stack.truncate_to st mark;
  check Alcotest.string "pop after truncate" "keep-1" (Extmem.Ext_stack.pop st);
  check Alcotest.string "pop after truncate 2" "keep-0" (Extmem.Ext_stack.pop st)

let test_ext_stack_read_all_from () =
  let d = Extmem.Device.in_memory ~block_size:8 () in
  let st = Extmem.Ext_stack.create d in
  Extmem.Ext_stack.push st "below";
  let mark = Extmem.Ext_stack.length st in
  Extmem.Ext_stack.push st "x";
  Extmem.Ext_stack.push st "yy";
  let raw = Extmem.Ext_stack.read_all_from st ~pos:mark in
  check Alcotest.int "framed size" (Extmem.Ext_stack.framed_size "x" + Extmem.Ext_stack.framed_size "yy")
    (String.length raw)

let test_ext_stack_interleaved_after_spill () =
  (* Regression shape: spill, pop below the window, then push again over
     previously flushed blocks. *)
  let d = Extmem.Device.in_memory ~block_size:8 () in
  let st = Extmem.Ext_stack.create ~resident_blocks:1 d in
  for i = 0 to 19 do
    Extmem.Ext_stack.push st (Printf.sprintf "a%02d" i)
  done;
  for _ = 0 to 14 do
    ignore (Extmem.Ext_stack.pop st)
  done;
  for i = 0 to 9 do
    Extmem.Ext_stack.push st (Printf.sprintf "b%02d" i)
  done;
  for i = 9 downto 0 do
    check Alcotest.string "b layer" (Printf.sprintf "b%02d" i) (Extmem.Ext_stack.pop st)
  done;
  for i = 4 downto 0 do
    check Alcotest.string "a layer" (Printf.sprintf "a%02d" i) (Extmem.Ext_stack.pop st)
  done

let prop_ext_stack_model =
  (* ops: 0 push, 1 pop, 2 top, 3 scan-from-random-mark, 4 truncate-to-mark *)
  let gen =
    QCheck.make
      ~print:(fun (bs, w, ops) ->
        Printf.sprintf "bs=%d w=%d ops=[%s]" bs w
          (String.concat ";" (List.map (fun (op, s) -> Printf.sprintf "(%d,%S)" op s) ops)))
      QCheck.Gen.(
        triple (int_range 4 32) (int_range 1 3)
          (list (pair (int_bound 4) (string_size ~gen:printable (int_bound 40)))))
  in
  QCheck.Test.make ~name:"Ext_stack behaves like a list stack" ~count:300 gen
    (fun (bs, w, ops) ->
      let d = Extmem.Device.in_memory ~block_size:bs () in
      let st = Extmem.Ext_stack.create ~resident_blocks:w d in
      (* model: list of (position_before, payload), newest first *)
      let model = ref [] in
      List.iter
        (fun (op, s) ->
          match op with
          | 0 ->
              let pos = Extmem.Ext_stack.length st in
              Extmem.Ext_stack.push st s;
              model := (pos, s) :: !model
          | 1 -> (
              match !model with
              | [] -> ()
              | (_, payload) :: rest ->
                  let got = Extmem.Ext_stack.pop st in
                  if got <> payload then QCheck.Test.fail_reportf "pop: %S <> %S" got payload;
                  model := rest)
          | 2 -> (
              match !model with
              | [] -> ()
              | (_, payload) :: _ ->
                  let got = Extmem.Ext_stack.top st in
                  if got <> payload then QCheck.Test.fail_reportf "top: %S <> %S" got payload)
          | 3 ->
              (* scan from the middle of the model *)
              let n = List.length !model in
              if n > 0 then begin
                let k = n / 2 in
                let pos, _ = List.nth !model k in
                let expected = List.rev_map snd (List.filteri (fun i _ -> i <= k) !model) in
                let got = ref [] in
                Extmem.Ext_stack.iter_entries_from st ~pos (fun e -> got := e :: !got);
                if List.rev !got <> expected then QCheck.Test.fail_reportf "scan mismatch"
              end
          | _ ->
              let n = List.length !model in
              if n > 0 then begin
                let k = n / 2 in
                let pos, _ = List.nth !model k in
                Extmem.Ext_stack.truncate_to st pos;
                model := List.filteri (fun i _ -> i > k) !model
              end)
        ops;
      (* drain and compare *)
      let rec drain acc =
        if Extmem.Ext_stack.is_empty st then List.rev acc
        else drain (Extmem.Ext_stack.pop st :: acc)
      in
      drain [] = List.map snd !model)

let prop_ext_stack_push_io_linear =
  QCheck.Test.make ~name:"Ext_stack push-only I/O is <= bytes/B + O(1)" ~count:100
    QCheck.(pair (int_range 8 64) (list_of_size (QCheck.Gen.int_range 1 200) (string_of_size (QCheck.Gen.int_bound 30))))
    (fun (bs, entries) ->
      let d = Extmem.Device.in_memory ~block_size:bs () in
      let st = Extmem.Ext_stack.create ~resident_blocks:1 d in
      List.iter (Extmem.Ext_stack.push st) entries;
      let total_bytes = List.fold_left (fun a e -> a + Extmem.Ext_stack.framed_size e) 0 entries in
      let ios = Extmem.Io_stats.total (Extmem.Ext_stack.io_stats st) in
      ios <= (total_bytes / bs) + 2)

(* ------------------------------------------------------------------ *)
(* Pager *)

let pager_test policy () =
  let d = Extmem.Device.in_memory ~block_size:8 () in
  ignore (Extmem.Device.allocate d 8);
  let p = Extmem.Pager.create ~policy ~frames:3 d in
  (* write a pattern through the pager, read it back *)
  Extmem.Pager.write p ~pos:0 "abcdefghijklmnopqrstuvwxyz0123456789";
  check Alcotest.string "read back" "abcdefghijklmnopqrstuvwxyz0123456789"
    (Extmem.Pager.read p ~pos:0 ~len:36);
  Extmem.Pager.flush p;
  (* after flush the device must contain the data *)
  let b = Bytes.make 8 '?' in
  Extmem.Device.read_block d 0 b;
  check Alcotest.string "flushed" "abcdefgh" (Bytes.to_string b);
  check Alcotest.bool "some hits" true (Extmem.Pager.hits p > 0);
  check Alcotest.bool "some misses" true (Extmem.Pager.misses p > 0)

let test_pager_lru_eviction_order () =
  let d = Extmem.Device.in_memory ~block_size:4 () in
  ignore (Extmem.Device.allocate d 10);
  let p = Extmem.Pager.create ~policy:Extmem.Pager.Lru ~frames:2 d in
  ignore (Extmem.Pager.read_byte p 0);  (* block 0 *)
  ignore (Extmem.Pager.read_byte p 4);  (* block 1 *)
  ignore (Extmem.Pager.read_byte p 0);  (* touch block 0 *)
  ignore (Extmem.Pager.read_byte p 8);  (* block 2 evicts block 1 (LRU) *)
  let misses_before = Extmem.Pager.misses p in
  ignore (Extmem.Pager.read_byte p 0);  (* block 0 should still be resident *)
  check Alcotest.int "block 0 still cached" misses_before (Extmem.Pager.misses p);
  ignore (Extmem.Pager.read_byte p 4);  (* block 1 was evicted: miss *)
  check Alcotest.int "block 1 missed" (misses_before + 1) (Extmem.Pager.misses p)

let test_pager_eviction_writeback_counters () =
  let d = Extmem.Device.in_memory ~block_size:4 () in
  ignore (Extmem.Device.allocate d 10);
  let p = Extmem.Pager.create ~policy:Extmem.Pager.Lru ~frames:2 d in
  ignore (Extmem.Pager.read_byte p 0);   (* miss, empty frame *)
  ignore (Extmem.Pager.read_byte p 4);   (* miss, empty frame *)
  check Alcotest.int "no evictions while frames are free" 0 (Extmem.Pager.evictions p);
  ignore (Extmem.Pager.read_byte p 8);   (* evicts clean block 0 *)
  check Alcotest.int "clean eviction counted" 1 (Extmem.Pager.evictions p);
  check Alcotest.int "clean eviction writes nothing" 0 (Extmem.Pager.writebacks p);
  Extmem.Pager.write_byte p 4 'x';       (* dirty block 1, now MRU *)
  ignore (Extmem.Pager.read_byte p 0);   (* evicts clean block 2 *)
  check Alcotest.int "second clean eviction" 2 (Extmem.Pager.evictions p);
  check Alcotest.int "still no writeback" 0 (Extmem.Pager.writebacks p);
  ignore (Extmem.Pager.read_byte p 8);   (* evicts dirty block 1 *)
  check Alcotest.int "dirty eviction counted" 3 (Extmem.Pager.evictions p);
  check Alcotest.int "dirty eviction written back" 1 (Extmem.Pager.writebacks p);
  Extmem.Pager.flush p;
  check Alcotest.int "flush of clean frames writes nothing" 1 (Extmem.Pager.writebacks p);
  check Alcotest.char "evicted write landed" 'x' (Extmem.Pager.read_byte p 4)

let test_pager_write_extends_device () =
  let d = Extmem.Device.in_memory ~block_size:4 () in
  let p = Extmem.Pager.create ~frames:2 d in
  Extmem.Pager.write_byte p 9 'z';
  Extmem.Pager.flush p;
  check Alcotest.bool "extended" true (Extmem.Device.block_count d >= 3);
  check Alcotest.char "value" 'z' (Extmem.Pager.read_byte p 9)

let prop_pager_matches_device =
  QCheck.Test.make ~name:"Pager read/write matches a plain byte array" ~count:150
    QCheck.(
      triple (int_range 1 4)
        (list (pair (int_bound 63) printable_char))
        bool)
    (fun (frames, writes, use_clock) ->
      let d = Extmem.Device.in_memory ~block_size:8 () in
      ignore (Extmem.Device.allocate d 8);
      let policy = if use_clock then Extmem.Pager.Clock else Extmem.Pager.Lru in
      let p = Extmem.Pager.create ~policy ~frames d in
      let model = Bytes.make 64 '\000' in
      List.iter
        (fun (off, c) ->
          Extmem.Pager.write_byte p off c;
          Bytes.set model off c)
        writes;
      let ok = ref true in
      for i = 0 to 63 do
        if Extmem.Pager.read_byte p i <> Bytes.get model i then ok := false
      done;
      Extmem.Pager.flush p;
      !ok && Extmem.Device.contents d = Bytes.to_string model)

let prop_pager_policies_with_pins =
  (* every replacement policy, with a strict subset of the frames pinned
     across the whole run: reads/writes must still match a plain byte
     array, pinned blocks must survive all the eviction traffic, and the
     flushed device must be byte-identical to the model *)
  QCheck.Test.make ~name:"Frame cache matches a byte array under every policy with pins"
    ~count:200
    QCheck.(
      quad (int_range 2 4) (int_bound 3)
        (list_of_size (Gen.int_range 1 3) (int_bound 7))
        (list (pair (int_bound 63) printable_char)))
    (fun (frames, pidx, pin_blocks, writes) ->
      let policy = List.nth Extmem.Frame_arena.all_policies pidx in
      let d = Extmem.Device.in_memory ~block_size:8 () in
      ignore (Extmem.Device.allocate d 8);
      let arena = Extmem.Frame_arena.create () in
      let c = Extmem.Frame_arena.attach arena ~who:"prop" ~policy ~frames d in
      (* at most frames-1 pinned blocks, so eviction always has a victim *)
      let pins =
        List.filteri (fun i _ -> i < frames - 1) (List.sort_uniq compare pin_blocks)
      in
      List.iter (Extmem.Frame_arena.pin c) pins;
      let model = Bytes.make 64 '\000' in
      List.iter
        (fun (off, ch) ->
          Extmem.Frame_arena.write_byte c off ch;
          Bytes.set model off ch)
        writes;
      let ok = ref true in
      for i = 0 to 63 do
        if Extmem.Frame_arena.read_byte c i <> Bytes.get model i then ok := false
      done;
      List.iter
        (fun b -> if Extmem.Frame_arena.pinned c b = 0 then ok := false)
        pins;
      List.iter (Extmem.Frame_arena.unpin c) pins;
      Extmem.Frame_arena.flush c;
      let same = Extmem.Device.contents d = Bytes.to_string model in
      Extmem.Frame_arena.detach c;
      (* the owner's counters survive the detach *)
      let survived =
        List.mem_assoc "prop" (Extmem.Frame_arena.owners arena)
        && (Extmem.Frame_arena.totals arena).Extmem.Frame_arena.misses > 0
      in
      !ok && same && survived)

(* ------------------------------------------------------------------ *)
(* Btree *)

let new_btree ?(block_size = 128) ?(frames = 4) () =
  let dev = Extmem.Device.in_memory ~block_size () in
  (Extmem.Btree.create ~frames ~cmp:compare dev, dev)

let test_btree_basic () =
  let t, _ = new_btree () in
  check Alcotest.int "empty" 0 (Extmem.Btree.length t);
  Extmem.Btree.insert t ~key:"b" ~value:"2";
  Extmem.Btree.insert t ~key:"a" ~value:"1";
  Extmem.Btree.insert t ~key:"c" ~value:"3";
  check Alcotest.int "length" 3 (Extmem.Btree.length t);
  check (Alcotest.option Alcotest.string) "find a" (Some "1") (Extmem.Btree.find t "a");
  check (Alcotest.option Alcotest.string) "find c" (Some "3") (Extmem.Btree.find t "c");
  check (Alcotest.option Alcotest.string) "missing" None (Extmem.Btree.find t "zz");
  Extmem.Btree.insert t ~key:"b" ~value:"two";
  check Alcotest.int "replace keeps length" 3 (Extmem.Btree.length t);
  check (Alcotest.option Alcotest.string) "replaced" (Some "two") (Extmem.Btree.find t "b")

let test_btree_splits_and_order () =
  let t, _ = new_btree () in
  let n = 500 in
  for i = 0 to n - 1 do
    let k = Printf.sprintf "%05d" ((i * 48271) mod 99991) in
    Extmem.Btree.insert t ~key:k ~value:("v" ^ k)
  done;
  check Alcotest.bool "grew levels" true (Extmem.Btree.height t > 1);
  let prev = ref "" in
  let count = ref 0 in
  Extmem.Btree.iter t (fun k v ->
      check Alcotest.bool "ascending" true (!prev < k);
      check Alcotest.string "value" ("v" ^ k) v;
      prev := k;
      incr count);
  check Alcotest.int "all present" (Extmem.Btree.length t) !count

let test_btree_iter_from () =
  let t, _ = new_btree () in
  List.iter (fun k -> Extmem.Btree.insert t ~key:k ~value:k) [ "a"; "c"; "e"; "g"; "i" ];
  let got = ref [] in
  Extmem.Btree.iter_from t "d" (fun k _ ->
      got := k :: !got;
      true);
  check (Alcotest.list Alcotest.string) "from d" [ "e"; "g"; "i" ] (List.rev !got);
  (* early stop *)
  let got = ref [] in
  Extmem.Btree.iter_from t "" (fun k _ ->
      got := k :: !got;
      List.length !got < 2);
  check Alcotest.int "stopped" 2 (List.length !got)

let test_btree_delete () =
  let t, _ = new_btree () in
  List.iter (fun k -> Extmem.Btree.insert t ~key:k ~value:k) [ "a"; "b"; "c" ];
  check Alcotest.bool "delete b" true (Extmem.Btree.delete t "b");
  check Alcotest.bool "delete again" false (Extmem.Btree.delete t "b");
  check Alcotest.int "length" 2 (Extmem.Btree.length t);
  check (Alcotest.option Alcotest.string) "gone" None (Extmem.Btree.find t "b");
  check (Alcotest.option Alcotest.string) "others intact" (Some "a") (Extmem.Btree.find t "a")

let test_btree_persistence () =
  let dev = Extmem.Device.in_memory ~block_size:128 () in
  let t = Extmem.Btree.create ~cmp:compare dev in
  for i = 0 to 199 do
    Extmem.Btree.insert t ~key:(Printf.sprintf "k%03d" i) ~value:(string_of_int i)
  done;
  Extmem.Btree.flush t;
  let t2 = Extmem.Btree.reopen ~cmp:compare dev in
  check Alcotest.int "count preserved" 200 (Extmem.Btree.length t2);
  check (Alcotest.option Alcotest.string) "lookup after reopen" (Some "123")
    (Extmem.Btree.find t2 "k123")

let test_btree_entry_too_large () =
  let t, _ = new_btree ~block_size:128 () in
  try
    Extmem.Btree.insert t ~key:(String.make 100 'k') ~value:(String.make 100 'v');
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_btree_custom_order () =
  let dev = Extmem.Device.in_memory ~block_size:128 () in
  let cmp a b = compare b a (* descending *) in
  let t = Extmem.Btree.create ~cmp dev in
  List.iter (fun k -> Extmem.Btree.insert t ~key:k ~value:k) [ "a"; "b"; "c" ];
  let got = ref [] in
  Extmem.Btree.iter t (fun k _ -> got := k :: !got);
  check (Alcotest.list Alcotest.string) "descending" [ "a"; "b"; "c" ] !got

let prop_btree_matches_map =
  (* model-based: random insert/replace/delete/lookup traces *)
  QCheck.Test.make ~name:"Btree behaves like Map" ~count:120
    QCheck.(
      pair (int_range 96 256)
        (list (pair (int_bound 3) (pair (int_bound 60) (string_of_size (QCheck.Gen.int_bound 6))))))
    (fun (block_size, ops) ->
      let dev = Extmem.Device.in_memory ~block_size () in
      let t = Extmem.Btree.create ~frames:3 ~cmp:compare dev in
      let model = Hashtbl.create 32 in
      List.iter
        (fun (op, (kn, v)) ->
          let k = Printf.sprintf "k%02d" kn in
          match op with
          | 0 | 1 ->
              Extmem.Btree.insert t ~key:k ~value:v;
              Hashtbl.replace model k v
          | 2 ->
              let got = Extmem.Btree.delete t k in
              let want = Hashtbl.mem model k in
              Hashtbl.remove model k;
              if got <> want then QCheck.Test.fail_reportf "delete %s: %b vs %b" k got want
          | _ ->
              let got = Extmem.Btree.find t k in
              let want = Hashtbl.find_opt model k in
              if got <> want then QCheck.Test.fail_reportf "find %s mismatch" k)
        ops;
      (* final state: same sorted associations, same count *)
      let got = ref [] in
      Extmem.Btree.iter t (fun k v -> got := (k, v) :: !got);
      let want = List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) model []) in
      List.rev !got = want && Extmem.Btree.length t = Hashtbl.length model)

let prop_btree_survives_reopen =
  QCheck.Test.make ~name:"Btree reopen preserves contents" ~count:60
    QCheck.(list (pair (int_bound 99) (string_of_size (QCheck.Gen.int_bound 8))))
    (fun kvs ->
      let dev = Extmem.Device.in_memory ~block_size:128 () in
      let t = Extmem.Btree.create ~cmp:compare dev in
      List.iter (fun (k, v) -> Extmem.Btree.insert t ~key:(Printf.sprintf "%02d" k) ~value:v) kvs;
      Extmem.Btree.flush t;
      let t2 = Extmem.Btree.reopen ~cmp:compare dev in
      List.for_all
        (fun (k, _) ->
          Extmem.Btree.find t2 (Printf.sprintf "%02d" k)
          = Extmem.Btree.find t (Printf.sprintf "%02d" k))
        kvs)

(* ------------------------------------------------------------------ *)
(* Trace *)

let test_trace_sequential_scan () =
  let d = Extmem.Device.of_string ~block_size:8 (String.make 64 'x') in
  let t = Extmem.Trace.attach d in
  let r = Extmem.Block_reader.of_device d in
  let buf = Bytes.create 64 in
  ignore (Extmem.Block_reader.read_bytes r buf 0 64);
  Extmem.Trace.detach t;
  let s = Extmem.Trace.summarize t in
  check Alcotest.int "accesses" 8 s.Extmem.Trace.accesses;
  check (Alcotest.float 0.01) "fully sequential" 1.0 (Extmem.Trace.sequential_fraction s);
  check Alcotest.int "no backward" 0 s.Extmem.Trace.backward;
  check (Alcotest.list Alcotest.int) "order" [ 0; 1; 2; 3; 4; 5; 6; 7 ] (Extmem.Trace.blocks t)

let test_trace_random_pattern () =
  let d = Extmem.Device.of_string ~block_size:8 (String.make 80 'x') in
  let t = Extmem.Trace.attach d in
  let buf = Bytes.create 8 in
  List.iter (fun i -> Extmem.Device.read_block d i buf) [ 9; 0; 9; 0; 5 ];
  Extmem.Trace.detach t;
  let s = Extmem.Trace.summarize t in
  check Alcotest.int "accesses" 5 s.Extmem.Trace.accesses;
  check Alcotest.int "backward jumps" 2 s.Extmem.Trace.backward;
  check Alcotest.int "max block" 9 s.Extmem.Trace.max_block;
  check Alcotest.bool "high mean seek" true (s.Extmem.Trace.mean_distance > 5.0);
  (* detaching stops recording *)
  Extmem.Device.read_block d 3 buf;
  check Alcotest.int "no more recording" 5 (Extmem.Trace.length t)

let test_trace_empty () =
  let d = Extmem.Device.in_memory ~block_size:8 () in
  let t = Extmem.Trace.attach d in
  let s = Extmem.Trace.summarize t in
  check Alcotest.int "no accesses" 0 s.Extmem.Trace.accesses;
  check (Alcotest.float 0.01) "fraction 0" 0.0 (Extmem.Trace.sequential_fraction s)

let test_trace_detach_removes_layer () =
  let d = Extmem.Device.of_string ~block_size:8 (String.make 64 'x') in
  let base_layers = List.length (Extmem.Device.layers d) in
  let buf = Bytes.create 8 in
  (* repeated attach/detach must not leave inert observer layers behind *)
  for _ = 1 to 10 do
    let t = Extmem.Trace.attach d in
    Extmem.Device.read_block d 0 buf;
    Extmem.Trace.detach t;
    (* detach is idempotent *)
    Extmem.Trace.detach t
  done;
  check Alcotest.int "layer stack back to original size" base_layers
    (List.length (Extmem.Device.layers d));
  (* a detached trace no longer records, even while another is attached *)
  let t1 = Extmem.Trace.attach d in
  let t2 = Extmem.Trace.attach d in
  Extmem.Trace.detach t1;
  Extmem.Device.read_block d 1 buf;
  check Alcotest.int "detached trace silent" 0 (Extmem.Trace.length t1);
  check Alcotest.int "remaining trace records" 1 (Extmem.Trace.length t2);
  Extmem.Trace.detach t2;
  check Alcotest.int "stack clean after interleaved detach" base_layers
    (List.length (Extmem.Device.layers d))

let test_trace_observer () =
  let d = Extmem.Device.of_string ~block_size:8 (String.make 64 'x') in
  let t = Extmem.Trace.attach d in
  let seen = ref [] in
  Extmem.Trace.set_observer t (fun op i -> seen := (op, i) :: !seen);
  let buf = Bytes.create 8 in
  Extmem.Device.read_block d 2 buf;
  Extmem.Device.write_block d 5 (Bytes.make 8 'y');
  check Alcotest.int "observer saw both accesses" 2 (List.length !seen);
  check Alcotest.bool "read forwarded" true (List.mem (Extmem.Backend.Read, 2) !seen);
  check Alcotest.bool "write forwarded" true (List.mem (Extmem.Backend.Write, 5) !seen);
  check Alcotest.int "trace still records alongside" 2 (Extmem.Trace.length t);
  (* detach removes the layer, silencing the trace AND its observer *)
  Extmem.Trace.detach t;
  Extmem.Device.read_block d 0 buf;
  check Alcotest.int "observer silent after detach" 2 (List.length !seen);
  check Alcotest.int "trace silent after detach" 2 (Extmem.Trace.length t)

(* ------------------------------------------------------------------ *)
(* Latency histograms and the timed layer *)

let test_latency_histogram () =
  let open Extmem.Io_stats.Latency in
  let l = create () in
  check Alcotest.int "empty percentile" 0 (percentile l.read 0.99);
  List.iter (observe l.read) [ 0; 1; 100; 100; 5000 ];
  observe l.read (-7);
  (* negative clamps to 0 *)
  check Alcotest.int "count" 6 (count l.read);
  check Alcotest.int "sum" 5201 (sum_ns l.read);
  check Alcotest.int "max" 5000 (max_ns l.read);
  check Alcotest.int "write side untouched" 0 (count l.write);
  (* log2 buckets: 0s and 1 in the low buckets, 100s share one, 5000 tops *)
  (match buckets l.read with
  | (b0, c0) :: _ ->
      check Alcotest.int "first bound" 1 b0;
      check Alcotest.int "zeros clamp into the first bucket" 2 c0
  | [] -> Alcotest.fail "no buckets");
  check Alcotest.bool "p50 in the low buckets" true (percentile l.read 0.5 <= 2);
  check Alcotest.bool "p75 covers the 100s" true
    (let p = percentile l.read 0.75 in
     p >= 100 && p < 5000);
  check Alcotest.int "p100 capped at observed max" 5000 (percentile l.read 1.0);
  let into = create () in
  observe into.read 1;
  accumulate ~into l;
  check Alcotest.int "accumulate merges counts" 7 (count into.read);
  check Alcotest.int "accumulate merges sums" 5202 (sum_ns into.read)

let test_layer_timed () =
  let d = Extmem.Device.of_string ~block_size:8 (String.make 64 'x') in
  let lat = Extmem.Io_stats.Latency.create () in
  let clock = ref 0 in
  let tick () =
    let t = !clock in
    clock := t + 5;
    t
  in
  let hooked = ref [] in
  let hook op i ~start_ns ~dur_ns = hooked := (op, i, start_ns, dur_ns) :: !hooked in
  Extmem.Device.push_layer d (Extmem.Layer.timed ~clock:tick ~hook lat);
  let buf = Bytes.create 8 in
  Extmem.Device.read_block d 0 buf;
  Extmem.Device.read_block d 1 buf;
  Extmem.Device.write_block d 2 (Bytes.make 8 'y');
  (* the fake clock advances 5 per call; each I/O reads it twice *)
  check Alcotest.int "read count" 2 (Extmem.Io_stats.Latency.count lat.read);
  check Alcotest.int "read sum" 10 (Extmem.Io_stats.Latency.sum_ns lat.read);
  check Alcotest.int "write count" 1 (Extmem.Io_stats.Latency.count lat.write);
  check
    (Alcotest.list (Alcotest.triple Alcotest.int Alcotest.int Alcotest.int))
    "hook saw every I/O with its start and duration"
    [ (0, 0, 5); (1, 10, 5); (2, 20, 5) ]
    (List.rev_map (fun (_, i, s, dur) -> (i, s, dur)) !hooked)

(* ------------------------------------------------------------------ *)
(* Memory_budget *)

let test_budget_basics () =
  let b = Extmem.Memory_budget.create ~blocks:10 ~block_size:64 in
  check Alcotest.int "total" 10 (Extmem.Memory_budget.total_blocks b);
  Extmem.Memory_budget.reserve b ~who:"test" 4;
  check Alcotest.int "used" 4 (Extmem.Memory_budget.used_blocks b);
  check Alcotest.int "available bytes" (6 * 64) (Extmem.Memory_budget.available_bytes b);
  Extmem.Memory_budget.release b ~who:"test" 4;
  check Alcotest.int "released" 0 (Extmem.Memory_budget.used_blocks b)

let test_budget_exhaustion () =
  let b = Extmem.Memory_budget.create ~blocks:2 ~block_size:8 in
  Extmem.Memory_budget.reserve b ~who:"a" 2;
  (try
     Extmem.Memory_budget.reserve b ~who:"b" 1;
     Alcotest.fail "expected Exhausted"
   with Extmem.Memory_budget.Exhausted msg ->
     check Alcotest.bool "names culprit" true
       (String.length msg > 0 && String.sub msg 0 1 = "b");
     (* the per-owner ledger names who is sitting on the memory *)
     let contains hay needle =
       let nh = String.length hay and nn = String.length needle in
       let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
       go 0
     in
     check Alcotest.bool "names holders" true (contains msg "a=2"));
  Extmem.Memory_budget.release b ~who:"a" 2

let test_budget_ledger () =
  let b = Extmem.Memory_budget.create ~blocks:10 ~block_size:8 in
  Extmem.Memory_budget.reserve b ~who:"x" 3;
  Extmem.Memory_budget.reserve b ~who:"y" 2;
  Extmem.Memory_budget.reserve b ~who:"x" 1;
  check Alcotest.int "held x" 4 (Extmem.Memory_budget.held b "x");
  check Alcotest.int "held y" 2 (Extmem.Memory_budget.held b "y");
  check Alcotest.int "held stranger" 0 (Extmem.Memory_budget.held b "z");
  check
    Alcotest.(list (pair string int))
    "holders sorted" [ ("x", 4); ("y", 2) ]
    (Extmem.Memory_budget.holders b);
  (* over-release by one owner is a bug even when the global count is
     large enough *)
  (try
     Extmem.Memory_budget.release b ~who:"y" 3;
     Alcotest.fail "expected over-release rejection"
   with Invalid_argument _ -> ());
  Extmem.Memory_budget.release b ~who:"x" 4;
  Extmem.Memory_budget.release b ~who:"y" 2;
  check Alcotest.(list (pair string int)) "ledger empty" [] (Extmem.Memory_budget.holders b);
  check Alcotest.int "all released" 0 (Extmem.Memory_budget.used_blocks b)

let test_budget_with_reserved () =
  let b = Extmem.Memory_budget.create ~blocks:4 ~block_size:8 in
  (try
     Extmem.Memory_budget.with_reserved b ~who:"scope" 3 (fun () -> failwith "boom")
   with Failure _ -> ());
  check Alcotest.int "released on exception" 0 (Extmem.Memory_budget.used_blocks b)

let test_budget_carve () =
  let b = Extmem.Memory_budget.create ~blocks:8 ~block_size:8 in
  let sub = Extmem.Memory_budget.carve b ~who:"worker 0" ~blocks:3 () in
  check Alcotest.int "slab reserved in parent" 3 (Extmem.Memory_budget.held b "worker 0");
  Extmem.Memory_budget.reserve sub ~who:"lease" 2;
  check Alcotest.int "parent unchanged by sub reserve" 3 (Extmem.Memory_budget.used_blocks b);
  (* the sub-budget is a hard wall, not a window onto the parent *)
  (try
     Extmem.Memory_budget.reserve sub ~who:"greedy" 2;
     Alcotest.fail "expected sub-budget exhaustion"
   with Extmem.Memory_budget.Exhausted _ -> ());
  (* uncarve refuses while the sub-budget still holds blocks *)
  (try
     Extmem.Memory_budget.uncarve sub;
     Alcotest.fail "expected uncarve rejection while held"
   with Invalid_argument _ -> ());
  Extmem.Memory_budget.release sub ~who:"lease" 2;
  Extmem.Memory_budget.uncarve sub;
  check Alcotest.int "slab returned to parent" 0 (Extmem.Memory_budget.used_blocks b);
  try
    Extmem.Memory_budget.uncarve b;
    Alcotest.fail "expected root uncarve rejection"
  with Invalid_argument _ -> ()

let test_budget_parallel_hammer () =
  (* four domains hammer one ledger; the mutexed bookkeeping must end
     exactly balanced, and per-owner over-release must still be caught
     after the storm *)
  let b = Extmem.Memory_budget.create ~blocks:64 ~block_size:8 in
  let rounds = 2_000 in
  let worker i () =
    let who = Printf.sprintf "dom%d" i in
    for _ = 1 to rounds do
      Extmem.Memory_budget.reserve b ~who 2;
      Extmem.Memory_budget.release b ~who 1;
      Extmem.Memory_budget.reserve b ~who 1;
      Extmem.Memory_budget.release b ~who 2
    done
  in
  let doms = List.init 4 (fun i -> Domain.spawn (worker i)) in
  List.iter Domain.join doms;
  check Alcotest.int "balanced after join" 0 (Extmem.Memory_budget.used_blocks b);
  check Alcotest.(list (pair string int)) "ledger empty" [] (Extmem.Memory_budget.holders b);
  try
    Extmem.Memory_budget.release b ~who:"dom0" 1;
    Alcotest.fail "expected over-release rejection"
  with Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* composable device stack: layers, specs, simulated cost *)

let test_layers_compose () =
  (* regression: attaching one hook must not displace another — a single
     device carries accounting, two traces and a fault layer at once *)
  let d = Extmem.Device.in_memory ~block_size:8 () in
  ignore (Extmem.Device.allocate d 4);
  let t1 = Extmem.Trace.attach d in
  let armed = ref false in
  Extmem.Device.push_layer d
    (Extmem.Layer.fault_hook (fun op i -> !armed && op = Extmem.Backend.Read && i = 3));
  let t2 = Extmem.Trace.attach d in
  let buf = Bytes.create 8 in
  Extmem.Device.write_block d 0 (Bytes.make 8 'x');
  Extmem.Device.read_block d 0 buf;
  Extmem.Device.read_block d 1 buf;
  check Alcotest.int "inner trace sees all" 3 (Extmem.Trace.length t1);
  check Alcotest.int "outer trace sees all" 3 (Extmem.Trace.length t2);
  let s = Extmem.Device.stats d in
  check Alcotest.int "stats reads" 2 s.Extmem.Io_stats.reads;
  check Alcotest.int "stats writes" 1 s.Extmem.Io_stats.writes;
  armed := true;
  (match Extmem.Device.read_block d 3 buf with
  | () -> Alcotest.fail "expected a fault"
  | exception Extmem.Device.Fault (Extmem.Device.Read, 3) -> ());
  (* layers above the fault saw the attempt; those below (and the
     accounting) did not — faulted I/Os are not counted *)
  check Alcotest.int "outer trace saw the attempt" 4 (Extmem.Trace.length t2);
  check Alcotest.int "inner trace did not" 3 (Extmem.Trace.length t1);
  check Alcotest.int "faulted read not counted" 2 s.Extmem.Io_stats.reads;
  check
    (Alcotest.list Alcotest.string)
    "layer names, outermost first"
    [ "observe"; "fault"; "observe"; "stats" ]
    (Extmem.Device.layers d)

let test_device_spec_roundtrip () =
  List.iter
    (fun s ->
      let spec = Extmem.Device_spec.parse s in
      check Alcotest.string s s (Extmem.Device_spec.to_string spec);
      (* to_string must itself re-parse to the same spec *)
      check Alcotest.string "reparse" s
        (Extmem.Device_spec.to_string (Extmem.Device_spec.parse (Extmem.Device_spec.to_string spec))))
    [
      "mem";
      "file:/tmp/some/dir/dev.img";
      "traced/mem";
      "faulty:p=0.001,seed=42/file:run.dev";
      "traced/faulty:p=0.5,seed=7/cost:seek=8,read=0.05,write=0.06/mem";
    ]

let test_device_spec_malformed () =
  List.iter
    (fun s ->
      match Extmem.Device_spec.parse s with
      | _ -> Alcotest.failf "expected %S to be rejected" s
      | exception Invalid_argument _ -> ())
    [ ""; "bogus"; "traced"; "mem/traced"; "faulty:p=2/mem"; "faulty:p=x/mem";
      "cost:profile=tape/mem"; "file:"; "/mem"; "traced/" ]

let test_device_spec_build () =
  let built =
    Extmem.Device_spec.build ~block_size:8
      (Extmem.Device_spec.parse "traced/cost:profile=ssd/mem")
  in
  let d = built.Extmem.Device_spec.device in
  check Alcotest.bool "trace handle" true (built.Extmem.Device_spec.trace <> None);
  check Alcotest.bool "cost handle" true (built.Extmem.Device_spec.cost <> None);
  ignore (Extmem.Device.allocate d 2);
  Extmem.Device.write_block d 0 (Bytes.make 8 'a');
  Extmem.Device.write_block d 1 (Bytes.make 8 'b');
  (match built.Extmem.Device_spec.trace with
  | Some t -> check (Alcotest.list Alcotest.int) "trace" [ 0; 1 ] (Extmem.Trace.blocks t)
  | None -> ());
  check Alcotest.bool "simulated time accrued" true (Extmem.Device.simulated_ms d > 0.);
  check
    (Alcotest.list Alcotest.string)
    "layers" [ "observe"; "cost"; "stats" ] (Extmem.Device.layers d)

let test_faulty_deterministic () =
  (* the seeded fault layer is a pure function of (seed, access index):
     two identically-seeded devices fault on exactly the same accesses *)
  let faults_of ~seed ~p n =
    let d = Extmem.Device.in_memory ~block_size:4 () in
    ignore (Extmem.Device.allocate d 1);
    Extmem.Device.push_layer d (Extmem.Layer.faulty ~seed ~p ());
    let buf = Bytes.create 4 in
    List.init n (fun _ ->
        match Extmem.Device.read_block d 0 buf with
        | () -> false
        | exception Extmem.Device.Fault _ -> true)
  in
  let a = faults_of ~seed:1 ~p:0.3 200 and b = faults_of ~seed:1 ~p:0.3 200 in
  check (Alcotest.list Alcotest.bool) "same seed, same faults" a b;
  check Alcotest.bool "some faults at p=0.3" true (List.mem true a);
  check Alcotest.bool "some successes at p=0.3" true (List.mem false a);
  check Alcotest.bool "different seed differs" true (faults_of ~seed:2 ~p:0.3 200 <> a);
  check Alcotest.bool "p=0 never faults" true
    (List.for_all not (faults_of ~seed:1 ~p:0. 50));
  check Alcotest.bool "p=1 always faults" true
    (List.for_all Fun.id (faults_of ~seed:1 ~p:1. 50));
  Alcotest.check_raises "p out of range"
    (Invalid_argument "Layer.faulty: p must lie in [0,1]")
    (fun () -> ignore (Extmem.Layer.faulty ~p:2. ()))

let test_cost_layer () =
  (* same number of I/Os, different layout: the sequential scan must be
     charged far less simulated time than the strided pattern *)
  let scan ~stride =
    let d = Extmem.Device.in_memory ~block_size:4 () in
    ignore (Extmem.Device.allocate d 64);
    let c = Extmem.Device.attach_cost d in
    let buf = Bytes.create 4 in
    for i = 0 to 63 do
      Extmem.Device.read_block d (i * stride mod 64) buf
    done;
    check Alcotest.int "accesses charged" 64 (Extmem.Cost_model.charged c);
    (Extmem.Cost_model.seeks c, Extmem.Device.simulated_ms d)
  in
  let seq_seeks, seq_ms = scan ~stride:1 in
  let rand_seeks, rand_ms = scan ~stride:17 in
  check Alcotest.int "one positioning seek" 1 seq_seeks;
  check Alcotest.int "every strided access seeks" 64 rand_seeks;
  check Alcotest.bool "seeky pattern costs more" true (rand_ms > 10. *. seq_ms);
  (* ssd narrows the gap: seeks are nearly free *)
  let d = Extmem.Device.in_memory ~block_size:4 () in
  ignore (Extmem.Device.allocate d 4);
  let c = Extmem.Device.attach_cost ~params:Extmem.Cost_model.ssd d in
  Extmem.Device.write_block d 3 (Bytes.make 4 'z');
  check Alcotest.bool "ssd write charged" true (Extmem.Cost_model.elapsed_ms c < 1.)

let test_pager_policies_same_contents () =
  (* LRU and Clock evict different frames but must produce identical
     final device contents under the same write workload *)
  let run policy =
    let d = Extmem.Device.in_memory ~block_size:4 () in
    ignore (Extmem.Device.allocate d 16);
    let p = Extmem.Pager.create ~policy ~frames:3 d in
    let rng = ref 123456789 in
    for i = 0 to 499 do
      rng := (!rng * 1103515245) + 12345;
      let off = abs !rng mod 64 in
      if i mod 3 = 0 then ignore (Extmem.Pager.read_byte p off)
      else Extmem.Pager.write_byte p off (Char.chr (65 + (i mod 26)))
    done;
    Extmem.Pager.flush p;
    Extmem.Device.contents d
  in
  check Alcotest.string "lru = clock"
    (run Extmem.Pager.Lru) (run Extmem.Pager.Clock)

let test_pager_clean_evictions_cost_no_writes () =
  (* dirty-only write-back, asserted through the device's accounting:
     a read-only workload that overflows the pool many times over must
     not write a single block *)
  let check_policy policy =
    let d = Extmem.Device.in_memory ~block_size:4 () in
    ignore (Extmem.Device.allocate d 32);
    let p = Extmem.Pager.create ~policy ~frames:2 d in
    Extmem.Io_stats.reset (Extmem.Device.stats d);
    for i = 0 to 127 do
      ignore (Extmem.Pager.read_byte p (i * 4 mod 128))
    done;
    Extmem.Pager.flush p;
    let s = Extmem.Device.stats d in
    check Alcotest.bool "evictions happened" true (Extmem.Pager.misses p > 2);
    check Alcotest.int "clean evictions write nothing" 0 s.Extmem.Io_stats.writes;
    (* one dirty byte: exactly the dirty frame is written back *)
    Extmem.Pager.write_byte p 0 '!';
    ignore (Extmem.Pager.read_byte p 8);
    ignore (Extmem.Pager.read_byte p 16);
    Extmem.Pager.flush p;
    check Alcotest.int "only the dirty frame written" 1 s.Extmem.Io_stats.writes
  in
  check_policy Extmem.Pager.Lru;
  check_policy Extmem.Pager.Clock

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "extmem"
    [
      ( "vec",
        [
          Alcotest.test_case "basic" `Quick test_vec_basic;
          Alcotest.test_case "bounds" `Quick test_vec_bounds;
          Alcotest.test_case "sort" `Quick test_vec_sort;
          Alcotest.test_case "iter" `Quick test_vec_iter;
          qcheck prop_vec_model;
        ] );
      ( "deque",
        [
          Alcotest.test_case "basic" `Quick test_deque_basic;
          Alcotest.test_case "empty" `Quick test_deque_empty;
          qcheck prop_deque_model;
        ] );
      ( "codec",
        [
          Alcotest.test_case "varint" `Quick test_codec_varint;
          Alcotest.test_case "zigzag" `Quick test_codec_zigzag;
          Alcotest.test_case "string" `Quick test_codec_string;
          Alcotest.test_case "fixed" `Quick test_codec_fixed;
          Alcotest.test_case "u32_at" `Quick test_codec_u32_at;
          Alcotest.test_case "truncated" `Quick test_codec_truncated;
          Alcotest.test_case "extremes" `Quick test_codec_extremes;
          Alcotest.test_case "string extremes" `Quick test_codec_string_extremes;
          Alcotest.test_case "u32 wraparound" `Quick test_codec_u32_wraparound;
          qcheck prop_codec_enc_matches_buffer;
          qcheck prop_codec_slice_decode;
          qcheck prop_codec_roundtrip;
        ] );
      ( "device",
        [
          Alcotest.test_case "mem roundtrip" `Quick test_device_mem_roundtrip;
          Alcotest.test_case "io counting" `Quick test_device_counts_io;
          Alcotest.test_case "bounds" `Quick test_device_bounds;
          Alcotest.test_case "of_string" `Quick test_device_of_string;
          Alcotest.test_case "file backend" `Quick test_device_file;
          Alcotest.test_case "fault injection" `Quick test_device_fault_injection;
        ] );
      ( "stack",
        [
          Alcotest.test_case "layers compose" `Quick test_layers_compose;
          Alcotest.test_case "spec roundtrip" `Quick test_device_spec_roundtrip;
          Alcotest.test_case "spec malformed" `Quick test_device_spec_malformed;
          Alcotest.test_case "spec build" `Quick test_device_spec_build;
          Alcotest.test_case "faulty deterministic" `Quick test_faulty_deterministic;
          Alcotest.test_case "cost layer" `Quick test_cost_layer;
        ] );
      ( "streams",
        [
          Alcotest.test_case "roundtrip" `Quick test_stream_roundtrip;
          Alcotest.test_case "io counts" `Quick test_stream_io_counts;
          Alcotest.test_case "records" `Quick test_stream_records;
          Alcotest.test_case "seek" `Quick test_stream_seek;
          qcheck prop_stream_roundtrip;
        ] );
      ( "run_store",
        [
          Alcotest.test_case "basic" `Quick test_run_store;
          Alcotest.test_case "exclusive writer" `Quick test_run_store_exclusive;
          Alcotest.test_case "read_run stream" `Quick test_run_store_read_run;
          Alcotest.test_case "reserve/install" `Quick test_run_store_reserve_install;
        ] );
      ( "ext_stack",
        [
          Alcotest.test_case "basic" `Quick test_ext_stack_basic;
          Alcotest.test_case "spills" `Quick test_ext_stack_spills;
          Alcotest.test_case "no io when resident" `Quick test_ext_stack_no_io_when_resident;
          Alcotest.test_case "paging counters" `Quick test_ext_stack_paging_counters;
          Alcotest.test_case "large entry" `Quick test_ext_stack_large_entry;
          Alcotest.test_case "scan and truncate" `Quick test_ext_stack_scan_and_truncate;
          Alcotest.test_case "read_all_from" `Quick test_ext_stack_read_all_from;
          Alcotest.test_case "interleaved after spill" `Quick test_ext_stack_interleaved_after_spill;
          Alcotest.test_case "borrow window" `Quick test_ext_stack_borrow_window;
          Alcotest.test_case "borrow released on truncate" `Quick
            test_ext_stack_borrow_release_on_truncate;
          Alcotest.test_case "borrow stops at exhaustion" `Quick
            test_ext_stack_borrow_stops_at_exhaustion;
          Alcotest.test_case "shed dirty ledger" `Quick test_ext_stack_shed_dirty_ledger;
          Alcotest.test_case "shed nothing borrowed" `Quick
            test_ext_stack_shed_nothing_borrowed;
          Alcotest.test_case "borrow recovers after release" `Quick
            test_ext_stack_borrow_recovers_after_release;
          Alcotest.test_case "close releases budget" `Quick
            test_ext_stack_close_releases_budget;
          Alcotest.test_case "borrow across session reclaim" `Quick
            test_ext_stack_borrow_across_session_reclaim;
          qcheck prop_ext_stack_model;
          qcheck prop_ext_stack_push_io_linear;
        ] );
      ( "pager",
        [
          Alcotest.test_case "lru basics" `Quick (pager_test Extmem.Pager.Lru);
          Alcotest.test_case "clock basics" `Quick (pager_test Extmem.Pager.Clock);
          Alcotest.test_case "lru eviction order" `Quick test_pager_lru_eviction_order;
          Alcotest.test_case "write extends device" `Quick test_pager_write_extends_device;
          Alcotest.test_case "policies agree on contents" `Quick test_pager_policies_same_contents;
          Alcotest.test_case "dirty-only writeback" `Quick test_pager_clean_evictions_cost_no_writes;
          Alcotest.test_case "eviction/writeback counters" `Quick
            test_pager_eviction_writeback_counters;
          qcheck prop_pager_matches_device;
          qcheck prop_pager_policies_with_pins;
        ] );
      ( "btree",
        [
          Alcotest.test_case "basic" `Quick test_btree_basic;
          Alcotest.test_case "splits and order" `Quick test_btree_splits_and_order;
          Alcotest.test_case "iter_from" `Quick test_btree_iter_from;
          Alcotest.test_case "delete" `Quick test_btree_delete;
          Alcotest.test_case "persistence" `Quick test_btree_persistence;
          Alcotest.test_case "entry too large" `Quick test_btree_entry_too_large;
          Alcotest.test_case "custom order" `Quick test_btree_custom_order;
          qcheck prop_btree_matches_map;
          qcheck prop_btree_survives_reopen;
        ] );
      ( "trace",
        [
          Alcotest.test_case "sequential scan" `Quick test_trace_sequential_scan;
          Alcotest.test_case "random pattern" `Quick test_trace_random_pattern;
          Alcotest.test_case "empty" `Quick test_trace_empty;
          Alcotest.test_case "detach removes the layer" `Quick test_trace_detach_removes_layer;
          Alcotest.test_case "observer forwarding and detach" `Quick test_trace_observer;
        ] );
      ( "latency",
        [
          Alcotest.test_case "histogram" `Quick test_latency_histogram;
          Alcotest.test_case "timed layer" `Quick test_layer_timed;
        ] );
      ( "memory_budget",
        [
          Alcotest.test_case "basics" `Quick test_budget_basics;
          Alcotest.test_case "exhaustion" `Quick test_budget_exhaustion;
          Alcotest.test_case "per-owner ledger" `Quick test_budget_ledger;
          Alcotest.test_case "with_reserved" `Quick test_budget_with_reserved;
          Alcotest.test_case "carve/uncarve" `Quick test_budget_carve;
          Alcotest.test_case "parallel hammer" `Quick test_budget_parallel_hammer;
        ] );
    ]
