(* The multi-tenant engine: admission, isolation, abort and the
   concurrency-invisibility property.

   The headline invariant mirrors the parallel sorter's: the engine may
   run any number of jobs concurrently under any interleaving the
   scheduler produces, and every job's output and per-job I/O bill are
   byte-for-byte the ones a standalone single-session run yields.  The
   other half is containment — a faulted or cancelled tenant returns
   every block (engine budget empty, queued jobs complete), and a job's
   elastic data-stack borrowing never touches blocks outside its own
   carve. *)

let check = Alcotest.check

let qcheck = QCheck_alcotest.to_alcotest

module Config = Nexsort.Config

let by_id = Nexsort.Ordering.by_attr "id"

let gen_doc ?(height = 4) ?(max_fanout = 6) ?(max_elements = 400) seed =
  let s, _ =
    Xmlgen.Gen.to_string (fun sink ->
        Xmlgen.Gen.random_shape ~seed ~avg_bytes:40 ~max_elements ~height ~max_fanout sink)
  in
  s

let job_config () = Config.make ~block_size:128 ~memory_blocks:8 ()

(* Run one sort through the engine, returning (output, total_io). *)
let engine_sort ?cancel eng ~tenant config xml =
  Engine.run ?cancel eng ~tenant config (fun _job session ->
      let input = Extmem.Device.in_memory ~block_size:config.Config.block_size () in
      Extmem.Device.load_string input xml;
      let output = Extmem.Device.in_memory ~block_size:config.Config.block_size () in
      let report = Nexsort.sort_device ~session ~ordering:by_id ~input ~output () in
      (Extmem.Device.contents output, Extmem.Io_stats.total report.Nexsort.total_io))

(* --- concurrency invisibility ------------------------------------- *)

(* Any interleaving of N concurrent jobs through one engine — under a
   budget that admits only two at a time, so admissions genuinely
   queue — produces byte-identical outputs and identical per-job I/O
   counters to sequential standalone runs. *)
let test_concurrent_jobs_equal_sequential =
  QCheck.Test.make ~name:"N concurrent jobs = N sequential runs" ~count:4
    QCheck.(int_bound 1000)
    (fun seed ->
      let config = job_config () in
      let docs = List.init 4 (fun i -> gen_doc ~max_elements:150 (seed + (31 * i))) in
      (* 8 jobs over 4 documents, two tenants *)
      let jobs =
        List.concat_map (fun (i, xml) -> [ (i, "acme", xml); (i + 4, "bravo", xml) ])
          (List.mapi (fun i xml -> (i, xml)) docs)
      in
      let reference =
        List.map
          (fun (_, _, xml) -> Nexsort.sort_string ~config ~ordering:by_id xml)
          jobs
        |> List.map (fun (out, rep) ->
               (out, Extmem.Io_stats.total rep.Nexsort.total_io))
      in
      (* room for two jobs at a time: job_blocks = 8 at the same block
         size, so 20 blocks queue the other six *)
      let eng =
        Engine.create ~memory_blocks:20 ~block_size:config.Config.block_size ()
      in
      let domains =
        List.map
          (fun (_, tenant, xml) ->
            Domain.spawn (fun () -> engine_sort eng ~tenant config xml))
          jobs
      in
      let results = List.map Domain.join domains in
      Engine.destroy eng;
      List.iter2
        (fun (ref_out, ref_io) (out, io) ->
          if not (String.equal ref_out out) then
            QCheck.Test.fail_report "concurrent output differs from sequential";
          if ref_io <> io then
            QCheck.Test.fail_reportf "concurrent io %d <> sequential io %d" io ref_io)
        reference results;
      if Extmem.Memory_budget.used_blocks (Engine.budget eng) <> 0 then
        QCheck.Test.fail_report "engine budget not empty after all jobs";
      true)

(* Offloaded external subtree sorts (config.jobs > 1, threshold too big
   for the arena) stay invisible when the jobs run concurrently through
   a shared engine pool. *)
let test_concurrent_external_offload () =
  let xml = gen_doc ~height:5 ~max_elements:500 11 in
  let mk jobs =
    Config.make ~block_size:128 ~memory_blocks:10 ~threshold:200_000 ~degeneration:false
      ~jobs ()
  in
  let ref_out, ref_rep = Nexsort.sort_string ~config:(mk 1) ~ordering:by_id xml in
  check Alcotest.bool "reference run spills externally" true
    (ref_rep.Nexsort.external_sorts > 0);
  let config = mk 2 in
  let eng = Engine.create ~workers:2 ~memory_blocks:80 ~block_size:128 () in
  let domains =
    List.init 3 (fun i ->
        Domain.spawn (fun () ->
            engine_sort eng ~tenant:(Printf.sprintf "t%d" i) config xml))
  in
  let results = List.map Domain.join domains in
  Engine.destroy eng;
  let ref_io = Extmem.Io_stats.total ref_rep.Nexsort.total_io in
  List.iteri
    (fun i (out, io) ->
      check Alcotest.string (Printf.sprintf "job %d bytes" i) ref_out out;
      check Alcotest.int (Printf.sprintf "job %d io" i) ref_io io)
    results;
  check Alcotest.int "no leaks" 0 (Engine.leaked_blocks eng)

(* --- admission ----------------------------------------------------- *)

let test_admission_queues_and_completes () =
  (* a one-job budget: while a held job occupies it, three submissions
     must queue; they all complete once the slot frees up *)
  let config = job_config () in
  let xml = gen_doc ~max_elements:120 5 in
  let eng = Engine.create ~memory_blocks:8 ~block_size:128 () in
  let holder = Engine.acquire eng ~tenant:"holder" config in
  let waits = Array.make 3 0. in
  let domains =
    List.init 3 (fun i ->
        Domain.spawn (fun () ->
            Engine.run eng ~tenant:"solo" config (fun job session ->
                waits.(i) <- Engine.queue_wait_s job;
                let input = Extmem.Device.in_memory ~block_size:128 () in
                Extmem.Device.load_string input xml;
                let output = Extmem.Device.in_memory ~block_size:128 () in
                ignore (Nexsort.sort_device ~session ~ordering:by_id ~input ~output ()))))
  in
  Unix.sleepf 0.1;
  Engine.release eng holder;
  List.iter Domain.join domains;
  check Alcotest.int "budget empty" 0
    (Extmem.Memory_budget.used_blocks (Engine.budget eng));
  let queued =
    match List.assoc_opt "engine.jobs_queued" (Obs.Registry.snapshot (Engine.registry eng)) with
    | Some v -> int_of_float v
    | None -> 0
  in
  check Alcotest.bool "at least one admission queued" true (queued >= 1);
  Engine.destroy eng

let test_tenant_fairness () =
  (* among queued jobs the tenant with fewer running jobs wins: tenant a
     holds two slots and queues a third job; tenant b arrives later with
     nothing running.  When one of a's slots frees, b still has zero
     running jobs to a's one — b is admitted first despite the later
     arrival. *)
  let config = job_config () in
  let eng = Engine.create ~memory_blocks:16 ~block_size:128 () in
  let ja1 = Engine.acquire eng ~tenant:"a" config in
  let ja2 = Engine.acquire eng ~tenant:"a" config in
  let order = ref [] in
  let order_lock = Mutex.create () in
  let admitted tenant =
    Mutex.lock order_lock;
    order := tenant :: !order;
    Mutex.unlock order_lock
  in
  let spawn_waiter tenant =
    Domain.spawn (fun () ->
        let j = Engine.acquire eng ~tenant config in
        admitted tenant;
        Engine.release eng j)
  in
  let da = spawn_waiter "a" in
  Unix.sleepf 0.2;
  let db = spawn_waiter "b" in
  Unix.sleepf 0.2;
  Engine.release eng ja1;
  Domain.join da;
  Domain.join db;
  Engine.release eng ja2;
  check Alcotest.(list string) "b admitted first" [ "b"; "a" ] (List.rev !order);
  check Alcotest.int "budget empty" 0
    (Extmem.Memory_budget.used_blocks (Engine.budget eng));
  Engine.destroy eng

(* --- abort and containment ---------------------------------------- *)

exception Boom

let test_faulted_job_leaves_engine_quiescent () =
  (* a tenant that faults mid-job (after touching its stacks) returns
     every block: the engine budget is empty, a queued job still
     completes, and the leak counter stays zero because session destroy
     cleaned up properly *)
  let config = job_config () in
  let xml = gen_doc ~max_elements:120 7 in
  let eng = Engine.create ~memory_blocks:8 ~block_size:128 () in
  let faulty =
    Domain.spawn (fun () ->
        try
          Engine.run eng ~tenant:"faulty" config (fun _job session ->
              (* dirty the session first, as a real aborted sort would *)
              for i = 0 to 200 do
                Extmem.Ext_stack.push session.Nexsort.Session.data_stack
                  (Printf.sprintf "payload-%04d-%s" i (String.make 64 'x'))
              done;
              raise Boom)
        with Boom -> ())
  in
  Unix.sleepf 0.05;
  let queued =
    Domain.spawn (fun () -> engine_sort eng ~tenant:"patient" config xml)
  in
  Domain.join faulty;
  let out, _ = Domain.join queued in
  let ref_out, _ = Nexsort.sort_string ~config ~ordering:by_id xml in
  check Alcotest.string "queued job unaffected by the fault" ref_out out;
  check Alcotest.int "engine budget empty" 0
    (Extmem.Memory_budget.used_blocks (Engine.budget eng));
  check Alcotest.int "no leaked blocks" 0 (Engine.leaked_blocks eng);
  Engine.destroy eng

let test_cancel_running_job () =
  (* a cooperative cancel lands at a poll checkpoint, raises Cancelled
     through the sort, and the teardown path returns every block *)
  let config = job_config () in
  let xml = gen_doc ~height:5 ~max_elements:600 13 in
  let eng = Engine.create ~memory_blocks:8 ~block_size:128 () in
  let flag = Atomic.make false in
  let d =
    Domain.spawn (fun () ->
        match engine_sort ~cancel:flag eng ~tenant:"doomed" config xml with
        | _ -> `Completed
        | exception Engine.Cancelled -> `Cancelled)
  in
  (* let it get into the scan, then cancel *)
  Unix.sleepf 0.02;
  Engine.cancel eng flag;
  let outcome = Domain.join d in
  (* the sort may already have finished on a fast machine; either way
     the engine must be whole *)
  check Alcotest.int "engine budget empty" 0
    (Extmem.Memory_budget.used_blocks (Engine.budget eng));
  check Alcotest.int "no leaked blocks" 0 (Engine.leaked_blocks eng);
  (match outcome with
  | `Cancelled ->
      let cancelled =
        match
          List.assoc_opt "engine.jobs_cancelled" (Obs.Registry.snapshot (Engine.registry eng))
        with
        | Some v -> int_of_float v
        | None -> 0
      in
      check Alcotest.bool "cancel counted" true (cancelled >= 0)
  | `Completed -> ());
  Engine.destroy eng

let test_cancel_queued_job () =
  (* cancelling a job still in the admission queue wakes it out of
     acquire with Cancelled; the slot-holder is untouched *)
  let config = job_config () in
  let eng = Engine.create ~memory_blocks:8 ~block_size:128 () in
  let holder = Engine.acquire eng ~tenant:"holder" config in
  let flag = Atomic.make false in
  let d =
    Domain.spawn (fun () ->
        match Engine.acquire ~cancel:flag eng ~tenant:"queued" config with
        | j ->
            Engine.release eng j;
            `Admitted
        | exception Engine.Cancelled -> `Cancelled)
  in
  Unix.sleepf 0.1;
  Engine.cancel eng flag;
  let outcome = Domain.join d in
  check Alcotest.bool "queued job saw Cancelled" true (outcome = `Cancelled);
  Engine.release eng holder;
  check Alcotest.int "engine budget empty" 0
    (Extmem.Memory_budget.used_blocks (Engine.budget eng));
  Engine.destroy eng

(* --- borrow-window isolation -------------------------------------- *)

let test_borrow_stays_inside_carve () =
  (* the elastic data-stack window may only borrow blocks idle inside
     its own job's carve: while job A's window is fat with borrowed
     blocks, the engine's free pool is exactly what admission left, and
     a second tenant can still be admitted *)
  let config = job_config () in
  let eng = Engine.create ~memory_blocks:16 ~block_size:128 () in
  let ja = Engine.acquire eng ~tenant:"a" config in
  let free_after_admit = Extmem.Memory_budget.available_blocks (Engine.budget eng) in
  let sa = Engine.session eng ja in
  (* push until the window has certainly borrowed beyond its configured
     size (the job budget has idle arena blocks to lend) *)
  for i = 0 to 400 do
    Extmem.Ext_stack.push sa.Nexsort.Session.data_stack
      (Printf.sprintf "row-%04d-%s" i (String.make 48 'y'))
  done;
  check Alcotest.int "engine free pool untouched by borrowing" free_after_admit
    (Extmem.Memory_budget.available_blocks (Engine.budget eng));
  (* a second tenant still fits: borrowing consumed nothing outside A's
     carve *)
  let jb = Engine.acquire eng ~tenant:"b" config in
  Nexsort.Session.destroy sa;
  Engine.release eng ja;
  Engine.release eng jb;
  check Alcotest.int "budget empty at the end" 0
    (Extmem.Memory_budget.used_blocks (Engine.budget eng));
  Engine.destroy eng

let () =
  Alcotest.run "engine"
    [
      ( "invisibility",
        [
          qcheck test_concurrent_jobs_equal_sequential;
          Alcotest.test_case "concurrent external offload" `Quick
            test_concurrent_external_offload;
        ] );
      ( "admission",
        [
          Alcotest.test_case "queues and completes" `Quick test_admission_queues_and_completes;
          Alcotest.test_case "tenant fairness" `Quick test_tenant_fairness;
        ] );
      ( "containment",
        [
          Alcotest.test_case "faulted job leaves engine quiescent" `Quick
            test_faulted_job_leaves_engine_quiescent;
          Alcotest.test_case "cancel running job" `Quick test_cancel_running_job;
          Alcotest.test_case "cancel queued job" `Quick test_cancel_queued_job;
        ] );
      ( "isolation",
        [
          Alcotest.test_case "borrowing stays inside the carve" `Quick
            test_borrow_stays_inside_carve;
        ] );
    ]
