(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§5), plus the analysis-validation and ablation experiments
   listed in DESIGN.md.

     dune exec bench/main.exe            -- run everything
     dune exec bench/main.exe fig5       -- one experiment
     dune exec bench/main.exe -- --quick -- scaled-down sizes
     dune exec bench/main.exe -- --cost  -- simulated seek/transfer time
                                            on every device (sim=..ms)
     dune exec bench/main.exe micro      -- bechamel micro-benchmarks

   The paper's primary metric is the number of block I/Os; wall-clock
   seconds are reported as well.  Absolute values differ from the paper
   (its substrate was TPIE on year-2003 hardware; ours is a virtual disk),
   but the shapes under test are the same — see EXPERIMENTS.md. *)

module Ordering = Nexsort.Ordering

let quick = ref false
let cost = ref false
let no_fuse = ref false
let metrics_file = ref None
let wall_file = ref None
let trace_file = ref None
let policy = ref Extmem.Frame_arena.Lru
let jobs = ref 1

(* --cost: put a simulated-time (hdd) layer on every device — the
   endpoints below and, via the config's device spec, the sorters'
   internal stacks — and append sim=..ms to each run's detail.  Off by
   default so the default output stays byte-identical. *)
let bench_spec () =
  if !cost then
    { Extmem.Device_spec.default with
      Extmem.Device_spec.layers = [ Extmem.Device_spec.Cost Extmem.Cost_model.hdd ] }
  else Extmem.Device_spec.default

let maybe_costed dev =
  if !cost then ignore (Extmem.Device.attach_cost dev : Extmem.Cost_model.t);
  dev

module Config = struct
  include Nexsort.Config

  (* every bench config inherits the harness-wide device spec, replacement
     policy and worker count; --no-fuse overrides the fusion default for
     experiments that don't pin it *)
  let make ?block_size ?memory_blocks ?threshold ?depth_limit ?degeneration ?root_fusion
      ?encoding ?data_stack_blocks ?path_stack_blocks ?keep_whitespace ?pager_policy ?jobs:j
      ?tracer () =
    let root_fusion =
      match root_fusion with
      | Some _ as r -> r
      | None -> if !no_fuse then Some false else None
    in
    let pager_policy = Option.value pager_policy ~default:!policy in
    let jobs = Option.value j ~default:!jobs in
    Nexsort.Config.make ?block_size ?memory_blocks ?threshold ?depth_limit ?degeneration
      ?root_fusion ?encoding ?data_stack_blocks ?path_stack_blocks ?keep_whitespace
      ~pager_policy ~jobs ?tracer ~device:(bench_spec ()) ()
end

let ordering = Ordering.by_attr "id"

(* ------------------------------------------------------------------ *)
(* measurement helpers *)

type run = {
  io : int;       (* total block I/Os, inputs and outputs included *)
  seconds : float;
  detail : string;
}

let time f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  (x, Unix.gettimeofday () -. t0)

(* the input device is shared across runs, so report per-run simulated
   time as a delta from its meter's level before the run *)
let sim_detail base ~before ~total =
  if !cost then Printf.sprintf "%s sim=%.0fms" base (total -. before) else base

let run_nexsort ~config doc_dev =
  Extmem.Io_stats.reset (Extmem.Device.stats doc_dev);
  let sim0 = Extmem.Device.simulated_ms doc_dev in
  let output =
    maybe_costed (Extmem.Device.in_memory ~name:"out" ~block_size:config.Config.block_size ())
  in
  let report, seconds =
    time (fun () -> Nexsort.sort_device ~config ~ordering ~input:doc_dev ~output ())
  in
  {
    io = Extmem.Io_stats.total report.Nexsort.total_io;
    seconds;
    detail =
      sim_detail ~before:sim0 ~total:report.Nexsort.simulated_ms
        (Printf.sprintf "sorts=%d(mem %d/ext %d) frags=%d" report.Nexsort.subtree_sorts
           report.Nexsort.in_memory_sorts report.Nexsort.external_sorts
           report.Nexsort.fragment_runs);
  }

let run_mergesort ~config doc_dev =
  Extmem.Io_stats.reset (Extmem.Device.stats doc_dev);
  let sim0 = Extmem.Device.simulated_ms doc_dev in
  let output =
    maybe_costed (Extmem.Device.in_memory ~name:"out" ~block_size:config.Config.block_size ())
  in
  let report, seconds =
    time (fun () ->
        Baselines.Keypath_sort.sort_device ~config ~ordering ~input:doc_dev ~output ())
  in
  {
    io = Extmem.Io_stats.total report.Baselines.Keypath_sort.total_io;
    seconds;
    detail =
      sim_detail ~before:sim0 ~total:report.Baselines.Keypath_sort.simulated_ms
        (Printf.sprintf "runs=%d passes=%d" report.Baselines.Keypath_sort.initial_runs
           report.Baselines.Keypath_sort.merge_passes);
  }

let make_doc ?(avg_bytes = 100) ~fanouts () =
  let dev = Extmem.Device.in_memory ~name:"input" ~block_size:1024 () in
  let stats =
    Xmlgen.Gen.to_device dev (fun sink -> Xmlgen.Gen.exact_shape ~avg_bytes ~fanouts sink)
  in
  (maybe_costed dev, stats)

(* re-home a document onto a device with the right block size *)
let with_block_size bs dev =
  maybe_costed (Extmem.Device.of_string ~name:"input" ~block_size:bs (Extmem.Device.contents dev))

let heading fmt =
  Printf.ksprintf
    (fun s -> Printf.printf "\n%s\n%s\n" s (String.make (String.length s) '='))
    fmt

let subnote fmt = Printf.ksprintf (fun s -> Printf.printf "%s\n" s) fmt

(* ------------------------------------------------------------------ *)
(* T1: Table 1 — key-path representation of D1 *)

let table1 () =
  heading "T1 / Table 1: key-path representation of D1 (Figure 1)";
  let rows =
    Baselines.Keypath_sort.keypath_table ~ordering:Xmlgen.Company.ordering
      Xmlgen.Company.figure_1_d1
  in
  Printf.printf "%-22s %s\n" "Key path" "Element content";
  List.iter (fun (path, content) -> Printf.printf "%-22s %s\n" path content) rows

(* ------------------------------------------------------------------ *)
(* F5: effect of main memory size *)

let fig5_doc () =
  (* a hierarchical document with small fan-outs, the regime of the
     paper's Figure 5 ("when fan-outs are small, NEXSORT is not very
     dependent on main memory size"); subtree collapses stay close to the
     threshold, so the data stack oscillation fits its resident window *)
  let fanouts = if !quick then [ 6; 6; 6; 6 ] else [ 6; 6; 6; 6; 6; 4 ] in
  make_doc ~avg_bytes:150 ~fanouts ()

let fig5 () =
  heading "F5 / Figure 5: effect of main memory size";
  let doc, stats = fig5_doc () in
  subnote "input: %d elements, %d KiB; block size 1 KiB; threshold 2 blocks"
    stats.Xmlgen.Gen.elements (stats.Xmlgen.Gen.bytes / 1024);
  Printf.printf "%-12s | %-38s | %-28s | %s\n" "memory" "NEXSORT io / s" "MergeSort io / s"
    "mergesort/nexsort io";
  let mems = [ 8; 12; 16; 24; 32; 48; 64; 96 ] in
  List.iter
    (fun m ->
      let config = Config.make ~block_size:1024 ~memory_blocks:m () in
      let input = with_block_size 1024 doc in
      let nx = run_nexsort ~config input in
      let ms = run_mergesort ~config input in
      Printf.printf "%3d blocks   | %8d  %6.2fs %-20s | %8d  %6.2fs %-8s | %.2fx\n" m nx.io
        nx.seconds nx.detail ms.io ms.seconds ms.detail
        (float_of_int ms.io /. float_of_int nx.io))
    mems

(* ------------------------------------------------------------------ *)
(* F6: effect of input size with constant maximum fan-out *)

let fig6_shapes () =
  (* constant maximum fan-out 85 (the paper's cap), growing sizes *)
  if !quick then [ [ 85 ]; [ 85; 10 ]; [ 85; 30 ]; [ 85; 85 ] ]
  else
    [ [ 85; 10 ]; [ 85; 85 ]; [ 85; 85; 4 ]; [ 85; 85; 10 ]; [ 85; 85; 22 ]; [ 85; 85; 44 ] ]

let fig6 () =
  heading "F6 / Figure 6: effect of input size (max fan-out capped at 85)";
  subnote "block size 1 KiB, memory 16 blocks (deliberately small, like the paper's 3 MB)";
  Printf.printf "%-12s | %-26s | %-36s | %s\n" "elements" "NEXSORT io / s" "MergeSort io / s"
    "io per element (nx, ms)";
  let config = Config.make ~block_size:1024 ~memory_blocks:16 () in
  List.iter
    (fun fanouts ->
      let doc, stats = make_doc ~fanouts () in
      let input = with_block_size 1024 doc in
      let nx = run_nexsort ~config input in
      let ms = run_mergesort ~config input in
      let n = float_of_int stats.Xmlgen.Gen.elements in
      Printf.printf "%8d     | %9d  %6.2fs        | %9d  %6.2fs %-16s | %.3f, %.3f\n"
        stats.Xmlgen.Gen.elements nx.io nx.seconds ms.io ms.seconds ms.detail
        (float_of_int nx.io /. n)
        (float_of_int ms.io /. n))
    (fig6_shapes ())

(* ------------------------------------------------------------------ *)
(* T2+F7: effect of tree shape *)

let fig7_shapes () =
  (* Table 2 scaled from 3M elements to ~60k: heights 2..6, near-uniform
     fan-out at every level *)
  if !quick then
    [ (2, [ 6000 ]); (3, [ 77; 77 ]); (4, [ 18; 18; 18 ]); (5, [ 9; 9; 9; 9 ]);
      (6, [ 5; 5; 6; 6; 6 ]) ]
  else
    [
      (2, [ 60000 ]);
      (3, [ 244; 244 ]);
      (4, [ 39; 39; 39 ]);
      (5, [ 15; 16; 16; 16 ]);
      (6, [ 9; 9; 9; 9; 9 ]);
    ]

let fig7 () =
  heading "T2+F7 / Table 2 + Figure 7: effect of tree shape (constant size)";
  subnote "block size 1 KiB, memory 16 blocks; paper sizes scaled 3e6 -> ~6e4 elements";
  Printf.printf "%-7s %-18s %-9s | %-20s | %-20s | %-20s\n" "height" "fan-out per level"
    "elements" "NEXSORT io / s" "NEXSORT no-degen" "MergeSort io / s";
  List.iter
    (fun (h, fanouts) ->
      let doc, stats = make_doc ~fanouts () in
      let input = with_block_size 1024 doc in
      let config = Config.make ~block_size:1024 ~memory_blocks:16 () in
      let nx = run_nexsort ~config input in
      let nxnd =
        run_nexsort
          ~config:(Config.make ~block_size:1024 ~memory_blocks:16 ~degeneration:false ())
          input
      in
      let ms = run_mergesort ~config input in
      Printf.printf "%-7d %-18s %-9d | %9d %6.2fs   | %9d %6.2fs   | %9d %6.2fs\n" h
        (String.concat "," (List.map string_of_int fanouts))
        stats.Xmlgen.Gen.elements nx.io nx.seconds nxnd.io nxnd.seconds ms.io ms.seconds)
    (fig7_shapes ())

(* ------------------------------------------------------------------ *)
(* E-thr: effect of the sort threshold (§5, figure in the full version) *)

let threshold () =
  heading "E-thr / effect of the sort threshold t";
  let doc, stats = fig5_doc () in
  subnote "input: %d elements; block size 1 KiB, memory 32 blocks" stats.Xmlgen.Gen.elements;
  Printf.printf "%-14s | %s\n" "threshold" "NEXSORT io / s / detail";
  List.iter
    (fun mult ->
      let config = Config.make ~block_size:1024 ~memory_blocks:32 ~threshold:(mult * 1024) () in
      let input = with_block_size 1024 doc in
      let nx = run_nexsort ~config input in
      Printf.printf "t = %2d blocks  | %8d  %6.2fs  %s\n" mult nx.io nx.seconds nx.detail)
    [ 1; 2; 4; 8; 16 ]

(* ------------------------------------------------------------------ *)
(* E-lb: measured I/O vs the bounds of §4 *)

let model () =
  heading "E-lb / Theorems 4.4-4.5: measured I/O vs analytical bounds";
  subnote
    "B = elements per block, m = memory blocks; bounds are order-of-growth (constants differ)";
  Printf.printf "%-10s %-4s | %-10s %-12s %-8s | %-10s %-12s %-8s | %s\n" "elements" "k" "nx io"
    "nx bound" "ratio" "ms io" "ms bound" "ratio" "lower bound";
  let config = Config.make ~block_size:1024 ~memory_blocks:16 () in
  let shapes =
    if !quick then [ `Exact [ 85; 10 ]; `Exact [ 85; 85 ] ]
    else
      [ `Exact [ 85; 10 ]; `Exact [ 85; 85 ]; `Exact [ 85; 85; 10 ];
        (* the Lemma 4.1 adversary: the shape for which the lower bound is
           tight *)
        `Adversarial (85, 20_000) ]
  in
  List.iter
    (fun shape ->
      let doc, stats, fanouts =
        match shape with
        | `Exact fanouts ->
            let doc, stats = make_doc ~fanouts () in
            (doc, stats, fanouts)
        | `Adversarial (k, n) ->
            let dev = Extmem.Device.in_memory ~name:"input" ~block_size:1024 () in
            let stats =
              Xmlgen.Gen.to_device dev (fun sink ->
                  Xmlgen.Gen.adversarial ~k ~n_elements:n sink)
            in
            (dev, stats, [ k ])
      in
      let input = with_block_size 1024 doc in
      let nx = run_nexsort ~config input in
      let ms = run_mergesort ~config input in
      let k = List.fold_left max 1 fanouts in
      let elements_per_block =
        max 1 (1024 / (stats.Xmlgen.Gen.bytes / max 1 stats.Xmlgen.Gen.elements))
      in
      let params =
        {
          Iomodel.Model.n_elements = stats.Xmlgen.Gen.elements;
          elements_per_block;
          memory_blocks = 16;
          max_fanout = k;
        }
      in
      let nx_bound =
        Iomodel.Model.nexsort_bound ~threshold_elements:(2 * elements_per_block) params
      in
      let ms_bound = Iomodel.Model.merge_sort_bound params in
      let lb = Iomodel.Model.lower_bound params in
      Printf.printf "%-10d %-4d | %-10d %-12.0f %-8.2f | %-10d %-12.0f %-8.2f | %.0f\n"
        stats.Xmlgen.Gen.elements k nx.io nx_bound
        (float_of_int nx.io /. nx_bound)
        ms.io ms_bound
        (float_of_int ms.io /. ms_bound)
        lb)
    shapes

(* ------------------------------------------------------------------ *)
(* A-deg: graceful degeneration on a flat document *)

let ablate_degen () =
  heading "A-deg / ablation: graceful degeneration on a flat (2-level) document";
  let fanout = if !quick then 6000 else 30000 in
  let doc, stats = make_doc ~fanouts:[ fanout ] () in
  subnote "input: flat, %d elements (the paper's worst case for NEXSORT)"
    stats.Xmlgen.Gen.elements;
  let input = with_block_size 1024 doc in
  let base = Config.make ~block_size:1024 ~memory_blocks:16 in
  let on = run_nexsort ~config:(base ()) input in
  let off = run_nexsort ~config:(base ~degeneration:false ()) input in
  let ms = run_mergesort ~config:(base ()) input in
  Printf.printf "NEXSORT + degeneration : %8d io  %6.2fs  %s\n" on.io on.seconds on.detail;
  Printf.printf "NEXSORT - degeneration : %8d io  %6.2fs  %s\n" off.io off.seconds off.detail;
  Printf.printf "key-path merge sort    : %8d io  %6.2fs  %s\n" ms.io ms.seconds ms.detail;
  subnote
    "(the paper did not implement degeneration and reports NEXSORT losing on flat inputs;\n\
    \ with it, NEXSORT should be within a whisker of merge sort)"

(* ------------------------------------------------------------------ *)
(* A-cmp: compaction ablation (§3.2) *)

let ablate_compact () =
  heading "A-cmp / ablation: entry encodings (compaction, §3.2)";
  let doc, stats = fig5_doc () in
  subnote "input: %d elements" stats.Xmlgen.Gen.elements;
  List.iter
    (fun (label, encoding) ->
      let config = Config.make ~block_size:1024 ~memory_blocks:16 ~encoding () in
      let input = with_block_size 1024 doc in
      let nx = run_nexsort ~config input in
      Printf.printf "%-28s : %8d io  %6.2fs  %s\n" label nx.io nx.seconds nx.detail)
    [
      ("plain (no compaction)", Config.Plain);
      ("dict (name compression)", Config.Dict);
      ("packed (+ no end entries)", Config.Packed);
    ]

(* ------------------------------------------------------------------ *)
(* A-fuse: root fusion ablation *)

let ablate_fusion () =
  heading "A-fuse / ablation: fusing the root sort with the output phase";
  (* a flat document: the root's sorted run is the entire document, so
     fusion saves materialising and re-reading all of it *)
  let fanout = if !quick then 3000 else 15000 in
  let doc, stats = make_doc ~fanouts:[ fanout ] () in
  subnote "input: flat, %d elements; memory 32 blocks" stats.Xmlgen.Gen.elements;
  List.iter
    (fun (label, root_fusion) ->
      let config = Config.make ~block_size:1024 ~memory_blocks:32 ~root_fusion () in
      let input = with_block_size 1024 doc in
      let nx = run_nexsort ~config input in
      Printf.printf "%-24s : %8d io  %6.2fs  %s
" label nx.io nx.seconds nx.detail)
    [ ("fused (default)", true); ("materialised root run", false) ];
  subnote "(fusion saves writing and re-reading the root run: up to two document passes)"

(* ------------------------------------------------------------------ *)
(* A-runs: run-formation ablation (replacement selection) *)

let ablate_runs () =
  heading "A-runs / ablation: run formation in the external sorter";
  subnote
    "classic replacement selection doubles the average run length on random input,\n\
     halving the run count and sometimes saving a whole merge pass";
  let n = if !quick then 20_000 else 120_000 in
  let rng = Xmlgen.Splitmix.create 12345 in
  let records = List.init n (fun _ -> Printf.sprintf "%08d" (Xmlgen.Splitmix.int rng 99999989)) in
  let run formation label =
    let budget = Extmem.Memory_budget.create ~blocks:8 ~block_size:1024 in
    let temp = Extmem.Device.in_memory ~block_size:1024 () in
    let input =
      let rest = ref records in
      fun () ->
        match !rest with
        | [] -> None
        | x :: tl ->
            rest := tl;
            Some x
    in
    let sink = ref 0 in
    let stats, seconds =
      time (fun () ->
          Extsort.External_sort.sort ~run_formation:formation ~budget ~temp ~cmp:compare ~input
            ~output:(fun _ -> incr sink)
            ())
    in
    Printf.printf "%-24s : %8d io  %6.2fs  runs=%d passes=%d\n" label
      (Extmem.Io_stats.total (Extmem.Device.stats temp))
      seconds stats.Extsort.External_sort.initial_runs stats.Extsort.External_sort.merge_passes
  in
  run `Load_sort "load-sort-store (default)";
  run `Replacement_selection "replacement selection"

(* ------------------------------------------------------------------ *)
(* E-mot: the motivating claim of s1 - nested-loop merge vs sort-merge *)

let motivation () =
  heading "E-mot / Example 1.1: nested-loop merge vs sort-then-merge";
  subnote
    "the paper's motivation: the naive merge's access pattern ignores the disk layout;\n\
     sorting first makes the merge a single pass.  Block size 1 KiB, memory 16 blocks.";
  Printf.printf "%-10s | %-20s | %-24s | %-20s | %s\n" "employees" "naive nested-loop io"
    "indexed nested-loop io" "sort both + merge io" "naive/sorted";
  let sizes = if !quick then [ 2; 4; 8 ] else [ 2; 4; 8; 16; 32 ] in
  List.iter
    (fun employees_per_branch ->
      let pair =
        Xmlgen.Company.generate ~seed:11 ~regions:4 ~branches_per_region:4
          ~employees_per_branch ()
      in
      let merge_ordering = Xmlgen.Company.ordering in
      let bs = 1024 in
      let n_employees = 4 * 4 * employees_per_branch in
      (* naive: unsorted documents, nested-loop matching; trace the right
         document's access pattern (where the re-scans land) *)
      let l = Extmem.Device.of_string ~block_size:bs pair.Xmlgen.Company.personnel in
      let r = Extmem.Device.of_string ~block_size:bs pair.Xmlgen.Company.payroll in
      let out = Extmem.Device.in_memory ~block_size:bs () in
      let trace = Extmem.Trace.attach r in
      let naive, naive_s =
        time (fun () ->
            Xmerge.Naive_merge.merge_devices ~ordering:merge_ordering ~left:l ~right:r
              ~output:out ())
      in
      Extmem.Trace.detach trace;
      let seeks = Extmem.Trace.summarize trace in
      let naive_io = Extmem.Io_stats.total naive.Xmerge.Naive_merge.total_io in
      (* the "additional index" variant: one build pass + B-tree probes *)
      let il = Extmem.Device.of_string ~block_size:bs pair.Xmlgen.Company.personnel in
      let ir = Extmem.Device.of_string ~block_size:bs pair.Xmlgen.Company.payroll in
      let iout = Extmem.Device.in_memory ~block_size:bs () in
      let indexed, indexed_s =
        time (fun () ->
            Xmerge.Indexed_merge.merge_devices ~ordering:merge_ordering ~left:il ~right:ir
              ~output:iout ())
      in
      let indexed_io = Extmem.Io_stats.total indexed.Xmerge.Indexed_merge.total_io in
      (* sort-merge: NEXSORT both, then a single-pass structural merge *)
      let config = Config.make ~block_size:bs ~memory_blocks:16 () in
      let sorted_io, sm_s =
        time (fun () ->
            let sort doc =
              let input = Extmem.Device.of_string ~block_size:bs doc in
              let output = Extmem.Device.in_memory ~block_size:bs () in
              let rep = Nexsort.sort_device ~config ~ordering:merge_ordering ~input ~output () in
              (Extmem.Io_stats.total rep.Nexsort.total_io, output)
            in
            let io1, d1 = sort pair.Xmlgen.Company.personnel in
            let io2, d2 = sort pair.Xmlgen.Company.payroll in
            Extmem.Io_stats.reset (Extmem.Device.stats d1);
            Extmem.Io_stats.reset (Extmem.Device.stats d2);
            let out2 = Extmem.Device.in_memory ~block_size:bs () in
            ignore
              (Xmerge.Struct_merge.merge_devices ~ordering:merge_ordering ~left:d1 ~right:d2
                 ~output:out2 ());
            io1 + io2
            + Extmem.Io_stats.total (Extmem.Device.stats d1)
            + Extmem.Io_stats.total (Extmem.Device.stats d2)
            + Extmem.Io_stats.total (Extmem.Device.stats out2))
      in
      Printf.printf "%8d   | %8d  %6.2fs    | %8d  %6.2fs        | %8d  %6.2fs    | %.1fx\n"
        n_employees naive_io naive_s indexed_io indexed_s sorted_io sm_s
        (float_of_int naive_io /. float_of_int sorted_io);
      Printf.printf "%10s naive access pattern on the right document: %s\n" ""
        (Format.asprintf "%a" Extmem.Trace.pp_summary seeks);
      Printf.printf "%10s index buffer pool: %d hits, %d misses, %d evictions, %d writebacks\n" ""
        indexed.Xmerge.Indexed_merge.pager_hits indexed.Xmerge.Indexed_merge.pager_misses
        indexed.Xmerge.Indexed_merge.pager_evictions indexed.Xmerge.Indexed_merge.pager_writebacks)
    sizes

(* ------------------------------------------------------------------ *)
(* E-xsort: related work (XSort, s2) - one-level sorting does less *)

let xsort () =
  heading "E-xsort / related work: XSort-style one-level sorting vs NEXSORT";
  subnote
    "the paper: XSort sorts only the children of user-specified elements and \"should\n\
     complete in less time than NEXSORT\", but its output cannot drive structural merge";
  let doc, stats = fig5_doc () in
  subnote "input: %d elements" stats.Xmlgen.Gen.elements;
  let config = Config.make ~block_size:1024 ~memory_blocks:16 () in
  let input () = with_block_size 1024 doc in
  let xs_output = Extmem.Device.in_memory ~block_size:1024 () in
  let xs_in = input () in
  let xs, xs_s =
    time (fun () ->
        Baselines.Xsort.sort_device ~config ~ordering ~targets:[ "n2" ] ~input:xs_in
          ~output:xs_output ())
  in
  let xs_io = Extmem.Io_stats.total xs.Baselines.Xsort.total_io in
  let nx = run_nexsort ~config (input ()) in
  let nx2 =
    run_nexsort ~config:(Config.make ~block_size:1024 ~memory_blocks:16 ~depth_limit:2 ())
      (input ())
  in
  Printf.printf "XSort (children of n2)     : %8d io  %6.2fs  (%d targets, %d children)\n" xs_io
    xs_s xs.Baselines.Xsort.targets_sorted xs.Baselines.Xsort.children_sorted;
  Printf.printf "NEXSORT depth limit 2      : %8d io  %6.2fs  %s\n" nx2.io nx2.seconds nx2.detail;
  Printf.printf "NEXSORT head-to-toe        : %8d io  %6.2fs  %s\n" nx.io nx.seconds nx.detail;
  subnote "(only the head-to-toe output supports the single-pass structural merge)"

(* ------------------------------------------------------------------ *)
(* E-tenant: concurrent tenants through one engine — queue wait and
   paging per tenant.  The engine budget admits two jobs at a time, so
   K tenants measure the admission queue, not just the sorter: every
   output is still byte-identical to the single-job run (asserted), the
   per-tenant I/O bill is identical, and the queue-wait column is where
   the contention shows. *)

let tenants () =
  heading "E-tenant / concurrent tenants: queue wait and hit ratio per tenant";
  let doc, stats = fig5_doc () in
  subnote "input: %d elements; per-job memory 16 blocks of 1 KiB; engine fits 2 jobs"
    stats.Xmlgen.Gen.elements;
  let xml = Extmem.Device.contents doc in
  let config = Config.make ~block_size:1024 ~memory_blocks:16 ~jobs:1 () in
  let per_job = Nexsort.Session.job_blocks config + Nexsort.Session.ext_blocks config in
  let reference = run_nexsort ~config (with_block_size 1024 doc) in
  List.iter
    (fun k ->
      let eng = Engine.create ~memory_blocks:(2 * per_job) ~block_size:1024 () in
      let one tenant =
        Engine.run eng ~tenant config (fun job session ->
            let input = Extmem.Device.of_string ~name:"input" ~block_size:1024 xml in
            let output = Extmem.Device.in_memory ~name:"out" ~block_size:1024 () in
            let report =
              Nexsort.sort_device ~session ~ordering ~input ~output ()
            in
            let hits, misses =
              List.fold_left
                (fun (h, m) (_, o) ->
                  (h + o.Extmem.Frame_arena.hits, m + o.Extmem.Frame_arena.misses))
                (0, 0) report.Nexsort.arena
            in
            ( Engine.queue_wait_s job,
              Extmem.Io_stats.total report.Nexsort.total_io,
              hits,
              misses ))
      in
      let domains =
        List.init k (fun i ->
            let tenant = Printf.sprintf "t%d" i in
            (tenant, Domain.spawn (fun () -> one tenant)))
      in
      let rows = List.map (fun (tenant, d) -> (tenant, Domain.join d)) domains in
      Engine.destroy eng;
      Printf.printf "%d tenants:\n" k;
      List.iter
        (fun (tenant, (wait_s, io, hits, misses)) ->
          let ratio =
            if hits + misses = 0 then "    -"
            else Printf.sprintf "%5.2f" (float_of_int hits /. float_of_int (hits + misses))
          in
          Printf.printf "  %-4s | wait %8.1fms | hit ratio %s | %8d io%s\n" tenant
            (wait_s *. 1000.) ratio io
            (if io = reference.io then "" else "  <-- DIVERGES FROM SINGLE-JOB RUN");
          if io <> reference.io then exit 1)
        rows;
      if Engine.leaked_blocks eng <> 0 then begin
        Printf.eprintf "E-tenant: %d leaked blocks\n" (Engine.leaked_blocks eng);
        exit 1
      end)
    [ 2; 4; 8 ]

(* ------------------------------------------------------------------ *)
(* E-ingest: incremental maintenance vs full re-sort.  A batch of k
   subtree updates buffered in the external priority queue and flushed
   through [Xmerge.Ingest] costs one merge pass over the base (read +
   write); re-sorting the updated document from scratch costs the full
   NEXSORT pipeline again.  This is a CI gate (scripts/check.sh runs
   it): the flush must use strictly fewer block I/Os than the re-sort,
   and the incremental output must be digest-identical to the oracle's
   sequential batch application. *)

let ingest () =
  heading "E-ingest / incremental maintenance: k-update batch vs full re-sort";
  let doc, stats = fig5_doc () in
  let base = Extmem.Device.contents doc in
  let config = Config.make ~block_size:1024 ~memory_blocks:16 () in
  subnote "base: %d elements, %d KiB; block size 1 KiB, memory 16 blocks"
    stats.Xmlgen.Gen.elements (stats.Xmlgen.Gen.bytes / 1024);
  let root, tops =
    match Xmlio.Tree.of_string base with
    | Xmlio.Tree.Element e ->
        (e, List.filter_map (function Xmlio.Tree.Element c -> Some c | _ -> None) e.Xmlio.Tree.children)
    | Xmlio.Tree.Text _ -> failwith "E-ingest: text root"
  in
  (* k subtree updates derived from the base's own top level: a delete,
     a replace, and fresh upserts round out the batch *)
  let update_doc k =
    let ops =
      List.init k (fun i ->
          match (i, List.nth_opt tops i) with
          | 0, Some e ->
              Xmlio.Tree.Element { e with Xmlio.Tree.attrs = ("__op", "delete") :: e.Xmlio.Tree.attrs; children = [] }
          | 1, Some e ->
              Xmlio.Tree.Element
                { e with
                  Xmlio.Tree.attrs = ("__op", "replace") :: e.Xmlio.Tree.attrs;
                  children = [ Xmlio.Tree.Text "updated" ];
                }
          | _ ->
              Xmlio.Tree.Element
                { Xmlio.Tree.name = "upd";
                  attrs = [ ("id", Printf.sprintf "90000%d" i); ("v", string_of_int i) ];
                  children = [];
                })
    in
    Xmlio.Tree.to_string (Xmlio.Tree.Element { root with Xmlio.Tree.children = ops })
  in
  let failures = ref 0 in
  Printf.printf "%-10s | %-26s | %-10s | %s\n" "batch" "ingest io (flush / queue)" "re-sort io"
    "resort/ingest io";
  List.iter
    (fun k ->
      let update = update_doc k in
      let sorted_base, _ = Nexsort.sort_string ~config ~ordering base in
      let t = Xmerge.Ingest.create ~config ~ordering ~base () in
      let report =
        Fun.protect
          ~finally:(fun () -> Xmerge.Ingest.destroy t)
          (fun () ->
            Xmerge.Ingest.add_update t update;
            let r = Xmerge.Ingest.flush t in
            (r, Xmerge.Ingest.contents t))
      in
      let flush_r, out = report in
      let flush_io = Extmem.Io_stats.total flush_r.Xmerge.Ingest.flush_io in
      (* spilled queue runs are written once and read back once *)
      let queue_io = 2 * flush_r.Xmerge.Ingest.pq_run_blocks in
      let ingest_io = flush_io + queue_io in
      let resort = run_nexsort ~config (with_block_size 1024 (Extmem.Device.of_string ~name:"resort" ~block_size:1024 out)) in
      let oracle, _ =
        Xmerge.Batch_update.sort_and_apply_strings ~config ~ordering ~base:sorted_base
          ~updates:update ()
      in
      let ok = String.equal (Digest.string out) (Digest.string oracle) in
      let gate = ingest_io < resort.io in
      Printf.printf "%3d ops    | %10d  (%6d / %4d)%s | %8d   | %.2fx%s\n" k ingest_io flush_io
        queue_io
        (if ok then "" else "  <-- DIVERGES FROM ORACLE")
        resort.io
        (float_of_int resort.io /. float_of_int ingest_io)
        (if gate then "" else "  <-- NOT FEWER THAN RE-SORT");
      if not (ok && gate) then incr failures)
    [ 1; 4; 16 ];
  if !failures > 0 then begin
    Printf.eprintf "ingest: %d batch size(s) failed the incremental-maintenance gate\n" !failures;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* P-sweep: frame replacement policies — identical output, different
   paging.  This is a CI gate (scripts/check.sh runs it): any policy
   producing a different output digest is a correctness bug in the frame
   arena, so the experiment exits non-zero on a mismatch. *)

let policy_sweep () =
  heading "P-sweep / replacement policies: byte-identical output, different paging";
  let mismatches = ref 0 in
  let check_digests label runs =
    match runs with
    | [] -> ()
    | (_, reference, _) :: _ ->
        List.iter
          (fun (p, digest, detail) ->
            let ok = String.equal digest reference in
            if not ok then incr mismatches;
            Printf.printf "  %-8s %-5s : md5=%s  %s\n"
              (Extmem.Frame_arena.policy_to_string p)
              (if ok then "OK" else "DIFF")
              digest detail)
          runs;
        if List.for_all (fun (_, d, _) -> String.equal d reference) runs then
          subnote "  %s: all policies byte-identical" label
  in
  (* nexsort: the session arena's stacks and sort leases run under every
     policy; the sorted document must not depend on replacement order *)
  let doc, stats = fig5_doc () in
  subnote "nexsort input: %d elements; block size 1 KiB, memory 16 blocks"
    stats.Xmlgen.Gen.elements;
  let nx_runs =
    List.map
      (fun p ->
        let config = Config.make ~block_size:1024 ~memory_blocks:16 ~pager_policy:p () in
        let input = with_block_size 1024 doc in
        let nx_out = Extmem.Device.in_memory ~name:"out" ~block_size:1024 () in
        let report = Nexsort.sort_device ~config ~ordering ~input ~output:nx_out () in
        let digest = Digest.to_hex (Digest.string (Extmem.Device.contents nx_out)) in
        ( p,
          digest,
          Printf.sprintf "io=%d" (Extmem.Io_stats.total report.Nexsort.total_io) ))
      Extmem.Frame_arena.all_policies
  in
  check_digests "nexsort" nx_runs;
  (* indexed merge: the index B-tree's buffer pool is where the policies
     actually diverge — same merged output, different hit/miss counters *)
  (* sized so the index outgrows its 8-frame pool and the policies
     actually have to evict (and so diverge in their counters) *)
  let employees = if !quick then 48 else 96 in
  let pair =
    Xmlgen.Company.generate ~seed:11 ~regions:6 ~branches_per_region:6
      ~employees_per_branch:employees ()
  in
  subnote "indexed merge: company pair, %d employees/branch, 8-frame index pool" employees;
  let im_runs =
    List.map
      (fun p ->
        let out, r =
          Xmerge.Indexed_merge.merge_strings ~policy:p ~ordering:Xmlgen.Company.ordering
            pair.Xmlgen.Company.personnel pair.Xmlgen.Company.payroll
        in
        ( p,
          Digest.to_hex (Digest.string out),
          Printf.sprintf "hits=%d misses=%d evictions=%d writebacks=%d"
            r.Xmerge.Indexed_merge.pager_hits r.Xmerge.Indexed_merge.pager_misses
            r.Xmerge.Indexed_merge.pager_evictions r.Xmerge.Indexed_merge.pager_writebacks ))
      Extmem.Frame_arena.all_policies
  in
  check_digests "indexed merge" im_runs;
  if !mismatches > 0 then begin
    Printf.eprintf "policy-sweep: %d run(s) diverged from the reference digest\n" !mismatches;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* micro-benchmarks (bechamel): the hot inner operations *)

let micro () =
  heading "micro / bechamel: inner-loop operations";
  let open Bechamel in
  let key_a = Nexsort.Key.Num 454. and key_b = Nexsort.Key.Str "Durham" in
  let record path = Nexsort.Keypath.encode_record path ~payload:"<employee ID=\"454\"/>" in
  let path1 =
    [ { Nexsort.Keypath.key = Nexsort.Key.Str "AC"; pos = 2 };
      { Nexsort.Keypath.key = Nexsort.Key.Str "Durham"; pos = 4 };
      { Nexsort.Keypath.key = Nexsort.Key.Num 454.; pos = 5 } ]
  in
  let path2 =
    [ { Nexsort.Keypath.key = Nexsort.Key.Str "AC"; pos = 2 };
      { Nexsort.Keypath.key = Nexsort.Key.Str "Durham"; pos = 4 };
      { Nexsort.Keypath.key = Nexsort.Key.Num 323.; pos = 6 } ]
  in
  let r1 = record path1 and r2 = record path2 in
  let dict = Xmlio.Dict.create () in
  let entry =
    Nexsort.Entry.Start
      { level = 3; pos = 17; name = "employee"; attrs = [ ("ID", "454") ];
        key = Some (Nexsort.Key.Num 454.) }
  in
  let encoded = Nexsort.Entry.encode Config.Dict dict entry in
  let small_doc =
    "<company><region name=\"AC\"><branch name=\"Durham\"><employee ID=\"454\"/><employee \
     ID=\"323\"><name>Smith</name></employee></branch></region></company>"
  in
  let tests =
    Test.make_grouped ~name:"nexsort"
      [
        Test.make ~name:"Key.compare" (Staged.stage (fun () -> Nexsort.Key.compare key_a key_b));
        Test.make ~name:"Keypath.compare_encoded"
          (Staged.stage (fun () -> Nexsort.Keypath.compare_encoded r1 r2));
        Test.make ~name:"Entry.encode (dict)"
          (Staged.stage (fun () -> Nexsort.Entry.encode Config.Dict dict entry));
        Test.make ~name:"Entry.decode (dict)"
          (Staged.stage (fun () -> Nexsort.Entry.decode Config.Dict dict encoded));
        Test.make ~name:"Parser (155-byte doc)"
          (Staged.stage (fun () -> Xmlio.Parser.to_list (Xmlio.Parser.of_string small_doc)));
      ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.4) () in
  let raw = Benchmark.all cfg [ instance ] tests in
  let results =
    Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]) instance
      raw
  in
  Hashtbl.iter
    (fun name ols ->
      match Analyze.OLS.estimates ols with
      | Some [ est ] -> Printf.printf "%-40s %12.1f ns/op\n" name est
      | Some _ | None -> Printf.printf "%-40s (no estimate)\n" name)
    results

(* ------------------------------------------------------------------ *)
(* wall: end-to-end wall clock via bechamel, the loose CI timing gate.
   Absolute numbers are machine-dependent, so the companion compare-wall
   gate only fails on a > 3x slowdown against the committed baseline —
   enough to catch an accidentally quadratic inner loop without flaking
   on a busy CI box.  On a single-core box --jobs 4 measures the
   coordination overhead of the worker pool, not a speedup. *)

let wall () =
  heading "wall / bechamel: end-to-end wall clock (loose CI gate)";
  let open Bechamel in
  let doc, stats = fig5_doc () in
  subnote "input: %d elements; block size 1 KiB, memory 16 blocks" stats.Xmlgen.Gen.elements;
  let contents = Extmem.Device.contents doc in
  let nexsort ~jobs () =
    let config = Config.make ~block_size:1024 ~memory_blocks:16 ~jobs () in
    let input = Extmem.Device.of_string ~name:"input" ~block_size:1024 contents in
    let output = Extmem.Device.in_memory ~name:"out" ~block_size:1024 () in
    ignore (Nexsort.sort_device ~config ~ordering ~input ~output () : Nexsort.report)
  in
  (* the traced series measures the tracer's own overhead against
     nexsort-j1: same sort, one live tracer reset (not reallocated)
     between iterations so the rings never fill and the comparison stays
     allocation-for-allocation fair *)
  let tracer = Obs.Tracer.create () in
  let nexsort_traced () =
    Obs.Tracer.reset tracer;
    let config = Config.make ~block_size:1024 ~memory_blocks:16 ~jobs:1 ~tracer () in
    let input = Extmem.Device.of_string ~name:"input" ~block_size:1024 contents in
    let output = Extmem.Device.in_memory ~name:"out" ~block_size:1024 () in
    Nexsort.Config.attach_tracing config ~name:"input" input;
    Nexsort.Config.attach_tracing config ~name:"output" output;
    ignore (Nexsort.sort_device ~config ~ordering ~input ~output () : Nexsort.report)
  in
  let mergesort () =
    let config = Config.make ~block_size:1024 ~memory_blocks:16 () in
    let input = Extmem.Device.of_string ~name:"input" ~block_size:1024 contents in
    let output = Extmem.Device.in_memory ~name:"out" ~block_size:1024 () in
    ignore
      (Baselines.Keypath_sort.sort_device ~config ~ordering ~input ~output ()
        : Baselines.Keypath_sort.report)
  in
  (* record-path series: slice-decoding a batch of encoded entries (view
     construction + on-demand key decode, no string materialisation) and
     ordering encoded key-path records without decoding keys — the two
     inner loops the zero-copy record path lives or dies by *)
  let decode_dict = Xmlio.Dict.create () in
  let enc_payloads =
    Array.init 4096 (fun i ->
        Nexsort.Entry.encode Config.Dict decode_dict
          (Nexsort.Entry.Start
             { level = 3; pos = i; name = "employee";
               attrs = [ ("ID", string_of_int ((i * 7919) mod 4096)) ];
               key = Some (Nexsort.Key.Num (float_of_int ((i * 7919) mod 4096))) }))
  in
  let codec_decode () =
    Array.iter
      (fun p ->
        let v = Nexsort.Entry.View.of_payload Config.Dict p in
        ignore (Nexsort.Entry.View.sibling_key v : Nexsort.Key.t))
      enc_payloads
  in
  let cmp_records =
    Array.init 4096 (fun i ->
        Nexsort.Keypath.encode_record
          [ { Nexsort.Keypath.key = Nexsort.Key.Str "AC"; pos = 2 };
            { Nexsort.Keypath.key = Nexsort.Key.Num (float_of_int ((i * 7919) mod 4096)); pos = i } ]
          ~payload:"<employee/>")
  in
  let entry_compare () =
    let a = Array.copy cmp_records in
    Array.sort Nexsort.Keypath.compare_encoded a
  in
  let tests =
    Test.make_grouped ~name:"wall"
      [
        Test.make ~name:"nexsort-j1" (Staged.stage (nexsort ~jobs:1));
        Test.make ~name:"nexsort-j4" (Staged.stage (nexsort ~jobs:4));
        Test.make ~name:"nexsort-traced" (Staged.stage nexsort_traced);
        Test.make ~name:"mergesort" (Staged.stage mergesort);
        Test.make ~name:"codec-decode" (Staged.stage codec_decode);
        Test.make ~name:"entry-compare" (Staged.stage entry_compare);
      ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:25 ~quota:(Time.second 1.0) () in
  let raw = Benchmark.all cfg [ instance ] tests in
  let results =
    Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]) instance
      raw
  in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      match Analyze.OLS.estimates ols with
      | Some [ ns ] ->
          rows := (name, ns) :: !rows;
          Printf.printf "%-24s %12.2f ms/run\n" name (ns /. 1e6)
      | Some _ | None -> Printf.printf "%-24s (no estimate)\n" name)
    results;
  Option.iter
    (fun path ->
      let fields =
        List.map
          (fun (name, ns) -> (name, Obs.Json.Float ns))
          (List.sort (fun (a, _) (b, _) -> String.compare a b) !rows)
      in
      let json =
        Obs.Json.Obj
          [ ("schema_version", Obs.Json.Int 1); ("tool", Obs.Json.Str "bench-wall");
            ("unit", Obs.Json.Str "ns/run"); ("wall", Obs.Json.Obj fields) ]
      in
      let oc = open_out_bin path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc (Obs.Json.to_string json));
      Printf.printf "\nwrote wall report: %s\n" path)
    !wall_file;
  (* --trace FILE: flush a reference trace from one final instrumented
     run, after the measurements so trace I/O never lands in them *)
  Option.iter
    (fun path ->
      nexsort_traced ();
      Obs.Tracer.write_file tracer path;
      Printf.printf "wrote trace: %s\n" path)
    !trace_file

(* compare-wall BASELINE NEW: fail only if a benchmark in NEW is more than
   3x slower than BASELINE — wall clock is noisy, I/O counters (the
   compare-metrics gate) are the precise regression signal. *)
let compare_wall baseline_path new_path =
  let tolerance = 3.0 in
  let read path =
    let ic = open_in_bin path in
    let s =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    Obs.Json.of_string s
  in
  let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("compare-wall: " ^ m); exit 1) fmt in
  let wall_of path json =
    match Obs.Json.member "wall" json with
    | Some (Obs.Json.Obj kvs) -> kvs
    | Some _ | None -> fail "%s has no \"wall\" object" path
  in
  let number path name = function
    | Obs.Json.Float f -> f
    | Obs.Json.Int i -> float_of_int i
    | _ -> fail "%s: %S is not a number" path name
  in
  let base = wall_of baseline_path (read baseline_path) in
  let new_ = wall_of new_path (read new_path) in
  let regressions = ref [] in
  List.iter
    (fun (name, bv) ->
      match List.assoc_opt name new_ with
      | None -> fail "%s: benchmark %S is missing" new_path name
      | Some nv ->
          let b = number baseline_path name bv and n = number new_path name nv in
          if b > 0. && n > tolerance *. b then
            regressions :=
              Printf.sprintf "%s: %.2f ms -> %.2f ms (> %.1fx)" name (b /. 1e6) (n /. 1e6)
                tolerance
              :: !regressions)
    base;
  match List.rev !regressions with
  | [] ->
      Printf.printf "compare-wall: OK (%s vs %s, tolerance %.1fx)\n" new_path baseline_path
        tolerance
  | rs ->
      List.iter (fun r -> prerr_endline ("compare-wall: REGRESSION " ^ r)) rs;
      exit 1

(* ------------------------------------------------------------------ *)
(* --metrics: a reference instrumented run whose JSON report exercises the
   whole reporting path; validate-metrics re-parses such a file and checks
   the §4.2 per-phase I/O breakdown is present (the CI smoke test) *)

let write_metrics path =
  let doc, _ = fig5_doc () in
  let config = Config.make ~block_size:1024 ~memory_blocks:16 () in
  let input = with_block_size 1024 doc in
  let output =
    maybe_costed (Extmem.Device.in_memory ~name:"out" ~block_size:1024 ())
  in
  let report = Nexsort.sort_device ~config ~ordering ~input ~output () in
  Obs.Report.write_file (Nexsort.metrics_report ~tool:"bench" ~config report) path;
  Printf.printf "\nwrote metrics report: %s\n" path

let validate_metrics path =
  let ic = open_in_bin path in
  let s =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let json = Obs.Json.of_string s in
  let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("validate-metrics: " ^ m); exit 1) fmt in
  let require name parent ctx =
    match Obs.Json.member name parent with
    | Some j -> j
    | None -> fail "missing %s key %S" ctx name
  in
  List.iter
    (fun k -> ignore (require k json "top-level"))
    [ "schema_version"; "tool"; "config"; "counts"; "io"; "pager"; "arena"; "gc"; "phases";
      "metrics"; "timing" ];
  let gc = require "gc" json "top-level" in
  List.iter
    (fun k -> ignore (require k gc "gc"))
    [ "minor_words"; "major_words"; "minor_collections"; "major_collections" ];
  let io = require "io" json "top-level" in
  (* the paper's §4.2 decomposition: every phase of the I/O bill *)
  List.iter
    (fun k -> ignore (require k io "io"))
    [ "input"; "subtree_sorts"; "stack_paging"; "runs"; "output"; "total" ];
  Printf.printf "validate-metrics: %s OK\n" path

(* compare-metrics BASELINE NEW: fail if any I/O counter in NEW's "io"
   section exceeds BASELINE's — the CI regression gate on the committed
   smoke-run baseline. *)
let compare_metrics baseline_path new_path =
  let read path =
    let ic = open_in_bin path in
    let s =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    Obs.Json.of_string s
  in
  let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("compare-metrics: " ^ m); exit 1) fmt in
  let io_of path json =
    match Obs.Json.member "io" json with
    | Some io -> io
    | None -> fail "%s has no \"io\" section" path
  in
  let base_json = read baseline_path and new_json = read new_path in
  let base_io = io_of baseline_path base_json in
  let new_io = io_of new_path new_json in
  let regressions = ref [] in
  let improvements = ref 0 in
  let rec walk path base new_ =
    match (base, new_) with
    | Obs.Json.Obj base_kvs, Obs.Json.Obj new_kvs ->
        List.iter
          (fun (k, bv) ->
            match List.assoc_opt k new_kvs with
            | Some nv -> walk (path ^ "." ^ k) bv nv
            | None -> fail "%s: counter %s%s is missing" new_path path ("." ^ k))
          base_kvs
    | Obs.Json.Int b, Obs.Json.Int n ->
        if n > b then regressions := Printf.sprintf "%s: %d -> %d" path b n :: !regressions
        else if n < b then incr improvements
    | _ -> fail "%s: %s is not an integer counter in both files" new_path path
  in
  walk "io" base_io new_io;
  (* hit-ratio gate: the buffer pool must not get worse at keeping hot
     blocks resident.  Sections with no recorded accesses (the streaming
     nexsort pipeline) are skipped. *)
  let hit_ratio json =
    match Obs.Json.member "pager" json with
    | None -> None
    | Some pager -> (
        match (Obs.Json.member "hits" pager, Obs.Json.member "misses" pager) with
        | Some (Obs.Json.Int h), Some (Obs.Json.Int m) when h + m > 0 ->
            Some (float_of_int h /. float_of_int (h + m))
        | _ -> None)
  in
  (match (hit_ratio base_json, hit_ratio new_json) with
  | Some b, Some n when n < b ->
      regressions :=
        Printf.sprintf "pager hit ratio: %.4f -> %.4f" b n :: !regressions
  | Some _, None ->
      regressions := "pager hit ratio: baseline has accesses, new has none" :: !regressions
  | _ -> ());
  match List.rev !regressions with
  | [] ->
      Printf.printf "compare-metrics: OK (%s vs %s, %d counters improved, none regressed)\n"
        new_path baseline_path !improvements
  | rs ->
      List.iter (fun r -> prerr_endline ("compare-metrics: REGRESSION " ^ r)) rs;
      exit 1

let experiments =
  [
    ("table1", table1);
    ("fig5", fig5);
    ("fig6", fig6);
    ("fig7", fig7);
    ("threshold", threshold);
    ("model", model);
    ("ablate-degen", ablate_degen);
    ("ablate-compact", ablate_compact);
    ("ablate-fusion", ablate_fusion);
    ("ablate-runs", ablate_runs);
    ("motivation", motivation);
    ("xsort", xsort);
    ("policy-sweep", policy_sweep);
    ("tenants", tenants);
    ("ingest", ingest);
    ("micro", micro);
    ("wall", wall);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let rec parse = function
    | [] -> []
    | "--quick" :: rest ->
        quick := true;
        parse rest
    | "--cost" :: rest ->
        cost := true;
        parse rest
    | "--no-fuse" :: rest ->
        no_fuse := true;
        parse rest
    | "--metrics" :: file :: rest ->
        metrics_file := Some file;
        parse rest
    | "--metrics" :: [] ->
        prerr_endline "--metrics requires a file argument";
        exit 2
    | "--wall" :: file :: rest ->
        wall_file := Some file;
        parse rest
    | "--wall" :: [] ->
        prerr_endline "--wall requires a file argument";
        exit 2
    | "--trace" :: file :: rest ->
        trace_file := Some file;
        parse rest
    | "--trace" :: [] ->
        prerr_endline "--trace requires a file argument";
        exit 2
    | "--jobs" :: n :: rest -> (
        match int_of_string_opt n with
        | Some j when j >= 1 && j <= 64 ->
            jobs := j;
            parse rest
        | _ ->
            Printf.eprintf "--jobs: expected a worker count between 1 and 64, got %S\n" n;
            exit 2)
    | "--jobs" :: [] ->
        prerr_endline "--jobs requires a worker count";
        exit 2
    | "--policy" :: name :: rest -> (
        match Extmem.Frame_arena.policy_of_string name with
        | Some p ->
            policy := p;
            parse rest
        | None ->
            Printf.eprintf "--policy: unknown policy %S (lru, clock, mru, stack)\n" name;
            exit 2)
    | "--policy" :: [] ->
        prerr_endline "--policy requires a policy argument";
        exit 2
    | "--" :: rest -> parse rest
    | a :: rest -> a :: parse rest
  in
  let args = parse args in
  match args with
  | "validate-metrics" :: paths ->
      if paths = [] then begin
        prerr_endline "validate-metrics requires at least one file";
        exit 2
      end;
      List.iter validate_metrics paths
  | [ "compare-metrics"; baseline; new_path ] -> compare_metrics baseline new_path
  | "compare-metrics" :: _ ->
      prerr_endline "compare-metrics requires exactly two files: BASELINE NEW";
      exit 2
  | [ "compare-wall"; baseline; new_path ] -> compare_wall baseline new_path
  | "compare-wall" :: _ ->
      prerr_endline "compare-wall requires exactly two files: BASELINE NEW";
      exit 2
  | args ->
  let selected =
    match args with
    | [] -> List.filter (fun (n, _) -> n <> "micro" && n <> "wall") experiments
    | names ->
        List.map
          (fun n ->
            match List.assoc_opt n experiments with
            | Some f -> (n, f)
            | None ->
                Printf.eprintf "unknown experiment %S; available: %s\n" n
                  (String.concat ", " (List.map fst experiments));
                exit 2)
          names
  in
  let t0 = Unix.gettimeofday () in
  List.iter (fun (_, f) -> f ()) selected;
  Option.iter write_metrics !metrics_file;
  Printf.printf "\ntotal bench time: %.1fs\n" (Unix.gettimeofday () -. t0)
